// End-to-end CLI flight-recorder test: runs the real `aitia` binary with
// --trace over every checked-in example trace and validates each artifact
// with the strict JSON checker — plus spot checks that all pipeline phases
// (ingest, lifs, causality) left spans in the recording.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#ifndef _WIN32
#include <sys/wait.h>
#endif
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tests/json_checker.h"

#ifndef AITIA_CLI_PATH
#error "AITIA_CLI_PATH must point at the aitia binary"
#endif
#ifndef AITIA_TRACE_DIR
#error "AITIA_TRACE_DIR must point at examples/traces"
#endif

namespace aitia {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int RunCli(const std::string& args) {
  const std::string cmd = std::string(AITIA_CLI_PATH) + " " + args;
  const int raw = std::system(cmd.c_str());
#ifdef _WIN32
  return raw;
#else
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
#endif
}

TEST(ObsCliTraceTest, EveryExampleTraceProducesAValidChromeTrace) {
  std::vector<std::filesystem::path> traces;
  for (const auto& entry : std::filesystem::directory_iterator(AITIA_TRACE_DIR)) {
    if (entry.path().extension() == ".ait") {
      traces.push_back(entry.path());
    }
  }
  ASSERT_GE(traces.size(), 4u) << "example trace corpus shrank";

  int index = 0;
  for (const std::filesystem::path& trace : traces) {
    SCOPED_TRACE(trace.string());
    const std::string out =
        "obs_cli_trace_" + std::to_string(index++) + ".json";
    std::filesystem::remove(out);
    const int exit_code =
        RunCli("--trace " + out + " --json " + trace.string() + " > /dev/null 2>&1");
    // 0 diagnosed, 3 degraded: both are successful pipeline runs.
    EXPECT_TRUE(exit_code == 0 || exit_code == 3) << "exit=" << exit_code;

    const std::string json = ReadFile(out);
    ASSERT_FALSE(json.empty()) << "no trace artifact written";
    std::string why;
    EXPECT_TRUE(testing_json::IsValidJson(json, &why)) << why;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // At least one span per pipeline phase.
    EXPECT_NE(json.find("\"cat\": \"ingest\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"lifs\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"causality\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"pipeline\""), std::string::npos);
    std::filesystem::remove(out);
  }
}

TEST(ObsCliTraceTest, MetricsFlagPrintsASummary) {
  const std::string out = "obs_cli_metrics.txt";
  const int exit_code = RunCli("--metrics fig-1 > /dev/null 2> " + out);
  EXPECT_EQ(exit_code, 0);
  const std::string text = ReadFile(out);
  EXPECT_NE(text.find("--- metrics ---"), std::string::npos) << text;
  EXPECT_NE(text.find("lifs.schedules_executed"), std::string::npos) << text;
  std::filesystem::remove(out);
}

TEST(ObsCliTraceTest, ReportJsonCarriesMetricsSection) {
  const std::string out = "obs_cli_report.json";
  const int exit_code = RunCli("--json fig-1 > " + out + " 2> /dev/null");
  EXPECT_EQ(exit_code, 0);
  const std::string json = ReadFile(out);
  std::string why;
  EXPECT_TRUE(testing_json::IsValidJson(json, &why)) << why;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  std::filesystem::remove(out);
}

}  // namespace
}  // namespace aitia
