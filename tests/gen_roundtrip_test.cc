// Generator determinism and serializer round-trip at scale (DESIGN.md §14.3).
//
// The corpus expansion engine's contract: equal GenOptions produce
// byte-identical scenarios, every generated scenario survives
// serialize -> reparse -> reserialize byte-identically through the existing
// .ait pipeline, and a sweep plan's prefix is independent of its length.
// 200 seeded scenarios per template (1400 total) pin this far beyond the
// curated corpus's 29 hand-written entries.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/gen/generator.h"
#include "src/ingest/ingest.h"
#include "src/ingest/serialize.h"

namespace aitia {
namespace {

constexpr int kScenariosPerTemplate = 200;

// Deterministic per-template knob sampling: the test's own seeds, distinct
// from CorpusPlan's stream, so both stay covered.
gen::GenOptions NthOptions(gen::GenTemplate tmpl, int n) {
  gen::GenOptions options;
  options.tmpl = tmpl;
  options.seed = static_cast<uint64_t>(n) * 7 + 1;
  Rng rng(options.seed ^ 0x67656e726f756e64ULL);
  options.knobs = gen::SampleKnobs(tmpl, rng);
  return options;
}

class GenRoundtripTest : public testing::TestWithParam<gen::GenTemplate> {};

TEST_P(GenRoundtripTest, SerializeReparseReserializeBytesIdentical) {
  for (int n = 0; n < kScenariosPerTemplate; ++n) {
    const gen::GenOptions options = NthOptions(GetParam(), n);
    const gen::GeneratedScenario g = gen::GenerateScenario(options);
    const std::string ait = ScenarioToAit(g.scenario);

    StatusOr<BugScenario> reparsed = ScenarioFromAitText(ait, g.scenario.id + ".ait");
    ASSERT_TRUE(reparsed.ok()) << g.scenario.id << "\n"
                               << reparsed.status().ToString() << "\n"
                               << ait;
    EXPECT_EQ(ScenarioToAit(*reparsed), ait) << g.scenario.id;
    EXPECT_EQ(ScenarioFingerprint(*reparsed), ScenarioFingerprint(g.scenario))
        << g.scenario.id;
  }
}

TEST_P(GenRoundtripTest, EqualOptionsGenerateIdenticalScenarios) {
  for (int n = 0; n < kScenariosPerTemplate; n += 10) {
    const gen::GenOptions options = NthOptions(GetParam(), n);
    const gen::GeneratedScenario a = gen::GenerateScenario(options);
    const gen::GeneratedScenario b = gen::GenerateScenario(options);
    EXPECT_EQ(ScenarioToAit(a.scenario), ScenarioToAit(b.scenario)) << a.scenario.id;
    EXPECT_EQ(a.benign_globals, b.benign_globals);
    EXPECT_EQ(a.expect_failure, b.expect_failure);
  }
}

TEST_P(GenRoundtripTest, GroundTruthSurvivesTheRoundTrip) {
  const gen::GenOptions options = NthOptions(GetParam(), 3);
  const gen::GeneratedScenario g = gen::GenerateScenario(options);
  StatusOr<BugScenario> reparsed =
      ScenarioFromAitText(ScenarioToAit(g.scenario), "rt.ait");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->truth.failure_type, g.scenario.truth.failure_type);
  EXPECT_EQ(reparsed->truth.racing_globals, g.scenario.truth.racing_globals);
  EXPECT_EQ(reparsed->slice.size(), g.scenario.slice.size());
  EXPECT_EQ(reparsed->irq_lines.size(), g.scenario.irq_lines.size());
  EXPECT_EQ(reparsed->slice_resources, g.scenario.slice_resources);
  EXPECT_EQ(reparsed->setup_resources, g.scenario.setup_resources);
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, GenRoundtripTest,
                         testing::ValuesIn(gen::AllGenTemplates()),
                         [](const testing::TestParamInfo<gen::GenTemplate>& info) {
                           return std::string(gen::GenTemplateName(info.param));
                         });

TEST(CorpusPlanTest, PrefixIsIndependentOfCount) {
  const std::vector<gen::GenOptions> small = gen::CorpusPlan(30, 9);
  const std::vector<gen::GenOptions> big = gen::CorpusPlan(100, 9);
  ASSERT_EQ(small.size(), 30u);
  ASSERT_EQ(big.size(), 100u);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(ScenarioToAit(gen::GenerateScenario(small[i]).scenario),
              ScenarioToAit(gen::GenerateScenario(big[i]).scenario))
        << "plan slot " << i;
  }
}

TEST(CorpusPlanTest, IdsAreUniqueAcrossAPlan) {
  std::set<std::string> ids;
  for (const gen::GenOptions& options : gen::CorpusPlan(140, 9)) {
    EXPECT_TRUE(ids.insert(gen::GenerateScenario(options).scenario.id).second);
  }
  EXPECT_EQ(ids.size(), 140u);
}

TEST(CorpusPlanTest, TemplateSubsetIsHonored) {
  const std::vector<gen::GenTemplate> subset = {gen::GenTemplate::kAbba,
                                                gen::GenTemplate::kBenign};
  for (const gen::GenOptions& options : gen::CorpusPlan(10, 3, subset)) {
    EXPECT_TRUE(options.tmpl == gen::GenTemplate::kAbba ||
                options.tmpl == gen::GenTemplate::kBenign);
  }
}

TEST(ParseGenSpecTest, AcceptsFullSpecAndRejectsBadKnobs) {
  StatusOr<gen::GenOptions> ok = gen::ParseGenSpec(
      {"template=abba", "seed=7", "window=2", "salt=1", "extra_threads=0",
       "lock_depth=3", "irq=1"});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->tmpl, gen::GenTemplate::kAbba);
  EXPECT_EQ(ok->seed, 7u);
  EXPECT_EQ(ok->knobs.window, 2);
  EXPECT_EQ(ok->knobs.lock_depth, 3);
  EXPECT_TRUE(ok->knobs.irq);

  EXPECT_FALSE(gen::ParseGenSpec({}).ok());                            // no template
  EXPECT_FALSE(gen::ParseGenSpec({"template=bogus"}).ok());            // unknown name
  EXPECT_FALSE(gen::ParseGenSpec({"template=rcu", "window=9"}).ok());  // out of range
  EXPECT_FALSE(gen::ParseGenSpec({"template=rcu", "depth=2"}).ok());   // unknown key
  EXPECT_FALSE(gen::ParseGenSpec({"template=rcu", "seed"}).ok());      // not key=value
}

}  // namespace
}  // namespace aitia
