// Closing the loop: the causality chain's contract is "if a fix does not
// allow one of the interleaving orders in the chain, it does not incur a
// failure" (§2.1). These tests apply exactly the fixes the chains prescribe
// — the developers' actual fix shape for CVE-2017-15649 — and let LIFS
// search exhaustively: the patched kernels must not reproduce under ANY
// explored interleaving.

#include <gtest/gtest.h>

#include "src/core/lifs.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

// The real CVE-2017-15649 fix makes po->running and po->fanout be accessed
// atomically: both handlers take the fanout mutex around the whole
// check-and-update section, which forbids (B2 => A6) ∧ (A2 => B11) — the
// first link of the diagnosed chain.
std::shared_ptr<KernelImage> PatchedFanoutImage() {
  auto image = std::make_shared<KernelImage>();
  const Addr fanout_mutex = image->AddGlobal("fanout_mutex", 0);
  const Addr po_running = image->AddGlobal("po_running", 1);
  const Addr po_fanout = image->AddGlobal("po_fanout", 0);
  const Addr global_list = image->AddGlobal("fanout_global_list", 0);
  constexpr Word kSk = 777;

  {
    ProgramBuilder b("fanout_add_fixed");
    b.Lea(R10, fanout_mutex)
        .Lock(R10)
        .Note("A0: mutex_lock(&fanout_mutex)  [the fix]")
        .Lea(R1, po_running)
        .Load(R2, R1)
        .Note("A2: if (!po->running)")
        .Beqz(R2, "einval")
        .Alloc(R3, 1)
        .Note("A5: match = kmalloc()")
        .Lea(R4, po_fanout)
        .Store(R4, R3)
        .Note("A6: po->fanout = match")
        .Lea(R5, global_list)
        .MovImm(R6, kSk)
        .ListAdd(R5, R6)
        .Note("A12: list_add(sk, &global_list)")
        .Label("einval")
        .Unlock(R10)
        .Note("A9: mutex_unlock(&fanout_mutex)")
        .Exit();
    image->AddProgram(b.Build());
  }
  {
    ProgramBuilder b("packet_do_bind_fixed");
    b.Lea(R10, fanout_mutex)
        .Lock(R10)
        .Note("B0: mutex_lock(&fanout_mutex)  [the fix]")
        .Lea(R1, po_fanout)
        .Load(R2, R1)
        .Note("B2: if (po->fanout)")
        .Bnez(R2, "einval")
        .Lea(R3, po_running)
        .StoreImm(R3, 0)
        .Note("B11: po->running = 0")
        .Load(R4, R1)
        .Note("B12: if (po->fanout)")
        .Beqz(R4, "link")
        .Lea(R5, global_list)
        .MovImm(R6, kSk)
        .ListContains(R7, R5, R6)
        .Note("B17: BUG_ON(!list_contains(sk, &global_list))")
        .BugOn(R7)
        .Label("link")
        .Lea(R5, global_list)
        .MovImm(R6, kSk)
        .ListAdd(R5, R6)
        .Note("B7: fanout_link()")
        .Label("einval")
        .Unlock(R10)
        .Note("B8: mutex_unlock(&fanout_mutex)")
        .Exit();
    image->AddProgram(b.Build());
  }
  return image;
}

TEST(PatchedKernelTest, FanoutFixEliminatesEveryInterleaving) {
  auto image = PatchedFanoutImage();
  std::vector<ThreadSpec> slice = {
      {"setsockopt(PACKET_FANOUT_ADD)", image->ProgramByName("fanout_add_fixed"), 0,
       ThreadKind::kSyscall},
      {"bind()", image->ProgramByName("packet_do_bind_fixed"), 0, ThreadKind::kSyscall},
  };
  LifsOptions options;
  options.max_interleavings = 3;
  options.max_schedules = 5000;
  Lifs lifs(image.get(), slice, {}, options);
  LifsResult r = lifs.Run();
  EXPECT_FALSE(r.reproduced) << "patched kernel still fails: " << r.failure->ToString();
  // The search actually explored schedules (it did not trivially bail).
  EXPECT_GT(r.schedules_executed, 2);
}

// fig-1's chain prescribes forbidding A1 => B1 or B2 => A2. The natural fix
// is to clear ptr_valid *before* clearing ptr and re-check after the load —
// i.e. forbid B2 => A2' by publishing invalidation first.
TEST(PatchedKernelTest, Fig1OrderFixEliminatesTheNullDeref) {
  KernelImage image;
  const Addr pointee = image.AddGlobal("pointee", 7);
  const Addr ptr = image.AddGlobal("ptr", static_cast<Word>(pointee));
  const Addr ptr_valid = image.AddGlobal("ptr_valid", 0);
  {
    ProgramBuilder a("thread_a_fixed");
    a.Lea(R1, ptr_valid)
        .StoreImm(R1, 1)
        .Note("A1: ptr_valid = 1")
        .Lea(R2, ptr)
        .Load(R3, R2)
        .Note("A2: local = *ptr (load ptr)")
        .Beqz(R3, "out")
        .Note("A2+: re-check ptr != NULL  [the fix]")
        .Load(R3, R3)
        .Note("A2': dereference")
        .Label("out")
        .Exit();
    image.AddProgram(a.Build());
  }
  {
    ProgramBuilder b("thread_b_fixed");
    b.Lea(R1, ptr_valid)
        .Load(R2, R1)
        .Note("B1: if (ptr_valid == 0) return")
        .Beqz(R2, "out")
        .Lea(R3, ptr)
        .StoreImm(R3, 0)
        .Note("B2: ptr = NULL")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }
  std::vector<ThreadSpec> slice = {
      {"syscall_a", image.ProgramByName("thread_a_fixed"), 0, ThreadKind::kSyscall},
      {"syscall_b", image.ProgramByName("thread_b_fixed"), 0, ThreadKind::kSyscall},
  };
  LifsOptions options;
  options.max_interleavings = 3;
  options.max_schedules = 5000;
  Lifs lifs(&image, slice, {}, options);
  LifsResult r = lifs.Run();
  EXPECT_FALSE(r.reproduced) << r.failure->ToString();
}

// Negative control: the same search setup on the UNPATCHED fanout code does
// reproduce — proving the patched-run verdicts above are not artifacts of
// weak search parameters.
TEST(PatchedKernelTest, UnpatchedControlStillFails) {
  auto image = std::make_shared<KernelImage>();
  const Addr po_running = image->AddGlobal("po_running", 1);
  const Addr po_fanout = image->AddGlobal("po_fanout", 0);
  const Addr global_list = image->AddGlobal("fanout_global_list", 0);
  constexpr Word kSk = 777;
  {
    ProgramBuilder b("fanout_add_buggy");
    b.Lea(R1, po_running)
        .Load(R2, R1)
        .Beqz(R2, "out")
        .Alloc(R3, 1)
        .Lea(R4, po_fanout)
        .Store(R4, R3)
        .Lea(R5, global_list)
        .MovImm(R6, kSk)
        .ListAdd(R5, R6)
        .Label("out")
        .Exit();
    image->AddProgram(b.Build());
  }
  {
    ProgramBuilder b("bind_buggy");
    b.Lea(R1, po_fanout)
        .Load(R2, R1)
        .Bnez(R2, "out")
        .Lea(R3, po_running)
        .StoreImm(R3, 0)
        .Load(R4, R1)
        .Beqz(R4, "out")
        .Lea(R5, global_list)
        .MovImm(R6, kSk)
        .ListContains(R7, R5, R6)
        .BugOn(R7)
        .Label("out")
        .Exit();
    image->AddProgram(b.Build());
  }
  std::vector<ThreadSpec> slice = {
      {"setsockopt", image->ProgramByName("fanout_add_buggy"), 0, ThreadKind::kSyscall},
      {"bind", image->ProgramByName("bind_buggy"), 0, ThreadKind::kSyscall},
  };
  LifsOptions options;
  options.max_interleavings = 3;
  options.max_schedules = 5000;
  Lifs lifs(image.get(), slice, {}, options);
  LifsResult r = lifs.Run();
  EXPECT_TRUE(r.reproduced);
}

}  // namespace
}  // namespace aitia
