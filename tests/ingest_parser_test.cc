// Malformed-input and good-path tests for the .ait parser + assembler
// (src/ingest). Every malformed trace must produce a Status diagnostic of
// the form "<file>:<line>:<col>: message" — never a crash or abort — so the
// suite is also run under -DAITIA_SANITIZE=ON in CI.

#include <gtest/gtest.h>

#include <string>

#include "src/ingest/ingest.h"
#include "src/ingest/parser.h"

namespace aitia {
namespace {

// A minimal well-formed trace the malformed cases are mutations of.
constexpr char kGoodTrace[] = R"ait(ait 1
scenario "good"
global flag 0
global box &flag
program writer
  lea r1, flag
  store_imm r1, 1 note "A1: flag = 1"
  exit
end
program reader
  lea r1, flag
  load r2, r1
  beqz r2, out
  mov_imm r3, 7
  label out
  exit
end
slice "write()" writer
slice "read()" reader arg 2 kind kworker resource "fd"
truth failure null-deref
truth racing_globals flag
)ait";

// Expects a parse (or assembly) failure whose diagnostic carries the given
// file:line:col prefix and mentions `needle`.
void ExpectError(const std::string& text, const std::string& pos_prefix,
                 const std::string& needle) {
  StatusOr<BugScenario> got = ScenarioFromAitText(text, "test.ait");
  ASSERT_FALSE(got.ok()) << "expected failure mentioning: " << needle;
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument) << got.status().ToString();
  const std::string msg = got.status().ToString();
  EXPECT_NE(msg.find(pos_prefix), std::string::npos)
      << "want position '" << pos_prefix << "' in: " << msg;
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "want '" << needle << "' in: " << msg;
}

TEST(IngestGoodPathTest, MinimalTraceAssembles) {
  StatusOr<BugScenario> got = ScenarioFromAitText(kGoodTrace, "good.ait");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const BugScenario& s = *got;
  EXPECT_EQ(s.id, "good");
  ASSERT_EQ(s.image->globals().size(), 2u);
  EXPECT_EQ(s.image->globals()[0].name, "flag");
  // `&flag` initializer resolves to flag's address.
  EXPECT_EQ(static_cast<Addr>(s.image->globals()[1].init), s.image->globals()[0].addr);
  ASSERT_EQ(s.image->programs().size(), 2u);
  EXPECT_EQ(s.image->programs()[0].name, "writer");
  EXPECT_EQ(s.image->programs()[0].code[1].note, "A1: flag = 1");
  ASSERT_EQ(s.slice.size(), 2u);
  EXPECT_EQ(s.slice[1].arg, 2);
  EXPECT_EQ(s.slice[1].kind, ThreadKind::kKworker);
  ASSERT_EQ(s.slice_resources.size(), 2u);
  EXPECT_EQ(s.slice_resources[0], "");
  EXPECT_EQ(s.slice_resources[1], "fd");
  EXPECT_EQ(s.truth.failure_type, FailureType::kNullDeref);
  ASSERT_EQ(s.truth.racing_globals.size(), 1u);
  EXPECT_EQ(s.truth.racing_globals[0], "flag");
}

TEST(IngestGoodPathTest, BranchTargetResolvesToLabelPc) {
  StatusOr<BugScenario> got = ScenarioFromAitText(kGoodTrace, "good.ait");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const Program& reader = got->image->programs()[1];
  ASSERT_EQ(reader.code[2].op, Op::kBeqz);
  EXPECT_EQ(reader.code[2].imm, 4);  // pc of "label out"
}

TEST(IngestGoodPathTest, CommentsAndBlankLinesIgnored) {
  std::string text = std::string("# header comment\n\n") + kGoodTrace + "\n# trailing\n";
  EXPECT_TRUE(ScenarioFromAitText(text, "c.ait").ok());
}

// --- lexical errors ---------------------------------------------------------

TEST(IngestMalformedTest, UnterminatedString) {
  ExpectError("ait 1\nscenario \"oops\n", "test.ait:2:10:", "unterminated string");
}

TEST(IngestMalformedTest, BadEscapeInString) {
  ExpectError("ait 1\nscenario \"a\\qb\"\n", "test.ait:2:", "escape");
}

TEST(IngestMalformedTest, MalformedNumber) {
  ExpectError("ait 1\nscenario \"x\"\nglobal g 0xg\n", "test.ait:3:10:", "malformed number");
}

TEST(IngestMalformedTest, StrayCharacter) {
  ExpectError("ait 1\nscenario \"x\"\nglobal g 0 @\n", "test.ait:3:12:", "unexpected character");
}

// --- header / structure errors ----------------------------------------------

TEST(IngestMalformedTest, EmptyInput) {
  ExpectError("", "test.ait:1:1:", "missing 'ait <version>'");
}

TEST(IngestMalformedTest, MissingHeader) {
  ExpectError("scenario \"x\"\n", "test.ait:1:1:", "must start with 'ait");
}

TEST(IngestMalformedTest, UnsupportedVersion) {
  ExpectError("ait 99\n", "test.ait:1:5:", "unsupported ait version 99");
}

TEST(IngestMalformedTest, MissingScenarioDeclaration) {
  ExpectError("ait 1\nglobal g 0\n", "test.ait:", "missing 'scenario'");
}

TEST(IngestMalformedTest, DuplicateScenarioDeclaration) {
  ExpectError("ait 1\nscenario \"a\"\nscenario \"b\"\n", "test.ait:3:1:",
              "duplicate 'scenario'");
}

TEST(IngestMalformedTest, UnknownDirective) {
  ExpectError("ait 1\nscenario \"x\"\nfrobnicate 3\n", "test.ait:3:1:",
              "unknown directive 'frobnicate'");
}

TEST(IngestMalformedTest, TruncatedProgramNoEnd) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  exit\n", "test.ait:",
              "not closed by 'end'");
}

TEST(IngestMalformedTest, EndOutsideProgram) {
  ExpectError("ait 1\nscenario \"x\"\nend\n", "test.ait:3:1:", "outside of a program");
}

TEST(IngestMalformedTest, DuplicateProgram) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\nend\nprogram p\nend\n", "test.ait:5:9:",
              "duplicate program 'p'");
}

TEST(IngestMalformedTest, DuplicateGlobal) {
  ExpectError("ait 1\nscenario \"x\"\nglobal g 0\nglobal g 1\n", "test.ait:4:8:",
              "duplicate global 'g'");
}

TEST(IngestMalformedTest, GlobalMissingInitializer) {
  ExpectError("ait 1\nscenario \"x\"\nglobal g\n", "test.ait:3:9:", "initial value");
}

// --- instruction-level errors -----------------------------------------------

TEST(IngestMalformedTest, UnknownMnemonic) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  frob r1\nend\n", "test.ait:4:3:",
              "unknown mnemonic 'frob'");
}

TEST(IngestMalformedTest, BadRegisterName) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  mov_imm rx, 1\nend\n", "test.ait:4:11:",
              "bad register name 'rx'");
}

TEST(IngestMalformedTest, RegisterOutOfRange) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  mov_imm r16, 1\nend\n", "test.ait:4:11:",
              "bad register name 'r16'");
}

TEST(IngestMalformedTest, MissingOperand) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  mov_imm r1\nend\n", "test.ait:4:13:",
              "expected ','");
}

TEST(IngestMalformedTest, TrailingGarbageAfterInstruction) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  exit now\nend\n", "test.ait:4:8:",
              "unexpected trailing 'now'");
}

TEST(IngestMalformedTest, NoteWithoutString) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  nop note\nend\n", "test.ait:4:11:",
              "quoted string after 'note'");
}

TEST(IngestMalformedTest, DanglingLabelUse) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  jmp nowhere\nend\n", "test.ait:4:7:",
              "undefined label 'nowhere'");
}

TEST(IngestMalformedTest, DuplicateLabelDefinition) {
  ExpectError(
      "ait 1\nscenario \"x\"\nprogram p\n  label twice\n  nop\n  label twice\nend\n",
      "test.ait:6:9:", "duplicate label 'twice'");
}

TEST(IngestMalformedTest, NoteOnLabelLine) {
  ExpectError(
      "ait 1\nscenario \"x\"\nprogram p\n  label a note \"no\"\n  jmp a\nend\n"
      "slice \"t\" p\n",
      "test.ait:4:3:", "'label' line cannot carry a note");
}

// --- name-resolution (assembly) errors ---------------------------------------

TEST(IngestMalformedTest, UnknownGlobalInLea) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\n  lea r1, ghost\nend\nslice \"t\" p\n",
              "test.ait:4:11:", "unknown global 'ghost'");
}

TEST(IngestMalformedTest, UnknownGlobalInAmpInitializer) {
  ExpectError("ait 1\nscenario \"x\"\nglobal g &ghost\nprogram p\nend\nslice \"t\" p\n",
              "test.ait:3:11:", "unknown global 'ghost'");
}

TEST(IngestMalformedTest, UnknownProgramInQueueWork) {
  ExpectError(
      "ait 1\nscenario \"x\"\nprogram p\n  queue_work ghost, r1\nend\nslice \"t\" p\n",
      "test.ait:4:14:", "unknown program 'ghost'");
}

TEST(IngestMalformedTest, UnknownProgramInSliceThread) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\nend\nslice \"t\" ghost\n", "test.ait:5:11:",
              "unknown program 'ghost'");
}

TEST(IngestMalformedTest, UnknownProgramInIrqLine) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\nend\nslice \"t\" p\nirq ghost\n",
              "test.ait:6:5:", "unknown program 'ghost'");
}

TEST(IngestMalformedTest, EmptySlice) {
  StatusOr<BugScenario> got =
      ScenarioFromAitText("ait 1\nscenario \"x\"\nprogram p\nend\n", "test.ait");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(got.status().ToString().find("no 'slice' threads"), std::string::npos);
}

// --- thread / truth clause errors --------------------------------------------

TEST(IngestMalformedTest, UnknownThreadKind) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\nend\nslice \"t\" p kind daemon\n",
              "test.ait:5:18:", "unknown thread kind 'daemon'");
}

TEST(IngestMalformedTest, UnknownThreadClause) {
  ExpectError("ait 1\nscenario \"x\"\nprogram p\nend\nslice \"t\" p nice 5\n",
              "test.ait:5:13:", "unknown clause 'nice'");
}

TEST(IngestMalformedTest, UnknownTruthKey) {
  ExpectError("ait 1\nscenario \"x\"\ntruth flavor vanilla\n", "test.ait:3:7:",
              "unknown truth key 'flavor'");
}

TEST(IngestMalformedTest, UnknownFailureTypeToken) {
  ExpectError("ait 1\nscenario \"x\"\ntruth failure meltdown\n", "test.ait:3:15:",
              "unknown failure type 'meltdown'");
}

TEST(IngestMalformedTest, TruthBoolNotBool) {
  ExpectError("ait 1\nscenario \"x\"\ntruth multi_variable maybe\n", "test.ait:3:22:",
              "'true' or 'false'");
}

TEST(IngestMalformedTest, UnknownRacingGlobalInTruth) {
  ExpectError(
      "ait 1\nscenario \"x\"\nprogram p\nend\nslice \"t\" p\ntruth racing_globals ghost\n",
      "test.ait:6:22:", "unknown global 'ghost'");
}

// --- file-level entry point ---------------------------------------------------

TEST(IngestFileTest, MissingFileIsNotFound) {
  StatusOr<BugScenario> got = ScenarioFromAitFile("/nonexistent/trace.ait");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

// The parser itself (before assembly) also reports structured positions.
TEST(IngestParserTest, ParseTraceTextReportsDocShape) {
  StatusOr<TraceDoc> doc = ParseTraceText(kGoodTrace, "good.ait");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->scenario_id, "good");
  EXPECT_EQ(doc->globals.size(), 2u);
  EXPECT_EQ(doc->programs.size(), 2u);
  EXPECT_EQ(doc->threads.size(), 2u);
}

}  // namespace
}  // namespace aitia
