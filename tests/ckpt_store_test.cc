// Unit tests for the checkpoint store (src/ckpt/store.h): baseline caching,
// preemption-prefix key/validity probing, total-order longest-prefix lookup,
// LRU eviction under the byte budget, deposit dedup, thread safety, and the
// ckpt.* metric semantics.

#include "src/ckpt/store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/builder.h"
#include "src/sim/kernel.h"

namespace aitia {
namespace ckpt {
namespace {

struct Scenario {
  std::unique_ptr<KernelImage> image;
  std::vector<ThreadSpec> slice;
};

Scenario MakeScenario() {
  Scenario s;
  s.image = std::make_unique<KernelImage>();
  const Addr ga = s.image->AddGlobal("ga", 0);
  for (int t = 0; t < 2; ++t) {
    ProgramBuilder b(t == 0 ? "t0" : "t1");
    b.Lea(R1, ga);
    for (int i = 0; i < 8; ++i) {
      b.Load(R2, R1).StoreImm(R1, static_cast<Word>(i));
    }
    b.Exit();
    const ProgramId prog = s.image->AddProgram(b.Build());
    s.slice.push_back({t == 0 ? "t0" : "t1", prog, 0, ThreadKind::kSyscall});
  }
  return s;
}

// Advances `sim` by `n` retired steps, lowest runnable thread first.
void Advance(KernelSim& sim, int n) {
  for (int i = 0; i < n && !sim.Done(); ++i) {
    sim.Step(sim.RunnableThreads().front());
  }
}

DynInstr Di(ThreadId tid, int32_t pc, int32_t occurrence = 0) {
  DynInstr di;
  di.tid = tid;
  di.at.prog = 0;
  di.at.pc = pc;
  di.occurrence = occurrence;
  return di;
}

int64_t CounterOf(const obs::MetricsSnapshot& delta, const std::string& name) {
  auto it = delta.counters.find(name);
  return it == delta.counters.end() ? 0 : it->second;
}

TEST(CheckpointStoreTest, BaselineRoundTripAndHitMissCounters) {
  Scenario s = MakeScenario();
  CheckpointStore store;

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(store.FindBaseline(), nullptr);  // miss

  KernelSim sim(s.image.get(), s.slice);
  store.PutBaseline(sim);
  std::unique_ptr<KernelSim> restored = store.FindBaseline();  // hit
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->thread_count(), sim.thread_count());
  EXPECT_TRUE(restored->trace().empty());

  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().Delta(before);
  EXPECT_EQ(CounterOf(delta, "ckpt.misses"), 1);
  EXPECT_EQ(CounterOf(delta, "ckpt.hits"), 1);
  EXPECT_GE(CounterOf(delta, "ckpt.stores"), 1);
}

TEST(CheckpointStoreTest, BaselineFirstDepositWins) {
  Scenario s = MakeScenario();
  CheckpointStore store;
  KernelSim a(s.image.get(), s.slice);
  store.PutBaseline(a);
  const size_t bytes_after_first = store.bytes_retained();
  KernelSim b(s.image.get(), s.slice);
  Advance(b, 3);
  store.PutBaseline(b);  // ignored: a baseline is already pinned
  EXPECT_EQ(store.bytes_retained(), bytes_after_first);
  std::unique_ptr<KernelSim> restored = store.FindBaseline();
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(restored->trace().empty());
}

TEST(CheckpointStoreTest, PreemptPrefixKeyAndValidityProbe) {
  Scenario s = MakeScenario();
  CheckpointStore store;
  const std::vector<ThreadId> base_order = {0, 1};

  KernelSim sim(s.image.get(), s.slice);
  Advance(sim, 6);
  PreemptPrefixState st;
  st.fired = {};  // no points fired during this prefix
  st.current = 0;
  st.steps = 6;
  // The prefix exposed t0's first instructions (sorted opportunity sets).
  st.pre_seen = {Di(0, 0), Di(0, 1), Di(0, 2)};
  st.post_seen = st.pre_seen;
  std::sort(st.pre_seen.begin(), st.pre_seen.end());
  std::sort(st.post_seen.begin(), st.post_seen.end());
  store.PutPreemptPrefix(sim, base_order, st);

  // Same base order, one point that never had a chance to fire: valid hit,
  // the point stays unconsumed.
  PreemptionSchedule compatible;
  compatible.base_order = base_order;
  PreemptPoint far;
  far.after = Di(1, 5);  // t1 never ran in the prefix
  compatible.points = {far};
  std::optional<PreemptHit> hit = store.FindPreemptPrefix(compatible);
  ASSERT_TRUE(hit.has_value());
  ASSERT_NE(hit->sim, nullptr);
  EXPECT_EQ(hit->state->steps, 6);
  ASSERT_EQ(hit->consumed.size(), 1u);
  EXPECT_FALSE(hit->consumed[0]);

  // A point the prefix *did* expose (its instruction was seen) but never
  // fired: resuming would skip the firing, so the probe must reject.
  PreemptionSchedule incompatible = compatible;
  incompatible.points[0].after = Di(0, 1);
  EXPECT_FALSE(store.FindPreemptPrefix(incompatible).has_value());

  // Different base order: different key, no hit.
  PreemptionSchedule other_order = compatible;
  other_order.base_order = {1, 0};
  EXPECT_FALSE(store.FindPreemptPrefix(other_order).has_value());
}

TEST(CheckpointStoreTest, PreemptPrefixMatchesFiredSequenceInOrder) {
  Scenario s = MakeScenario();
  CheckpointStore store;
  const std::vector<ThreadId> base_order = {0, 1};

  PreemptPoint fired;
  fired.after = Di(0, 2);
  fired.switch_to = 1;

  KernelSim sim(s.image.get(), s.slice);
  Advance(sim, 5);
  PreemptPrefixState st;
  st.fired = {fired};
  st.current = 1;
  st.steps = 5;
  st.pre_seen = {Di(0, 0), Di(0, 1), Di(0, 2)};
  st.post_seen = st.pre_seen;
  std::sort(st.pre_seen.begin(), st.pre_seen.end());
  std::sort(st.post_seen.begin(), st.post_seen.end());
  store.PutPreemptPrefix(sim, base_order, st);

  // Probe containing the fired point (full equality) plus an unexposed one.
  PreemptionSchedule schedule;
  schedule.base_order = base_order;
  PreemptPoint later;
  later.after = Di(1, 7);
  schedule.points = {fired, later};
  std::optional<PreemptHit> hit = store.FindPreemptPrefix(schedule);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->consumed.size(), 2u);
  EXPECT_TRUE(hit->consumed[0]);
  EXPECT_FALSE(hit->consumed[1]);

  // Same instruction, different switch target: not the same fired point —
  // the prefix enforced a different switch, so the probe must reject.
  PreemptionSchedule wrong_target = schedule;
  wrong_target.points[0].switch_to = kNoThread;
  EXPECT_FALSE(store.FindPreemptPrefix(wrong_target).has_value());
}

TEST(CheckpointStoreTest, TotalOrderLongestPrefixWins) {
  Scenario s = MakeScenario();
  CheckpointStore store;
  const std::vector<DynInstr> seq = {Di(0, 0), Di(0, 1), Di(1, 0), Di(1, 1), Di(0, 2)};

  KernelSim sim2(s.image.get(), s.slice);
  Advance(sim2, 2);
  TotalOrderPrefixState short_state;
  short_state.prefix = {seq[0], seq[1]};
  short_state.steps = 2;
  store.PutTotalOrderPrefix(sim2, short_state);

  KernelSim sim4(s.image.get(), s.slice);
  Advance(sim4, 4);
  TotalOrderPrefixState long_state;
  long_state.prefix = {seq[0], seq[1], seq[2], seq[3]};
  long_state.steps = 4;
  store.PutTotalOrderPrefix(sim4, long_state);

  TotalOrderSchedule schedule;
  schedule.sequence = seq;
  std::optional<TotalOrderHit> hit = store.FindTotalOrderPrefix(schedule);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->state->prefix.size(), 4u);

  // A sequence that diverges at index 2 can only reuse the length-2 prefix.
  TotalOrderSchedule diverging;
  diverging.sequence = {seq[0], seq[1], Di(1, 9), seq[3]};
  hit = store.FindTotalOrderPrefix(diverging);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->state->prefix.size(), 2u);

  // Different IRQ contexts: the replayed thread-id mapping would differ.
  TotalOrderSchedule with_irq = schedule;
  with_irq.irq_threads[7] = {1, 42};
  EXPECT_FALSE(store.FindTotalOrderPrefix(with_irq).has_value());
}

TEST(CheckpointStoreTest, LruEvictionKeepsBudgetAndTouchedEntries) {
  Scenario s = MakeScenario();
  StoreOptions options;
  options.byte_budget = 1;  // every deposit overflows: only the newest survives
  CheckpointStore store(options);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (int i = 1; i <= 4; ++i) {
    KernelSim sim(s.image.get(), s.slice);
    Advance(sim, i);
    TotalOrderPrefixState st;
    for (int j = 0; j < i; ++j) {
      st.prefix.push_back(Di(0, j));
    }
    st.steps = i;
    store.PutTotalOrderPrefix(sim, st);
  }
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().Delta(before);
  EXPECT_GE(CounterOf(delta, "ckpt.evictions"), 3);

  // Only the most recent deposit can remain within a 1-byte budget.
  TotalOrderSchedule probe;
  for (int j = 0; j < 4; ++j) {
    probe.sequence.push_back(Di(0, j));
  }
  std::optional<TotalOrderHit> hit = store.FindTotalOrderPrefix(probe);
  if (hit.has_value()) {
    EXPECT_EQ(hit->state->prefix.size(), 4u);
  }
}

TEST(CheckpointStoreTest, DuplicateDepositsAreDeduped) {
  Scenario s = MakeScenario();
  CheckpointStore store;
  KernelSim sim(s.image.get(), s.slice);
  Advance(sim, 3);
  TotalOrderPrefixState st;
  st.prefix = {Di(0, 0), Di(0, 1), Di(0, 2)};
  st.steps = 3;
  store.PutTotalOrderPrefix(sim, st);
  const size_t bytes_after_first = store.bytes_retained();
  store.PutTotalOrderPrefix(sim, st);
  EXPECT_EQ(store.bytes_retained(), bytes_after_first);
}

TEST(CheckpointStoreTest, BytesRetainedTracksGaugeAndDestructorDrains) {
  Scenario s = MakeScenario();
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const int64_t gauge_before =
      before.gauges.count("ckpt.bytes_retained") != 0
          ? before.gauges.at("ckpt.bytes_retained")
          : 0;
  {
    CheckpointStore store;
    KernelSim sim(s.image.get(), s.slice);
    store.PutBaseline(sim);
    Advance(sim, 2);
    TotalOrderPrefixState st;
    st.prefix = {Di(0, 0), Di(0, 1)};
    st.steps = 2;
    store.PutTotalOrderPrefix(sim, st);
    EXPECT_GT(store.bytes_retained(), 0u);
  }
  // The store's destructor returns every retained byte to the gauge.
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  const int64_t gauge_after = after.gauges.count("ckpt.bytes_retained") != 0
                                  ? after.gauges.at("ckpt.bytes_retained")
                                  : 0;
  EXPECT_EQ(gauge_after, gauge_before);
}

TEST(CheckpointStoreTest, ConcurrentAccessIsSafe) {
  Scenario s = MakeScenario();
  CheckpointStore store;
  {
    KernelSim sim(s.image.get(), s.slice);
    store.PutBaseline(sim);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &s, t] {
      for (int i = 0; i < 25; ++i) {
        KernelSim sim(s.image.get(), s.slice);
        Advance(sim, 1 + (t + i) % 5);
        TotalOrderPrefixState st;
        for (int j = 0; j <= (t + i) % 5; ++j) {
          st.prefix.push_back(Di(0, j));
        }
        st.steps = static_cast<int64_t>(st.prefix.size());
        store.PutTotalOrderPrefix(sim, st);
        TotalOrderSchedule probe;
        probe.sequence = st.prefix;
        (void)store.FindTotalOrderPrefix(probe);
        (void)store.FindBaseline();
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  std::unique_ptr<KernelSim> baseline = store.FindBaseline();
  EXPECT_NE(baseline, nullptr);
}

TEST(CheckpointStoreTest, StepAccountingCounters) {
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  AddStepAccounting(10, 4);
  AddStepAccounting(0, 0);  // zero deltas must not register
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().Delta(before);
  EXPECT_EQ(CounterOf(delta, "ckpt.executed_steps"), 10);
  EXPECT_EQ(CounterOf(delta, "ckpt.replayed_steps"), 4);
}

}  // namespace
}  // namespace ckpt
}  // namespace aitia
