// Corpus-wide checks: every modeled bug (Tables 2/3 + abstract figures) must
// reproduce under LIFS and yield a causality chain matching its ground truth
// — the per-bug backbone behind the paper's §5.1/§5.2 claims.

#include <gtest/gtest.h>

#include <string>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"

namespace aitia {
namespace {

class CorpusTest : public ::testing::TestWithParam<std::string> {};

AitiaReport Diagnose(const BugScenario& s) { return DiagnoseScenario(s); }

TEST_P(CorpusTest, ReproducesReportedFailureType) {
  BugScenario s = MakeScenario(GetParam());
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed) << s.id;
  EXPECT_EQ(report.lifs.failure->type, s.truth.failure_type) << s.id;
}

TEST_P(CorpusTest, InterleavingCountMatchesDesign) {
  BugScenario s = MakeScenario(GetParam());
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed) << s.id;
  EXPECT_EQ(report.lifs.interleaving_count, s.truth.expected_interleavings) << s.id;
  // The paper's headline LIFS observation: failures reproduce with at most
  // two preemptions (§5.1).
  EXPECT_LE(report.lifs.interleaving_count, 2) << s.id;
}

TEST_P(CorpusTest, ChainSizeMatchesDesign) {
  BugScenario s = MakeScenario(GetParam());
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed) << s.id;
  EXPECT_GE(report.causality.chain.race_count(), 1u) << s.id;
  if (s.truth.expected_chain_races > 0) {
    EXPECT_EQ(report.causality.chain.race_count(),
              static_cast<size_t>(s.truth.expected_chain_races))
        << s.id << "\n"
        << report.causality.chain.Render(*s.image);
  }
}

TEST_P(CorpusTest, AmbiguityOnlyWhereExpected) {
  BugScenario s = MakeScenario(GetParam());
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed) << s.id;
  EXPECT_EQ(report.causality.ambiguous, s.truth.expect_ambiguity)
      << s.id << "\n"
      << report.causality.chain.Render(*s.image);
}

TEST_P(CorpusTest, ChainContainsNoBenignRace) {
  BugScenario s = MakeScenario(GetParam());
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed) << s.id;
  // Every race in the chain must have a non-benign verdict (§5.2: "causality
  // chains do not contain any benign data race").
  for (const ChainNode& node : report.causality.chain.nodes()) {
    for (const RacePair& race : node.races) {
      bool found = false;
      for (const TestedRace& t : report.causality.tested) {
        if (t.race.first.di == race.first.di && t.race.second.di == race.second.di) {
          found = true;
          EXPECT_NE(t.verdict, RaceVerdict::kBenign)
              << s.id << " " << RaceLabel(*s.image, race);
        }
      }
      EXPECT_TRUE(found) << s.id;
    }
  }
}

TEST_P(CorpusTest, ChainRacesTouchTheTrueRacingState) {
  // Every race AITIA puts in a chain must be about the bug's actual racing
  // variables (globals or the heap objects they publish) — the chain points
  // the developer at the right state, not at bystander memory.
  BugScenario s = MakeScenario(GetParam());
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed) << s.id;
  const auto ranges = RacingAddressRanges(s);
  for (const ChainNode& node : report.causality.chain.nodes()) {
    for (const RacePair& race : node.races) {
      const bool touches = InRanges(ranges, race.first.addr) ||
                           InRanges(ranges, race.second.addr);
      EXPECT_TRUE(touches) << s.id << " " << RaceLabel(*s.image, race);
    }
  }
}

TEST_P(CorpusTest, FlippingAnyChainRacePreventsFailure) {
  // The chain's defining property (§2.1): "if a fix does not allow one of
  // the interleaving orders in the chain, it does not incur a failure".
  BugScenario s = MakeScenario(GetParam());
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed) << s.id;
  for (const TestedRace& t : report.causality.tested) {
    if (t.verdict == RaceVerdict::kRootCause) {
      EXPECT_FALSE(t.flip_still_failed) << s.id << " " << RaceLabel(*s.image, t.race);
    }
  }
}

std::vector<std::string> AllIds() {
  std::vector<std::string> ids;
  for (const ScenarioEntry& e : AllScenarios()) {
    ids.emplace_back(e.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllBugs, CorpusTest, ::testing::ValuesIn(AllIds()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace aitia
