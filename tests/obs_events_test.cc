// Unit tests for the diagnosis progress event bus (src/obs/events.h):
// scoped delivery, bounded oldest-first dropping, close-then-drain
// losslessness, the publish fast path, and the NDJSON frame body shape.

#include "src/obs/events.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tests/json_checker.h"

namespace aitia {
namespace obs {
namespace {

DiagEvent Event(uint64_t scope, DiagPhase phase, const std::string& name) {
  DiagEvent e;
  e.scope = scope;
  e.phase = phase;
  e.name = name;
  return e;
}

TEST(DiagPhaseNameTest, WireTokensAreStable) {
  // These tokens are the streaming protocol; changing one breaks clients.
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kQueued), "queued");
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kStarted), "started");
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kLifs), "lifs");
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kCkpt), "ckpt");
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kSupervision), "supervision");
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kTriage), "triage");
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kFlipTested), "flip-tested");
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kVerdict), "verdict");
  EXPECT_STREQ(DiagPhaseName(DiagPhase::kDone), "done");
}

TEST(EventBusTest, DeliversInOrderWithSequenceNumbers) {
  EventBus bus;
  const uint64_t scope = EventBus::NextScope();
  auto sub = bus.Subscribe(scope);
  bus.Publish(Event(scope, DiagPhase::kStarted, "a"));
  bus.Publish(Event(scope, DiagPhase::kLifs, "b"));
  bus.Publish(Event(scope, DiagPhase::kDone, "c"));

  for (int i = 0; i < 3; ++i) {
    auto e = sub->Next(1000);
    ASSERT_TRUE(e.has_value()) << i;
    EXPECT_EQ(e->seq, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(sub->dropped(), 0);
  sub->Close();
}

TEST(EventBusTest, ScopeIsolation) {
  EventBus bus;
  const uint64_t a = EventBus::NextScope();
  const uint64_t b = EventBus::NextScope();
  auto sub_a = bus.Subscribe(a);
  auto sub_b = bus.Subscribe(b);
  bus.Publish(Event(a, DiagPhase::kStarted, "for-a"));
  bus.Publish(Event(b, DiagPhase::kStarted, "for-b"));
  bus.Publish(Event(0, DiagPhase::kStarted, "unscoped"));  // never delivered

  auto ea = sub_a->Next(1000);
  ASSERT_TRUE(ea.has_value());
  EXPECT_EQ(ea->name, "for-a");
  EXPECT_FALSE(sub_a->Next(10).has_value());  // nothing else for a

  auto eb = sub_b->Next(1000);
  ASSERT_TRUE(eb.has_value());
  EXPECT_EQ(eb->name, "for-b");
  sub_a->Close();
  sub_b->Close();
}

TEST(EventBusTest, BoundedQueueDropsOldest) {
  EventBus bus;
  const uint64_t scope = EventBus::NextScope();
  auto sub = bus.Subscribe(scope, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    bus.Publish(Event(scope, DiagPhase::kLifs, "e" + std::to_string(i)));
  }
  // The four *newest* survive; the six oldest were evicted and counted.
  std::vector<std::string> names;
  while (auto e = sub->Next(0)) {
    names.push_back(e->name);
  }
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names.front(), "e6");
  EXPECT_EQ(names.back(), "e9");
  EXPECT_EQ(sub->dropped(), 6);
  sub->Close();
}

TEST(EventBusTest, CloseThenDrainIsLossless) {
  EventBus bus;
  const uint64_t scope = EventBus::NextScope();
  auto sub = bus.Subscribe(scope);
  bus.Publish(Event(scope, DiagPhase::kVerdict, "v1"));
  bus.Publish(Event(scope, DiagPhase::kDone, "d1"));
  sub->Close();
  EXPECT_TRUE(sub->closed());
  // Buffered events still drain after Close()...
  ASSERT_TRUE(sub->Next(0).has_value());
  ASSERT_TRUE(sub->Next(0).has_value());
  EXPECT_FALSE(sub->Next(0).has_value());
  // ...but nothing new is enqueued.
  bus.Publish(Event(scope, DiagPhase::kDone, "late"));
  EXPECT_FALSE(sub->Next(10).has_value());
}

TEST(EventBusTest, NextWakesOnCloseFromAnotherThread) {
  EventBus bus;
  const uint64_t scope = EventBus::NextScope();
  auto sub = bus.Subscribe(scope);
  std::thread closer([&] { sub->Close(); });
  // A long-timeout Next must return promptly once the closer runs, instead
  // of sleeping out the full timeout.
  EXPECT_FALSE(sub->Next(30000).has_value());
  EXPECT_TRUE(sub->closed());
  closer.join();
}

TEST(EventBusTest, ActiveTracksSubscriptions) {
  EventBus bus;
  EXPECT_FALSE(bus.active());
  auto sub = bus.Subscribe(EventBus::NextScope());
  EXPECT_TRUE(bus.active());
  sub->Close();
  // Publishing after close compacts the dead subscription away.
  bus.Publish(Event(sub->scope(), DiagPhase::kDone, "x"));
  EXPECT_FALSE(bus.active());
}

TEST(EventBusTest, PublishWithNoSubscriberIsHarmless) {
  EventBus bus;
  for (int i = 0; i < 1000; ++i) {
    bus.Publish(Event(12345, DiagPhase::kLifs, "nobody-listening"));
  }
  EXPECT_FALSE(bus.active());
}

TEST(EventBusTest, NextScopeIsMonotonicAndNonzero) {
  const uint64_t a = EventBus::NextScope();
  const uint64_t b = EventBus::NextScope();
  EXPECT_NE(a, 0u);
  EXPECT_LT(a, b);
}

TEST(EventBusTest, ConcurrentPublishersSingleConsumer) {
  EventBus bus;
  const uint64_t scope = EventBus::NextScope();
  auto sub = bus.Subscribe(scope, /*capacity=*/4096);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> publishers;
  for (int t = 0; t < kThreads; ++t) {
    publishers.emplace_back([&bus, scope, t] {
      for (int i = 0; i < kPerThread; ++i) {
        bus.Publish(Event(scope, DiagPhase::kLifs,
                          std::to_string(t) + ":" + std::to_string(i)));
      }
    });
  }
  for (std::thread& p : publishers) {
    p.join();
  }
  sub->Close();
  int received = 0;
  uint64_t last_seq = 0;
  while (auto e = sub->Next(0)) {
    EXPECT_GE(e->seq, last_seq);
    last_seq = e->seq;
    ++received;
  }
  EXPECT_EQ(received, kThreads * kPerThread);
  EXPECT_EQ(sub->dropped(), 0);
}

TEST(PublishDiagEventTest, GlobalHelperRespectsScopeAndSubscribers) {
  // Scope 0 is "not publishing": even with a live subscription the helper
  // must not deliver anything.
  const uint64_t scope = EventBus::NextScope();
  auto sub = EventBus::Global().Subscribe(scope);
  PublishDiagEvent(0, DiagPhase::kStarted, "unscoped");
  PublishDiagEvent(scope, DiagPhase::kStarted, "svc.started", "detail-text",
                   {{"index", 1}, {"total", 3}});
  auto e = sub->Next(1000);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->name, "svc.started");
  EXPECT_EQ(e->detail, "detail-text");
  ASSERT_EQ(e->counters.size(), 2u);
  EXPECT_EQ(e->counters[0].first, "index");
  EXPECT_EQ(e->counters[1].second, 3);
  EXPECT_FALSE(sub->Next(10).has_value());
  sub->Close();
}

TEST(DiagEventToJsonTest, FrameBodyShape) {
  DiagEvent e = Event(7, DiagPhase::kFlipTested, "ca.flip");
  e.seq = 42;
  e.detail = "race \"r1\"\nwith newline";
  e.counters = {{"index", 2}, {"total", 5}};
  const std::string json = DiagEventToJson(e);
  std::string why;
  EXPECT_TRUE(testing_json::IsValidJson(json, &why)) << why << "\n" << json;
  EXPECT_NE(json.find("\"phase\": \"flip-tested\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"seq\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"ca.flip\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;  // detail escaped
  EXPECT_NE(json.find("\"total\": 5"), std::string::npos) << json;

  // detail/counters are omitted when empty, not emitted as "" / {}.
  const std::string bare = DiagEventToJson(Event(7, DiagPhase::kDone, "svc.done"));
  EXPECT_TRUE(testing_json::IsValidJson(bare, &why)) << why;
  EXPECT_EQ(bare.find("detail"), std::string::npos) << bare;
  EXPECT_EQ(bare.find("counters"), std::string::npos) << bare;
}

}  // namespace
}  // namespace obs
}  // namespace aitia
