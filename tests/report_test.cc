// Unit tests for JSON report export (src/core/report).
//
// Well-formedness is asserted with a strict recursive-descent JSON checker
// (tests/json_checker.h) rather than substring matching, across the whole
// corpus — diagnosed and undiagnosed reports alike.

#include <gtest/gtest.h>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/report.h"
#include "tests/json_checker.h"

namespace aitia {
namespace {

using testing_json::IsValidJson;

void ExpectValidJson(const std::string& json) {
  std::string why;
  EXPECT_TRUE(IsValidJson(json, &why)) << why << "\nin: " << json;
}

TEST(JsonCheckerTest, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, -3, 1e9, \"x\", true, false, null]"));
  EXPECT_TRUE(IsValidJson("{\"a\": {\"b\": [\"c\\n\", \"\\u0001\"]}}"));
  EXPECT_TRUE(IsValidJson("  \"lone string\"  "));
}

TEST(JsonCheckerTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{]"));
  EXPECT_FALSE(IsValidJson("{\"a\": }"));
  EXPECT_FALSE(IsValidJson("{\"a\": 1,}"));
  EXPECT_FALSE(IsValidJson("[1 2]"));
  EXPECT_FALSE(IsValidJson("{} extra"));
  EXPECT_FALSE(IsValidJson("{'a': 1}"));
  EXPECT_FALSE(IsValidJson("01"));
  // The failure modes an escaping bug would produce:
  EXPECT_FALSE(IsValidJson("\"raw \n newline\""));     // unescaped control char
  EXPECT_FALSE(IsValidJson("\"bad \\q escape\""));     // unknown escape
  EXPECT_FALSE(IsValidJson("\"bad \\u00zz escape\"")); // malformed \u
  EXPECT_FALSE(IsValidJson("\"unterminated"));
  EXPECT_FALSE(IsValidJson("\"stray quote \" inside\""));
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscapeTest, EveryByteEscapesToValidJson) {
  // Exhaustive: a string of each single byte must embed into a valid
  // document (multi-byte UTF-8 is out of scope for the simulated kernel's
  // ASCII notes, so 0x80.. is only checked not to break framing).
  for (int b = 1; b < 256; ++b) {
    const std::string raw(1, static_cast<char>(b));
    const std::string doc = "{\"k\": \"" + JsonEscape(raw) + "\"}";
    std::string why;
    EXPECT_TRUE(IsValidJson(doc, &why)) << "byte " << b << ": " << why;
  }
}

TEST(ReportJsonTest, DiagnosedReportHasEveryField) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  std::string json = ReportToJson(report, *s.image);

  EXPECT_NE(json.find("\"diagnosed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"failure\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel BUG (BUG_ON)\""), std::string::npos);
  EXPECT_NE(json.find("\"interleavings\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"races\": ["), std::string::npos);
  EXPECT_NE(json.find("\"root-cause\""), std::string::npos);
  EXPECT_NE(json.find("\"benign\""), std::string::npos);
  EXPECT_NE(json.find("\"chain\""), std::string::npos);
  EXPECT_NE(json.find("B17 => A12"), std::string::npos);
  ExpectValidJson(json);
}

TEST(ReportJsonTest, UndiagnosedReportIsMinimal) {
  BugScenario s = MakeScenario("fig-1");
  AitiaOptions options;
  options.lifs.target_type = FailureType::kDoubleFree;
  options.lifs.max_schedules = 20;
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);
  ASSERT_FALSE(report.diagnosed);
  std::string json = ReportToJson(report, *s.image);
  EXPECT_NE(json.find("\"diagnosed\": false"), std::string::npos);
  EXPECT_EQ(json.find("\"chain\""), std::string::npos);
  ExpectValidJson(json);
}

TEST(ReportJsonTest, ChainEdgesIndexNodes) {
  BugScenario s = MakeScenario("fig-5");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  const CausalityChain& chain = report.causality.chain;
  for (const auto& [from, to] : chain.edges()) {
    EXPECT_LT(from, chain.nodes().size());
    EXPECT_LT(to, chain.nodes().size());
  }
  std::string json = ReportToJson(report, *s.image);
  EXPECT_NE(json.find("\"edges\": [[0, 1]]"), std::string::npos) << json;
  ExpectValidJson(json);
}

TEST(ReportJsonTest, TriageSectionRecordsStaticVerdicts) {
  // syz-09 has statically discharged flips: every race entry must carry a
  // "triage" object, skipped entries must say so with a stage and reason,
  // and the causality rollup must expose the skip count — all still strictly
  // valid JSON (triage reasons are free text and must survive escaping).
  BugScenario s = MakeScenario("syz-09");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  ASSERT_GT(report.causality.flips_skipped, 0);
  std::string json = ReportToJson(report, *s.image);
  EXPECT_NE(json.find("\"triage\": {\"verdict\": "), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"provably-benign\", \"stage\": \"hb\""),
            std::string::npos);
  EXPECT_NE(json.find("\"skipped\": true"), std::string::npos);
  EXPECT_NE(json.find("\"flips_skipped\": "), std::string::npos);
  ExpectValidJson(json);

  // With the pre-filter off the same scenario must report zero skips and
  // only abstentions.
  AitiaOptions off;
  off.set_prefilter(false);
  AitiaReport baseline = DiagnoseScenario(s, off);
  std::string off_json = ReportToJson(baseline, *s.image);
  EXPECT_NE(off_json.find("\"flips_skipped\": 0"), std::string::npos);
  EXPECT_EQ(off_json.find("\"skipped\": true"), std::string::npos);
  ExpectValidJson(off_json);
}

// Every corpus scenario's report — whatever its shape (ambiguity, IRQ
// threads, degraded flags, punctuation-heavy notes) — must serialize to
// strictly valid JSON.
TEST(ReportJsonTest, WholeCorpusEmitsValidJson) {
  for (const ScenarioEntry& entry : AllScenarios()) {
    SCOPED_TRACE(entry.id);
    BugScenario s = entry.make();
    AitiaReport report = DiagnoseScenario(s);
    ExpectValidJson(ReportToJson(report, *s.image));
  }
}

}  // namespace
}  // namespace aitia
