// Unit tests for JSON report export (src/core/report).

#include <gtest/gtest.h>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/report.h"

namespace aitia {
namespace {

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ReportJsonTest, DiagnosedReportHasEveryField) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  std::string json = ReportToJson(report, *s.image);

  EXPECT_NE(json.find("\"diagnosed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"failure\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel BUG (BUG_ON)\""), std::string::npos);
  EXPECT_NE(json.find("\"interleavings\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"races\": ["), std::string::npos);
  EXPECT_NE(json.find("\"root-cause\""), std::string::npos);
  EXPECT_NE(json.find("\"benign\""), std::string::npos);
  EXPECT_NE(json.find("\"chain\""), std::string::npos);
  EXPECT_NE(json.find("B17 => A12"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ReportJsonTest, UndiagnosedReportIsMinimal) {
  BugScenario s = MakeScenario("fig-1");
  AitiaOptions options;
  options.lifs.target_type = FailureType::kDoubleFree;
  options.lifs.max_schedules = 20;
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);
  ASSERT_FALSE(report.diagnosed);
  std::string json = ReportToJson(report, *s.image);
  EXPECT_NE(json.find("\"diagnosed\": false"), std::string::npos);
  EXPECT_EQ(json.find("\"chain\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ReportJsonTest, ChainEdgesIndexNodes) {
  BugScenario s = MakeScenario("fig-5");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  const CausalityChain& chain = report.causality.chain;
  for (const auto& [from, to] : chain.edges()) {
    EXPECT_LT(from, chain.nodes().size());
    EXPECT_LT(to, chain.nodes().size());
  }
  std::string json = ReportToJson(report, *s.image);
  EXPECT_NE(json.find("\"edges\": [[0, 1]]"), std::string::npos) << json;
}

}  // namespace
}  // namespace aitia
