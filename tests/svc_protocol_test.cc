// Unit tests for the service-layer building blocks beneath the daemon:
// the hostile-input JSON parser, the bounded LRU result cache, the sharded
// admission queue, and the scenario fingerprint the cache is keyed by.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/bugs/registry.h"
#include "src/ingest/ingest.h"
#include "src/ingest/serialize.h"
#include "src/svc/cache.h"
#include "src/svc/jsonv.h"
#include "src/svc/work_queue.h"
#include "src/util/strings.h"

namespace aitia {
namespace svc {
namespace {

// --- ParseJson ---------------------------------------------------------------

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_EQ(ParseJson("null").value().kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(ParseJson("true").value().AsBool());
  EXPECT_FALSE(ParseJson("false").value().AsBool(true));
  EXPECT_EQ(ParseJson("42").value().AsInt(), 42);
  EXPECT_EQ(ParseJson("-7").value().AsInt(), -7);
  EXPECT_DOUBLE_EQ(ParseJson("2.5e2").value().AsDouble(), 250.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().AsString(), "hi");
}

TEST(JsonParserTest, ParsesRequestShapedObject) {
  auto parsed = ParseJson(
      R"({"verb":"diagnose","id":"r1","scenario":"fig-1","jobs":2,)"
      R"("deadline_ms":5000,"no_cache":true,"tags":[1,2,3]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue doc = std::move(parsed).value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("verb")->AsString(), "diagnose");
  EXPECT_EQ(doc.Find("id")->AsString(), "r1");
  EXPECT_EQ(doc.Find("jobs")->AsInt(), 2);
  EXPECT_EQ(doc.Find("deadline_ms")->AsInt(), 5000);
  EXPECT_TRUE(doc.Find("no_cache")->AsBool());
  ASSERT_EQ(doc.Find("tags")->items().size(), 3u);
  EXPECT_EQ(doc.Find("tags")->items()[2].AsInt(), 3);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonParserTest, DecodesEscapesAndSurrogatePairs) {
  auto parsed = ParseJson(R"("a\"b\\c\n\t\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), "a\"b\\c\n\tA\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, MalformedInputsYieldStatusNotAbort) {
  const char* bad[] = {
      "",        "{",         "}",          "{\"a\":}",   "{\"a\" 1}",
      "[1,]",    "{,}",       "nul",        "tru",        "+1",
      "01",      "1.",        ".5",         "1e",         "\"unterminated",
      "\"\\x\"", "\"\\u12\"", "\"\\ud800\"", "{\"a\":1}x", "[1 2]",
      "'single'", "{\"a\":1,}",
  };
  for (const char* text : bad) {
    auto parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(JsonParserTest, ErrorsCarryByteOffsets) {
  auto parsed = ParseJson("{\"a\": bad}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("offset"), std::string::npos)
      << parsed.status().ToString();
}

TEST(JsonParserTest, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep, /*max_depth=*/32).ok());
  EXPECT_TRUE(ParseJson(deep, /*max_depth=*/64).ok());
  // Depth bombs cannot stack-overflow the daemon regardless of input size.
  std::string bomb(100000, '[');
  EXPECT_FALSE(ParseJson(bomb).ok());
}

TEST(JsonParserTest, RoundTripsDaemonResponses) {
  // The parser must accept what the daemon's own writers emit.
  auto parsed = ParseJson(
      R"({"id":"d1","verb":"diagnose","scenario":"fig-1","status":"ok",)"
      R"("cache":"miss","elapsed_ms":0.959,"report":{"diagnosed":true}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("report")->Find("diagnosed")->AsBool(), true);
}

// --- ResultCache -------------------------------------------------------------

TEST(ResultCacheTest, GetAfterPut) {
  ResultCache cache(4);
  cache.Put(1, {"ok", "{\"r\":1}"});
  auto hit = cache.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status_word, "ok");
  EXPECT_EQ(hit->report_json, "{\"r\":1}");
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(3);
  cache.Put(1, {"ok", "1"});
  cache.Put(2, {"ok", "2"});
  cache.Put(3, {"ok", "3"});
  ASSERT_TRUE(cache.Get(1).has_value());  // 1 is now most-recent
  cache.Put(4, {"ok", "4"});              // evicts 2, the LRU entry
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_TRUE(cache.Get(4).has_value());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ResultCacheTest, PutRefreshesExistingKey) {
  ResultCache cache(2);
  cache.Put(1, {"ok", "old"});
  cache.Put(1, {"ok", "new"});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1)->report_json, "new");
}

TEST(ResultCacheTest, CapacityZeroDisables) {
  ResultCache cache(0);
  cache.Put(1, {"ok", "1"});
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, StaysBoundedUnderChurn) {
  ResultCache cache(8);
  for (uint64_t k = 0; k < 10000; ++k) {
    cache.Put(k, {"ok", "x"});
    ASSERT_LE(cache.size(), 8u);
  }
}

// --- ScenarioFingerprint -----------------------------------------------------

TEST(FingerprintTest, StableAcrossRequestForms) {
  // The same scenario must fingerprint identically whether built from the
  // corpus factory or re-assembled from its own .ait serialization — that is
  // what makes the cache idempotent across request forms.
  const BugScenario direct = MakeScenario("fig-1");
  const uint64_t direct_fp = ScenarioFingerprint(direct);
  const std::string ait = ScenarioToAit(direct);
  auto reparsed = ScenarioFromAitText(ait, "<test>");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(ScenarioFingerprint(reparsed.value()), direct_fp);
}

TEST(FingerprintTest, DistinctAcrossCorpus) {
  std::vector<uint64_t> seen;
  for (const ScenarioEntry& entry : AllScenarios()) {
    const uint64_t fp = ScenarioFingerprint(entry.make());
    for (uint64_t other : seen) {
      EXPECT_NE(fp, other) << "collision at " << entry.id;
    }
    seen.push_back(fp);
  }
}

TEST(FingerprintTest, Fnv1a64KnownVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// --- WorkQueue ---------------------------------------------------------------

TEST(WorkQueueTest, AcceptedTasksRunExactlyOnce) {
  std::atomic<int> ran{0};
  {
    WorkQueue queue({/*workers=*/2, /*shards=*/4, /*shard_capacity=*/64});
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(queue.TryPush(static_cast<uint64_t>(i),
                              [&ran] { ran.fetch_add(1); }),
                WorkQueue::Push::kAccepted);
    }
    queue.Drain();
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkQueueTest, OverloadedWhenTargetShardFull) {
  // No workers consuming (one worker pinned on a gate), shard_capacity 2:
  // the third push to the same shard must shed.
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  WorkQueue queue({/*workers=*/1, /*shards=*/2, /*shard_capacity=*/2});
  ASSERT_EQ(queue.TryPush(0,
                          [&] {
                            while (!release.load()) {
                              std::this_thread::sleep_for(
                                  std::chrono::microseconds(50));
                            }
                            ran.fetch_add(1);
                          }),
            WorkQueue::Push::kAccepted);
  // Wait for the worker to pick up the gate so shard 0 is empty again.
  while (queue.depth() != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_EQ(queue.TryPush(0, [&ran] { ran.fetch_add(1); }),
            WorkQueue::Push::kAccepted);
  EXPECT_EQ(queue.TryPush(2, [&ran] { ran.fetch_add(1); }),  // 2 % 2 == shard 0
            WorkQueue::Push::kAccepted);
  EXPECT_EQ(queue.TryPush(4, [&ran] { ran.fetch_add(1); }),
            WorkQueue::Push::kOverloaded);
  // The sibling shard still has room: rejection is per-shard, not global.
  EXPECT_EQ(queue.TryPush(1, [&ran] { ran.fetch_add(1); }),
            WorkQueue::Push::kAccepted);
  EXPECT_LE(queue.depth(), 4u);
  release.store(true);
  queue.Drain();
  EXPECT_EQ(ran.load(), 4);  // gate + 3 accepted; the shed task never ran
}

TEST(WorkQueueTest, RejectsAfterDrain) {
  WorkQueue queue({/*workers=*/1, /*shards=*/1, /*shard_capacity=*/4});
  queue.Drain();
  std::atomic<int> ran{0};
  EXPECT_EQ(queue.TryPush(0, [&ran] { ran.fetch_add(1); }),
            WorkQueue::Push::kShutdown);
  queue.Drain();  // idempotent
  EXPECT_EQ(ran.load(), 0);
}

TEST(WorkQueueTest, DrainRunsEverythingAccepted) {
  // Push from several threads while another thread drains: whatever was
  // accepted must run exactly once, and nothing may be lost or doubled.
  std::atomic<int> accepted{0};
  std::atomic<int> ran{0};
  WorkQueue queue({/*workers=*/2, /*shards=*/4, /*shard_capacity=*/8});
  std::vector<std::thread> pushers;
  std::atomic<bool> stop{false};
  for (int t = 0; t < 4; ++t) {
    pushers.emplace_back([&, t] {
      for (uint64_t i = 0; !stop.load() && i < 10000; ++i) {
        if (queue.TryPush(i * 4 + static_cast<uint64_t>(t),
                          [&ran] { ran.fetch_add(1); }) ==
            WorkQueue::Push::kAccepted) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Drain();
  stop.store(true);
  for (std::thread& t : pushers) {
    t.join();
  }
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace svc
}  // namespace aitia
