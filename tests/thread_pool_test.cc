// Shutdown-robustness regression tests for util::ThreadPool.
//
// The contract under test: every accepted task runs; a task submitted after
// shutdown begins is rejected deterministically (returns false, never runs);
// nothing can sit in the queue unexecuted.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/thread_pool.h"

namespace aitia {
namespace {

TEST(ThreadPoolShutdownTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
    }
  }  // destructor: accepted tasks must all run before join
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> counter{0};
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 0);
  pool.Wait();  // must not hang: the rejected task was never in flight
  pool.Shutdown();  // idempotent
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolShutdownTest, TasksSubmittedDuringShutdownRunOrReject) {
  // Tasks cascade re-submissions while the pool is torn down. Regardless of
  // where shutdown lands in the cascade, accepted == ran must hold — the
  // "either run or rejected" determinism this PR fixes.
  std::atomic<int> accepted{0};
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      if (pool.Submit([&pool, &accepted, &ran] {
            ran.fetch_add(1);
            for (int j = 0; j < 4; ++j) {
              std::this_thread::sleep_for(std::chrono::microseconds(50));
              if (pool.Submit([&ran] { ran.fetch_add(1); })) {
                accepted.fetch_add(1);
              }
            }
          })) {
        accepted.fetch_add(1);
      }
    }
  }  // destructor races the cascade
  EXPECT_EQ(ran.load(), accepted.load());
}

TEST(ThreadPoolShutdownTest, ParallelForOnStoppedPoolRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::vector<int> hits(16, 0);
  ParallelFor(pool, hits.size(), [&hits](size_t i) { hits[i] = 1; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTrySubmitTest, AcceptedTasksRun) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2, /*queue_limit=*/1000);
    int accepted = 0;
    for (int i = 0; i < 100; ++i) {
      if (pool.TrySubmit([&counter] { counter.fetch_add(1); })) {
        ++accepted;
      }
    }
    EXPECT_EQ(accepted, 100);  // queue never saturates at this limit
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTrySubmitTest, RejectsWhenSaturated) {
  // One worker pinned on a gate, queue_limit 2: the first TrySubmit runs (or
  // queues), the next two fill the queue, the fourth must bounce — without
  // blocking the submitter.
  ThreadPool pool(1, /*queue_limit=*/2);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ran.fetch_add(1);
  }));
  // Wait until the worker has dequeued the gate task, so queue depth is 0.
  while (pool.QueueDepthForTest() != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  std::atomic<int> never{0};
  EXPECT_FALSE(pool.TrySubmit([&never] { never.fetch_add(1); }));
  release.store(true);
  pool.Wait();
  EXPECT_EQ(ran.load(), 3);     // gate + the two accepted tasks
  EXPECT_EQ(never.load(), 0);   // the rejected task never runs
  // Capacity freed up again: the next TrySubmit is accepted.
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  pool.Wait();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTrySubmitTest, RejectedAfterShutdown) {
  ThreadPool pool(2, /*queue_limit=*/8);
  pool.Shutdown();
  std::atomic<int> counter{0};
  EXPECT_FALSE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTrySubmitTest, ZeroLimitMeansUnbounded) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);  // default queue_limit = 0: TrySubmit never saturates
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
    }
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolShutdownTest, WaitAfterShutdownReturns) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  pool.Wait();
  EXPECT_EQ(counter.load(), 8);
}

}  // namespace
}  // namespace aitia
