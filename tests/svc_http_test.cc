// Tests for the HTTP scrape plane (src/svc/http.h) and the Prometheus text
// exposition (src/obs/prometheus.h).
//
// The exposition is validated with an *independent* line-format parser
// written against the Prometheus text-format spec (version 0.0.4), not
// against the renderer's own helpers — the renderer must satisfy a reader
// that never saw its implementation. The HTTP server is exercised over real
// loopback sockets: status lines, content types, routing, hostile requests.

#include "src/svc/http.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/prometheus.h"
#include "tests/json_checker.h"

namespace aitia {
namespace {

// ---------------------------------------------------------------------------
// Independent Prometheus text-format (0.0.4) validator.

bool IsPromNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
}
bool IsPromNameChar(char c) { return IsPromNameStart(c) || (c >= '0' && c <= '9'); }

bool ValidPromName(const std::string& name) {
  if (name.empty() || !IsPromNameStart(name[0])) {
    return false;
  }
  for (char c : name) {
    if (!IsPromNameChar(c)) {
      return false;
    }
  }
  return true;
}

// Parses one sample value token: NaN, +Inf, -Inf, or a C float literal.
bool ParsePromValue(const std::string& token, double* out) {
  if (token == "NaN") {
    *out = std::nan("");
    return true;
  }
  if (token == "+Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (token == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' && !token.empty();
}

struct PromSample {
  std::string family;  // name with _bucket/_sum/_count folded to the base
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

// Validates the whole exposition; returns false with a reason on the first
// violation. On success fills `samples` and `types` (family -> TYPE).
bool ValidateExposition(const std::string& text, std::vector<PromSample>* samples,
                        std::map<std::string, std::string>* types, std::string* why) {
  auto fail = [&](const std::string& reason, const std::string& line) {
    *why = reason + ": '" + line + "'";
    return false;
  };
  if (!text.empty() && text.back() != '\n') {
    *why = "exposition must end with a newline";
    return false;
  }
  std::map<std::string, bool> family_has_samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;  // blank lines are legal separators
    }
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      if (kind != "HELP" && kind != "TYPE") {
        continue;  // plain comment
      }
      if (!ValidPromName(name)) {
        return fail("bad metric name in # " + kind, line);
      }
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail("unknown TYPE", line);
        }
        if (types->count(name) != 0) {
          return fail("duplicate TYPE for family", line);
        }
        if (family_has_samples[name]) {
          return fail("TYPE after samples of its family", line);
        }
        (*types)[name] = type;
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    PromSample s;
    size_t pos = 0;
    while (pos < line.size() && IsPromNameChar(line[pos])) {
      ++pos;
    }
    s.name = line.substr(0, pos);
    if (!ValidPromName(s.name)) {
      return fail("bad sample metric name", line);
    }
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        size_t key_start = pos;
        while (pos < line.size() && IsPromNameChar(line[pos])) {
          ++pos;
        }
        const std::string key = line.substr(key_start, pos - key_start);
        if (key.empty() || pos + 1 >= line.size() || line[pos] != '=' ||
            line[pos + 1] != '"') {
          return fail("malformed label", line);
        }
        pos += 2;
        std::string value;
        bool closed = false;
        while (pos < line.size()) {
          const char c = line[pos];
          if (c == '"') {
            closed = true;
            ++pos;
            break;
          }
          if (c == '\\') {
            if (pos + 1 >= line.size()) {
              return fail("dangling escape in label value", line);
            }
            const char e = line[pos + 1];
            if (e != '\\' && e != '"' && e != 'n') {
              return fail("unknown escape in label value", line);
            }
            value += e == 'n' ? '\n' : e;
            pos += 2;
            continue;
          }
          value += c;
          ++pos;
        }
        if (!closed) {
          return fail("unterminated label value", line);
        }
        s.labels[key] = value;
        if (pos < line.size() && line[pos] == ',') {
          ++pos;
        }
      }
      if (pos >= line.size() || line[pos] != '}') {
        return fail("unterminated label set", line);
      }
      ++pos;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail("expected space before value", line);
    }
    std::istringstream rest(line.substr(pos + 1));
    std::string value_token;
    rest >> value_token;
    if (!ParsePromValue(value_token, &s.value)) {
      return fail("unparseable sample value", line);
    }

    // Fold histogram series names onto their family for the TYPE check.
    s.family = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::strlen(suffix);
      if (s.name.size() > len && s.name.compare(s.name.size() - len, len, suffix) == 0) {
        const std::string base = s.name.substr(0, s.name.size() - len);
        if (types->count(base) != 0 && (*types)[base] == "histogram") {
          s.family = base;
        }
      }
    }
    if (types->count(s.family) == 0) {
      return fail("sample with no preceding TYPE", line);
    }
    family_has_samples[s.family] = true;
    samples->push_back(std::move(s));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Helper: one raw HTTP exchange against a live server.

std::string RawRequest(int port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    return "";
  }
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) {
      break;
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.0\r\nHost: x\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

// ---------------------------------------------------------------------------
// Exposition helpers.

TEST(PrometheusTest, SanitizeName) {
  EXPECT_EQ(obs::PromSanitizeName("svc.requests"), "svc_requests");
  EXPECT_EQ(obs::PromSanitizeName("ckpt.entry_hits_max"), "ckpt_entry_hits_max");
  EXPECT_EQ(obs::PromSanitizeName("1bad"), "_1bad");
  EXPECT_EQ(obs::PromSanitizeName("has space+plus"), "has_space_plus");
  EXPECT_EQ(obs::PromSanitizeName(""), "_");
}

TEST(PrometheusTest, EscapeLabelValueAndHelp) {
  EXPECT_EQ(obs::PromEscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(obs::PromEscapeHelp("a\\b\"c\nd"), "a\\\\b\"c\\nd");  // quotes legal in HELP
}

TEST(PrometheusTest, FormatValue) {
  EXPECT_EQ(obs::PromFormatValue(0), "0");
  EXPECT_EQ(obs::PromFormatValue(42), "42");
  EXPECT_EQ(obs::PromFormatValue(-7), "-7");
  EXPECT_EQ(obs::PromFormatValue(std::nan("")), "NaN");
  EXPECT_EQ(obs::PromFormatValue(HUGE_VAL), "+Inf");
  EXPECT_EQ(obs::PromFormatValue(-HUGE_VAL), "-Inf");
  double parsed = 0;
  ASSERT_TRUE(ParsePromValue(obs::PromFormatValue(0.25), &parsed));
  EXPECT_EQ(parsed, 0.25);
}

TEST(PrometheusTest, ExpositionOfHostileRegistryValidates) {
  // A local registry seeded with names chosen to stress sanitization, plus a
  // histogram to exercise the cumulative-bucket encoding.
  obs::MetricsRegistry registry;
  registry.GetCounter("svc.requests")->Add(3);
  registry.GetCounter("1starts.with-digit")->Add(1);
  registry.GetCounter("weird name+punct!")->Increment();
  registry.GetGauge("svc.queue_depth")->Set(-2);
  obs::Histogram* h = registry.GetHistogram("svc.latency_ms", {1, 5, 25, 125});
  for (int64_t v : {0, 1, 2, 30, 1000, 3, 6}) {
    h->Record(v);
  }

  const std::string text = obs::ToPrometheusText(registry.Snapshot());
  std::vector<PromSample> samples;
  std::map<std::string, std::string> types;
  std::string why;
  ASSERT_TRUE(ValidateExposition(text, &samples, &types, &why)) << why << "\n" << text;

  // Counters carry the conventional _total suffix and the counter TYPE.
  EXPECT_EQ(types["aitia_svc_requests_total"], "counter");
  EXPECT_EQ(types["aitia__1starts_with_digit_total"], "counter");
  EXPECT_EQ(types["aitia_weird_name_punct__total"], "counter");
  EXPECT_EQ(types["aitia_svc_queue_depth"], "gauge");
  EXPECT_EQ(types["aitia_svc_latency_ms"], "histogram");

  // Histogram semantics: cumulative buckets, increasing le edges closed by
  // +Inf, and bucket{+Inf} == _count.
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  double sum = -1, count = -1;
  for (const PromSample& s : samples) {
    if (s.family != "aitia_svc_latency_ms") {
      if (s.name == "aitia_svc_queue_depth") {
        EXPECT_EQ(s.value, -2);
      }
      continue;
    }
    if (s.name == "aitia_svc_latency_ms_bucket") {
      const auto le = s.labels.find("le");
      ASSERT_NE(le, s.labels.end());
      double edge = 0;
      ASSERT_TRUE(ParsePromValue(le->second, &edge)) << le->second;
      buckets.emplace_back(edge, s.value);
    } else if (s.name == "aitia_svc_latency_ms_sum") {
      sum = s.value;
    } else if (s.name == "aitia_svc_latency_ms_count") {
      count = s.value;
    }
  }
  ASSERT_EQ(buckets.size(), 5u);  // 4 edges + +Inf
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1].first, buckets[i].first);
    EXPECT_LE(buckets[i - 1].second, buckets[i].second) << "buckets must be cumulative";
  }
  EXPECT_TRUE(std::isinf(buckets.back().first));
  EXPECT_EQ(buckets.back().second, 7);  // all recorded values
  EXPECT_EQ(count, 7);
  EXPECT_EQ(sum, 0 + 1 + 2 + 30 + 1000 + 3 + 6);
}

TEST(PrometheusTest, ValidatorRejectsMalformedLines) {
  std::vector<PromSample> samples;
  std::map<std::string, std::string> types;
  std::string why;
  // The validator itself must have teeth, or the test above proves nothing.
  EXPECT_FALSE(ValidateExposition("no_type_line 1\n", &samples, &types, &why));
  EXPECT_FALSE(ValidateExposition("# TYPE x counter\nx{bad-label=\"v\"} 1\n",
                                  &samples, &types, &why));
  EXPECT_FALSE(ValidateExposition("# TYPE x counter\nx notanumber\n",
                                  &samples, &types, &why));
  EXPECT_FALSE(ValidateExposition("# TYPE x counter\nx 1", &samples, &types, &why))
      << "missing trailing newline must be rejected";
  EXPECT_FALSE(ValidateExposition("# TYPE x counter\n# TYPE x counter\nx 1\n",
                                  &samples, &types, &why));
}

// ---------------------------------------------------------------------------
// Live server.

TEST(HttpServerTest, ServesMetricsHealthStatusAndErrors) {
  obs::MetricsRegistry registry;
  registry.GetCounter("svc.requests")->Add(5);
  std::atomic<bool> healthy{true};

  svc::HttpServerOptions options;
  options.port = 0;  // ephemeral
  options.metrics = [&registry] { return obs::ToPrometheusText(registry.Snapshot()); };
  options.statusz = [] { return std::string("{\"in_flight\":0,\"draining\":false}"); };
  options.healthy = [&healthy] { return healthy.load(); };
  svc::HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // /metrics: 200, the versioned content type, and a body that satisfies the
  // independent exposition validator.
  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);
  std::vector<PromSample> samples;
  std::map<std::string, std::string> types;
  std::string why;
  EXPECT_TRUE(ValidateExposition(BodyOf(metrics), &samples, &types, &why)) << why;
  EXPECT_EQ(types.count("aitia_svc_requests_total"), 1u);

  // /healthz flips with the callback.
  EXPECT_EQ(Get(server.port(), "/healthz").rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_EQ(BodyOf(Get(server.port(), "/healthz")), "ok\n");
  healthy.store(false);
  const std::string draining = Get(server.port(), "/healthz");
  EXPECT_EQ(draining.rfind("HTTP/1.0 503", 0), 0u) << draining;
  EXPECT_EQ(BodyOf(draining), "draining\n");
  healthy.store(true);

  // /statusz serves JSON.
  const std::string statusz = Get(server.port(), "/statusz");
  EXPECT_NE(statusz.find("Content-Type: application/json"), std::string::npos);
  EXPECT_TRUE(testing_json::IsValidJson(BodyOf(statusz), &why)) << why;

  // Query strings are stripped; the endpoints take no parameters.
  EXPECT_EQ(Get(server.port(), "/healthz?verbose=1").rfind("HTTP/1.0 200", 0), 0u);

  // Routing and method errors.
  EXPECT_EQ(Get(server.port(), "/nope").rfind("HTTP/1.0 404", 0), 0u);
  EXPECT_EQ(RawRequest(server.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 405", 0),
            0u);
  EXPECT_EQ(RawRequest(server.port(), "garbage\r\n\r\n").rfind("HTTP/1.0 400", 0), 0u);

  // Each response closes the connection (Connection: close, HTTP/1.0), and
  // the server keeps serving after hostile requests.
  EXPECT_NE(Get(server.port(), "/healthz").find("Connection: close"), std::string::npos);

  server.Stop();
  server.Stop();  // idempotent
}

TEST(HttpServerTest, StartFailsOnTakenPort) {
  svc::HttpServerOptions options;
  options.port = 0;
  options.healthy = [] { return true; };
  svc::HttpServer first(options);
  ASSERT_TRUE(first.Start().ok());

  svc::HttpServerOptions clash = options;
  clash.port = first.port();
  svc::HttpServer second(clash);
  const Status status = second.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  first.Stop();
}

TEST(HttpServerTest, MissingHandlersFallThroughTo404) {
  svc::HttpServerOptions options;
  options.port = 0;  // no metrics/statusz handlers registered
  svc::HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(Get(server.port(), "/metrics").rfind("HTTP/1.0 404", 0), 0u);
  EXPECT_EQ(Get(server.port(), "/statusz").rfind("HTTP/1.0 404", 0), 0u);
  // /healthz with no callback defaults to healthy.
  EXPECT_EQ(Get(server.port(), "/healthz").rfind("HTTP/1.0 200", 0), 0u);
  server.Stop();
}

TEST(HttpResponseTest, WireFormat) {
  const std::string r = svc::HttpResponse(200, "OK", "text/plain; charset=utf-8", "hello\n");
  EXPECT_EQ(r,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n"
            "Content-Length: 6\r\nConnection: close\r\n\r\nhello\n");
}

}  // namespace
}  // namespace aitia
