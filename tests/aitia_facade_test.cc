// Tests for the top-level pipeline facade (src/core/aitia): slice ordering,
// parallel reproducers, and report rendering.

#include <gtest/gtest.h>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/fuzz/fuzzer.h"

namespace aitia {
namespace {

TEST(AitiaFacadeTest, RenderContainsEveryStage) {
  BugScenario s = MakeScenario("fig-1");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  std::string text = report.Render(*s.image);
  EXPECT_NE(text.find("LIFS"), std::string::npos);
  EXPECT_NE(text.find("Causality"), std::string::npos);
  EXPECT_NE(text.find("failure-causing instruction sequence"), std::string::npos);
  EXPECT_NE(text.find("tested data races"), std::string::npos);
  EXPECT_NE(text.find("causality chain"), std::string::npos);
}

TEST(AitiaFacadeTest, RenderOfUndiagnosedReportSaysSo) {
  BugScenario s = MakeScenario("fig-1");
  AitiaOptions options;
  options.lifs.target_type = FailureType::kDoubleFree;  // unreachable
  options.lifs.max_schedules = 50;
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);
  EXPECT_FALSE(report.diagnosed);
  EXPECT_NE(report.Render(*s.image).find("NOT reproduced"), std::string::npos);
}

TEST(AitiaFacadeTest, HistoryPipelineMatchesDirectSliceDiagnosis) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(fuzz.found);
  AitiaReport from_history = DiagnoseHistory(*s.image, fuzz.history);
  AitiaReport from_slice = DiagnoseScenario(s);
  ASSERT_TRUE(from_history.diagnosed);
  ASSERT_TRUE(from_slice.diagnosed);
  EXPECT_EQ(from_history.causality.chain.Render(*s.image),
            from_slice.causality.chain.Render(*s.image));
}

TEST(AitiaFacadeTest, ParallelReproducersAgreeWithSequential) {
  BugScenario s = MakeScenario("syz-04");
  FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(fuzz.found);

  AitiaOptions sequential;
  AitiaReport a = DiagnoseHistory(*s.image, fuzz.history, sequential);
  AitiaOptions parallel;
  parallel.reproducer_workers = 4;
  AitiaReport b = DiagnoseHistory(*s.image, fuzz.history, parallel);

  ASSERT_TRUE(a.diagnosed);
  ASSERT_TRUE(b.diagnosed);
  EXPECT_EQ(a.causality.chain.Render(*s.image), b.causality.chain.Render(*s.image));
}

TEST(AitiaFacadeTest, MaxSlicesBoundsTheSearch) {
  BugScenario s = MakeScenario("fig-5");
  FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(fuzz.found);
  AitiaOptions options;
  options.max_slices = 1;
  AitiaReport report = DiagnoseHistory(*s.image, fuzz.history, options);
  EXPECT_LE(report.slices_tried, 1u);
}

TEST(AitiaFacadeTest, TargetSymptomTakenFromHistoryFailure) {
  // DiagnoseHistory must reproduce the *reported* symptom, not whatever
  // failure it stumbles on first.
  BugScenario s = MakeScenario("syz-08");  // can fail as UAF or refcount WARN
  FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(fuzz.found);
  AitiaReport report = DiagnoseHistory(*s.image, fuzz.history);
  if (report.diagnosed) {
    EXPECT_TRUE(SameSymptom(*report.lifs.failure, fuzz.history.failure->failure));
  }
}

TEST(AitiaFacadeTest, UsedSliceIsRecorded) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(fuzz.found);
  AitiaReport report = DiagnoseHistory(*s.image, fuzz.history);
  ASSERT_TRUE(report.diagnosed);
  // The used slice holds the two racing syscalls (possibly plus one noise
  // context the slicer grouped in).
  EXPECT_GE(report.used_slice.threads.size(), 2u);
  EXPECT_LE(report.used_slice.threads.size(), 3u);
  EXPECT_GE(report.slices_tried, 1u);
}

}  // namespace
}  // namespace aitia
