// Unit tests for the deterministic fault-injection harness (src/sim/faults)
// and its seams inside the enforcer.

#include <gtest/gtest.h>

#include <vector>

#include "src/hv/enforcer.h"
#include "src/sim/builder.h"
#include "src/sim/faults.h"

namespace aitia {
namespace {

// Two writer threads over one global (same fixture as enforcer_test).
struct TwoWriters {
  KernelImage image;
  Addr g = 0;
  std::vector<ThreadSpec> threads;

  TwoWriters() {
    g = image.AddGlobal("g", 0);
    for (int i = 0; i < 2; ++i) {
      ProgramBuilder b(i == 0 ? "w0" : "w1");
      b.Lea(R1, g)
          .StoreImm(R1, i + 1)   // pc 1: first store
          .StoreImm(R1, 10 + i)  // pc 2: second store
          .Exit();
      image.AddProgram(b.Build());
    }
    threads = {{"a", 0, 0, ThreadKind::kSyscall}, {"b", 1, 0, ThreadKind::kSyscall}};
  }
};

TEST(FaultInjectorTest, SamePlanAndNonceReplaysIdentically) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_preemption_point = 300;
  plan.spurious_wakeup = 200;
  FaultInjector a(plan, 7);
  FaultInjector b(plan, 7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.DropPreemptionPoint(), b.DropPreemptionPoint());
    EXPECT_EQ(a.SpuriousWakeup(), b.SpuriousWakeup());
  }
  EXPECT_EQ(a.counters().points_dropped, b.counters().points_dropped);
}

TEST(FaultInjectorTest, DifferentNoncesRerollTheFaultStream) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_preemption_point = 500;
  FaultInjector a(plan, FaultNonce(0, 0));
  FaultInjector b(plan, FaultNonce(0, 1));
  int same = 0;
  for (int i = 0; i < 128; ++i) {
    if (a.DropPreemptionPoint() == b.DropPreemptionPoint()) {
      ++same;
    }
  }
  EXPECT_LT(same, 128);  // streams diverge somewhere
}

TEST(FaultInjectorTest, DropRateTracksThePlan) {
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_preemption_point = 100;  // 10%
  FaultInjector inj(plan, 0);
  int dropped = 0;
  for (int i = 0; i < 10000; ++i) {
    if (inj.DropPreemptionPoint()) {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 700);
  EXPECT_LT(dropped, 1300);
}

TEST(FaultInjectorTest, DisabledPlanInjectsNothing) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  FaultInjector inj(plan, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(inj.DropPreemptionPoint());
    EXPECT_FALSE(inj.SpuriousWakeup());
    EXPECT_FALSE(inj.AbortNow(i));
  }
  EXPECT_EQ(inj.counters().total(), 0);
}

TEST(FaultSeamTest, DroppedPointNeverFires) {
  TwoWriters w;
  FaultPlan plan;
  plan.seed = 1;
  plan.drop_preemption_point = 1000;  // every breakpoint misses
  FaultInjector inj(plan, 0);

  PreemptionSchedule schedule;
  schedule.base_order = {0, 1};
  schedule.points = {{DynInstr{0, {0, 1}, 0}, /*before=*/false, kNoThread}};
  EnforceOptions eo;
  eo.faults = &inj;
  Enforcer enforcer(&w.image);
  EnforceResult er = enforcer.RunPreemption(w.threads, schedule, {}, eo);

  ASSERT_TRUE(er.status.ok());
  ASSERT_EQ(er.unfired_points.size(), 1u);
  EXPECT_GE(inj.counters().points_dropped, 1);
  // No park happened: the run is the plain base order, thread 0 first.
  bool seen_one = false;
  for (const ExecEvent& e : er.run.trace) {
    if (e.di.tid == 1) {
      seen_one = true;
    }
    if (seen_one) {
      EXPECT_EQ(e.di.tid, 1);
    }
  }
}

TEST(FaultSeamTest, SpuriousWakeupResumesParkedThread) {
  TwoWriters w;
  FaultPlan plan;
  plan.seed = 2;
  plan.spurious_wakeup = 1000;  // wake a parked thread at every step
  FaultInjector inj(plan, 0);

  PreemptionSchedule schedule;
  schedule.base_order = {0, 1};
  schedule.points = {{DynInstr{0, {0, 1}, 0}, /*before=*/true, 1}};
  EnforceOptions eo;
  eo.faults = &inj;
  Enforcer enforcer(&w.image);
  EnforceResult er = enforcer.RunPreemption(w.threads, schedule, {}, eo);

  ASSERT_TRUE(er.status.ok());
  EXPECT_TRUE(er.run.all_exited);
  EXPECT_GE(inj.counters().spurious_wakeups, 1);
}

TEST(FaultSeamTest, InjectedAbortCutsTheRunShort) {
  TwoWriters w;
  FaultPlan plan;
  plan.seed = 3;
  plan.abort_run = 1000;  // every run is doomed
  plan.abort_at_step = 3;
  FaultInjector inj(plan, 0);
  EXPECT_TRUE(inj.will_abort());

  EnforceOptions eo;
  eo.faults = &inj;
  Enforcer enforcer(&w.image);
  EnforceResult er = enforcer.RunPreemption(w.threads, {{0, 1}, {}}, {}, eo);

  EXPECT_EQ(er.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(er.run.all_exited);
  EXPECT_EQ(inj.counters().aborts, 1);
  EXPECT_LE(er.steps, 4);
}

TEST(FaultSeamTest, DelayedWatchpointsStillDetectRaces) {
  TwoWriters w;
  PreemptionSchedule schedule;
  schedule.base_order = {0, 1};
  // Park thread 0 after its first store and let thread 1 run into the armed
  // watchpoint.
  schedule.points = {{DynInstr{0, {0, 1}, 0}, /*before=*/false, 1}};

  Enforcer enforcer(&w.image);
  EnforceResult baseline = enforcer.RunPreemption(w.threads, schedule);
  ASSERT_FALSE(baseline.watch_hits.empty());

  FaultPlan plan;
  plan.seed = 4;
  plan.watchpoint_delay = 2;
  FaultInjector inj(plan, 0);
  EnforceOptions eo;
  eo.faults = &inj;
  EnforceResult delayed = enforcer.RunPreemption(w.threads, schedule, {}, eo);

  ASSERT_TRUE(delayed.status.ok());
  EXPECT_GT(inj.counters().delayed_events, 0);
  // Late delivery may add noise hits but never loses one: every baseline hit
  // is still present (watchpoints stay armed, order is preserved).
  for (const WatchpointHit& hit : baseline.watch_hits) {
    bool found = false;
    for (const WatchpointHit& d : delayed.watch_hits) {
      if (d.owner == hit.owner && d.access.di == hit.access.di) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace aitia
