// Supervisor coverage: wall-clock deadlines, the livelock watchdog, bounded
// retry under injected faults, and kInconclusive propagation all the way into
// AitiaReport::Render.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/hv/supervisor.h"
#include "src/sim/builder.h"
#include "src/sim/faults.h"

namespace aitia {
namespace {

// Program 0 spins forever, touching one global each iteration.
struct InfiniteLoop {
  KernelImage image;
  std::vector<ThreadSpec> threads;

  InfiniteLoop() {
    Addr g = image.AddGlobal("g", 0);
    ProgramBuilder b("spin");
    b.Lea(R1, g).Label("top").StoreImm(R1, 1).Jmp("top");
    image.AddProgram(b.Build());
    threads = {{"spin", 0, 0, ThreadKind::kSyscall}};
  }
};

// Two short writers, used for fault-retry tests.
struct TwoWriters {
  KernelImage image;
  std::vector<ThreadSpec> threads;

  TwoWriters() {
    Addr g = image.AddGlobal("g", 0);
    for (int i = 0; i < 2; ++i) {
      ProgramBuilder b(i == 0 ? "w0" : "w1");
      b.Lea(R1, g).StoreImm(R1, i + 1).StoreImm(R1, 10 + i).Exit();
      image.AddProgram(b.Build());
    }
    threads = {{"a", 0, 0, ThreadKind::kSyscall}, {"b", 1, 0, ThreadKind::kSyscall}};
  }
};

TEST(SupervisorTest, DeadlineExpiryAbortsAndIsNotRetried) {
  InfiniteLoop fix;
  SupervisorOptions so;
  so.max_steps = int64_t{1} << 30;  // the deadline must fire first
  so.deadline_seconds = 1e-9;
  so.max_attempts = 3;  // deterministic sim: a slow run stays slow — no retry
  Supervisor sup(&fix.image, so);

  StatusOr<EnforceResult> r = sup.RunPreemption(fix.threads, {{0}, {}}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  RunBudget b = sup.budget();
  EXPECT_EQ(b.runs, 1);
  EXPECT_EQ(b.attempts, 1);
  EXPECT_EQ(b.retries, 0);
  EXPECT_EQ(b.completed, 0);
  EXPECT_EQ(b.exhausted, 1);
  EXPECT_EQ(b.deadline_expirations, 1);
}

TEST(SupervisorTest, StepBudgetExhaustionIsScoredNotLost) {
  // Hitting max_steps is a kernel-level symptom (hung task), not a lost run:
  // the supervisor returns the result so LIFS can still learn from it.
  InfiniteLoop fix;
  SupervisorOptions so;
  so.max_steps = 5000;
  so.max_attempts = 3;
  Supervisor sup(&fix.image, so);

  StatusOr<EnforceResult> r = sup.RunPreemption(fix.threads, {{0}, {}}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(r->run.failed());
  EXPECT_EQ(r->run.failure->type, FailureType::kWatchdog);
  RunBudget b = sup.budget();
  EXPECT_EQ(b.attempts, 1);  // scored outcome — no retry
  EXPECT_EQ(b.completed, 1);
  EXPECT_EQ(b.exhausted, 0);
}

TEST(SupervisorTest, WatchdogCatchesHolderDrainLivelock) {
  // Thread b grabs the lock and spins forever; the total order then asks for
  // thread a's Lock. The enforcer's liveness drain steps the holder — which
  // never releases — so the schedule index stalls. The watchdog must catch
  // this long before the step budget.
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  {
    ProgramBuilder b("taker");
    b.Lea(R1, lock).Lock(R1).Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("holder");
    b.Lea(R1, lock).Lock(R1).Label("spin").Jmp("spin");
    image.AddProgram(b.Build());
  }
  std::vector<ThreadSpec> threads = {{"a", 0, 0, ThreadKind::kSyscall},
                                     {"b", 1, 0, ThreadKind::kSyscall}};
  TotalOrderSchedule schedule;
  schedule.base_order = {0, 1};
  schedule.sequence = {{1, {1, 0}, 0},   // b: lea
                       {1, {1, 1}, 0},   // b: lock (acquires)
                       {0, {0, 0}, 0},   // a: lea
                       {0, {0, 1}, 0}};  // a: lock (blocks forever)

  SupervisorOptions so;
  so.max_steps = 2000000;  // backstop only; the watchdog must fire first
  so.stall_limit = 2000;
  so.max_attempts = 2;  // livelock is retryable (transient in a real fleet)
  Supervisor sup(&image, so);

  StatusOr<EnforceResult> r = sup.RunTotalOrder(threads, schedule, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  RunBudget b = sup.budget();
  EXPECT_EQ(b.attempts, 2);
  EXPECT_EQ(b.retries, 1);
  EXPECT_EQ(b.watchdog_trips, 2);
  EXPECT_EQ(b.exhausted, 1);
  // The watchdog tripped at ~stall_limit steps, far below the backstop.
  EXPECT_LT(b.steps, 2 * (so.stall_limit + 5000));
}

TEST(SupervisorTest, RetriesUntilSuccessUnderInjectedFaults) {
  TwoWriters fix;
  FaultPlan plan;
  plan.abort_run = 500;  // 50% of attempts are lost
  plan.abort_at_step = 2;
  // Pick a seed where attempt 0 aborts but attempt 1 survives, so the test
  // deterministically exercises exactly one retry.
  uint64_t seed = 0;
  for (; seed < 10000; ++seed) {
    plan.seed = seed;
    FaultInjector first(plan, FaultNonce(0, 0));
    FaultInjector second(plan, FaultNonce(0, 1));
    if (first.will_abort() && !second.will_abort()) {
      break;
    }
  }
  ASSERT_LT(seed, 10000u);
  plan.seed = seed;

  SupervisorOptions so;
  so.max_attempts = 4;
  so.faults = plan;
  Supervisor sup(&fix.image, so);

  StatusOr<EnforceResult> r = sup.RunPreemption(fix.threads, {{0, 1}, {}}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->status.ok());
  EXPECT_TRUE(r->run.all_exited);
  RunBudget b = sup.budget();
  EXPECT_EQ(b.attempts, 2);
  EXPECT_EQ(b.retries, 1);
  EXPECT_EQ(b.completed, 1);
  EXPECT_EQ(b.exhausted, 0);
  EXPECT_GE(b.injected_faults, 1);
}

TEST(SupervisorTest, ExhaustsAttemptsWhenEveryRunIsLost) {
  TwoWriters fix;
  FaultPlan plan;
  plan.seed = 9;
  plan.abort_run = 1000;  // every attempt aborts
  plan.abort_at_step = 1;

  SupervisorOptions so;
  so.max_attempts = 3;
  so.faults = plan;
  Supervisor sup(&fix.image, so);

  StatusOr<EnforceResult> r = sup.RunPreemption(fix.threads, {{0, 1}, {}}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  RunBudget b = sup.budget();
  EXPECT_EQ(b.attempts, 3);
  EXPECT_EQ(b.retries, 2);
  EXPECT_EQ(b.completed, 0);
  EXPECT_EQ(b.exhausted, 1);
}

TEST(SupervisorTest, BudgetMergesAcrossRuns) {
  TwoWriters fix;
  SupervisorOptions so;
  Supervisor sup(&fix.image, so);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sup.RunPreemption(fix.threads, {{0, 1}, {}}, {}, i).ok());
  }
  RunBudget b = sup.budget();
  EXPECT_EQ(b.runs, 3);
  EXPECT_EQ(b.attempts, 3);
  EXPECT_EQ(b.completed, 3);
  EXPECT_GT(b.steps, 0);
  EXPECT_FALSE(b.ToString().empty());
}

// --- end-to-end: graceful degradation in the facade report ------------------

TEST(SupervisorReportTest, InconclusiveFlipTestsReachTheRenderedReport) {
  BugScenario s = MakeScenario("fig-1");
  AitiaOptions options;
  options.causality.supervisor.faults.seed = 1;
  options.causality.supervisor.faults.abort_run = 1000;  // kill every flip run
  options.causality.supervisor.faults.abort_at_step = 1;
  // max_attempts stays 1: no retry can rescue a flip test.

  AitiaReport report = DiagnoseScenario(s, options);
  ASSERT_TRUE(report.diagnosed);  // LIFS (unfaulted) still reproduces
  EXPECT_TRUE(report.degraded);
  ASSERT_FALSE(report.causality.tested.empty());
  // Budget exhaustion must never fabricate a verdict: every flip test is
  // kInconclusive, none benign or root cause.
  for (const TestedRace& t : report.causality.tested) {
    EXPECT_EQ(t.verdict, RaceVerdict::kInconclusive);
    EXPECT_FALSE(t.run_status.ok());
  }
  EXPECT_TRUE(report.causality.root_cause_indices.empty());
  EXPECT_EQ(report.causality.inconclusive_count,
            static_cast<int>(report.causality.tested.size()));
  EXPECT_EQ(report.causality.inconclusive_indices.size(), report.causality.tested.size());
  EXPECT_GT(report.causality.budget.exhausted, 0);

  std::string rendered = report.Render(*s.image);
  EXPECT_NE(rendered.find("DEGRADED"), std::string::npos);
  EXPECT_NE(rendered.find("UNCLASSIFIED"), std::string::npos);
  EXPECT_NE(rendered.find("run budget exhausted"), std::string::npos);
}

TEST(SupervisorReportTest, RetriesRescueAFaultedDiagnosis) {
  BugScenario s = MakeScenario("fig-1");
  AitiaOptions options;
  options.causality.supervisor.faults.seed = 7;
  options.causality.supervisor.faults.abort_run = 300;  // 30% of attempts lost
  options.causality.supervisor.max_attempts = 8;

  AitiaReport report = DiagnoseScenario(s, options);
  // With 8 attempts per flip test, p(all lost) = 0.3^8 — every test recovers.
  ASSERT_TRUE(report.diagnosed);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.causality.inconclusive_count, 0);
  EXPECT_FALSE(report.causality.root_cause_indices.empty());
  EXPECT_GE(report.causality.budget.attempts, report.causality.budget.runs);
  EXPECT_EQ(report.causality.budget.exhausted, 0);

  // Same verdicts as the unfaulted diagnosis: retries absorb the faults.
  AitiaReport clean = DiagnoseScenario(s);
  ASSERT_EQ(report.causality.tested.size(), clean.causality.tested.size());
  for (size_t i = 0; i < clean.causality.tested.size(); ++i) {
    EXPECT_EQ(report.causality.tested[i].verdict, clean.causality.tested[i].verdict);
  }
}

}  // namespace
}  // namespace aitia
