// In-process tests for the aitiad daemon core (src/svc/daemon.h): request
// lifecycle, crash isolation, admission control, cache idempotency, and
// drain semantics — everything ISSUE/DESIGN §11 promises, minus the sockets.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/bugs/registry.h"
#include "src/ingest/serialize.h"
#include "src/svc/daemon.h"
#include "src/svc/jsonv.h"
#include "src/util/strings.h"
#include "tests/json_checker.h"

namespace aitia {
namespace svc {
namespace {

// Parses a response line, asserting it is valid JSON with an object root.
JsonValue Parse(const std::string& line) {
  std::string why;
  EXPECT_TRUE(testing_json::IsValidJson(line, &why)) << why << "\n" << line;
  auto parsed = ParseJson(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

std::string Field(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : "";
}

DaemonOptions SmallOptions() {
  DaemonOptions options;
  options.workers = 2;
  options.queue_shards = 2;
  options.shard_capacity = 4;
  options.cache_capacity = 16;
  options.default_deadline_ms = 30000;
  return options;
}

TEST(DaemonTest, DiagnosesCorpusScenarioById) {
  Daemon daemon(SmallOptions());
  const JsonValue doc =
      Parse(daemon.HandleLine(R"({"verb":"diagnose","id":"r1","scenario":"fig-1"})"));
  EXPECT_EQ(Field(doc, "id"), "r1");
  EXPECT_EQ(Field(doc, "verb"), "diagnose");
  EXPECT_EQ(Field(doc, "scenario"), "fig-1");
  EXPECT_EQ(Field(doc, "status"), "ok");
  ASSERT_NE(doc.Find("report"), nullptr);
  EXPECT_TRUE(doc.Find("report")->Find("diagnosed")->AsBool());
}

TEST(DaemonTest, DiagnosesInlineAitText) {
  Daemon daemon(SmallOptions());
  // A well-formed inline .ait (fig-1 through the canonical serializer)
  // diagnoses like its corpus twin — and, because the cache is keyed by the
  // canonical form, the corpus-id repeat is a cache hit.
  const std::string ait = ScenarioToAit(MakeScenario("fig-1"));
  const std::string request =
      std::string(R"({"verb":"diagnose","id":"inline","ait":)") +
      "\"" + JsonEscape(ait) + "\"}";
  const JsonValue doc = Parse(daemon.HandleLine(request));
  EXPECT_EQ(Field(doc, "id"), "inline");
  EXPECT_EQ(Field(doc, "status"), "ok");
  EXPECT_EQ(Field(doc, "cache"), "miss");
  const JsonValue twin =
      Parse(daemon.HandleLine(R"({"verb":"diagnose","id":"twin","scenario":"fig-1"})"));
  EXPECT_EQ(Field(twin, "cache"), "hit");
  EXPECT_EQ(Field(twin, "status"), "ok");

  // A malformed fragment is a structured invalid_argument, never an abort.
  const JsonValue bad = Parse(
      daemon.HandleLine(R"({"verb":"diagnose","id":"bad-ait","ait":"not an .ait file"})"));
  EXPECT_EQ(Field(bad, "status"), "invalid_argument");
  EXPECT_EQ(Field(bad, "id"), "bad-ait");
  EXPECT_FALSE(Field(bad, "error").empty());
}

TEST(DaemonTest, CacheHitOnRepeatAndIdempotentReport) {
  Daemon daemon(SmallOptions());
  const JsonValue first =
      Parse(daemon.HandleLine(R"({"verb":"diagnose","id":"a","scenario":"fig-1"})"));
  const JsonValue second =
      Parse(daemon.HandleLine(R"({"verb":"diagnose","id":"b","scenario":"fig-1"})"));
  EXPECT_EQ(Field(first, "cache"), "miss");
  EXPECT_EQ(Field(second, "cache"), "hit");
  EXPECT_EQ(Field(second, "id"), "b");  // ids are per-request, not cached
  EXPECT_EQ(Field(first, "status"), Field(second, "status"));
  // no_cache opts out of the read path.
  const JsonValue third = Parse(daemon.HandleLine(
      R"({"verb":"diagnose","id":"c","scenario":"fig-1","no_cache":true})"));
  EXPECT_EQ(Field(third, "cache"), "miss");
}

TEST(DaemonTest, CrashIsolationMalformedInputsThenSuccess) {
  Daemon daemon(SmallOptions());
  // A hostile parade: every one must yield a structured error response...
  const char* hostile[] = {
      "{not json",
      "[1,2,3]",
      "\"just a string\"",
      R"({"verb":"frobnicate","id":"x"})",
      R"({"verb":"diagnose","id":"x"})",
      R"({"verb":"diagnose","id":"x","scenario":"no-such-bug"})",
      R"({"verb":"diagnose","id":"x","ait":"trace { garbage"})",
      R"({"verb":"diagnose","id":"x","scenario":"fig-1","ait":"both set"})",
      R"({"id":"x"})",
  };
  for (const char* line : hostile) {
    const JsonValue doc = Parse(daemon.HandleLine(line));
    const std::string status = Field(doc, "status");
    EXPECT_TRUE(status == "invalid_argument" || status == "not_found")
        << line << " -> " << status;
    EXPECT_FALSE(Field(doc, "error").empty()) << line;
  }
  // ...and the daemon must still serve real work afterwards.
  const JsonValue doc =
      Parse(daemon.HandleLine(R"({"verb":"diagnose","id":"after","scenario":"fig-1"})"));
  EXPECT_EQ(Field(doc, "status"), "ok");
}

TEST(DaemonTest, OversizedRequestRejectedBeforeParsing) {
  DaemonOptions options = SmallOptions();
  options.max_request_bytes = 64;
  Daemon daemon(options);
  const std::string big =
      R"({"verb":"diagnose","scenario":")" + std::string(200, 'x') + "\"}";
  const JsonValue doc = Parse(daemon.HandleLine(big));
  EXPECT_EQ(Field(doc, "status"), "invalid_argument");
}

TEST(DaemonTest, FaultSeededRunDegradesRequestNotDaemon) {
  DaemonOptions options = SmallOptions();
  options.cache_capacity = 0;
  options.faults.seed = 17;
  options.faults.abort_run = 1000;   // every run is doomed...
  options.faults.abort_at_step = 1;  // ...and dies immediately, not at a drawn
                                     // step the short fig-1 runs never reach
  options.fault_max_attempts = 2;
  Daemon chaos(options);
  const JsonValue doc =
      Parse(chaos.HandleLine(R"({"verb":"diagnose","id":"f1","scenario":"fig-1"})"));
  EXPECT_EQ(Field(doc, "status"), "degraded");
  ASSERT_NE(doc.Find("report"), nullptr);  // partial report, not an error
  // The daemon survives its own chaos: next request still answers.
  const JsonValue again =
      Parse(chaos.HandleLine(R"({"verb":"ping","id":"f2"})"));
  EXPECT_EQ(Field(again, "status"), "ok");
  // And a clean daemon is unaffected by another instance's fault plan.
  Daemon clean(SmallOptions());
  const JsonValue ok =
      Parse(clean.HandleLine(R"({"verb":"diagnose","id":"f3","scenario":"fig-1"})"));
  EXPECT_EQ(Field(ok, "status"), "ok");
}

TEST(DaemonTest, TinyDeadlineDegradesInsteadOfHanging) {
  DaemonOptions options = SmallOptions();
  options.cache_capacity = 0;
  Daemon daemon(options);
  // 1ms budget on a corpus scenario: the supervisor must cut the run short
  // and return a degraded (or, if it squeaked through, terminal) response.
  const JsonValue doc = Parse(daemon.HandleLine(
      R"({"verb":"diagnose","id":"t1","scenario":"CVE-2017-15649","deadline_ms":1})"));
  const std::string status = Field(doc, "status");
  EXPECT_TRUE(status == "degraded" || status == "ok" || status == "not_reproduced")
      << status;
  // The worker is free again.
  EXPECT_EQ(Field(Parse(daemon.HandleLine(R"({"verb":"ping","id":"t2"})")), "status"),
            "ok");
}

// Async submission helper: collects one response, with a latch.
struct Capture {
  std::mutex mu;
  std::condition_variable cv;
  std::string response;
  bool done = false;

  Daemon::Responder responder() {
    return [this](std::string r) {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(r);
      done = true;
      cv.notify_all();
    };
  }
  std::string Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return done; });
    return response;
  }
};

TEST(DaemonTest, DeterministicOverloadWhenQueueFull) {
  DaemonOptions options = SmallOptions();
  options.workers = 1;
  options.queue_shards = 1;
  options.shard_capacity = 1;
  options.cache_capacity = 0;
  options.retry_after_ms = 77;
  Daemon daemon(options);

  // A pins the single worker via hold_ms; B fills the single queue slot;
  // C must be shed with the configured retry hint — deterministically.
  Capture a, b, c;
  daemon.Submit(R"({"verb":"diagnose","id":"A","scenario":"fig-1","hold_ms":800})",
                a.responder());
  while (daemon.in_flight() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.Submit(R"({"verb":"diagnose","id":"B","scenario":"fig-5"})", b.responder());
  while (daemon.queue_depth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.Submit(R"({"verb":"diagnose","id":"C","scenario":"fig-7"})", c.responder());

  const JsonValue rc = Parse(c.Wait());  // C answers immediately
  EXPECT_EQ(Field(rc, "id"), "C");
  EXPECT_EQ(Field(rc, "status"), "overloaded");
  ASSERT_NE(rc.Find("retry_after_ms"), nullptr);
  EXPECT_EQ(rc.Find("retry_after_ms")->AsInt(), 77);

  const JsonValue ra = Parse(a.Wait());
  const JsonValue rb = Parse(b.Wait());  // B was accepted: it must complete
  EXPECT_EQ(Field(ra, "id"), "A");
  EXPECT_EQ(Field(ra, "status"), "ok");
  EXPECT_EQ(Field(rb, "id"), "B");
  EXPECT_EQ(Field(rb, "status"), "ok");
}

TEST(DaemonTest, DrainRejectsNewButFinishesInFlight) {
  DaemonOptions options = SmallOptions();
  options.workers = 1;
  options.cache_capacity = 0;
  options.drain_grace_ms = 5000;
  Daemon daemon(options);

  Capture in_flight;
  daemon.Submit(R"({"verb":"diagnose","id":"in","scenario":"fig-1","hold_ms":300})",
                in_flight.responder());
  while (daemon.in_flight() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.BeginDrain();
  // New work is rejected with "draining" while the old request still runs.
  const JsonValue rejected =
      Parse(daemon.HandleLine(R"({"verb":"diagnose","id":"new","scenario":"fig-5"})"));
  EXPECT_EQ(Field(rejected, "status"), "draining");
  daemon.Drain();
  const JsonValue finished = Parse(in_flight.Wait());
  EXPECT_EQ(Field(finished, "id"), "in");
  EXPECT_EQ(Field(finished, "status"), "ok");  // grace let it finish naturally
  // Post-drain submissions still get exactly one (rejection) response.
  const JsonValue after =
      Parse(daemon.HandleLine(R"({"verb":"diagnose","id":"late","scenario":"fig-1"})"));
  EXPECT_EQ(Field(after, "status"), "draining");
}

TEST(DaemonTest, HardDrainCancelsHeldWork) {
  DaemonOptions options = SmallOptions();
  options.workers = 1;
  options.cache_capacity = 0;
  options.drain_grace_ms = 20;  // too short for the hold: must hard-cancel
  Daemon daemon(options);
  Capture held;
  daemon.Submit(R"({"verb":"diagnose","id":"h","scenario":"fig-1","hold_ms":5000})",
                held.responder());
  while (daemon.in_flight() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.Drain();  // must not take anywhere near 5s (ctest timeout enforces)
  const JsonValue doc = Parse(held.Wait());
  EXPECT_EQ(Field(doc, "id"), "h");
  // The held request was cancelled mid-flight: degraded, never lost.
  const std::string status = Field(doc, "status");
  EXPECT_TRUE(status == "degraded" || status == "ok") << status;
}

TEST(DaemonTest, VerbsPingMetricsShutdown) {
  DaemonOptions options = SmallOptions();
  std::atomic<int> shutdown_callbacks{0};
  options.on_shutdown_request = [&shutdown_callbacks] {
    shutdown_callbacks.fetch_add(1);
  };
  Daemon daemon(options);
  EXPECT_EQ(Field(Parse(daemon.HandleLine(R"({"verb":"ping","id":1})")), "id"), "1");

  const JsonValue metrics = Parse(daemon.HandleLine(R"({"verb":"metrics"})"));
  EXPECT_EQ(Field(metrics, "status"), "ok");
  const JsonValue* m = metrics.Find("metrics");
  ASSERT_NE(m, nullptr);
  ASSERT_NE(m->Find("svc"), nullptr);
  EXPECT_NE(m->Find("svc")->Find("requests"), nullptr);

  EXPECT_FALSE(daemon.shutdown_requested());
  const JsonValue bye = Parse(daemon.HandleLine(R"({"verb":"shutdown","id":"s"})"));
  EXPECT_EQ(Field(bye, "status"), "ok");
  EXPECT_TRUE(daemon.shutdown_requested());
  EXPECT_EQ(shutdown_callbacks.load(), 1);
  daemon.HandleLine(R"({"verb":"shutdown","id":"s2"})");  // idempotent
  EXPECT_EQ(shutdown_callbacks.load(), 1);
}

TEST(DaemonTest, MetricsJsonIsValid) {
  std::string why;
  EXPECT_TRUE(testing_json::IsValidJson(Daemon::MetricsJson(), &why)) << why;
}

TEST(DaemonTest, ConcurrentMixedLoadEveryRequestAnsweredOnce) {
  DaemonOptions options = SmallOptions();
  options.workers = 4;
  options.queue_shards = 4;
  options.shard_capacity = 4;
  Daemon daemon(options);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> responses{0};
  std::atomic<int> empty_or_invalid{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const char* scenarios[] = {"fig-1", "fig-5", "fig-7", "no-such", "{bad"};
      for (int i = 0; i < kPerThread; ++i) {
        std::string line;
        const char* s = scenarios[(t + i) % 5];
        if (s[0] == '{') {
          line = "{malformed";
        } else {
          line = std::string(R"({"verb":"diagnose","scenario":")") + s + "\"}";
        }
        const std::string response = daemon.HandleLine(line);
        if (response.empty() || !ParseJson(response).ok()) {
          empty_or_invalid.fetch_add(1);
        }
        responses.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(responses.load(), kThreads * kPerThread);
  EXPECT_EQ(empty_or_invalid.load(), 0);
  daemon.Drain();
}

}  // namespace
}  // namespace svc
}  // namespace aitia
