// Tests for the SARIF 2.1.0 emitter (src/tools/sarif.h): strict JSON
// well-formedness over the whole corpus, schema-level shape (rules, results,
// codeFlows, artifacts), location round-trips — the reported startLine must
// land on the failing instruction in the .ait text embedded in the log — and
// byte-for-byte determinism.

#include "src/tools/sarif.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/ingest/serialize.h"
#include "src/svc/jsonv.h"
#include "tests/json_checker.h"

namespace aitia {
namespace {

using svc::JsonValue;
using svc::ParseJson;

const JsonValue* Need(const JsonValue* v, const char* key) {
  const JsonValue* found = v == nullptr ? nullptr : v->Find(key);
  EXPECT_NE(found, nullptr) << "missing key: " << key;
  return found;
}

// The `line`-th (1-based) line of `text`.
std::string LineAt(const std::string& text, int64_t line) {
  size_t begin = 0;
  for (int64_t n = 1; n < line; ++n) {
    const size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) {
      return "";
    }
    begin = nl + 1;
  }
  const size_t end = text.find('\n', begin);
  return text.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
}

TEST(SarifTest, RuleIdsCoverEveryFailureClass) {
  std::set<std::string> seen;
  for (int t = 0; t <= static_cast<int>(FailureType::kWatchdog); ++t) {
    const std::string id = tools::SarifRuleId(static_cast<FailureType>(t));
    EXPECT_EQ(id.rfind("aitia/", 0), 0u) << id;
    // Kebab-case, no spaces or uppercase: these ids key CI annotations.
    for (char c : id.substr(6)) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-') << id;
    }
    EXPECT_TRUE(seen.insert(id).second) << "duplicate rule id: " << id;
  }
}

TEST(SarifTest, CorpusLogsAreValidAndWellShaped) {
  for (const ScenarioEntry& entry : AllScenarios()) {
    BugScenario scenario = entry.make();
    const AitiaReport report = DiagnoseScenario(scenario, AitiaOptions());
    const std::string sarif = tools::ReportToSarif(scenario, report);

    std::string why;
    ASSERT_TRUE(testing_json::IsValidJson(sarif, &why)) << entry.id << ": " << why;
    auto parsed = ParseJson(sarif, 64);
    ASSERT_TRUE(parsed.ok()) << entry.id << ": " << parsed.status().ToString();
    const JsonValue& doc = *parsed;

    EXPECT_EQ(Need(&doc, "version")->AsString(), "2.1.0") << entry.id;
    EXPECT_NE(Need(&doc, "$schema")->AsString().find("sarif-2.1.0"), std::string::npos);
    const JsonValue* runs = Need(&doc, "runs");
    ASSERT_EQ(runs->items().size(), 1u) << entry.id;
    const JsonValue& run = runs->items()[0];
    const JsonValue* driver = Need(Need(&run, "tool"), "driver");
    EXPECT_EQ(Need(driver, "name")->AsString(), "aitia") << entry.id;

    // The artifact embeds the scenario's canonical serialization, so the log
    // is self-contained: locations resolve against it with no repo checkout.
    const JsonValue* artifacts = Need(&run, "artifacts");
    ASSERT_EQ(artifacts->items().size(), 1u) << entry.id;
    const std::string ait_text =
        Need(Need(&artifacts->items()[0], "contents"), "text")->AsString();
    EXPECT_EQ(ait_text, ScenarioToAit(scenario)) << entry.id;

    const JsonValue* results = Need(&run, "results");
    const JsonValue* rules = Need(driver, "rules");
    if (!report.diagnosed || !report.lifs.failure.has_value()) {
      EXPECT_TRUE(results->items().empty()) << entry.id;
      EXPECT_TRUE(rules->items().empty()) << entry.id;
      continue;
    }

    // Diagnosed: exactly one rule, one result, linked by ruleId.
    ASSERT_EQ(rules->items().size(), 1u) << entry.id;
    ASSERT_EQ(results->items().size(), 1u) << entry.id;
    const JsonValue& result = results->items()[0];
    const std::string rule_id = Need(&result, "ruleId")->AsString();
    EXPECT_EQ(rule_id, Need(&rules->items()[0], "id")->AsString()) << entry.id;
    EXPECT_EQ(rule_id, tools::SarifRuleId(report.lifs.failure->type)) << entry.id;
    EXPECT_EQ(Need(&result, "level")->AsString(), "error") << entry.id;

    // Location round-trip: the primary location's snippet must be the actual
    // text at startLine of the embedded artifact.
    const JsonValue* locations = Need(&result, "locations");
    ASSERT_EQ(locations->items().size(), 1u) << entry.id;
    const JsonValue* phys = Need(&locations->items()[0], "physicalLocation");
    EXPECT_EQ(Need(Need(phys, "artifactLocation"), "uri")->AsString(),
              scenario.id + ".ait");
    const JsonValue* region = Need(phys, "region");
    const int64_t start_line = Need(region, "startLine")->AsInt();
    EXPECT_GE(start_line, 1) << entry.id;
    if (const JsonValue* snippet = region->Find("snippet"); snippet != nullptr) {
      EXPECT_EQ(Need(snippet, "text")->AsString(), LineAt(ait_text, start_line))
          << entry.id << " startLine=" << start_line;
    }

    // codeFlows: the causality chain plus one evidence flow per root cause.
    const JsonValue* flows = Need(&result, "codeFlows");
    EXPECT_EQ(flows->items().size(), 1 + report.causality.root_cause_indices.size())
        << entry.id;
    for (const JsonValue& flow : flows->items()) {
      const JsonValue* tf = Need(&flow, "threadFlows");
      ASSERT_EQ(tf->items().size(), 1u) << entry.id;
      const JsonValue* steps = Need(&tf->items()[0], "locations");
      ASSERT_FALSE(steps->items().empty()) << entry.id;
      // executionOrder is contiguous from 0 and every step's snippet (when
      // present) round-trips through the embedded artifact.
      int64_t want_order = 0;
      for (const JsonValue& step : steps->items()) {
        EXPECT_EQ(Need(&step, "executionOrder")->AsInt(), want_order++) << entry.id;
        const JsonValue* sphys = Need(Need(&step, "location"), "physicalLocation");
        const JsonValue* sregion = Need(sphys, "region");
        if (const JsonValue* snippet = sregion->Find("snippet"); snippet != nullptr) {
          EXPECT_EQ(Need(snippet, "text")->AsString(),
                    LineAt(ait_text, Need(sregion, "startLine")->AsInt()))
              << entry.id;
        }
      }
    }

    // The property bag carries one entry per tested race.
    const JsonValue* props = Need(&result, "properties");
    EXPECT_EQ(Need(props, "races")->items().size(), report.causality.tested.size())
        << entry.id;
    EXPECT_EQ(Need(props, "scenario")->AsString(), scenario.id);
  }
}

TEST(SarifTest, EmissionIsDeterministic) {
  BugScenario scenario = MakeScenario("fig-1");
  const AitiaReport report = DiagnoseScenario(scenario, AitiaOptions());
  const std::string first = tools::ReportToSarif(scenario, report);
  const std::string second = tools::ReportToSarif(scenario, report);
  EXPECT_EQ(first, second);
  // Re-diagnosing must also reproduce the identical log (no timestamps, no
  // pointers, no iteration-order leakage).
  BugScenario again = MakeScenario("fig-1");
  const AitiaReport repeat = DiagnoseScenario(again, AitiaOptions());
  EXPECT_EQ(tools::ReportToSarif(again, repeat), first);
}

}  // namespace
}  // namespace aitia
