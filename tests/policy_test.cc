// Unit tests for scheduler policies and the run loop (src/sim/policy).

#include <gtest/gtest.h>

#include "src/sim/builder.h"
#include "src/sim/policy.h"

namespace aitia {
namespace {

// Three threads, each writing its id into a log list.
KernelImage MakeLoggingImage() {
  KernelImage image;
  Addr log = image.AddGlobal("log", 0);
  for (int i = 0; i < 3; ++i) {
    ProgramBuilder b("w" + std::to_string(i));
    b.Lea(R1, log).Mov(R2, R0).ListAdd(R1, R2).Exit();
    image.AddProgram(b.Build());
  }
  return image;
}

std::vector<Word> LogOf(KernelSim& kernel, const KernelImage& image) {
  return {kernel.memory().ListAt(image.GlobalAddr("log")).begin(),
          kernel.memory().ListAt(image.GlobalAddr("log")).end()};
}

TEST(SeqPolicyTest, RunsThreadsInBaseOrder) {
  KernelImage image = MakeLoggingImage();
  std::vector<ThreadSpec> threads = {{"a", 0, 10, ThreadKind::kSyscall},
                                     {"b", 1, 20, ThreadKind::kSyscall},
                                     {"c", 2, 30, ThreadKind::kSyscall}};
  KernelSim kernel(&image, threads);
  SeqPolicy policy({2, 0, 1});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(LogOf(kernel, image), (std::vector<Word>{30, 10, 20}));
}

TEST(SeqPolicyTest, SpawnedThreadsRankAfterBaseThreads) {
  KernelImage image;
  Addr log = image.AddGlobal("log", 0);
  ProgramBuilder w("worker");
  w.Lea(R1, log).Mov(R2, R0).ListAdd(R1, R2).Exit();
  ProgramId worker = image.AddProgram(w.Build());
  {
    ProgramBuilder b("spawner");
    b.MovImm(R3, 99)
        .QueueWork(worker, R3)
        .Lea(R1, log)
        .MovImm(R2, 1)
        .ListAdd(R1, R2)
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("other");
    b.Lea(R1, log).MovImm(R2, 2).ListAdd(R1, R2).Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"s", image.ProgramByName("spawner"), 0, ThreadKind::kSyscall},
                            {"o", image.ProgramByName("other"), 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0, 1});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  // Spawner finishes, then the other base thread, then the kworker.
  EXPECT_EQ(LogOf(kernel, image), (std::vector<Word>{1, 2, 99}));
}

TEST(RandomPolicyTest, SameSeedSameSchedule) {
  KernelImage image = MakeLoggingImage();
  std::vector<ThreadSpec> threads = {{"a", 0, 10, ThreadKind::kSyscall},
                                     {"b", 1, 20, ThreadKind::kSyscall},
                                     {"c", 2, 30, ThreadKind::kSyscall}};
  auto run = [&](uint64_t seed) {
    KernelSim kernel(&image, threads);
    RandomPolicy policy(seed);
    RunResult r = RunToCompletion(kernel, policy);
    std::vector<DynInstr> order;
    for (const ExecEvent& e : r.trace) {
      order.push_back(e.di);
    }
    return order;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(RandomPolicyTest, DifferentSeedsProduceDifferentInterleavings) {
  KernelImage image = MakeLoggingImage();
  std::vector<ThreadSpec> threads = {{"a", 0, 10, ThreadKind::kSyscall},
                                     {"b", 1, 20, ThreadKind::kSyscall},
                                     {"c", 2, 30, ThreadKind::kSyscall}};
  std::set<std::vector<Word>> outcomes;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    KernelSim kernel(&image, threads);
    RandomPolicy policy(seed, 1, 2);
    RunToCompletion(kernel, policy);
    outcomes.insert(LogOf(kernel, image));
  }
  // With 3 threads and heavy switching, several of the 6 orders appear.
  EXPECT_GE(outcomes.size(), 3u);
}

TEST(RunLoopTest, CollectsAfterAllThreadsExit) {
  KernelImage image = MakeLoggingImage();
  KernelSim kernel(&image, {{"a", 0, 1, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_TRUE(r.all_exited);
  EXPECT_GT(r.steps, 0);
  EXPECT_EQ(r.threads.size(), 1u);
}

TEST(RunLoopTest, RunWithPolicyConvenienceMatchesManualDrive) {
  KernelImage image = MakeLoggingImage();
  std::vector<ThreadSpec> threads = {{"a", 0, 10, ThreadKind::kSyscall},
                                     {"b", 1, 20, ThreadKind::kSyscall}};
  SeqPolicy p1({0, 1});
  RunResult via_helper = RunWithPolicy(image, threads, p1);
  KernelSim kernel(&image, threads);
  SeqPolicy p2({0, 1});
  RunResult manual = RunToCompletion(kernel, p2);
  ASSERT_EQ(via_helper.trace.size(), manual.trace.size());
  for (size_t i = 0; i < manual.trace.size(); ++i) {
    EXPECT_EQ(via_helper.trace[i].di, manual.trace[i].di);
  }
}

}  // namespace
}  // namespace aitia
