// Property tests: determinism and schedule-enforcement invariants over the
// whole corpus. The paper's methodology depends on both (§3.2): a schedule
// must uniquely determine the run, and replaying a failure-causing sequence
// must reproduce the identical failure.

#include <gtest/gtest.h>

#include <string>

#include "src/bugs/registry.h"
#include "src/core/lifs.h"
#include "src/hv/enforcer.h"

namespace aitia {
namespace {

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

LifsResult Reproduce(const BugScenario& s) {
  LifsOptions options;
  options.target_type = s.truth.failure_type;
  options.irq_lines = s.irq_lines;
  Lifs lifs(s.image.get(), s.slice, s.setup, options);
  return lifs.Run();
}

TEST_P(DeterminismTest, FailingScheduleReplaysIdentically) {
  BugScenario s = MakeScenario(GetParam());
  LifsResult r = Reproduce(s);
  ASSERT_TRUE(r.reproduced) << s.id;

  Enforcer enforcer(s.image.get());
  EnforceResult replay = enforcer.RunPreemption(s.slice, r.failing_schedule, s.setup);
  ASSERT_TRUE(replay.run.failure.has_value()) << s.id;
  EXPECT_TRUE(SameSymptom(*replay.run.failure, *r.failure)) << s.id;
  ASSERT_EQ(replay.run.trace.size(), r.failing_run.trace.size()) << s.id;
  for (size_t i = 0; i < replay.run.trace.size(); ++i) {
    EXPECT_EQ(replay.run.trace[i].di, r.failing_run.trace[i].di) << s.id << " @" << i;
    EXPECT_EQ(replay.run.trace[i].value, r.failing_run.trace[i].value) << s.id << " @" << i;
  }
}

TEST_P(DeterminismTest, TotalOrderReplayOfFailingTraceFails) {
  // The diagnosing-stage premise: replaying the exact failure-causing total
  // order (no flip) must reproduce the failure.
  BugScenario s = MakeScenario(GetParam());
  LifsResult r = Reproduce(s);
  ASSERT_TRUE(r.reproduced) << s.id;

  TotalOrderSchedule schedule;
  schedule.base_order = r.failing_schedule.base_order;
  schedule.irq_threads = r.irq_threads;
  for (const ExecEvent& e : r.failing_run.trace) {
    schedule.sequence.push_back(e.di);
  }
  Enforcer enforcer(s.image.get());
  EnforceResult replay = enforcer.RunTotalOrder(s.slice, schedule, s.setup);
  ASSERT_TRUE(replay.run.failure.has_value()) << s.id;
  EXPECT_TRUE(SameSymptom(*replay.run.failure, *r.failure)) << s.id;
  EXPECT_TRUE(replay.disappeared.empty()) << s.id;
}

std::vector<std::string> AllIds() {
  std::vector<std::string> ids;
  for (const ScenarioEntry& e : AllScenarios()) {
    ids.emplace_back(e.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllBugs, DeterminismTest, ::testing::ValuesIn(AllIds()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace aitia
