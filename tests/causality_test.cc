// Unit tests for Causality Analysis (src/core/causality).

#include <gtest/gtest.h>

#include "src/bugs/registry.h"
#include "src/core/causality.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

struct Diagnosis {
  LifsResult lifs;
  CausalityResult causality;
};

Diagnosis DiagnoseScenario(const BugScenario& s, CausalityOptions co = {}) {
  LifsOptions lo;
  lo.target_type = s.truth.failure_type;
  Lifs lifs(s.image.get(), s.slice, s.setup, lo);
  Diagnosis d;
  d.lifs = lifs.Run();
  EXPECT_TRUE(d.lifs.reproduced);
  CausalityAnalysis ca(s.image.get(), s.slice, s.setup, &d.lifs, co);
  d.causality = ca.Run();
  return d;
}

TEST(CausalityTest, RootCauseFlipsPreventFailure) {
  Diagnosis d = DiagnoseScenario(MakeScenario("fig-1"));
  int roots = 0;
  for (const TestedRace& t : d.causality.tested) {
    if (t.verdict == RaceVerdict::kRootCause) {
      ++roots;
      EXPECT_FALSE(t.flip_still_failed);
      EXPECT_TRUE(t.flip_took_effect);
    }
  }
  EXPECT_EQ(roots, 2);
}

TEST(CausalityTest, BenignFlipsStillFail) {
  Diagnosis d = DiagnoseScenario(MakeScenario("fig-1"));
  int benign = 0;
  for (const TestedRace& t : d.causality.tested) {
    if (t.verdict == RaceVerdict::kBenign) {
      ++benign;
      EXPECT_TRUE(t.flip_still_failed);
    }
  }
  EXPECT_GT(benign, 0);
  EXPECT_EQ(benign, d.causality.benign_count);
}

TEST(CausalityTest, TestedBackwardFromTheFailure) {
  Diagnosis d = DiagnoseScenario(MakeScenario("CVE-2017-15649"));
  for (size_t i = 1; i < d.causality.tested.size(); ++i) {
    EXPECT_GE(d.causality.tested[i - 1].race.second.seq,
              d.causality.tested[i].race.second.seq);
  }
}

TEST(CausalityTest, PhantomRaceTestedAndChained) {
  Diagnosis d = DiagnoseScenario(MakeScenario("CVE-2017-15649"));
  bool phantom_root = false;
  for (const TestedRace& t : d.causality.tested) {
    if (t.phantom && t.verdict == RaceVerdict::kRootCause) {
      phantom_root = true;
    }
  }
  EXPECT_TRUE(phantom_root);  // B17 => A12
}

TEST(CausalityTest, DisappearanceEdgesFeedTheChain) {
  Diagnosis d = DiagnoseScenario(MakeScenario("fig-5"));
  // Flipping A1 => B1 makes the kworker (and its race) disappear.
  bool steering_edge = false;
  for (const TestedRace& t : d.causality.tested) {
    if (t.verdict == RaceVerdict::kRootCause && !t.disappeared.empty()) {
      steering_edge = true;
    }
  }
  EXPECT_TRUE(steering_edge);
  EXPECT_EQ(d.causality.chain.nodes().size(), 2u);
}

TEST(CausalityTest, AmbiguityReportedForSurroundedRaces) {
  Diagnosis d = DiagnoseScenario(MakeScenario("fig-7"));
  EXPECT_TRUE(d.causality.ambiguous);
  int ambiguous = 0;
  for (const TestedRace& t : d.causality.tested) {
    if (t.verdict == RaceVerdict::kAmbiguous) {
      ++ambiguous;
      EXPECT_FALSE(t.nested.empty());
    }
  }
  EXPECT_EQ(ambiguous, 1);
}

TEST(CausalityTest, ParallelDiagnosersMatchSerialVerdicts) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  CausalityOptions serial;
  serial.workers = 1;
  CausalityOptions parallel;
  parallel.workers = 8;
  Diagnosis a = DiagnoseScenario(s, serial);
  Diagnosis b = DiagnoseScenario(s, parallel);
  ASSERT_EQ(a.causality.tested.size(), b.causality.tested.size());
  for (size_t i = 0; i < a.causality.tested.size(); ++i) {
    EXPECT_EQ(a.causality.tested[i].verdict, b.causality.tested[i].verdict) << i;
  }
  EXPECT_EQ(a.causality.chain.Render(*s.image), b.causality.chain.Render(*s.image));
}

// Critical sections flip as a unit (§3.4 "Liveness"): the failing order of
// two lock-protected sections is tested by reordering whole sections, never
// by splitting them (which would deadlock).
TEST(CausalityTest, CriticalSectionPairFlipsAsUnit) {
  auto image = std::make_shared<KernelImage>();
  const Addr lock = image->AddGlobal("lock", 0);
  const Addr flag = image->AddGlobal("flag", 0);
  {
    ProgramBuilder a("setter");
    a.Lea(R1, lock)
        .Lock(R1)
        .Lea(R2, flag)
        .StoreImm(R2, 1)
        .Note("A1: flag = 1 (in cs)")
        .Unlock(R1)
        .Exit();
    image->AddProgram(a.Build());
  }
  {
    ProgramBuilder b("checker");
    b.Lea(R1, lock)
        .Lock(R1)
        .Lea(R2, flag)
        .Load(R3, R2)
        .Note("B1: r = flag (in cs)")
        .Unlock(R1)
        .Beqz(R3, "ok")
        .MovImm(R4, 0)
        .BugOn(R4)
        .Note("B2: BUG when flag was set first")
        .Label("ok")
        .Exit();
    image->AddProgram(b.Build());
  }
  std::vector<ThreadSpec> slice = {{"setter", 0, 0, ThreadKind::kSyscall},
                                   {"checker", 1, 0, ThreadKind::kSyscall}};

  LifsOptions lo;
  lo.target_type = FailureType::kAssertViolation;
  Lifs lifs(image.get(), slice, {}, lo);
  LifsResult lr = lifs.Run();
  ASSERT_TRUE(lr.reproduced);
  ASSERT_FALSE(lr.races.cs_pairs.empty());

  CausalityAnalysis ca(image.get(), slice, {}, &lr, {});
  CausalityResult cr = ca.Run();
  bool cs_root = false;
  for (const TestedRace& t : cr.tested) {
    if (t.race.cs_pair) {
      // Reordering the critical sections prevents the BUG.
      EXPECT_EQ(t.verdict, RaceVerdict::kRootCause);
      cs_root = true;
    }
  }
  EXPECT_TRUE(cs_root);
  // The chain carries the critical-section pair.
  std::string rendered = cr.chain.Render(*image);
  EXPECT_NE(rendered.find("cs{"), std::string::npos) << rendered;
}

TEST(CausalityTest, ConsolidationKeepsMinimalRepresentatives) {
  // CVE-2019-6974 has refput+free adjacent to each other conflicting with the
  // same refcount_inc: consolidation must keep one representative, so the
  // chain stays at its designed two races.
  Diagnosis d = DiagnoseScenario(MakeScenario("CVE-2019-6974"));
  EXPECT_EQ(d.causality.chain.race_count(), 2u);
  EXPECT_FALSE(d.causality.ambiguous);
}

TEST(CausalityTest, ScheduleCountMatchesTestSetSize) {
  Diagnosis d = DiagnoseScenario(MakeScenario("fig-1"));
  EXPECT_EQ(d.causality.schedules_executed + d.causality.flips_skipped,
            static_cast<int64_t>(d.causality.tested.size()));
}

TEST(CausalityTest, DisabledPrefilterExecutesEveryFlip) {
  CausalityOptions co;
  co.stages.clear();
  Diagnosis d = DiagnoseScenario(MakeScenario("syz-09"), co);
  EXPECT_EQ(d.causality.flips_skipped, 0);
  EXPECT_EQ(d.causality.schedules_executed,
            static_cast<int64_t>(d.causality.tested.size()));
  for (const TestedRace& t : d.causality.tested) {
    EXPECT_FALSE(t.flip_skipped);
  }
}

TEST(CausalityTest, PrefilterSkipsProvenFlipsWithRecordedProof) {
  // syz-09 carries two statically dischargeable flips (a silent store pair
  // and a dead store); the skips must be benign, carry their proof, and
  // leave the root-cause set untouched.
  Diagnosis off_d = DiagnoseScenario(MakeScenario("syz-09"), [] {
    CausalityOptions co;
    co.stages.clear();
    return co;
  }());
  Diagnosis on_d = DiagnoseScenario(MakeScenario("syz-09"));
  EXPECT_GT(on_d.causality.flips_skipped, 0);
  EXPECT_EQ(on_d.causality.schedules_executed + on_d.causality.flips_skipped,
            static_cast<int64_t>(on_d.causality.tested.size()));
  EXPECT_EQ(on_d.causality.root_cause_indices, off_d.causality.root_cause_indices);
  ASSERT_EQ(on_d.causality.tested.size(), off_d.causality.tested.size());
  for (size_t i = 0; i < on_d.causality.tested.size(); ++i) {
    const TestedRace& on_t = on_d.causality.tested[i];
    EXPECT_EQ(on_t.verdict, off_d.causality.tested[i].verdict);
    if (on_t.flip_skipped) {
      EXPECT_EQ(on_t.triage_verdict, analysis::TriageVerdict::kProvablyBenign);
      EXPECT_EQ(on_t.triage_stage, "hb");
      EXPECT_FALSE(on_t.triage_reason.empty());
    }
  }
}

}  // namespace
}  // namespace aitia
