// Unit tests for the bug-finding front end (src/fuzz).

#include <gtest/gtest.h>

#include "src/bugs/registry.h"
#include "src/fuzz/fuzzer.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

TEST(FuzzerTest, FindsFig1FailureAndReportsSeed) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(outcome.found);
  EXPECT_GT(outcome.attempts, 0);
  ASSERT_TRUE(outcome.run.failure.has_value());
  EXPECT_EQ(outcome.run.failure->type, FailureType::kNullDeref);
}

TEST(FuzzerTest, SameSeedReproducesSameRun) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome a = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(a.found);
  FuzzOptions options;
  options.first_seed = a.seed;
  options.max_attempts = 1;
  FuzzOutcome b = FuzzUntilFailure(s.MakeWorkload(), options);
  ASSERT_TRUE(b.found);
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size());
  for (size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace[i].di, b.run.trace[i].di);
  }
}

TEST(FuzzerTest, HistoryContainsEnterForEveryThread) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(outcome.found);
  int enters = 0;
  for (const HistoryEntry& e : outcome.history.entries) {
    if (e.kind == HistoryKind::kSyscallEnter) {
      ++enters;
    }
  }
  EXPECT_GE(enters, 2);
  ASSERT_TRUE(outcome.history.failure.has_value());
  EXPECT_EQ(outcome.history.failure->failure.type, FailureType::kNullDeref);
}

TEST(FuzzerTest, BgInvocationRecordedWithSourceTask) {
  BugScenario s = MakeScenario("fig-5");  // B spawns the kworker
  FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(outcome.found);
  bool bg_seen = false;
  for (const HistoryEntry& e : outcome.history.entries) {
    if (e.kind == HistoryKind::kBgInvoke) {
      bg_seen = true;
      EXPECT_GE(e.source_task, 0);
      EXPECT_EQ(e.thread_kind, ThreadKind::kKworker);
    }
  }
  EXPECT_TRUE(bg_seen);
}

TEST(FuzzerTest, SetupSyscallsGetNegativeTimestamps) {
  BugScenario s = MakeScenario("CVE-2019-11486");  // has an open() setup
  FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(outcome.found);
  bool setup_entry = false;
  for (const HistoryEntry& e : outcome.history.entries) {
    if (e.timestamp < 0) {
      setup_entry = true;
      EXPECT_FALSE(e.resource.empty());
    }
  }
  EXPECT_TRUE(setup_entry);
}

TEST(FuzzerTest, CleanWorkloadNeverReportsFailure) {
  // A trivially race-free workload: two threads writing different globals.
  KernelImage image;
  Addr a = image.AddGlobal("a", 0);
  Addr b = image.AddGlobal("b", 0);
  {
    ProgramBuilder p("wa");
    p.Lea(R1, a).StoreImm(R1, 1).Exit();
    image.AddProgram(p.Build());
  }
  {
    ProgramBuilder p("wb");
    p.Lea(R1, b).StoreImm(R1, 1).Exit();
    image.AddProgram(p.Build());
  }
  FuzzWorkload workload;
  workload.image = &image;
  workload.threads = {{"a", 0, 0, ThreadKind::kSyscall}, {"b", 1, 0, ThreadKind::kSyscall}};
  FuzzOptions options;
  options.max_attempts = 50;
  FuzzOutcome outcome = FuzzUntilFailure(workload, options);
  EXPECT_FALSE(outcome.found);
  EXPECT_EQ(outcome.attempts, 50);
}

TEST(FuzzerTest, ExhaustedAttemptsReportExactCountAndNoHistory) {
  // Same race-free workload: every attempt completes cleanly, so the fuzzer
  // must burn exactly max_attempts attempts and emit nothing.
  KernelImage image;
  Addr a = image.AddGlobal("a", 0);
  {
    ProgramBuilder p("wa");
    p.Lea(R1, a).StoreImm(R1, 1).Exit();
    image.AddProgram(p.Build());
  }
  FuzzWorkload workload;
  workload.image = &image;
  workload.threads = {{"a", 0, 0, ThreadKind::kSyscall}, {"b", 0, 0, ThreadKind::kSyscall}};
  FuzzOptions options;
  options.max_attempts = 7;
  FuzzOutcome outcome = FuzzUntilFailure(workload, options);
  EXPECT_FALSE(outcome.found);
  EXPECT_EQ(outcome.attempts, options.max_attempts);
  EXPECT_EQ(outcome.seed, 0u);
  EXPECT_TRUE(outcome.history.entries.empty());
  EXPECT_FALSE(outcome.history.failure.has_value());

  // Degenerate budget: zero attempts means zero work, not one free try.
  options.max_attempts = 0;
  outcome = FuzzUntilFailure(workload, options);
  EXPECT_FALSE(outcome.found);
  EXPECT_EQ(outcome.attempts, 0);
}

TEST(FuzzerTest, SetupResourcesLandInEmittedHistory) {
  // A setup syscall publishes a pointer the concurrent threads then race on
  // (deref vs. NULL-out), so the fuzzer always finds the failure and the
  // emitted history must carry the setup thread's resource tag on both its
  // enter and exit entries.
  KernelImage image;
  Addr data = image.AddGlobal("data", 1);
  Addr ptr = image.AddGlobal("ptr", 0);
  {
    ProgramBuilder p("open_dev");  // setup: ptr = &data
    p.Lea(R1, ptr).Lea(R2, data).Store(R1, R2).Exit();
    image.AddProgram(p.Build());
  }
  {
    ProgramBuilder p("use_dev");  // *(*ptr)
    p.Lea(R1, ptr).Load(R2, R1).Load(R3, R2).Exit();
    image.AddProgram(p.Build());
  }
  {
    ProgramBuilder p("close_dev");  // ptr = NULL
    p.Lea(R1, ptr).StoreImm(R1, 0).Exit();
    image.AddProgram(p.Build());
  }
  FuzzWorkload workload;
  workload.image = &image;
  workload.setup = {{"open", 0, 0, ThreadKind::kSyscall}};
  workload.setup_resources = {"fd:dev"};
  workload.threads = {{"use", 1, 0, ThreadKind::kSyscall}, {"close", 2, 0, ThreadKind::kSyscall}};
  workload.resources = {"fd:dev", "fd:dev"};

  FuzzOutcome outcome = FuzzUntilFailure(workload);
  ASSERT_TRUE(outcome.found);
  ASSERT_TRUE(outcome.run.failure.has_value());
  EXPECT_EQ(outcome.run.failure->type, FailureType::kNullDeref);

  int setup_enters = 0;
  int setup_exits = 0;
  int tagged_concurrent_enters = 0;
  for (const HistoryEntry& e : outcome.history.entries) {
    if (e.timestamp < 0) {
      EXPECT_EQ(e.resource, "fd:dev");
      EXPECT_EQ(e.name, "open");
      if (e.kind == HistoryKind::kSyscallEnter) {
        ++setup_enters;
      } else if (e.kind == HistoryKind::kSyscallExit) {
        ++setup_exits;
      }
    } else if (e.kind == HistoryKind::kSyscallEnter && e.resource == "fd:dev") {
      ++tagged_concurrent_enters;
    }
  }
  EXPECT_EQ(setup_enters, 1);
  EXPECT_EQ(setup_exits, 1);
  EXPECT_EQ(tagged_concurrent_enters, 2);
}

}  // namespace
}  // namespace aitia
