// Unit tests for the bug-finding front end (src/fuzz).

#include <gtest/gtest.h>

#include "src/bugs/registry.h"
#include "src/fuzz/fuzzer.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

TEST(FuzzerTest, FindsFig1FailureAndReportsSeed) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(outcome.found);
  EXPECT_GT(outcome.attempts, 0);
  ASSERT_TRUE(outcome.run.failure.has_value());
  EXPECT_EQ(outcome.run.failure->type, FailureType::kNullDeref);
}

TEST(FuzzerTest, SameSeedReproducesSameRun) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome a = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(a.found);
  FuzzOptions options;
  options.first_seed = a.seed;
  options.max_attempts = 1;
  FuzzOutcome b = FuzzUntilFailure(s.MakeWorkload(), options);
  ASSERT_TRUE(b.found);
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size());
  for (size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace[i].di, b.run.trace[i].di);
  }
}

TEST(FuzzerTest, HistoryContainsEnterForEveryThread) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(outcome.found);
  int enters = 0;
  for (const HistoryEntry& e : outcome.history.entries) {
    if (e.kind == HistoryKind::kSyscallEnter) {
      ++enters;
    }
  }
  EXPECT_GE(enters, 2);
  ASSERT_TRUE(outcome.history.failure.has_value());
  EXPECT_EQ(outcome.history.failure->failure.type, FailureType::kNullDeref);
}

TEST(FuzzerTest, BgInvocationRecordedWithSourceTask) {
  BugScenario s = MakeScenario("fig-5");  // B spawns the kworker
  FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(outcome.found);
  bool bg_seen = false;
  for (const HistoryEntry& e : outcome.history.entries) {
    if (e.kind == HistoryKind::kBgInvoke) {
      bg_seen = true;
      EXPECT_GE(e.source_task, 0);
      EXPECT_EQ(e.thread_kind, ThreadKind::kKworker);
    }
  }
  EXPECT_TRUE(bg_seen);
}

TEST(FuzzerTest, SetupSyscallsGetNegativeTimestamps) {
  BugScenario s = MakeScenario("CVE-2019-11486");  // has an open() setup
  FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(outcome.found);
  bool setup_entry = false;
  for (const HistoryEntry& e : outcome.history.entries) {
    if (e.timestamp < 0) {
      setup_entry = true;
      EXPECT_FALSE(e.resource.empty());
    }
  }
  EXPECT_TRUE(setup_entry);
}

TEST(FuzzerTest, CleanWorkloadNeverReportsFailure) {
  // A trivially race-free workload: two threads writing different globals.
  KernelImage image;
  Addr a = image.AddGlobal("a", 0);
  Addr b = image.AddGlobal("b", 0);
  {
    ProgramBuilder p("wa");
    p.Lea(R1, a).StoreImm(R1, 1).Exit();
    image.AddProgram(p.Build());
  }
  {
    ProgramBuilder p("wb");
    p.Lea(R1, b).StoreImm(R1, 1).Exit();
    image.AddProgram(p.Build());
  }
  FuzzWorkload workload;
  workload.image = &image;
  workload.threads = {{"a", 0, 0, ThreadKind::kSyscall}, {"b", 1, 0, ThreadKind::kSyscall}};
  FuzzOptions options;
  options.max_attempts = 50;
  FuzzOutcome outcome = FuzzUntilFailure(workload, options);
  EXPECT_FALSE(outcome.found);
  EXPECT_EQ(outcome.attempts, 50);
}

}  // namespace
}  // namespace aitia
