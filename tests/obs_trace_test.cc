// Tests for the span tracer (src/obs/trace): disabled-path cost model, ring
// bounds and drop accounting, Chrome trace-event serialization, and the
// end-to-end guarantee that a traced diagnosis emits spans for every
// pipeline phase while report.metrics stays glued to the authoritative
// pipeline counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/report.h"
#include "src/ingest/ingest.h"
#include "src/ingest/serialize.h"
#include "src/obs/trace.h"
#include "tests/json_checker.h"

namespace aitia {
namespace obs {
namespace {

// The global tracer persists across tests in this binary; every test that
// records starts its own epoch and stops on exit.
class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Global().Stop(); }
};

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  Tracer::Global().Start(64);
  Tracer::Global().Stop();
  {
    Span span("lifs", "lifs.run");
    span.Arg("k", 1);
    Span("lifs", "lifs.prune", 'i').Arg("reason", "test");
  }
  const TraceDump dump = Tracer::Global().Snapshot();
  EXPECT_TRUE(dump.events.empty());
  EXPECT_EQ(dump.dropped, 0);
}

TEST_F(TracerTest, StartClearsPreviousEvents) {
  Tracer::Global().Start(64);
  Span("cat", "one", 'i');
  EXPECT_EQ(Tracer::Global().Snapshot().events.size(), 1u);
  Tracer::Global().Start(64);
  EXPECT_TRUE(Tracer::Global().Snapshot().events.empty());
}

TEST_F(TracerTest, RingIsBoundedAndCountsDrops) {
  // Capacity 16 spreads to 1 slot per shard; a single thread writes into
  // exactly one shard, so only the first event survives (first-come-first-
  // kept: early-phase spans are never evicted by later ones).
  Tracer::Global().Start(16);
  for (int i = 0; i < 100; ++i) {
    Span("cat", i == 0 ? "kept" : "dropped", 'i');
  }
  const TraceDump dump = Tracer::Global().Snapshot();
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].name, "kept");
  EXPECT_EQ(dump.dropped, 99);
  EXPECT_EQ(dump.capacity, 16u);
}

TEST_F(TracerTest, SpansCarryArgsAndSortByTimestamp) {
  Tracer::Global().Start();
  {
    Span span("lifs", "lifs.run");
    span.Arg("k", 2).Arg("matched", true).Arg("why", "because");
  }
  Span("lifs", "lifs.prune", 'i').Arg("count", int64_t{7});
  const TraceDump dump = Tracer::Global().Snapshot();
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_TRUE(std::is_sorted(dump.events.begin(), dump.events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.ts_us < b.ts_us;
                             }));
  const TraceEvent& run = dump.events[0].name == "lifs.run" ? dump.events[0] : dump.events[1];
  EXPECT_EQ(run.ph, 'X');
  EXPECT_GE(run.dur_us, 0);
  ASSERT_EQ(run.args.size(), 3u);
  EXPECT_EQ(run.args[0].key, "k");
  EXPECT_EQ(run.args[0].value, "2");
  EXPECT_FALSE(run.args[0].quoted);
  EXPECT_EQ(run.args[1].value, "true");
  EXPECT_FALSE(run.args[1].quoted);
  EXPECT_EQ(run.args[2].value, "because");
  EXPECT_TRUE(run.args[2].quoted);
}

TEST_F(TracerTest, ChromeJsonIsValidAndLoadable) {
  Tracer::Global().Start();
  {
    Span span("ingest", "ingest.parse");
    span.Arg("file", std::string("x\"y.ait"));  // forces escaping
  }
  Span("lifs", "lifs.match", 'i').Arg("points", 3);
  const std::string json = ToChromeTraceJson(Tracer::Global().Snapshot());
  std::string why;
  ASSERT_TRUE(testing_json::IsValidJson(json, &why)) << why << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST_F(TracerTest, TracedDiagnosisEmitsSpansForEveryPhase) {
  Tracer::Global().Start();
  BugScenario s = MakeScenario("fig-1");
  // Round-trip through the .ait frontend so the ingest phase runs too.
  StatusOr<BugScenario> loaded = ScenarioFromAitText(ScenarioToAit(s), "fig_1.ait");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  AitiaReport report = DiagnoseScenario(*loaded);
  ASSERT_TRUE(report.diagnosed);
  const TraceDump dump = Tracer::Global().Snapshot();
  Tracer::Global().Stop();

  std::set<std::string> cats;
  std::set<std::string> names;
  for (const TraceEvent& e : dump.events) {
    cats.insert(e.cat);
    names.insert(e.name);
  }
  EXPECT_TRUE(cats.count("ingest")) << "no ingest spans";
  EXPECT_TRUE(cats.count("lifs")) << "no lifs spans";
  EXPECT_TRUE(cats.count("causality")) << "no causality spans";
  EXPECT_TRUE(cats.count("pipeline")) << "no pipeline spans";
  EXPECT_TRUE(names.count("ingest.parse"));
  EXPECT_TRUE(names.count("ingest.assemble"));
  EXPECT_TRUE(names.count("lifs.search"));
  EXPECT_TRUE(names.count("lifs.run"));
  EXPECT_TRUE(names.count("lifs.match"));
  EXPECT_TRUE(names.count("ca.flip"));
  EXPECT_TRUE(names.count("ca.verdict"));
}

TEST_F(TracerTest, ReportMetricsMatchAuthoritativeCounters) {
  BugScenario s = MakeScenario("fig-1");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  // The flight recorder must not drift from the pipeline's own accounting:
  // report.metrics is cut from the same counters LifsResult publishes.
  EXPECT_EQ(report.metrics.counter("lifs.schedules_executed"),
            report.lifs.schedules_executed);
  EXPECT_EQ(report.metrics.counter("lifs.schedules_pruned"), report.lifs.schedules_pruned);
  EXPECT_EQ(report.metrics.counter("lifs.speculative_runs"), report.lifs.speculative_runs);
  EXPECT_EQ(report.metrics.counter("causality.flip_tests"),
            report.causality.schedules_executed);
  EXPECT_EQ(report.metrics.counter("supervisor.attempts"),
            report.lifs.budget.attempts + report.causality.budget.attempts);

  const std::string json = ReportToJson(report, *s.image);
  std::string why;
  ASSERT_TRUE(testing_json::IsValidJson(json, &why)) << why;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"schedules_executed\""), std::string::npos);
}

TEST_F(TracerTest, UndiagnosedReportStillCarriesMetrics) {
  BugScenario s = MakeScenario("fig-1");
  AitiaOptions options;
  options.lifs.target_type = FailureType::kDoubleFree;  // unreachable
  options.lifs.max_schedules = 50;
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);
  ASSERT_FALSE(report.diagnosed);
  EXPECT_EQ(report.metrics.counter("lifs.schedules_executed"),
            report.lifs.schedules_executed);
  const std::string json = ReportToJson(report, *s.image);
  std::string why;
  ASSERT_TRUE(testing_json::IsValidJson(json, &why)) << why;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace aitia
