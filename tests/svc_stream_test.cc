// Streaming-protocol tests for the daemon (src/svc/daemon.h): NDJSON
// progress frames arrive strictly before the exactly-once terminal response,
// frames carry the request id and a well-formed event body, per-request
// scopes never cross-talk under concurrency, and a sink that goes away
// mid-stream degrades the stream — never the daemon.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/svc/daemon.h"
#include "src/svc/jsonv.h"
#include "tests/json_checker.h"

namespace aitia {
namespace svc {
namespace {

JsonValue Parse(const std::string& line) {
  std::string why;
  EXPECT_TRUE(testing_json::IsValidJson(line, &why)) << why << "\n" << line;
  auto parsed = ParseJson(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

std::string Field(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : "";
}

DaemonOptions SmallOptions() {
  DaemonOptions options;
  options.workers = 2;
  options.queue_shards = 2;
  options.shard_capacity = 8;
  options.cache_capacity = 16;
  options.default_deadline_ms = 30000;
  return options;
}

// Collects one request's frames and terminal with the ordering recorded.
struct StreamLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> frames;
  std::vector<std::string> terminals;
  bool terminal_after_frame_gap = false;  // a frame arrived after the terminal

  Daemon::Responder FrameSink() {
    return [this](std::string line) {
      std::lock_guard<std::mutex> lock(mu);
      if (!terminals.empty()) {
        terminal_after_frame_gap = true;
      }
      frames.push_back(std::move(line));
    };
  }
  Daemon::Responder TerminalSink() {
    return [this](std::string line) {
      {
        std::lock_guard<std::mutex> lock(mu);
        terminals.push_back(std::move(line));
      }
      cv.notify_all();
    };
  }
  void WaitTerminal() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !terminals.empty(); });
  }
};

int64_t DuplicateResponses() {
  return obs::MetricsRegistry::Global().Snapshot().counter("svc.duplicate_responses");
}

TEST(SvcStreamTest, FramesThenExactlyOneTerminal) {
  const int64_t dups_before = DuplicateResponses();
  Daemon daemon(SmallOptions());
  StreamLog log;
  daemon.Submit(R"({"verb":"diagnose","id":"s1","scenario":"fig-1","stream":true})",
                log.TerminalSink(), log.FrameSink());
  log.WaitTerminal();
  daemon.Drain();  // all relay pumps joined; frame vector is final

  std::lock_guard<std::mutex> lock(log.mu);
  ASSERT_EQ(log.terminals.size(), 1u);
  EXPECT_FALSE(log.terminal_after_frame_gap) << "frame delivered after the terminal";
  ASSERT_FALSE(log.frames.empty()) << "streamed diagnose produced no progress frames";

  // The terminal is a normal diagnose response with no "event" key.
  const JsonValue terminal = Parse(log.terminals[0]);
  EXPECT_EQ(Field(terminal, "id"), "s1");
  EXPECT_EQ(Field(terminal, "status"), "ok");
  EXPECT_EQ(terminal.Find("event"), nullptr);
  EXPECT_NE(terminal.Find("report"), nullptr);

  // Every frame: {"id":"s1","event":{"phase":...,"seq":N,...}}, seq strictly
  // increasing, starting at the admission-side "queued" and ending "done".
  std::vector<std::string> phases;
  int64_t last_seq = -1;
  for (const std::string& line : log.frames) {
    const JsonValue frame = Parse(line);
    EXPECT_EQ(Field(frame, "id"), "s1") << line;
    const JsonValue* event = frame.Find("event");
    ASSERT_NE(event, nullptr) << line;
    EXPECT_EQ(frame.Find("report"), nullptr) << "frames never carry a report";
    const int64_t seq = event->Find("seq") != nullptr ? event->Find("seq")->AsInt() : -1;
    EXPECT_GT(seq, last_seq) << line;
    last_seq = seq;
    phases.push_back(Field(*event, "phase"));
  }
  EXPECT_EQ(phases.front(), "queued");
  EXPECT_EQ(phases.back(), "done");
  // The worker lifecycle showed up in between.
  EXPECT_NE(std::find(phases.begin(), phases.end(), "started"), phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "verdict"), phases.end());
  EXPECT_EQ(DuplicateResponses(), dups_before);
}

TEST(SvcStreamTest, NoStreamFieldMeansNoFrames) {
  Daemon daemon(SmallOptions());
  StreamLog log;
  daemon.Submit(R"({"verb":"diagnose","id":"p1","scenario":"fig-1"})", log.TerminalSink(),
                log.FrameSink());
  log.WaitTerminal();
  daemon.Drain();
  std::lock_guard<std::mutex> lock(log.mu);
  EXPECT_TRUE(log.frames.empty());
  ASSERT_EQ(log.terminals.size(), 1u);
  EXPECT_EQ(Field(Parse(log.terminals[0]), "status"), "ok");
}

TEST(SvcStreamTest, NullStreamSinkDowngradesToPlainRequest) {
  Daemon daemon(SmallOptions());
  StreamLog log;
  // "stream": true but no sink (old transport): still exactly one terminal.
  daemon.Submit(R"({"verb":"diagnose","id":"d1","scenario":"fig-1","stream":true})",
                log.TerminalSink());
  log.WaitTerminal();
  std::lock_guard<std::mutex> lock(log.mu);
  ASSERT_EQ(log.terminals.size(), 1u);
  EXPECT_EQ(Field(Parse(log.terminals[0]), "status"), "ok");
}

TEST(SvcStreamTest, CacheHitStillStreamsLifecycle) {
  Daemon daemon(SmallOptions());
  // Warm the cache un-streamed.
  StreamLog warm;
  daemon.Submit(R"({"verb":"diagnose","id":"w","scenario":"fig-1"})", warm.TerminalSink());
  warm.WaitTerminal();

  StreamLog log;
  daemon.Submit(R"({"verb":"diagnose","id":"hit","scenario":"fig-1","stream":true})",
                log.TerminalSink(), log.FrameSink());
  log.WaitTerminal();
  daemon.Drain();

  std::lock_guard<std::mutex> lock(log.mu);
  ASSERT_EQ(log.terminals.size(), 1u);
  const JsonValue terminal = Parse(log.terminals[0]);
  EXPECT_EQ(Field(terminal, "cache"), "hit");
  // A cache hit still announces itself: queued, then done (no pipeline
  // phases — the report came from the cache).
  ASSERT_FALSE(log.frames.empty());
  const JsonValue last = Parse(log.frames.back());
  ASSERT_NE(last.Find("event"), nullptr);
  EXPECT_EQ(Field(*last.Find("event"), "phase"), "done");
}

TEST(SvcStreamTest, HandleLineDeliversFramesBeforeReturning) {
  Daemon daemon(SmallOptions());
  std::vector<std::string> frames;  // HandleLine is synchronous; no lock needed
  const std::string response = daemon.HandleLine(
      R"({"verb":"diagnose","id":"once","scenario":"fig-1","stream":true})",
      [&frames](std::string line) { frames.push_back(std::move(line)); });
  EXPECT_EQ(Field(Parse(response), "status"), "ok");
  ASSERT_FALSE(frames.empty());
  for (const std::string& line : frames) {
    EXPECT_EQ(Field(Parse(line), "id"), "once");
  }
}

TEST(SvcStreamTest, ConcurrentStreamsNeverCrossTalk) {
  const int64_t dups_before = DuplicateResponses();
  DaemonOptions options = SmallOptions();
  options.workers = 4;
  options.cache_capacity = 0;  // every request runs the pipeline
  Daemon daemon(options);

  constexpr int kRequests = 8;
  std::vector<std::unique_ptr<StreamLog>> logs;
  for (int i = 0; i < kRequests; ++i) {
    logs.push_back(std::make_unique<StreamLog>());
  }
  for (int i = 0; i < kRequests; ++i) {
    const std::string id = "c" + std::to_string(i);
    daemon.Submit(R"({"verb":"diagnose","id":")" + id +
                      R"(","scenario":"fig-1","stream":true,"no_cache":true})",
                  logs[i]->TerminalSink(), logs[i]->FrameSink());
  }
  for (auto& log : logs) {
    log->WaitTerminal();
  }
  daemon.Drain();

  for (int i = 0; i < kRequests; ++i) {
    std::lock_guard<std::mutex> lock(logs[i]->mu);
    ASSERT_EQ(logs[i]->terminals.size(), 1u) << i;
    EXPECT_FALSE(logs[i]->terminal_after_frame_gap) << i;
    ASSERT_FALSE(logs[i]->frames.empty()) << i;
    const std::string want_id = "c" + std::to_string(i);
    for (const std::string& line : logs[i]->frames) {
      // Scope isolation: every frame on this sink carries this request's id.
      EXPECT_EQ(Field(Parse(line), "id"), want_id) << line;
    }
  }
  EXPECT_EQ(DuplicateResponses(), dups_before);
}

TEST(SvcStreamTest, DisconnectedSinkDoesNotKillTheDaemon) {
  Daemon daemon(SmallOptions());
  StreamLog log;
  // A sink that throws models a client whose connection died mid-stream.
  std::atomic<int> attempted{0};
  daemon.Submit(R"({"verb":"diagnose","id":"dead","scenario":"fig-1","stream":true})",
                log.TerminalSink(), [&attempted](std::string) {
                  attempted.fetch_add(1);
                  throw std::runtime_error("broken pipe");
                });
  log.WaitTerminal();
  {
    std::lock_guard<std::mutex> lock(log.mu);
    ASSERT_EQ(log.terminals.size(), 1u);
  }
  EXPECT_GT(attempted.load(), 0);
  // The daemon is still alive and serving.
  EXPECT_EQ(Field(Parse(daemon.HandleLine(R"({"verb":"ping","id":"alive"})")), "status"),
            "ok");
}

}  // namespace
}  // namespace svc
}  // namespace aitia
