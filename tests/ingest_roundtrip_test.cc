// Corpus-wide .ait round-trip tests (src/ingest).
//
// Every registered scenario is serialized to the trace language, re-parsed,
// re-assembled, and compared against the directly-built original — first
// structurally (image, threads, truth), then behaviorally: the re-ingested
// scenario must diagnose to the same causality chain. The checked-in
// examples/traces/*.ait files get the same treatment, proving the shipped
// artifacts stay in sync with the corpus.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/ingest/ingest.h"

namespace aitia {
namespace {

void ExpectSameImage(const KernelImage& want, const KernelImage& got, const std::string& id) {
  ASSERT_EQ(want.globals().size(), got.globals().size()) << id;
  for (size_t i = 0; i < want.globals().size(); ++i) {
    EXPECT_EQ(want.globals()[i].name, got.globals()[i].name) << id;
    EXPECT_EQ(want.globals()[i].addr, got.globals()[i].addr) << id;
    EXPECT_EQ(want.globals()[i].init, got.globals()[i].init) << id;
  }
  ASSERT_EQ(want.programs().size(), got.programs().size()) << id;
  for (size_t p = 0; p < want.programs().size(); ++p) {
    const Program& a = want.programs()[p];
    const Program& b = got.programs()[p];
    EXPECT_EQ(a.name, b.name) << id;
    ASSERT_EQ(a.code.size(), b.code.size()) << id << " program " << a.name;
    for (size_t pc = 0; pc < a.code.size(); ++pc) {
      const Instr& x = a.code[pc];
      const Instr& y = b.code[pc];
      const std::string where = id + " " + a.name + "+" + std::to_string(pc);
      EXPECT_EQ(x.op, y.op) << where;
      EXPECT_EQ(x.rd, y.rd) << where;
      EXPECT_EQ(x.rs, y.rs) << where;
      EXPECT_EQ(x.rt, y.rt) << where;
      EXPECT_EQ(x.imm, y.imm) << where;
      EXPECT_EQ(x.imm2, y.imm2) << where;
      EXPECT_EQ(x.note, y.note) << where;
    }
  }
}

void ExpectSameThreads(const std::vector<ThreadSpec>& want, const std::vector<ThreadSpec>& got,
                       const std::string& where) {
  ASSERT_EQ(want.size(), got.size()) << where;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].name, got[i].name) << where;
    EXPECT_EQ(want[i].prog, got[i].prog) << where;
    EXPECT_EQ(want[i].arg, got[i].arg) << where;
    EXPECT_EQ(want[i].kind, got[i].kind) << where;
  }
}

void ExpectSameScenario(const BugScenario& want, const BugScenario& got) {
  const std::string& id = want.id;
  EXPECT_EQ(want.id, got.id);
  EXPECT_EQ(want.subsystem, got.subsystem) << id;
  EXPECT_EQ(want.bug_kind, got.bug_kind) << id;
  ExpectSameImage(*want.image, *got.image, id);
  ExpectSameThreads(want.slice, got.slice, id + " slice");
  ExpectSameThreads(want.setup, got.setup, id + " setup");
  ExpectSameThreads(want.noise, got.noise, id + " noise");
  EXPECT_EQ(want.slice_resources, got.slice_resources) << id;
  EXPECT_EQ(want.setup_resources, got.setup_resources) << id;
  ASSERT_EQ(want.irq_lines.size(), got.irq_lines.size()) << id;
  for (size_t i = 0; i < want.irq_lines.size(); ++i) {
    EXPECT_EQ(want.irq_lines[i].handler, got.irq_lines[i].handler) << id;
    EXPECT_EQ(want.irq_lines[i].arg, got.irq_lines[i].arg) << id;
  }
  const GroundTruth& wt = want.truth;
  const GroundTruth& gt = got.truth;
  EXPECT_EQ(wt.failure_type, gt.failure_type) << id;
  EXPECT_EQ(wt.multi_variable, gt.multi_variable) << id;
  EXPECT_EQ(wt.loosely_correlated, gt.loosely_correlated) << id;
  EXPECT_EQ(wt.paper_chain_races, gt.paper_chain_races) << id;
  EXPECT_EQ(wt.paper_interleavings, gt.paper_interleavings) << id;
  EXPECT_EQ(wt.expected_chain_races, gt.expected_chain_races) << id;
  EXPECT_EQ(wt.expected_interleavings, gt.expected_interleavings) << id;
  EXPECT_EQ(wt.racing_globals, gt.racing_globals) << id;
  EXPECT_EQ(wt.muvi_assumption_holds, gt.muvi_assumption_holds) << id;
  EXPECT_EQ(wt.single_variable_pattern, gt.single_variable_pattern) << id;
  EXPECT_EQ(wt.expect_ambiguity, gt.expect_ambiguity) << id;
}

// serialize -> parse -> assemble reproduces the exact scenario structure for
// the whole corpus. This is the cheap (no diagnosis) half of the round trip.
TEST(IngestRoundTripTest, CorpusSerializeParseIsStructurallyLossless) {
  for (const ScenarioEntry& entry : AllScenarios()) {
    SCOPED_TRACE(entry.id);
    BugScenario original = entry.make();
    const std::string ait = ScenarioToAit(original);
    StatusOr<BugScenario> reparsed =
        ScenarioFromAitText(ait, std::string(entry.id) + ".ait");
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << ait;
    ExpectSameScenario(original, *reparsed);
  }
}

// The behavioral half: the re-ingested scenario must diagnose to the same
// causality chain as the hand-built one, for every corpus scenario.
TEST(IngestRoundTripTest, CorpusDiagnosisMatchesAfterRoundTrip) {
  for (const ScenarioEntry& entry : AllScenarios()) {
    SCOPED_TRACE(entry.id);
    BugScenario original = entry.make();
    StatusOr<BugScenario> reparsed =
        ScenarioFromAitText(ScenarioToAit(original), std::string(entry.id) + ".ait");
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

    AitiaReport want = DiagnoseScenario(original);
    AitiaReport got = DiagnoseScenario(*reparsed);
    EXPECT_EQ(want.diagnosed, got.diagnosed);
    EXPECT_EQ(want.causality.chain.race_count(), got.causality.chain.race_count());
    EXPECT_EQ(want.causality.chain.Render(*original.image),
              got.causality.chain.Render(*reparsed->image));
  }
}

// The checked-in example traces parse and diagnose identically to the corpus
// scenarios they re-express (ISSUE acceptance: at least two; we ship four).
TEST(IngestRoundTripTest, CheckedInExampleTracesMatchCorpus) {
  const struct {
    const char* file;
    const char* id;
  } kExamples[] = {
      {"fig_1.ait", "fig-1"},
      {"fig_4b.ait", "fig-4b"},
      {"cve_2017_15649.ait", "CVE-2017-15649"},
      {"ext_irq.ait", "ext-irq"},
  };
  for (const auto& example : kExamples) {
    SCOPED_TRACE(example.file);
    const std::string path = std::string(AITIA_TRACE_DIR) + "/" + example.file;
    StatusOr<BugScenario> loaded = ScenarioFromAitFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    BugScenario reference = MakeScenario(example.id);
    ExpectSameScenario(reference, *loaded);

    AitiaReport want = DiagnoseScenario(reference);
    AitiaReport got = DiagnoseScenario(*loaded);
    ASSERT_TRUE(want.diagnosed);
    EXPECT_TRUE(got.diagnosed);
    EXPECT_EQ(want.causality.chain.Render(*reference.image),
              got.causality.chain.Render(*loaded->image));
  }
}

}  // namespace
}  // namespace aitia
