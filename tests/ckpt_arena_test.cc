// Unit tests for the checkpoint arena allocator (src/ckpt/arena.h): payload
// round-trips, alignment, oversized payloads, and byte accounting.

#include "src/ckpt/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace aitia {
namespace ckpt {
namespace {

TEST(ArenaTest, CopiesScalarsAndRoundTrips) {
  Arena arena;
  const std::vector<int64_t> values = {1, -2, 3000000007, 0};
  std::span<const int64_t> copied = arena.Copy(values);
  ASSERT_EQ(copied.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(copied[i], values[i]);
  }
  // The copy is independent storage, not a view of the source vector.
  EXPECT_NE(static_cast<const void*>(copied.data()),
            static_cast<const void*>(values.data()));
}

TEST(ArenaTest, EmptyCopyYieldsEmptySpan) {
  Arena arena;
  std::span<const int32_t> empty = arena.Copy(std::vector<int32_t>{});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(arena.bytes(), 0u);
}

TEST(ArenaTest, AlignsEveryAllocation) {
  Arena arena;
  // Interleave 1-byte and 8-byte payloads: the 8-byte ones must come back
  // with natural alignment regardless of what preceded them.
  for (int i = 0; i < 100; ++i) {
    std::span<const char> c = arena.Copy(std::vector<char>{static_cast<char>(i)});
    ASSERT_EQ(c.size(), 1u);
    std::span<const uint64_t> w =
        arena.Copy(std::vector<uint64_t>{static_cast<uint64_t>(i) * 1000003});
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(w.data()) % alignof(uint64_t), 0u);
    EXPECT_EQ(w[0], static_cast<uint64_t>(i) * 1000003);
  }
}

TEST(ArenaTest, HandlesPayloadsLargerThanOneChunk) {
  Arena arena;
  // Larger than the 64 KiB internal chunk: must land in one contiguous span.
  std::vector<uint64_t> big(20000);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = i * i + 7;
  }
  std::span<const uint64_t> copied = arena.Copy(big);
  ASSERT_EQ(copied.size(), big.size());
  EXPECT_EQ(copied[0], 7u);
  EXPECT_EQ(copied[19999], big[19999]);
  EXPECT_GE(arena.bytes(), big.size() * sizeof(uint64_t));
}

TEST(ArenaTest, EarlierSpansSurviveLaterGrowth) {
  Arena arena;
  std::vector<std::span<const int>> spans;
  std::vector<std::vector<int>> sources;
  for (int i = 0; i < 64; ++i) {
    sources.emplace_back(512, i);
  }
  for (const auto& src : sources) {
    spans.push_back(arena.Copy(src));
  }
  // Chunked storage must never relocate previously returned spans.
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(spans[static_cast<size_t>(i)].size(), 512u);
    EXPECT_EQ(spans[static_cast<size_t>(i)][0], i);
    EXPECT_EQ(spans[static_cast<size_t>(i)][511], i);
  }
}

TEST(ArenaTest, BytesGrowMonotonically) {
  Arena arena;
  size_t last = arena.bytes();
  for (int i = 1; i <= 10; ++i) {
    arena.Copy(std::vector<int64_t>(static_cast<size_t>(i) * 100, i));
    EXPECT_GT(arena.bytes(), last);
    last = arena.bytes();
  }
}

}  // namespace
}  // namespace ckpt
}  // namespace aitia
