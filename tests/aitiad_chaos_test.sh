#!/bin/sh
# Load/chaos acceptance test for the aitiad daemon (ISSUE 6 acceptance run).
#
# Replays the full 22-bug corpus from 8 concurrent clients with fault
# injection enabled inside every diagnosis, against a deliberately small
# admission queue. The loadgen asserts the robustness contract: the daemon
# never dies, every request gets exactly one terminal response, floods shed
# as 'overloaded', svc.queue_depth_peak stays within shards x capacity, and
# svc.duplicate_responses is 0. Afterwards the daemon must still drain to
# exit 0 on SIGTERM.
#
# Usage: aitiad_chaos_test.sh <aitiad> <aitiad_loadgen> <workdir> [clients] [rounds]
set -u

AITIAD=$1
LOADGEN=$2
WORK=$3
CLIENTS=${4:-8}
ROUNDS=${5:-2}
mkdir -p "$WORK"
OUT="$WORK/daemon.out"
METRICS="$WORK/metrics.json"
rm -f "$OUT" "$METRICS"

fail() {
    echo "FAIL: $1" >&2
    [ -n "${DPID:-}" ] && kill -KILL "$DPID" 2>/dev/null
    exit 1
}

# Queue bound: 4 shards x 4 slots. The loadgen checks peak depth <= 16.
"$AITIAD" --port 0 --workers 4 --queue-shards 4 --shard-capacity 4 \
    --chaos-seed 20260809 --chaos-drop 30 --chaos-wakeup 20 --chaos-abort 10 \
    --metrics-json "$METRICS" >"$OUT" 2>"$WORK/daemon.err" &
DPID=$!

PORT=""
i=0
while [ $i -lt 100 ]; do
    PORT=$(sed -n 's/^aitiad: listening on 127.0.0.1:\([0-9]*\)$/\1/p' "$OUT")
    [ -n "$PORT" ] && break
    kill -0 "$DPID" 2>/dev/null || fail "daemon died during startup"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$PORT" ] || fail "daemon never printed its port"

# Chaos bypasses the replay cache exactly like it bypasses the result cache
# (a fault plan perturbs mid-run state, so prefix reuse would replay one
# run's faults into another): ckpt.* must stay untouched.
"$LOADGEN" --port "$PORT" --clients "$CLIENTS" --rounds "$ROUNDS" \
    --expect-bounded-queue 16 --expect-replay-cache unused \
    --timeout 150 >"$WORK/loadgen.json"
LSTATUS=$?
cat "$WORK/loadgen.json"
[ "$LSTATUS" -eq 0 ] || fail "loadgen contract check failed (exit $LSTATUS)"

kill -0 "$DPID" 2>/dev/null || fail "daemon died during the chaos run"
kill -TERM "$DPID"
wait "$DPID"
DSTATUS=$?
[ "$DSTATUS" -eq 0 ] || fail "daemon exited $DSTATUS after SIGTERM (want 0)"
[ -s "$METRICS" ] || fail "metrics flight record missing or empty"

echo "PASS: chaos run survived; summary in $WORK/loadgen.json"
exit 0
