// Corpus-wide differential test for the static triage pre-filter
// (src/analysis/triage): diagnosing every bundled scenario with the
// pre-filter {off, on} × workers {1, 4} must produce bit-identical semantics
// — per-race verdicts and flip bits, disappearance sets, the rendered causal
// chain, root-cause index sets, and the diagnosed/degraded flags. The
// pre-filter may only change *how much work* the dynamic stage does
// (schedules_executed), never *what it concludes*.
//
// This is the enforcement arm of the TriageStage conservatism contract
// (DESIGN.md §13): a stage returns kProvablyBenign only with an exact
// prediction of the dynamic flip outcome, so turning the pre-filter on is
// observationally pure speedup.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"

namespace aitia {
namespace {

// Everything semantically observable about one diagnosis, rendered to a
// comparable string (timing and metrics excluded on purpose).
std::string Semantics(const BugScenario& s, const AitiaReport& r) {
  std::string out;
  out += "diagnosed=" + std::to_string(r.diagnosed);
  out += " degraded=" + std::to_string(r.degraded);
  out += "\nchain:\n" + r.causality.chain.Render(*s.image);
  out += "roots:";
  for (size_t i : r.causality.root_cause_indices) {
    out += " " + std::to_string(i);
  }
  out += "\n";
  for (const TestedRace& t : r.causality.tested) {
    out += RaceLabel(*s.image, t.race);
    out += " verdict=" + std::string(RaceVerdictName(t.verdict));
    out += " phantom=" + std::to_string(t.phantom);
    out += " cs=" + std::to_string(t.race.cs_pair);
    out += " took_effect=" + std::to_string(t.flip_took_effect);
    out += " still_failed=" + std::to_string(t.flip_still_failed);
    out += " disappeared=";
    for (size_t d : t.disappeared) {
      out += std::to_string(d) + ",";
    }
    out += " nested=";
    for (size_t n : t.nested) {
      out += std::to_string(n) + ",";
    }
    out += "\n";
  }
  return out;
}

TEST(PrefilterDifferentialTest, CorpusSemanticsIdenticalOnOffAcrossWorkers) {
  int64_t total_skipped = 0;
  for (const ScenarioEntry& entry : AllScenarios()) {
    BugScenario scenario = entry.make();
    AitiaOptions off;
    off.set_prefilter(false);
    AitiaReport baseline = DiagnoseScenario(scenario, off);
    EXPECT_EQ(baseline.causality.flips_skipped, 0) << entry.id;
    const std::string want = Semantics(scenario, baseline);

    for (size_t jobs : {size_t{1}, size_t{4}}) {
      for (bool prefilter : {false, true}) {
        if (!prefilter && jobs == 1) {
          continue;  // that is the baseline itself
        }
        AitiaOptions options;
        options.set_jobs(jobs).set_prefilter(prefilter);
        AitiaReport report = DiagnoseScenario(scenario, options);
        EXPECT_EQ(Semantics(scenario, report), want)
            << entry.id << " jobs=" << jobs << " prefilter=" << prefilter;
        const CausalityResult& ca = report.causality;
        EXPECT_EQ(ca.schedules_executed + ca.flips_skipped,
                  static_cast<int64_t>(ca.tested.size()))
            << entry.id << " jobs=" << jobs << " prefilter=" << prefilter;
        if (!prefilter) {
          EXPECT_EQ(ca.flips_skipped, 0) << entry.id;
        } else if (jobs == 1) {
          total_skipped += ca.flips_skipped;
          // Skipped flips must carry their static proof in the report.
          for (const TestedRace& t : ca.tested) {
            if (t.flip_skipped) {
              EXPECT_EQ(t.triage_verdict, analysis::TriageVerdict::kProvablyBenign);
              EXPECT_FALSE(t.triage_stage.empty());
              EXPECT_FALSE(t.triage_reason.empty());
              EXPECT_EQ(t.verdict, RaceVerdict::kBenign);
            }
          }
        }
      }
    }
  }
  // The point of the pre-filter: strictly fewer dynamic flips on the corpus.
  EXPECT_GT(total_skipped, 0);
}

}  // namespace
}  // namespace aitia
