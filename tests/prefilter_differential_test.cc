// Corpus-wide differential test for the static triage pre-filter
// (src/analysis/triage): diagnosing every bundled scenario with the
// pre-filter {off, on} × workers {1, 4} must produce bit-identical semantics
// — per-race verdicts and flip bits, disappearance sets, the rendered causal
// chain, root-cause index sets, and the diagnosed/degraded flags. The
// pre-filter may only change *how much work* the dynamic stage does
// (schedules_executed), never *what it concludes*.
//
// This is the enforcement arm of the TriageStage conservatism contract
// (DESIGN.md §13): a stage returns kProvablyBenign only with an exact
// prediction of the dynamic flip outcome, so turning the pre-filter on is
// observationally pure speedup.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/gen/generator.h"

namespace aitia {
namespace {

// Everything semantically observable about one diagnosis, rendered to a
// comparable string (timing and metrics excluded on purpose).
std::string Semantics(const BugScenario& s, const AitiaReport& r) {
  std::string out;
  out += "diagnosed=" + std::to_string(r.diagnosed);
  out += " degraded=" + std::to_string(r.degraded);
  out += "\nchain:\n" + r.causality.chain.Render(*s.image);
  out += "roots:";
  for (size_t i : r.causality.root_cause_indices) {
    out += " " + std::to_string(i);
  }
  out += "\n";
  for (const TestedRace& t : r.causality.tested) {
    out += RaceLabel(*s.image, t.race);
    out += " verdict=" + std::string(RaceVerdictName(t.verdict));
    out += " phantom=" + std::to_string(t.phantom);
    out += " cs=" + std::to_string(t.race.cs_pair);
    out += " took_effect=" + std::to_string(t.flip_took_effect);
    out += " still_failed=" + std::to_string(t.flip_still_failed);
    out += " disappeared=";
    for (size_t d : t.disappeared) {
      out += std::to_string(d) + ",";
    }
    out += " nested=";
    for (size_t n : t.nested) {
      out += std::to_string(n) + ",";
    }
    out += "\n";
  }
  return out;
}

TEST(PrefilterDifferentialTest, CorpusSemanticsIdenticalOnOffAcrossWorkers) {
  int64_t total_skipped = 0;
  for (const ScenarioEntry& entry : AllScenarios()) {
    BugScenario scenario = entry.make();
    AitiaOptions off;
    off.set_prefilter(false);
    AitiaReport baseline = DiagnoseScenario(scenario, off);
    EXPECT_EQ(baseline.causality.flips_skipped, 0) << entry.id;
    const std::string want = Semantics(scenario, baseline);

    for (size_t jobs : {size_t{1}, size_t{4}}) {
      for (bool prefilter : {false, true}) {
        if (!prefilter && jobs == 1) {
          continue;  // that is the baseline itself
        }
        AitiaOptions options;
        options.set_jobs(jobs).set_prefilter(prefilter);
        AitiaReport report = DiagnoseScenario(scenario, options);
        EXPECT_EQ(Semantics(scenario, report), want)
            << entry.id << " jobs=" << jobs << " prefilter=" << prefilter;
        const CausalityResult& ca = report.causality;
        EXPECT_EQ(ca.schedules_executed + ca.flips_skipped,
                  static_cast<int64_t>(ca.tested.size()))
            << entry.id << " jobs=" << jobs << " prefilter=" << prefilter;
        if (!prefilter) {
          EXPECT_EQ(ca.flips_skipped, 0) << entry.id;
        } else if (jobs == 1) {
          total_skipped += ca.flips_skipped;
          // Skipped flips must carry their static proof in the report.
          for (const TestedRace& t : ca.tested) {
            if (t.flip_skipped) {
              EXPECT_EQ(t.triage_verdict, analysis::TriageVerdict::kProvablyBenign);
              EXPECT_FALSE(t.triage_stage.empty());
              EXPECT_FALSE(t.triage_reason.empty());
              EXPECT_EQ(t.verdict, RaceVerdict::kBenign);
            }
          }
        }
      }
    }
  }
  // The point of the pre-filter: strictly fewer dynamic flips on the corpus.
  EXPECT_GT(total_skipped, 0);
}

// The same purity contract over a fixed-seed generated mini-corpus: 50
// scenarios the pre-filter's authors never saw, heavy on salted benign races
// (salt-friendly knobs come from the plan's own sampling). Search budgets are
// capped like the sweep's — the planted bugs need <= 2 preemptions, and the
// caps count schedules, not wall-clock, so the comparison stays deterministic.
TEST(PrefilterDifferentialTest, GeneratedMiniCorpusSemanticsIdenticalOnOff) {
  // Buggy templates only: the benign template never reaches CA, so it cannot
  // exercise the pre-filter, and its exhaustive no-failure search dominates
  // runtime.
  std::vector<gen::GenTemplate> buggy;
  for (gen::GenTemplate tmpl : gen::AllGenTemplates()) {
    if (tmpl != gen::GenTemplate::kBenign) buggy.push_back(tmpl);
  }
  int64_t total_skipped = 0;
  for (const gen::GenOptions& plan : gen::CorpusPlan(50, 9, buggy)) {
    const gen::GeneratedScenario g = gen::GenerateScenario(plan);
    AitiaOptions off;
    off.lifs.max_interleavings = 2;
    off.lifs.max_schedules = 2500;
    off.max_slices = 8;
    off.set_prefilter(false);
    AitiaOptions on = off;
    on.set_prefilter(true);

    AitiaReport baseline = DiagnoseScenario(g.scenario, off);
    EXPECT_EQ(baseline.causality.flips_skipped, 0) << g.scenario.id;
    AitiaReport filtered = DiagnoseScenario(g.scenario, on);
    EXPECT_EQ(Semantics(g.scenario, filtered), Semantics(g.scenario, baseline))
        << g.scenario.id;
    EXPECT_EQ(filtered.causality.schedules_executed + filtered.causality.flips_skipped,
              static_cast<int64_t>(filtered.causality.tested.size()))
        << g.scenario.id;
    total_skipped += filtered.causality.flips_skipped;
  }
  EXPECT_GT(total_skipped, 0);
}

}  // namespace
}  // namespace aitia
