// Unit tests for the simulated memory + KASAN shadow (src/sim/memory).

#include <gtest/gtest.h>

#include "src/sim/memory.h"

namespace aitia {
namespace {

KernelImage ImageWithGlobals() {
  KernelImage image;
  image.AddGlobal("a", 11);
  image.AddGlobal("b", 22);
  return image;
}

TEST(MemoryTest, GlobalsInitializedAndAddressable) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  EXPECT_EQ(mem.Load(image.GlobalAddr("a")).value, 11);
  EXPECT_EQ(mem.Load(image.GlobalAddr("b")).value, 22);
  EXPECT_FALSE(mem.Load(image.GlobalAddr("a")).fault.has_value());
}

TEST(MemoryTest, StoreThenLoadRoundTrips) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr a = image.GlobalAddr("a");
  EXPECT_FALSE(mem.Store(a, 77).fault.has_value());
  EXPECT_EQ(mem.Load(a).value, 77);
}

TEST(MemoryTest, NullPageFaults) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  EXPECT_EQ(mem.Load(0).fault, FailureType::kNullDeref);
  EXPECT_EQ(mem.Load(kNullPageEnd - 1).fault, FailureType::kNullDeref);
  EXPECT_EQ(mem.Store(5, 1).fault, FailureType::kNullDeref);
}

TEST(MemoryTest, UnmappedAddressIsGeneralProtection) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  EXPECT_EQ(mem.Load(kHeapBase + 12345).fault, FailureType::kGeneralProtection);
  EXPECT_EQ(mem.Load(kGlobalEnd + 1).fault, FailureType::kGeneralProtection);
}

TEST(MemoryTest, FreshAllocationReadsZero) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr base = mem.Alloc(4, false, {});
  for (Addr i = 0; i < 4; ++i) {
    AccessOutcome out = mem.Load(base + i);
    EXPECT_FALSE(out.fault.has_value());
    EXPECT_EQ(out.value, 0);
  }
}

TEST(MemoryTest, RedzoneAccessIsOutOfBounds) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr base = mem.Alloc(2, false, {});
  EXPECT_EQ(mem.Load(base + 2).fault, FailureType::kOutOfBounds);
  EXPECT_EQ(mem.Load(base - 1).fault, FailureType::kOutOfBounds);
  EXPECT_EQ(mem.Store(base + 3, 1).fault, FailureType::kOutOfBounds);
}

TEST(MemoryTest, InterObjectGapIsUnmapped) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr base = mem.Alloc(2, false, {});
  Addr next = mem.Alloc(2, false, {});
  ASSERT_GT(next, base + 2 + kRedzoneCells);
  // Past the redzone but before the next object: wild pointer -> GPF.
  EXPECT_EQ(mem.Load(base + 2 + kRedzoneCells).fault, FailureType::kGeneralProtection);
}

TEST(MemoryTest, UseAfterFreeDetectedOnReadAndUpgradedOnWrite) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr base = mem.Alloc(3, false, {});
  ASSERT_FALSE(mem.Free(base, {}).has_value());
  EXPECT_EQ(mem.Load(base + 1).fault, FailureType::kUseAfterFreeRead);
  EXPECT_EQ(mem.Store(base + 1, 9).fault, FailureType::kUseAfterFreeWrite);
}

TEST(MemoryTest, QuarantineNeverReusesAddresses) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr first = mem.Alloc(2, false, {});
  ASSERT_FALSE(mem.Free(first, {}).has_value());
  Addr second = mem.Alloc(2, false, {});
  EXPECT_NE(first, second);
  EXPECT_EQ(mem.Load(first).fault, FailureType::kUseAfterFreeRead);
}

TEST(MemoryTest, DoubleFreeAndBadFree) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr base = mem.Alloc(1, false, {});
  EXPECT_FALSE(mem.Free(base, {}).has_value());
  EXPECT_EQ(mem.Free(base, {}), FailureType::kDoubleFree);
  EXPECT_EQ(mem.Free(base + 12345, {}), FailureType::kBadFree);
}

TEST(MemoryTest, FreeNullIsNoOp) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  EXPECT_FALSE(mem.Free(0, {}).has_value());
}

TEST(MemoryTest, FindObjectByInteriorAddress) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr base = mem.Alloc(4, false, {});
  const HeapObject* obj = mem.FindObject(base + 3);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->base, base);
  EXPECT_EQ(mem.FindObject(base + 4), nullptr);
}

TEST(MemoryTest, LeakedObjectsRespectReachabilityThroughGlobals) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr base = mem.Alloc(1, /*leak_checked=*/true, {});
  // Unreachable: leaked.
  EXPECT_EQ(mem.LeakedObjects().size(), 1u);
  // Published in a global: reachable.
  mem.Poke(image.GlobalAddr("a"), static_cast<Word>(base));
  EXPECT_TRUE(mem.LeakedObjects().empty());
  // Unpublished again: leaked again.
  mem.Poke(image.GlobalAddr("a"), 0);
  EXPECT_EQ(mem.LeakedObjects().size(), 1u);
}

TEST(MemoryTest, LeakReachabilityThroughLists) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr base = mem.Alloc(1, /*leak_checked=*/true, {});
  mem.ListAt(image.GlobalAddr("b")).push_back(static_cast<Word>(base));
  EXPECT_TRUE(mem.LeakedObjects().empty());
}

TEST(MemoryTest, PointerInsideFreedObjectIsNotARoot) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  Addr holder = mem.Alloc(1, false, {});
  Addr target = mem.Alloc(1, /*leak_checked=*/true, {});
  mem.Poke(holder, static_cast<Word>(target));
  EXPECT_TRUE(mem.LeakedObjects().empty());
  ASSERT_FALSE(mem.Free(holder, {}).has_value());
  EXPECT_EQ(mem.LeakedObjects().size(), 1u);
}

class MemoryAllocSweep : public ::testing::TestWithParam<Word> {};

TEST_P(MemoryAllocSweep, BoundaryCellsClassifyExactly) {
  KernelImage image = ImageWithGlobals();
  Memory mem(image);
  const Word cells = GetParam();
  Addr base = mem.Alloc(cells, false, {});
  EXPECT_FALSE(mem.Load(base).fault.has_value());
  EXPECT_FALSE(mem.Load(base + static_cast<Addr>(cells) - 1).fault.has_value());
  EXPECT_EQ(mem.Load(base + static_cast<Addr>(cells)).fault, FailureType::kOutOfBounds);
  EXPECT_EQ(mem.Load(base - 1).fault, FailureType::kOutOfBounds);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemoryAllocSweep, ::testing::Values(1, 2, 3, 8, 64, 200));

}  // namespace
}  // namespace aitia
