// ISA-level properties (src/sim/instr) and a randomized interpreter smoke
// test: arbitrary straight-line programs under arbitrary schedules must
// never wedge or corrupt the simulator — only report modeled failures.

#include <gtest/gtest.h>

#include "src/sim/builder.h"
#include "src/sim/hb.h"
#include "src/sim/policy.h"
#include "src/util/rng.h"

namespace aitia {
namespace {

const Op kAllOps[] = {
    Op::kNop,     Op::kResched,  Op::kTlbFlush, Op::kMovImm,       Op::kMov,
    Op::kAddImm,  Op::kAdd,      Op::kSub,      Op::kLea,          Op::kLoad,
    Op::kStore,   Op::kStoreImm, Op::kBeqz,     Op::kBnez,         Op::kBeq,
    Op::kBne,     Op::kJmp,      Op::kCall,     Op::kRet,          Op::kExit,
    Op::kAlloc,   Op::kFree,     Op::kLock,     Op::kUnlock,       Op::kAssert,
    Op::kQueueWork, Op::kCallRcu, Op::kListAdd, Op::kListDel,      Op::kListContains,
    Op::kListPop, Op::kListLen,  Op::kRefGet,   Op::kRefPut,
};

TEST(InstrTest, EveryOpHasAName) {
  for (Op op : kAllOps) {
    EXPECT_STRNE(OpName(op), "?");
  }
}

TEST(InstrTest, WritesAreASubsetOfAccesses) {
  for (Op op : kAllOps) {
    if (IsWriteAccess(op)) {
      EXPECT_TRUE(IsMemoryAccess(op)) << OpName(op);
    }
  }
}

TEST(InstrTest, ExpectedAccessClassification) {
  EXPECT_TRUE(IsMemoryAccess(Op::kLoad));
  EXPECT_FALSE(IsWriteAccess(Op::kLoad));
  EXPECT_TRUE(IsWriteAccess(Op::kStore));
  EXPECT_TRUE(IsWriteAccess(Op::kFree));
  EXPECT_TRUE(IsWriteAccess(Op::kListAdd));
  EXPECT_FALSE(IsWriteAccess(Op::kListContains));
  EXPECT_FALSE(IsMemoryAccess(Op::kLea));
  EXPECT_FALSE(IsMemoryAccess(Op::kLock));
  EXPECT_FALSE(IsMemoryAccess(Op::kTlbFlush));
}

// Generates a random straight-line program over a few shared globals; every
// generated program is valid by construction (registers always initialized,
// addresses always taken from globals or fresh allocations).
Program RandomProgram(Rng& rng, const std::vector<Addr>& globals, int length,
                      const std::string& name) {
  ProgramBuilder b(name);
  // R1 always holds a valid global address; R2 a valid heap base.
  b.Lea(R1, globals[rng.PickIndex(globals.size())]);
  b.Alloc(R2, 2);
  for (int i = 0; i < length; ++i) {
    switch (rng.NextBelow(10)) {
      case 0:
        b.Lea(R1, globals[rng.PickIndex(globals.size())]);
        break;
      case 1:
        b.Load(R3, R1);
        break;
      case 2:
        b.StoreImm(R1, static_cast<Word>(rng.NextBelow(100)));
        break;
      case 3:
        b.Load(R4, R2, static_cast<Word>(rng.NextBelow(2)));
        break;
      case 4:
        b.StoreImm(R2, 7, static_cast<Word>(rng.NextBelow(2)));
        break;
      case 5:
        b.AddImm(R5, R3, 1);
        break;
      case 6:
        b.ListAdd(R1, R5);
        break;
      case 7:
        b.ListPop(R6, R1);
        break;
      case 8:
        b.Nop();
        break;
      case 9:
        b.MovImm(R7, static_cast<Word>(rng.NextBelow(50)));
        break;
    }
  }
  b.Exit();
  return b.Build();
}

TEST(InterpreterFuzzTest, RandomProgramsUnderRandomSchedulesAlwaysTerminate) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    KernelImage image;
    std::vector<Addr> globals;
    for (int g = 0; g < 4; ++g) {
      globals.push_back(image.AddGlobal("g" + std::to_string(g), 0));
    }
    std::vector<ThreadSpec> threads;
    for (int t = 0; t < 3; ++t) {
      image.AddProgram(RandomProgram(rng, globals, 12, "p" + std::to_string(t)));
      threads.push_back({"t" + std::to_string(t), t, 0, ThreadKind::kSyscall});
    }
    KernelSim kernel(&image, threads);
    RandomPolicy policy(seed * 7 + 1, 1, 2);
    RunResult r = RunToCompletion(kernel, policy, {.max_steps = 20000});
    // Straight-line programs always finish; the only legal outcome is a
    // clean exit (no modeled failure is reachable by construction).
    EXPECT_TRUE(r.all_exited) << "seed " << seed;
    EXPECT_FALSE(r.failed()) << "seed " << seed << ": " << r.failure->ToString();
    // The trace must be well-formed: strictly increasing seq, valid tids.
    for (size_t i = 1; i < r.trace.size(); ++i) {
      EXPECT_EQ(r.trace[i].seq, r.trace[i - 1].seq + 1);
    }
    // And race extraction must not choke on arbitrary traces.
    RaceAnalysis races = ExtractRaces(r);
    EXPECT_GE(races.conflicting_pairs_total,
              static_cast<int64_t>(races.races.size()));
  }
}

TEST(InterpreterFuzzTest, RandomScheduleOutcomesAreSchedulIndependentForStores) {
  // Commutativity sanity: the multiset of list elements pushed by the three
  // threads is schedule-independent even though their order is not.
  Rng rng(99);
  KernelImage image;
  Addr head = image.AddGlobal("head", 0);
  for (int t = 0; t < 3; ++t) {
    ProgramBuilder b("p" + std::to_string(t));
    b.Lea(R1, head).MovImm(R2, t + 1).ListAdd(R1, R2).ListAdd(R1, R2).Exit();
    image.AddProgram(b.Build());
  }
  std::multiset<Word> expected = {1, 1, 2, 2, 3, 3};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    KernelSim kernel(&image,
                     {{"a", 0, 0, ThreadKind::kSyscall},
                      {"b", 1, 0, ThreadKind::kSyscall},
                      {"c", 2, 0, ThreadKind::kSyscall}});
    RandomPolicy policy(seed, 1, 2);
    RunResult r = RunToCompletion(kernel, policy);
    ASSERT_FALSE(r.failed());
    auto& list = kernel.memory().ListAt(head);
    std::multiset<Word> got(list.begin(), list.end());
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace aitia
