// Tests for TLB-shootdown IPIs and trampoline responsiveness (§4.4).
//
// The paper's requirement: a thread suspended on the hypervisor trampoline
// must stay responsive to in-kernel communications such as TLB-shootdown
// IPIs — otherwise enforcing a schedule against code that flushes the TLB
// would wedge the machine.

#include <gtest/gtest.h>

#include "src/hv/enforcer.h"
#include "src/sim/builder.h"
#include "src/sim/policy.h"

namespace aitia {
namespace {

// prog 0: "mm_syscall" — writes, flushes the TLB, writes again.
// prog 1: "peer" — a few plain instructions.
KernelImage MakeImage() {
  KernelImage image;
  Addr a = image.AddGlobal("a", 0);
  Addr b = image.AddGlobal("b", 0);
  {
    ProgramBuilder p("mm_syscall");
    p.Lea(R1, a)
        .StoreImm(R1, 1)
        .TlbFlush()
        .Note("T: flush_tlb_mm_range()")
        .StoreImm(R1, 2)
        .Exit();
    image.AddProgram(p.Build());
  }
  {
    ProgramBuilder p("peer");
    p.Lea(R1, b).StoreImm(R1, 1).Nop().Nop().StoreImm(R1, 2).Exit();
    image.AddProgram(p.Build());
  }
  return image;
}

TEST(TlbFlushTest, SingleThreadCompletesImmediately) {
  KernelImage image = MakeImage();
  KernelSim kernel(&image, {{"t", 0, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  EXPECT_TRUE(r.all_exited);
}

TEST(TlbFlushTest, BroadcasterWaitsForRunningPeerAck) {
  KernelImage image = MakeImage();
  KernelSim kernel(&image, {{"mm", 0, 0, ThreadKind::kSyscall},
                            {"peer", 1, 0, ThreadKind::kSyscall}});
  // Drive manually: run mm up to the flush.
  ASSERT_TRUE(kernel.Step(0));  // lea
  ASSERT_TRUE(kernel.Step(0));  // store 1
  // The flush cannot retire: the peer is runnable and has not acked.
  EXPECT_FALSE(kernel.Step(0));
  EXPECT_EQ(kernel.thread(0).state, ThreadState::kBlocked);
  EXPECT_EQ(kernel.thread(0).blocked_on, kIpiWaitAddr);
  // One retired peer instruction acknowledges the IPI.
  ASSERT_TRUE(kernel.Step(1));
  EXPECT_TRUE(kernel.thread(0).runnable());
  EXPECT_TRUE(kernel.Step(0));  // flush retires now
  EXPECT_EQ(kernel.trace().back().op, Op::kTlbFlush);
}

TEST(TlbFlushTest, ParkedPeerAcksFromTheTrampoline) {
  KernelImage image = MakeImage();
  KernelSim kernel(&image, {{"mm", 0, 0, ThreadKind::kSyscall},
                            {"peer", 1, 0, ThreadKind::kSyscall}});
  kernel.Park(1);
  ASSERT_TRUE(kernel.Step(0));  // lea
  ASSERT_TRUE(kernel.Step(0));  // store 1
  // Parked peer is auto-acked: the flush retires directly.
  EXPECT_TRUE(kernel.Step(0));
  EXPECT_EQ(kernel.trace().back().op, Op::kTlbFlush);
}

TEST(TlbFlushTest, PeerParkedAfterBroadcastAcks) {
  KernelImage image = MakeImage();
  KernelSim kernel(&image, {{"mm", 0, 0, ThreadKind::kSyscall},
                            {"peer", 1, 0, ThreadKind::kSyscall}});
  ASSERT_TRUE(kernel.Step(0));
  ASSERT_TRUE(kernel.Step(0));
  EXPECT_FALSE(kernel.Step(0));  // waiting on peer
  kernel.Park(1);                // hypervisor parks the peer -> trampoline ack
  EXPECT_TRUE(kernel.thread(0).runnable());
  EXPECT_TRUE(kernel.Step(0));
  EXPECT_EQ(kernel.trace().back().op, Op::kTlbFlush);
}

TEST(TlbFlushTest, RunsToCompletionUnderEveryPolicyOrder) {
  KernelImage image = MakeImage();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    KernelSim kernel(&image, {{"mm", 0, 0, ThreadKind::kSyscall},
                              {"peer", 1, 0, ThreadKind::kSyscall}});
    RandomPolicy policy(seed);
    RunResult r = RunToCompletion(kernel, policy);
    EXPECT_FALSE(r.failed()) << "seed " << seed << ": " << r.failure->ToString();
    EXPECT_TRUE(r.all_exited) << "seed " << seed;
  }
}

TEST(TlbFlushTest, EnforcedScheduleSurvivesFlushAgainstParkedThread) {
  // The end-to-end §4.4 property: a preemption schedule that parks the peer
  // while the other side flushes the TLB must still finish (the parked
  // thread acks from the trampoline instead of wedging the schedule).
  KernelImage image = MakeImage();
  std::vector<ThreadSpec> threads = {{"mm", 0, 0, ThreadKind::kSyscall},
                                     {"peer", 1, 0, ThreadKind::kSyscall}};
  Enforcer enforcer(&image);
  PreemptionSchedule schedule;
  schedule.base_order = {1, 0};
  // Park the peer right after its first store; mm then runs and flushes.
  schedule.points = {{DynInstr{1, {1, 1}, 0}, false, kNoThread}};
  EnforceResult er = enforcer.RunPreemption(threads, schedule);
  EXPECT_FALSE(er.run.failure.has_value());
  EXPECT_TRUE(er.run.all_exited);
  bool flushed = false;
  for (const ExecEvent& e : er.run.trace) {
    flushed = flushed || e.op == Op::kTlbFlush;
  }
  EXPECT_TRUE(flushed);
}

TEST(TlbFlushTest, LockSpinnerAcks) {
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  {
    ProgramBuilder p("holder_flush");
    p.Lea(R1, lock).Lock(R1).TlbFlush().Unlock(R1).Exit();
    image.AddProgram(p.Build());
  }
  {
    ProgramBuilder p("acquirer");
    p.Lea(R1, lock).Lock(R1).Unlock(R1).Exit();
    image.AddProgram(p.Build());
  }
  KernelSim kernel(&image, {{"holder", 0, 0, ThreadKind::kSyscall},
                            {"acq", 1, 0, ThreadKind::kSyscall}});
  // Holder takes the lock; acquirer spins; holder's flush must not deadlock
  // against the spinning acquirer.
  ASSERT_TRUE(kernel.Step(0));   // lea
  ASSERT_TRUE(kernel.Step(0));   // lock
  ASSERT_TRUE(kernel.Step(1));   // lea
  EXPECT_FALSE(kernel.Step(1));  // lock -> spins (blocked)
  EXPECT_TRUE(kernel.Step(0));   // tlb flush retires: spinner auto-acked
  EXPECT_EQ(kernel.trace().back().op, Op::kTlbFlush);
}

}  // namespace
}  // namespace aitia
