// Unit tests for the kernel simulator core (src/sim/kernel).

#include <gtest/gtest.h>

#include "src/sim/builder.h"
#include "src/sim/kernel.h"
#include "src/sim/policy.h"

namespace aitia {
namespace {

// Runs a single-thread program to completion and returns the result.
RunResult RunSingle(KernelImage& image, const char* prog_name) {
  std::vector<ThreadSpec> threads = {
      {"t", image.ProgramByName(prog_name), 0, ThreadKind::kSyscall}};
  KernelSim kernel(&image, threads);
  SeqPolicy policy({0});
  return RunToCompletion(kernel, policy);
}

TEST(KernelTest, ArithmeticAndBranches) {
  KernelImage image;
  Addr out = image.AddGlobal("out", 0);
  ProgramBuilder b("p");
  b.MovImm(R1, 5)
      .AddImm(R2, R1, 3)   // 8
      .Add(R3, R1, R2)     // 13
      .Sub(R4, R3, R1)     // 8
      .Beq(R4, R2, "ok")
      .Lea(R5, out)
      .StoreImm(R5, -1)
      .Exit()
      .Label("ok")
      .Lea(R5, out)
      .Store(R5, R4)
      .Exit();
  image.AddProgram(b.Build());
  KernelSim kernel(&image, {{"t", 0, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(kernel.memory().Peek(out), 8);
}

TEST(KernelTest, CallAndRetNest) {
  KernelImage image;
  Addr out = image.AddGlobal("out", 0);
  ProgramBuilder b("p");
  b.Call("f").Lea(R2, out).Store(R2, R1).Exit()
      .Label("f").Call("g").AddImm(R1, R1, 1).Ret()
      .Label("g").MovImm(R1, 10).Ret();
  image.AddProgram(b.Build());
  KernelSim kernel(&image, {{"t", 0, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  // g sets 10, f adds 1 -> 11 stored.
  EXPECT_EQ(kernel.memory().Peek(out), 11);
  EXPECT_EQ(r.trace.back().op, Op::kExit);
}

TEST(KernelTest, RetAtDepthZeroExitsThread) {
  KernelImage image;
  ProgramBuilder b("p");
  b.MovImm(R1, 1).Ret();
  image.AddProgram(b.Build());
  RunResult r = RunSingle(image, "p");
  EXPECT_FALSE(r.failed());
  EXPECT_TRUE(r.all_exited);
}

TEST(KernelTest, ThreadArgArrivesInR0) {
  KernelImage image;
  Addr out = image.AddGlobal("out", 0);
  ProgramBuilder b("p");
  b.Lea(R1, out).Store(R1, R0).Exit();
  image.AddProgram(b.Build());
  KernelSim kernel(&image, {{"t", 0, 1234, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunToCompletion(kernel, policy);
  EXPECT_EQ(kernel.memory().Peek(out), 1234);
}

TEST(KernelTest, AssertPassAndFail) {
  KernelImage image;
  ProgramBuilder ok("ok");
  ok.MovImm(R1, 1).BugOn(R1).Exit();
  image.AddProgram(ok.Build());
  ProgramBuilder bad("bad");
  bad.MovImm(R1, 0).BugOn(R1).Exit();
  image.AddProgram(bad.Build());
  ProgramBuilder warn("warn");
  warn.MovImm(R1, 0).WarnOn(R1).Exit();
  image.AddProgram(warn.Build());

  EXPECT_FALSE(RunSingle(image, "ok").failed());
  RunResult r_bad = RunSingle(image, "bad");
  ASSERT_TRUE(r_bad.failed());
  EXPECT_EQ(r_bad.failure->type, FailureType::kAssertViolation);
  RunResult r_warn = RunSingle(image, "warn");
  ASSERT_TRUE(r_warn.failed());
  EXPECT_EQ(r_warn.failure->type, FailureType::kWarning);
}

TEST(KernelTest, RefcountSemantics) {
  KernelImage image;
  Addr ref = image.AddGlobal("ref", 1);
  Addr hit = image.AddGlobal("hit_zero", 99);
  ProgramBuilder b("p");
  b.Lea(R1, ref)
      .RefGet(R1)   // 1 -> 2
      .RefPut(R2, R1)  // 2 -> 1, rd = 0
      .RefPut(R3, R1)  // 1 -> 0, rd = 1
      .Lea(R4, hit)
      .Store(R4, R3)
      .Exit();
  image.AddProgram(b.Build());
  KernelSim kernel(&image, {{"t", 0, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(kernel.memory().Peek(ref), 0);
  EXPECT_EQ(kernel.memory().Peek(hit), 1);
}

TEST(KernelTest, RefcountIncFromZeroWarns) {
  KernelImage image;
  Addr ref = image.AddGlobal("ref", 0);
  ProgramBuilder b("p");
  b.Lea(R1, ref).RefGet(R1).Exit();
  image.AddProgram(b.Build());
  RunResult r = RunSingle(image, "p");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(r.failure->type, FailureType::kRefcountWarning);
}

TEST(KernelTest, ListOperations) {
  KernelImage image;
  Addr head = image.AddGlobal("head", 0);
  Addr out = image.AddGlobal("out", 0);
  ProgramBuilder b("p");
  b.Lea(R1, head)
      .MovImm(R2, 7)
      .ListAdd(R1, R2)
      .MovImm(R3, 8)
      .ListAdd(R1, R3)
      .ListContains(R4, R1, R2)  // 1
      .ListLen(R5, R1)           // 2
      .ListDel(R6, R1, R2)       // removed -> 1
      .ListPop(R7, R1)           // 8
      .Add(R8, R4, R5)
      .Add(R8, R8, R6)
      .Add(R8, R8, R7)           // 1+2+1+8 = 12
      .Lea(R9, out)
      .Store(R9, R8)
      .Exit();
  image.AddProgram(b.Build());
  KernelSim kernel(&image, {{"t", 0, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(kernel.memory().Peek(out), 12);
  EXPECT_EQ(kernel.memory().Peek(head), 0);  // head mirrors length (now 0)
}

TEST(KernelTest, LocksBlockAndWake) {
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  Addr order = image.AddGlobal("order", 0);
  // Each thread: lock; order = order * 10 + id; unlock.
  for (const char* name : {"p0", "p1"}) {
    ProgramBuilder b(name);
    b.Lea(R1, lock)
        .Lock(R1)
        .Lea(R2, order)
        .Load(R3, R2)
        .MovImm(R4, 10)
        .Add(R5, R3, R3)  // 2x
        .Add(R5, R5, R5)  // 4x
        .Add(R5, R5, R3)  // 5x
        .Add(R5, R5, R5)  // 10x
        .Add(R5, R5, R0)  // + id
        .Store(R2, R5)
        .Unlock(R1)
        .Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"a", 0, 1, ThreadKind::kSyscall},
                            {"b", 1, 2, ThreadKind::kSyscall}});
  // Round-robin-ish: alternate picks so the second thread tries the lock
  // while the first holds it.
  RandomPolicy policy(7, 1, 2);
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  Word order_val = kernel.memory().Peek(order);
  EXPECT_TRUE(order_val == 12 || order_val == 21) << order_val;
}

TEST(KernelTest, SelfDeadlockDetected) {
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  ProgramBuilder b("p");
  b.Lea(R1, lock).Lock(R1).Lock(R1).Unlock(R1).Exit();
  image.AddProgram(b.Build());
  RunResult r = RunSingle(image, "p");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(r.failure->type, FailureType::kDeadlock);
}

TEST(KernelTest, AbbaDeadlockDetected) {
  KernelImage image;
  Addr l1 = image.AddGlobal("l1", 0);
  Addr l2 = image.AddGlobal("l2", 0);
  {
    ProgramBuilder b("ab");
    b.Lea(R1, l1).Lock(R1).Lea(R2, l2).Lock(R2).Unlock(R2).Unlock(R1).Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("ba");
    b.Lea(R1, l2).Lock(R1).Lea(R2, l1).Lock(R2).Unlock(R2).Unlock(R1).Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"a", 0, 0, ThreadKind::kSyscall},
                            {"b", 1, 0, ThreadKind::kSyscall}});
  // Strict alternation drives both into the cross-acquire.
  RandomPolicy policy(3, 1, 1);
  RunResult r = RunToCompletion(kernel, policy);
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(r.failure->type, FailureType::kDeadlock);
}

TEST(KernelTest, QueueWorkSpawnsRunnableKworker) {
  KernelImage image;
  Addr out = image.AddGlobal("out", 0);
  ProgramBuilder w("worker");
  w.Lea(R1, out).Store(R1, R0).Exit();
  ProgramId worker = image.AddProgram(w.Build());
  ProgramBuilder b("p");
  b.MovImm(R1, 55).QueueWork(worker, R1).Exit();
  image.AddProgram(b.Build());

  KernelSim kernel(&image, {{"t", image.ProgramByName("p"), 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  ASSERT_EQ(r.threads.size(), 2u);
  EXPECT_EQ(r.threads[1].kind, ThreadKind::kKworker);
  EXPECT_EQ(r.threads[1].parent, 0);
  EXPECT_EQ(kernel.memory().Peek(out), 55);
  ASSERT_EQ(r.spawns.size(), 1u);
  EXPECT_EQ(r.spawns[0].arg, 55);
}

TEST(KernelTest, OccurrenceCountsDisambiguateLoopIterations) {
  KernelImage image;
  Addr g = image.AddGlobal("g", 0);
  ProgramBuilder b("p");
  b.MovImm(R1, 3)
      .Lea(R2, g)
      .Label("top")
      .Load(R3, R2)
      .AddImm(R3, R3, 1)
      .Store(R2, R3)
      .AddImm(R1, R1, -1)
      .Bnez(R1, "top")
      .Exit();
  image.AddProgram(b.Build());
  RunResult r = RunSingle(image, "p");
  int occurrences[3] = {};
  for (const ExecEvent& e : r.trace) {
    if (e.op == Op::kLoad && e.di.occurrence < 3) {
      occurrences[e.di.occurrence]++;
    }
  }
  EXPECT_EQ(occurrences[0], 1);
  EXPECT_EQ(occurrences[1], 1);
  EXPECT_EQ(occurrences[2], 1);
}

TEST(KernelTest, ParkedThreadIsNotRunnableAndNotDeadlocked) {
  KernelImage image;
  ProgramBuilder b("p");
  b.Nop().Exit();
  image.AddProgram(b.Build());
  KernelSim kernel(&image, {{"t", 0, 0, ThreadKind::kSyscall}});
  kernel.Park(0);
  EXPECT_TRUE(kernel.RunnableThreads().empty());
  EXPECT_TRUE(kernel.Done());
  kernel.Unpark(0);
  ASSERT_EQ(kernel.RunnableThreads().size(), 1u);
}

TEST(KernelTest, PeekAccessMatchesExecutedAccess) {
  KernelImage image;
  Addr g = image.AddGlobal("g", 0);
  ProgramBuilder b("p");
  b.Lea(R1, g).Store(R1, R0, 0).Exit();
  image.AddProgram(b.Build());
  KernelSim kernel(&image, {{"t", 0, 0, ThreadKind::kSyscall}});
  EXPECT_FALSE(kernel.PeekAccess(0).has_value());  // lea is not an access
  kernel.Step(0);
  auto peek = kernel.PeekAccess(0);
  ASSERT_TRUE(peek.has_value());
  EXPECT_EQ(peek->addr, g);
  EXPECT_TRUE(peek->is_write);
  kernel.Step(0);
  const ExecEvent& e = kernel.trace().back();
  EXPECT_EQ(e.addr, g);
  EXPECT_TRUE(e.is_write);
}

TEST(KernelTest, SetupPhaseRunsUnrecorded) {
  KernelImage image;
  Addr g = image.AddGlobal("g", 0);
  ProgramBuilder setup("setup");
  setup.Lea(R1, g).StoreImm(R1, 42).Exit();
  image.AddProgram(setup.Build());
  ProgramBuilder main_prog("main");
  main_prog.Lea(R1, g).Load(R2, R1).Exit();
  image.AddProgram(main_prog.Build());

  std::vector<ThreadSpec> setup_specs = {{"s", 0, 0, ThreadKind::kSyscall}};
  std::vector<ThreadSpec> initial = {{"m", 1, 0, ThreadKind::kSyscall}};
  KernelSim kernel(&image, initial, setup_specs);
  EXPECT_EQ(kernel.memory().Peek(g), 42);     // effects visible
  EXPECT_TRUE(kernel.trace().empty());        // no events recorded
  EXPECT_EQ(kernel.first_initial_thread(), 1);
  SeqPolicy policy({1});
  RunResult r = RunToCompletion(kernel, policy);
  EXPECT_FALSE(r.failed());
  // Only the main thread's events appear, and it reads the setup's store.
  for (const ExecEvent& e : r.trace) {
    EXPECT_EQ(e.di.tid, 1);
  }
}

TEST(KernelTest, WatchdogFiresOnInfiniteLoop) {
  KernelImage image;
  ProgramBuilder b("spin");
  b.Label("top").Jmp("top");
  image.AddProgram(b.Build());
  KernelSim kernel(&image, {{"t", 0, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy, {.max_steps = 1000});
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(r.failure->type, FailureType::kWatchdog);
}

}  // namespace
}  // namespace aitia
