// Unit tests for happens-before analysis and race extraction (src/sim/hb).

#include <gtest/gtest.h>

#include "src/sim/builder.h"
#include "src/sim/hb.h"
#include "src/sim/policy.h"

namespace aitia {
namespace {

// Two threads write the same global with no synchronization.
TEST(HbTest, UnsynchronizedConflictIsARace) {
  KernelImage image;
  Addr g = image.AddGlobal("g", 0);
  for (const char* name : {"w0", "w1"}) {
    ProgramBuilder b(name);
    b.Lea(R1, g).StoreImm(R1, 1).Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"a", 0, 0, ThreadKind::kSyscall},
                            {"b", 1, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0, 1});
  RunResult r = RunToCompletion(kernel, policy);
  RaceAnalysis races = ExtractRaces(r);
  ASSERT_EQ(races.races.size(), 1u);
  EXPECT_EQ(races.races[0].first.di.tid, 0);
  EXPECT_EQ(races.races[0].second.di.tid, 1);
  EXPECT_TRUE(races.cs_pairs.empty());
}

TEST(HbTest, ReadReadDoesNotConflict) {
  KernelImage image;
  Addr g = image.AddGlobal("g", 5);
  for (const char* name : {"r0", "r1"}) {
    ProgramBuilder b(name);
    b.Lea(R1, g).Load(R2, R1).Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"a", 0, 0, ThreadKind::kSyscall},
                            {"b", 1, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0, 1});
  RaceAnalysis races = ExtractRaces(RunToCompletion(kernel, policy));
  EXPECT_TRUE(races.races.empty());
  EXPECT_EQ(races.conflicting_pairs_total, 0);
}

TEST(HbTest, CommonLockMakesCriticalSectionPairNotRace) {
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  Addr g = image.AddGlobal("g", 0);
  for (const char* name : {"c0", "c1"}) {
    ProgramBuilder b(name);
    b.Lea(R1, lock).Lock(R1).Lea(R2, g).StoreImm(R2, 1).Unlock(R1).Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"a", 0, 0, ThreadKind::kSyscall},
                            {"b", 1, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0, 1});
  RaceAnalysis races = ExtractRaces(RunToCompletion(kernel, policy));
  EXPECT_TRUE(races.races.empty());
  ASSERT_EQ(races.cs_pairs.size(), 1u);
  EXPECT_TRUE(races.cs_pairs[0].cs_pair);
  EXPECT_EQ(races.cs_pairs[0].lock, lock);
  EXPECT_LT(races.cs_pairs[0].first_cs_begin, races.cs_pairs[0].first_cs_end);
  EXPECT_LT(races.cs_pairs[0].second_cs_begin, races.cs_pairs[0].second_cs_end);
  // Still counted as a conflicting pair for the raw statistics.
  EXPECT_EQ(races.conflicting_pairs_total, 1);
}

TEST(HbTest, OneSidedLockingIsStillARace) {
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  Addr g = image.AddGlobal("g", 0);
  {
    ProgramBuilder b("locked");
    b.Lea(R1, lock).Lock(R1).Lea(R2, g).StoreImm(R2, 1).Unlock(R1).Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("unlocked");
    b.Lea(R2, g).StoreImm(R2, 2).Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"a", 0, 0, ThreadKind::kSyscall},
                            {"b", 1, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0, 1});
  RaceAnalysis races = ExtractRaces(RunToCompletion(kernel, policy));
  EXPECT_EQ(races.races.size(), 1u);
  EXPECT_TRUE(races.cs_pairs.empty());
}

TEST(HbTest, SpawnEdgeOrdersParentPrefixBeforeChild) {
  KernelImage image;
  Addr g = image.AddGlobal("g", 0);
  ProgramBuilder w("worker");
  w.Lea(R1, g).StoreImm(R1, 2).Exit();
  ProgramId worker = image.AddProgram(w.Build());
  ProgramBuilder p("parent");
  p.Lea(R1, g).StoreImm(R1, 1).QueueWork(worker, R0).Exit();
  image.AddProgram(p.Build());

  KernelSim kernel(&image, {{"t", image.ProgramByName("parent"), 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  // Parent's store happens-before the spawned worker's store: no race.
  RaceAnalysis races = ExtractRaces(r);
  EXPECT_TRUE(races.races.empty());
}

TEST(HbTest, AccessAfterSpawnPointRacesWithChild) {
  KernelImage image;
  Addr g = image.AddGlobal("g", 0);
  ProgramBuilder w("worker");
  w.Lea(R1, g).StoreImm(R1, 2).Exit();
  ProgramId worker = image.AddProgram(w.Build());
  ProgramBuilder p("parent");
  p.QueueWork(worker, R0).Lea(R1, g).StoreImm(R1, 1).Exit();
  image.AddProgram(p.Build());

  KernelSim kernel(&image, {{"t", image.ProgramByName("parent"), 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  RunResult r = RunToCompletion(kernel, policy);
  RaceAnalysis races = ExtractRaces(r);
  // Parent store after queue_work is unordered with the worker's store.
  EXPECT_EQ(races.races.size(), 1u);
}

TEST(HbTest, LockHandoffCreatesHappensBefore) {
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  Addr g = image.AddGlobal("g", 0);
  {
    ProgramBuilder b("first");
    b.Lea(R1, lock).Lock(R1).Lea(R2, g).StoreImm(R2, 1).Unlock(R1).Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("second");
    // Store *outside* its own critical section, but after acquiring the same
    // lock: the release->acquire edge orders it after thread 0's store.
    b.Lea(R1, lock).Lock(R1).Unlock(R1).Lea(R2, g).StoreImm(R2, 2).Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"a", 0, 0, ThreadKind::kSyscall},
                            {"b", 1, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0, 1});
  RaceAnalysis races = ExtractRaces(RunToCompletion(kernel, policy));
  EXPECT_TRUE(races.races.empty());
  EXPECT_TRUE(races.cs_pairs.empty());
}

TEST(HbTest, FreeConflictsWithInteriorAccess) {
  KernelImage image;
  Addr slot = image.AddGlobal("slot", 0);
  {
    ProgramBuilder b("user");
    b.Lea(R1, slot).Load(R2, R1).Load(R3, R2, 1).Exit();  // read obj[1]
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("freer");
    b.Lea(R1, slot).Load(R2, R1).Free(R2).Exit();
    image.AddProgram(b.Build());
  }
  ProgramBuilder setup("setup");
  setup.Alloc(R1, 3).Lea(R2, slot).Store(R2, R1).Exit();
  image.AddProgram(setup.Build());

  KernelSim kernel(&image,
                   {{"a", 0, 0, ThreadKind::kSyscall}, {"b", 1, 0, ThreadKind::kSyscall}},
                   {{"s", 2, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0, 1});
  RunResult r = RunToCompletion(kernel, policy);
  ASSERT_FALSE(r.failed());  // user ran before freer
  RaceAnalysis races = ExtractRaces(r);
  // The free (covering the whole object) conflicts with the interior read.
  bool found = false;
  for (const RacePair& race : races.races) {
    if (race.second.op == Op::kFree || race.first.op == Op::kFree) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(HbTest, HbRelationIsTransitiveThroughLocks) {
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  for (const char* name : {"t0", "t1", "t2"}) {
    ProgramBuilder b(name);
    b.Lea(R1, lock).Lock(R1).Nop().Unlock(R1).Exit();
    image.AddProgram(b.Build());
  }
  KernelSim kernel(&image, {{"a", 0, 0, ThreadKind::kSyscall},
                            {"b", 1, 0, ThreadKind::kSyscall},
                            {"c", 2, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0, 1, 2});
  RunResult r = RunToCompletion(kernel, policy);
  HbRelation hb(r);
  // First event of thread 0 happens-before last event of thread 2 via the
  // chained lock hand-offs.
  EXPECT_TRUE(hb.HappensBefore(r.trace.front().seq, r.trace.back().seq));
  // And never the other way.
  EXPECT_FALSE(hb.HappensBefore(r.trace.back().seq, r.trace.front().seq));
}

}  // namespace
}  // namespace aitia
