// Tests for the baseline diagnosers (src/baselines) against scenario ground
// truth — the measurable backbone of Table 1 and §5.3.

#include <gtest/gtest.h>

#include "src/baselines/coop.h"
#include "src/baselines/inflection.h"
#include "src/baselines/muvi.h"
#include "src/baselines/racecount.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"

namespace aitia {
namespace {

AitiaReport Diagnose(const BugScenario& s) {
  AitiaOptions options;
  options.lifs.target_type = s.truth.failure_type;
  return DiagnoseSlice(*s.image, s.slice, s.setup, options);
}

TEST(RaceCountTest, RawStatsDwarfTheChain) {
  for (const char* id : {"CVE-2017-15649", "syz-08", "fig-1"}) {
    BugScenario s = MakeScenario(id);
    AitiaReport report = Diagnose(s);
    ASSERT_TRUE(report.diagnosed) << id;
    RawRaceStats raw = CountRawRaces(report.lifs.failing_run);
    EXPECT_GT(raw.memory_accessing_instructions,
              static_cast<int64_t>(report.causality.chain.race_count()))
        << id;
    // Chains may add phantom races the raw detector cannot see; together
    // they always dominate the chain size.
    EXPECT_GE(raw.data_races + static_cast<int64_t>(report.lifs.phantom_races.size()),
              static_cast<int64_t>(report.causality.chain.race_count()))
        << id;
    EXPECT_GE(raw.conflicting_pairs, raw.data_races) << id;
  }
}

TEST(InflectionTest, FindsADeviatingDecisionOnFig5) {
  BugScenario s = MakeScenario("fig-5");
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed);
  InflectionResult inf =
      FindInflectionPoint(*s.image, s.slice, s.setup, report.lifs.failing_run);
  ASSERT_TRUE(inf.found);
  EXPECT_GT(inf.clean_runs_collected, 0);
  // The inflection point is a single instruction — by construction it cannot
  // name both races of the two-race chain.
  EXPECT_EQ(report.causality.chain.race_count(), 2u);
}

TEST(InflectionTest, DeterministicGivenSeeds) {
  BugScenario s = MakeScenario("fig-1");
  AitiaReport report = Diagnose(s);
  ASSERT_TRUE(report.diagnosed);
  InflectionResult a =
      FindInflectionPoint(*s.image, s.slice, s.setup, report.lifs.failing_run);
  InflectionResult b =
      FindInflectionPoint(*s.image, s.slice, s.setup, report.lifs.failing_run);
  EXPECT_EQ(a.found, b.found);
  if (a.found) {
    EXPECT_EQ(a.inflection, b.inflection);
  }
}

TEST(CoopTest, TopPatternHitsSingleVariableBug) {
  // CVE-2017-2636 is the classic single-pointer atomicity violation; the
  // top-correlated pattern must involve the racing variable.
  BugScenario s = MakeScenario("CVE-2017-2636");
  const auto ranges = RacingAddressRanges(s);
  CoopResult coop = RunCoopLocalization(*s.image, s.slice, s.setup);
  ASSERT_GT(coop.failed_runs, 0);
  ASSERT_GT(coop.clean_runs, 0);
  ASSERT_FALSE(coop.ranked.empty());
  bool hit = false;
  for (size_t i = 0; i < coop.ranked.size() && i < 3; ++i) {
    hit = hit || InRanges(ranges, coop.ranked[i].addr);
  }
  EXPECT_TRUE(hit);
}

TEST(CoopTest, CorrelationsAreOrderedAndBounded) {
  BugScenario s = MakeScenario("CVE-2017-10661");
  CoopResult coop = RunCoopLocalization(*s.image, s.slice, s.setup);
  for (size_t i = 1; i < coop.ranked.size(); ++i) {
    EXPECT_GE(coop.ranked[i - 1].correlation, coop.ranked[i].correlation);
  }
  for (const CoopPattern& p : coop.ranked) {
    EXPECT_GE(p.correlation, -1.0);
    EXPECT_LE(p.correlation, 1.0);
    EXPECT_GE(p.fail_with, 2);  // min support
  }
}

class MuviAssumptionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MuviAssumptionTest, MeasuredCorrelationMatchesGroundTruth) {
  BugScenario s = MakeScenario(GetParam());
  MuviResult muvi = RunMuvi(s.MakeWorkload(), s.truth.racing_globals);
  EXPECT_EQ(muvi.assumption_holds, s.truth.muvi_assumption_holds) << s.id;
}

// Tightly correlated multi-variable bugs (MUVI works) vs loosely correlated
// ones (MUVI's assumption fails) vs single-variable (nothing to correlate).
INSTANTIATE_TEST_SUITE_P(Corpus, MuviAssumptionTest,
                         ::testing::Values("CVE-2017-15649", "syz-03", "syz-06", "syz-08",
                                           "CVE-2019-6974", "syz-01", "syz-04", "syz-09",
                                           "syz-05", "syz-07"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(MuviTest, NoiseLowersCoaccessRatio) {
  BugScenario s = MakeScenario("CVE-2019-6974");
  // With noise (the declared workload), the fd/kvm pair is loose.
  MuviResult with_noise = RunMuvi(s.MakeWorkload(), s.truth.racing_globals);
  EXPECT_FALSE(with_noise.assumption_holds);
  // Without the noise syscalls, the same pair looks tightly correlated —
  // exactly why whole-workload statistics are required (§2.2).
  FuzzWorkload no_noise;
  no_noise.image = s.image.get();
  no_noise.threads = s.slice;
  no_noise.setup = s.setup;
  MuviResult clean = RunMuvi(no_noise, s.truth.racing_globals);
  EXPECT_TRUE(clean.assumption_holds);
}

}  // namespace
}  // namespace aitia
