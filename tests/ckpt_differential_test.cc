// Corpus-wide differential test for prefix-replay checkpointing (src/ckpt).
//
// The contract (DESIGN.md §12): checkpointing is a pure wall-clock
// optimization. For every bundled scenario, the full diagnosis — explored
// schedule counts, the failure-causing schedule, every data race, every flip
// verdict, and the rendered causality chain — must be bit-identical across
//
//   replay cache {off, on} × workers {1, 4}
//
// including the full fuzz → modeling → LIFS → Causality Analysis pipeline.
// Timing and step-accounting fields are the only permitted differences, and
// even those must obey executed_steps + replayed_steps == steps. Finally,
// replay must actually pay for itself: on at least one chain-heavy scenario
// the serial diagnosis must execute >= 2x fewer simulator steps with the
// cache on than off.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/core/chain.h"
#include "src/fuzz/fuzzer.h"
#include "src/gen/generator.h"

namespace aitia {
namespace {

AitiaOptions Config(bool replay, size_t jobs) {
  AitiaOptions options;
  options.set_jobs(jobs);
  options.set_replay_cache(replay);
  return options;
}

std::string ConfigName(bool replay, size_t jobs) {
  std::ostringstream out;
  out << "replay=" << (replay ? "on" : "off") << " jobs=" << jobs;
  return out.str();
}

// Flattens everything the diagnosis *means* — and nothing about how long it
// took. Budgets, seconds, and the executed/replayed split are excluded by
// design: parallel batches overshoot and replay shifts work between the two
// step counters, but every field below must match bit-for-bit.
std::string ReportKey(const AitiaReport& r, const KernelImage& image) {
  std::ostringstream out;
  out << "diagnosed=" << r.diagnosed << " degraded=" << r.degraded
      << " slices_tried=" << r.slices_tried << "\n";

  const LifsResult& l = r.lifs;
  out << "reproduced=" << l.reproduced << " k=" << l.interleaving_count
      << " schedules_executed=" << l.schedules_executed
      << " schedules_pruned=" << l.schedules_pruned << "\n"
      << "schedule=" << l.failing_schedule.ToString() << "\n";
  for (const RacePair& race : l.races.races) {
    out << "race " << RaceLabel(image, race) << "\n";
  }
  for (const RacePair& race : l.phantom_races) {
    out << "phantom " << RaceLabel(image, race) << "\n";
  }

  const CausalityResult& c = r.causality;
  out << "flip_schedules=" << c.schedules_executed << " benign=" << c.benign_count
      << " inconclusive=" << c.inconclusive_count << " ambiguous=" << c.ambiguous
      << " ca_degraded=" << c.degraded << "\n";
  for (const TestedRace& t : c.tested) {
    out << "tested " << RaceLabel(image, t.race) << " phantom=" << t.phantom
        << " verdict=" << RaceVerdictName(t.verdict)
        << " still_failed=" << t.flip_still_failed << " took_effect=" << t.flip_took_effect
        << " disappeared=";
    for (size_t i : t.disappeared) {
      out << i << ",";
    }
    out << " nested=";
    for (size_t i : t.nested) {
      out << i << ",";
    }
    out << "\n";
  }
  out << "roots=";
  for (size_t i : c.root_cause_indices) {
    out << i << ",";
  }
  out << "\nchain:\n" << c.chain.Render(image);
  return out.str();
}

// The one thing budgets must satisfy in every configuration: the total stays
// the cold-run equivalent, split exactly into executed and replayed.
void ExpectStepSplit(const RunBudget& budget, bool replay, const char* stage) {
  EXPECT_EQ(budget.executed_steps + budget.replayed_steps, budget.steps) << stage;
  EXPECT_GE(budget.executed_steps, 0) << stage;
  EXPECT_GE(budget.replayed_steps, 0) << stage;
  if (!replay) {
    EXPECT_EQ(budget.replayed_steps, 0) << stage << " (cache off must replay nothing)";
  }
}

void ExpectReportInvariants(const AitiaReport& report, bool replay) {
  ExpectStepSplit(report.lifs.budget, replay, "lifs");
  ExpectStepSplit(report.causality.budget, replay, "causality");
}

struct ConfigPoint {
  bool replay;
  size_t jobs;
};

constexpr ConfigPoint kVariants[] = {{false, 4}, {true, 1}, {true, 4}};

TEST(CkptDifferentialTest, CorpusBitIdenticalAcrossReplayAndWorkers) {
  double best_ratio = 0;
  std::string best_id;
  for (const ScenarioEntry& entry : AllScenarios()) {
    SCOPED_TRACE(entry.id);
    BugScenario s = MakeScenario(entry.id);

    AitiaReport reference = DiagnoseScenario(s, Config(/*replay=*/false, /*jobs=*/1));
    ExpectReportInvariants(reference, /*replay=*/false);
    const std::string want = ReportKey(reference, *s.image);

    int64_t warm_executed = -1;
    for (const ConfigPoint& v : kVariants) {
      SCOPED_TRACE(ConfigName(v.replay, v.jobs));
      AitiaReport got = DiagnoseScenario(s, Config(v.replay, v.jobs));
      ExpectReportInvariants(got, v.replay);
      EXPECT_EQ(ReportKey(got, *s.image), want);
      if (v.replay && v.jobs == 1) {
        warm_executed = got.lifs.budget.executed_steps + got.causality.budget.executed_steps;
      }
    }

    // Serial cold vs serial warm: how much execution did the cache save?
    const int64_t cold_executed =
        reference.lifs.budget.executed_steps + reference.causality.budget.executed_steps;
    if (warm_executed > 0 && cold_executed > 0) {
      const double ratio =
          static_cast<double>(cold_executed) / static_cast<double>(warm_executed);
      std::printf("[ ckpt ] %-18s executed cold=%lld warm=%lld ratio=%.2fx\n", s.id.c_str(),
                  static_cast<long long>(cold_executed), static_cast<long long>(warm_executed),
                  ratio);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_id = s.id;
      }
    }
  }
  // The acceptance bar: at least one chain-heavy scenario re-executes >= 2x
  // fewer steps with replay on. (Most exceed this; the max keeps the test
  // robust to corpus members whose searches are too short to amortize.)
  std::printf("[ ckpt ] best executed-steps drop: %.2fx (%s)\n", best_ratio, best_id.c_str());
  EXPECT_GE(best_ratio, 2.0) << "replay cache saved too little execution corpus-wide";
}

// The same bit-identity contract over a fixed-seed generated mini-corpus:
// 50 scenarios from the corpus expansion engine (DESIGN.md §14), which the
// checkpoint engine's author never tuned for. Search budgets are capped like
// the sweep's — planted bugs need <= 2 preemptions, and the caps count
// schedules, so identical work is compared in every configuration.
TEST(CkptDifferentialTest, GeneratedMiniCorpusBitIdenticalAcrossReplayAndWorkers) {
  std::vector<gen::GenTemplate> buggy;
  for (gen::GenTemplate tmpl : gen::AllGenTemplates()) {
    if (tmpl != gen::GenTemplate::kBenign) buggy.push_back(tmpl);
  }
  auto capped = [](bool replay, size_t jobs) {
    AitiaOptions options = Config(replay, jobs);
    options.lifs.max_interleavings = 2;
    options.lifs.max_schedules = 2500;
    options.max_slices = 8;
    return options;
  };
  for (const gen::GenOptions& plan : gen::CorpusPlan(50, 9, buggy)) {
    const gen::GeneratedScenario g = gen::GenerateScenario(plan);
    SCOPED_TRACE(g.scenario.id);
    AitiaReport reference = DiagnoseScenario(g.scenario, capped(false, 1));
    ExpectReportInvariants(reference, /*replay=*/false);
    const std::string want = ReportKey(reference, *g.scenario.image);
    for (const ConfigPoint& v : kVariants) {
      SCOPED_TRACE(ConfigName(v.replay, v.jobs));
      AitiaReport got = DiagnoseScenario(g.scenario, capped(v.replay, v.jobs));
      ExpectReportInvariants(got, v.replay);
      EXPECT_EQ(ReportKey(got, *g.scenario.image), want);
    }
  }
}

TEST(CkptDifferentialTest, FuzzPipelineBitIdenticalAcrossReplayAndWorkers) {
  // The full pipeline: the fuzzer finds the failure and emits an execution
  // history; modeling slices it; LIFS + CA diagnose. Same contract as above,
  // now spanning the slicer and the multi-slice reproducing stage.
  for (const char* id : {"fig-1", "fig-5"}) {
    SCOPED_TRACE(id);
    BugScenario s = MakeScenario(id);
    FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
    ASSERT_TRUE(fuzz.found);

    AitiaReport reference = DiagnoseHistory(*s.image, fuzz.history, Config(false, 1));
    ExpectReportInvariants(reference, /*replay=*/false);
    ASSERT_TRUE(reference.diagnosed);
    const std::string want = ReportKey(reference, *s.image);

    for (const ConfigPoint& v : kVariants) {
      SCOPED_TRACE(ConfigName(v.replay, v.jobs));
      AitiaReport got = DiagnoseHistory(*s.image, fuzz.history, Config(v.replay, v.jobs));
      ExpectReportInvariants(got, v.replay);
      EXPECT_EQ(ReportKey(got, *s.image), want);
    }
  }
}

}  // namespace
}  // namespace aitia
