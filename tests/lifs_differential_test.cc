// Property-based differential test: LIFS vs. an exhaustive-enumeration
// oracle over randomly generated scenarios.
//
// For each seed, a tiny scenario (2–3 short threads over 1–2 shared globals
// plus a pointer cell) is generated and *every* interleaving of it is
// enumerated by a DFS oracle that replays thread-choice prefixes on a fresh
// KernelSim. The oracle records, per distinct failure symptom, the minimum
// number of preemptions (switches away from a still-runnable thread) any
// failing interleaving needs. The properties checked:
//
//   1. Whenever the oracle finds an instruction-tied failure, LIFS given
//      that failure as its target reproduces it — with an interleaving
//      count no larger than the oracle's minimum (fewest-preemptions-first
//      really is fewest).
//   2. DPOR pruning on and off reproduce the same set of distinct failure
//      fingerprints (the conflict restriction loses no bug).
//   3. When the oracle finds no failure anywhere, LIFS (which explores a
//      subset of interleavings) finds none either.
//
// Runs seeds 1..200 by default. A failing seed is replayable in isolation:
//
//   $ lifs_differential_test --seed=137

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/lifs.h"
#include "src/sim/builder.h"
#include "src/sim/kernel.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace {
// Set by main() when --seed is given: run only this seed.
std::optional<uint64_t> g_only_seed;
}  // namespace

namespace aitia {
namespace {

struct GeneratedScenario {
  std::shared_ptr<KernelImage> image;
  std::vector<ThreadSpec> slice;
};

// --- scenario generator ------------------------------------------------------
//
// Threads are built from small templates over the shared cells: reads,
// writes, assertions, pointer nulling/restoring, and pointer dereferences —
// the motifs behind the corpus bugs (order violations and atomicity
// violations on scalars and pointers). Thread 0 always contains a failure
// observer (assert or deref) and thread 1 a conflicting writer, so a useful
// fraction of seeds actually race; the rest of each thread is random.

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(uint64_t seed) : rng_(seed) {}

  GeneratedScenario Generate() {
    GeneratedScenario out;
    out.image = std::make_shared<KernelImage>();
    KernelImage& image = *out.image;

    scalars_.clear();
    scalars_.push_back(image.AddGlobal("gA", static_cast<Word>(rng_.NextBelow(2))));
    if (rng_.Chance(1, 2)) {
      scalars_.push_back(image.AddGlobal("gB", static_cast<Word>(rng_.NextBelow(2))));
    }
    // The pointer cell: usually valid (holds &gA), sometimes already null.
    ptr_ = image.AddGlobal("ptr", rng_.Chance(1, 4) ? 0 : static_cast<Word>(scalars_[0]));

    const bool three_threads = rng_.Chance(3, 10);
    const int thread_count = three_threads ? 3 : 2;
    for (int t = 0; t < thread_count; ++t) {
      // Step budgets keep exhaustive enumeration tractable: 2 threads get up
      // to 5 instructions each, a third thread stays at 2 so the interleaving
      // count stays in the low thousands.
      int budget;
      if (three_threads) {
        budget = t == 0 ? 3 : 2;
      } else {
        budget = 3 + static_cast<int>(rng_.NextBelow(3));  // 3..5
      }
      ProgramBuilder b(StrFormat("t%d", t));
      if (t == 0) {
        EmitObserver(b, budget);
      } else if (t == 1) {
        EmitWriter(b, budget);
      }
      while (budget >= 2) {
        EmitRandomTemplate(b, budget);
      }
      b.Exit();
      ProgramId prog = image.AddProgram(b.Build());
      out.slice.push_back({StrFormat("t%d", t), prog, 0, ThreadKind::kSyscall});
    }
    return out;
  }

 private:
  Addr RandomScalar() { return scalars_[rng_.PickIndex(scalars_.size())]; }

  void EmitObserver(ProgramBuilder& b, int& budget) {
    if (budget >= 3 && rng_.Chance(1, 2)) {
      b.Lea(R1, ptr_).Load(R2, R1).Load(R3, R2);  // deref *ptr
      budget -= 3;
    } else if (budget >= 3) {
      b.Lea(R1, RandomScalar()).Load(R2, R1).BugOn(R2);
      budget -= 3;
    } else {
      b.Lea(R1, RandomScalar()).Load(R2, R1);
      budget -= 2;
    }
  }

  void EmitWriter(ProgramBuilder& b, int& budget) {
    if (rng_.Chance(1, 2)) {
      b.Lea(R1, ptr_).StoreImm(R1, 0);  // ptr = NULL
    } else {
      b.Lea(R1, RandomScalar()).StoreImm(R1, 0);
    }
    budget -= 2;
  }

  void EmitRandomTemplate(ProgramBuilder& b, int& budget) {
    for (;;) {
      switch (rng_.NextBelow(7)) {
        case 0:  // read a scalar
          b.Lea(R1, RandomScalar()).Load(R2, R1);
          budget -= 2;
          return;
        case 1:  // write a scalar
          b.Lea(R1, RandomScalar()).StoreImm(R1, static_cast<Word>(rng_.NextBelow(3)));
          budget -= 2;
          return;
        case 2:  // assert a scalar is nonzero
          if (budget < 3) break;
          b.Lea(R1, RandomScalar()).Load(R2, R1).BugOn(R2);
          budget -= 3;
          return;
        case 3:  // ptr = NULL
          b.Lea(R1, ptr_).StoreImm(R1, 0);
          budget -= 2;
          return;
        case 4:  // ptr = &scalar
          if (budget < 3) break;
          b.Lea(R1, ptr_).Lea(R2, RandomScalar()).Store(R1, R2);
          budget -= 3;
          return;
        case 5:  // deref *ptr
          if (budget < 3) break;
          b.Lea(R1, ptr_).Load(R2, R1).Load(R3, R2);
          budget -= 3;
          return;
        case 6:  // store through *ptr
          if (budget < 3) break;
          b.Lea(R1, ptr_).Load(R2, R1).StoreImm(R2, 1);
          budget -= 3;
          return;
      }
    }
  }

  Rng rng_;
  std::vector<Addr> scalars_;
  Addr ptr_ = 0;
};

// --- exhaustive oracle -------------------------------------------------------

std::string SymptomKey(const Failure& f) {
  // Exactly the SameSymptom criterion for instruction-tied failures.
  return StrFormat("%s@%d:%d", FailureTypeName(f.type), f.at.prog, f.at.pc);
}

struct OracleResult {
  // Distinct instruction-tied failure symptoms -> (example failure, minimum
  // preemptions over all interleavings reaching that symptom).
  std::map<std::string, std::pair<Failure, int>> failures;
  int64_t interleavings = 0;
  bool complete = true;  // false if the leaf cap was hit (seed skipped)
};

class ExhaustiveOracle {
 public:
  explicit ExhaustiveOracle(const GeneratedScenario& s) : s_(s) {}

  OracleResult Explore() {
    std::vector<ThreadId> prefix;
    Walk(prefix);
    return std::move(result_);
  }

 private:
  static constexpr int64_t kLeafCap = 20000;

  // Replays `prefix` on a fresh sim; returns the preemption count (switches
  // away from a thread that could still run).
  int Replay(KernelSim& sim, const std::vector<ThreadId>& prefix) {
    int preemptions = 0;
    for (size_t i = 0; i < prefix.size(); ++i) {
      if (i > 0 && prefix[i] != prefix[i - 1]) {
        for (ThreadId r : sim.RunnableThreads()) {
          if (r == prefix[i - 1]) {
            ++preemptions;
            break;
          }
        }
      }
      sim.Step(prefix[i]);
    }
    return preemptions;
  }

  void Walk(std::vector<ThreadId>& prefix) {
    if (!result_.complete) {
      return;
    }
    KernelSim sim(s_.image.get(), s_.slice);
    const int preemptions = Replay(sim, prefix);
    if (sim.Done()) {
      if (++result_.interleavings > kLeafCap) {
        result_.complete = false;
        return;
      }
      const std::optional<Failure>& f = sim.failure();
      if (f.has_value() && f->seq >= 0) {
        auto [it, inserted] =
            result_.failures.emplace(SymptomKey(*f), std::make_pair(*f, preemptions));
        if (!inserted && preemptions < it->second.second) {
          it->second.second = preemptions;
        }
      }
      return;
    }
    for (ThreadId tid : sim.RunnableThreads()) {
      prefix.push_back(tid);
      Walk(prefix);
      prefix.pop_back();
    }
  }

  const GeneratedScenario& s_;
  OracleResult result_;
};

// --- the differential property ----------------------------------------------

LifsResult RunLifs(const GeneratedScenario& s, std::optional<Failure> target, bool dpor) {
  LifsOptions options;
  options.target = std::move(target);
  options.dpor_pruning = dpor;
  // Above the deepest failure these tiny scenarios can need, below the point
  // where an exhaustive fallback would get slow.
  options.max_interleavings = 4;
  Lifs lifs(s.image.get(), s.slice, {}, options);
  return lifs.Run();
}

TEST(LifsDifferentialTest, MatchesExhaustiveOracleOnRandomScenarios) {
  constexpr uint64_t kSeedCount = 200;
  constexpr int kMaxTargetDepth = 4;  // keep in sync with max_interleavings

  std::vector<uint64_t> seeds;
  if (g_only_seed.has_value()) {
    seeds.push_back(*g_only_seed);
  } else {
    for (uint64_t s = 1; s <= kSeedCount; ++s) {
      seeds.push_back(s);
    }
  }

  int64_t scenarios_with_failures = 0;
  int64_t targets_checked = 0;
  int64_t deep_targets_skipped = 0;
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(StrFormat("seed=%llu (replay: lifs_differential_test --seed=%llu)",
                           static_cast<unsigned long long>(seed),
                           static_cast<unsigned long long>(seed)));
    ScenarioGenerator gen(seed);
    GeneratedScenario scenario = gen.Generate();
    OracleResult oracle = ExhaustiveOracle(scenario).Explore();
    ASSERT_TRUE(oracle.complete) << "generator produced an intractable scenario";
    ASSERT_GT(oracle.interleavings, 0);

    if (oracle.failures.empty()) {
      // Inverse direction: LIFS explores a subset of the interleavings the
      // oracle enumerated, so it must not fabricate a failure.
      LifsResult r = RunLifs(scenario, std::nullopt, /*dpor=*/true);
      EXPECT_FALSE(r.reproduced)
          << "LIFS found " << (r.failure ? r.failure->ToString() : "?")
          << " but exhaustive enumeration found nothing";
      continue;
    }

    ++scenarios_with_failures;
    for (const auto& [key, entry] : oracle.failures) {
      const auto& [failure, min_preemptions] = entry;
      SCOPED_TRACE(StrFormat("target=%s oracle_min_k=%d", key.c_str(), min_preemptions));
      if (min_preemptions > kMaxTargetDepth) {
        ++deep_targets_skipped;
        continue;
      }
      ++targets_checked;
      for (bool dpor : {true, false}) {
        SCOPED_TRACE(dpor ? "dpor=on" : "dpor=off");
        LifsResult r = RunLifs(scenario, failure, dpor);
        EXPECT_TRUE(r.reproduced);
        if (!r.reproduced) {
          continue;
        }
        ASSERT_TRUE(r.failure.has_value());
        EXPECT_TRUE(SameSymptom(*r.failure, failure));
        // Fewest-preemptions-first: LIFS may not need more switches than the
        // best interleaving the oracle found.
        EXPECT_LE(r.interleaving_count, min_preemptions);
      }
    }
  }

  if (!g_only_seed.has_value()) {
    // Guard against a generator regression silently weakening the test: a
    // healthy generator makes a sizable fraction of seeds actually fail.
    EXPECT_GE(scenarios_with_failures, 20);
    EXPECT_GE(targets_checked, 20);
  }
  std::printf("[ differential ] seeds=%zu failing_scenarios=%lld targets=%lld deep_skipped=%lld\n",
              seeds.size(), static_cast<long long>(scenarios_with_failures),
              static_cast<long long>(targets_checked),
              static_cast<long long>(deep_targets_skipped));
}

}  // namespace
}  // namespace aitia

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    unsigned long long seed = 0;
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
      g_only_seed = seed;
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      g_only_seed = seed;
    }
  }
  return RUN_ALL_TESTS();
}
