// Unit tests for the hypervisor-analog schedule enforcer (src/hv).

#include <gtest/gtest.h>

#include "src/hv/enforcer.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

// Two writer threads over one global; thread ids 0 and 1.
struct TwoWriters {
  KernelImage image;
  Addr g = 0;
  std::vector<ThreadSpec> threads;

  TwoWriters() {
    g = image.AddGlobal("g", 0);
    for (int i = 0; i < 2; ++i) {
      ProgramBuilder b(i == 0 ? "w0" : "w1");
      b.Lea(R1, g)
          .StoreImm(R1, i + 1)   // pc 1: first store
          .StoreImm(R1, 10 + i)  // pc 2: second store
          .Exit();
      image.AddProgram(b.Build());
    }
    threads = {{"a", 0, 0, ThreadKind::kSyscall}, {"b", 1, 0, ThreadKind::kSyscall}};
  }
};

std::vector<DynInstr> ExecutedOrder(const RunResult& run) {
  std::vector<DynInstr> order;
  for (const ExecEvent& e : run.trace) {
    order.push_back(e.di);
  }
  return order;
}

TEST(EnforcerPreemptionTest, NoPointsRunsBaseOrder) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  EnforceResult er = enforcer.RunPreemption(w.threads, {{1, 0}, {}});
  ASSERT_FALSE(er.run.failure.has_value());
  // Base order (1, 0): all of thread 1's events precede thread 0's.
  bool seen_zero = false;
  for (const ExecEvent& e : er.run.trace) {
    if (e.di.tid == 0) {
      seen_zero = true;
    }
    if (seen_zero) {
      EXPECT_EQ(e.di.tid, 0);
    }
  }
}

TEST(EnforcerPreemptionTest, PostPointParksAfterInstruction) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  PreemptionSchedule schedule;
  schedule.base_order = {0, 1};
  schedule.points = {{DynInstr{0, {0, 1}, 0}, /*before=*/false, kNoThread}};
  EnforceResult er = enforcer.RunPreemption(w.threads, schedule);
  EXPECT_TRUE(er.unfired_points.empty());
  // Thread 0 retires pc 0 and pc 1, then thread 1 runs fully, then thread 0.
  std::vector<DynInstr> order = ExecutedOrder(er.run);
  ASSERT_GE(order.size(), 3u);
  EXPECT_EQ(order[0].tid, 0);
  EXPECT_EQ(order[1], (DynInstr{0, {0, 1}, 0}));
  EXPECT_EQ(order[2].tid, 1);
}

TEST(EnforcerPreemptionTest, PrePointParksBeforeInstruction) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  PreemptionSchedule schedule;
  schedule.base_order = {0, 1};
  schedule.points = {{DynInstr{0, {0, 1}, 0}, /*before=*/true, kNoThread}};
  EnforceResult er = enforcer.RunPreemption(w.threads, schedule);
  std::vector<DynInstr> order = ExecutedOrder(er.run);
  // Thread 0 retires only pc 0 (lea), then thread 1 runs; pc 1 comes later.
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], (DynInstr{0, {0, 0}, 0}));
  EXPECT_EQ(order[1].tid, 1);
}

TEST(EnforcerPreemptionTest, WatchpointDetectsConflictingAccess) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  PreemptionSchedule schedule;
  schedule.base_order = {0, 1};
  // Park thread 0 right after its first store; thread 1's stores then trip
  // the watchpoint armed on g (the Figure 8 workflow).
  schedule.points = {{DynInstr{0, {0, 1}, 0}, false, kNoThread}};
  EnforceResult er = enforcer.RunPreemption(w.threads, schedule);
  ASSERT_FALSE(er.watch_hits.empty());
  EXPECT_EQ(er.watch_hits[0].owner.tid, 0);
  EXPECT_EQ(er.watch_hits[0].addr, w.g);
  EXPECT_EQ(er.watch_hits[0].access.di.tid, 1);
}

TEST(EnforcerPreemptionTest, UnfiredPointReported) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  PreemptionSchedule schedule;
  schedule.base_order = {0, 1};
  schedule.points = {{DynInstr{0, {0, 1}, 5}, false, kNoThread}};  // occurrence 5 never
  EnforceResult er = enforcer.RunPreemption(w.threads, schedule);
  ASSERT_EQ(er.unfired_points.size(), 1u);
}

TEST(EnforcerPreemptionTest, ParkedThreadsResumeInFifoOrder) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  PreemptionSchedule schedule;
  schedule.base_order = {0, 1};
  schedule.points = {
      {DynInstr{0, {0, 1}, 0}, false, kNoThread},  // park 0 after its store
      {DynInstr{1, {1, 1}, 0}, false, kNoThread},  // park 1 after its store
  };
  EnforceResult er = enforcer.RunPreemption(w.threads, schedule);
  // 0 parked first, so it resumes first after 1 parks.
  std::vector<DynInstr> order = ExecutedOrder(er.run);
  // Find the resume points: after both parks, next event must be thread 0.
  size_t park1_index = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == (DynInstr{1, {1, 1}, 0})) {
      park1_index = i;
    }
  }
  ASSERT_LT(park1_index + 1, order.size());
  EXPECT_EQ(order[park1_index + 1].tid, 0);
}

TEST(EnforcerTotalOrderTest, ExactReplayReproducesTrace) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  // Reference run: base order (0,1).
  EnforceResult ref = enforcer.RunPreemption(w.threads, {{0, 1}, {}});
  TotalOrderSchedule schedule;
  schedule.base_order = {0, 1};
  for (const ExecEvent& e : ref.run.trace) {
    schedule.sequence.push_back(e.di);
  }
  EnforceResult er = enforcer.RunTotalOrder(w.threads, schedule);
  EXPECT_TRUE(er.disappeared.empty());
  EXPECT_EQ(er.deviations, 0);
  ASSERT_EQ(er.run.trace.size(), ref.run.trace.size());
  for (size_t i = 0; i < er.run.trace.size(); ++i) {
    EXPECT_EQ(er.run.trace[i].di, ref.run.trace[i].di) << i;
  }
}

TEST(EnforcerTotalOrderTest, InterleavedReplayFollowsSequence) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  TotalOrderSchedule schedule;
  schedule.base_order = {0, 1};
  // Alternate: 0:pc0, 1:pc0, 0:pc1, 1:pc1, 0:pc2, 1:pc2, 0:pc3, 1:pc3.
  for (Pc pc = 0; pc < 4; ++pc) {
    schedule.sequence.push_back({0, {0, pc}, 0});
    schedule.sequence.push_back({1, {1, pc}, 0});
  }
  EnforceResult er = enforcer.RunTotalOrder(w.threads, schedule);
  EXPECT_TRUE(er.disappeared.empty());
  ASSERT_EQ(er.run.trace.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(er.run.trace[i].di.tid, static_cast<ThreadId>(i % 2));
  }
}

TEST(EnforcerTotalOrderTest, DivergenceParksThreadAndDropsEntries) {
  // A thread whose branch outcome differs from the scheduled path.
  KernelImage image;
  Addr flag = image.AddGlobal("flag", 0);
  Addr out = image.AddGlobal("out", 0);
  {
    ProgramBuilder b("reader");
    b.Lea(R1, flag)
        .Load(R2, R1)       // pc 1
        .Beqz(R2, "skip")   // pc 2
        .Lea(R3, out)       // pc 3 (only when flag != 0)
        .StoreImm(R3, 7)    // pc 4
        .Label("skip")
        .Exit();            // pc 5
    image.AddProgram(b.Build());
  }
  std::vector<ThreadSpec> threads = {{"r", 0, 0, ThreadKind::kSyscall}};
  Enforcer enforcer(&image);
  TotalOrderSchedule schedule;
  schedule.base_order = {0};
  // Schedule expects the flag != 0 path, but flag is 0: divergence at pc 3.
  schedule.sequence = {{0, {0, 0}, 0}, {0, {0, 1}, 0}, {0, {0, 2}, 0},
                       {0, {0, 3}, 0}, {0, {0, 4}, 0}, {0, {0, 5}, 0}};
  EnforceResult er = enforcer.RunTotalOrder(threads, schedule);
  EXPECT_FALSE(er.run.failure.has_value());
  // pc 3 and pc 4 disappeared; the drain phase finished the thread.
  ASSERT_GE(er.disappeared.size(), 2u);
  EXPECT_TRUE(er.run.all_exited);
  // The store never executed.
  bool stored = false;
  for (const ExecEvent& e : er.run.trace) {
    stored = stored || (e.is_access && e.is_write && e.addr == out);
  }
  EXPECT_FALSE(stored);
}

TEST(EnforcerTotalOrderTest, LockContentionFallsBackWithDeviations) {
  KernelImage image;
  Addr lock = image.AddGlobal("lock", 0);
  for (const char* name : {"l0", "l1"}) {
    ProgramBuilder b(name);
    b.Lea(R1, lock).Lock(R1).Nop().Unlock(R1).Exit();
    image.AddProgram(b.Build());
  }
  std::vector<ThreadSpec> threads = {{"a", 0, 0, ThreadKind::kSyscall},
                                     {"b", 1, 0, ThreadKind::kSyscall}};
  Enforcer enforcer(&image);
  TotalOrderSchedule schedule;
  schedule.base_order = {0, 1};
  // Ask thread 1 to acquire while thread 0 still holds the lock; the
  // enforcer must drain the holder to preserve liveness.
  schedule.sequence = {
      {0, {0, 0}, 0},  // lea
      {0, {0, 1}, 0},  // lock
      {1, {1, 0}, 0},  // lea
      {1, {1, 1}, 0},  // lock -> blocked; holder drains (deviations)
      {1, {1, 2}, 0}, {1, {1, 3}, 0}, {1, {1, 4}, 0},
      {0, {0, 2}, 0}, {0, {0, 3}, 0}, {0, {0, 4}, 0},
  };
  EnforceResult er = enforcer.RunTotalOrder(threads, schedule);
  EXPECT_FALSE(er.run.failure.has_value());
  EXPECT_TRUE(er.run.all_exited);
  EXPECT_GT(er.deviations, 0);
}

TEST(EnforcerTest, DeterministicReplay) {
  TwoWriters w;
  Enforcer enforcer(&w.image);
  PreemptionSchedule schedule;
  schedule.base_order = {1, 0};
  schedule.points = {{DynInstr{1, {1, 1}, 0}, false, kNoThread}};
  EnforceResult a = enforcer.RunPreemption(w.threads, schedule);
  EnforceResult b = enforcer.RunPreemption(w.threads, schedule);
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size());
  for (size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace[i].di, b.run.trace[i].di);
    EXPECT_EQ(a.run.trace[i].value, b.run.trace[i].value);
  }
}

}  // namespace
}  // namespace aitia
