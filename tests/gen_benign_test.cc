// Salted-benign-race soundness on the generated corpus (DESIGN.md §14.2).
//
// Every buggy template can be salted with provably/dynamically benign races
// (racy counters, silent same-value store pairs, dead reads). This test
// pins the triage-soundness contract beyond the curated counterexamples:
// salted races are discharged statically or flipped benign, they never
// appear in a causality chain, and the static pre-filter actually fires on
// the generated corpus (prefilter.* skip counters > 0). The benign template
// pins the other half: a scenario with *only* salted races never produces a
// failure, under LIFS or under the fuzzer — LIFS does not fabricate.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/core/aitia.h"
#include "src/fuzz/fuzzer.h"
#include "src/gen/generator.h"

namespace aitia {
namespace {

// Deterministic search caps (the sweep's budgets): the planted bugs need
// <= 2 preemptions, and the benign searches must not walk the full default
// frontier.
AitiaOptions CappedOptions() {
  AitiaOptions options;
  options.lifs.max_interleavings = 2;
  options.lifs.max_schedules = 2500;
  return options;
}

TEST(GenBenignTest, SaltedRacesNeverAppearInAChain) {
  // Maximum salt across every buggy template, three seeds each.
  int64_t total_flips_skipped = 0;
  int64_t total_prefilter_skip_metric = 0;
  int salted_races_seen = 0;
  for (gen::GenTemplate tmpl : gen::AllGenTemplates()) {
    if (tmpl == gen::GenTemplate::kBenign) continue;
    for (uint64_t seed : {2, 13, 31}) {
      gen::GenOptions options;
      options.tmpl = tmpl;
      options.seed = seed;
      options.knobs.salt = 2;
      options.knobs.window = 1;
      const gen::GeneratedScenario g = gen::GenerateScenario(options);
      ASSERT_FALSE(g.benign_globals.empty());

      AitiaReport report = DiagnoseScenario(g.scenario, CappedOptions());
      ASSERT_TRUE(report.diagnosed) << g.scenario.id;
      total_flips_skipped += report.causality.flips_skipped;
      total_prefilter_skip_metric += report.metrics.counter("prefilter.skipped");

      std::vector<Addr> benign_addrs;
      for (const std::string& name : g.benign_globals) {
        const Addr addr = g.scenario.image->FindGlobal(name);
        if (addr != 0) benign_addrs.push_back(addr);
      }
      // Salted races that were tested must end benign (discharged or
      // flipped-benign) — and must never be in the chain.
      for (const TestedRace& t : report.causality.tested) {
        for (Addr addr : benign_addrs) {
          if (t.race.first.addr == addr || t.race.second.addr == addr) {
            ++salted_races_seen;
            EXPECT_NE(t.verdict, RaceVerdict::kRootCause)
                << g.scenario.id << " " << RaceLabel(*g.scenario.image, t.race);
            EXPECT_NE(t.verdict, RaceVerdict::kAmbiguous)
                << g.scenario.id << " " << RaceLabel(*g.scenario.image, t.race);
          }
        }
      }
      for (const ChainNode& node : report.causality.chain.nodes()) {
        for (const RacePair& race : node.races) {
          for (Addr addr : benign_addrs) {
            EXPECT_NE(race.first.addr, addr)
                << g.scenario.id << " " << RaceLabel(*g.scenario.image, race);
            EXPECT_NE(race.second.addr, addr)
                << g.scenario.id << " " << RaceLabel(*g.scenario.image, race);
          }
        }
      }
      // Accounting invariant regardless of how many flips triage skipped.
      EXPECT_EQ(report.causality.schedules_executed + report.causality.flips_skipped,
                static_cast<int64_t>(report.causality.tested.size()))
          << g.scenario.id;
    }
  }
  // The salt actually generated cross-thread races, and the static
  // pre-filter discharged at least some of them.
  EXPECT_GT(salted_races_seen, 0);
  EXPECT_GT(total_flips_skipped, 0);
  EXPECT_EQ(total_prefilter_skip_metric, total_flips_skipped);
}

TEST(GenBenignTest, BenignTemplateNeverReproducesUnderLifs) {
  const std::vector<gen::GenTemplate> only_benign = {gen::GenTemplate::kBenign};
  for (const gen::GenOptions& options : gen::CorpusPlan(8, 77, only_benign)) {
    const gen::GeneratedScenario g = gen::GenerateScenario(options);
    ASSERT_FALSE(g.expect_failure);
    AitiaReport report = DiagnoseScenario(g.scenario, CappedOptions());
    EXPECT_FALSE(report.lifs.reproduced) << g.scenario.id << " fabricated a failure";
    EXPECT_FALSE(report.diagnosed) << g.scenario.id;
  }
}

TEST(GenBenignTest, BenignTemplateNeverFailsUnderTheFuzzer) {
  const std::vector<gen::GenTemplate> only_benign = {gen::GenTemplate::kBenign};
  for (const gen::GenOptions& options : gen::CorpusPlan(4, 101, only_benign)) {
    const gen::GeneratedScenario g = gen::GenerateScenario(options);
    FuzzOptions fuzz;
    fuzz.max_attempts = 150;
    const FuzzOutcome outcome = FuzzUntilFailure(g.scenario.MakeWorkload(), fuzz);
    EXPECT_FALSE(outcome.found)
        << g.scenario.id << " failed under random preemption: "
        << (outcome.run.failure ? outcome.run.failure->ToString() : "");
  }
}

}  // namespace
}  // namespace aitia
