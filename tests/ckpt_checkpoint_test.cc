// Snapshot/restore correctness (src/ckpt/checkpoint.h): a KernelSim restored
// from a mid-run checkpoint must continue bit-identically to the original —
// same trace, same failure, same memory, same thread accounting — including
// runs that exercise the heap, locks, intrinsic lists, and spawned work.

#include "src/ckpt/checkpoint.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "src/sim/builder.h"
#include "src/sim/kernel.h"

namespace aitia {
namespace {

struct Scenario {
  std::unique_ptr<KernelImage> image;
  std::vector<ThreadSpec> slice;
  std::vector<ThreadSpec> setup;
  Addr ga = 0;
  Addr gb = 0;
};

// Two threads over a lock-protected counter plus a list and a heap object:
// enough machinery that a shallow snapshot (missing heap/list/lock state)
// diverges immediately.
Scenario MakeScenario() {
  Scenario s;
  s.image = std::make_unique<KernelImage>();
  s.ga = s.image->AddGlobal("ga", 0);
  s.gb = s.image->AddGlobal("gb", 1);
  const Addr lock = s.image->AddGlobal("lock", 0);
  const Addr head = s.image->AddGlobal("head", 0);

  ProgramBuilder setup("setup");
  setup.Lea(R1, s.ga).StoreImm(R1, 5).Exit();
  const ProgramId setup_prog = s.image->AddProgram(setup.Build());

  ProgramBuilder t0("t0");
  t0.Lea(R1, lock)
      .Lock(R1)
      .Lea(R2, s.ga)
      .Load(R3, R2)
      .AddImm(R3, R3, 1)
      .Store(R2, R3)
      .Unlock(R1)
      .Alloc(R4, 2)
      .StoreImm(R4, 7)
      .Lea(R5, head)
      .ListAdd(R5, R4)
      .Free(R4)
      .Exit();
  const ProgramId p0 = s.image->AddProgram(t0.Build());

  ProgramBuilder t1("t1");
  t1.Lea(R1, lock)
      .Lock(R1)
      .Lea(R2, s.ga)
      .Load(R3, R2)
      .Lea(R4, s.gb)
      .Store(R4, R3)
      .Unlock(R1)
      .Lea(R5, head)
      .ListLen(R6, R5)
      .Exit();
  const ProgramId p1 = s.image->AddProgram(t1.Build());

  s.setup.push_back({"setup", setup_prog, 0, ThreadKind::kSyscall});
  s.slice.push_back({"t0", p0, 0, ThreadKind::kSyscall});
  s.slice.push_back({"t1", p1, 0, ThreadKind::kSyscall});
  return s;
}

// Deterministic driver: always steps the lowest runnable thread, except that
// every third retired step prefers the highest — interleaves the two threads
// without any randomness.
ThreadId PickNext(const KernelSim& sim, int64_t steps) {
  std::vector<ThreadId> runnable = sim.RunnableThreads();
  if (runnable.empty()) {
    return -1;
  }
  return steps % 3 == 2 ? runnable.back() : runnable.front();
}

void ExpectEventsEqual(const ExecEvent& a, const ExecEvent& b, size_t index) {
  EXPECT_EQ(a.seq, b.seq) << "event " << index;
  EXPECT_EQ(a.di, b.di) << "event " << index;
  EXPECT_EQ(a.is_access, b.is_access) << "event " << index;
  EXPECT_EQ(a.is_write, b.is_write) << "event " << index;
  EXPECT_EQ(a.addr, b.addr) << "event " << index;
  EXPECT_EQ(a.len, b.len) << "event " << index;
  EXPECT_EQ(a.value, b.value) << "event " << index;
  EXPECT_EQ(a.locks_held, b.locks_held) << "event " << index;
}

void ExpectSimsEqual(const KernelSim& a, const KernelSim& b) {
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (size_t i = 0; i < a.trace().size(); ++i) {
    ExpectEventsEqual(a.trace()[i], b.trace()[i], i);
  }
  EXPECT_EQ(a.failure().has_value(), b.failure().has_value());
  if (a.failure().has_value() && b.failure().has_value()) {
    EXPECT_EQ(a.failure()->type, b.failure()->type);
    EXPECT_EQ(a.failure()->tid, b.failure()->tid);
    EXPECT_EQ(a.failure()->seq, b.failure()->seq);
  }
  ASSERT_EQ(a.thread_count(), b.thread_count());
  for (ThreadId tid = 0; tid < a.thread_count(); ++tid) {
    const ThreadContext& ta = a.thread(tid);
    const ThreadContext& tb = b.thread(tid);
    EXPECT_EQ(ta.state, tb.state) << "thread " << tid;
    EXPECT_EQ(ta.pc, tb.pc) << "thread " << tid;
    EXPECT_EQ(ta.regs, tb.regs) << "thread " << tid;
    EXPECT_EQ(ta.held_locks, tb.held_locks) << "thread " << tid;
    EXPECT_EQ(ta.exec_counts, tb.exec_counts) << "thread " << tid;
  }
}

TEST(CheckpointTest, MidRunRestoreContinuesBitIdentically) {
  Scenario s = MakeScenario();
  for (int64_t capture_at : {0, 1, 3, 7, 12}) {
    SCOPED_TRACE(capture_at);
    KernelSim original(s.image.get(), s.slice, s.setup);
    int64_t steps = 0;
    std::shared_ptr<const ckpt::SimCheckpoint> snap;
    while (!original.Done()) {
      if (steps == capture_at) {
        snap = ckpt::SimCheckpoint::Capture(original);
      }
      const ThreadId tid = PickNext(original, steps);
      if (tid < 0) {
        break;
      }
      original.Step(tid);
      ++steps;
    }
    ASSERT_NE(snap, nullptr) << "scenario shorter than capture point";
    EXPECT_EQ(snap->version(), ckpt::kCheckpointVersion);
    EXPECT_GT(snap->bytes(), 0u);

    std::unique_ptr<KernelSim> restored = snap->Restore();
    ASSERT_NE(restored, nullptr);
    // CoW: the immutable image is shared, never copied.
    EXPECT_EQ(&restored->image(), s.image.get());
    int64_t replay_steps = capture_at;
    while (!restored->Done()) {
      const ThreadId tid = PickNext(*restored, replay_steps);
      if (tid < 0) {
        break;
      }
      restored->Step(tid);
      ++replay_steps;
    }
    EXPECT_EQ(replay_steps, steps);
    ExpectSimsEqual(original, *restored);
    // Setup effects and memory must have carried across the snapshot.
    EXPECT_EQ(original.memory().Peek(s.ga), restored->memory().Peek(s.ga));
    EXPECT_EQ(original.memory().Peek(s.gb), restored->memory().Peek(s.gb));
  }
}

TEST(CheckpointTest, RestoreIsRepeatable) {
  Scenario s = MakeScenario();
  KernelSim sim(s.image.get(), s.slice, s.setup);
  for (int i = 0; i < 5; ++i) {
    sim.Step(sim.RunnableThreads().front());
  }
  std::shared_ptr<const ckpt::SimCheckpoint> snap = ckpt::SimCheckpoint::Capture(sim);

  // Two restores from one checkpoint continue identically: the checkpoint is
  // immutable shared state, not a one-shot.
  std::unique_ptr<KernelSim> a = snap->Restore();
  std::unique_ptr<KernelSim> b = snap->Restore();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  int64_t steps = 5;
  while (!a->Done()) {
    const ThreadId tid = PickNext(*a, steps);
    if (tid < 0) {
      break;
    }
    a->Step(tid);
    b->Step(tid);
    ++steps;
  }
  ExpectSimsEqual(*a, *b);
}

TEST(CheckpointTest, CheckpointOutlivesTheCapturedSim) {
  Scenario s = MakeScenario();
  std::shared_ptr<const ckpt::SimCheckpoint> snap;
  std::vector<ExecEvent> prefix;
  {
    KernelSim sim(s.image.get(), s.slice, s.setup);
    for (int i = 0; i < 6; ++i) {
      sim.Step(sim.RunnableThreads().front());
    }
    snap = ckpt::SimCheckpoint::Capture(sim);
    prefix = sim.trace();
  }  // the captured sim is gone; the checkpoint owns everything it needs

  std::unique_ptr<KernelSim> restored = snap->Restore();
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->trace().size(), prefix.size());
  for (size_t i = 0; i < prefix.size(); ++i) {
    ExpectEventsEqual(restored->trace()[i], prefix[i], i);
  }
  while (!restored->Done()) {
    const ThreadId tid = PickNext(*restored, 0);
    if (tid < 0) {
      break;
    }
    restored->Step(tid);
  }
  EXPECT_FALSE(restored->failure().has_value());
}

}  // namespace
}  // namespace aitia
