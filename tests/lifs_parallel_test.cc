// Serial/parallel equivalence of LIFS frontier exploration (DESIGN.md §9).
//
// The parallel search dispatches each level's frontier across a ThreadPool
// and merges results in canonical order, so for ANY worker count the result
// must be bit-identical to the fully serial walk: same failing schedule,
// same races and phantom races, same reference streams, same counters, and
// — with keep_explored — the same explored list in the same order.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/core/lifs.h"
#include "src/util/strings.h"

namespace aitia {
namespace {

std::string EventKey(const ExecEvent& e) {
  return StrFormat("%lld:%d.%d.%d.%d %c a=%llu v=%llu", static_cast<long long>(e.seq), e.di.tid,
                   e.di.at.prog, e.di.at.pc, e.di.occurrence, e.is_write ? 'w' : 'r',
                   static_cast<unsigned long long>(e.addr),
                   static_cast<unsigned long long>(e.value));
}

std::string RaceKey(const RacePair& p) {
  return StrFormat("[%s | %s] cs=%d lock=%llu", EventKey(p.first).c_str(),
                   EventKey(p.second).c_str(), p.cs_pair ? 1 : 0,
                   static_cast<unsigned long long>(p.lock));
}

std::vector<std::string> RaceKeys(const std::vector<RacePair>& races) {
  std::vector<std::string> keys;
  keys.reserve(races.size());
  for (const RacePair& p : races) {
    keys.push_back(RaceKey(p));
  }
  return keys;
}

// Every field of the result that the serial/parallel contract covers,
// flattened to one comparable string (timing and budget are excluded:
// wall-clock varies and parallel budgets may include speculative overshoot).
std::string ResultKey(const LifsResult& r) {
  std::ostringstream out;
  out << "reproduced=" << r.reproduced << " k=" << r.interleaving_count
      << " executed=" << r.schedules_executed << " pruned=" << r.schedules_pruned
      << " aborted=" << r.aborted_runs << "\n";
  out << "schedule=" << r.failing_schedule.ToString() << "\n";
  for (const std::string& k : RaceKeys(r.races.races)) {
    out << "race " << k << "\n";
  }
  for (const std::string& k : RaceKeys(r.races.cs_pairs)) {
    out << "cs " << k << "\n";
  }
  for (const std::string& k : RaceKeys(r.phantom_races)) {
    out << "phantom " << k << "\n";
  }
  for (const auto& [tid, stream] : r.reference_streams) {
    out << "ref t" << tid << ":";
    for (const ExecEvent& e : stream) {
      out << " (" << EventKey(e) << ")";
    }
    out << "\n";
  }
  for (const ExecEvent& e : r.failing_run.trace) {
    out << "trace " << EventKey(e) << "\n";
  }
  for (const ExploredSchedule& es : r.explored) {
    out << "explored " << es.schedule.ToString() << " k=" << es.interleavings
        << " failed=" << es.failed << " matched=" << es.matched
        << " equiv=" << es.equivalent_to_earlier << "\n";
  }
  return out.str();
}

LifsResult RunWithWorkers(const BugScenario& s, size_t workers) {
  LifsOptions options;
  options.target_type = s.truth.failure_type;
  options.keep_explored = true;
  options.workers = workers;
  Lifs lifs(s.image.get(), s.slice, s.setup, options);
  return lifs.Run();
}

TEST(LifsParallelTest, EveryScenarioBitIdenticalAcrossWorkerCounts) {
  for (const ScenarioEntry& entry : AllScenarios()) {
    SCOPED_TRACE(entry.id);
    BugScenario s = entry.make();
    LifsResult serial = RunWithWorkers(s, 1);
    EXPECT_EQ(serial.speculative_runs, 0) << "serial search must never speculate";
    const std::string want = ResultKey(serial);
    for (size_t workers : {2u, 4u, 8u}) {
      SCOPED_TRACE(StrFormat("workers=%zu", workers));
      LifsResult parallel = RunWithWorkers(s, workers);
      EXPECT_EQ(ResultKey(parallel), want);
    }
  }
}

// Regression (explored-order bug): under parallel execution the per-batch
// results used to land in completion order; LifsResult::explored must keep
// the canonical serial order, with the matching schedule last.
TEST(LifsParallelTest, ExploredListKeepsCanonicalOrderUnderParallelism) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  LifsResult serial = RunWithWorkers(s, 1);
  ASSERT_TRUE(serial.reproduced);
  ASSERT_FALSE(serial.explored.empty());
  EXPECT_TRUE(serial.explored.back().matched);
  for (size_t workers : {2u, 4u, 8u}) {
    SCOPED_TRACE(StrFormat("workers=%zu", workers));
    LifsResult parallel = RunWithWorkers(s, workers);
    ASSERT_EQ(parallel.explored.size(), serial.explored.size());
    for (size_t i = 0; i < serial.explored.size(); ++i) {
      EXPECT_EQ(parallel.explored[i].schedule.ToString(), serial.explored[i].schedule.ToString())
          << "position " << i;
      EXPECT_EQ(parallel.explored[i].matched, serial.explored[i].matched) << "position " << i;
    }
    EXPECT_TRUE(parallel.explored.back().matched);
  }
}

TEST(LifsParallelTest, SpeculativeRunsExcludedFromExecutedCount) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  LifsResult serial = RunWithWorkers(s, 1);
  for (size_t workers : {4u, 8u}) {
    LifsResult parallel = RunWithWorkers(s, workers);
    EXPECT_EQ(parallel.schedules_executed, serial.schedules_executed);
    EXPECT_GE(parallel.speculative_runs, 0);
    // The budget counts physical runs: canonical + speculative.
    EXPECT_EQ(parallel.budget.runs, parallel.schedules_executed + parallel.speculative_runs);
  }
}

// Worker count 0 resolves to the hardware concurrency and must behave like
// any other parallel (or serial, on a 1-CPU host) configuration.
TEST(LifsParallelTest, AutoWorkerCountMatchesSerial) {
  BugScenario s = MakeScenario("fig-1");
  LifsResult serial = RunWithWorkers(s, 1);
  LifsResult automatic = RunWithWorkers(s, 0);
  EXPECT_EQ(ResultKey(automatic), ResultKey(serial));
}

// End-to-end: the full pipeline (LIFS + Causality) under --jobs renders the
// same diagnosis as the serial pipeline for the multi-interleaving bugs.
TEST(LifsParallelTest, FullPipelineChainIdenticalUnderJobs) {
  for (const char* id : {"CVE-2017-15649", "syz-02", "syz-08"}) {
    SCOPED_TRACE(id);
    BugScenario s = MakeScenario(id);
    AitiaReport serial = DiagnoseScenario(s);
    ASSERT_TRUE(serial.diagnosed);
    for (size_t jobs : {2u, 4u}) {
      SCOPED_TRACE(StrFormat("jobs=%zu", jobs));
      BugScenario again = MakeScenario(id);
      AitiaOptions options;
      options.set_jobs(jobs);
      AitiaReport parallel = DiagnoseScenario(again, options);
      ASSERT_TRUE(parallel.diagnosed);
      EXPECT_EQ(parallel.causality.chain.Render(*again.image),
                serial.causality.chain.Render(*s.image));
      EXPECT_EQ(parallel.lifs.failing_schedule.ToString(), serial.lifs.failing_schedule.ToString());
      EXPECT_EQ(parallel.lifs.schedules_executed, serial.lifs.schedules_executed);
    }
  }
}

}  // namespace
}  // namespace aitia
