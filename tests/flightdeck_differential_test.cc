// Flight-deck purity differential (DESIGN.md §15): the observability plane
// added for streaming — progress events, per-request scopes, SARIF export —
// is write-only. Diagnosing every bundled scenario with events {off, on} ×
// workers {1, 4} must produce bit-identical semantics (verdicts, flip bits,
// disappearance sets, rendered chain, root causes, diagnosed/degraded flags)
// AND identical work (schedules_executed): observing a diagnosis may not
// even change how much it executes, let alone what it concludes.
//
// SARIF export rides along: generated from the finished report, it must be
// deterministic and must leave the report untouched.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/obs/events.h"
#include "src/tools/sarif.h"

namespace aitia {
namespace {

// Everything semantically observable about one diagnosis plus the work done,
// rendered to a comparable string (wall-clock and metrics excluded).
std::string Semantics(const BugScenario& s, const AitiaReport& r) {
  std::string out;
  out += "diagnosed=" + std::to_string(r.diagnosed);
  out += " degraded=" + std::to_string(r.degraded);
  out += " schedules=" + std::to_string(r.causality.schedules_executed);
  out += " skipped=" + std::to_string(r.causality.flips_skipped);
  out += "\nchain:\n" + r.causality.chain.Render(*s.image);
  out += "roots:";
  for (size_t i : r.causality.root_cause_indices) {
    out += " " + std::to_string(i);
  }
  out += "\n";
  for (const TestedRace& t : r.causality.tested) {
    out += RaceLabel(*s.image, t.race);
    out += " verdict=" + std::string(RaceVerdictName(t.verdict));
    out += " phantom=" + std::to_string(t.phantom);
    out += " took_effect=" + std::to_string(t.flip_took_effect);
    out += " still_failed=" + std::to_string(t.flip_still_failed);
    out += " disappeared=";
    for (size_t d : t.disappeared) {
      out += std::to_string(d) + ",";
    }
    out += "\n";
  }
  return out;
}

TEST(FlightdeckDifferentialTest, CorpusIdenticalWithEventsOnOffAcrossWorkers) {
  int64_t total_events = 0;
  for (const ScenarioEntry& entry : AllScenarios()) {
    BugScenario scenario = entry.make();
    for (size_t jobs : {size_t{1}, size_t{4}}) {
      AitiaOptions off;
      off.set_jobs(jobs);
      const AitiaReport baseline = DiagnoseScenario(scenario, off);
      const std::string want = Semantics(scenario, baseline);
      const std::string sarif_baseline = tools::ReportToSarif(scenario, baseline);

      // Events on: a live subscription consumed concurrently, exactly like
      // the daemon's streaming relay (consumer racing the pipeline).
      const uint64_t scope = obs::EventBus::NextScope();
      auto sub = obs::EventBus::Global().Subscribe(scope, /*capacity=*/8192);
      int64_t consumed = 0;
      std::thread consumer([&sub, &consumed] {
        while (sub->Next(1000).has_value()) {
          ++consumed;
        }
      });
      AitiaOptions on;
      on.set_jobs(jobs).set_event_scope(scope);
      const AitiaReport streamed = DiagnoseScenario(scenario, on);
      sub->Close();
      consumer.join();
      while (sub->Next(0).has_value()) {
        ++consumed;  // close-then-drain stragglers
      }

      EXPECT_EQ(Semantics(scenario, streamed), want)
          << entry.id << " jobs=" << jobs << ": events-on diverged from events-off";
      EXPECT_EQ(sub->dropped(), 0) << entry.id << " jobs=" << jobs;
      EXPECT_GT(consumed, 0) << entry.id << " jobs=" << jobs
                             << ": scoped diagnosis published no events";
      total_events += consumed;

      // SARIF is a pure function of (scenario, report): identical across the
      // on/off runs and across repeat invocations.
      EXPECT_EQ(tools::ReportToSarif(scenario, streamed), sarif_baseline)
          << entry.id << " jobs=" << jobs;
      EXPECT_EQ(tools::ReportToSarif(scenario, baseline), sarif_baseline)
          << entry.id << " jobs=" << jobs;
    }
  }
  // Sanity: the corpus exercised the event plane for real.
  EXPECT_GT(total_events, 0);
}

}  // namespace
}  // namespace aitia
