// Consistency checks over the scenario corpus itself: ground-truth metadata
// must reference real programs/globals, and the registry must expose the
// paper's exact table populations.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/bugs/registry.h"

namespace aitia {
namespace {

class MetadataTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MetadataTest, RacingGlobalsExistInTheImage) {
  BugScenario s = MakeScenario(GetParam());
  EXPECT_FALSE(s.truth.racing_globals.empty()) << s.id;
  for (const std::string& name : s.truth.racing_globals) {
    EXPECT_NE(s.image->FindGlobal(name), 0u) << s.id << " missing global " << name;
  }
}

TEST_P(MetadataTest, SliceProgramsAreValid) {
  BugScenario s = MakeScenario(GetParam());
  ASSERT_FALSE(s.slice.empty()) << s.id;
  EXPECT_LE(s.slice.size(), 3u) << s.id << ": slices hold at most three threads (§4.2)";
  for (const ThreadSpec& t : s.slice) {
    ASSERT_GE(t.prog, 0) << s.id;
    ASSERT_LT(static_cast<size_t>(t.prog), s.image->programs().size()) << s.id;
    EXPECT_FALSE(t.name.empty()) << s.id;
  }
  for (const ThreadSpec& t : s.setup) {
    ASSERT_LT(static_cast<size_t>(t.prog), s.image->programs().size()) << s.id;
  }
}

TEST_P(MetadataTest, ResourceVectorsAlignWithThreads) {
  BugScenario s = MakeScenario(GetParam());
  if (!s.slice_resources.empty()) {
    EXPECT_EQ(s.slice_resources.size(), s.slice.size()) << s.id;
  }
  if (!s.setup_resources.empty()) {
    EXPECT_EQ(s.setup_resources.size(), s.setup.size()) << s.id;
  }
}

TEST_P(MetadataTest, FlagsAreCoherent) {
  BugScenario s = MakeScenario(GetParam());
  if (s.truth.loosely_correlated) {
    EXPECT_TRUE(s.truth.multi_variable) << s.id << ": loose correlation implies multi-variable";
    EXPECT_FALSE(s.truth.muvi_assumption_holds)
        << s.id << ": loose correlation breaks MUVI's assumption";
  }
  if (s.truth.single_variable_pattern) {
    EXPECT_FALSE(s.truth.multi_variable)
        << s.id << ": single-variable patterns cannot express multi-variable bugs";
  }
  EXPECT_NE(s.truth.failure_type, FailureType::kNone) << s.id;
}

TEST_P(MetadataTest, EveryProgramEndsInControlFlow) {
  BugScenario s = MakeScenario(GetParam());
  for (const Program& p : s.image->programs()) {
    ASSERT_GT(p.size(), 0) << s.id << " " << p.name;
    Op last = p.code.back().op;
    EXPECT_TRUE(last == Op::kExit || last == Op::kRet || last == Op::kJmp)
        << s.id << " " << p.name;
  }
}

std::vector<std::string> AllIds() {
  std::vector<std::string> ids;
  for (const ScenarioEntry& e : AllScenarios()) {
    ids.emplace_back(e.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllBugs, MetadataTest, ::testing::ValuesIn(AllIds()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(RegistryTest, TablePopulationsMatchThePaper) {
  EXPECT_EQ(Table2Scenarios().size(), 10u);
  EXPECT_EQ(Table3Scenarios().size(), 12u);
  // 22 evaluated bugs + abstract figures + the IRQ extension.
  EXPECT_GE(AllScenarios().size(), 26u);
}

TEST(RegistryTest, Table3SplitsMatchSection52) {
  int multi = 0;
  int loose = 0;
  int single_pattern = 0;
  int muvi = 0;
  for (const ScenarioEntry& e : Table3Scenarios()) {
    BugScenario s = e.make();
    multi += s.truth.multi_variable ? 1 : 0;
    loose += s.truth.loosely_correlated ? 1 : 0;
    single_pattern += s.truth.single_variable_pattern ? 1 : 0;
    muvi += s.truth.muvi_assumption_holds ? 1 : 0;
  }
  EXPECT_EQ(multi, 6) << "six of twelve bugs have multi-variable races (§5.2)";
  EXPECT_EQ(loose, 3) << "three involve loosely-correlated variables (§5.2)";
  EXPECT_EQ(single_pattern, 6) << "pattern localization covers the other half (§5.3)";
  EXPECT_EQ(muvi, 3) << "MUVI's assumption holds for three bugs (§5.3)";
}

TEST(RegistryTest, IdsAreUnique) {
  std::set<std::string> ids;
  for (const ScenarioEntry& e : AllScenarios()) {
    EXPECT_TRUE(ids.insert(e.id).second) << "duplicate id " << e.id;
  }
}

TEST(RegistryTest, MakeScenarioRoundTripsEveryId) {
  for (const ScenarioEntry& e : AllScenarios()) {
    BugScenario s = MakeScenario(e.id);
    EXPECT_EQ(s.id, e.id);
    EXPECT_NE(s.image, nullptr);
  }
}

}  // namespace
}  // namespace aitia
