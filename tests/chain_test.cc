// Unit tests for causality-chain construction (src/core/chain).

#include <gtest/gtest.h>

#include "src/core/chain.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

// Builds a minimal image with annotated instructions so RaceLabel works.
KernelImage MakeImage() {
  KernelImage image;
  ProgramBuilder a("prog_a");
  a.Nop().Note("A1: first").Nop().Note("A2: second").Exit();
  image.AddProgram(a.Build());
  ProgramBuilder b("prog_b");
  b.Nop().Note("B1: first").Nop().Note("B2: second").Exit();
  image.AddProgram(b.Build());
  return image;
}

RacePair MakeRace(Pc a_pc, Pc b_pc, int64_t first_seq, int64_t second_seq) {
  RacePair race;
  race.first.di = {0, {0, a_pc}, 0};
  race.first.seq = first_seq;
  race.second.di = {1, {1, b_pc}, 0};
  race.second.seq = second_seq;
  return race;
}

Failure BugOnFailure() {
  Failure f;
  f.type = FailureType::kAssertViolation;
  return f;
}

TEST(ChainTest, LinearChainRendersInOrder) {
  KernelImage image = MakeImage();
  std::vector<RacePair> races = {MakeRace(0, 0, 0, 5), MakeRace(1, 1, 6, 9)};
  // Race 0's flip makes race 1 disappear.
  std::vector<std::vector<size_t>> disappears = {{1}, {}};
  CausalityChain chain =
      CausalityChain::Build(races, disappears, {false, false}, BugOnFailure());
  EXPECT_EQ(chain.race_count(), 2u);
  EXPECT_EQ(chain.nodes().size(), 2u);
  std::string text = chain.Render(image);
  EXPECT_LT(text.find("A1 => B1"), text.find("A2 => B2")) << text;
  EXPECT_NE(text.find("kernel BUG"), std::string::npos);
}

TEST(ChainTest, MutualDisappearanceFormsConjunction) {
  KernelImage image = MakeImage();
  std::vector<RacePair> races = {MakeRace(0, 0, 0, 5), MakeRace(1, 1, 1, 6),
                                 MakeRace(0, 1, 2, 9)};
  // Races 0 and 1 each make the other disappear; both steer race 2.
  std::vector<std::vector<size_t>> disappears = {{1, 2}, {0, 2}, {}};
  CausalityChain chain =
      CausalityChain::Build(races, disappears, {false, false, false}, BugOnFailure());
  ASSERT_EQ(chain.nodes().size(), 2u);
  EXPECT_EQ(chain.nodes()[0].races.size(), 2u);  // the conjunction
  EXPECT_EQ(chain.nodes()[1].races.size(), 1u);
  std::string text = chain.Render(image);
  EXPECT_NE(text.find(" ^ "), std::string::npos);
}

TEST(ChainTest, TransitiveEdgesReduced) {
  KernelImage image = MakeImage();
  std::vector<RacePair> races = {MakeRace(0, 0, 0, 3), MakeRace(1, 0, 4, 6),
                                 MakeRace(1, 1, 7, 9)};
  // 0 -> {1,2}, 1 -> {2}: the direct 0 -> 2 edge must be reduced away.
  std::vector<std::vector<size_t>> disappears = {{1, 2}, {2}, {}};
  CausalityChain chain =
      CausalityChain::Build(races, disappears, {false, false, false}, BugOnFailure());
  EXPECT_EQ(chain.nodes().size(), 3u);
  EXPECT_EQ(chain.edges().size(), 2u);
}

TEST(ChainTest, AmbiguousFlagSurfacesInNodeAndRender) {
  KernelImage image = MakeImage();
  std::vector<RacePair> races = {MakeRace(0, 0, 0, 5)};
  CausalityChain chain = CausalityChain::Build(races, {{}}, {true}, BugOnFailure());
  EXPECT_TRUE(chain.has_ambiguity());
  EXPECT_NE(chain.Render(image).find("[ambiguous]"), std::string::npos);
}

TEST(ChainTest, EmptyChainStillNamesFailure) {
  KernelImage image = MakeImage();
  CausalityChain chain = CausalityChain::Build({}, {}, {}, BugOnFailure());
  EXPECT_EQ(chain.race_count(), 0u);
  EXPECT_NE(chain.Render(image).find("kernel BUG"), std::string::npos);
}

TEST(ChainTest, RaceLabelUsesNoteTags) {
  KernelImage image = MakeImage();
  RacePair race = MakeRace(1, 0, 0, 1);
  EXPECT_EQ(RaceLabel(image, race), "A2 => B1");
}

TEST(ChainTest, RaceLabelFallsBackToProgramOffset) {
  KernelImage image;
  ProgramBuilder p("raw");
  p.Nop().Exit();  // no notes
  image.AddProgram(p.Build());
  RacePair race;
  race.first.di = {0, {0, 0}, 0};
  race.second.di = {0, {0, 1}, 0};
  std::string label = RaceLabel(image, race);
  EXPECT_NE(label.find("raw+0"), std::string::npos);
}

TEST(ChainTest, CsPairLabelMarked) {
  KernelImage image = MakeImage();
  RacePair race = MakeRace(0, 0, 0, 1);
  race.cs_pair = true;
  EXPECT_NE(RaceLabel(image, race).find("cs{"), std::string::npos);
}

}  // namespace
}  // namespace aitia
