// Strict JSON well-formedness checker for tests.
//
// A minimal recursive-descent validator of RFC 8259 grammar: objects,
// arrays, strings (with full escape checking — raw control characters and
// bad \u sequences are rejected), numbers, and literals. Used to assert
// that ReportToJson emits genuinely parseable JSON instead of relying on
// substring matching and brace counting.

#ifndef TESTS_JSON_CHECKER_H_
#define TESTS_JSON_CHECKER_H_

#include <cctype>
#include <string>
#include <string_view>

namespace aitia {
namespace testing_json {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  // True if `text` is exactly one valid JSON value (plus whitespace).
  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing data after top-level value");
    }
    return true;
  }

  // Human-readable reason of the first failure ("" when valid).
  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (!Eat('"')) {
      return Fail("expected string");
    }
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return Fail("dangling escape");
        }
        const char e = text_[pos_];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' || e == 'n' ||
            e == 'r' || e == 't') {
          ++pos_;
          continue;
        }
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
          continue;
        }
        return Fail("unknown escape");
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const size_t start = pos_;
    Eat('-');
    if (!std::isdigit(Cur())) {
      return Fail("bad number");
    }
    if (Eat('0')) {
      // no leading zeros
    } else {
      while (std::isdigit(Cur())) ++pos_;
    }
    if (Eat('.')) {
      if (!std::isdigit(Cur())) {
        return Fail("bad fraction");
      }
      while (std::isdigit(Cur())) ++pos_;
    }
    if (Cur() == 'e' || Cur() == 'E') {
      ++pos_;
      if (Cur() == '+' || Cur() == '-') ++pos_;
      if (!std::isdigit(Cur())) {
        return Fail("bad exponent");
      }
      while (std::isdigit(Cur())) ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    if (depth_ > 64) {
      return Fail("nesting too deep");
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }

  bool Object() {
    ++depth_;
    Eat('{');
    SkipWs();
    if (Eat('}')) {
      --depth_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        return Fail("expected ':'");
      }
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat('}')) {
        --depth_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array() {
    ++depth_;
    Eat('[');
    SkipWs();
    if (Eat(']')) {
      --depth_;
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat(']')) {
        --depth_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  unsigned char Cur() const {
    return pos_ < text_.size() ? static_cast<unsigned char>(text_[pos_]) : 0;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

inline bool IsValidJson(std::string_view text, std::string* why = nullptr) {
  JsonChecker checker(text);
  const bool ok = checker.Valid();
  if (!ok && why != nullptr) {
    *why = checker.error();
  }
  return ok;
}

}  // namespace testing_json
}  // namespace aitia

#endif  // TESTS_JSON_CHECKER_H_
