// Unit tests for execution-history modeling and slicing (src/trace).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/trace/slicer.h"

namespace aitia {
namespace {

HistoryEntry Enter(int64_t ts, int32_t task, const char* name, ProgramId prog,
                   const char* resource = "") {
  HistoryEntry e;
  e.timestamp = ts;
  e.kind = HistoryKind::kSyscallEnter;
  e.task = task;
  e.name = name;
  e.prog = prog;
  e.resource = resource;
  return e;
}

HistoryEntry Exit(int64_t ts, int32_t task) {
  HistoryEntry e;
  e.timestamp = ts;
  e.kind = HistoryKind::kSyscallExit;
  e.task = task;
  return e;
}

HistoryEntry BgInvoke(int64_t ts, int32_t task, int32_t source, const char* name,
                      ProgramId prog) {
  HistoryEntry e;
  e.timestamp = ts;
  e.kind = HistoryKind::kBgInvoke;
  e.task = task;
  e.source_task = source;
  e.name = name;
  e.prog = prog;
  e.thread_kind = ThreadKind::kKworker;
  return e;
}

FailureInfo FailAt(int64_t ts, int32_t task) {
  FailureInfo info;
  info.failure.type = FailureType::kNullDeref;
  info.failure.tid = task;
  info.timestamp = ts;
  info.task = task;
  return info;
}

TEST(SlicerTest, ConcurrentSyscallsGroupTogether) {
  ExecutionHistory history;
  history.entries = {Enter(0, 0, "write", 0), Enter(5, 1, "close", 1), Exit(10, 0),
                     Exit(12, 1)};
  history.failure = FailAt(9, 0);
  std::vector<Slice> slices = BuildSlices(history);
  ASSERT_FALSE(slices.empty());
  EXPECT_EQ(slices[0].threads.size(), 2u);
}

TEST(SlicerTest, NonOverlappingSyscallsDoNotGroup) {
  ExecutionHistory history;
  history.entries = {Enter(0, 0, "a", 0), Exit(5, 0), Enter(10, 1, "b", 1), Exit(15, 1)};
  history.failure = FailAt(14, 1);
  std::vector<Slice> slices = BuildSlices(history);
  for (const Slice& s : slices) {
    EXPECT_EQ(s.threads.size(), 1u);
  }
}

TEST(SlicerTest, SliceCappedAtThreeThreads) {
  ExecutionHistory history;
  for (int32_t t = 0; t < 5; ++t) {
    history.entries.push_back(Enter(t, t, "s", t));
  }
  for (int32_t t = 0; t < 5; ++t) {
    history.entries.push_back(Exit(100 + t, t));
  }
  history.failure = FailAt(50, 0);
  for (const Slice& s : BuildSlices(history)) {
    EXPECT_LE(s.threads.size(), 3u);
  }
}

TEST(SlicerTest, FaultingTaskSlicesComeFirst) {
  ExecutionHistory history;
  history.entries = {Enter(0, 0, "victim", 0), Enter(1, 1, "peer", 1), Exit(20, 1)};
  history.failure = FailAt(10, 0);
  std::vector<Slice> slices = BuildSlices(history);
  ASSERT_FALSE(slices.empty());
  bool found = false;
  for (int32_t t : slices[0].tasks) {
    found = found || t == 0;
  }
  EXPECT_TRUE(found);
}

TEST(SlicerTest, ResourceClosurePullsSetupSyscalls) {
  ExecutionHistory history;
  history.entries = {Enter(-10, 7, "open", 3, "fd3"), Exit(-9, 7),
                     Enter(0, 0, "write", 0, "fd3"), Enter(1, 1, "close", 1, "fd3"),
                     Exit(10, 0), Exit(11, 1)};
  history.failure = FailAt(9, 0);
  std::vector<Slice> slices = BuildSlices(history);
  ASSERT_FALSE(slices.empty());
  const Slice& best = slices[0];
  ASSERT_EQ(best.setup.size(), 1u);
  EXPECT_EQ(best.setup[0].name, "open");
  EXPECT_EQ(best.setup[0].prog, 3);
}

TEST(SlicerTest, SpawnedBgThreadNotStartedWhenSourceInSlice) {
  ExecutionHistory history;
  history.entries = {Enter(0, 0, "ioctl", 0), BgInvoke(5, 2, /*source=*/0, "kworker", 9),
                     Enter(1, 1, "close", 1), Exit(20, 1), Exit(21, 0)};
  history.failure = FailAt(18, 0);
  std::vector<Slice> slices = BuildSlices(history);
  ASSERT_FALSE(slices.empty());
  // The best slice covers tasks {0,1,2}, but only starts the two syscalls —
  // the kworker is respawned by its source at runtime.
  const Slice& best = slices[0];
  EXPECT_EQ(best.threads.size(), 2u);
  for (const ThreadSpec& t : best.threads) {
    EXPECT_EQ(t.kind, ThreadKind::kSyscall);
  }
}

TEST(SlicerTest, OrphanBgThreadIsStarted) {
  ExecutionHistory history;
  // Source task 9 exited long before; the kworker must be started directly.
  history.entries = {Enter(-20, 9, "setup", 5), Exit(-19, 9),
                     BgInvoke(0, 2, /*source=*/9, "kworker", 7), Enter(1, 0, "read", 0),
                     Exit(30, 0)};
  history.failure = FailAt(25, 0);
  std::vector<Slice> slices = BuildSlices(history);
  bool kworker_started = false;
  for (const Slice& s : slices) {
    for (const ThreadSpec& t : s.threads) {
      if (t.kind == ThreadKind::kKworker) {
        kworker_started = true;
      }
    }
  }
  EXPECT_TRUE(kworker_started);
}

TEST(SlicerTest, OpenIntervalOverlapsEverythingAfterIt) {
  ExecutionHistory history;
  // Task 0 never exits (it faulted); task 1 starts much later.
  history.entries = {Enter(0, 0, "stuck", 0), Enter(1000, 1, "late", 1), Exit(1010, 1)};
  history.failure = FailAt(1005, 0);
  std::vector<Slice> slices = BuildSlices(history);
  ASSERT_FALSE(slices.empty());
  EXPECT_EQ(slices[0].threads.size(), 2u);
}

TEST(SlicerTest, DuplicateTaskSetsDeduplicated) {
  ExecutionHistory history;
  history.entries = {Enter(0, 0, "a", 0), Enter(1, 1, "b", 1), Exit(10, 0), Exit(11, 1)};
  history.failure = FailAt(9, 0);
  std::vector<Slice> slices = BuildSlices(history);
  std::set<std::vector<int32_t>> seen;
  for (const Slice& s : slices) {
    std::vector<int32_t> tasks = s.tasks;
    std::sort(tasks.begin(), tasks.end());
    EXPECT_TRUE(seen.insert(tasks).second) << "duplicate slice task set";
  }
}

TEST(SlicerTest, DescribeMentionsThreadsAndSetup) {
  Slice slice;
  slice.threads = {{"write", 0, 0, ThreadKind::kSyscall}};
  slice.setup = {{"open", 1, 0, ThreadKind::kSyscall}};
  std::string text = slice.Describe();
  EXPECT_NE(text.find("write"), std::string::npos);
  EXPECT_NE(text.find("open"), std::string::npos);
}

}  // namespace
}  // namespace aitia
