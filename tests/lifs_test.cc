// Unit tests for Least Interleaving First Search (src/core/lifs).

#include <gtest/gtest.h>

#include "src/bugs/registry.h"
#include "src/core/lifs.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

LifsResult RunLifs(const BugScenario& s, LifsOptions options = {}) {
  if (!options.target.has_value() && !options.target_type.has_value()) {
    options.target_type = s.truth.failure_type;
  }
  Lifs lifs(s.image.get(), s.slice, s.setup, options);
  return lifs.Run();
}

TEST(LifsTest, SequentialFailureFoundAtCountZero) {
  BugScenario s = MakeScenario("fig-7");
  LifsResult r = RunLifs(s);
  ASSERT_TRUE(r.reproduced);
  EXPECT_EQ(r.interleaving_count, 0);
  // Both serial orders were at most tried.
  EXPECT_LE(r.schedules_executed, 2);
}

TEST(LifsTest, SinglePreemptionFailureFoundAtCountOne) {
  BugScenario s = MakeScenario("fig-1");
  LifsResult r = RunLifs(s);
  ASSERT_TRUE(r.reproduced);
  EXPECT_EQ(r.interleaving_count, 1);
  EXPECT_EQ(r.failing_schedule.points.size(), 1u);
}

TEST(LifsTest, TwoPreemptionFailureFoundAtCountTwo) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  LifsResult r = RunLifs(s);
  ASSERT_TRUE(r.reproduced);
  EXPECT_EQ(r.interleaving_count, 2);
  EXPECT_EQ(r.failing_schedule.points.size(), 2u);
}

TEST(LifsTest, FailingTraceEndsAtTheFailure) {
  BugScenario s = MakeScenario("fig-1");
  LifsResult r = RunLifs(s);
  ASSERT_TRUE(r.reproduced);
  ASSERT_TRUE(r.failing_run.failure.has_value());
  EXPECT_EQ(r.failing_run.failure->seq, r.failing_run.trace.back().seq);
}

TEST(LifsTest, TargetTypeMismatchKeepsSearching) {
  BugScenario s = MakeScenario("fig-1");
  LifsOptions options;
  options.target_type = FailureType::kDoubleFree;  // never happens here
  options.max_schedules = 200;
  LifsResult r = RunLifs(s, options);
  EXPECT_FALSE(r.reproduced);
  EXPECT_GT(r.schedules_executed, 2);
}

TEST(LifsTest, ExactTargetSymptomMatching) {
  BugScenario s = MakeScenario("fig-1");
  LifsResult first = RunLifs(s);
  ASSERT_TRUE(first.reproduced);
  LifsOptions options;
  options.target = first.failure;
  LifsResult second = RunLifs(s, options);
  ASSERT_TRUE(second.reproduced);
  EXPECT_TRUE(SameSymptom(*first.failure, *second.failure));
}

TEST(LifsTest, MaxSchedulesBudgetRespected) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  LifsOptions options;
  options.target_type = s.truth.failure_type;
  options.max_schedules = 5;  // far too few for the k=2 bug
  LifsResult r = RunLifs(s, options);
  EXPECT_FALSE(r.reproduced);
  EXPECT_LE(r.schedules_executed, 5);
}

TEST(LifsTest, DporOffStillReproduces) {
  BugScenario s = MakeScenario("fig-5");
  LifsOptions options;
  options.dpor_pruning = false;
  LifsResult r = RunLifs(s, options);
  EXPECT_TRUE(r.reproduced);
  EXPECT_EQ(r.interleaving_count, 1);
}

TEST(LifsTest, DporPrunesSchedules) {
  // fig-5 has a non-conflicting access (the pointee dereference), which the
  // conflict restriction prunes as a preemption candidate.
  BugScenario s = MakeScenario("fig-5");
  LifsResult with = RunLifs(s);
  LifsOptions off;
  off.dpor_pruning = false;
  LifsResult without = RunLifs(s, off);
  ASSERT_TRUE(with.reproduced);
  ASSERT_TRUE(without.reproduced);
  EXPECT_LE(with.schedules_executed, without.schedules_executed);
  EXPECT_GT(with.schedules_pruned, 0);
}

TEST(LifsTest, RacesExtractedFromFailingRun) {
  BugScenario s = MakeScenario("fig-1");
  LifsResult r = RunLifs(s);
  ASSERT_TRUE(r.reproduced);
  EXPECT_GE(r.races.races.size(), 2u);  // the two real races + benign pairs
}

TEST(LifsTest, PhantomRacesReferenceUnexecutedInstructions) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  LifsResult r = RunLifs(s);
  ASSERT_TRUE(r.reproduced);
  ASSERT_FALSE(r.phantom_races.empty());
  for (const RacePair& p : r.phantom_races) {
    // The phantom side never retired in the failing run.
    for (const ExecEvent& e : r.failing_run.trace) {
      EXPECT_FALSE(e.di == p.second.di);
    }
    // But the executed side did.
    bool executed = false;
    for (const ExecEvent& e : r.failing_run.trace) {
      executed = executed || e.di == p.first.di;
    }
    EXPECT_TRUE(executed);
  }
}

TEST(LifsTest, ReferenceStreamsComeFromCleanCompleteRuns) {
  BugScenario s = MakeScenario("fig-1");
  LifsResult r = RunLifs(s);
  ASSERT_TRUE(r.reproduced);
  ASSERT_FALSE(r.reference_streams.empty());
  for (const auto& [tid, stream] : r.reference_streams) {
    ASSERT_FALSE(stream.empty());
    for (const ExecEvent& e : stream) {
      EXPECT_EQ(e.di.tid, tid);
    }
  }
}

TEST(LifsTest, DeterministicAcrossRuns) {
  BugScenario s = MakeScenario("syz-02");
  LifsResult a = RunLifs(s);
  LifsResult b = RunLifs(s);
  ASSERT_TRUE(a.reproduced);
  ASSERT_TRUE(b.reproduced);
  EXPECT_EQ(a.schedules_executed, b.schedules_executed);
  EXPECT_EQ(a.interleaving_count, b.interleaving_count);
  ASSERT_EQ(a.failing_run.trace.size(), b.failing_run.trace.size());
  for (size_t i = 0; i < a.failing_run.trace.size(); ++i) {
    EXPECT_EQ(a.failing_run.trace[i].di, b.failing_run.trace[i].di);
  }
}

TEST(LifsTest, ExploredSchedulesRecordedOnDemand) {
  BugScenario s = MakeScenario("fig-1");
  LifsOptions options;
  options.keep_explored = true;
  LifsResult r = RunLifs(s, options);
  ASSERT_TRUE(r.reproduced);
  EXPECT_EQ(static_cast<int64_t>(r.explored.size()), r.schedules_executed);
  EXPECT_TRUE(r.explored.back().matched);
}

TEST(LifsTest, NoFailureScenarioExhaustsSearch) {
  // Race-free two-thread image: LIFS must terminate without reproduction.
  auto image = std::make_shared<KernelImage>();
  Addr a = image->AddGlobal("a", 0);
  Addr b = image->AddGlobal("b", 0);
  {
    ProgramBuilder p("wa");
    p.Lea(R1, a).StoreImm(R1, 1).Exit();
    image->AddProgram(p.Build());
  }
  {
    ProgramBuilder p("wb");
    p.Lea(R1, b).StoreImm(R1, 1).Exit();
    image->AddProgram(p.Build());
  }
  std::vector<ThreadSpec> slice = {{"a", 0, 0, ThreadKind::kSyscall},
                                   {"b", 1, 0, ThreadKind::kSyscall}};
  LifsOptions options;
  options.max_interleavings = 2;
  Lifs lifs(image.get(), slice, {}, options);
  LifsResult r = lifs.Run();
  EXPECT_FALSE(r.reproduced);
  // Only the two serial orders execute: nothing conflicts, so every deeper
  // schedule is pruned.
  EXPECT_EQ(r.schedules_executed, 2);
}

}  // namespace
}  // namespace aitia
