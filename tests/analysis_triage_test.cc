// Unit tests for the static race triage pipeline (src/analysis/triage).
//
// Each stage is exercised on purpose-built two/three-thread runs: the cases a
// stage must discharge (silent store pair, dead store, dead read, phantom of
// a never-created thread, critical-section pair) and — more importantly — the
// adversarial near-misses it must NOT discharge (a later reader of the cell,
// a live destination register, a pre-value only "known" from the global's
// static initializer, a base-slice phantom thread). The corpus-wide
// on/off×workers guarantee lives in prefilter_differential_test; these tests
// pin down each stage's individual proof obligations.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/races.h"
#include "src/analysis/triage.h"
#include "src/sim/builder.h"
#include "src/sim/kernel.h"
#include "src/sim/policy.h"

namespace aitia {
namespace analysis {
namespace {

// A synthetic run plus everything a TriageContext borrows from it.
struct Fixture {
  std::unique_ptr<KernelImage> image;
  RunResult run;
  RaceAnalysis races;

  TriageContext Context() const {
    return TriageContext(image.get(), &run, /*irq_threads=*/nullptr);
  }
};

// Globals shared by the synthetic programs.
struct Cells {
  Addr g = 0;     // the raced-on cell
  Addr lock = 0;  // a lock, for critical-section shapes
};

// Builds `threads` programs via `build(cells, builder, index)`, runs them
// sequentially (thread 0 to completion, then thread 1, ...) and extracts the
// races of the resulting trace.
template <typename BuildFn>
Fixture RunThreads(int threads, BuildFn build) {
  Fixture f;
  f.image = std::make_unique<KernelImage>();
  Cells cells;
  cells.g = f.image->AddGlobal("g", 0);
  cells.lock = f.image->AddGlobal("lock", 0);
  std::vector<ThreadSpec> specs;
  for (int i = 0; i < threads; ++i) {
    ProgramBuilder b("prog" + std::to_string(i));
    build(cells, b, i);
    f.image->AddProgram(b.Build());
    specs.push_back({"t" + std::to_string(i), static_cast<ProgramId>(i), 0,
                     ThreadKind::kSyscall});
  }
  KernelSim kernel(f.image.get(), specs);
  std::vector<ThreadId> order;
  for (int i = 0; i < threads; ++i) {
    order.push_back(i);
  }
  SeqPolicy policy(order);
  f.run = RunToCompletion(kernel, policy);
  f.races = ExtractRaces(f.run);
  return f;
}

TriageDecision Triage(const Fixture& f, const RacePair& race, bool phantom = false) {
  TriageContext ctx = f.Context();
  return RunTriage(DefaultTriagePipeline(), ctx, {race, phantom});
}

// --- hb stage -------------------------------------------------------------

TEST(HbStageTest, SilentStorePairIsProvablyBenign) {
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int) {
    Addr g = c.g;
    b.Lea(R1, g).StoreImm(R1, 7).Exit();
  });
  ASSERT_EQ(f.races.races.size(), 1u);
  TriageDecision d = Triage(f, f.races.races[0]);
  EXPECT_EQ(d.verdict, TriageVerdict::kProvablyBenign);
  EXPECT_EQ(d.stage, "hb");
  EXPECT_NE(d.reason.find("silent store"), std::string::npos) << d.reason;
}

TEST(HbStageTest, DeadStoreOfDifferentValueIsProvablyBenign) {
  // T0 writes 1, T1 writes 2, and nothing ever reads the cell again: the
  // earlier store's value is unobservable in either order.
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int i) {
    Addr g = c.g;
    b.Lea(R1, g).StoreImm(R1, i + 1).Exit();
  });
  ASSERT_EQ(f.races.races.size(), 1u);
  TriageDecision d = Triage(f, f.races.races[0]);
  EXPECT_EQ(d.verdict, TriageVerdict::kProvablyBenign);
  EXPECT_EQ(d.stage, "hb");
  EXPECT_NE(d.reason.find("dead store"), std::string::npos) << d.reason;
}

TEST(HbStageTest, DeadStoreWithLaterReaderAbstains) {
  // Same write-write shape, but T1 re-reads the cell afterwards: the flipped
  // order changes which value the reader might observe, so no static proof.
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int i) {
    Addr g = c.g;
    b.Lea(R1, g).StoreImm(R1, i + 1);
    if (i == 1) {
      b.Load(R2, R1);
    }
    b.Exit();
  });
  ASSERT_GE(f.races.races.size(), 1u);
  for (const RacePair& r : f.races.races) {
    if (r.first.is_write && r.second.is_write) {
      TriageDecision d = Triage(f, r);
      EXPECT_EQ(d.verdict, TriageVerdict::kUnknown) << d.reason;
    }
  }
}

TEST(HbStageTest, DeadReadIsProvablyBenign) {
  // T1's load lands in R2, which is clobbered before any use: whatever value
  // the flip makes it read is never consumed.
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int i) {
    Addr g = c.g;
    b.Lea(R1, g);
    if (i == 0) {
      b.StoreImm(R1, 1);
    } else {
      b.Load(R2, R1).MovImm(R2, 0);
    }
    b.Exit();
  });
  ASSERT_EQ(f.races.races.size(), 1u);
  TriageDecision d = Triage(f, f.races.races[0]);
  EXPECT_EQ(d.verdict, TriageVerdict::kProvablyBenign);
  EXPECT_EQ(d.stage, "hb");
  EXPECT_NE(d.reason.find("dead"), std::string::npos) << d.reason;
}

TEST(HbStageTest, LiveReadAbstains) {
  // Identical shape, but the loaded register feeds a branch: the value is
  // live, the flip could change control flow, the stage must abstain.
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int i) {
    Addr g = c.g;
    b.Lea(R1, g);
    if (i == 0) {
      b.StoreImm(R1, 1);
    } else {
      b.Load(R2, R1).Label("skip").Bnez(R2, "skip2").Label("skip2");
    }
    b.Exit();
  });
  ASSERT_EQ(f.races.races.size(), 1u);
  TriageDecision d = Triage(f, f.races.races[0]);
  EXPECT_EQ(d.verdict, TriageVerdict::kUnknown) << d.reason;
}

TEST(HbStageTest, StoreOfInitialValueIsNotProvenSilent) {
  // Regression test for the base-slice pre-value hole (CVE-2017-2671's
  // shape): g's *static* initializer is 0 and T0 stores 0, but nothing in
  // the trace proves the cell still held 0 when the trace began — setup code
  // or a base slice may have rewritten it without leaving an event. The
  // store must not be discharged as "already silent".
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int i) {
    Addr g = c.g;
    b.Lea(R1, g);
    if (i == 0) {
      b.StoreImm(R1, 0);
    } else {
      b.Load(R2, R1).Label("l").Bnez(R2, "l2").Label("l2");
    }
    b.Exit();
  });
  ASSERT_EQ(f.races.races.size(), 1u);
  TriageDecision d = Triage(f, f.races.races[0]);
  EXPECT_EQ(d.verdict, TriageVerdict::kUnknown) << d.reason;
}

// --- lockset stage --------------------------------------------------------

TEST(LocksetStageTest, CommonLockPairIsCriticalSectionUnit) {
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int) {
    Addr lock = c.lock;
    Addr g = c.g;
    b.Lea(R1, lock).Lock(R1).Lea(R2, g).StoreImm(R2, 1).Unlock(R1).Exit();
  });
  ASSERT_EQ(f.races.cs_pairs.size(), 1u);
  TriageDecision d = Triage(f, f.races.cs_pairs[0]);
  EXPECT_EQ(d.verdict, TriageVerdict::kCriticalSectionUnit);
  EXPECT_EQ(d.stage, "lockset");
  EXPECT_NE(d.reason.find("lock"), std::string::npos) << d.reason;
}

// --- mhp stage ------------------------------------------------------------

TEST(MhpStageTest, PhantomOfNeverCreatedThreadIsProvablyBenign) {
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int) {
    Addr g = c.g;
    b.Lea(R1, g).StoreImm(R1, 1).Exit();
  });
  ASSERT_EQ(f.races.races.size(), 1u);
  RacePair ghost = f.races.races[0];
  ghost.second.di.tid = 99;  // no such thread ever existed in this run
  TriageDecision d = Triage(f, ghost, /*phantom=*/true);
  EXPECT_EQ(d.verdict, TriageVerdict::kProvablyBenign);
  EXPECT_EQ(d.stage, "mhp");
  EXPECT_NE(d.reason.find("never"), std::string::npos) << d.reason;
}

TEST(MhpStageTest, PhantomSpawnedAfterFirstSideIsProvablyBenign) {
  // T0 stores g, then queue_work()s a kworker: the kworker cannot exist
  // before the store it is supposed to be spliced ahead of.
  Fixture f;
  f.image = std::make_unique<KernelImage>();
  Addr g = f.image->AddGlobal("g", 0);
  ProgramBuilder worker("kworker");
  worker.Lea(R1, g).StoreImm(R1, 2).Exit();
  ProgramId worker_id = f.image->AddProgram(worker.Build());
  ProgramBuilder main("main");
  main.Lea(R1, g).StoreImm(R1, 1).QueueWork(worker_id, R1).Exit();
  ProgramId main_id = f.image->AddProgram(main.Build());
  KernelSim kernel(f.image.get(), {{"t0", main_id, 0, ThreadKind::kSyscall}});
  SeqPolicy policy({0});
  f.run = RunToCompletion(kernel, policy);
  f.races = ExtractRaces(f.run);
  ASSERT_EQ(f.run.spawns.size(), 1u);
  const SpawnEdge& spawn = f.run.spawns[0];

  // Phantom candidate: the kworker's store spliced before T0's store, which
  // retired before the queue_work that creates the kworker.
  RacePair ghost;
  for (const ExecEvent& e : f.run.trace) {
    if (e.is_write && e.di.tid == 0 && e.seq < spawn.seq) {
      ghost.first = e;
    }
    if (e.is_write && e.di.tid == spawn.child) {
      ghost.second = e;
    }
  }
  ASSERT_TRUE(ghost.first.is_write);
  ASSERT_TRUE(ghost.second.is_write);
  TriageDecision d = Triage(f, ghost, /*phantom=*/true);
  EXPECT_EQ(d.verdict, TriageVerdict::kProvablyBenign);
  EXPECT_EQ(d.stage, "mhp");
  EXPECT_NE(d.reason.find("spawned"), std::string::npos) << d.reason;
}

TEST(MhpStageTest, PhantomOfBaseSliceThreadAbstains) {
  // Both threads exist from the start of the run: whether the phantom's
  // thread reaches the splice point is a dynamic question (divergence,
  // branch outcomes), so no static discharge.
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int) {
    Addr g = c.g;
    b.Lea(R1, g).StoreImm(R1, 1).Exit();
  });
  ASSERT_EQ(f.races.races.size(), 1u);
  TriageDecision d = Triage(f, f.races.races[0], /*phantom=*/true);
  EXPECT_EQ(d.verdict, TriageVerdict::kUnknown) << d.reason;
}

// --- pipeline plumbing ----------------------------------------------------

TEST(TriagePipelineTest, DefaultPipelineStagesAndOrder) {
  TriagePipeline p = DefaultTriagePipeline();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_STREQ(p[0]->name(), "hb");
  EXPECT_STREQ(p[1]->name(), "lockset");
  EXPECT_STREQ(p[2]->name(), "mhp");
}

TEST(TriagePipelineTest, SpecParsing) {
  StatusOr<TriagePipeline> all = TriagePipelineFromSpec("hb,lockset,mhp");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 3u);

  StatusOr<TriagePipeline> reordered = TriagePipelineFromSpec("mhp,hb");
  ASSERT_TRUE(reordered.ok());
  ASSERT_EQ(reordered->size(), 2u);
  EXPECT_STREQ((*reordered)[0]->name(), "mhp");
  EXPECT_STREQ((*reordered)[1]->name(), "hb");

  StatusOr<TriagePipeline> empty = TriagePipelineFromSpec("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  StatusOr<TriagePipeline> none = TriagePipelineFromSpec("none");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  EXPECT_FALSE(TriagePipelineFromSpec("bogus").ok());
  EXPECT_FALSE(TriagePipelineFromSpec("hb,hb").ok());
  EXPECT_FALSE(TriagePipelineFromSpec("hb,,mhp").ok());
}

TEST(TriagePipelineTest, EmptyPipelineAbstains) {
  Fixture f = RunThreads(2, [](const Cells& c, ProgramBuilder& b, int) {
    Addr g = c.g;
    b.Lea(R1, g).StoreImm(R1, 7).Exit();
  });
  ASSERT_EQ(f.races.races.size(), 1u);
  TriageContext ctx = f.Context();
  TriageDecision d = RunTriage({}, ctx, {f.races.races[0], false});
  EXPECT_EQ(d.verdict, TriageVerdict::kUnknown);
  EXPECT_TRUE(d.stage.empty());
}

TEST(TriagePipelineTest, VerdictNames) {
  EXPECT_STREQ(TriageVerdictName(TriageVerdict::kMustFlip), "must-flip");
  EXPECT_STREQ(TriageVerdictName(TriageVerdict::kProvablyBenign), "provably-benign");
  EXPECT_STREQ(TriageVerdictName(TriageVerdict::kCriticalSectionUnit),
               "critical-section-unit");
  EXPECT_STREQ(TriageVerdictName(TriageVerdict::kUnknown), "unknown");
}

}  // namespace
}  // namespace analysis
}  // namespace aitia
