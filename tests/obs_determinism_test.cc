// Observability is pure read-side (DESIGN.md §10): enabling the tracer and
// the metrics registry must not perturb the diagnosis. Asserted corpus-wide:
// for every bundled scenario, the winner schedule, explored order, race
// verdicts, and causality chain are bit-identical with tracing OFF and ON
// (with a deliberately tiny ring, so the drop path runs too), at workers=1
// and workers=4.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/core/chain.h"
#include "src/obs/trace.h"

namespace aitia {
namespace {

// Everything the determinism contract pins down, flattened to one comparable
// string. Timing, budgets, and metrics are excluded: wall-clock varies and
// parallel budgets may include speculative overshoot.
std::string Signature(const BugScenario& s, const AitiaReport& report) {
  std::ostringstream out;
  out << "diagnosed=" << report.diagnosed << " reproduced=" << report.lifs.reproduced
      << " k=" << report.lifs.interleaving_count
      << " executed=" << report.lifs.schedules_executed
      << " pruned=" << report.lifs.schedules_pruned << "\n";
  out << "schedule=" << report.lifs.failing_schedule.ToString() << "\n";
  for (const ExploredSchedule& es : report.lifs.explored) {
    out << "explored " << es.schedule.ToString() << " k=" << es.interleavings
        << " failed=" << es.failed << " matched=" << es.matched
        << " equiv=" << es.equivalent_to_earlier << "\n";
  }
  for (const TestedRace& t : report.causality.tested) {
    out << "verdict " << RaceLabel(*s.image, t.race) << " = "
        << RaceVerdictName(t.verdict) << " phantom=" << t.phantom << "\n";
  }
  if (report.diagnosed) {
    out << "chain " << report.causality.chain.Render(*s.image) << "\n";
  }
  return out.str();
}

std::string Diagnose(const BugScenario& s, size_t workers, bool traced) {
  if (traced) {
    // 512 events is far below what a diagnosis emits: the ring fills and the
    // drop path runs, which must be just as invisible to the pipeline.
    obs::Tracer::Global().Start(512);
  }
  AitiaOptions options;
  options.lifs.keep_explored = true;
  options.lifs.workers = workers;
  options.causality.workers = workers;
  AitiaReport report = DiagnoseScenario(s, options);
  if (traced) {
    obs::Tracer::Global().Stop();
  }
  return Signature(s, report);
}

TEST(ObsDeterminismTest, TracingOnOffIsBitIdenticalCorpusWide) {
  for (const ScenarioEntry& entry : AllScenarios()) {
    SCOPED_TRACE(entry.id);
    const BugScenario s = entry.make();
    const std::string baseline = Diagnose(s, /*workers=*/1, /*traced=*/false);
    EXPECT_EQ(Diagnose(s, 1, true), baseline) << entry.id << ": tracing changed the result";
    EXPECT_EQ(Diagnose(s, 4, false), baseline)
        << entry.id << ": workers=4 diverged from serial";
    EXPECT_EQ(Diagnose(s, 4, true), baseline)
        << entry.id << ": workers=4 + tracing diverged";
  }
}

}  // namespace
}  // namespace aitia
