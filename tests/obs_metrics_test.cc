// Tests for the metrics registry (src/obs/metrics): shard merging under a
// thread pool, histogram bucket edges, snapshot-while-writing safety, deltas,
// and JSON/text serialization.
//
// The registry under test is the process-wide Global() instance — the same
// one the pipeline reports into — so every test uses names under a unique
// "test." prefix and asserts via Delta() rather than absolute values.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"
#include "tests/json_checker.h"

namespace aitia {
namespace obs {
namespace {

TEST(MetricsCounterTest, AddAndValue) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.basic");
  const int64_t base = c->Value();
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), base + 42);
}

TEST(MetricsCounterTest, SameNameSameInstrument) {
  auto& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("test.counter.alias"), reg.GetCounter("test.counter.alias"));
  EXPECT_NE(reg.GetCounter("test.counter.alias"), reg.GetCounter("test.counter.other"));
}

TEST(MetricsCounterTest, ShardMergeUnderThreadPool) {
  // N threads x M increments must merge to exactly N*M: no lost updates
  // across shards, no double counting in the snapshot merge.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.sharded");
  const int64_t base = c->Value();
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([c] {
        for (int i = 0; i < kPerThread; ++i) {
          c->Increment();
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(c->Value(), base + int64_t{kThreads} * kPerThread);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().counter("test.counter.sharded"),
            base + int64_t{kThreads} * kPerThread);
}

TEST(MetricsGaugeTest, SetAndAdd) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge.basic");
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
}

TEST(MetricsHistogramTest, BucketEdgesAreUpperBoundsInclusive) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test.histo.edges", {10, 20});
  const MetricsSnapshot before = reg.Snapshot();
  h->Record(-5);  // below everything -> first bucket
  h->Record(0);
  h->Record(10);  // on the edge -> still the first bucket (v <= 10)
  h->Record(11);
  h->Record(20);
  h->Record(21);  // past the last bound -> overflow
  const MetricsSnapshot delta = reg.Snapshot().Delta(before);
  const HistogramSnapshot& hs = delta.histograms.at("test.histo.edges");
  ASSERT_EQ(hs.bounds, (std::vector<int64_t>{10, 20}));
  ASSERT_EQ(hs.buckets.size(), 3u);
  EXPECT_EQ(hs.buckets[0], 3);  // -5, 0, 10
  EXPECT_EQ(hs.buckets[1], 2);  // 11, 20
  EXPECT_EQ(hs.buckets[2], 1);  // 21
  EXPECT_EQ(hs.count, 6);
  EXPECT_EQ(hs.sum, -5 + 0 + 10 + 11 + 20 + 21);
}

TEST(MetricsHistogramTest, FirstRegistrationBoundsWin) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test.histo.bounds", {1, 2, 3});
  Histogram* again = reg.GetHistogram("test.histo.bounds", {100});
  EXPECT_EQ(h, again);
  EXPECT_EQ(again->bounds(), (std::vector<int64_t>{1, 2, 3}));
}

TEST(MetricsSnapshotTest, SnapshotWhileWritingIsSafeAndMonotone) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.live");
  const int64_t base = c->Value();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([c, &done] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
      }
      done.store(true);
    });
  }
  // Snapshot continuously while writers run: every observed value must be
  // within range and non-decreasing (counters never go backward).
  int64_t last = base;
  while (!done.load()) {
    const int64_t now = MetricsRegistry::Global().Snapshot().counter("test.counter.live");
    EXPECT_GE(now, last);
    EXPECT_LE(now, base + int64_t{kThreads} * kPerThread);
    last = now;
  }
  for (std::thread& w : writers) {
    w.join();
  }
  EXPECT_EQ(c->Value(), base + int64_t{kThreads} * kPerThread);
}

TEST(MetricsSnapshotTest, DeltaSubtractsCountersKeepsGauges) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.delta.counter");
  Gauge* g = reg.GetGauge("test.delta.gauge");
  c->Add(5);
  g->Set(100);
  const MetricsSnapshot before = reg.Snapshot();
  c->Add(3);
  g->Set(42);
  const MetricsSnapshot delta = reg.Snapshot().Delta(before);
  EXPECT_EQ(delta.counter("test.delta.counter"), 3);
  EXPECT_EQ(delta.gauges.at("test.delta.gauge"), 42);  // level, not rate
  EXPECT_FALSE(delta.empty());
}

TEST(MetricsSnapshotTest, CounterLookupDefaultsToZero) {
  MetricsSnapshot empty;
  EXPECT_EQ(empty.counter("no.such.metric"), 0);
  EXPECT_TRUE(empty.empty());
}

TEST(MetricsSnapshotTest, ToJsonIsValidAndNested) {
  auto& reg = MetricsRegistry::Global();
  const MetricsSnapshot before = reg.Snapshot();
  reg.GetCounter("test.json.group.alpha")->Add(1);
  reg.GetCounter("test.json.group.beta")->Add(2);
  reg.GetGauge("test.json.level")->Set(-7);
  reg.GetHistogram("test.json.histo", {5})->Record(3);
  const MetricsSnapshot delta = reg.Snapshot().Delta(before);
  const std::string json = delta.ToJson();
  std::string why;
  EXPECT_TRUE(testing_json::IsValidJson(json, &why)) << why << "\n" << json;
  // Dotted names fold into nested objects.
  EXPECT_NE(json.find("\"group\": {\"alpha\": 1, \"beta\": 2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bounds\": [5]"), std::string::npos) << json;
}

TEST(MetricsSnapshotTest, ToTextListsEveryInstrument) {
  auto& reg = MetricsRegistry::Global();
  const MetricsSnapshot before = reg.Snapshot();
  reg.GetCounter("test.text.counter")->Add(9);
  reg.GetHistogram("test.text.histo", {1})->Record(1);
  const MetricsSnapshot delta = reg.Snapshot().Delta(before);
  const std::string text = delta.ToText();
  EXPECT_NE(text.find("test.text.counter"), std::string::npos) << text;
  EXPECT_NE(text.find("test.text.histo"), std::string::npos) << text;
  EXPECT_EQ(MetricsSnapshot{}.ToText(), "(no metrics recorded)\n");
}

}  // namespace
}  // namespace obs
}  // namespace aitia
