// Tests for the hardware-IRQ extension (the paper's §4.6 future work):
// IRQ handlers injected at LIFS scheduling points, replayed through
// Causality Analysis.

#include <gtest/gtest.h>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/hv/enforcer.h"

namespace aitia {
namespace {

TEST(ExtIrqTest, InjectedHandlerIsAHardIrqContext) {
  BugScenario s = MakeScenario("ext-irq");
  KernelSim kernel(s.image.get(), s.slice, s.setup);
  ThreadId irq = kernel.InjectIrq(s.irq_lines[0].handler, s.irq_lines[0].arg);
  EXPECT_EQ(kernel.thread(irq).kind, ThreadKind::kHardIrq);
  EXPECT_TRUE(kernel.thread(irq).runnable());
  // No spawn edge: the interrupt is unordered with everything.
  RunResult r = kernel.Collect();
  EXPECT_TRUE(r.spawns.empty());
}

TEST(ExtIrqTest, LifsReproducesWithOneInjection) {
  BugScenario s = MakeScenario("ext-irq");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  EXPECT_EQ(report.lifs.failure->type, FailureType::kUseAfterFreeRead);
  EXPECT_EQ(report.lifs.interleaving_count, 1);
  // The failing schedule carries an injection point.
  bool injected = false;
  for (const PreemptPoint& p : report.lifs.failing_schedule.points) {
    injected = injected || p.inject_irq != kNoProgram;
  }
  EXPECT_TRUE(injected);
  // The failing run contains a hardirq context.
  EXPECT_FALSE(report.lifs.irq_threads.empty());
}

TEST(ExtIrqTest, ChainCrossesTheIrqBoundary) {
  BugScenario s = MakeScenario("ext-irq");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  EXPECT_EQ(report.causality.chain.race_count(), 2u);
  std::string chain = report.causality.chain.Render(*s.image);
  EXPECT_NE(chain.find("H1 => A3"), std::string::npos) << chain;
  EXPECT_NE(chain.find("A2 => H2"), std::string::npos) << chain;
  // Cause precedes effect in the rendering.
  EXPECT_LT(chain.find("H1 => A3"), chain.find("A2 => H2")) << chain;
  EXPECT_FALSE(report.causality.ambiguous);
}

TEST(ExtIrqTest, FlipTestsReplayTheInjectedContext) {
  // Causality Analysis must re-inject the handler when replaying flipped
  // total orders; otherwise every handler-side entry would "disappear" and
  // verdicts would be meaningless.
  BugScenario s = MakeScenario("ext-irq");
  AitiaReport report = DiagnoseScenario(s);
  ASSERT_TRUE(report.diagnosed);
  for (const TestedRace& t : report.causality.tested) {
    if (t.verdict == RaceVerdict::kRootCause) {
      EXPECT_TRUE(t.flip_took_effect) << RaceLabel(*s.image, t.race);
    }
  }
}

TEST(ExtIrqTest, WithoutIrqLinesTheBugIsUnreachable) {
  // The §4.6 limitation itself: a single syscall with no IRQ source has no
  // concurrency, so the failure cannot reproduce.
  BugScenario s = MakeScenario("ext-irq");
  AitiaOptions options;
  options.lifs.target_type = s.truth.failure_type;
  options.lifs.irq_lines.clear();
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);
  EXPECT_FALSE(report.diagnosed);
}

TEST(ExtIrqTest, TotalOrderReplayReinjectsByThreadId) {
  BugScenario s = MakeScenario("ext-irq");
  LifsOptions lo;
  lo.target_type = s.truth.failure_type;
  lo.irq_lines = s.irq_lines;
  Lifs lifs(s.image.get(), s.slice, s.setup, lo);
  LifsResult lr = lifs.Run();
  ASSERT_TRUE(lr.reproduced);

  TotalOrderSchedule schedule;
  schedule.base_order = lr.failing_schedule.base_order;
  schedule.irq_threads = lr.irq_threads;
  for (const ExecEvent& e : lr.failing_run.trace) {
    schedule.sequence.push_back(e.di);
  }
  Enforcer enforcer(s.image.get());
  EnforceResult replay = enforcer.RunTotalOrder(s.slice, schedule, s.setup);
  ASSERT_TRUE(replay.run.failure.has_value());
  EXPECT_TRUE(SameSymptom(*replay.run.failure, *lr.failure));
  EXPECT_TRUE(replay.disappeared.empty());
}

}  // namespace
}  // namespace aitia
