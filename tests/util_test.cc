// Unit tests for src/util (rng, thread pool, strings, stopwatch, logging).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace aitia {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversTheRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0, 10));
    EXPECT_TRUE(rng.Chance(10, 10));
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(pool, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(StringsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%05.1f", 2.5), "002.5");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringsTest, StrJoinHandlesEdgeCases) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringsTest, PadRightPadsAndTruncates) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
  EXPECT_EQ(PadRight("", 2), "  ");
}

TEST(LogTest, LevelGateIsRespected) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  AITIA_LOG(kDebug) << "suppressed";  // must not crash and not print
  SetLogLevel(old);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  double last = watch.ElapsedSeconds();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 100; ++i) {
    const double now = watch.ElapsedSeconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(StopwatchTest, ResetRestartsTheClock) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double before = watch.ElapsedSeconds();
  EXPECT_GT(before, 0.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), before);
}

TEST(StopwatchTest, MillisMatchSeconds) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  // Two separate now() calls: millis was taken after seconds.
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_LT(millis, (seconds + 1.0) * 1e3);
}

TEST(LogTest, ParseLogLevelAcceptsEveryLevel) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("").has_value());
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
  EXPECT_FALSE(ParseLogLevel("DEBUG").has_value());
}

TEST(LogTest, CurrentThreadTagIsStableAndDistinct) {
  const uint32_t mine = CurrentThreadTag();
  EXPECT_EQ(CurrentThreadTag(), mine);  // stable for the thread's lifetime
  std::vector<uint32_t> tags(8, 0);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < tags.size(); ++i) {
    threads.emplace_back([&tags, i] { tags[i] = CurrentThreadTag(); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::set<uint32_t> distinct(tags.begin(), tags.end());
  distinct.insert(mine);
  EXPECT_EQ(distinct.size(), tags.size() + 1);
}

TEST(LogTest, SinkReceivesPrefixedLines) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) { lines.push_back(line); });
  AITIA_LOG(kInfo) << "hello sink";
  AITIA_LOG(kDebug) << "below the gate";
  SetLogSink(nullptr);
  SetLogLevel(old);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("[INFO][T", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("hello sink"), std::string::npos);
}

TEST(LogTest, ConcurrentLoggingKeepsLinesWhole) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::mutex mu;
  std::vector<std::string> lines;
  SetLogSink([&](LogLevel, const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([t] {
        for (int i = 0; i < kPerThread; ++i) {
          AITIA_LOG(kInfo) << "worker=" << t << " line=" << i << " end";
        }
      });
    }
    pool.Wait();
  }
  SetLogSink(nullptr);
  SetLogLevel(old);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    // Every line arrived whole: prefix present, single message, no splices.
    EXPECT_EQ(line.rfind("[INFO][T", 0), 0u) << line;
    EXPECT_NE(line.find(" end"), std::string::npos) << line;
    EXPECT_EQ(line.find("worker="), line.rfind("worker=")) << line;
  }
}

}  // namespace
}  // namespace aitia
