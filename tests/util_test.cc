// Unit tests for src/util (rng, thread pool, strings, log levels).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace aitia {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversTheRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0, 10));
    EXPECT_TRUE(rng.Chance(10, 10));
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(pool, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(StringsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%05.1f", 2.5), "002.5");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringsTest, StrJoinHandlesEdgeCases) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringsTest, PadRightPadsAndTruncates) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
  EXPECT_EQ(PadRight("", 2), "  ");
}

TEST(LogTest, LevelGateIsRespected) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  AITIA_LOG(kDebug) << "suppressed";  // must not crash and not print
  SetLogLevel(old);
}

}  // namespace
}  // namespace aitia
