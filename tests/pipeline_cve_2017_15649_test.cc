// CVE-2017-15649 (Figure 2/6): the flagship multi-variable scenario.
// Verifies LIFS reproduces with 2 interleavings and Causality Analysis
// rebuilds the Figure 6 chain, including the phantom race B17 => A12 and the
// conjunction (A2 => B11) ∧ (B2 => A6).

#include <gtest/gtest.h>

#include "src/bugs/registry.h"
#include "src/core/aitia.h"

namespace aitia {
namespace {

TEST(Cve201715649, ReproducesWithTwoInterleavings) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup);
  ASSERT_TRUE(report.diagnosed);
  EXPECT_EQ(report.lifs.failure->type, FailureType::kAssertViolation);
  EXPECT_EQ(report.lifs.interleaving_count, 2);
}

TEST(Cve201715649, BuildsFigure6Chain) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup);
  ASSERT_TRUE(report.diagnosed);

  const CausalityChain& chain = report.causality.chain;
  EXPECT_EQ(chain.race_count(), 4u);
  EXPECT_FALSE(report.causality.ambiguous);

  std::string rendered = chain.Render(*s.image);
  // Conjunction node with both multi-variable orders (either member order).
  const bool conjunction =
      rendered.find("(A2 => B11) ^ (B2 => A6)") != std::string::npos ||
      rendered.find("(B2 => A6) ^ (A2 => B11)") != std::string::npos;
  EXPECT_TRUE(conjunction) << rendered;
  EXPECT_NE(rendered.find("(A6 => B12)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("(B17 => A12)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("kernel BUG"), std::string::npos) << rendered;

  // The chain must order conjunction -> race-steered read -> phantom.
  EXPECT_LT(rendered.find("(A6 => B12)"), rendered.find("(B17 => A12)")) << rendered;
  EXPECT_LT(rendered.find("(B2 => A6)"), rendered.find("(A6 => B12)")) << rendered;
}

TEST(Cve201715649, BenignStatCounterRacesExcluded) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup);
  ASSERT_TRUE(report.diagnosed);
  EXPECT_GT(report.causality.benign_count, 0);
  for (const TestedRace& t : report.causality.tested) {
    if (t.verdict != RaceVerdict::kBenign) {
      continue;
    }
    // Every benign race here is a stats-counter race.
    std::string label = RaceLabel(*s.image, t.race);
    EXPECT_NE(label.find("-st"), std::string::npos) << label;
  }
}

}  // namespace
}  // namespace aitia
