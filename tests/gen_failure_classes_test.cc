// End-to-end coverage for the two failure classes the curated corpus
// underuses: deadlock (flag-guarded ABBA lock ordering) and atomicity
// violation (read-check-use BUG_ON). Both run the full generated-scenario
// path — template -> .ait round-trip -> LIFS -> Causality Analysis — and
// pin that the planted race is diagnosed, deterministically, with no
// kInconclusive verdict on any chain race.

#include <gtest/gtest.h>

#include <string>

#include "src/bugs/diagnose.h"
#include "src/core/aitia.h"
#include "src/gen/generator.h"
#include "src/ingest/ingest.h"
#include "src/ingest/serialize.h"

namespace aitia {
namespace {

// Diagnoses the generated scenario through the .ait round-trip, like the
// CLI would a file on disk.
AitiaReport DiagnoseViaAit(const BugScenario& scenario, BugScenario* reparsed_out) {
  StatusOr<BugScenario> reparsed =
      ScenarioFromAitText(ScenarioToAit(scenario), scenario.id + ".ait");
  EXPECT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  *reparsed_out = *reparsed;
  return DiagnoseScenario(*reparsed_out);
}

// The verdict of every race in the chain: must be a definite root cause
// (possibly ambiguity-entangled), never benign and never kInconclusive.
void ExpectChainVerdictsDefinite(const BugScenario& s, const AitiaReport& report) {
  for (const ChainNode& node : report.causality.chain.nodes()) {
    for (const RacePair& race : node.races) {
      bool found = false;
      for (const TestedRace& t : report.causality.tested) {
        if (t.race.first.di == race.first.di && t.race.second.di == race.second.di) {
          found = true;
          EXPECT_NE(t.verdict, RaceVerdict::kInconclusive)
              << s.id << " " << RaceLabel(*s.image, race);
          EXPECT_NE(t.verdict, RaceVerdict::kBenign)
              << s.id << " " << RaceLabel(*s.image, race);
        }
      }
      EXPECT_TRUE(found) << s.id << " chain race missing from tested set";
    }
  }
}

bool ChainTouchesGlobal(const BugScenario& s, const AitiaReport& report,
                        const std::string& name) {
  const Addr addr = s.image->FindGlobal(name);
  EXPECT_NE(addr, 0u) << name;
  for (const ChainNode& node : report.causality.chain.nodes()) {
    for (const RacePair& race : node.races) {
      if (race.first.addr == addr || race.second.addr == addr) {
        return true;
      }
    }
  }
  return false;
}

TEST(DeadlockClassTest, AbbaTemplateDiagnosesTheFlagRaceAcrossLockDepths) {
  for (int depth = 2; depth <= 4; ++depth) {
    gen::GenOptions options;
    options.tmpl = gen::GenTemplate::kAbba;
    options.seed = 11;
    options.knobs.lock_depth = depth;
    const gen::GeneratedScenario g = gen::GenerateScenario(options);
    ASSERT_EQ(g.scenario.truth.failure_type, FailureType::kDeadlock);

    BugScenario s;
    AitiaReport report = DiagnoseViaAit(g.scenario, &s);
    ASSERT_TRUE(report.diagnosed) << "lock_depth=" << depth;
    ASSERT_TRUE(report.lifs.failure.has_value());
    EXPECT_EQ(report.lifs.failure->type, FailureType::kDeadlock) << depth;
    EXPECT_GE(report.causality.chain.race_count(), 1u) << depth;
    EXPECT_FALSE(report.causality.root_cause_indices.empty()) << depth;
    // The planted trigger — the racy `registered` handshake that gates the
    // reversed lock ladder — must be in the chain.
    EXPECT_TRUE(ChainTouchesGlobal(s, report, "registered")) << depth;
    ExpectChainVerdictsDefinite(s, report);
  }
}

TEST(DeadlockClassTest, DeadlockDetectionIsDeterministic) {
  gen::GenOptions options;
  options.tmpl = gen::GenTemplate::kAbba;
  options.seed = 23;
  const gen::GeneratedScenario g = gen::GenerateScenario(options);

  BugScenario s1, s2;
  AitiaReport a = DiagnoseViaAit(g.scenario, &s1);
  AitiaReport b = DiagnoseViaAit(g.scenario, &s2);
  ASSERT_TRUE(a.diagnosed);
  ASSERT_TRUE(b.diagnosed);
  // Same failing schedule, same chain, run after run: the lock-blockage
  // detector (every unfinished thread blocked, none parked) is a function
  // of the schedule, not of timing.
  EXPECT_EQ(a.lifs.failing_schedule.ToString(), b.lifs.failing_schedule.ToString());
  EXPECT_EQ(a.causality.chain.Render(*s1.image), b.causality.chain.Render(*s2.image));
  EXPECT_EQ(a.lifs.failure->type, FailureType::kDeadlock);
  EXPECT_EQ(a.lifs.failure->message, b.lifs.failure->message);
}

TEST(DeadlockClassTest, SequentialBaseOrderIsClean) {
  // The deadlock must be a genuine concurrency failure: thread-at-a-time
  // execution in slice order completes without tripping any detector.
  gen::GenOptions options;
  options.tmpl = gen::GenTemplate::kAbba;
  options.seed = 5;
  const gen::GeneratedScenario g = gen::GenerateScenario(options);
  AitiaOptions serial;
  serial.lifs.max_interleavings = 0;  // only the no-preemption schedule
  AitiaReport report = DiagnoseScenario(g.scenario, serial);
  EXPECT_FALSE(report.lifs.reproduced);
  EXPECT_FALSE(report.diagnosed);
}

TEST(AtomicityClassTest, CheckUseInterleavingDiagnosedWithInjectedRaceInChain) {
  for (uint64_t seed : {1u, 17u, 40u}) {
    gen::GenOptions options;
    options.tmpl = gen::GenTemplate::kAtomicity;
    options.seed = seed;
    options.knobs.salt = 1;
    const gen::GeneratedScenario g = gen::GenerateScenario(options);
    ASSERT_EQ(g.scenario.truth.failure_type, FailureType::kAssertViolation);

    BugScenario s;
    AitiaReport report = DiagnoseViaAit(g.scenario, &s);
    ASSERT_TRUE(report.diagnosed) << "seed=" << seed;
    EXPECT_EQ(report.lifs.failure->type, FailureType::kAssertViolation) << seed;
    // The injected race on dev_state (B2 sneaking between A1 and the
    // BUG_ON's read) is the chain.
    EXPECT_TRUE(ChainTouchesGlobal(s, report, "dev_state")) << seed;
    ExpectChainVerdictsDefinite(s, report);
  }
}

TEST(AtomicityClassTest, AssertDetectionIsDeterministic) {
  gen::GenOptions options;
  options.tmpl = gen::GenTemplate::kAtomicity;
  options.seed = 29;
  const gen::GeneratedScenario g = gen::GenerateScenario(options);
  BugScenario s1, s2;
  AitiaReport a = DiagnoseViaAit(g.scenario, &s1);
  AitiaReport b = DiagnoseViaAit(g.scenario, &s2);
  ASSERT_TRUE(a.diagnosed);
  EXPECT_EQ(a.lifs.failing_schedule.ToString(), b.lifs.failing_schedule.ToString());
  EXPECT_EQ(a.causality.chain.Render(*s1.image), b.causality.chain.Render(*s2.image));
}

}  // namespace
}  // namespace aitia
