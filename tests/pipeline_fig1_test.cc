// End-to-end pipeline test on the Figure 1 abstract scenario: fuzz ->
// history -> slices -> LIFS -> Causality Analysis -> chain.

#include <gtest/gtest.h>

#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/fuzz/fuzzer.h"

namespace aitia {
namespace {

TEST(Fig1Pipeline, DiagnoseSliceBuildsTwoRaceChain) {
  BugScenario s = MakeScenario("fig-1");
  AitiaOptions options;
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);

  ASSERT_TRUE(report.diagnosed);
  EXPECT_EQ(report.lifs.failure->type, FailureType::kNullDeref);
  EXPECT_EQ(report.lifs.interleaving_count, 1);

  // Exactly the two root-cause races, benign counter races excluded.
  EXPECT_EQ(report.causality.chain.race_count(), 2u);
  EXPECT_GT(report.causality.benign_count, 0);
  EXPECT_FALSE(report.causality.ambiguous);

  std::string chain = report.causality.chain.Render(*s.image);
  EXPECT_NE(chain.find("A1 => B1"), std::string::npos) << chain;
  EXPECT_NE(chain.find("B2 => A2"), std::string::npos) << chain;
  EXPECT_NE(chain.find("null-ptr-deref"), std::string::npos) << chain;
}

TEST(Fig1Pipeline, FullPipelineFromFuzzer) {
  BugScenario s = MakeScenario("fig-1");
  FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
  ASSERT_TRUE(fuzz.found);
  ASSERT_TRUE(fuzz.history.failure.has_value());
  EXPECT_EQ(fuzz.history.failure->failure.type, FailureType::kNullDeref);

  AitiaReport report = DiagnoseHistory(*s.image, fuzz.history);
  ASSERT_TRUE(report.diagnosed);
  EXPECT_EQ(report.causality.chain.race_count(), 2u);
}

}  // namespace
}  // namespace aitia
