// Unit tests for the failure model (src/sim/failure).

#include <gtest/gtest.h>

#include "src/sim/failure.h"

namespace aitia {
namespace {

Failure Make(FailureType type, ProgramId prog, Pc pc) {
  Failure f;
  f.type = type;
  f.tid = 0;
  f.at = {prog, pc};
  return f;
}

TEST(FailureTest, SameSymptomRequiresTypeAndLocation) {
  Failure a = Make(FailureType::kNullDeref, 1, 5);
  EXPECT_TRUE(SameSymptom(a, Make(FailureType::kNullDeref, 1, 5)));
  EXPECT_FALSE(SameSymptom(a, Make(FailureType::kNullDeref, 1, 6)));
  EXPECT_FALSE(SameSymptom(a, Make(FailureType::kUseAfterFreeRead, 1, 5)));
}

TEST(FailureTest, WholeRunSymptomsMatchByTypeOnly) {
  EXPECT_TRUE(SameSymptom(Make(FailureType::kMemoryLeak, 1, 5),
                          Make(FailureType::kMemoryLeak, 2, 9)));
  EXPECT_TRUE(
      SameSymptom(Make(FailureType::kDeadlock, 1, 5), Make(FailureType::kDeadlock, 2, 9)));
  EXPECT_TRUE(
      SameSymptom(Make(FailureType::kWatchdog, 1, 5), Make(FailureType::kWatchdog, 0, 0)));
}

TEST(FailureTest, OptionalOverloadHandlesAbsence) {
  std::optional<Failure> none;
  std::optional<Failure> some = Make(FailureType::kNullDeref, 1, 1);
  EXPECT_TRUE(SameSymptom(none, none));
  EXPECT_FALSE(SameSymptom(none, some));
  EXPECT_FALSE(SameSymptom(some, none));
  EXPECT_TRUE(SameSymptom(some, some));
}

TEST(FailureTest, ToStringNamesTypeLocationAndMessage) {
  Failure f = Make(FailureType::kUseAfterFreeWrite, 3, 7);
  f.addr = 0x100010;
  f.message = "B2: write";
  std::string text = f.ToString();
  EXPECT_NE(text.find("use-after-free Write"), std::string::npos);
  EXPECT_NE(text.find("0x100010"), std::string::npos);
  EXPECT_NE(text.find("B2: write"), std::string::npos);
}

TEST(FailureTest, EveryTypeHasAName) {
  for (int t = 0; t <= static_cast<int>(FailureType::kWatchdog); ++t) {
    EXPECT_STRNE(FailureTypeName(static_cast<FailureType>(t)), "?");
  }
}

}  // namespace
}  // namespace aitia
