// Tests for the .ait serializer (src/ingest/serialize).

#include <gtest/gtest.h>

#include <string>

#include "src/bugs/registry.h"
#include "src/ingest/ingest.h"

namespace aitia {
namespace {

BugScenario Reparse(const std::string& ait, const std::string& name) {
  StatusOr<BugScenario> got = ScenarioFromAitText(ait, name);
  EXPECT_TRUE(got.ok()) << got.status().ToString() << "\n" << ait;
  return got.ok() ? *std::move(got) : BugScenario{};
}

// serialize(parse(serialize(s))) == serialize(s): after one round trip the
// text form is a fixed point, for every corpus scenario.
TEST(SerializeTest, CorpusSerializationIsIdempotent) {
  for (const ScenarioEntry& entry : AllScenarios()) {
    SCOPED_TRACE(entry.id);
    const std::string first = ScenarioToAit(entry.make());
    BugScenario reparsed = Reparse(first, std::string(entry.id) + ".ait");
    ASSERT_NE(reparsed.image, nullptr);
    EXPECT_EQ(ScenarioToAit(reparsed), first);
  }
}

TEST(SerializeTest, EmitsVersionHeaderAndScenarioId) {
  const std::string ait = ScenarioToAit(MakeScenario("fig-1"));
  EXPECT_NE(ait.find("ait 1\n"), std::string::npos);
  // "fig-1" is a bare name, so the id needs no quotes.
  EXPECT_NE(ait.find("scenario fig-1\n"), std::string::npos);
  EXPECT_NE(ait.find("program "), std::string::npos);
  EXPECT_NE(ait.find("slice "), std::string::npos);
}

TEST(SerializeTest, PointerGlobalUsesAmpersandReference) {
  // fig-1's `ptr` global is initialized to another global's address; the
  // serializer must recover the symbolic `&name` form, not the raw number.
  BugScenario s = MakeScenario("fig-1");
  const std::string ait = ScenarioToAit(s);
  EXPECT_NE(ait.find(" &"), std::string::npos) << ait;
  // And it must survive a round trip bit-exactly.
  BugScenario reparsed = Reparse(ait, "fig1.ait");
  ASSERT_NE(reparsed.image, nullptr);
  ASSERT_EQ(reparsed.image->globals().size(), s.image->globals().size());
  for (size_t i = 0; i < s.image->globals().size(); ++i) {
    EXPECT_EQ(reparsed.image->globals()[i].init, s.image->globals()[i].init);
  }
}

TEST(SerializeTest, BranchTargetsBecomeLabels) {
  const std::string ait = ScenarioToAit(MakeScenario("fig-1"));
  EXPECT_NE(ait.find("label L"), std::string::npos) << ait;
}

TEST(SerializeTest, ThreadNamesWithPunctuationAreQuoted) {
  // Corpus thread names like "bind()" need quoting to lex as one token.
  const std::string ait = ScenarioToAit(MakeScenario("CVE-2017-15649"));
  EXPECT_NE(ait.find("\"bind()\""), std::string::npos) << ait;
}

TEST(SerializeTest, DefaultClausesAreElided) {
  const std::string ait = ScenarioToAit(MakeScenario("fig-1"));
  // arg 0 / kind syscall / zero offsets are defaults — never printed.
  EXPECT_EQ(ait.find("arg 0"), std::string::npos) << ait;
  EXPECT_EQ(ait.find("kind syscall"), std::string::npos) << ait;
}

TEST(SerializeTest, NotesSurviveWithEscaping) {
  BugScenario s = MakeScenario("fig-1");
  const std::string ait = ScenarioToAit(s);
  EXPECT_NE(ait.find("note \""), std::string::npos);
  BugScenario reparsed = Reparse(ait, "fig1.ait");
  ASSERT_NE(reparsed.image, nullptr);
  const Program& a = s.image->programs()[0];
  const Program& b = reparsed.image->programs()[0];
  ASSERT_EQ(a.code.size(), b.code.size());
  for (size_t pc = 0; pc < a.code.size(); ++pc) {
    EXPECT_EQ(a.code[pc].note, b.code[pc].note);
  }
}

TEST(SerializeTest, IrqLinesRoundTrip) {
  BugScenario s = MakeScenario("ext-irq");
  ASSERT_FALSE(s.irq_lines.empty());
  const std::string ait = ScenarioToAit(s);
  EXPECT_NE(ait.find("\nirq "), std::string::npos) << ait;
  BugScenario reparsed = Reparse(ait, "ext_irq.ait");
  ASSERT_EQ(reparsed.irq_lines.size(), s.irq_lines.size());
  EXPECT_EQ(reparsed.irq_lines[0].handler, s.irq_lines[0].handler);
  EXPECT_EQ(reparsed.irq_lines[0].arg, s.irq_lines[0].arg);
}

}  // namespace
}  // namespace aitia
