#!/bin/sh
# Replay-cache composition test for the aitiad daemon (DESIGN.md §12).
#
# Phase 1: plain daemon. Two rounds of the same scenarios mean round 2 is
# absorbed by the scenario-fingerprint result cache while round 1's misses
# ran the pipeline with the replay cache on — the loadgen asserts both
# ckpt.hits and ckpt.replayed_steps are nonzero ("used"): the two caches
# compose instead of shadowing each other.
#
# Phase 2: daemon started with --no-replay-cache. Same load; ckpt.* must
# stay exactly zero ("unused") — the flag reaches every pipeline stage.
#
# Usage: aitiad_replay_test.sh <aitiad> <aitiad_loadgen> <workdir>
set -u

AITIAD=$1
LOADGEN=$2
WORK=$3
mkdir -p "$WORK"

fail() {
    echo "FAIL: $1" >&2
    [ -n "${DPID:-}" ] && kill -KILL "$DPID" 2>/dev/null
    exit 1
}

# run_phase <tag> <expect> [extra daemon flags...]
run_phase() {
    TAG=$1
    EXPECT=$2
    shift 2
    OUT="$WORK/daemon.$TAG.out"
    rm -f "$OUT"

    "$AITIAD" --port 0 --workers 2 "$@" >"$OUT" 2>"$WORK/daemon.$TAG.err" &
    DPID=$!

    PORT=""
    i=0
    while [ $i -lt 100 ]; do
        PORT=$(sed -n 's/^aitiad: listening on 127.0.0.1:\([0-9]*\)$/\1/p' "$OUT")
        [ -n "$PORT" ] && break
        kill -0 "$DPID" 2>/dev/null || fail "$TAG: daemon died during startup"
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$PORT" ] || fail "$TAG: daemon never printed its port"

    "$LOADGEN" --port "$PORT" --clients 2 --rounds 2 \
        --scenarios fig-1,CVE-2017-15649 --expect-replay-cache "$EXPECT" \
        --timeout 120 >"$WORK/loadgen.$TAG.json"
    LSTATUS=$?
    cat "$WORK/loadgen.$TAG.json"
    [ "$LSTATUS" -eq 0 ] || fail "$TAG: loadgen contract check failed (exit $LSTATUS)"

    kill -TERM "$DPID" 2>/dev/null
    wait "$DPID"
    DSTATUS=$?
    DPID=""
    [ "$DSTATUS" -eq 0 ] || fail "$TAG: daemon exited $DSTATUS after SIGTERM (want 0)"
}

run_phase replay-on used
run_phase replay-off unused --no-replay-cache

echo "PASS: replay cache composes with the result cache and honors the flag"
exit 0
