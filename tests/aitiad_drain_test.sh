#!/bin/sh
# Graceful-drain regression test for the aitiad binary.
#
# Starts the daemon, launches a burst of in-flight + queued work, sends
# SIGTERM mid-burst, and asserts:
#   - the daemon exits 0 (clean drain, not a crash or a kill escalation);
#   - every request submitted before the signal got a terminal response;
#   - the --metrics-json flight record was flushed and is non-empty.
#
# Usage: aitiad_drain_test.sh <aitiad> <aitiad_loadgen> <workdir>
set -u

AITIAD=$1
LOADGEN=$2
WORK=$3
mkdir -p "$WORK"
OUT="$WORK/daemon.out"
METRICS="$WORK/metrics.json"
rm -f "$OUT" "$METRICS"

fail() {
    echo "FAIL: $1" >&2
    [ -n "${DPID:-}" ] && kill -KILL "$DPID" 2>/dev/null
    exit 1
}

"$AITIAD" --port 0 --workers 2 --queue-shards 2 --shard-capacity 4 \
    --drain-grace-ms 10000 --metrics-json "$METRICS" >"$OUT" 2>"$WORK/daemon.err" &
DPID=$!

# Wait for the parseable startup line.
PORT=""
i=0
while [ $i -lt 100 ]; do
    PORT=$(sed -n 's/^aitiad: listening on 127.0.0.1:\([0-9]*\)$/\1/p' "$OUT")
    [ -n "$PORT" ] && break
    kill -0 "$DPID" 2>/dev/null || fail "daemon died during startup"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$PORT" ] || fail "daemon never printed its port"

# Mid-burst load: clients that hold workers long enough for the SIGTERM to
# land while work is both in flight and queued.
"$LOADGEN" --port "$PORT" --clients 4 --rounds 4 --scenarios fig-1,fig-5,fig-7 \
    --hold-ms 200 --timeout 60 >"$WORK/loadgen.json" 2>&1 &
LPID=$!

sleep 0.7  # let the burst get going
kill -0 "$DPID" 2>/dev/null || fail "daemon died under load before the signal"
kill -TERM "$DPID"

wait "$DPID"
DSTATUS=$?
[ "$DSTATUS" -eq 0 ] || fail "daemon exited $DSTATUS after SIGTERM (want 0)"

# The loadgen may see clean 'draining' rejections or connection teardown after
# the drain point — that is expected; it must terminate either way.
wait "$LPID" 2>/dev/null

[ -s "$METRICS" ] || fail "metrics flight record missing or empty"
# Scope counter extraction to the svc section (other sections reuse names
# like "completed"); svc sorts last in the snapshot, so take its tail.
SVC=$(sed -n 's/.*"svc": //p' "$METRICS")
[ -n "$SVC" ] || fail "metrics record lacks the svc section"
echo "$SVC" | grep -q '"duplicate_responses": 0' \
    || fail "duplicate responses recorded during drain"

# Accepted-means-answered across the drain: the daemon's own books must show
# every accepted diagnosis completed (none wedged, none dropped).
ACCEPTED=$(echo "$SVC" | sed -n 's/.*"accepted": \([0-9]*\).*/\1/p')
COMPLETED=$(echo "$SVC" | sed -n 's/.*"completed": \([0-9]*\).*/\1/p')
[ -n "$ACCEPTED" ] && [ -n "$COMPLETED" ] || fail "accepted/completed counters missing"
[ "$ACCEPTED" -eq "$COMPLETED" ] \
    || fail "drain lost work: accepted=$ACCEPTED completed=$COMPLETED"
[ "$ACCEPTED" -gt 0 ] || fail "burst never reached the daemon (accepted=0)"

echo "PASS: drained cleanly; accepted=$ACCEPTED completed=$COMPLETED"
exit 0
