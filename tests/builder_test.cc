// Unit tests for the program assembler (src/sim/builder).

#include <gtest/gtest.h>

#include "src/sim/builder.h"

namespace aitia {
namespace {

TEST(BuilderTest, ForwardLabelResolves) {
  ProgramBuilder b("p");
  b.MovImm(R1, 0).Beqz(R1, "target").MovImm(R2, 1).Label("target").Exit();
  Program p = b.Build();
  EXPECT_EQ(p.code[1].op, Op::kBeqz);
  EXPECT_EQ(p.code[1].imm, 3);  // pc of "target"
}

TEST(BuilderTest, BackwardLabelResolves) {
  ProgramBuilder b("p");
  b.Label("top").MovImm(R1, 1).Jmp("top");
  Program p = b.Build();
  EXPECT_EQ(p.code[1].op, Op::kJmp);
  EXPECT_EQ(p.code[1].imm, 0);
}

TEST(BuilderTest, AutoAppendsExitWhenFallingOffTheEnd) {
  ProgramBuilder b("p");
  b.MovImm(R1, 5);
  Program p = b.Build();
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(p.code.back().op, Op::kExit);
}

TEST(BuilderTest, NoExitAppendedAfterRetOrJmp) {
  ProgramBuilder b("p");
  b.Label("x").Jmp("x");
  EXPECT_EQ(b.Build().size(), 1);

  ProgramBuilder b2("q");
  b2.Ret();
  EXPECT_EQ(b2.Build().size(), 1);
}

TEST(BuilderTest, NoteAttachesToLastInstruction) {
  ProgramBuilder b("p");
  b.MovImm(R1, 1).Note("first").MovImm(R2, 2).Note("second");
  Program p = b.Build();
  EXPECT_EQ(p.code[0].note, "first");
  EXPECT_EQ(p.code[1].note, "second");
}

TEST(BuilderTest, NextPcTracksEmission) {
  ProgramBuilder b("p");
  EXPECT_EQ(b.NextPc(), 0);
  b.MovImm(R1, 1);
  EXPECT_EQ(b.NextPc(), 1);
  b.Lea(R2, kGlobalBase).Load(R3, R2);
  EXPECT_EQ(b.NextPc(), 3);
}

TEST(BuilderTest, OperandEncodingRoundTrips) {
  ProgramBuilder b("p");
  b.StoreImm(R4, 99, 2).Alloc(R5, 7, true).ListDel(R6, R7, R8, 1);
  Program p = b.Build();
  EXPECT_EQ(p.code[0].op, Op::kStoreImm);
  EXPECT_EQ(p.code[0].rd, R4);
  EXPECT_EQ(p.code[0].imm, 2);
  EXPECT_EQ(p.code[0].imm2, 99);
  EXPECT_EQ(p.code[1].op, Op::kAlloc);
  EXPECT_EQ(p.code[1].imm, 7);
  EXPECT_EQ(p.code[1].imm2, 1);
  EXPECT_EQ(p.code[2].op, Op::kListDel);
  EXPECT_EQ(p.code[2].rd, R6);
  EXPECT_EQ(p.code[2].rs, R7);
  EXPECT_EQ(p.code[2].rt, R8);
}

TEST(BuilderTest, DisassembleMentionsOpAndNote) {
  Instr instr{.op = Op::kStore, .rd = R1, .rs = R2, .imm = 3, .note = "X: write"};
  std::string text = Disassemble(instr);
  EXPECT_NE(text.find("store"), std::string::npos);
  EXPECT_NE(text.find("X: write"), std::string::npos);
}

TEST(BuilderDeathTest, UndefinedLabelAborts) {
  EXPECT_DEATH(
      {
        ProgramBuilder b("p");
        b.Jmp("nowhere");
        b.Build();
      },
      "undefined label");
}

TEST(BuilderDeathTest, DuplicateLabelAborts) {
  EXPECT_DEATH(
      {
        ProgramBuilder b("p");
        b.Label("x").Label("x");
      },
      "duplicate label");
}

TEST(BuilderDeathTest, NoteBeforeAnyInstructionAborts) {
  EXPECT_DEATH(
      {
        ProgramBuilder b("p");
        b.Note("orphan");
      },
      "Note");
}

TEST(ImageTest, GlobalAddressesAreSequentialAndNamed) {
  KernelImage image;
  Addr a = image.AddGlobal("a", 1);
  Addr b = image.AddGlobal("b", 2);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(image.GlobalName(a), "a");
  EXPECT_EQ(image.GlobalName(b), "b");
  EXPECT_EQ(image.GlobalName(b + 1), "");
  EXPECT_EQ(image.GlobalAddr("b"), b);
}

TEST(ImageTest, ProgramLookupByName) {
  KernelImage image;
  ProgramBuilder b("alpha");
  b.Exit();
  ProgramId id = image.AddProgram(b.Build());
  EXPECT_EQ(image.ProgramByName("alpha"), id);
  EXPECT_EQ(image.program(id).name, "alpha");
}

TEST(ImageTest, DescribeUsesNotes) {
  KernelImage image;
  ProgramBuilder b("p");
  b.MovImm(R1, 1).Note("A1: set flag");
  image.AddProgram(b.Build());
  EXPECT_NE(image.Describe({0, 0}).find("A1: set flag"), std::string::npos);
}

TEST(ImageDeathTest, DuplicateGlobalAborts) {
  EXPECT_DEATH(
      {
        KernelImage image;
        image.AddGlobal("x", 0);
        image.AddGlobal("x", 0);
      },
      "duplicate global");
}

}  // namespace
}  // namespace aitia
