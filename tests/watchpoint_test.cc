// Unit tests for the watchpoint surface (src/hv/watchpoint).

#include <gtest/gtest.h>

#include "src/hv/watchpoint.h"

namespace aitia {
namespace {

ExecEvent Access(ThreadId tid, Addr addr, bool write, Addr len = 1) {
  ExecEvent e;
  e.di = {tid, {0, 0}, 0};
  e.is_access = true;
  e.is_write = write;
  e.addr = addr;
  e.len = len;
  return e;
}

TEST(WatchpointTest, TripsOnConflictingAccessFromOtherThread) {
  Watchpoints wps;
  wps.Arm({0, {0, 5}, 0}, 0x100, 1, /*owner_is_write=*/false);
  wps.Observe(Access(1, 0x100, /*write=*/true));
  ASSERT_EQ(wps.hits().size(), 1u);
  EXPECT_EQ(wps.hits()[0].owner.tid, 0);
  EXPECT_EQ(wps.hits()[0].access.di.tid, 1);
}

TEST(WatchpointTest, IgnoresOwnerThread) {
  Watchpoints wps;
  wps.Arm({0, {0, 5}, 0}, 0x100, 1, true);
  wps.Observe(Access(0, 0x100, true));
  EXPECT_TRUE(wps.hits().empty());
}

TEST(WatchpointTest, ReadReadDoesNotTrip) {
  Watchpoints wps;
  wps.Arm({0, {0, 5}, 0}, 0x100, 1, /*owner_is_write=*/false);
  wps.Observe(Access(1, 0x100, /*write=*/false));
  EXPECT_TRUE(wps.hits().empty());
}

TEST(WatchpointTest, WriteOwnerTripsOnRemoteRead) {
  Watchpoints wps;
  wps.Arm({0, {0, 5}, 0}, 0x100, 1, /*owner_is_write=*/true);
  wps.Observe(Access(1, 0x100, /*write=*/false));
  EXPECT_EQ(wps.hits().size(), 1u);
}

TEST(WatchpointTest, RangeOverlapSemantics) {
  Watchpoints wps;
  // Watch a whole 4-cell object (a free's range).
  wps.Arm({0, {0, 5}, 0}, 0x100, 4, true);
  wps.Observe(Access(1, 0x103, false));  // last cell: hit
  wps.Observe(Access(1, 0x104, true));   // one past: miss
  wps.Observe(Access(1, 0x0ff, true));   // one before: miss
  ASSERT_EQ(wps.hits().size(), 1u);
  EXPECT_EQ(wps.hits()[0].access.addr, 0x103u);
}

TEST(WatchpointTest, NonAccessEventsIgnored) {
  Watchpoints wps;
  wps.Arm({0, {0, 5}, 0}, 0x100, 1, true);
  ExecEvent e;
  e.di = {1, {0, 0}, 0};
  e.is_access = false;
  e.addr = 0x100;
  wps.Observe(e);
  EXPECT_TRUE(wps.hits().empty());
}

TEST(WatchpointTest, DisarmStopsTripping) {
  Watchpoints wps;
  DynInstr owner{0, {0, 5}, 0};
  wps.Arm(owner, 0x100, 1, true);
  wps.Disarm(owner);
  wps.Observe(Access(1, 0x100, true));
  EXPECT_TRUE(wps.hits().empty());
}

TEST(WatchpointTest, MultipleArmedWatchpointsAllTrip) {
  Watchpoints wps;
  wps.Arm({0, {0, 1}, 0}, 0x100, 1, true);
  wps.Arm({0, {0, 2}, 0}, 0x200, 1, true);
  wps.Observe(Access(1, 0x100, false));
  wps.Observe(Access(1, 0x200, false));
  EXPECT_EQ(wps.hits().size(), 2u);
}

}  // namespace
}  // namespace aitia
