// Table 1 — the three root-cause-diagnosis requirements, measured.
//
// For every implemented approach, the three requirements are *scored from
// measured behaviour* over the full 22-bug corpus rather than asserted:
//
//  - Comprehensive: on multi-variable bugs, does the output mention every
//    true racing variable?
//  - Pattern-agnostic: does the approach produce a correct output on bugs
//    regardless of variable count / correlation shape?
//  - Concise: is the output free of failure-irrelevant facts (benign races)?
//
// Failure reproduction systems (REPT/RR in the paper) are represented by
// the raw failing execution itself: complete and assumption-free but
// drowning the developer in every access and benign race.

#include <cstdio>
#include <set>
#include <string>

#include "src/baselines/coop.h"
#include "src/baselines/inflection.h"
#include "src/baselines/muvi.h"
#include "src/baselines/racecount.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"

namespace {

const char* Mark(double score) {
  if (score >= 0.9) {
    return "v";  // satisfied
  }
  if (score >= 0.4) {
    return "~";  // conditionally satisfied
  }
  return "-";
}

}  // namespace

int main() {
  using namespace aitia;
  std::printf("=== Table 1: requirements, scored over the 22-bug corpus ===\n\n");

  int bugs = 0;
  int multi_bugs = 0;
  // Per-approach tallies: [comprehensive hits on multi bugs, diagnosed bugs,
  // concise outputs].
  int aitia_comp = 0, aitia_diag = 0, aitia_concise = 0;
  int kairux_comp = 0, kairux_diag = 0, kairux_concise = 0;
  int coop_comp = 0, coop_diag = 0, coop_concise = 0;
  int muvi_comp = 0, muvi_diag = 0, muvi_concise = 0;
  int repro_comp = 0, repro_diag = 0, repro_concise = 0;

  for (const ScenarioEntry& entry : AllScenarios()) {
    std::string id(entry.id);
    if (id.rfind("fig-", 0) == 0 || id.rfind("ext-", 0) == 0) {
      continue;
    }
    BugScenario s = entry.make();
    const KernelImage& image = *s.image;
    ++bugs;
    if (s.truth.multi_variable) {
      ++multi_bugs;
    }
    const auto racing_ranges = RacingAddressRanges(s);
    std::set<Addr> racing;
    for (const auto& name : s.truth.racing_globals) {
      racing.insert(image.GlobalAddr(name));
    }

    AitiaOptions options;
    options.lifs.target_type = s.truth.failure_type;
    AitiaReport report = DiagnoseSlice(image, s.slice, s.setup, options);
    if (report.diagnosed) {
      ++aitia_diag;
      // Comprehensive on a multi-variable bug = the output expresses the
      // *interactions* of multiple data races, not a single point.
      if (s.truth.multi_variable && report.causality.chain.race_count() >= 2) {
        ++aitia_comp;
      }
      ++aitia_concise;  // benign races are excluded by construction; the
                        // corpus test asserts none enter a chain

      InflectionResult inf =
          FindInflectionPoint(image, s.slice, s.setup, report.lifs.failing_run);
      if (inf.found) {
        ++kairux_diag;
        ++kairux_concise;  // a single instruction is trivially concise
        // One instruction can cover at most one variable.
        if (s.truth.multi_variable && racing.size() <= 1) {
          ++kairux_comp;
        }
      }

      RawRaceStats raw = CountRawRaces(report.lifs.failing_run);
      ++repro_diag;  // a reproducer always "answers"
      if (s.truth.multi_variable) {
        ++repro_comp;  // the full trace contains everything
      }
      // A reproduction is "concise" only if the full trace is itself tiny —
      // which it essentially never is.
      if (raw.memory_accessing_instructions <=
          2 * static_cast<int64_t>(report.causality.chain.race_count())) {
        ++repro_concise;
      }
    }

    CoopResult coop = RunCoopLocalization(image, s.slice, s.setup);
    bool coop_hit = false;
    for (size_t i = 0; i < coop.ranked.size() && i < 3; ++i) {
      if (InRanges(racing_ranges, coop.ranked[i].addr)) {
        coop_hit = true;
      }
    }
    if (coop_hit && !s.truth.multi_variable) {
      ++coop_diag;
      ++coop_concise;
    }

    MuviResult muvi = RunMuvi(s.MakeWorkload(), s.truth.racing_globals);
    if (muvi.assumption_holds && s.truth.multi_variable) {
      ++muvi_diag;
      ++muvi_comp;
      ++muvi_concise;
    }
  }

  auto row = [&](const char* name, int comp, int diag, int concise) {
    std::printf("%-28s %12s (%2d/%2d) %16s (%2d/%2d) %9s (%2d/%2d)\n", name,
                Mark(static_cast<double>(comp) / multi_bugs), comp, multi_bugs,
                Mark(static_cast<double>(diag) / bugs), diag, bugs,
                Mark(static_cast<double>(concise) / bugs), concise, bugs);
  };
  std::printf("%-28s %20s %24s %17s\n", "", "Comprehensive", "Pattern-agnostic", "Concise");
  std::printf("%s\n", std::string(96, '-').c_str());
  row("AITIA", aitia_comp, aitia_diag, aitia_concise);
  row("Kairux (inflection point)", kairux_comp, kairux_diag, kairux_concise);
  row("Coop. localization (Gist)", coop_comp, coop_diag, coop_concise);
  row("MUVI", muvi_comp, muvi_diag, muvi_concise);
  row("Failure reproduction (RR)", repro_comp, repro_diag, repro_concise);
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("v = satisfied, ~ = conditionally satisfied, - = not satisfied (Table 1)\n");
  return 0;
}
