// Ablations over AITIA's design choices (DESIGN.md):
//
//  1. DPOR-style conflict pruning in LIFS — schedules executed with the
//     restriction on vs off (the paper adopts DPOR "to prune unnecessary
//     search steps", §3.3).
//  2. Diagnoser parallelism — Causality Analysis wall time with 1 vs 8
//     workers (the paper's 32-VM diagnosing stage, §4.5).

#include <cstdio>
#include <string>

#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/util/stopwatch.h"

int main() {
  using namespace aitia;
  std::printf("=== Ablation 1: LIFS conflict pruning (schedules to reproduce) ===\n\n");
  std::printf("%-16s | %12s %12s | %s\n", "Bug", "pruning ON", "pruning OFF", "saved");
  std::printf("%s\n", std::string(62, '-').c_str());

  long long total_on = 0;
  long long total_off = 0;
  for (const ScenarioEntry& entry : Table2Scenarios()) {
    BugScenario s = entry.make();
    LifsOptions on;
    on.target_type = s.truth.failure_type;
    LifsOptions off = on;
    off.dpor_pruning = false;

    Lifs lifs_on(s.image.get(), s.slice, s.setup, on);
    LifsResult r_on = lifs_on.Run();
    Lifs lifs_off(s.image.get(), s.slice, s.setup, off);
    LifsResult r_off = lifs_off.Run();

    total_on += r_on.schedules_executed;
    total_off += r_off.schedules_executed;
    double saved = r_off.schedules_executed == 0
                       ? 0
                       : 100.0 * (1.0 - static_cast<double>(r_on.schedules_executed) /
                                            static_cast<double>(r_off.schedules_executed));
    std::printf("%-16s | %12lld %12lld | %5.1f%%\n", s.id.c_str(),
                static_cast<long long>(r_on.schedules_executed),
                static_cast<long long>(r_off.schedules_executed), saved);
  }
  std::printf("%s\n", std::string(62, '-').c_str());
  std::printf("total: %lld vs %lld schedules (%.1f%% saved by pruning)\n\n", total_on,
              total_off,
              100.0 * (1.0 - static_cast<double>(total_on) / static_cast<double>(total_off)));

  std::printf("=== Ablation 2: diagnoser parallelism (CA wall time) ===\n\n");
  std::printf("%-16s | %12s %12s | %s\n", "Bug", "1 worker", "8 workers", "speedup");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (const char* id : {"CVE-2017-15649", "syz-02", "syz-08"}) {
    BugScenario s = MakeScenario(id);
    LifsOptions lo;
    lo.target_type = s.truth.failure_type;
    Lifs lifs(s.image.get(), s.slice, s.setup, lo);
    LifsResult lr = lifs.Run();
    if (!lr.reproduced) {
      continue;
    }
    double times[2] = {};
    size_t workers[2] = {1, 8};
    for (int w = 0; w < 2; ++w) {
      CausalityOptions co;
      co.workers = workers[w];
      Stopwatch watch;
      // Repeat to get a measurable duration on these tiny workloads.
      for (int rep = 0; rep < 50; ++rep) {
        CausalityAnalysis ca(s.image.get(), s.slice, s.setup, &lr, co);
        CausalityResult cr = ca.Run();
        (void)cr;
      }
      times[w] = watch.ElapsedMillis() / 50;
    }
    std::printf("%-16s | %9.3f ms %9.3f ms | %.2fx\n", id, times[0], times[1],
                times[1] > 0 ? times[0] / times[1] : 0.0);
  }
  std::printf("\n(Flip tests are independent deterministic runs, so diagnosis\n"
              " parallelizes across workers exactly like the paper's VM fleet.)\n");
  return 0;
}
