// §5.3 — comparison to prior diagnosis approaches on the Table 3 corpus.
//
// Runs the reimplemented baselines on every Syzkaller bug and scores them
// against the scenario ground truth:
//
//  - AITIA: diagnosed iff LIFS reproduces and the chain is non-empty.
//  - Kairux (inflection point): reports one instruction; counted adequate
//    only when the true chain has a single race (otherwise the single
//    instruction cannot be a comprehensive root cause).
//  - Gist/Snorlax (cooperative localization): adequate iff a top-3 ranked
//    single-variable pattern touches a true racing variable AND the bug is
//    single-variable (multi-variable chains are outside the pattern set).
//  - MUVI: adequate iff its access-correlation assumption measurably holds
//    for the racing variables AND the bug is multi-variable.
//
// Paper result to reproduce: AITIA 12/12; pattern-based localization ~6/12
// (the single-variable half); MUVI 3/12 (the tightly-correlated
// multi-variable bugs).

#include <cstdio>
#include <set>

#include "src/baselines/coop.h"
#include "src/baselines/inflection.h"
#include "src/baselines/muvi.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"

int main() {
  using namespace aitia;
  std::printf("=== §5.3: AITIA vs Kairux vs Gist/Snorlax vs MUVI (Table 3 corpus) ===\n\n");
  std::printf("%-8s %-7s | %-6s %-7s %-5s %-5s\n", "Bug", "Multi?", "AITIA", "Kairux",
              "Coop", "MUVI");
  std::printf("%s\n", std::string(50, '-').c_str());

  int aitia_ok = 0;
  int kairux_ok = 0;
  int coop_ok = 0;
  int muvi_ok = 0;

  for (const ScenarioEntry& entry : Table3Scenarios()) {
    BugScenario s = entry.make();
    const KernelImage& image = *s.image;

    AitiaOptions options;
    options.lifs.target_type = s.truth.failure_type;
    AitiaReport report = DiagnoseSlice(image, s.slice, s.setup, options);
    const bool aitia = report.diagnosed && report.causality.chain.race_count() >= 1;

    bool kairux = false;
    if (report.diagnosed) {
      InflectionResult inf = FindInflectionPoint(image, s.slice, s.setup,
                                                 report.lifs.failing_run);
      kairux = inf.found && report.causality.chain.race_count() == 1;
    }

    // Gist/Snorlax-style: statistical pattern ranking over sampled runs.
    const auto racing_ranges = RacingAddressRanges(s);
    CoopResult coop = RunCoopLocalization(image, s.slice, s.setup);
    bool coop_hits_var = false;
    for (size_t i = 0; i < coop.ranked.size() && i < 3; ++i) {
      if (InRanges(racing_ranges, coop.ranked[i].addr)) {
        coop_hits_var = true;
      }
    }
    const bool coop_adequate = coop_hits_var && !s.truth.multi_variable;

    MuviResult muvi = RunMuvi(s.MakeWorkload(), s.truth.racing_globals);
    const bool muvi_adequate = muvi.assumption_holds && s.truth.multi_variable;

    aitia_ok += aitia ? 1 : 0;
    kairux_ok += kairux ? 1 : 0;
    coop_ok += coop_adequate ? 1 : 0;
    muvi_ok += muvi_adequate ? 1 : 0;

    std::printf("%-8s %-7s | %-6s %-7s %-5s %-5s\n", s.id.c_str(),
                s.truth.multi_variable ? (s.truth.loosely_correlated ? "Yes*" : "Yes") : "No",
                aitia ? "yes" : "NO", kairux ? "yes" : "-", coop_adequate ? "yes" : "-",
                muvi_adequate ? "yes" : "-");
  }
  std::printf("%s\n", std::string(50, '-').c_str());
  std::printf("diagnosed adequately: AITIA %d/12, Kairux %d/12, Coop %d/12, MUVI %d/12\n",
              aitia_ok, kairux_ok, coop_ok, muvi_ok);
  std::printf("(paper: AITIA 12/12; Gist/Snorlax cannot diagnose the 6 multi-variable\n"
              " bugs; MUVI explains only the 3 tightly-correlated multi-variable bugs)\n");
  return 0;
}
