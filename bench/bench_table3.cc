// Table 3 — concurrency bugs reported by the Syzkaller front end.
//
// Regenerates the paper's per-bug columns: bug type, multi-variable flag
// (with loose-correlation asterisk), LIFS time / schedules / interleavings,
// Causality Analysis time / schedules, and the number of races in the final
// causality chain. The shape to reproduce: all 12 diagnose; interleaving
// count is 1 except the j1939 refcount bug (2); chains stay a handful of
// races; no ambiguity.

#include <cstdio>
#include <map>
#include <string>

#include "src/bugs/registry.h"
#include "src/core/aitia.h"

namespace {

struct PaperRow {
  double lifs_s;
  int lifs_sched;
  int inter;
  double ca_s;
  int ca_sched;
  int chain;
};

const std::map<std::string, PaperRow> kPaper = {
    {"syz-01", {165.7, 751, 1, 251.3, 236, 2}},
    {"syz-02", {318, 133, 1, 1152, 471, 4}},
    {"syz-03", {65.8, 178, 1, 1035.6, 773, 2}},
    {"syz-04", {152.1, 503, 1, 189.6, 138, 2}},
    {"syz-05", {45.7, 2, 1, 930.4, 405, 1}},
    {"syz-06", {755, 176, 1, 988, 388, 4}},
    {"syz-07", {872.7, 231, 1, 1575, 523, 4}},
    {"syz-08", {2818.8, 1044, 2, 3286, 1469, 5}},
    {"syz-09", {1526.4, 628, 1, 1452.6, 848, 2}},
    {"syz-10", {70.8, 101, 1, 2365.1, 1032, 4}},
    {"syz-11", {72.4, 15, 1, 1692.9, 627, 2}},
    {"syz-12", {740.1, 272, 1, 2032, 843, 4}},
};

}  // namespace

int main() {
  using namespace aitia;
  std::printf("=== Table 3: Syzkaller-reported concurrency bugs ===\n");
  std::printf("(measured; paper values in parentheses; * = loosely correlated)\n\n");
  std::printf("%-8s %-13s %-26s %-6s | %9s %11s %8s | %9s %10s | %s\n", "Bug", "Subsystem",
              "Bug type", "Multi?", "LIFS ms", "# sched", "Inter.", "CA ms", "# sched",
              "# races in chain");
  std::printf("%s\n", std::string(130, '-').c_str());

  int diagnosed = 0;
  double lifs_total = 0;
  double ca_total = 0;
  for (const ScenarioEntry& entry : Table3Scenarios()) {
    BugScenario s = entry.make();
    AitiaOptions options;
    options.lifs.target_type = s.truth.failure_type;
    options.causality.workers = 4;
    AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);
    const PaperRow& paper = kPaper.at(s.id);
    if (!report.diagnosed) {
      std::printf("%-8s %-13s NOT REPRODUCED\n", s.id.c_str(), s.subsystem.c_str());
      continue;
    }
    ++diagnosed;
    lifs_total += report.lifs.seconds;
    ca_total += report.causality.seconds;
    std::string multi = s.truth.multi_variable ? "Yes" : "No";
    if (s.truth.loosely_correlated) {
      multi += "*";
    }
    std::printf("%-8s %-13s %-26s %-6s | %6.2f(%5.0fs) %4lld(%5d) %3d(%d) | %6.2f(%5.0fs) %4lld(%5d) | %zu (%d)\n",
                s.id.c_str(), s.subsystem.c_str(), s.bug_kind.c_str(), multi.c_str(),
                report.lifs.seconds * 1e3, paper.lifs_s,
                static_cast<long long>(report.lifs.schedules_executed), paper.lifs_sched,
                report.lifs.interleaving_count, paper.inter,
                report.causality.seconds * 1e3, paper.ca_s,
                static_cast<long long>(report.causality.schedules_executed), paper.ca_sched,
                report.causality.chain.race_count(), paper.chain);
  }
  std::printf("%s\n", std::string(130, '-').c_str());
  std::printf("diagnosed %d/12; mean LIFS %.2f ms, mean CA %.2f ms per bug\n", diagnosed,
              lifs_total / 12 * 1e3, ca_total / 12 * 1e3);
  std::printf("(paper: 12/12; mean reproducing 633.6 s, mean diagnosing 1412.5 s on real VMs)\n");
  return 0;
}
