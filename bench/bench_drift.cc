// bench_drift — cross-revision drift tracker for the parallel-LIFS sweep.
//
// Folds a set of archived BENCH_parallel_lifs.json artifacts (one per
// revision, produced by `bench_parallel_lifs --json`) into a per-revision
// time series and fails when the series drifts:
//
//   * schedule-count change — a scenario's `schedules` differs between two
//     consecutive revisions. The explored-schedule set is deterministic, so
//     any change means the diagnosis pipeline's behaviour changed, not just
//     its speed. Always an error.
//   * sustained wall-clock regression — a sweep cell (scenario × workers ×
//     replay × prefilter) runs more than --threshold percent (default 20)
//     slower than its baseline (the first revision that recorded the cell)
//     for --sustain consecutive revisions (default 2). One slow revision is
//     treated as machine noise; two in a row is drift.
//   * identical_to_serial false anywhere — the parallel sweep diverged from
//     the serial oracle at archive time. Always an error.
//
// Artifacts are folded in lexicographic *filename* order, so archives named
// 0001-<rev>.json, 0002-<rev>.json, ... replay history correctly; scenarios
// or cells that appear or disappear between revisions are reported but are
// not errors (the corpus grows).
//
//   $ bench_drift ci-archive/           # every *.json in the directory
//   $ bench_drift a.json b.json c.json  # explicit files (same filename sort)
//
// Exit codes: 0 no drift, 1 drift detected, 2 input/usage error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/svc/jsonv.h"

namespace {

using aitia::svc::JsonValue;
using aitia::svc::ParseJson;

struct Cell {
  double seconds = 0;
  bool identical = true;
};

struct Scenario {
  long long schedules = 0;
  // "w4 replay+prefilter" -> timing; the key is stable across revisions.
  std::map<std::string, Cell> cells;
};

struct Artifact {
  std::string file;      // basename, the sort key
  std::string revision;  // git_revision recorded at archive time
  std::map<std::string, Scenario> scenarios;
};

std::string CellKey(long long workers, bool replay, bool prefilter) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "w%lld %sreplay %sprefilter", workers, replay ? "+" : "-",
                prefilter ? "+" : "-");
  return buf;
}

bool LoadArtifact(const std::string& path, Artifact* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_drift: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  auto parsed = ParseJson(text, 32);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_drift: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  const JsonValue& doc = *parsed;
  if (!doc.is_object()) {
    std::fprintf(stderr, "bench_drift: %s: not a JSON object\n", path.c_str());
    return false;
  }
  out->file = std::filesystem::path(path).filename().string();
  if (const JsonValue* rev = doc.Find("git_revision"); rev != nullptr && rev->is_string()) {
    out->revision = rev->AsString();
  } else {
    out->revision = "unknown";
  }
  const JsonValue* scenarios = doc.Find("scenarios");
  if (scenarios == nullptr || scenarios->kind() != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "bench_drift: %s: missing \"scenarios\" array\n", path.c_str());
    return false;
  }
  for (const JsonValue& s : scenarios->items()) {
    const JsonValue* id = s.Find("id");
    const JsonValue* schedules = s.Find("schedules");
    const JsonValue* sweep = s.Find("sweep");
    if (id == nullptr || !id->is_string() || schedules == nullptr || sweep == nullptr ||
        sweep->kind() != JsonValue::Kind::kArray) {
      std::fprintf(stderr, "bench_drift: %s: malformed scenario entry\n", path.c_str());
      return false;
    }
    Scenario& sc = out->scenarios[id->AsString()];
    sc.schedules = schedules->AsInt();
    for (const JsonValue& c : sweep->items()) {
      const JsonValue* workers = c.Find("workers");
      const JsonValue* seconds = c.Find("seconds");
      if (workers == nullptr || seconds == nullptr) {
        continue;  // tolerate older artifacts with fewer fields
      }
      Cell cell;
      cell.seconds = seconds->AsDouble();
      if (const JsonValue* ident = c.Find("identical_to_serial"); ident != nullptr) {
        cell.identical = ident->AsBool(true);
      }
      const JsonValue* replay = c.Find("replay");
      const JsonValue* prefilter = c.Find("prefilter");
      sc.cells[CellKey(workers->AsInt(), replay != nullptr && replay->AsBool(),
                       prefilter != nullptr && prefilter->AsBool())] = cell;
    }
  }
  return true;
}

int Usage(FILE* to) {
  std::fprintf(to,
               "usage: bench_drift [--threshold PCT] [--sustain N]\n"
               "                   <artifact.json ... | directory>\n"
               "\n"
               "  --threshold PCT  wall-clock regression tolerance vs the cell's\n"
               "                   baseline revision (default 20)\n"
               "  --sustain N      consecutive over-threshold revisions before a\n"
               "                   regression counts as drift (default 2)\n"
               "\n"
               "exit codes: 0 no drift, 1 drift detected, 2 input error\n");
  return to == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pct = 20.0;
  int sustain = 2;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_drift: --threshold needs a value\n");
        return Usage(stderr);
      }
      threshold_pct = std::atof(argv[++i]);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::atof(arg.c_str() + 12);
    } else if (arg == "--sustain") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_drift: --sustain needs a value\n");
        return Usage(stderr);
      }
      sustain = std::atoi(argv[++i]);
    } else if (arg.rfind("--sustain=", 0) == 0) {
      sustain = std::atoi(arg.c_str() + 10);
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_drift: unknown flag '%s'\n", arg.c_str());
      return Usage(stderr);
    } else {
      inputs.push_back(arg);
    }
  }
  if (threshold_pct <= 0 || sustain < 1) {
    std::fprintf(stderr, "bench_drift: --threshold must be > 0 and --sustain >= 1\n");
    return 2;
  }
  if (inputs.empty()) {
    return Usage(stderr);
  }

  // A single directory argument expands to its *.json entries.
  std::vector<std::string> files;
  std::error_code ec;
  if (inputs.size() == 1 && std::filesystem::is_directory(inputs[0], ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(inputs[0], ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        files.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "bench_drift: cannot list %s: %s\n", inputs[0].c_str(),
                   ec.message().c_str());
      return 2;
    }
  } else {
    files = inputs;
  }
  // Lexicographic basename order defines the revision series regardless of
  // how the shell globbed or the caller listed the files.
  std::sort(files.begin(), files.end(), [](const std::string& a, const std::string& b) {
    return std::filesystem::path(a).filename().string() <
           std::filesystem::path(b).filename().string();
  });
  if (files.empty()) {
    std::fprintf(stderr, "bench_drift: no artifacts to fold\n");
    return 2;
  }

  std::vector<Artifact> series;
  for (const std::string& file : files) {
    Artifact a;
    if (!LoadArtifact(file, &a)) {
      return 2;
    }
    series.push_back(std::move(a));
  }

  std::printf("bench_drift: %zu revision(s), threshold %.0f%%, sustain %d\n\n", series.size(),
              threshold_pct, sustain);

  // Union of scenario ids across the whole series, in map order.
  std::map<std::string, bool> all_ids;
  for (const Artifact& a : series) {
    for (const auto& [id, sc] : a.scenarios) {
      all_ids[id] = true;
    }
  }

  int drift_flags = 0;
  const double limit = 1.0 + threshold_pct / 100.0;
  for (const auto& [id, unused] : all_ids) {
    std::printf("%s\n", id.c_str());
    // Per-cell state for the sustained-regression check: the baseline is the
    // first revision that recorded the cell; `over` counts the current run of
    // consecutive over-threshold revisions.
    std::map<std::string, double> baseline;
    std::map<std::string, int> over;
    const Scenario* prev = nullptr;
    const Artifact* prev_art = nullptr;
    for (const Artifact& a : series) {
      const auto it = a.scenarios.find(id);
      if (it == a.scenarios.end()) {
        std::printf("  %-24s %-12s (absent)\n", a.file.c_str(), a.revision.c_str());
        continue;
      }
      const Scenario& sc = it->second;
      std::string cells_text;
      for (const auto& [key, cell] : sc.cells) {
        char buf[128];
        std::snprintf(buf, sizeof buf, "  [%s %.3fs]", key.c_str(), cell.seconds);
        cells_text += buf;
        if (!cell.identical) {
          std::printf("  DRIFT: %s %s: parallel run diverged from serial oracle\n",
                      a.file.c_str(), key.c_str());
          ++drift_flags;
        }
        const auto base = baseline.find(key);
        if (base == baseline.end()) {
          baseline[key] = cell.seconds;
          over[key] = 0;
        } else if (base->second > 0 && cell.seconds > base->second * limit) {
          if (++over[key] >= sustain) {
            std::printf("  DRIFT: %s %s: %.3fs is %.0f%% over baseline %.3fs "
                        "(%d consecutive revisions)\n",
                        a.file.c_str(), key.c_str(), cell.seconds,
                        (cell.seconds / base->second - 1.0) * 100.0, base->second, over[key]);
            ++drift_flags;
          }
        } else {
          over[key] = 0;
        }
      }
      std::printf("  %-24s %-12s schedules=%lld%s\n", a.file.c_str(), a.revision.c_str(),
                  sc.schedules, cells_text.c_str());
      if (prev != nullptr && prev->schedules != sc.schedules) {
        std::printf("  DRIFT: %s -> %s: schedule count changed %lld -> %lld\n",
                    prev_art->file.c_str(), a.file.c_str(), prev->schedules, sc.schedules);
        ++drift_flags;
      }
      prev = &sc;
      prev_art = &a;
    }
    std::printf("\n");
  }

  if (drift_flags > 0) {
    std::printf("bench_drift: %d drift flag(s) raised\n", drift_flags);
    return 1;
  }
  std::printf("bench_drift: no drift\n");
  return 0;
}
