// Parallel LIFS frontier exploration — worker-count × replay-cache ×
// triage-pre-filter sweep (DESIGN.md §9, §12, §13).
//
// Runs LIFS on the multi-interleaving corpus scenarios at several worker
// counts with checkpoint/prefix-replay off and on, follows each with a
// Causality Analysis pass with the static triage pre-filter off and on,
// verifies that every cell is identical to the serial replay-off
// prefilter-off one (the §9/§12/§13 determinism contract), and writes the
// sweep to BENCH_parallel_lifs.json:
//
//   $ bench_parallel_lifs                              # defaults below
//   $ bench_parallel_lifs --workers=1,2,4 --repeat=9 \
//         --scenarios=CVE-2017-15649,syz-02 --out=sweep.json
//   $ bench_parallel_lifs --baseline=old_sweep.json    # regression check
//
// Per (scenario, workers, replay, prefilter) cell the minimum wall time over
// --repeat runs is reported (minimum, not mean: scheduling noise only ever adds
// time), together with the executed/replayed step split from the run budget.
// Speedups are relative to the measured workers=1 replay-off cell of the
// same binary; hardware_concurrency is recorded so single-CPU CI hosts are
// readable as such.
//
// --baseline=FILE compares this sweep against an archived one: schedule
// counts must match bit-exactly (hard failure — the search semantics
// changed), and any matched cell more than 20% slower is flagged on stderr
// (soft: CI hosts are noisy, so drift warns rather than fails).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/bugs/registry.h"
#include "src/core/causality.h"
#include "src/core/lifs.h"
#include "src/obs/metrics.h"
#include "src/svc/jsonv.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace {

using namespace aitia;

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    if (comma > start) {
      out.push_back(text.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

// The fields the serial/parallel/replay contract pins down, flattened for
// equality. budget.steps stays out: parallel batches legitimately overshoot.
std::string ResultKey(const LifsResult& r) {
  return StrFormat("reproduced=%d k=%d executed=%lld pruned=%lld schedule=%s", r.reproduced ? 1 : 0,
                   r.interleaving_count, static_cast<long long>(r.schedules_executed),
                   static_cast<long long>(r.schedules_pruned),
                   r.failing_schedule.ToString().c_str());
}

// Causality-side identity: the verdict sequence and root-cause set must be
// bit-equal in every cell, whatever the pre-filter skipped.
std::string CaKey(const CausalityResult& r) {
  std::string key = "verdicts=";
  for (const TestedRace& t : r.tested) {
    key += RaceVerdictName(t.verdict);
    key += ";";
  }
  key += " roots=";
  for (size_t i : r.root_cause_indices) {
    key += StrFormat("%zu,", i);
  }
  return key;
}

struct Cell {
  size_t workers = 0;
  bool replay = false;
  bool prefilter = false;
  double seconds = 0;
  // Causality Analysis pass over the same failing run: wall time and the
  // dynamic-vs-static flip split (flips_skipped is 0 with the pre-filter
  // off; with it on, every skip is a supervised re-execution not paid).
  double ca_seconds = 0;
  int64_t flips_executed = 0;
  int64_t flips_skipped = 0;
  // Per-phase split of the best rep's wall time (LifsResult's breakdown of
  // the discovery passes vs the depth-k frontier passes).
  double discovery_seconds = 0;
  double depth_seconds = 0;
  int64_t schedules = 0;
  int64_t speculative = 0;
  // Run-budget step split of the best rep: replay on trades executed for
  // replayed while the total stays cold-run-equivalent.
  int64_t executed_steps = 0;
  int64_t replayed_steps = 0;
  // ckpt.* counter deltas of the best rep (all zero with replay off).
  int64_t ckpt_hits = 0;
  int64_t ckpt_misses = 0;
  int64_t ckpt_stores = 0;
  int64_t ckpt_evictions = 0;
  bool identical = false;
};

// One archived cell from a --baseline file.
struct BaselineCell {
  size_t workers = 0;
  bool replay = false;
  bool prefilter = false;
  double seconds = 0;
};

struct BaselineScenario {
  int64_t schedules = 0;
  std::vector<BaselineCell> cells;
};

bool LoadBaseline(const std::string& path,
                  std::vector<std::pair<std::string, BaselineScenario>>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_parallel_lifs: cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = svc::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_parallel_lifs: baseline %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  const svc::JsonValue doc = std::move(parsed).value();
  const svc::JsonValue* scenarios = doc.Find("scenarios");
  if (scenarios == nullptr || scenarios->kind() != svc::JsonValue::Kind::kArray) {
    std::fprintf(stderr, "bench_parallel_lifs: baseline %s has no scenarios array\n",
                 path.c_str());
    return false;
  }
  for (const svc::JsonValue& s : scenarios->items()) {
    const svc::JsonValue* id = s.Find("id");
    if (id == nullptr || !id->is_string()) {
      continue;
    }
    BaselineScenario bs;
    if (const svc::JsonValue* n = s.Find("schedules"); n != nullptr) {
      bs.schedules = n->AsInt();
    }
    if (const svc::JsonValue* sweep = s.Find("sweep");
        sweep != nullptr && sweep->kind() == svc::JsonValue::Kind::kArray) {
      for (const svc::JsonValue& c : sweep->items()) {
        BaselineCell cell;
        if (const svc::JsonValue* w = c.Find("workers"); w != nullptr) {
          cell.workers = static_cast<size_t>(w->AsInt());
        }
        // Pre-replay baselines have no "replay" field; treat them as the
        // replay-off cells they were. Same for pre-prefilter baselines and
        // "prefilter".
        if (const svc::JsonValue* r = c.Find("replay"); r != nullptr) {
          cell.replay = r->AsBool();
        }
        if (const svc::JsonValue* pf = c.Find("prefilter"); pf != nullptr) {
          cell.prefilter = pf->AsBool();
        }
        if (const svc::JsonValue* sec = c.Find("seconds"); sec != nullptr) {
          cell.seconds = sec->AsDouble();
        }
        bs.cells.push_back(cell);
      }
    }
    out.emplace_back(id->AsString(), std::move(bs));
  }
  return true;
}

#ifndef AITIA_GIT_REVISION
#define AITIA_GIT_REVISION "unknown"
#endif

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> workers = {1, 2, 4, 8};
  std::vector<std::string> scenario_ids;
  int repeat = 5;
  std::string out_path = "BENCH_parallel_lifs.json";
  std::string baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers.clear();
      for (const std::string& w : SplitCsv(arg.substr(10))) {
        workers.push_back(static_cast<size_t>(std::strtoull(w.c_str(), nullptr, 10)));
      }
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      scenario_ids = SplitCsv(arg.substr(12));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel_lifs [--workers=1,2,4,8] [--scenarios=id,...]\n"
                   "                           [--repeat=N] [--out=FILE.json]\n"
                   "                           [--baseline=OLD.json]\n");
      return 2;
    }
  }
  if (repeat < 1) {
    repeat = 1;
  }
  if (scenario_ids.empty()) {
    // Default to the bugs that need k >= 2: their frontiers are the widest,
    // so they are where parallel exploration and prefix replay can help.
    for (const ScenarioEntry& e : AllScenarios()) {
      if (e.make().truth.expected_interleavings >= 2) {
        scenario_ids.push_back(e.id);
      }
    }
    // Plus the scenario with statically dischargeable flips, so the sweep
    // exercises the prefilter dimension's skip accounting end to end.
    scenario_ids.push_back("syz-09");
  }

  std::vector<std::pair<std::string, BaselineScenario>> baseline;
  if (!baseline_path.empty() && !LoadBaseline(baseline_path, baseline)) {
    return 2;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== Parallel LIFS sweep (hardware_concurrency=%u) ===\n\n", hw);

  std::string json = StrFormat("{\n  \"git_revision\": \"%s\",\n"
                               "  \"hardware_concurrency\": %u,\n  \"repeat\": %d,\n"
                               "  \"scenario_count\": %zu,\n"
                               "  \"scenarios\": [\n",
                               AITIA_GIT_REVISION, hw, repeat, scenario_ids.size());
  bool all_identical = true;
  bool baseline_schedules_match = true;
  int drift_flags = 0;
  for (size_t si = 0; si < scenario_ids.size(); ++si) {
    const std::string& id = scenario_ids[si];
    const ScenarioEntry* entry = FindScenario(id);
    if (entry == nullptr) {
      std::fprintf(stderr, "bench_parallel_lifs: unknown scenario '%s'\n", id.c_str());
      return 2;
    }
    BugScenario s = entry->make();

    std::vector<Cell> cells;
    std::string serial_key;
    double serial_seconds = 0;
    for (size_t w : workers) {
      for (const bool replay : {false, true}) {
        for (const bool prefilter : {false, true}) {
          Cell cell;
          cell.workers = w;
          cell.replay = replay;
          cell.prefilter = prefilter;
          cell.seconds = -1;
          cell.ca_seconds = -1;
          for (int rep = 0; rep < repeat; ++rep) {
            LifsOptions options;
            options.target_type = s.truth.failure_type;
            options.workers = w;
            options.checkpointing = replay;
            Lifs lifs(s.image.get(), s.slice, s.setup, options);
            const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
            Stopwatch watch;
            LifsResult r = lifs.Run();
            const double elapsed = watch.ElapsedSeconds();
            if (cell.seconds < 0 || elapsed < cell.seconds) {
              cell.seconds = elapsed;
              cell.discovery_seconds = r.discovery_seconds;
              cell.depth_seconds = r.depth_seconds;
              cell.executed_steps = r.budget.executed_steps;
              cell.replayed_steps = r.budget.replayed_steps;
              const obs::MetricsSnapshot delta =
                  obs::MetricsRegistry::Global().Snapshot().Delta(before);
              cell.ckpt_hits = delta.counter("ckpt.hits");
              cell.ckpt_misses = delta.counter("ckpt.misses");
              cell.ckpt_stores = delta.counter("ckpt.stores");
              cell.ckpt_evictions = delta.counter("ckpt.evictions");
            }
            cell.schedules = r.schedules_executed;
            cell.speculative = r.speculative_runs;

            CausalityOptions co;
            co.workers = w;
            co.checkpointing = replay;
            if (!prefilter) {
              co.stages.clear();
            }
            CausalityAnalysis ca(s.image.get(), s.slice, s.setup, &r, co);
            Stopwatch ca_watch;
            CausalityResult cr = ca.Run();
            const double ca_elapsed = ca_watch.ElapsedSeconds();
            if (cell.ca_seconds < 0 || ca_elapsed < cell.ca_seconds) {
              cell.ca_seconds = ca_elapsed;
            }
            cell.flips_executed = cr.schedules_executed;
            cell.flips_skipped = cr.flips_skipped;

            const std::string key = ResultKey(r) + " " + CaKey(cr);
            if (w == workers.front() && !replay && !prefilter && rep == 0) {
              serial_key = key;
            }
            cell.identical = key == serial_key;
            all_identical = all_identical && cell.identical;
          }
          if (w == workers.front() && !replay && !prefilter) {
            serial_seconds = cell.seconds;
          }
          cells.push_back(cell);
        }
      }
    }

    std::printf("%-18s\n", id.c_str());
    for (const Cell& c : cells) {
      std::printf("  w=%zu replay=%-3s prefilter=%-3s %8.3fms (x%.2f)  "
                  "executed=%lld replayed=%lld flips=%lld skipped=%lld%s\n",
                  c.workers, c.replay ? "on" : "off", c.prefilter ? "on" : "off",
                  c.seconds * 1e3, c.seconds > 0 ? serial_seconds / c.seconds : 0.0,
                  static_cast<long long>(c.executed_steps),
                  static_cast<long long>(c.replayed_steps),
                  static_cast<long long>(c.flips_executed),
                  static_cast<long long>(c.flips_skipped), c.identical ? "" : "  DIFF!");
    }

    // Regression check against the archived sweep: bit-equal schedule counts
    // (semantics), flagged wall-clock drift (performance).
    for (const auto& [bid, bs] : baseline) {
      if (bid != id) {
        continue;
      }
      if (bs.schedules != cells.front().schedules) {
        std::fprintf(stderr,
                     "bench_parallel_lifs: %s schedule count changed vs baseline "
                     "(%lld -> %lld)\n",
                     id.c_str(), static_cast<long long>(bs.schedules),
                     static_cast<long long>(cells.front().schedules));
        baseline_schedules_match = false;
      }
      for (const BaselineCell& bc : bs.cells) {
        for (const Cell& c : cells) {
          if (c.workers == bc.workers && c.replay == bc.replay &&
              c.prefilter == bc.prefilter && bc.seconds > 0 &&
              c.seconds > bc.seconds * 1.2) {
            std::fprintf(stderr,
                         "bench_parallel_lifs: DRIFT %s w=%zu replay=%s %.3fms -> %.3fms "
                         "(+%.0f%%)\n",
                         id.c_str(), c.workers, c.replay ? "on" : "off", bc.seconds * 1e3,
                         c.seconds * 1e3, (c.seconds / bc.seconds - 1.0) * 100.0);
            ++drift_flags;
          }
        }
      }
    }

    json += StrFormat("    {\"id\": \"%s\", \"schedules\": %lld, \"sweep\": [", id.c_str(),
                      static_cast<long long>(cells.front().schedules));
    for (size_t ci = 0; ci < cells.size(); ++ci) {
      const Cell& c = cells[ci];
      json += StrFormat("%s{\"workers\": %zu, \"replay\": %s, \"prefilter\": %s, "
                        "\"seconds\": %.6f, "
                        "\"speedup\": %.3f, "
                        "\"phases\": {\"discovery_seconds\": %.6f, \"depth_seconds\": %.6f}, "
                        "\"speculative_runs\": %lld, "
                        "\"executed_steps\": %lld, \"replayed_steps\": %lld, "
                        "\"ckpt\": {\"hits\": %lld, \"misses\": %lld, \"stores\": %lld, "
                        "\"evictions\": %lld}, "
                        "\"ca_seconds\": %.6f, "
                        "\"flips\": {\"executed\": %lld, \"skipped\": %lld}, "
                        "\"identical_to_serial\": %s}",
                        ci == 0 ? "" : ", ", c.workers, c.replay ? "true" : "false",
                        c.prefilter ? "true" : "false", c.seconds,
                        c.seconds > 0 ? serial_seconds / c.seconds : 0.0,
                        c.discovery_seconds, c.depth_seconds,
                        static_cast<long long>(c.speculative),
                        static_cast<long long>(c.executed_steps),
                        static_cast<long long>(c.replayed_steps),
                        static_cast<long long>(c.ckpt_hits), static_cast<long long>(c.ckpt_misses),
                        static_cast<long long>(c.ckpt_stores),
                        static_cast<long long>(c.ckpt_evictions),
                        c.ca_seconds,
                        static_cast<long long>(c.flips_executed),
                        static_cast<long long>(c.flips_skipped),
                        c.identical ? "true" : "false");
    }
    json += StrFormat("]}%s\n", si + 1 == scenario_ids.size() ? "" : ",");
  }
  json += "  ]\n}\n";

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_parallel_lifs: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (drift_flags > 0) {
    std::fprintf(stderr, "bench_parallel_lifs: %d cell(s) drifted >20%% vs baseline (soft)\n",
                 drift_flags);
  }
  if (!all_identical) {
    std::fprintf(stderr, "bench_parallel_lifs: RESULT DIVERGED FROM SERIAL REPLAY-OFF RUN\n");
    return 1;
  }
  if (!baseline_schedules_match) {
    return 1;
  }
  return 0;
}
