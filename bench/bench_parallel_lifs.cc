// Parallel LIFS frontier exploration — worker-count sweep (DESIGN.md §9).
//
// Runs LIFS on the multi-interleaving corpus scenarios at several worker
// counts, verifies that every parallel result is identical to the serial
// one (the §9 determinism contract), and writes the timing sweep to
// BENCH_parallel_lifs.json:
//
//   $ bench_parallel_lifs                              # defaults below
//   $ bench_parallel_lifs --workers=1,2,4 --repeat=9 \
//         --scenarios=CVE-2017-15649,syz-02 --out=sweep.json
//
// Per (scenario, workers) cell the minimum wall time over --repeat runs is
// reported (minimum, not mean: scheduling noise only ever adds time).
// Speedups are relative to the measured workers=1 cell of the same binary;
// hardware_concurrency is recorded so single-CPU CI hosts are readable as
// such.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/bugs/registry.h"
#include "src/core/lifs.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace {

using namespace aitia;

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    if (comma > start) {
      out.push_back(text.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

// The fields the serial/parallel contract pins down, flattened for equality.
std::string ResultKey(const LifsResult& r) {
  return StrFormat("reproduced=%d k=%d executed=%lld pruned=%lld schedule=%s", r.reproduced ? 1 : 0,
                   r.interleaving_count, static_cast<long long>(r.schedules_executed),
                   static_cast<long long>(r.schedules_pruned),
                   r.failing_schedule.ToString().c_str());
}

struct Cell {
  size_t workers = 0;
  double seconds = 0;
  // Per-phase split of the best rep's wall time (LifsResult's breakdown of
  // the discovery passes vs the depth-k frontier passes).
  double discovery_seconds = 0;
  double depth_seconds = 0;
  int64_t schedules = 0;
  int64_t speculative = 0;
  bool identical = false;
};

#ifndef AITIA_GIT_REVISION
#define AITIA_GIT_REVISION "unknown"
#endif

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> workers = {1, 2, 4, 8};
  std::vector<std::string> scenario_ids;
  int repeat = 5;
  std::string out_path = "BENCH_parallel_lifs.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers.clear();
      for (const std::string& w : SplitCsv(arg.substr(10))) {
        workers.push_back(static_cast<size_t>(std::strtoull(w.c_str(), nullptr, 10)));
      }
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      scenario_ids = SplitCsv(arg.substr(12));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel_lifs [--workers=1,2,4,8] [--scenarios=id,...]\n"
                   "                           [--repeat=N] [--out=FILE.json]\n");
      return 2;
    }
  }
  if (repeat < 1) {
    repeat = 1;
  }
  if (scenario_ids.empty()) {
    // Default to the bugs that need k >= 2: their frontiers are the widest,
    // so they are where parallel exploration can actually help.
    for (const ScenarioEntry& e : AllScenarios()) {
      if (e.make().truth.expected_interleavings >= 2) {
        scenario_ids.push_back(e.id);
      }
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== Parallel LIFS sweep (hardware_concurrency=%u) ===\n\n", hw);

  std::string json = StrFormat("{\n  \"git_revision\": \"%s\",\n"
                               "  \"hardware_concurrency\": %u,\n  \"repeat\": %d,\n"
                               "  \"scenario_count\": %zu,\n"
                               "  \"scenarios\": [\n",
                               AITIA_GIT_REVISION, hw, repeat, scenario_ids.size());
  bool all_identical = true;
  for (size_t si = 0; si < scenario_ids.size(); ++si) {
    const std::string& id = scenario_ids[si];
    const ScenarioEntry* entry = FindScenario(id);
    if (entry == nullptr) {
      std::fprintf(stderr, "bench_parallel_lifs: unknown scenario '%s'\n", id.c_str());
      return 2;
    }
    BugScenario s = entry->make();

    std::vector<Cell> cells;
    std::string serial_key;
    double serial_seconds = 0;
    for (size_t w : workers) {
      Cell cell;
      cell.workers = w;
      cell.seconds = -1;
      for (int rep = 0; rep < repeat; ++rep) {
        LifsOptions options;
        options.target_type = s.truth.failure_type;
        options.workers = w;
        Lifs lifs(s.image.get(), s.slice, s.setup, options);
        Stopwatch watch;
        LifsResult r = lifs.Run();
        const double elapsed = watch.ElapsedSeconds();
        if (cell.seconds < 0 || elapsed < cell.seconds) {
          cell.seconds = elapsed;
          cell.discovery_seconds = r.discovery_seconds;
          cell.depth_seconds = r.depth_seconds;
        }
        cell.schedules = r.schedules_executed;
        cell.speculative = r.speculative_runs;
        const std::string key = ResultKey(r);
        if (w == workers.front() && rep == 0) {
          serial_key = key;
        }
        cell.identical = key == serial_key;
        all_identical = all_identical && cell.identical;
      }
      if (w == workers.front()) {
        serial_seconds = cell.seconds;
      }
      cells.push_back(cell);
    }

    std::printf("%-18s", id.c_str());
    for (const Cell& c : cells) {
      std::printf("  w=%zu %8.3fms (x%.2f%s)", c.workers, c.seconds * 1e3,
                  c.seconds > 0 ? serial_seconds / c.seconds : 0.0, c.identical ? "" : " DIFF!");
    }
    std::printf("\n");

    json += StrFormat("    {\"id\": \"%s\", \"schedules\": %lld, \"sweep\": [", id.c_str(),
                      static_cast<long long>(cells.front().schedules));
    for (size_t ci = 0; ci < cells.size(); ++ci) {
      const Cell& c = cells[ci];
      json += StrFormat("%s{\"workers\": %zu, \"seconds\": %.6f, \"speedup\": %.3f, "
                        "\"phases\": {\"discovery_seconds\": %.6f, \"depth_seconds\": %.6f}, "
                        "\"speculative_runs\": %lld, \"identical_to_serial\": %s}",
                        ci == 0 ? "" : ", ", c.workers, c.seconds,
                        c.seconds > 0 ? serial_seconds / c.seconds : 0.0,
                        c.discovery_seconds, c.depth_seconds,
                        static_cast<long long>(c.speculative), c.identical ? "true" : "false");
    }
    json += StrFormat("]}%s\n", si + 1 == scenario_ids.size() ? "" : ",");
  }
  json += "  ]\n}\n";

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_parallel_lifs: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!all_identical) {
    std::fprintf(stderr, "bench_parallel_lifs: PARALLEL RESULT DIVERGED FROM SERIAL\n");
    return 1;
  }
  return 0;
}
