// §5.2 Conciseness — how much a causality chain shrinks the developer's
// search space.
//
// Paper numbers on real kernels: an average failed execution contains
// 9592.8 memory-accessing instructions and 108.4 individual data races,
// while the causality chain averages 3.0 races with zero benign entries.
// The simulator's absolute counts are smaller (scenarios are distilled), but
// the *orders-of-magnitude collapse* — accesses >> raw races >> chain — is
// the reproduced result, together with "no benign race ever enters a chain".

#include <cstdio>
#include <string>

#include "src/baselines/racecount.h"
#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/fuzz/fuzzer.h"

int main() {
  using namespace aitia;
  std::printf("=== §5.2: conciseness of causality chains ===\n\n");
  std::printf("%-16s | %10s %10s %12s | %8s %8s\n", "Bug", "accesses", "raw races",
              "benign found", "chain", "ambig");
  std::printf("%s\n", std::string(78, '-').c_str());

  double sum_access = 0;
  double sum_races = 0;
  double sum_chain = 0;
  int n = 0;
  int benign_in_chain = 0;

  for (const ScenarioEntry& entry : AllScenarios()) {
    std::string id(entry.id);
    if (id.rfind("fig-", 0) == 0 || id.rfind("ext-", 0) == 0) {
      continue;  // the tables cover only the 22 real-world bugs
    }
    BugScenario s = entry.make();
    AitiaReport report = DiagnoseScenario(s);
    if (!report.diagnosed) {
      continue;
    }
    // The "failed execution" a developer would be handed is the bug
    // finder's full run — syscalls plus background kernel activity — not
    // the minimal reproduction slice.
    FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
    const RunResult& failed_exec =
        fuzz.found ? fuzz.run : report.lifs.failing_run;
    RawRaceStats raw = CountRawRaces(failed_exec);
    // Include phantom pairs — everything a developer would have to triage
    // without Causality Analysis.
    const int64_t raw_races =
        raw.data_races + static_cast<int64_t>(report.lifs.phantom_races.size());

    // Cross-check: no benign verdict inside the chain.
    for (const ChainNode& node : report.causality.chain.nodes()) {
      for (const RacePair& race : node.races) {
        for (const TestedRace& t : report.causality.tested) {
          if (t.race.first.di == race.first.di && t.race.second.di == race.second.di &&
              t.verdict == RaceVerdict::kBenign) {
            ++benign_in_chain;
          }
        }
      }
    }

    sum_access += static_cast<double>(raw.memory_accessing_instructions);
    sum_races += static_cast<double>(raw_races);
    sum_chain += static_cast<double>(report.causality.chain.race_count());
    ++n;
    std::printf("%-16s | %10lld %10lld %12d | %8zu %8s\n", s.id.c_str(),
                static_cast<long long>(raw.memory_accessing_instructions),
                static_cast<long long>(raw_races), report.causality.benign_count,
                report.causality.chain.race_count(),
                report.causality.ambiguous ? "yes" : "no");
  }
  std::printf("%s\n", std::string(78, '-').c_str());
  std::printf("averages over %d bugs: %.1f accesses, %.1f raw races -> %.1f races in chain\n",
              n, sum_access / n, sum_races / n, sum_chain / n);
  std::printf("benign races inside chains: %d (paper: 0)\n", benign_in_chain);
  std::printf("(paper averages: 9592.8 accesses, 108.4 races -> 3.0 races in chain)\n");
  return 0;
}
