function(aitia_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE
      aitia_core aitia_bugs aitia_fuzz aitia_baselines benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
      RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

aitia_bench(bench_table1)
aitia_bench(bench_table2)
aitia_bench(bench_table3)
aitia_bench(bench_fig5)
aitia_bench(bench_conciseness)
aitia_bench(bench_comparison)
aitia_bench(bench_ablation)
aitia_bench(bench_micro)
aitia_bench(bench_parallel_lifs)
