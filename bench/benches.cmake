function(aitia_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE
      aitia_core aitia_bugs aitia_fuzz aitia_baselines benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
      RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

aitia_bench(bench_table1)
aitia_bench(bench_table2)
aitia_bench(bench_table3)
aitia_bench(bench_fig5)
aitia_bench(bench_conciseness)
aitia_bench(bench_comparison)
aitia_bench(bench_ablation)
aitia_bench(bench_micro)
aitia_bench(bench_parallel_lifs)

# Provenance for the sweep artifact: BENCH_parallel_lifs.json records the git
# revision it was built from, so archived sweeps stay comparable.
execute_process(
    COMMAND git -C ${CMAKE_SOURCE_DIR} rev-parse --short HEAD
    OUTPUT_VARIABLE AITIA_GIT_REVISION
    OUTPUT_STRIP_TRAILING_WHITESPACE
    ERROR_QUIET)
if(NOT AITIA_GIT_REVISION)
  set(AITIA_GIT_REVISION "unknown")
endif()
target_compile_definitions(bench_parallel_lifs PRIVATE
    AITIA_GIT_REVISION="${AITIA_GIT_REVISION}")
# The --baseline regression check parses archived sweep JSON with the svc
# parser; the bench links it directly (the other benches do not need it).
target_link_libraries(bench_parallel_lifs PRIVATE aitia_svc)

# Cross-revision drift tracker: folds a directory of archived
# BENCH_parallel_lifs.json artifacts into a per-revision series and fails on
# schedule-count changes or sustained wall-clock regressions. A plain tool
# (no google-benchmark dependency) that only needs the svc JSON parser.
add_executable(bench_drift ${CMAKE_SOURCE_DIR}/bench/bench_drift.cc)
target_link_libraries(bench_drift PRIVATE aitia_svc)
set_target_properties(bench_drift PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
