// Table 2 — CVEs caused by concurrency failures in Linux.
//
// Regenerates the paper's columns per CVE: LIFS time and schedule count, the
// interleaving count at reproduction, and Causality Analysis time and
// schedule count. Absolute times are milliseconds here (deterministic
// simulator) versus the paper's seconds (real kernel in a VM that must
// reboot after every crash); the reproduced *shape* is what matters:
// every CVE reproduces with 1-2 interleavings, and CA runs more schedules
// relative to its stage than LIFS needs to reproduce.

#include <cstdio>
#include <map>
#include <string>

#include "src/bugs/registry.h"
#include "src/core/aitia.h"

namespace {

struct PaperRow {
  double lifs_s;
  int lifs_sched;
  int inter;
  double ca_s;
  int ca_sched;
};

const std::map<std::string, PaperRow> kPaper = {
    {"CVE-2019-11486", {44.7, 225, 1, 497.6, 130}},
    {"CVE-2019-6974", {103.8, 664, 1, 1183.8, 688}},
    {"CVE-2018-12232", {37.8, 536, 1, 511.4, 680}},
    {"CVE-2017-15649", {88, 1052, 2, 337.9, 257}},
    {"CVE-2017-10661", {32.8, 99, 1, 336.1, 266}},
    {"CVE-2017-7533", {64.5, 1056, 1, 1846.7, 1578}},
    {"CVE-2017-2671", {33.2, 130, 1, 195.3, 159}},
    {"CVE-2017-2636", {34.3, 197, 1, 270, 215}},
    {"CVE-2016-10200", {32.8, 112, 1, 184.9, 159}},
    {"CVE-2016-8655", {47.8, 213, 1, 184, 135}},
};

}  // namespace

int main() {
  using namespace aitia;
  std::printf("=== Table 2: CVEs caused by a concurrency failure in Linux ===\n");
  std::printf("(measured on the simulator substrate; paper values in parentheses)\n\n");
  std::printf("%-16s %-14s | %10s %8s %6s | %10s %8s | %s\n", "Bug ID", "Subsystem",
              "LIFS ms", "# sched", "Inter.", "CA ms", "# sched", "ambig");
  std::printf("%s\n", std::string(104, '-').c_str());

  int reproduced = 0;
  int ambiguous = 0;
  for (const ScenarioEntry& entry : Table2Scenarios()) {
    BugScenario s = entry.make();
    AitiaOptions options;
    options.lifs.target_type = s.truth.failure_type;
    options.causality.workers = 4;
    AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);
    const PaperRow& paper = kPaper.at(s.id);
    if (!report.diagnosed) {
      std::printf("%-16s %-14s NOT REPRODUCED\n", s.id.c_str(), s.subsystem.c_str());
      continue;
    }
    ++reproduced;
    if (report.causality.ambiguous) {
      ++ambiguous;
    }
    std::printf("%-16s %-14s | %6.2f (%5.0fs) %4lld (%4d) %3d (%d) | %6.2f (%6.0fs) %4lld (%4d) | %s\n",
                s.id.c_str(), s.subsystem.c_str(), report.lifs.seconds * 1e3, paper.lifs_s,
                static_cast<long long>(report.lifs.schedules_executed), paper.lifs_sched,
                report.lifs.interleaving_count, paper.inter,
                report.causality.seconds * 1e3, paper.ca_s,
                static_cast<long long>(report.causality.schedules_executed), paper.ca_sched,
                report.causality.ambiguous ? "yes" : "no");
  }
  std::printf("%s\n", std::string(104, '-').c_str());
  std::printf("reproduced %d/10; chains built for all reproduced CVEs; %d ambiguous case(s)\n",
              reproduced, ambiguous);
  std::printf("(paper: 9/10 full chains, CVE-2016-10200 the single ambiguous case)\n");
  return 0;
}
