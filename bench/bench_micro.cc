// Microbenchmarks (google-benchmark): raw substrate throughput.
//
// These quantify why the simulator substitution keeps the experiments cheap:
// one enforced schedule costs microseconds, versus seconds-to-minutes for a
// VM-backed run with reboot in the original system.

#include <benchmark/benchmark.h>

#include "src/bugs/registry.h"
#include "src/core/causality.h"
#include "src/core/lifs.h"
#include "src/hv/enforcer.h"
#include "src/sim/builder.h"
#include "src/sim/hb.h"
#include "src/sim/policy.h"

namespace {

using namespace aitia;

// A counting loop exercising loads/stores/branches.
KernelImage MakeLoopImage(Word iterations) {
  KernelImage image;
  Addr counter = image.AddGlobal("counter", 0);
  ProgramBuilder b("loop");
  b.MovImm(R1, iterations)
      .Lea(R2, counter)
      .Label("top")
      .Load(R3, R2)
      .AddImm(R3, R3, 1)
      .Store(R2, R3)
      .AddImm(R1, R1, -1)
      .Bnez(R1, "top")
      .Exit();
  image.AddProgram(b.Build());
  return image;
}

void BM_InterpreterSteps(benchmark::State& state) {
  KernelImage image = MakeLoopImage(state.range(0));
  std::vector<ThreadSpec> threads = {{"loop", 0, 0, ThreadKind::kSyscall}};
  int64_t steps = 0;
  for (auto _ : state) {
    KernelSim kernel(&image, threads);
    SeqPolicy policy({0});
    RunResult r = RunToCompletion(kernel, policy, {.max_steps = 10000000});
    steps += r.steps;
    benchmark::DoNotOptimize(r.trace.data());
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_InterpreterSteps)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EnforcedTotalOrderReplay(benchmark::State& state) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  LifsOptions lo;
  lo.target_type = s.truth.failure_type;
  Lifs lifs(s.image.get(), s.slice, s.setup, lo);
  LifsResult lr = lifs.Run();
  TotalOrderSchedule schedule;
  schedule.base_order = lr.failing_schedule.base_order;
  for (const ExecEvent& e : lr.failing_run.trace) {
    schedule.sequence.push_back(e.di);
  }
  for (auto _ : state) {
    Enforcer enforcer(s.image.get());
    EnforceResult er = enforcer.RunTotalOrder(s.slice, schedule, s.setup);
    benchmark::DoNotOptimize(er.run.trace.data());
  }
}
BENCHMARK(BM_EnforcedTotalOrderReplay);

void BM_LifsEndToEnd(benchmark::State& state) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  for (auto _ : state) {
    LifsOptions lo;
    lo.target_type = s.truth.failure_type;
    Lifs lifs(s.image.get(), s.slice, s.setup, lo);
    LifsResult lr = lifs.Run();
    benchmark::DoNotOptimize(lr.reproduced);
  }
}
BENCHMARK(BM_LifsEndToEnd);

void BM_CausalityAnalysis(benchmark::State& state) {
  BugScenario s = MakeScenario("CVE-2017-15649");
  LifsOptions lo;
  lo.target_type = s.truth.failure_type;
  Lifs lifs(s.image.get(), s.slice, s.setup, lo);
  LifsResult lr = lifs.Run();
  for (auto _ : state) {
    CausalityOptions co;
    co.workers = static_cast<size_t>(state.range(0));
    CausalityAnalysis ca(s.image.get(), s.slice, s.setup, &lr, co);
    CausalityResult cr = ca.Run();
    benchmark::DoNotOptimize(cr.tested.data());
  }
}
BENCHMARK(BM_CausalityAnalysis)->Arg(1)->Arg(4);

void BM_RaceExtraction(benchmark::State& state) {
  BugScenario s = MakeScenario("syz-08");
  LifsOptions lo;
  lo.target_type = s.truth.failure_type;
  Lifs lifs(s.image.get(), s.slice, s.setup, lo);
  LifsResult lr = lifs.Run();
  for (auto _ : state) {
    RaceAnalysis analysis = ExtractRaces(lr.failing_run);
    benchmark::DoNotOptimize(analysis.races.data());
  }
}
BENCHMARK(BM_RaceExtraction);

}  // namespace

BENCHMARK_MAIN();
