// Figure 5 — the LIFS search tree.
//
// Runs LIFS on the Figure 5 scenario (threads A, B and a kworker K spawned
// behind a race-steered branch) with schedule recording enabled, and prints
// the exploration: schedules per interleaving count, equivalence skips
// (DPOR), and the failing schedule. Also replays the search with pruning
// disabled to show what partial-order reduction saves.

#include <cstdio>

#include "src/bugs/registry.h"
#include "src/core/lifs.h"

namespace {

void RunOnce(const aitia::BugScenario& s, bool dpor) {
  using namespace aitia;
  LifsOptions options;
  options.keep_explored = true;
  options.dpor_pruning = dpor;
  options.target_type = s.truth.failure_type;
  Lifs lifs(s.image.get(), s.slice, s.setup, options);
  LifsResult result = lifs.Run();

  std::printf("--- DPOR-style pruning: %s ---\n", dpor ? "ON" : "OFF");
  int per_count[8] = {};
  int equivalent[8] = {};
  for (const ExploredSchedule& e : result.explored) {
    if (e.interleavings < 8) {
      per_count[e.interleavings]++;
      if (e.equivalent_to_earlier) {
        equivalent[e.interleavings]++;
      }
    }
  }
  for (int k = 0; k <= result.interleaving_count && k < 8; ++k) {
    std::printf("  interleaving count %d: %3d schedule(s) executed, %d equivalent to earlier\n",
                k, per_count[k], equivalent[k]);
  }
  std::printf("  reproduced: %s after %lld schedule(s), %lld pruned pre-run; k=%d\n",
              result.reproduced ? "yes" : "no",
              static_cast<long long>(result.schedules_executed),
              static_cast<long long>(result.schedules_pruned), result.interleaving_count);
  if (result.reproduced) {
    std::printf("  failing schedule: %s\n", result.failing_schedule.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace aitia;
  std::printf("=== Figure 5: LIFS search order on the A/B/K example ===\n\n");
  BugScenario s = MakeScenario("fig-5");
  std::printf("threads: A (3 memory ops), B (race-steered queue_work + 1 op), K (1 op)\n");
  std::printf("failure: K1 => A3' NULL dereference, reachable only when A1 => B1\n\n");
  RunOnce(s, /*dpor=*/true);
  RunOnce(s, /*dpor=*/false);
  std::printf("(paper behaviour reproduced: interleaving-count-0 runs discover the\n"
              "instructions, count 1 reproduces; pruning skips non-conflicting points)\n");
  return 0;
}
