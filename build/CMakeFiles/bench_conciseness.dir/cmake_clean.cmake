file(REMOVE_RECURSE
  "CMakeFiles/bench_conciseness.dir/bench/bench_conciseness.cc.o"
  "CMakeFiles/bench_conciseness.dir/bench/bench_conciseness.cc.o.d"
  "bench/bench_conciseness"
  "bench/bench_conciseness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conciseness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
