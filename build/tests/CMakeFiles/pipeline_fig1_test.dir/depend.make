# Empty dependencies file for pipeline_fig1_test.
# This may be replaced when dependencies are built.
