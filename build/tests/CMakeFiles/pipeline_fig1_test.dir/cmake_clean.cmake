file(REMOVE_RECURSE
  "CMakeFiles/pipeline_fig1_test.dir/pipeline_fig1_test.cc.o"
  "CMakeFiles/pipeline_fig1_test.dir/pipeline_fig1_test.cc.o.d"
  "pipeline_fig1_test"
  "pipeline_fig1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_fig1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
