file(REMOVE_RECURSE
  "CMakeFiles/pipeline_cve_2017_15649_test.dir/pipeline_cve_2017_15649_test.cc.o"
  "CMakeFiles/pipeline_cve_2017_15649_test.dir/pipeline_cve_2017_15649_test.cc.o.d"
  "pipeline_cve_2017_15649_test"
  "pipeline_cve_2017_15649_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_cve_2017_15649_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
