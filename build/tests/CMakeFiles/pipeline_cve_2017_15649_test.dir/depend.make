# Empty dependencies file for pipeline_cve_2017_15649_test.
# This may be replaced when dependencies are built.
