file(REMOVE_RECURSE
  "CMakeFiles/lifs_test.dir/lifs_test.cc.o"
  "CMakeFiles/lifs_test.dir/lifs_test.cc.o.d"
  "lifs_test"
  "lifs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
