# Empty compiler generated dependencies file for lifs_test.
# This may be replaced when dependencies are built.
