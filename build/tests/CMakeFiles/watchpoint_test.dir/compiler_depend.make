# Empty compiler generated dependencies file for watchpoint_test.
# This may be replaced when dependencies are built.
