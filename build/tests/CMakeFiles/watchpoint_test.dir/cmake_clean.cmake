file(REMOVE_RECURSE
  "CMakeFiles/watchpoint_test.dir/watchpoint_test.cc.o"
  "CMakeFiles/watchpoint_test.dir/watchpoint_test.cc.o.d"
  "watchpoint_test"
  "watchpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
