# Empty compiler generated dependencies file for patched_kernel_test.
# This may be replaced when dependencies are built.
