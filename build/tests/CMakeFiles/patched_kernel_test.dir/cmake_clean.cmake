file(REMOVE_RECURSE
  "CMakeFiles/patched_kernel_test.dir/patched_kernel_test.cc.o"
  "CMakeFiles/patched_kernel_test.dir/patched_kernel_test.cc.o.d"
  "patched_kernel_test"
  "patched_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patched_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
