file(REMOVE_RECURSE
  "CMakeFiles/corpus_metadata_test.dir/corpus_metadata_test.cc.o"
  "CMakeFiles/corpus_metadata_test.dir/corpus_metadata_test.cc.o.d"
  "corpus_metadata_test"
  "corpus_metadata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
