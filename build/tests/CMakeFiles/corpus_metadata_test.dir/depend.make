# Empty dependencies file for corpus_metadata_test.
# This may be replaced when dependencies are built.
