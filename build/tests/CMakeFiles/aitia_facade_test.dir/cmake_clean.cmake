file(REMOVE_RECURSE
  "CMakeFiles/aitia_facade_test.dir/aitia_facade_test.cc.o"
  "CMakeFiles/aitia_facade_test.dir/aitia_facade_test.cc.o.d"
  "aitia_facade_test"
  "aitia_facade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aitia_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
