# Empty dependencies file for aitia_facade_test.
# This may be replaced when dependencies are built.
