# Empty dependencies file for ext_irq_test.
# This may be replaced when dependencies are built.
