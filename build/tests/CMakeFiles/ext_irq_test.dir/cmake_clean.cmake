file(REMOVE_RECURSE
  "CMakeFiles/ext_irq_test.dir/ext_irq_test.cc.o"
  "CMakeFiles/ext_irq_test.dir/ext_irq_test.cc.o.d"
  "ext_irq_test"
  "ext_irq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_irq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
