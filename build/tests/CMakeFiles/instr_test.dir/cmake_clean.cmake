file(REMOVE_RECURSE
  "CMakeFiles/instr_test.dir/instr_test.cc.o"
  "CMakeFiles/instr_test.dir/instr_test.cc.o.d"
  "instr_test"
  "instr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
