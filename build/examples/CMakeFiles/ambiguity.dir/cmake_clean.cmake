file(REMOVE_RECURSE
  "CMakeFiles/ambiguity.dir/ambiguity.cpp.o"
  "CMakeFiles/ambiguity.dir/ambiguity.cpp.o.d"
  "ambiguity"
  "ambiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
