
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ambiguity.cpp" "examples/CMakeFiles/ambiguity.dir/ambiguity.cpp.o" "gcc" "examples/CMakeFiles/ambiguity.dir/ambiguity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aitia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bugs/CMakeFiles/aitia_bugs.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/aitia_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/aitia_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/aitia_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aitia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aitia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
