# Empty dependencies file for syzkaller_pipeline.
# This may be replaced when dependencies are built.
