file(REMOVE_RECURSE
  "CMakeFiles/syzkaller_pipeline.dir/syzkaller_pipeline.cpp.o"
  "CMakeFiles/syzkaller_pipeline.dir/syzkaller_pipeline.cpp.o.d"
  "syzkaller_pipeline"
  "syzkaller_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syzkaller_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
