file(REMOVE_RECURSE
  "CMakeFiles/cve_2017_15649.dir/cve_2017_15649.cpp.o"
  "CMakeFiles/cve_2017_15649.dir/cve_2017_15649.cpp.o.d"
  "cve_2017_15649"
  "cve_2017_15649.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_2017_15649.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
