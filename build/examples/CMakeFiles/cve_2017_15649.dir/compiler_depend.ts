# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cve_2017_15649.
