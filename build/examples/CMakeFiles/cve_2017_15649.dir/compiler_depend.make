# Empty compiler generated dependencies file for cve_2017_15649.
# This may be replaced when dependencies are built.
