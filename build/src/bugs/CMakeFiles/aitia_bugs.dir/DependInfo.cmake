
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bugs/abstract/ext_irq.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/ext_irq.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/ext_irq.cc.o.d"
  "/root/repo/src/bugs/abstract/fig1.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/fig1.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/fig1.cc.o.d"
  "/root/repo/src/bugs/abstract/fig4.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/fig4.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/fig4.cc.o.d"
  "/root/repo/src/bugs/abstract/fig5.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/fig5.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/fig5.cc.o.d"
  "/root/repo/src/bugs/abstract/fig7.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/fig7.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/abstract/fig7.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2016_10200.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2016_10200.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2016_10200.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2016_8655.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2016_8655.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2016_8655.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2017_10661.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_10661.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_10661.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2017_15649.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_15649.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_15649.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2017_2636.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_2636.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_2636.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2017_2671.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_2671.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_2671.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2017_7533.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_7533.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2017_7533.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2018_12232.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2018_12232.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2018_12232.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2019_11486.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2019_11486.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2019_11486.cc.o.d"
  "/root/repo/src/bugs/cve/cve_2019_6974.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2019_6974.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/cve/cve_2019_6974.cc.o.d"
  "/root/repo/src/bugs/diagnose.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/diagnose.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/diagnose.cc.o.d"
  "/root/repo/src/bugs/registry.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/registry.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/registry.cc.o.d"
  "/root/repo/src/bugs/scenario.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/scenario.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/scenario.cc.o.d"
  "/root/repo/src/bugs/syz/syz01_l2tp_oob.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz01_l2tp_oob.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz01_l2tp_oob.cc.o.d"
  "/root/repo/src/bugs/syz/syz02_packet_assert.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz02_packet_assert.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz02_packet_assert.cc.o.d"
  "/root/repo/src/bugs/syz/syz03_pppol2tp_uaf.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz03_pppol2tp_uaf.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz03_pppol2tp_uaf.cc.o.d"
  "/root/repo/src/bugs/syz/syz04_kvm_irqfd.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz04_kvm_irqfd.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz04_kvm_irqfd.cc.o.d"
  "/root/repo/src/bugs/syz/syz05_rxrpc_uaf.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz05_rxrpc_uaf.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz05_rxrpc_uaf.cc.o.d"
  "/root/repo/src/bugs/syz/syz06_bpf_gpf.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz06_bpf_gpf.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz06_bpf_gpf.cc.o.d"
  "/root/repo/src/bugs/syz/syz07_block_uaf.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz07_block_uaf.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz07_block_uaf.cc.o.d"
  "/root/repo/src/bugs/syz/syz08_j1939_refcount.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz08_j1939_refcount.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz08_j1939_refcount.cc.o.d"
  "/root/repo/src/bugs/syz/syz09_seccomp_leak.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz09_seccomp_leak.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz09_seccomp_leak.cc.o.d"
  "/root/repo/src/bugs/syz/syz10_md_assert.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz10_md_assert.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz10_md_assert.cc.o.d"
  "/root/repo/src/bugs/syz/syz11_floppy_assert.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz11_floppy_assert.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz11_floppy_assert.cc.o.d"
  "/root/repo/src/bugs/syz/syz12_bluetooth_sco.cc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz12_bluetooth_sco.cc.o" "gcc" "src/bugs/CMakeFiles/aitia_bugs.dir/syz/syz12_bluetooth_sco.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/aitia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/aitia_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aitia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/aitia_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/aitia_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aitia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
