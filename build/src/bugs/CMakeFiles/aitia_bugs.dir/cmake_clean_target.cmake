file(REMOVE_RECURSE
  "libaitia_bugs.a"
)
