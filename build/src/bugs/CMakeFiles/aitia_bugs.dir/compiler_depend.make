# Empty compiler generated dependencies file for aitia_bugs.
# This may be replaced when dependencies are built.
