
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aitia.cc" "src/core/CMakeFiles/aitia_core.dir/aitia.cc.o" "gcc" "src/core/CMakeFiles/aitia_core.dir/aitia.cc.o.d"
  "/root/repo/src/core/causality.cc" "src/core/CMakeFiles/aitia_core.dir/causality.cc.o" "gcc" "src/core/CMakeFiles/aitia_core.dir/causality.cc.o.d"
  "/root/repo/src/core/chain.cc" "src/core/CMakeFiles/aitia_core.dir/chain.cc.o" "gcc" "src/core/CMakeFiles/aitia_core.dir/chain.cc.o.d"
  "/root/repo/src/core/lifs.cc" "src/core/CMakeFiles/aitia_core.dir/lifs.cc.o" "gcc" "src/core/CMakeFiles/aitia_core.dir/lifs.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/aitia_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/aitia_core.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/aitia_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/aitia_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aitia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aitia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
