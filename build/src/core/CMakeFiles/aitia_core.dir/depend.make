# Empty dependencies file for aitia_core.
# This may be replaced when dependencies are built.
