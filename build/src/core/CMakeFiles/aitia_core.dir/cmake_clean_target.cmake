file(REMOVE_RECURSE
  "libaitia_core.a"
)
