file(REMOVE_RECURSE
  "CMakeFiles/aitia_core.dir/aitia.cc.o"
  "CMakeFiles/aitia_core.dir/aitia.cc.o.d"
  "CMakeFiles/aitia_core.dir/causality.cc.o"
  "CMakeFiles/aitia_core.dir/causality.cc.o.d"
  "CMakeFiles/aitia_core.dir/chain.cc.o"
  "CMakeFiles/aitia_core.dir/chain.cc.o.d"
  "CMakeFiles/aitia_core.dir/lifs.cc.o"
  "CMakeFiles/aitia_core.dir/lifs.cc.o.d"
  "CMakeFiles/aitia_core.dir/report.cc.o"
  "CMakeFiles/aitia_core.dir/report.cc.o.d"
  "libaitia_core.a"
  "libaitia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aitia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
