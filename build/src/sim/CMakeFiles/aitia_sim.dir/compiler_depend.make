# Empty compiler generated dependencies file for aitia_sim.
# This may be replaced when dependencies are built.
