file(REMOVE_RECURSE
  "CMakeFiles/aitia_sim.dir/builder.cc.o"
  "CMakeFiles/aitia_sim.dir/builder.cc.o.d"
  "CMakeFiles/aitia_sim.dir/failure.cc.o"
  "CMakeFiles/aitia_sim.dir/failure.cc.o.d"
  "CMakeFiles/aitia_sim.dir/hb.cc.o"
  "CMakeFiles/aitia_sim.dir/hb.cc.o.d"
  "CMakeFiles/aitia_sim.dir/instr.cc.o"
  "CMakeFiles/aitia_sim.dir/instr.cc.o.d"
  "CMakeFiles/aitia_sim.dir/kernel.cc.o"
  "CMakeFiles/aitia_sim.dir/kernel.cc.o.d"
  "CMakeFiles/aitia_sim.dir/memory.cc.o"
  "CMakeFiles/aitia_sim.dir/memory.cc.o.d"
  "CMakeFiles/aitia_sim.dir/policy.cc.o"
  "CMakeFiles/aitia_sim.dir/policy.cc.o.d"
  "CMakeFiles/aitia_sim.dir/program.cc.o"
  "CMakeFiles/aitia_sim.dir/program.cc.o.d"
  "libaitia_sim.a"
  "libaitia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aitia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
