file(REMOVE_RECURSE
  "libaitia_sim.a"
)
