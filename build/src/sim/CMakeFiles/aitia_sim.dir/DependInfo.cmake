
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/builder.cc" "src/sim/CMakeFiles/aitia_sim.dir/builder.cc.o" "gcc" "src/sim/CMakeFiles/aitia_sim.dir/builder.cc.o.d"
  "/root/repo/src/sim/failure.cc" "src/sim/CMakeFiles/aitia_sim.dir/failure.cc.o" "gcc" "src/sim/CMakeFiles/aitia_sim.dir/failure.cc.o.d"
  "/root/repo/src/sim/hb.cc" "src/sim/CMakeFiles/aitia_sim.dir/hb.cc.o" "gcc" "src/sim/CMakeFiles/aitia_sim.dir/hb.cc.o.d"
  "/root/repo/src/sim/instr.cc" "src/sim/CMakeFiles/aitia_sim.dir/instr.cc.o" "gcc" "src/sim/CMakeFiles/aitia_sim.dir/instr.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/aitia_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/aitia_sim.dir/kernel.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/aitia_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/aitia_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/policy.cc" "src/sim/CMakeFiles/aitia_sim.dir/policy.cc.o" "gcc" "src/sim/CMakeFiles/aitia_sim.dir/policy.cc.o.d"
  "/root/repo/src/sim/program.cc" "src/sim/CMakeFiles/aitia_sim.dir/program.cc.o" "gcc" "src/sim/CMakeFiles/aitia_sim.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aitia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
