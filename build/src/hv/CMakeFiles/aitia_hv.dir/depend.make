# Empty dependencies file for aitia_hv.
# This may be replaced when dependencies are built.
