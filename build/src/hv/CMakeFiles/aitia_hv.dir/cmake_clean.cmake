file(REMOVE_RECURSE
  "CMakeFiles/aitia_hv.dir/enforcer.cc.o"
  "CMakeFiles/aitia_hv.dir/enforcer.cc.o.d"
  "libaitia_hv.a"
  "libaitia_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aitia_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
