file(REMOVE_RECURSE
  "libaitia_hv.a"
)
