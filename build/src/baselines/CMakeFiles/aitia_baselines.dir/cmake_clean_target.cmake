file(REMOVE_RECURSE
  "libaitia_baselines.a"
)
