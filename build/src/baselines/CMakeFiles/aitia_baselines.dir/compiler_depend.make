# Empty compiler generated dependencies file for aitia_baselines.
# This may be replaced when dependencies are built.
