file(REMOVE_RECURSE
  "CMakeFiles/aitia_baselines.dir/coop.cc.o"
  "CMakeFiles/aitia_baselines.dir/coop.cc.o.d"
  "CMakeFiles/aitia_baselines.dir/inflection.cc.o"
  "CMakeFiles/aitia_baselines.dir/inflection.cc.o.d"
  "CMakeFiles/aitia_baselines.dir/muvi.cc.o"
  "CMakeFiles/aitia_baselines.dir/muvi.cc.o.d"
  "CMakeFiles/aitia_baselines.dir/racecount.cc.o"
  "CMakeFiles/aitia_baselines.dir/racecount.cc.o.d"
  "libaitia_baselines.a"
  "libaitia_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aitia_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
