# Empty compiler generated dependencies file for aitia_util.
# This may be replaced when dependencies are built.
