file(REMOVE_RECURSE
  "libaitia_util.a"
)
