file(REMOVE_RECURSE
  "CMakeFiles/aitia_util.dir/log.cc.o"
  "CMakeFiles/aitia_util.dir/log.cc.o.d"
  "CMakeFiles/aitia_util.dir/rng.cc.o"
  "CMakeFiles/aitia_util.dir/rng.cc.o.d"
  "CMakeFiles/aitia_util.dir/strings.cc.o"
  "CMakeFiles/aitia_util.dir/strings.cc.o.d"
  "CMakeFiles/aitia_util.dir/thread_pool.cc.o"
  "CMakeFiles/aitia_util.dir/thread_pool.cc.o.d"
  "libaitia_util.a"
  "libaitia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aitia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
