file(REMOVE_RECURSE
  "libaitia_trace.a"
)
