# Empty compiler generated dependencies file for aitia_trace.
# This may be replaced when dependencies are built.
