file(REMOVE_RECURSE
  "CMakeFiles/aitia_trace.dir/slicer.cc.o"
  "CMakeFiles/aitia_trace.dir/slicer.cc.o.d"
  "libaitia_trace.a"
  "libaitia_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aitia_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
