file(REMOVE_RECURSE
  "CMakeFiles/aitia_fuzz.dir/fuzzer.cc.o"
  "CMakeFiles/aitia_fuzz.dir/fuzzer.cc.o.d"
  "libaitia_fuzz.a"
  "libaitia_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aitia_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
