# Empty dependencies file for aitia_fuzz.
# This may be replaced when dependencies are built.
