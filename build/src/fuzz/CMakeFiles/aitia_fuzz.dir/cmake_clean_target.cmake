file(REMOVE_RECURSE
  "libaitia_fuzz.a"
)
