// diagnose — run the full AITIA pipeline on any bundled bug scenario.
//
//   $ diagnose                        # list scenario ids
//   $ diagnose CVE-2017-15649         # fuzz, slice, reproduce, diagnose, print chain
//   $ diagnose --json CVE-2017-15649  # machine-readable report
//
// This is the "kitchen-sink" example: it exercises every public stage the
// way §4.1 describes — bug finder -> execution history -> slices -> LIFS ->
// Causality Analysis -> causality chain.

#include <cstdio>
#include <string>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/core/report.h"
#include "src/fuzz/fuzzer.h"

int main(int argc, char** argv) {
  using namespace aitia;

  bool json = false;
  if (argc >= 2 && std::string(argv[1]) == "--json") {
    json = true;
    --argc;
    ++argv;
  }
  if (argc < 2) {
    std::printf("usage: diagnose <scenario-id>\n\navailable scenarios:\n");
    for (const ScenarioEntry& e : AllScenarios()) {
      std::printf("  %s\n", e.id);
    }
    return 0;
  }

  BugScenario scenario = MakeScenario(argv[1]);
  std::printf("scenario   : %s (%s, %s)\n", scenario.id.c_str(), scenario.subsystem.c_str(),
              scenario.bug_kind.c_str());

  // Stage 1: the bug-finding system observes a failure and emits traces.
  FuzzOutcome fuzz = FuzzUntilFailure(scenario.MakeWorkload());
  if (!fuzz.found) {
    std::printf("fuzzer did not trigger the failure — diagnosing the slice directly\n");
    AitiaReport report = DiagnoseScenario(scenario);
    std::printf("%s\n", json ? ReportToJson(report, *scenario.image).c_str()
                              : report.Render(*scenario.image).c_str());
    return report.diagnosed ? 0 : 1;
  }
  std::printf("fuzzer     : failure after %d attempt(s), seed %llu: %s\n", fuzz.attempts,
              static_cast<unsigned long long>(fuzz.seed),
              fuzz.history.failure->failure.ToString().c_str());

  std::vector<Slice> slices = BuildSlices(fuzz.history);
  std::printf("modeling   : %zu candidate slice(s)\n", slices.size());
  for (const Slice& slice : slices) {
    std::printf("             %s\n", slice.Describe().c_str());
  }

  // Stages 2-5: modeling, reproducing, diagnosing, output.
  AitiaReport report = DiagnoseHistory(*scenario.image, fuzz.history);
  std::printf("used slice : %s\n", report.used_slice.Describe().c_str());
  std::printf("%s\n", json ? ReportToJson(report, *scenario.image).c_str()
                            : report.Render(*scenario.image).c_str());
  return report.diagnosed ? 0 : 1;
}
