// ambiguity — nested vs surrounding races (Figure 7, CVE-2016-10200).
//
// When one data race surrounds another, flipping the outer order necessarily
// reverses the inner one too; if both flips avoid the failure, Causality
// Analysis cannot attribute the effect and reports the surrounding race as
// ambiguous (§3.4). This is rare — CVE-2016-10200 is the single ambiguous
// case among the paper's 22 bugs, and the corpus reproduces exactly that.

#include <cstdio>

#include "src/bugs/registry.h"
#include "src/core/aitia.h"

namespace {

void Show(const char* id) {
  using namespace aitia;
  BugScenario s = MakeScenario(id);
  AitiaOptions options;
  options.lifs.target_type = s.truth.failure_type;
  AitiaReport report = DiagnoseSlice(*s.image, s.slice, s.setup, options);
  std::printf("--- %s (%s) ---\n", s.id.c_str(), s.subsystem.c_str());
  if (!report.diagnosed) {
    std::printf("not reproduced\n\n");
    return;
  }
  for (const TestedRace& t : report.causality.tested) {
    std::printf("  %-12s %s", RaceVerdictName(t.verdict),
                RaceLabel(*s.image, t.race).c_str());
    if (!t.nested.empty()) {
      std::printf("   [flip also reverses:");
      for (size_t j : t.nested) {
        std::printf(" %s", RaceLabel(*s.image, report.causality.tested[j].race).c_str());
      }
      std::printf("]");
    }
    std::printf("\n");
  }
  std::printf("  chain: %s\n\n", report.causality.chain.Render(*s.image).c_str());
}

}  // namespace

int main() {
  std::printf("Ambiguity arises when a surrounding race cannot be flipped without\n"
              "reversing a nested race that is itself a root cause (Figure 7):\n\n");
  Show("fig-7");
  Show("CVE-2016-10200");
  std::printf("For comparison, a 22-bug corpus produces ambiguity ONLY for these two\n"
              "shapes — run `diagnose <id>` on any other scenario to check.\n");
  return 0;
}
