// fault_injection — diagnose under a hostile execution environment.
//
// The paper's deployment runs on a fleet of real VMs where individual runs
// hang, die, or deviate (§4.4–§4.5). This example reproduces that regime in
// the simulator: every enforcer run of the Figure 1 diagnosis is subjected to
// a seed-fixed fault plan (10% of preemption breakpoints silently miss, a
// fraction of runs abort mid-flight), and the supervisor absorbs the damage
// with bounded retries. A second, deliberately under-budgeted pass shows the
// graceful-degradation path: flip tests that exhaust their attempts are
// reported kInconclusive — never misclassified as benign.

#include <cstdio>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"

int main() {
  using namespace aitia;

  BugScenario scenario = MakeScenario("fig-1");

  // --- Pass 1: faults everywhere, retries on -------------------------------
  AitiaOptions options;
  // Reproducing stage: 10% of preemption points are dropped, seed-fixed.
  options.lifs.supervisor.faults.seed = 0xFA117;
  options.lifs.supervisor.faults.drop_preemption_point = 100;  // per mille: 10%
  options.lifs.supervisor.max_attempts = 3;
  // Diagnosing stage: 20% of flip runs are lost mid-flight; retries re-roll
  // the fault stream the way a rebooted VM re-rolls real-world noise.
  options.causality.supervisor.faults.seed = 0xFA117;
  options.causality.supervisor.faults.abort_run = 200;  // per mille: 20%
  options.causality.supervisor.max_attempts = 6;
  // Belt and braces: wall-clock deadline + livelock watchdog per attempt.
  options.causality.supervisor.deadline_seconds = 5.0;
  options.causality.supervisor.stall_limit = 50000;

  std::printf("=== Pass 1: fault-injected diagnosis (supervised, retries on) ===\n\n");
  AitiaReport report = DiagnoseScenario(scenario, options);
  std::printf("%s\n", report.Render(*scenario.image).c_str());
  std::printf("reproducing-stage budget: %s\n", report.lifs.budget.ToString().c_str());
  std::printf("diagnosing-stage budget:  %s\n\n", report.causality.budget.ToString().c_str());

  if (!report.diagnosed) {
    std::printf("unexpected: diagnosis did not complete\n");
    return 1;
  }

  // --- Pass 2: same faults, no retry budget --------------------------------
  AitiaOptions starved = options;
  starved.causality.supervisor.faults.abort_run = 1000;  // every flip run dies
  starved.causality.supervisor.faults.abort_at_step = 1;
  starved.causality.supervisor.max_attempts = 1;

  std::printf("=== Pass 2: run budget exhausted (graceful degradation) ===\n\n");
  AitiaReport degraded = DiagnoseScenario(scenario, starved);
  std::printf("%s\n", degraded.Render(*scenario.image).c_str());

  // The degraded pass must be honest: unclassifiable races are inconclusive,
  // never reported benign or root cause.
  int fabricated = 0;
  for (const TestedRace& t : degraded.causality.tested) {
    if (t.verdict != RaceVerdict::kInconclusive) {
      ++fabricated;
    }
  }
  std::printf("degraded=%s  inconclusive=%d/%zu  fabricated verdicts=%d\n",
              degraded.degraded ? "true" : "false", degraded.causality.inconclusive_count,
              degraded.causality.tested.size(), fabricated);
  return fabricated == 0 && degraded.degraded ? 0 : 1;
}
