// syzkaller_pipeline — the full §4.1 workflow on the Figure 9 bug (syz-04).
//
//   1. a bug-finding system (our Syzkaller stand-in) fuzzes schedules until
//      the irqfd use-after-free manifests, recording timestamped syscall
//      traces and the coredump-style failure info;
//   2. the modeling stage splits the history into slices;
//   3. reproducers run LIFS on slices, backward from the failure;
//   4. diagnosers run Causality Analysis on the reproduced sequence;
//   5. the output is Figure 9(b): (A1 => B1) --> (K1 => A2) --> UAF.
//
// The interesting property (§5.2 case study): the causality crosses a thread
// boundary through an asynchronous kworker — the free that kills A2 was
// scheduled by *B*, and only because A1 => B1 exposed the object.

#include <cstdio>

#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/fuzz/fuzzer.h"

int main() {
  using namespace aitia;

  BugScenario s = MakeScenario("syz-04");
  const KernelImage& image = *s.image;

  // Stage 1: fuzz until the kernel crashes.
  FuzzOutcome fuzz = FuzzUntilFailure(s.MakeWorkload());
  if (!fuzz.found) {
    std::printf("fuzzer never hit the failure\n");
    return 1;
  }
  std::printf("syzkaller-style fuzzer: crash after %d executions\n", fuzz.attempts);
  std::printf("  crash report : %s\n", fuzz.history.failure->failure.ToString().c_str());
  std::printf("  ftrace events: %zu history entries\n", fuzz.history.entries.size());

  // Stage 2: modeling — group concurrent events into slices.
  std::vector<Slice> slices = BuildSlices(fuzz.history);
  std::printf("modeling: %zu candidate slice(s); best: %s\n", slices.size(),
              slices.empty() ? "-" : slices.front().Describe().c_str());

  // Stages 3-5.
  AitiaReport report = DiagnoseHistory(image, fuzz.history);
  if (!report.diagnosed) {
    std::printf("diagnosis failed\n");
    return 1;
  }
  std::printf("reproduced in slice %s with %d preemption(s)\n",
              report.used_slice.Describe().c_str(), report.lifs.interleaving_count);
  std::printf("\ncausality chain (Figure 9b):\n  %s\n\n",
              report.causality.chain.Render(image).c_str());
  std::printf("Note how the chain explains the asynchronous link: the kworker's kfree\n"
              "(K1) only exists because B popped the half-initialized irqfd — which the\n"
              "order A1 => B1 made visible too early.\n");
  return 0;
}
