// cve_2017_15649 — the paper's flagship multi-variable race (Figures 2 & 6).
//
// Reproduces the packet-fanout BUG_ON and prints every Causality Analysis
// step: which data race was flipped, what the kernel did under the flipped
// schedule, and how the verdicts assemble into the Figure 6 chain
//
//   (A2 => B11) ∧ (B2 => A6) --> (A6 => B12) --> (B17 => A12) --> BUG_ON

#include <cstdio>

#include "src/bugs/registry.h"
#include "src/core/aitia.h"

int main() {
  using namespace aitia;

  BugScenario s = MakeScenario("CVE-2017-15649");
  const KernelImage& image = *s.image;

  AitiaOptions options;
  options.lifs.target_type = s.truth.failure_type;
  AitiaReport report = DiagnoseSlice(image, s.slice, s.setup, options);
  if (!report.diagnosed) {
    std::printf("failed to reproduce CVE-2017-15649\n");
    return 1;
  }

  std::printf("=== CVE-2017-15649: packet fanout multi-variable race ===\n\n");
  std::printf("LIFS reproduced the BUG_ON with %d preemption(s) after %lld schedule(s).\n",
              report.lifs.interleaving_count,
              static_cast<long long>(report.lifs.schedules_executed));
  std::printf("failure-causing instruction sequence (Figure 6 'Input'):\n");
  for (const ExecEvent& e : report.lifs.failing_run.trace) {
    if (e.is_access) {
      std::printf("    %s\n", image.Describe(e.di.at).c_str());
    }
  }

  std::printf("\nCausality Analysis steps (backward, Figure 6a):\n");
  int step = 1;
  for (const TestedRace& t : report.causality.tested) {
    std::printf("  step %d: flip %-14s -> %s%s\n", step++, RaceLabel(image, t.race).c_str(),
                t.flip_still_failed ? "still fails: benign race"
                                    : "failure gone: root cause",
                t.phantom ? "  (phantom: second side reconstructed from a clean run)" : "");
    for (size_t j : t.disappeared) {
      std::printf("          while flipped, %s disappeared (race-steered control flow)\n",
                  RaceLabel(image, report.causality.tested[j].race).c_str());
    }
  }

  std::printf("\ncausality chain (Figure 6b):\n  %s\n\n",
              report.causality.chain.Render(image).c_str());
  std::printf("The developers' fix makes po->running and po->fanout be accessed\n"
              "atomically — i.e. it forbids (A2 => B11) ∧ (B2 => A6), cutting the chain\n"
              "at its first link, exactly what the chain prescribes.\n");
  return 0;
}
