// quickstart — build a tiny "kernel", break it, and let AITIA explain why.
//
// This walks the whole public API on the paper's Figure 1 example:
//
//   Thread A                 Thread B
//   A1  ptr_valid = 1;       B1  if (ptr_valid == 0) return;
//   A2  local = *ptr;        B2  ptr = NULL;
//
// and prints the causality chain (A1 => B1) --> (B2 => A2) --> NULL deref.

#include <cstdio>

#include "src/core/aitia.h"
#include "src/sim/builder.h"

int main() {
  using namespace aitia;

  // 1. Describe the kernel: globals + one program per execution context.
  KernelImage image;
  const Addr pointee = image.AddGlobal("pointee", 7);
  const Addr ptr = image.AddGlobal("ptr", static_cast<Word>(pointee));
  const Addr ptr_valid = image.AddGlobal("ptr_valid", 0);

  {
    ProgramBuilder a("thread_a");
    a.Lea(R1, ptr_valid)
        .StoreImm(R1, 1)
        .Note("A1: ptr_valid = 1")
        .Lea(R2, ptr)
        .Load(R3, R2)
        .Note("A2: local = *ptr (load ptr)")
        .Load(R3, R3)
        .Note("A2': local = *ptr (dereference)")
        .Exit();
    image.AddProgram(a.Build());
  }
  {
    ProgramBuilder b("thread_b");
    b.Lea(R1, ptr_valid)
        .Load(R2, R1)
        .Note("B1: if (ptr_valid == 0) return")
        .Beqz(R2, "out")
        .Lea(R3, ptr)
        .StoreImm(R3, 0)
        .Note("B2: ptr = NULL")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  // 2. Declare the concurrent group (one slice of two system calls).
  std::vector<ThreadSpec> slice = {
      {"syscall_a", image.ProgramByName("thread_a"), 0, ThreadKind::kSyscall},
      {"syscall_b", image.ProgramByName("thread_b"), 0, ThreadKind::kSyscall},
  };

  // 3. Diagnose: LIFS reproduces the failure, Causality Analysis flips every
  //    data race and assembles the chain.
  AitiaReport report = DiagnoseSlice(image, slice, /*setup=*/{});
  std::printf("%s\n", report.Render(image).c_str());

  if (!report.diagnosed) {
    return 1;
  }
  std::printf("How to read the chain: preventing ANY one of the listed interleaving\n"
              "orders (e.g. by locking, reordering, or rechecking) prevents the failure.\n");
  return 0;
}
