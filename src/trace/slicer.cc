#include "src/trace/slicer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "src/util/strings.h"

namespace aitia {
namespace {

struct Interval {
  int64_t begin = 0;
  int64_t end = std::numeric_limits<int64_t>::max();
  int32_t task = -1;
  std::string name;
  ProgramId prog = kNoProgram;
  Word arg = 0;
  ThreadKind kind = ThreadKind::kSyscall;
  std::string resource;
  int32_t source_task = -1;  // for bg invocations
  bool is_bg = false;
};

bool Overlaps(const Interval& a, const Interval& b) {
  return a.begin <= b.end && b.begin <= a.end;
}

std::vector<Interval> BuildIntervals(const ExecutionHistory& history) {
  std::vector<Interval> intervals;
  std::map<int32_t, size_t> open;  // task -> interval index
  for (const HistoryEntry& e : history.entries) {
    switch (e.kind) {
      case HistoryKind::kSyscallEnter:
      case HistoryKind::kBgInvoke: {
        Interval iv;
        iv.begin = e.timestamp;
        iv.task = e.task;
        iv.name = e.name;
        iv.prog = e.prog;
        iv.arg = e.arg;
        iv.kind = e.thread_kind;
        iv.resource = e.resource;
        iv.source_task = e.source_task;
        iv.is_bg = e.kind == HistoryKind::kBgInvoke;
        open[e.task] = intervals.size();
        intervals.push_back(iv);
        break;
      }
      case HistoryKind::kSyscallExit: {
        auto it = open.find(e.task);
        if (it != open.end()) {
          intervals[it->second].end = e.timestamp;
          open.erase(it);
        }
        break;
      }
    }
  }
  return intervals;
}

ThreadSpec SpecOf(const Interval& iv) {
  return ThreadSpec{iv.name, iv.prog, iv.arg, iv.kind};
}

}  // namespace

std::string Slice::Describe() const {
  std::vector<std::string> names;
  names.reserve(threads.size());
  for (const auto& t : threads) {
    names.push_back(t.name);
  }
  std::string text = "{" + StrJoin(names, ", ") + "}";
  if (!setup.empty()) {
    std::vector<std::string> s;
    s.reserve(setup.size());
    for (const auto& t : setup) {
      s.push_back(t.name);
    }
    text += " setup{" + StrJoin(s, ", ") + "}";
  }
  return text;
}

std::vector<Slice> BuildSlices(const ExecutionHistory& history, const SlicerOptions& options) {
  std::vector<Interval> intervals = BuildIntervals(history);
  std::vector<Slice> slices;
  if (intervals.empty()) {
    return slices;
  }

  const int64_t failure_ts = history.failure.has_value()
                                 ? history.failure->timestamp
                                 : std::numeric_limits<int64_t>::max();

  // Anchor candidates: intervals ordered by proximity of their end to the
  // failure point, latest first ("backward from the point of a failure").
  std::vector<size_t> order(intervals.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    auto key = [&](size_t i) {
      const Interval& iv = intervals[i];
      // Prefer the faulting task's interval, then latest end before failure.
      bool faulting = history.failure.has_value() && iv.task == history.failure->task;
      int64_t end = std::min(iv.end, failure_ts);
      return std::make_pair(faulting ? 1 : 0, end);
    };
    return key(a) > key(b);
  });

  std::set<std::vector<int32_t>> seen_task_sets;

  for (size_t anchor : order) {
    const Interval& a = intervals[anchor];
    // Concurrent peers of the anchor.
    std::vector<size_t> peers;
    for (size_t j = 0; j < intervals.size(); ++j) {
      if (j != anchor && Overlaps(a, intervals[j])) {
        peers.push_back(j);
      }
    }

    // Enumerate subsets of peers up to the thread budget (anchor included),
    // larger subsets first — they are more likely to contain every thread the
    // failure needs.
    const size_t budget = options.max_threads_per_slice - 1;
    std::vector<std::vector<size_t>> combos;
    combos.push_back({});
    for (size_t p : peers) {
      size_t existing = combos.size();
      for (size_t c = 0; c < existing; ++c) {
        if (combos[c].size() < budget) {
          auto next = combos[c];
          next.push_back(p);
          combos.push_back(std::move(next));
        }
      }
    }
    std::stable_sort(combos.begin(), combos.end(),
                     [](const auto& x, const auto& y) { return x.size() > y.size(); });

    for (const auto& combo : combos) {
      std::vector<size_t> members = combo;
      members.push_back(anchor);
      std::sort(members.begin(), members.end());

      // A spawned background context whose spawner is in the slice must not
      // be started independently — the spawner recreates it at runtime.
      std::set<int32_t> member_tasks;
      for (size_t m : members) {
        member_tasks.insert(intervals[m].task);
      }
      std::vector<size_t> started;
      for (size_t m : members) {
        const Interval& iv = intervals[m];
        if (iv.is_bg && iv.source_task >= 0 && member_tasks.count(iv.source_task) != 0) {
          continue;  // will be spawned by its source
        }
        started.push_back(m);
      }
      if (started.empty()) {
        continue;
      }

      std::vector<int32_t> task_sig;
      for (size_t m : members) {
        task_sig.push_back(intervals[m].task);
      }
      if (!seen_task_sets.insert(task_sig).second) {
        continue;
      }

      Slice slice;
      // Threads start in timestamp order (diagnostics; LIFS permutes anyway).
      std::sort(started.begin(), started.end(),
                [&](size_t x, size_t y) { return intervals[x].begin < intervals[y].begin; });
      int64_t slice_begin = std::numeric_limits<int64_t>::max();
      for (size_t m : started) {
        slice.threads.push_back(SpecOf(intervals[m]));
        slice.tasks.push_back(intervals[m].task);
        slice_begin = std::min(slice_begin, intervals[m].begin);
      }

      // Resource closure: earlier completed syscalls sharing a resource tag
      // become the sequential prologue.
      std::set<std::string> tags;
      for (size_t m : members) {
        if (!intervals[m].resource.empty()) {
          tags.insert(intervals[m].resource);
        }
      }
      std::vector<size_t> setup_idx;
      for (size_t j = 0; j < intervals.size(); ++j) {
        const Interval& iv = intervals[j];
        if (iv.end < slice_begin && !iv.resource.empty() && tags.count(iv.resource) != 0) {
          setup_idx.push_back(j);
        }
      }
      std::sort(setup_idx.begin(), setup_idx.end(),
                [&](size_t x, size_t y) { return intervals[x].begin < intervals[y].begin; });
      for (size_t j : setup_idx) {
        slice.setup.push_back(SpecOf(intervals[j]));
      }

      slices.push_back(std::move(slice));
    }
  }
  return slices;
}

}  // namespace aitia
