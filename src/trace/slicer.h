// Slicing an execution history into candidate reproduction groups (§4.2).
//
// Rules from the paper:
//  - a slice holds threads that executed concurrently;
//  - slices keep cross-syscall semantics: syscalls sharing a resource tag
//    pull in their setup syscalls (which become the sequential prologue);
//  - a slice contains at most three threads (footnote 3);
//  - slices are ordered backward from the failure point, because the root
//    cause is likely close to the failure.

#ifndef SRC_TRACE_SLICER_H_
#define SRC_TRACE_SLICER_H_

#include <vector>

#include "src/trace/history.h"

namespace aitia {

struct SlicerOptions {
  size_t max_threads_per_slice = 3;
};

// Produces candidate slices, most promising first. The reproducing stage
// tries them in order until LIFS reproduces the failure.
std::vector<Slice> BuildSlices(const ExecutionHistory& history,
                               const SlicerOptions& options = {});

}  // namespace aitia

#endif  // SRC_TRACE_SLICER_H_
