// Execution-history modeling (§4.2).
//
// The bug-finding front end (src/fuzz, standing in for Syzkaller+ftrace)
// emits a timestamped stream of system-call enter/exit events and
// background-thread invocation events, plus the failure information that a
// coredump would carry. AITIA's modeling stage turns this into slices —
// groups of concurrently executing threads to hand to a reproducer.

#ifndef SRC_TRACE_HISTORY_H_
#define SRC_TRACE_HISTORY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/sim/failure.h"
#include "src/sim/thread.h"
#include "src/sim/types.h"

namespace aitia {

enum class HistoryKind {
  kSyscallEnter,
  kSyscallExit,
  kBgInvoke,  // queue_work / call_rcu observed via kernel-event tracing
};

struct HistoryEntry {
  int64_t timestamp = 0;   // fine-grained logical timestamp
  HistoryKind kind = HistoryKind::kSyscallEnter;
  // Task identity as the tracer sees it. Syscall enter/exit share a task id;
  // a bg invocation names the spawned context's task id.
  int32_t task = -1;
  std::string name;        // "setsockopt", "kworker:flush#0", ...
  ProgramId prog = kNoProgram;
  Word arg = 0;
  ThreadKind thread_kind = ThreadKind::kSyscall;
  // Resource tag for semantic closure across syscalls (e.g. the fd shared by
  // an open/write/close family). Empty if none.
  std::string resource;
  // For kBgInvoke: the task that caused the invocation.
  int32_t source_task = -1;
};

// What the coredump + crash report yield (§4.2 "modeling stage").
struct FailureInfo {
  Failure failure;
  int64_t timestamp = 0;  // when the failure manifested
  int32_t task = -1;      // faulting task
};

struct ExecutionHistory {
  std::vector<HistoryEntry> entries;
  std::optional<FailureInfo> failure;
};

// A slice: up to three threads that executed concurrently, plus the
// sequential prologue needed to restore cross-syscall semantics (the open()
// for a racing close(), §4.2).
struct Slice {
  std::vector<ThreadSpec> setup;
  std::vector<ThreadSpec> threads;
  // Task ids backing `threads` (diagnostics only).
  std::vector<int32_t> tasks;
  std::string Describe() const;
};

}  // namespace aitia

#endif  // SRC_TRACE_HISTORY_H_
