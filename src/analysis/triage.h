// Static race triage: the pre-filter stage pipeline of Causality Analysis
// (DESIGN.md §13).
//
// Causality Analysis (§3.4) pays one full supervised re-execution per
// candidate race. Many candidates can be classified *statically* from the
// already-recorded failing trace: pairs whose flip provably replays an
// observation-equivalent run (the failure recurs — benign), pairs guarded by
// a common lock (the flip unit is the whole critical section), and phantom
// pairs whose spliced thread cannot exist at the splice point (the flip
// degenerates to replaying the original order).
//
// The contract is strict conservatism: a stage may return kProvablyBenign
// ONLY when it predicts the dynamic flip's verdict exactly — same verdict,
// same flip_took_effect/flip_still_failed bits, same disappearance set. A
// corpus-wide differential test (pre-filter on/off × workers) holds the
// pipeline to bit-identical chains, verdicts, and root-cause sets; anything
// a stage cannot *prove* must come back kUnknown and pay for the flip.
//
// Three stages ship by default, in order:
//   hb       vector-clock happens-before + flip-commutation analysis over
//            executed pairs (silent stores, dead reads);
//   lockset  critical-section pairs: annotates the flip as a one-unit move
//            (pre-computing what BuildFlip discovers dynamically);
//   mhp      may-happen-in-parallel over thread create/IRQ structure for
//            phantom pairs (a splice before the spawn point cannot execute).
//
// The dynamic flip test is the implicit final stage: every candidate no
// static stage discharges is re-executed exactly as before.

#ifndef SRC_ANALYSIS_TRIAGE_H_
#define SRC_ANALYSIS_TRIAGE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/races.h"
#include "src/sim/kernel.h"
#include "src/util/status.h"

namespace aitia {
namespace analysis {

enum class TriageVerdict {
  kMustFlip,             // positively requires the dynamic flip test
  kProvablyBenign,       // flip outcome proven: benign, skip the re-execution
  kCriticalSectionUnit,  // flips as one critical-section unit (annotation)
  kUnknown,              // static info insufficient — the flip decides
};

const char* TriageVerdictName(TriageVerdict verdict);

struct TriageCandidate {
  RacePair race;
  bool phantom = false;
};

struct TriageDecision {
  TriageVerdict verdict = TriageVerdict::kUnknown;
  // Name of the deciding stage ("" while no stage was decisive).
  std::string stage;
  // Human-readable proof sketch (or why the stage abstained).
  std::string reason;
};

// Immutable per-trace facts shared by all stages: the failing run, its
// vector clocks, spawn structure, and IRQ contexts. Built once per analysis.
class TriageContext {
 public:
  // `irq_threads` maps IRQ-context thread ids of the failing run (may be
  // nullptr when the caller has none). Pointers are borrowed, not owned.
  TriageContext(const KernelImage* image, const RunResult* failing_run,
                const std::map<ThreadId, std::pair<ProgramId, Word>>* irq_threads);

  const KernelImage& image() const { return *image_; }
  const RunResult& run() const { return *run_; }
  const HbRelation& hb() const { return hb_; }
  // Sequence of the queue_work/call_rcu that created `tid`; -1 when `tid`
  // was never spawned during the failing run (base slice thread, IRQ
  // context, or a thread that exists only in reference runs).
  int64_t SpawnSeqOf(ThreadId tid) const;
  // True when `tid` is a hardware-IRQ context (the enforcer injects those on
  // first reference instead of replaying a spawn edge).
  bool IsIrqContext(ThreadId tid) const;
  // Seq of the last trace event (-1 for an empty trace).
  int64_t last_seq() const { return last_seq_; }

 private:
  const KernelImage* image_;
  const RunResult* run_;
  HbRelation hb_;
  std::map<ThreadId, int64_t> spawn_seq_;
  std::map<ThreadId, std::pair<ProgramId, Word>> irq_threads_;
  int64_t last_seq_ = -1;
};

// One static triage stage. Stages are stateless and const: one instance is
// shared freely across analyses and worker threads.
class TriageStage {
 public:
  virtual ~TriageStage() = default;
  virtual const char* name() const = 0;
  // Classifies one candidate. Must be conservative: kProvablyBenign only
  // with an exact prediction of the dynamic flip outcome.
  virtual TriageDecision Classify(const TriageContext& ctx,
                                  const TriageCandidate& candidate) const = 0;
};

std::shared_ptr<const TriageStage> MakeHbStage();
std::shared_ptr<const TriageStage> MakeLocksetStage();
std::shared_ptr<const TriageStage> MakeMhpStage();

// An ordered stage pipeline; the first decisive (non-kUnknown) stage wins.
using TriagePipeline = std::vector<std::shared_ptr<const TriageStage>>;

// The default static pipeline: {hb, lockset, mhp}.
TriagePipeline DefaultTriagePipeline();

// Parses a --triage spec, e.g. "hb,lockset,mhp" (order preserved, no
// duplicates); "" and "none" yield an empty pipeline (pre-filter off).
// Unknown stage names are an error listing the valid ones.
StatusOr<TriagePipeline> TriagePipelineFromSpec(const std::string& spec);

// Runs `candidate` through the pipeline; returns the first decisive stage's
// decision (with `stage` filled in), or kUnknown with stage "" when every
// stage abstains.
TriageDecision RunTriage(const TriagePipeline& pipeline, const TriageContext& ctx,
                         const TriageCandidate& candidate);

}  // namespace analysis
}  // namespace aitia

#endif  // SRC_ANALYSIS_TRIAGE_H_
