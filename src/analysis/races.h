// Happens-before analysis and data-race extraction over a run trace.
//
// Adopting the Linux-kernel memory-model definitions the paper uses (§2):
// two accesses *conflict* if they touch overlapping memory and at least one
// writes; a *data race* is a pair of conflicting accesses from different
// threads not ordered by synchronization (program order, lock release→acquire,
// thread spawn). Conflicting accesses covered by a common lock are not data
// races — they surface as *critical-section pairs*, which Causality Analysis
// flips as a unit (§3.4 "Liveness").
//
// This is the stable home of the static-analysis layer (DESIGN.md §13); the
// historical location `src/sim/hb.h` is a compatibility shim over this file.

#ifndef SRC_ANALYSIS_RACES_H_
#define SRC_ANALYSIS_RACES_H_

#include <vector>

#include "src/sim/kernel.h"

namespace aitia {

struct RacePair {
  ExecEvent first;   // observed earlier (first.seq < second.seq)
  ExecEvent second;
  // True if this is a critical-section pair: both sides held `lock`, so the
  // flip unit is the whole critical section, not the single instruction.
  bool cs_pair = false;
  Addr lock = 0;
  // Event-seq spans of the two critical sections (valid when cs_pair).
  int64_t first_cs_begin = -1;
  int64_t first_cs_end = -1;
  int64_t second_cs_begin = -1;
  int64_t second_cs_end = -1;
};

struct RaceAnalysis {
  // Data races in observed order, sorted by second.seq (ascending).
  std::vector<RacePair> races;
  // Critical-section pairs (same sort), deduplicated per section pair.
  std::vector<RacePair> cs_pairs;
  // All conflicting cross-thread pairs, including lock-ordered ones —
  // the raw count a plain race detector would dump on the developer (§5.2).
  int64_t conflicting_pairs_total = 0;
};

// Computes the happens-before relation of `result.trace` and extracts races.
RaceAnalysis ExtractRaces(const RunResult& result);

// Full happens-before check between two event seqs of the same trace
// (a.seq < b.seq required for a positive answer). Used by ExtractRaces and
// re-used by the static triage stages (src/analysis/triage.h).
class HbRelation {
 public:
  explicit HbRelation(const RunResult& result);
  bool HappensBefore(int64_t seq_a, int64_t seq_b) const;

 private:
  // clocks_[seq][tid] = highest seq of `tid` ordered before (or equal to)
  // this event.
  std::vector<std::vector<int64_t>> clocks_;
  std::vector<ThreadId> event_tid_;
};

}  // namespace aitia

#endif  // SRC_ANALYSIS_RACES_H_
