#include "src/analysis/triage.h"

#include <algorithm>
#include <optional>

#include "src/util/strings.h"

namespace aitia {
namespace analysis {
namespace {

TriageDecision Decide(TriageVerdict verdict, std::string reason) {
  TriageDecision d;
  d.verdict = verdict;
  d.reason = std::move(reason);
  return d;
}

// Register uses of one instruction. `known` false means the op is not
// modeled — liveness analysis must then assume everything is read.
struct RegUse {
  uint8_t reads[3] = {0, 0, 0};
  int nreads = 0;
  int writes = -1;  // destination register, -1 when none
  bool known = false;
};

RegUse UsesOf(const Instr& in) {
  RegUse u;
  u.known = true;
  auto r = [&](uint8_t reg) { u.reads[u.nreads++] = reg; };
  switch (in.op) {
    case Op::kNop:
    case Op::kResched:
    case Op::kTlbFlush:
    case Op::kJmp:
    case Op::kCall:
    case Op::kRet:
    case Op::kExit:
      break;
    case Op::kMovImm:
    case Op::kLea:
    case Op::kAlloc:
      u.writes = in.rd;
      break;
    case Op::kMov:
    case Op::kAddImm:
    case Op::kLoad:
      r(in.rs);
      u.writes = in.rd;
      break;
    case Op::kAdd:
    case Op::kSub:
      r(in.rs);
      r(in.rt);
      u.writes = in.rd;
      break;
    case Op::kStore:
      r(in.rd);
      r(in.rs);
      break;
    case Op::kStoreImm:
      r(in.rd);
      break;
    case Op::kBeqz:
    case Op::kBnez:
    case Op::kFree:
    case Op::kLock:
    case Op::kUnlock:
    case Op::kAssert:
    case Op::kQueueWork:
    case Op::kCallRcu:
    case Op::kRefGet:
      r(in.rs);
      break;
    case Op::kBeq:
    case Op::kBne:
    case Op::kListAdd:
      r(in.rs);
      r(in.rt);
      break;
    case Op::kListDel:
    case Op::kListContains:
      r(in.rs);
      r(in.rt);
      u.writes = in.rd;
      break;
    case Op::kListPop:
    case Op::kListLen:
    case Op::kRefPut:
      r(in.rs);
      u.writes = in.rd;
      break;
    default:
      u.known = false;
      break;
  }
  return u;
}

// True when the destination register loaded by `load_ev` is provably dead on
// the recorded remainder of its thread: every later retired instruction of
// the thread either clobbers the register first or never reads it. The trace
// is complete per thread (one event per retired instruction) and, under the
// flip's commutation preconditions, the flipped run retires exactly the same
// per-thread instruction streams — so deadness on the recorded path is
// deadness in the flipped run.
bool DestRegisterDead(const TriageContext& ctx, const ExecEvent& load_ev) {
  const Instr& load = ctx.image()
                          .program(load_ev.di.at.prog)
                          .At(load_ev.di.at.pc);
  if (load.op != Op::kLoad) {
    return false;
  }
  const uint8_t rd = load.rd;
  for (const ExecEvent& e : ctx.run().trace) {
    if (e.di.tid != load_ev.di.tid || e.seq <= load_ev.seq) {
      continue;
    }
    const RegUse u = UsesOf(ctx.image().program(e.di.at.prog).At(e.di.at.pc));
    if (!u.known) {
      return false;
    }
    for (int i = 0; i < u.nreads; ++i) {
      if (u.reads[i] == rd) {
        return false;
      }
    }
    if (u.writes == rd) {
      return true;  // clobbered before any read
    }
  }
  return true;  // never touched again
}

bool Overlaps(const ExecEvent& e, Addr addr, Addr len) {
  return e.addr < addr + len && addr < e.addr + e.len;
}

// Trace-proven content of the cell range [addr, addr+len) just before trace
// position `seq`. Only in-trace evidence counts: the nearest earlier
// overlapping access pins the value when it is an exact-range plain store
// (the value it wrote) or an exact-range plain load (the value it observed).
// Anything else — a partial access, a compound read-modify op, or no earlier
// access at all — is nullopt. In particular a global's static initializer is
// NOT evidence: the base slice runs before the trace begins and can rewrite
// any cell without leaving an event (CVE-2017-2671's prot_hook looks
// zero-initialized but holds a live pointer by the time the trace starts).
std::optional<Word> ValueBefore(const TriageContext& ctx, Addr addr, Addr len,
                                int64_t seq) {
  const auto& trace = ctx.run().trace;
  for (int64_t s = std::min<int64_t>(seq, ctx.last_seq() + 1) - 1; s >= 0; --s) {
    const ExecEvent& e = trace[static_cast<size_t>(s)];
    if (!e.is_access || !Overlaps(e, addr, len)) {
      continue;
    }
    const bool exact = e.addr == addr && e.len == len;
    if (exact && (e.op == Op::kStore || e.op == Op::kStoreImm)) {
      return e.value;
    }
    if (exact && e.op == Op::kLoad && !e.is_write) {
      return e.value;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

// True when some access after trace position `seq` can observe the content
// of [addr, addr+len). A full-cover plain store ends the scan: it rewrites
// the range without reading it, so earlier writers are unobservable past it.
bool CellObservedAfter(const TriageContext& ctx, Addr addr, Addr len, int64_t seq) {
  const auto& trace = ctx.run().trace;
  for (int64_t s = seq + 1; s <= ctx.last_seq(); ++s) {
    const ExecEvent& e = trace[static_cast<size_t>(s)];
    if (!e.is_access || !Overlaps(e, addr, len)) {
      continue;
    }
    if ((e.op == Op::kStore || e.op == Op::kStoreImm) && e.addr == addr && e.len == len) {
      return false;
    }
    return true;
  }
  return false;
}

std::string LockName(const TriageContext& ctx, Addr lock) {
  std::string name = ctx.image().GlobalName(lock);
  return name.empty() ? StrFormat("lock@0x%llx", static_cast<unsigned long long>(lock))
                      : name;
}

// --- hb stage: vector clocks + flip-commutation analysis ------------------
//
// For an executed non-critical-section pair (a, b), BuildFlip moves thread
// a's events in [a.seq, b.seq] (the block) to right after b. The stage
// proves the flipped run observation-equivalent to the failing run — same
// per-thread instruction streams, same values, same failure — whenever:
//   1. the block carries no cross-thread ordering side effects (no lock,
//      spawn, allocator, or IPI ops), and none sit elsewhere in the window
//      that would synchronize with it (TLB shootdowns);
//   2. no block event conflicts with a window event besides (a, b) itself;
//   3. the pair's own value flow is inert: a silent store (both sides write
//      the same value to the same cell) or a dead read (the loaded register
//      is never consumed on the recorded path).
// Under 1–2 every lock/spawn retirement keeps its original relative order,
// so the enforcer replays the permutation without deviations; under 3 the
// one reordered value is unobservable. The run retires the same event set,
// the recorded failure recurs at the same final event, and the dynamic
// verdict is exactly kBenign with flip_took_effect = true.
class HbStage : public TriageStage {
 public:
  const char* name() const override { return "hb"; }

  TriageDecision Classify(const TriageContext& ctx,
                          const TriageCandidate& c) const override {
    const RacePair& r = c.race;
    if (c.phantom) {
      return Decide(TriageVerdict::kUnknown,
                    "phantom pair: no happens-before edge toward an unexecuted "
                    "instruction exists in the failing trace");
    }
    if (r.cs_pair) {
      return Decide(TriageVerdict::kUnknown, "critical-section pair: lockset stage decides");
    }
    const auto& trace = ctx.run().trace;
    if (r.first.seq < 0 || r.second.seq <= r.first.seq ||
        r.second.seq > ctx.last_seq()) {
      return Decide(TriageVerdict::kUnknown, "pair seqs do not index the failing trace");
    }
    if (ctx.hb().HappensBefore(r.first.seq, r.second.seq)) {
      // Race extraction filters ordered pairs, so this cannot fire for LIFS
      // candidates; if a caller hands one in anyway, stay conservative.
      return Decide(TriageVerdict::kUnknown,
                    "sides are happens-before ordered; left to the dynamic flip");
    }
    if (r.second.seq >= ctx.last_seq()) {
      return Decide(TriageVerdict::kUnknown,
                    "second side is the trace's final event: the moved block "
                    "would land after the failure fires");
    }
    if (ctx.IsIrqContext(r.first.di.tid)) {
      return Decide(TriageVerdict::kUnknown,
                    "first side runs in IRQ context: its injection point is "
                    "schedule-dependent");
    }

    // Partition the reorder window into the moved block (thread of `a`) and
    // the events it slides past.
    std::vector<const ExecEvent*> block;
    std::vector<const ExecEvent*> window;
    for (int64_t s = r.first.seq; s <= r.second.seq; ++s) {
      const ExecEvent& e = trace[static_cast<size_t>(s)];
      (e.di.tid == r.first.di.tid ? block : window).push_back(&e);
    }
    for (const ExecEvent* x : block) {
      switch (x->op) {
        case Op::kLock:
        case Op::kUnlock:
        case Op::kQueueWork:
        case Op::kCallRcu:
        case Op::kAlloc:
        case Op::kFree:
        case Op::kTlbFlush:
          return Decide(
              TriageVerdict::kUnknown,
              StrFormat("moved block contains %s at seq %lld: relocating it changes "
                        "cross-thread lock/spawn/allocator/IPI state",
                        OpName(x->op), static_cast<long long>(x->seq)));
        default:
          break;
      }
    }
    for (const ExecEvent* y : window) {
      if (y->op == Op::kTlbFlush) {
        return Decide(TriageVerdict::kUnknown,
                      "TLB shootdown inside the reorder window synchronizes with "
                      "every context");
      }
    }
    for (const ExecEvent* x : block) {
      for (const ExecEvent* y : window) {
        if (Conflicting(*x, *y) && !(x->seq == r.first.seq && y->seq == r.second.seq)) {
          return Decide(
              TriageVerdict::kUnknown,
              StrFormat("block event seq %lld conflicts with window event seq %lld "
                        "beyond the candidate pair itself",
                        static_cast<long long>(x->seq), static_cast<long long>(y->seq)));
        }
      }
    }

    const ExecEvent& a = r.first;
    const ExecEvent& b = r.second;
    auto plain_store = [](const ExecEvent& e) {
      return e.op == Op::kStore || e.op == Op::kStoreImm;
    };
    if (plain_store(a) && plain_store(b) && a.addr == b.addr && a.len == b.len) {
      if (a.value == b.value) {
        return Decide(
            TriageVerdict::kProvablyBenign,
            StrFormat("silent store: both sides write %lld to the same cell, so the "
                      "flipped run is observation-equivalent and the failure recurs",
                      static_cast<long long>(a.value)));
      }
      // Different values: the flip changes which store lands last, which is
      // observable only if something reads the cell afterwards.
      if (!CellObservedAfter(ctx, a.addr, a.len, b.seq)) {
        return Decide(TriageVerdict::kProvablyBenign,
                      "dead store: nothing observes the cell after the second side, "
                      "so the changed final value is invisible and the failure recurs");
      }
    }
    // A store that rewrites the value the cell already holds leaves memory
    // identical at every point of both orders, so a pure read on the other
    // side observes the same value either way.
    if (plain_store(a) && !b.is_write) {
      const std::optional<Word> pre = ValueBefore(ctx, a.addr, a.len, a.seq);
      if (pre.has_value() && *pre == a.value) {
        return Decide(
            TriageVerdict::kProvablyBenign,
            StrFormat("already-silent store: the cell held %lld before the first "
                      "side rewrote it, so the read observes the same value in "
                      "either order and the failure recurs",
                      static_cast<long long>(a.value)));
      }
    }
    if (plain_store(b) && !a.is_write) {
      const std::optional<Word> pre = ValueBefore(ctx, b.addr, b.len, b.seq);
      if (pre.has_value() && *pre == b.value) {
        return Decide(
            TriageVerdict::kProvablyBenign,
            StrFormat("already-silent store: the cell held %lld before the second "
                      "side rewrote it, so the read observes the same value in "
                      "either order and the failure recurs",
                      static_cast<long long>(b.value)));
      }
    }
    if (a.op == Op::kLoad && b.is_write && b.op != Op::kFree &&
        DestRegisterDead(ctx, a)) {
      return Decide(TriageVerdict::kProvablyBenign,
                    "dead read: the first side's loaded register is never consumed "
                    "on the recorded path, so the flip only changes a dead value");
    }
    if (b.op == Op::kLoad && a.is_write && a.op != Op::kFree &&
        DestRegisterDead(ctx, b)) {
      return Decide(TriageVerdict::kProvablyBenign,
                    "dead read: the second side's loaded register is never consumed "
                    "on the recorded path, so the flip only changes a dead value");
    }
    return Decide(TriageVerdict::kUnknown,
                  "live value flow through the pair: only the dynamic flip can decide");
  }
};

// --- lockset stage --------------------------------------------------------
//
// Critical-section pairs were already proven lock-protected by race
// extraction (both sides hold `lock` with recorded section spans). The flip
// is still informative — it decides whether the section order matters — but
// its *unit* is statically known: BuildFlip moves the whole first section
// past the second. The stage pre-computes that annotation.
class LocksetStage : public TriageStage {
 public:
  const char* name() const override { return "lockset"; }

  TriageDecision Classify(const TriageContext& ctx,
                          const TriageCandidate& c) const override {
    const RacePair& r = c.race;
    if (r.cs_pair) {
      return Decide(
          TriageVerdict::kCriticalSectionUnit,
          StrFormat("both sides hold %s: the flip moves the first critical section "
                    "[%lld,%lld] past the second [%lld,%lld] as one unit",
                    LockName(ctx, r.lock).c_str(),
                    static_cast<long long>(r.first_cs_begin),
                    static_cast<long long>(r.first_cs_end),
                    static_cast<long long>(r.second_cs_begin),
                    static_cast<long long>(r.second_cs_end)));
    }
    if (c.phantom) {
      return Decide(TriageVerdict::kUnknown,
                    "phantom pair: the lock state at the splice point is not "
                    "recorded in the failing trace");
    }
    for (Addr l : r.first.locks_held) {
      if (std::find(r.second.locks_held.begin(), r.second.locks_held.end(), l) !=
          r.second.locks_held.end()) {
        return Decide(TriageVerdict::kUnknown,
                      StrFormat("sides share %s but no critical-section spans were "
                                "recorded; left to the dynamic flip",
                                LockName(ctx, l).c_str()));
      }
    }
    return Decide(TriageVerdict::kUnknown, "no common lock covers both sides");
  }
};

// --- mhp stage ------------------------------------------------------------
//
// May-happen-in-parallel over thread-create/IRQ structure, aimed at phantom
// pairs (e, f): the flip splices f's unexecuted block immediately before e.
// If f's thread provably cannot exist at that point — it is spawned only
// *after* e in the failing run, or never spawned at all — the enforcer drops
// every spliced entry ("thread does not exist") and the remaining sequence
// is exactly the original order: a deterministic replay of the failing run.
// The failure recurs, f never executes, and the dynamic verdict is exactly
// kBenign with flip_took_effect = true. IRQ contexts are excluded: the
// enforcer injects those on first reference, so the splice *is* enforceable.
class MhpStage : public TriageStage {
 public:
  const char* name() const override { return "mhp"; }

  TriageDecision Classify(const TriageContext& ctx,
                          const TriageCandidate& c) const override {
    if (!c.phantom) {
      return Decide(TriageVerdict::kUnknown,
                    "both sides executed: thread-create structure alone cannot "
                    "discharge an executed pair");
    }
    const ThreadId tid = c.race.second.di.tid;
    if (tid < 0) {
      return Decide(TriageVerdict::kUnknown, "phantom thread id is invalid");
    }
    if (ctx.IsIrqContext(tid)) {
      return Decide(TriageVerdict::kUnknown,
                    "phantom thread is an IRQ context: the enforcer injects it on "
                    "demand at the splice point");
    }
    const auto& threads = ctx.run().threads;
    if (static_cast<size_t>(tid) >= threads.size()) {
      return Decide(
          TriageVerdict::kProvablyBenign,
          StrFormat("phantom thread T%d never existed in the failing run: every "
                    "spliced entry is unenforceable, so the flip replays the "
                    "original order and the failure recurs",
                    tid));
    }
    const int64_t spawn_seq = ctx.SpawnSeqOf(tid);
    if (spawn_seq < 0) {
      return Decide(TriageVerdict::kUnknown,
                    StrFormat("phantom thread T%d is a base slice thread: it exists "
                              "at the splice point",
                              tid));
    }
    if (spawn_seq > c.race.first.seq) {
      return Decide(
          TriageVerdict::kProvablyBenign,
          StrFormat("phantom thread T%d is spawned at seq %lld, after the first "
                    "side (seq %lld): it cannot exist at the splice point, so the "
                    "spliced block is dropped and the original order replays",
                    tid, static_cast<long long>(spawn_seq),
                    static_cast<long long>(c.race.first.seq)));
    }
    return Decide(TriageVerdict::kUnknown,
                  StrFormat("phantom thread T%d already exists at the splice point "
                            "(spawned at seq %lld)",
                            tid, static_cast<long long>(spawn_seq)));
  }
};

}  // namespace

const char* TriageVerdictName(TriageVerdict verdict) {
  switch (verdict) {
    case TriageVerdict::kMustFlip: return "must-flip";
    case TriageVerdict::kProvablyBenign: return "provably-benign";
    case TriageVerdict::kCriticalSectionUnit: return "critical-section-unit";
    case TriageVerdict::kUnknown: return "unknown";
  }
  return "?";
}

TriageContext::TriageContext(
    const KernelImage* image, const RunResult* failing_run,
    const std::map<ThreadId, std::pair<ProgramId, Word>>* irq_threads)
    : image_(image), run_(failing_run), hb_(*failing_run) {
  for (const SpawnEdge& edge : failing_run->spawns) {
    spawn_seq_.emplace(edge.child, edge.seq);  // first spawn wins
  }
  if (irq_threads != nullptr) {
    irq_threads_ = *irq_threads;
  }
  last_seq_ = failing_run->trace.empty() ? -1 : failing_run->trace.back().seq;
}

int64_t TriageContext::SpawnSeqOf(ThreadId tid) const {
  auto it = spawn_seq_.find(tid);
  return it == spawn_seq_.end() ? -1 : it->second;
}

bool TriageContext::IsIrqContext(ThreadId tid) const {
  if (irq_threads_.count(tid) != 0) {
    return true;
  }
  return tid >= 0 && static_cast<size_t>(tid) < run_->threads.size() &&
         run_->threads[static_cast<size_t>(tid)].kind == ThreadKind::kHardIrq;
}

std::shared_ptr<const TriageStage> MakeHbStage() {
  return std::make_shared<const HbStage>();
}

std::shared_ptr<const TriageStage> MakeLocksetStage() {
  return std::make_shared<const LocksetStage>();
}

std::shared_ptr<const TriageStage> MakeMhpStage() {
  return std::make_shared<const MhpStage>();
}

TriagePipeline DefaultTriagePipeline() {
  return {MakeHbStage(), MakeLocksetStage(), MakeMhpStage()};
}

StatusOr<TriagePipeline> TriagePipelineFromSpec(const std::string& spec) {
  TriagePipeline pipeline;
  if (spec.empty() || spec == "none") {
    return pipeline;
  }
  std::vector<std::string> names;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const size_t end = comma == std::string::npos ? spec.size() : comma;
    names.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  for (const std::string& name : names) {
    std::shared_ptr<const TriageStage> stage;
    if (name == "hb") {
      stage = MakeHbStage();
    } else if (name == "lockset") {
      stage = MakeLocksetStage();
    } else if (name == "mhp") {
      stage = MakeMhpStage();
    } else {
      return Status::InvalidArgument("unknown triage stage '" + name +
                                     "' (valid: hb, lockset, mhp, none)");
    }
    for (const auto& existing : pipeline) {
      if (std::string(existing->name()) == name) {
        return Status::InvalidArgument("duplicate triage stage '" + name + "'");
      }
    }
    pipeline.push_back(std::move(stage));
  }
  return pipeline;
}

TriageDecision RunTriage(const TriagePipeline& pipeline, const TriageContext& ctx,
                         const TriageCandidate& candidate) {
  std::string abstained;
  for (const auto& stage : pipeline) {
    TriageDecision d = stage->Classify(ctx, candidate);
    if (d.verdict != TriageVerdict::kUnknown) {
      d.stage = stage->name();
      return d;
    }
    if (!abstained.empty()) {
      abstained += "; ";
    }
    abstained += std::string(stage->name()) + ": " + d.reason;
  }
  TriageDecision d;
  d.reason = abstained.empty() ? "pre-filter disabled" : abstained;
  return d;
}

}  // namespace analysis
}  // namespace aitia
