#include "src/analysis/races.h"

#include <algorithm>
#include <map>
#include <set>

namespace aitia {
namespace {

std::vector<int64_t> Join(const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
  std::vector<int64_t> out(std::max(a.size(), b.size()), -1);
  for (size_t i = 0; i < out.size(); ++i) {
    int64_t va = i < a.size() ? a[i] : -1;
    int64_t vb = i < b.size() ? b[i] : -1;
    out[i] = std::max(va, vb);
  }
  return out;
}

}  // namespace

HbRelation::HbRelation(const RunResult& result) {
  const size_t nthreads = result.threads.size();
  std::vector<std::vector<int64_t>> thread_clock(nthreads,
                                                 std::vector<int64_t>(nthreads, -1));
  // Lock release clocks and pending spawn clocks.
  std::map<Addr, std::vector<int64_t>> lock_clock;
  std::map<ThreadId, std::vector<int64_t>> spawn_clock;
  std::vector<bool> started(nthreads, false);

  clocks_.resize(result.trace.size());
  event_tid_.resize(result.trace.size());

  // Map spawn seq -> child for quick lookup.
  std::map<int64_t, ThreadId> spawn_at_seq;
  for (const SpawnEdge& edge : result.spawns) {
    spawn_at_seq[edge.seq] = edge.child;
  }

  for (const ExecEvent& e : result.trace) {
    const auto tid = static_cast<size_t>(e.di.tid);
    auto& clock = thread_clock[tid];
    if (!started[tid]) {
      started[tid] = true;
      auto it = spawn_clock.find(e.di.tid);
      if (it != spawn_clock.end()) {
        clock = Join(clock, it->second);
      }
    }
    if (e.op == Op::kLock) {
      auto it = lock_clock.find(e.addr);
      if (it != lock_clock.end()) {
        clock = Join(clock, it->second);
      }
    }
    clock[tid] = e.seq;
    clocks_[static_cast<size_t>(e.seq)] = clock;
    event_tid_[static_cast<size_t>(e.seq)] = e.di.tid;

    if (e.op == Op::kUnlock) {
      lock_clock[e.addr] = clock;
    }
    if (e.op == Op::kQueueWork || e.op == Op::kCallRcu) {
      auto it = spawn_at_seq.find(e.seq);
      if (it != spawn_at_seq.end()) {
        spawn_clock[it->second] = clock;
      }
    }
  }
}

bool HbRelation::HappensBefore(int64_t seq_a, int64_t seq_b) const {
  if (seq_a >= seq_b) {
    return false;
  }
  const ThreadId tid_a = event_tid_[static_cast<size_t>(seq_a)];
  return clocks_[static_cast<size_t>(seq_b)][static_cast<size_t>(tid_a)] >= seq_a;
}

RaceAnalysis ExtractRaces(const RunResult& result) {
  RaceAnalysis out;
  HbRelation hb(result);

  // Critical-section spans: for every access event, per held lock, the
  // [acquire seq, release seq] span of the enclosing critical section.
  std::vector<std::map<Addr, std::pair<int64_t, int64_t>>> event_spans(result.trace.size());
  std::map<std::pair<ThreadId, Addr>, int64_t> open_begin;
  std::map<std::pair<ThreadId, Addr>, std::vector<size_t>> open_access_events;
  for (const ExecEvent& e : result.trace) {
    if (e.op == Op::kLock) {
      open_begin[{e.di.tid, e.addr}] = e.seq;
      open_access_events[{e.di.tid, e.addr}].clear();
    } else if (e.op == Op::kUnlock) {
      auto key = std::make_pair(e.di.tid, e.addr);
      auto it = open_begin.find(key);
      if (it != open_begin.end()) {
        for (size_t idx : open_access_events[key]) {
          event_spans[idx][e.addr] = {it->second, e.seq};
        }
        open_begin.erase(it);
        open_access_events.erase(key);
      }
    } else if (e.is_access) {
      for (Addr l : e.locks_held) {
        open_access_events[{e.di.tid, l}].push_back(static_cast<size_t>(e.seq));
      }
    }
  }
  // Sections never released (thread exited holding the lock): close at end.
  const int64_t last_seq =
      result.trace.empty() ? 0 : result.trace.back().seq;
  for (auto& [key, events] : open_access_events) {
    auto it = open_begin.find(key);
    if (it == open_begin.end()) {
      continue;
    }
    for (size_t idx : events) {
      event_spans[idx][key.second] = {it->second, last_seq};
    }
  }

  std::set<std::tuple<int64_t, int64_t, Addr>> cs_seen;

  const auto& trace = result.trace;
  for (size_t j = 0; j < trace.size(); ++j) {
    const ExecEvent& b = trace[j];
    if (!b.is_access) {
      continue;
    }
    for (size_t i = 0; i < j; ++i) {
      const ExecEvent& a = trace[i];
      if (!a.is_access || a.di.tid == b.di.tid || !Conflicting(a, b)) {
        continue;
      }
      ++out.conflicting_pairs_total;

      // Common lock => critical-section pair.
      Addr common_lock = 0;
      for (Addr l : a.locks_held) {
        if (std::find(b.locks_held.begin(), b.locks_held.end(), l) != b.locks_held.end()) {
          common_lock = l;
          break;
        }
      }
      if (common_lock != 0) {
        auto sa = event_spans[i].find(common_lock);
        auto sb = event_spans[j].find(common_lock);
        if (sa != event_spans[i].end() && sb != event_spans[j].end()) {
          auto sig = std::make_tuple(sa->second.first, sb->second.first, common_lock);
          if (cs_seen.insert(sig).second) {
            RacePair p;
            p.first = a;
            p.second = b;
            p.cs_pair = true;
            p.lock = common_lock;
            p.first_cs_begin = sa->second.first;
            p.first_cs_end = sa->second.second;
            p.second_cs_begin = sb->second.first;
            p.second_cs_end = sb->second.second;
            out.cs_pairs.push_back(p);
          }
        }
        continue;
      }

      if (hb.HappensBefore(a.seq, b.seq)) {
        continue;  // ordered by spawn or lock hand-off: not a race
      }
      RacePair p;
      p.first = a;
      p.second = b;
      out.races.push_back(p);
    }
  }

  auto by_second = [](const RacePair& x, const RacePair& y) {
    return x.second.seq < y.second.seq;
  };
  std::sort(out.races.begin(), out.races.end(), by_second);
  std::sort(out.cs_pairs.begin(), out.cs_pairs.end(), by_second);
  return out;
}

}  // namespace aitia
