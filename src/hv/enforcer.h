// The schedule enforcer — the in-simulator analog of the AITIA hypervisor.
//
// The real system installs hardware breakpoints at scheduling points, parks
// threads on a trampoline busy-loop, and flips VM contexts on VM_EXIT
// (§4.4). Here, the enforcer drives KernelSim::Step directly: "breakpoint"
// is a stop-before/after-pc check, "trampoline" is KernelSim::Park, and
// "watchpoint" is the Watchpoints observer fed from the event stream.

#ifndef SRC_HV_ENFORCER_H_
#define SRC_HV_ENFORCER_H_

#include <optional>
#include <vector>

#include "src/hv/schedule.h"
#include "src/hv/watchpoint.h"
#include "src/sim/kernel.h"
#include "src/sim/thread.h"

namespace aitia {

struct EnforceResult {
  RunResult run;
  // Entries of a total-order schedule that never executed because a
  // race-steered control flow made the thread bypass them (§3.4).
  std::vector<DynInstr> disappeared;
  // Preemption points that never fired (instruction never retired).
  std::vector<DynInstr> unfired_points;
  // Steps executed outside the schedule's prescribed order (e.g. letting a
  // lock holder drain to preserve liveness).
  int64_t deviations = 0;
  // Data races observed by the watchpoints armed at preemption points.
  std::vector<WatchpointHit> watch_hits;
};

class Enforcer {
 public:
  explicit Enforcer(const KernelImage* image) : image_(image) {}

  // Reproducing-stage run: executes `threads` under a preemption schedule.
  // At each fired point the preempted thread is parked and a watchpoint is
  // armed over the address its last instruction accessed. `setup` is the
  // slice prologue (runs unrecorded before the concurrent threads start).
  EnforceResult RunPreemption(const std::vector<ThreadSpec>& threads,
                              const PreemptionSchedule& schedule,
                              const std::vector<ThreadSpec>& setup = {},
                              int64_t max_steps = 200000);

  // Diagnosing-stage run: replays a total order of dynamic instructions,
  // parking diverging threads and dropping their remaining entries.
  EnforceResult RunTotalOrder(const std::vector<ThreadSpec>& threads,
                              const TotalOrderSchedule& schedule,
                              const std::vector<ThreadSpec>& setup = {},
                              int64_t max_steps = 200000);

 private:
  const KernelImage* image_;
};

}  // namespace aitia

#endif  // SRC_HV_ENFORCER_H_
