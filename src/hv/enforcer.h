// The schedule enforcer — the in-simulator analog of the AITIA hypervisor.
//
// The real system installs hardware breakpoints at scheduling points, parks
// threads on a trampoline busy-loop, and flips VM contexts on VM_EXIT
// (§4.4). Here, the enforcer drives KernelSim::Step directly: "breakpoint"
// is a stop-before/after-pc check, "trampoline" is KernelSim::Park, and
// "watchpoint" is the Watchpoints observer fed from the event stream.

#ifndef SRC_HV_ENFORCER_H_
#define SRC_HV_ENFORCER_H_

#include <functional>
#include <optional>
#include <vector>

#include "src/hv/schedule.h"
#include "src/hv/watchpoint.h"
#include "src/sim/faults.h"
#include "src/sim/kernel.h"
#include "src/sim/thread.h"
#include "src/util/status.h"

namespace aitia {

namespace ckpt {
class CheckpointStore;  // src/ckpt/store.h
}  // namespace ckpt

// Per-run enforcement knobs. The plain-`max_steps` overloads below cover the
// common case; the supervisor (src/hv/supervisor.h) fills in the rest.
struct EnforceOptions {
  int64_t max_steps = 200000;
  // Steps the schedule may go without making progress (a point firing, an
  // entry retiring, or the total-order index advancing) before the run is
  // aborted as livelocked. 0 disables the watchdog. Detects e.g. a flip
  // whose liveness drain spins a lock holder forever — long before the step
  // budget would.
  int64_t stall_limit = 0;
  // Fault-injection harness for this run (not owned); nullptr disables.
  FaultInjector* faults = nullptr;
  // Polled every few hundred steps; a non-ok Status aborts the run with that
  // status. The supervisor uses this for wall-clock deadlines.
  std::function<Status()> interrupt;
  // Prefix-replay cache (not owned); nullptr runs cold. Ignored whenever
  // `faults` is set: fault streams are consumed per executed step, so a
  // restored prefix would skip fault rolls and desynchronize the stream.
  ckpt::CheckpointStore* checkpoints = nullptr;
};

struct EnforceResult {
  RunResult run;
  // Health of the enforcement itself: non-ok when the run was cut short
  // (deadline, livelock watchdog, injected fault) and `run` is partial. The
  // kernel-level symptom, if any, stays in run.failure.
  Status status;
  int64_t steps = 0;
  // Of `steps`, how many came from a restored checkpoint prefix instead of
  // being executed in this run. `steps` itself stays the cold-run-equivalent
  // total so budgets, watchdogs, and histograms are checkpoint-invariant.
  int64_t replayed_steps = 0;
  // Entries of a total-order schedule that never executed because a
  // race-steered control flow made the thread bypass them (§3.4).
  std::vector<DynInstr> disappeared;
  // Preemption points that never fired (instruction never retired).
  std::vector<DynInstr> unfired_points;
  // Steps executed outside the schedule's prescribed order (e.g. letting a
  // lock holder drain to preserve liveness).
  int64_t deviations = 0;
  // Data races observed by the watchpoints armed at preemption points.
  std::vector<WatchpointHit> watch_hits;
};

class Enforcer {
 public:
  explicit Enforcer(const KernelImage* image) : image_(image) {}

  // Reproducing-stage run: executes `threads` under a preemption schedule.
  // At each fired point the preempted thread is parked and a watchpoint is
  // armed over the address its last instruction accessed. `setup` is the
  // slice prologue (runs unrecorded before the concurrent threads start).
  EnforceResult RunPreemption(const std::vector<ThreadSpec>& threads,
                              const PreemptionSchedule& schedule,
                              const std::vector<ThreadSpec>& setup,
                              const EnforceOptions& options);
  EnforceResult RunPreemption(const std::vector<ThreadSpec>& threads,
                              const PreemptionSchedule& schedule,
                              const std::vector<ThreadSpec>& setup = {},
                              int64_t max_steps = 200000) {
    EnforceOptions options;
    options.max_steps = max_steps;
    return RunPreemption(threads, schedule, setup, options);
  }

  // Diagnosing-stage run: replays a total order of dynamic instructions,
  // parking diverging threads and dropping their remaining entries.
  EnforceResult RunTotalOrder(const std::vector<ThreadSpec>& threads,
                              const TotalOrderSchedule& schedule,
                              const std::vector<ThreadSpec>& setup,
                              const EnforceOptions& options);
  EnforceResult RunTotalOrder(const std::vector<ThreadSpec>& threads,
                              const TotalOrderSchedule& schedule,
                              const std::vector<ThreadSpec>& setup = {},
                              int64_t max_steps = 200000) {
    EnforceOptions options;
    options.max_steps = max_steps;
    return RunTotalOrder(threads, schedule, setup, options);
  }

 private:
  const KernelImage* image_;
};

}  // namespace aitia

#endif  // SRC_HV_ENFORCER_H_
