// Supervised execution of Enforcer runs (§4.4–§4.5 hardening).
//
// The paper's deployment drives a fleet of real VMs where individual runs
// hang, die, or deviate; a diagnosis service cannot crash — or mislabel a
// race — because one of 256 flip runs livelocked. The Supervisor wraps every
// re-execution with:
//
//   - a wall-clock deadline per attempt (on top of the step budget),
//   - a livelock watchdog (no schedule progress for `stall_limit` steps),
//   - bounded retry with deterministic seeded backoff jitter for runs lost
//     to injected or transient faults (each attempt re-rolls the fault
//     stream, the way a rebooted VM re-rolls real-world noise), and
//   - per-diagnosis run-budget accounting surfaced in the final report.
//
// A run that exhausts its attempts yields a non-ok Status; callers degrade
// gracefully (LIFS skips the schedule, Causality Analysis files the flip
// test as kInconclusive) instead of misclassifying.

#ifndef SRC_HV_SUPERVISOR_H_
#define SRC_HV_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/hv/enforcer.h"
#include "src/sim/faults.h"
#include "src/util/status.h"

namespace aitia {

struct SupervisorOptions {
  int64_t max_steps = 200000;
  // Wall-clock deadline per attempt; 0 disables. Deadline expiry is not
  // retried: the simulator is deterministic, so a slow run stays slow.
  double deadline_seconds = 0;
  // Livelock watchdog threshold (see EnforceOptions::stall_limit); 0 = off.
  int64_t stall_limit = 0;
  // Total attempts per run (first try + retries). Only kUnavailable (lost
  // run) and kAborted (livelock) are retried — the fault classes that
  // re-roll on a fresh attempt.
  int max_attempts = 1;
  // Seed for the deterministic retry jitter; combined with the run nonce and
  // attempt index so concurrent runs never share a backoff stream.
  uint64_t retry_seed = 0xA171A;
  // Upper bound of the per-retry backoff sleep, in milliseconds. 0 disables
  // sleeping entirely (the default: simulator retries are free).
  uint64_t backoff_ms_cap = 0;
  // Fault-injection plan applied to every attempt; disabled when empty.
  FaultPlan faults;
  // Cooperative cancellation probe (null = never cancelled). Checked before
  // every attempt and between simulator steps; once it returns true, runs
  // finish with kCancelled (not retried) so an in-flight diagnosis unwinds
  // within one step rather than spending its remaining budget. The service
  // layer points this at its drain flag and request deadline.
  std::function<bool()> cancel;
  // Prefix-replay cache shared by every run under this supervisor (not
  // owned); nullptr runs cold. Automatically bypassed while fault injection
  // is enabled — chaos runs must re-roll every step.
  ckpt::CheckpointStore* checkpoints = nullptr;
  // Progress-event scope (src/obs/events.h): nonzero publishes supervision
  // interventions (retries, deadline expirations, watchdog trips) to a
  // streaming subscriber; 0 publishes nothing.
  uint64_t event_scope = 0;
};

// Per-diagnosis accounting of what supervision spent and absorbed.
struct RunBudget {
  int64_t runs = 0;                  // logical runs requested
  int64_t attempts = 0;              // physical enforcer executions
  int64_t completed = 0;             // attempts that returned a usable run
  int64_t retries = 0;
  int64_t exhausted = 0;             // runs that failed every attempt
  int64_t deadline_expirations = 0;
  int64_t watchdog_trips = 0;
  int64_t injected_faults = 0;       // fault events across all attempts
  // `steps` stays the cold-run-equivalent total (replayed + executed), so
  // budgets and the run_steps histogram read the same with checkpointing on
  // or off; the split below says how much of it was actually re-executed.
  int64_t steps = 0;                 // simulator steps across all attempts
  int64_t executed_steps = 0;        // steps actually executed this process
  int64_t replayed_steps = 0;        // steps restored from checkpoint prefixes
  int64_t backoff_ms = 0;            // total deterministic jitter slept

  void Merge(const RunBudget& other);
  std::string ToString() const;
};

class Supervisor {
 public:
  Supervisor(const KernelImage* image, SupervisorOptions options)
      : image_(image), options_(std::move(options)) {}

  // `nonce` identifies the logical run (e.g. the flip-test index) so fault
  // and jitter streams are stable under parallel execution order. Both
  // methods are thread-safe.
  StatusOr<EnforceResult> RunPreemption(const std::vector<ThreadSpec>& threads,
                                        const PreemptionSchedule& schedule,
                                        const std::vector<ThreadSpec>& setup,
                                        uint64_t nonce = 0);
  StatusOr<EnforceResult> RunTotalOrder(const std::vector<ThreadSpec>& threads,
                                        const TotalOrderSchedule& schedule,
                                        const std::vector<ThreadSpec>& setup,
                                        uint64_t nonce = 0);

  RunBudget budget() const;
  const SupervisorOptions& options() const { return options_; }

 private:
  using RunFn = std::function<EnforceResult(const EnforceOptions&)>;
  StatusOr<EnforceResult> Supervise(const RunFn& run, uint64_t nonce);
  // Attempt loop proper; accumulates accounting into `delta` so Supervise
  // can publish it to the shared budget under a single lock acquisition.
  StatusOr<EnforceResult> SuperviseAccounted(const RunFn& run, uint64_t nonce, RunBudget& delta);

  const KernelImage* image_;
  SupervisorOptions options_;
  mutable std::mutex mu_;
  RunBudget budget_;
};

}  // namespace aitia

#endif  // SRC_HV_SUPERVISOR_H_
