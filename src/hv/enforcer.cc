#include "src/hv/enforcer.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>

#include "src/ckpt/store.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace aitia {
namespace {

// Thread ranking shared with SeqPolicy semantics: base threads in the given
// order, spawned threads after them by id.
int64_t RankOf(const std::vector<ThreadId>& base_order, ThreadId tid) {
  for (size_t i = 0; i < base_order.size(); ++i) {
    if (base_order[i] == tid) {
      return static_cast<int64_t>(i);
    }
  }
  return static_cast<int64_t>(base_order.size()) + tid;
}

ThreadId MinRankRunnable(const KernelSim& kernel, const std::vector<ThreadId>& base_order) {
  std::vector<ThreadId> runnable = kernel.RunnableThreads();
  if (runnable.empty()) {
    return kNoThread;
  }
  return *std::min_element(runnable.begin(), runnable.end(), [&](ThreadId a, ThreadId b) {
    return RankOf(base_order, a) < RankOf(base_order, b);
  });
}

// How often the interrupt hook (wall-clock deadline) is polled, in steps.
// Cheap enough to keep deadline overshoot in the microseconds.
constexpr int64_t kInterruptPollSteps = 256;

// Shared supervision bookkeeping for both run modes: interrupt polling,
// injected run aborts, and the no-progress (livelock) watchdog.
class RunSupervision {
 public:
  explicit RunSupervision(const EnforceOptions& options) : options_(options) {}

  // Re-primes the watchdog from a checkpoint so a resumed run trips (or does
  // not trip) at exactly the step the cold run would.
  void Prime(int64_t last_progress, int64_t progress_step) {
    last_progress_ = last_progress;
    progress_step_ = progress_step;
  }
  int64_t last_progress() const { return last_progress_; }
  int64_t progress_step() const { return progress_step_; }

  // `progress` is any monotone marker of schedule progress; `status` is set
  // and true returned when the run must stop.
  bool ShouldAbort(int64_t steps, int64_t progress, Status& status) {
    if (options_.interrupt && steps % kInterruptPollSteps == 0) {
      Status s = options_.interrupt();
      if (!s.ok()) {
        status = std::move(s);
        return true;
      }
    }
    if (options_.faults != nullptr && options_.faults->AbortNow(steps)) {
      status = Status::Unavailable("fault injection: run aborted mid-flight");
      return true;
    }
    if (options_.stall_limit > 0) {
      if (progress != last_progress_) {
        last_progress_ = progress;
        progress_step_ = steps;
      } else if (steps - progress_step_ > options_.stall_limit) {
        status = Status::Aborted("watchdog: schedule made no progress for " +
                                 std::to_string(steps - progress_step_) + " steps");
        return true;
      }
    }
    return false;
  }

 private:
  const EnforceOptions& options_;
  int64_t last_progress_ = -1;
  int64_t progress_step_ = 0;
};

// Synthesizes a deadlock failure if the run stalled with blocked threads
// (mirrors RunToCompletion's end-of-run handling).
void AnnotateStall(const KernelSim& kernel, RunResult& r) {
  if (r.failure.has_value() || r.all_exited) {
    return;
  }
  ThreadId victim = kNoThread;
  for (ThreadId tid = 0; tid < kernel.thread_count(); ++tid) {
    if (kernel.thread(tid).state == ThreadState::kBlocked) {
      victim = tid;
    } else if (kernel.thread(tid).state == ThreadState::kParked ||
               kernel.thread(tid).runnable()) {
      return;  // something could still run; not a deadlock
    }
  }
  if (victim == kNoThread) {
    return;
  }
  const ThreadContext& t = kernel.thread(victim);
  Failure f;
  f.type = FailureType::kDeadlock;
  f.tid = victim;
  f.at = {t.prog, t.pc};
  f.addr = t.blocked_on;
  f.message = "enforced schedule deadlocked";
  r.failure = f;
}

std::vector<DynInstr> SortedSeen(const std::unordered_set<DynInstr>& seen) {
  std::vector<DynInstr> v(seen.begin(), seen.end());
  std::sort(v.begin(), v.end());
  return v;
}

// Gap to the next strided deposit: proportional to how far the run has come,
// so a long run makes O(log)-ish deposits instead of O(steps/stride) — the
// capture cost of a deposit is itself O(state), and state grows with the run.
int64_t DepositGap(int64_t stride, int64_t progress) {
  return std::max(stride, progress / 32);
}

}  // namespace

std::string PreemptionSchedule::ToString() const {
  std::vector<std::string> parts;
  for (const auto& p : points) {
    std::string part =
        StrFormat("T%d@%s(%d:%d)#%d->%d", p.after.tid, p.before ? "pre" : "post",
                  p.after.at.prog, p.after.at.pc, p.after.occurrence, p.switch_to);
    if (p.inject_irq != kNoProgram) {
      part += StrFormat("+irq(%d,%lld)", p.inject_irq, static_cast<long long>(p.irq_arg));
    }
    parts.push_back(std::move(part));
  }
  std::string base;
  for (ThreadId t : base_order) {
    base += StrFormat("%d,", t);
  }
  return "base[" + base + "] points{" + StrJoin(parts, " ") + "}";
}

std::string TotalOrderSchedule::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(sequence.size());
  for (const auto& d : sequence) {
    parts.push_back(StrFormat("T%d(%d:%d)#%d", d.tid, d.at.prog, d.at.pc, d.occurrence));
  }
  return StrJoin(parts, " ");
}

EnforceResult Enforcer::RunPreemption(const std::vector<ThreadSpec>& threads,
                                      const PreemptionSchedule& schedule,
                                      const std::vector<ThreadSpec>& setup,
                                      const EnforceOptions& options) {
  const int64_t max_steps = options.max_steps;
  FaultInjector* faults = options.faults;
  // Checkpointing and fault injection are mutually exclusive (see
  // EnforceOptions::checkpoints); faults win.
  ckpt::CheckpointStore* store = faults != nullptr ? nullptr : options.checkpoints;
  EnforceResult result;

  std::vector<bool> consumed(schedule.points.size(), false);
  std::vector<ThreadId> park_fifo;
  ThreadId current = kNoThread;
  int64_t steps = 0;
  int64_t points_fired = 0;
  int64_t replayed = 0;
  std::vector<PreemptPoint> fired_seq;
  std::unordered_set<DynInstr> pre_seen;
  std::unordered_set<DynInstr> post_seen;
  Watchpoints wps;
  RunSupervision supervision(options);

  // Resume from the longest valid prefix, else from the post-setup baseline,
  // else construct cold (and deposit the baseline for every later run).
  std::unique_ptr<KernelSim> owned;
  if (store != nullptr) {
    if (std::optional<ckpt::PreemptHit> hit = store->FindPreemptPrefix(schedule)) {
      owned = std::move(hit->sim);
      const ckpt::PreemptPrefixState& st = *hit->state;
      consumed = std::move(hit->consumed);
      park_fifo = st.park_fifo;
      current = st.current;
      steps = replayed = st.steps;
      points_fired = static_cast<int64_t>(st.fired.size());
      fired_seq = st.fired;
      pre_seen.insert(st.pre_seen.begin(), st.pre_seen.end());
      post_seen.insert(st.post_seen.begin(), st.post_seen.end());
      wps.RestoreState(st.armed, st.hits);
      supervision.Prime(st.last_progress, st.progress_step);
    } else if (std::unique_ptr<KernelSim> base = store->FindBaseline()) {
      owned = std::move(base);
    }
  }
  if (owned == nullptr) {
    owned = std::make_unique<KernelSim>(image_, threads, setup);
    if (store != nullptr) {
      store->PutBaseline(*owned);
    }
  }
  KernelSim& kernel = *owned;

  // Delayed watchpoint delivery (fault seam): events are buffered and fed to
  // the observer `watchpoint_delay` retirements late, order preserved.
  std::deque<ExecEvent> delayed;
  const int64_t wp_delay = faults != nullptr ? faults->watchpoint_delay() : 0;
  kernel.set_observer([&](const ExecEvent& e) {
    if (wp_delay <= 0) {
      wps.Observe(e);
      return;
    }
    delayed.push_back(e);
    faults->CountDelayedEvent();
    while (static_cast<int64_t>(delayed.size()) > wp_delay) {
      wps.Observe(delayed.front());
      delayed.pop_front();
    }
  });

  int64_t last_deposit = steps;
  bool deposit_pending = false;

  auto pick = [&]() -> ThreadId {
    ThreadId tid = MinRankRunnable(kernel, schedule.base_order);
    if (tid != kNoThread) {
      return tid;
    }
    while (!park_fifo.empty()) {
      ThreadId parked = park_fifo.front();
      park_fifo.erase(park_fifo.begin());
      kernel.Unpark(parked);
      if (kernel.thread(parked).runnable()) {
        return parked;
      }
    }
    return kNoThread;
  };

  while (!kernel.failure().has_value() && steps < max_steps) {
    // Deposit a prefix checkpoint at the loop top: right after a point fired
    // (the high-value branch points sibling schedules share), plus strided
    // along point-free stretches. Only strictly-new work is deposited —
    // a resumed run never re-deposits its own restored prefix.
    if (store != nullptr && steps > replayed &&
        (deposit_pending ||
         steps - last_deposit >=
             DepositGap(store->options().preempt_stride_steps, steps))) {
      ckpt::PreemptPrefixState st;
      st.fired = fired_seq;
      st.park_fifo = park_fifo;
      st.current = current;
      st.steps = steps;
      st.armed = wps.armed();
      st.hits = wps.hits();
      st.pre_seen = SortedSeen(pre_seen);
      st.post_seen = SortedSeen(post_seen);
      st.last_progress = supervision.last_progress();
      st.progress_step = supervision.progress_step();
      store->PutPreemptPrefix(kernel, schedule.base_order, std::move(st));
      last_deposit = steps;
      deposit_pending = false;
    }
    // Schedule progress = retired events + fired points; a loop of blocked
    // steps or spurious wakeups that fires nothing eventually trips the
    // watchdog.
    if (supervision.ShouldAbort(
            steps, static_cast<int64_t>(kernel.trace().size()) + points_fired,
            result.status)) {
      break;
    }
    // Spurious-wakeup fault seam: a parked thread rejoins the runnable set
    // ahead of schedule, as a trampoline vCPU kicked by a stray IPI would.
    if (faults != nullptr && !park_fifo.empty() && faults->SpuriousWakeup()) {
      size_t victim = faults->PickIndex(park_fifo.size());
      ThreadId woken = park_fifo[victim];
      park_fifo.erase(park_fifo.begin() + static_cast<std::ptrdiff_t>(victim));
      kernel.Unpark(woken);
    }
    if (current == kNoThread || !kernel.thread(current).runnable()) {
      current = pick();
      if (current == kNoThread) {
        break;
      }
    }
    std::optional<DynInstr> dyn = kernel.NextDynInstr(current);
    // Opportunity tracking for the store's prefix-validity probe: every
    // instruction that reaches the before-point scan below could have fired a
    // before point here.
    if (store != nullptr && dyn.has_value()) {
      pre_seen.insert(*dyn);
    }

    // Breakpoint-hit semantics: a "before" point parks the thread without
    // retiring the instruction, arming a watchpoint over the address the
    // instruction is about to touch (Figure 8).
    bool parked_before = false;
    for (size_t pi = 0; pi < schedule.points.size(); ++pi) {
      const PreemptPoint& point = schedule.points[pi];
      if (consumed[pi] || !point.before || !dyn.has_value() || !(point.after == *dyn)) {
        continue;
      }
      if (faults != nullptr && faults->DropPreemptionPoint()) {
        break;  // breakpoint missed: the instruction retires unparked
      }
      consumed[pi] = true;
      ++points_fired;
      fired_seq.push_back(point);
      deposit_pending = store != nullptr;
      if (auto peek = kernel.PeekAccess(current)) {
        wps.Arm(*dyn, peek->addr, peek->len, peek->is_write);
      }
      kernel.Park(current);
      park_fifo.push_back(current);
      ThreadId target = point.inject_irq != kNoProgram
                            ? kernel.InjectIrq(point.inject_irq, point.irq_arg)
                            : point.switch_to;
      current = (target != kNoThread && target < kernel.thread_count() &&
                 kernel.thread(target).runnable())
                    ? target
                    : kNoThread;
      parked_before = true;
      break;
    }
    if (parked_before) {
      continue;
    }

    bool retired = kernel.Step(current);
    ++steps;
    if (!retired) {
      current = kNoThread;  // blocked on a lock; reschedule
      continue;
    }
    if (store != nullptr && dyn.has_value()) {
      post_seen.insert(*dyn);
    }
    if (kernel.failure().has_value()) {
      break;
    }
    for (size_t pi = 0; pi < schedule.points.size(); ++pi) {
      if (consumed[pi] || schedule.points[pi].before ||
          !(schedule.points[pi].after == *dyn)) {
        continue;
      }
      if (faults != nullptr && faults->DropPreemptionPoint()) {
        break;  // breakpoint missed: no park, no watchpoint
      }
      consumed[pi] = true;
      ++points_fired;
      fired_seq.push_back(schedule.points[pi]);
      deposit_pending = store != nullptr;
      // Arm a watchpoint over what the preempted instruction touched, as the
      // hypervisor does right before resuming the other thread (Figure 8).
      const ExecEvent& last = kernel.trace().back();
      if (last.is_access) {
        wps.Arm(last.di, last.addr, last.len, last.is_write);
      }
      kernel.Park(current);
      park_fifo.push_back(current);
      ThreadId target =
          schedule.points[pi].inject_irq != kNoProgram
              ? kernel.InjectIrq(schedule.points[pi].inject_irq, schedule.points[pi].irq_arg)
              : schedule.points[pi].switch_to;
      current = (target != kNoThread && target < kernel.thread_count() &&
                 kernel.thread(target).runnable())
                    ? target
                    : kNoThread;
      break;
    }
  }

  for (size_t pi = 0; pi < schedule.points.size(); ++pi) {
    if (!consumed[pi]) {
      result.unfired_points.push_back(schedule.points[pi].after);
    }
  }
  // Late watchpoint deliveries still land before the run is scored.
  while (!delayed.empty()) {
    wps.Observe(delayed.front());
    delayed.pop_front();
  }
  result.steps = steps;
  result.replayed_steps = replayed;
  result.run = kernel.Collect();
  if (result.status.ok()) {
    if (steps >= max_steps && !result.run.failure.has_value()) {
      Failure f;
      f.type = FailureType::kWatchdog;
      f.message = "preemption schedule exceeded step budget";
      result.run.failure = f;
      result.status = Status::ResourceExhausted("step budget exhausted");
    }
    AnnotateStall(kernel, result.run);
  }
  result.watch_hits = wps.hits();
  return result;
}

EnforceResult Enforcer::RunTotalOrder(const std::vector<ThreadSpec>& threads,
                                      const TotalOrderSchedule& schedule,
                                      const std::vector<ThreadSpec>& setup,
                                      const EnforceOptions& options) {
  const int64_t max_steps = options.max_steps;
  ckpt::CheckpointStore* store = options.faults != nullptr ? nullptr : options.checkpoints;
  EnforceResult result;

  std::set<ThreadId> diverged;
  std::set<ThreadId> injected_irqs;
  size_t i = 0;
  int64_t steps = 0;
  int64_t replayed = 0;
  RunSupervision supervision(options);

  std::unique_ptr<KernelSim> owned;
  if (store != nullptr) {
    if (std::optional<ckpt::TotalOrderHit> hit = store->FindTotalOrderPrefix(schedule)) {
      owned = std::move(hit->sim);
      const ckpt::TotalOrderPrefixState& st = *hit->state;
      i = st.prefix.size();
      steps = replayed = st.steps;
      diverged.insert(st.diverged.begin(), st.diverged.end());
      injected_irqs.insert(st.injected_irqs.begin(), st.injected_irqs.end());
      result.disappeared = st.disappeared;
      result.deviations = st.deviations;
      supervision.Prime(st.last_progress, st.progress_step);
    } else if (std::unique_ptr<KernelSim> base = store->FindBaseline()) {
      owned = std::move(base);
    }
  }
  if (owned == nullptr) {
    owned = std::make_unique<KernelSim>(image_, threads, setup);
    if (store != nullptr) {
      store->PutBaseline(*owned);
    }
  }
  KernelSim& kernel = *owned;

  size_t last_deposit_i = i;
  size_t prev_i = i;

  while (!kernel.failure().has_value() && steps < max_steps && i < schedule.sequence.size()) {
    // Deposit at the *first* arrival of a sequence index: only there is the
    // enforcer state a pure function of sequence[0..i) + setup + IRQ
    // contexts (holder-drain iterations mutate state at a fixed i). Flip
    // schedules share the original trace's prefix up to their flip window,
    // so backward-ordered flip tests restore progressively shorter prefixes.
    if (store != nullptr && i != prev_i) {
      prev_i = i;
      if (steps > replayed &&
          static_cast<int64_t>(i - last_deposit_i) >=
              DepositGap(store->options().total_order_stride, static_cast<int64_t>(i))) {
        ckpt::TotalOrderPrefixState st;
        st.prefix.assign(schedule.sequence.begin(),
                         schedule.sequence.begin() + static_cast<std::ptrdiff_t>(i));
        st.irq_threads = schedule.irq_threads;
        st.diverged.assign(diverged.begin(), diverged.end());
        st.injected_irqs.assign(injected_irqs.begin(), injected_irqs.end());
        st.disappeared = result.disappeared;
        st.steps = steps;
        st.deviations = result.deviations;
        st.last_progress = supervision.last_progress();
        st.progress_step = supervision.progress_step();
        store->PutTotalOrderPrefix(kernel, std::move(st));
        last_deposit_i = i;
      }
    }
    // Progress = the schedule index: a liveness drain that spins a lock
    // holder without ever unblocking the scheduled thread is a livelock the
    // step budget alone would take orders of magnitude longer to catch.
    if (supervision.ShouldAbort(steps, static_cast<int64_t>(i), result.status)) {
      break;
    }
    const DynInstr& want = schedule.sequence[i];
    if (diverged.count(want.tid) != 0) {
      result.disappeared.push_back(want);
      ++i;
      continue;
    }
    if (want.tid >= kernel.thread_count()) {
      // Hardware-IRQ contexts of the recording are re-injected on first
      // reference (§4.6 extension).
      auto irq = schedule.irq_threads.find(want.tid);
      if (irq != schedule.irq_threads.end() && injected_irqs.count(want.tid) == 0) {
        injected_irqs.insert(want.tid);
        ThreadId id = kernel.InjectIrq(irq->second.first, irq->second.second);
        if (id == want.tid) {
          continue;  // retry the entry against the freshly injected context
        }
        // Spawn interleaving diverged; the entry cannot be honored.
      }
      // The thread was spawned in the original run but does not exist (yet or
      // at all) here — a race-steered control flow removed its spawn.
      result.disappeared.push_back(want);
      ++i;
      continue;
    }
    std::optional<DynInstr> dyn = kernel.NextDynInstr(want.tid);
    if (!dyn.has_value()) {
      // Thread already exited: the entry disappeared.
      result.disappeared.push_back(want);
      ++i;
      continue;
    }
    if (!(*dyn == want)) {
      // Race-steered control flow: this thread will never reach the expected
      // instruction next. Park it and drop its remaining entries.
      diverged.insert(want.tid);
      kernel.Park(want.tid);
      continue;
    }
    bool retired = kernel.Step(want.tid);
    ++steps;
    if (retired) {
      ++i;
      continue;
    }
    // The expected thread blocked on a lock the schedule did not anticipate
    // (the flip created new contention). Preserve liveness by letting the
    // lock holder drain — these steps are recorded as deviations.
    const ThreadContext& t = kernel.thread(want.tid);
    Word holder_word = kernel.memory().Peek(t.blocked_on);
    ThreadId holder = static_cast<ThreadId>(holder_word - 1);
    if (holder_word <= 0 || holder == want.tid || holder >= kernel.thread_count() ||
        !kernel.thread(holder).runnable()) {
      break;  // unresolvable: deadlock annotated below
    }
    kernel.Step(holder);
    ++steps;
    ++result.deviations;
  }
  while (i < schedule.sequence.size()) {
    result.disappeared.push_back(schedule.sequence[i++]);
  }

  // Drain phase: release parked threads and run everything to completion in
  // base order. The stall watchdog is moot here (every drain step retires),
  // but deadlines and injected aborts stay live.
  if (result.status.ok()) {
    for (ThreadId tid = 0; tid < kernel.thread_count(); ++tid) {
      kernel.Unpark(tid);
    }
    while (!kernel.failure().has_value() && steps < max_steps) {
      if (supervision.ShouldAbort(
              steps, static_cast<int64_t>(i + kernel.trace().size()), result.status)) {
        break;
      }
      ThreadId tid = MinRankRunnable(kernel, schedule.base_order);
      if (tid == kNoThread) {
        break;
      }
      kernel.Step(tid);
      ++steps;
      // Threads spawned during the drain are already covered by MinRankRunnable.
      for (ThreadId t2 = 0; t2 < kernel.thread_count(); ++t2) {
        if (kernel.thread(t2).state == ThreadState::kParked) {
          kernel.Unpark(t2);
        }
      }
    }
  }

  result.steps = steps;
  result.replayed_steps = replayed;
  result.run = kernel.Collect();
  if (result.status.ok()) {
    if (steps >= max_steps && !result.run.failure.has_value()) {
      Failure f;
      f.type = FailureType::kWatchdog;
      f.message = "total-order schedule exceeded step budget";
      result.run.failure = f;
      result.status = Status::ResourceExhausted("step budget exhausted");
    }
    AnnotateStall(kernel, result.run);
  }
  return result;
}

}  // namespace aitia
