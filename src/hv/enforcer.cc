#include "src/hv/enforcer.h"

#include <algorithm>
#include <deque>
#include <set>
#include <string>

#include "src/util/log.h"
#include "src/util/strings.h"

namespace aitia {
namespace {

// Thread ranking shared with SeqPolicy semantics: base threads in the given
// order, spawned threads after them by id.
int64_t RankOf(const std::vector<ThreadId>& base_order, ThreadId tid) {
  for (size_t i = 0; i < base_order.size(); ++i) {
    if (base_order[i] == tid) {
      return static_cast<int64_t>(i);
    }
  }
  return static_cast<int64_t>(base_order.size()) + tid;
}

ThreadId MinRankRunnable(const KernelSim& kernel, const std::vector<ThreadId>& base_order) {
  std::vector<ThreadId> runnable = kernel.RunnableThreads();
  if (runnable.empty()) {
    return kNoThread;
  }
  return *std::min_element(runnable.begin(), runnable.end(), [&](ThreadId a, ThreadId b) {
    return RankOf(base_order, a) < RankOf(base_order, b);
  });
}

// How often the interrupt hook (wall-clock deadline) is polled, in steps.
// Cheap enough to keep deadline overshoot in the microseconds.
constexpr int64_t kInterruptPollSteps = 256;

// Shared supervision bookkeeping for both run modes: interrupt polling,
// injected run aborts, and the no-progress (livelock) watchdog.
class RunSupervision {
 public:
  explicit RunSupervision(const EnforceOptions& options) : options_(options) {}

  // `progress` is any monotone marker of schedule progress; `status` is set
  // and true returned when the run must stop.
  bool ShouldAbort(int64_t steps, int64_t progress, Status& status) {
    if (options_.interrupt && steps % kInterruptPollSteps == 0) {
      Status s = options_.interrupt();
      if (!s.ok()) {
        status = std::move(s);
        return true;
      }
    }
    if (options_.faults != nullptr && options_.faults->AbortNow(steps)) {
      status = Status::Unavailable("fault injection: run aborted mid-flight");
      return true;
    }
    if (options_.stall_limit > 0) {
      if (progress != last_progress_) {
        last_progress_ = progress;
        progress_step_ = steps;
      } else if (steps - progress_step_ > options_.stall_limit) {
        status = Status::Aborted("watchdog: schedule made no progress for " +
                                 std::to_string(steps - progress_step_) + " steps");
        return true;
      }
    }
    return false;
  }

 private:
  const EnforceOptions& options_;
  int64_t last_progress_ = -1;
  int64_t progress_step_ = 0;
};

// Synthesizes a deadlock failure if the run stalled with blocked threads
// (mirrors RunToCompletion's end-of-run handling).
void AnnotateStall(const KernelSim& kernel, RunResult& r) {
  if (r.failure.has_value() || r.all_exited) {
    return;
  }
  ThreadId victim = kNoThread;
  for (ThreadId tid = 0; tid < kernel.thread_count(); ++tid) {
    if (kernel.thread(tid).state == ThreadState::kBlocked) {
      victim = tid;
    } else if (kernel.thread(tid).state == ThreadState::kParked ||
               kernel.thread(tid).runnable()) {
      return;  // something could still run; not a deadlock
    }
  }
  if (victim == kNoThread) {
    return;
  }
  const ThreadContext& t = kernel.thread(victim);
  Failure f;
  f.type = FailureType::kDeadlock;
  f.tid = victim;
  f.at = {t.prog, t.pc};
  f.addr = t.blocked_on;
  f.message = "enforced schedule deadlocked";
  r.failure = f;
}

}  // namespace

std::string PreemptionSchedule::ToString() const {
  std::vector<std::string> parts;
  for (const auto& p : points) {
    std::string part =
        StrFormat("T%d@%s(%d:%d)#%d->%d", p.after.tid, p.before ? "pre" : "post",
                  p.after.at.prog, p.after.at.pc, p.after.occurrence, p.switch_to);
    if (p.inject_irq != kNoProgram) {
      part += StrFormat("+irq(%d,%lld)", p.inject_irq, static_cast<long long>(p.irq_arg));
    }
    parts.push_back(std::move(part));
  }
  std::string base;
  for (ThreadId t : base_order) {
    base += StrFormat("%d,", t);
  }
  return "base[" + base + "] points{" + StrJoin(parts, " ") + "}";
}

std::string TotalOrderSchedule::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(sequence.size());
  for (const auto& d : sequence) {
    parts.push_back(StrFormat("T%d(%d:%d)#%d", d.tid, d.at.prog, d.at.pc, d.occurrence));
  }
  return StrJoin(parts, " ");
}

EnforceResult Enforcer::RunPreemption(const std::vector<ThreadSpec>& threads,
                                      const PreemptionSchedule& schedule,
                                      const std::vector<ThreadSpec>& setup,
                                      const EnforceOptions& options) {
  const int64_t max_steps = options.max_steps;
  FaultInjector* faults = options.faults;
  EnforceResult result;
  KernelSim kernel(image_, threads, setup);
  Watchpoints wps;

  // Delayed watchpoint delivery (fault seam): events are buffered and fed to
  // the observer `watchpoint_delay` retirements late, order preserved.
  std::deque<ExecEvent> delayed;
  const int64_t wp_delay = faults != nullptr ? faults->watchpoint_delay() : 0;
  kernel.set_observer([&](const ExecEvent& e) {
    if (wp_delay <= 0) {
      wps.Observe(e);
      return;
    }
    delayed.push_back(e);
    faults->CountDelayedEvent();
    while (static_cast<int64_t>(delayed.size()) > wp_delay) {
      wps.Observe(delayed.front());
      delayed.pop_front();
    }
  });

  std::vector<bool> consumed(schedule.points.size(), false);
  std::vector<ThreadId> park_fifo;
  ThreadId current = kNoThread;
  int64_t steps = 0;
  int64_t points_fired = 0;
  RunSupervision supervision(options);

  auto pick = [&]() -> ThreadId {
    ThreadId tid = MinRankRunnable(kernel, schedule.base_order);
    if (tid != kNoThread) {
      return tid;
    }
    while (!park_fifo.empty()) {
      ThreadId parked = park_fifo.front();
      park_fifo.erase(park_fifo.begin());
      kernel.Unpark(parked);
      if (kernel.thread(parked).runnable()) {
        return parked;
      }
    }
    return kNoThread;
  };

  while (!kernel.failure().has_value() && steps < max_steps) {
    // Schedule progress = retired events + fired points; a loop of blocked
    // steps or spurious wakeups that fires nothing eventually trips the
    // watchdog.
    if (supervision.ShouldAbort(
            steps, static_cast<int64_t>(kernel.trace().size()) + points_fired,
            result.status)) {
      break;
    }
    // Spurious-wakeup fault seam: a parked thread rejoins the runnable set
    // ahead of schedule, as a trampoline vCPU kicked by a stray IPI would.
    if (faults != nullptr && !park_fifo.empty() && faults->SpuriousWakeup()) {
      size_t victim = faults->PickIndex(park_fifo.size());
      ThreadId woken = park_fifo[victim];
      park_fifo.erase(park_fifo.begin() + static_cast<std::ptrdiff_t>(victim));
      kernel.Unpark(woken);
    }
    if (current == kNoThread || !kernel.thread(current).runnable()) {
      current = pick();
      if (current == kNoThread) {
        break;
      }
    }
    std::optional<DynInstr> dyn = kernel.NextDynInstr(current);

    // Breakpoint-hit semantics: a "before" point parks the thread without
    // retiring the instruction, arming a watchpoint over the address the
    // instruction is about to touch (Figure 8).
    bool parked_before = false;
    for (size_t pi = 0; pi < schedule.points.size(); ++pi) {
      const PreemptPoint& point = schedule.points[pi];
      if (consumed[pi] || !point.before || !dyn.has_value() || !(point.after == *dyn)) {
        continue;
      }
      if (faults != nullptr && faults->DropPreemptionPoint()) {
        break;  // breakpoint missed: the instruction retires unparked
      }
      consumed[pi] = true;
      ++points_fired;
      if (auto peek = kernel.PeekAccess(current)) {
        wps.Arm(*dyn, peek->addr, peek->len, peek->is_write);
      }
      kernel.Park(current);
      park_fifo.push_back(current);
      ThreadId target = point.inject_irq != kNoProgram
                            ? kernel.InjectIrq(point.inject_irq, point.irq_arg)
                            : point.switch_to;
      current = (target != kNoThread && target < kernel.thread_count() &&
                 kernel.thread(target).runnable())
                    ? target
                    : kNoThread;
      parked_before = true;
      break;
    }
    if (parked_before) {
      continue;
    }

    bool retired = kernel.Step(current);
    ++steps;
    if (!retired) {
      current = kNoThread;  // blocked on a lock; reschedule
      continue;
    }
    if (kernel.failure().has_value()) {
      break;
    }
    for (size_t pi = 0; pi < schedule.points.size(); ++pi) {
      if (consumed[pi] || schedule.points[pi].before ||
          !(schedule.points[pi].after == *dyn)) {
        continue;
      }
      if (faults != nullptr && faults->DropPreemptionPoint()) {
        break;  // breakpoint missed: no park, no watchpoint
      }
      consumed[pi] = true;
      ++points_fired;
      // Arm a watchpoint over what the preempted instruction touched, as the
      // hypervisor does right before resuming the other thread (Figure 8).
      const ExecEvent& last = kernel.trace().back();
      if (last.is_access) {
        wps.Arm(last.di, last.addr, last.len, last.is_write);
      }
      kernel.Park(current);
      park_fifo.push_back(current);
      ThreadId target =
          schedule.points[pi].inject_irq != kNoProgram
              ? kernel.InjectIrq(schedule.points[pi].inject_irq, schedule.points[pi].irq_arg)
              : schedule.points[pi].switch_to;
      current = (target != kNoThread && target < kernel.thread_count() &&
                 kernel.thread(target).runnable())
                    ? target
                    : kNoThread;
      break;
    }
  }

  for (size_t pi = 0; pi < schedule.points.size(); ++pi) {
    if (!consumed[pi]) {
      result.unfired_points.push_back(schedule.points[pi].after);
    }
  }
  // Late watchpoint deliveries still land before the run is scored.
  while (!delayed.empty()) {
    wps.Observe(delayed.front());
    delayed.pop_front();
  }
  result.steps = steps;
  result.run = kernel.Collect();
  if (result.status.ok()) {
    if (steps >= max_steps && !result.run.failure.has_value()) {
      Failure f;
      f.type = FailureType::kWatchdog;
      f.message = "preemption schedule exceeded step budget";
      result.run.failure = f;
      result.status = Status::ResourceExhausted("step budget exhausted");
    }
    AnnotateStall(kernel, result.run);
  }
  result.watch_hits = wps.hits();
  return result;
}

EnforceResult Enforcer::RunTotalOrder(const std::vector<ThreadSpec>& threads,
                                      const TotalOrderSchedule& schedule,
                                      const std::vector<ThreadSpec>& setup,
                                      const EnforceOptions& options) {
  const int64_t max_steps = options.max_steps;
  EnforceResult result;
  KernelSim kernel(image_, threads, setup);

  std::set<ThreadId> diverged;
  std::set<ThreadId> injected_irqs;
  size_t i = 0;
  int64_t steps = 0;
  RunSupervision supervision(options);

  while (!kernel.failure().has_value() && steps < max_steps && i < schedule.sequence.size()) {
    // Progress = the schedule index: a liveness drain that spins a lock
    // holder without ever unblocking the scheduled thread is a livelock the
    // step budget alone would take orders of magnitude longer to catch.
    if (supervision.ShouldAbort(steps, static_cast<int64_t>(i), result.status)) {
      break;
    }
    const DynInstr& want = schedule.sequence[i];
    if (diverged.count(want.tid) != 0) {
      result.disappeared.push_back(want);
      ++i;
      continue;
    }
    if (want.tid >= kernel.thread_count()) {
      // Hardware-IRQ contexts of the recording are re-injected on first
      // reference (§4.6 extension).
      auto irq = schedule.irq_threads.find(want.tid);
      if (irq != schedule.irq_threads.end() && injected_irqs.count(want.tid) == 0) {
        injected_irqs.insert(want.tid);
        ThreadId id = kernel.InjectIrq(irq->second.first, irq->second.second);
        if (id == want.tid) {
          continue;  // retry the entry against the freshly injected context
        }
        // Spawn interleaving diverged; the entry cannot be honored.
      }
      // The thread was spawned in the original run but does not exist (yet or
      // at all) here — a race-steered control flow removed its spawn.
      result.disappeared.push_back(want);
      ++i;
      continue;
    }
    std::optional<DynInstr> dyn = kernel.NextDynInstr(want.tid);
    if (!dyn.has_value()) {
      // Thread already exited: the entry disappeared.
      result.disappeared.push_back(want);
      ++i;
      continue;
    }
    if (!(*dyn == want)) {
      // Race-steered control flow: this thread will never reach the expected
      // instruction next. Park it and drop its remaining entries.
      diverged.insert(want.tid);
      kernel.Park(want.tid);
      continue;
    }
    bool retired = kernel.Step(want.tid);
    ++steps;
    if (retired) {
      ++i;
      continue;
    }
    // The expected thread blocked on a lock the schedule did not anticipate
    // (the flip created new contention). Preserve liveness by letting the
    // lock holder drain — these steps are recorded as deviations.
    const ThreadContext& t = kernel.thread(want.tid);
    Word holder_word = kernel.memory().Peek(t.blocked_on);
    ThreadId holder = static_cast<ThreadId>(holder_word - 1);
    if (holder_word <= 0 || holder == want.tid || holder >= kernel.thread_count() ||
        !kernel.thread(holder).runnable()) {
      break;  // unresolvable: deadlock annotated below
    }
    kernel.Step(holder);
    ++steps;
    ++result.deviations;
  }
  while (i < schedule.sequence.size()) {
    result.disappeared.push_back(schedule.sequence[i++]);
  }

  // Drain phase: release parked threads and run everything to completion in
  // base order. The stall watchdog is moot here (every drain step retires),
  // but deadlines and injected aborts stay live.
  if (result.status.ok()) {
    for (ThreadId tid = 0; tid < kernel.thread_count(); ++tid) {
      kernel.Unpark(tid);
    }
    while (!kernel.failure().has_value() && steps < max_steps) {
      if (supervision.ShouldAbort(
              steps, static_cast<int64_t>(i + kernel.trace().size()), result.status)) {
        break;
      }
      ThreadId tid = MinRankRunnable(kernel, schedule.base_order);
      if (tid == kNoThread) {
        break;
      }
      kernel.Step(tid);
      ++steps;
      // Threads spawned during the drain are already covered by MinRankRunnable.
      for (ThreadId t2 = 0; t2 < kernel.thread_count(); ++t2) {
        if (kernel.thread(t2).state == ThreadState::kParked) {
          kernel.Unpark(t2);
        }
      }
    }
  }

  result.steps = steps;
  result.run = kernel.Collect();
  if (result.status.ok()) {
    if (steps >= max_steps && !result.run.failure.has_value()) {
      Failure f;
      f.type = FailureType::kWatchdog;
      f.message = "total-order schedule exceeded step budget";
      result.run.failure = f;
      result.status = Status::ResourceExhausted("step budget exhausted");
    }
    AnnotateStall(kernel, result.run);
  }
  return result;
}

}  // namespace aitia
