// Schedules the AITIA hypervisor can enforce (§4.3-4.5).
//
// Two forms exist, matching the paper's two stages:
//
// - PreemptionSchedule (reproducing stage / LIFS): a base thread order plus a
//   list of scheduling points. "Preempt thread T right after it retires
//   dynamic instruction D, park it on the trampoline, and switch to thread
//   S." Parked threads resume in park order once nothing else can run.
//
// - TotalOrderSchedule (diagnosing stage / Causality Analysis): the exact
//   sequence of dynamic instructions the kernel must retire. The enforcer
//   replays it entry by entry; a thread whose control flow deviates from the
//   sequence (a race-steered control flow, §3.4) is parked, its remaining
//   entries are dropped and reported as "disappeared".

#ifndef SRC_HV_SCHEDULE_H_
#define SRC_HV_SCHEDULE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/types.h"

namespace aitia {

struct PreemptPoint {
  // The dynamic instruction the preemption keys on.
  DynInstr after;
  // If true, the thread parks right *before* executing the instruction (the
  // hypervisor's breakpoint-hit semantics, Figure 8); otherwise right after
  // it retires.
  bool before = false;
  // Thread to switch to; kNoThread lets the base order decide.
  ThreadId switch_to = kNoThread;
  // If set, a hardware-IRQ handler running this program is injected at the
  // point (VT-x-style injection, the paper's §4.6 future work) and control
  // switches to it; `switch_to` is ignored.
  ProgramId inject_irq = kNoProgram;
  Word irq_arg = 0;

  // Full identity comparison — the checkpoint store's prefix-validity probe
  // requires that a reused fired point match in *every* field, switch target
  // and IRQ payload included.
  friend bool operator==(const PreemptPoint&, const PreemptPoint&) = default;
};

struct PreemptionSchedule {
  // Ranking of the initial threads (first entry runs first). Threads spawned
  // at runtime rank after all base threads, in spawn order.
  std::vector<ThreadId> base_order;
  std::vector<PreemptPoint> points;

  std::string ToString() const;
};

struct TotalOrderSchedule {
  std::vector<DynInstr> sequence;
  // Base order used to drain threads once the sequence is exhausted or
  // entries disappeared.
  std::vector<ThreadId> base_order;
  // Hardware-IRQ contexts of the recorded run: thread id -> (handler
  // program, argument). The enforcer re-injects them on first reference in
  // the sequence, so replayed thread ids line up with the recording.
  std::map<ThreadId, std::pair<ProgramId, Word>> irq_threads;

  std::string ToString() const;
};

}  // namespace aitia

#endif  // SRC_HV_SCHEDULE_H_
