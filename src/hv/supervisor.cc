#include "src/hv/supervisor.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/ckpt/store.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace aitia {
namespace {

struct SupervisorMetrics {
  obs::Counter* runs;
  obs::Counter* attempts;
  obs::Counter* completed;
  obs::Counter* retries;
  obs::Counter* exhausted;
  obs::Counter* deadline_expirations;
  obs::Counter* watchdog_trips;
  obs::Counter* injected_faults;
  obs::Counter* steps;
  obs::Histogram* run_steps;

  static const SupervisorMetrics& Get() {
    static const SupervisorMetrics* const m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* sm = new SupervisorMetrics();
      sm->runs = reg.GetCounter("supervisor.runs");
      sm->attempts = reg.GetCounter("supervisor.attempts");
      sm->completed = reg.GetCounter("supervisor.completed");
      sm->retries = reg.GetCounter("supervisor.retries");
      sm->exhausted = reg.GetCounter("supervisor.exhausted");
      sm->deadline_expirations = reg.GetCounter("supervisor.deadline_expirations");
      sm->watchdog_trips = reg.GetCounter("supervisor.watchdog_trips");
      sm->injected_faults = reg.GetCounter("supervisor.injected_faults");
      sm->steps = reg.GetCounter("supervisor.steps");
      sm->run_steps =
          reg.GetHistogram("supervisor.run_steps", {100, 1000, 10000, 100000, 1000000});
      return sm;
    }();
    return *m;
  }
};

void PublishBudgetDelta(const RunBudget& delta) {
  const SupervisorMetrics& m = SupervisorMetrics::Get();
  m.runs->Add(delta.runs);
  m.attempts->Add(delta.attempts);
  m.completed->Add(delta.completed);
  m.retries->Add(delta.retries);
  m.exhausted->Add(delta.exhausted);
  m.deadline_expirations->Add(delta.deadline_expirations);
  m.watchdog_trips->Add(delta.watchdog_trips);
  m.injected_faults->Add(delta.injected_faults);
  m.steps->Add(delta.steps);
  ckpt::AddStepAccounting(delta.executed_steps, delta.replayed_steps);
}

}  // namespace

void RunBudget::Merge(const RunBudget& other) {
  runs += other.runs;
  attempts += other.attempts;
  completed += other.completed;
  retries += other.retries;
  exhausted += other.exhausted;
  deadline_expirations += other.deadline_expirations;
  watchdog_trips += other.watchdog_trips;
  injected_faults += other.injected_faults;
  steps += other.steps;
  executed_steps += other.executed_steps;
  replayed_steps += other.replayed_steps;
  backoff_ms += other.backoff_ms;
}

std::string RunBudget::ToString() const {
  return StrFormat(
      "runs=%lld attempts=%lld completed=%lld retries=%lld exhausted=%lld "
      "deadlines=%lld watchdogs=%lld faults=%lld steps=%lld",
      static_cast<long long>(runs), static_cast<long long>(attempts),
      static_cast<long long>(completed), static_cast<long long>(retries),
      static_cast<long long>(exhausted), static_cast<long long>(deadline_expirations),
      static_cast<long long>(watchdog_trips), static_cast<long long>(injected_faults),
      static_cast<long long>(steps));
}

RunBudget Supervisor::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

StatusOr<EnforceResult> Supervisor::Supervise(const RunFn& run, uint64_t nonce) {
  // Accounting accumulates in a local delta and lands in the shared budget
  // under a single lock per logical run: parallel LIFS frontier workers and
  // causality diagnosers all funnel through one Supervisor instance, so the
  // budget mutex sits on their hot path.
  RunBudget delta;
  StatusOr<EnforceResult> out = SuperviseAccounted(run, nonce, delta);
  PublishBudgetDelta(delta);
  std::lock_guard<std::mutex> lock(mu_);
  budget_.Merge(delta);
  return out;
}

StatusOr<EnforceResult> Supervisor::SuperviseAccounted(const RunFn& run, uint64_t nonce,
                                                       RunBudget& delta) {
  ++delta.runs;
  const int max_attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (options_.cancel && options_.cancel()) {
      ++delta.exhausted;
      return Status::Cancelled("run cancelled before attempt");
    }
    FaultInjector injector(options_.faults, FaultNonce(nonce, attempt));

    EnforceOptions eo;
    eo.max_steps = options_.max_steps;
    eo.stall_limit = options_.stall_limit;
    eo.faults = options_.faults.enabled() ? &injector : nullptr;
    // Chaos runs bypass the replay cache: fault streams roll per executed
    // step, so a restored prefix would desynchronize them.
    eo.checkpoints = options_.faults.enabled() ? nullptr : options_.checkpoints;
    Stopwatch watch;
    if (options_.deadline_seconds > 0 || options_.cancel) {
      const double deadline = options_.deadline_seconds;
      const std::function<bool()>* cancel = options_.cancel ? &options_.cancel : nullptr;
      eo.interrupt = [&watch, deadline, cancel]() -> Status {
        if (cancel != nullptr && (*cancel)()) {
          return Status::Cancelled("run cancelled mid-flight");
        }
        if (deadline > 0 && watch.ElapsedSeconds() > deadline) {
          return Status::DeadlineExceeded("run exceeded wall-clock deadline");
        }
        return OkStatus();
      };
    }

    EnforceResult er = run(eo);
    ++delta.attempts;
    delta.steps += er.steps;
    delta.executed_steps += er.steps - er.replayed_steps;
    delta.replayed_steps += er.replayed_steps;
    delta.injected_faults += injector.counters().total();
    SupervisorMetrics::Get().run_steps->Record(er.steps);
    if (const int64_t faults = injector.counters().total(); faults > 0) {
      obs::Span("hv", "supervisor.faults", 'i').Arg("nonce", nonce).Arg("count", faults);
    }
    switch (er.status.code()) {
      case StatusCode::kDeadlineExceeded:
        ++delta.deadline_expirations;
        obs::Span("hv", "supervisor.deadline", 'i').Arg("nonce", nonce);
        break;
      case StatusCode::kAborted:
        ++delta.watchdog_trips;
        obs::Span("hv", "supervisor.watchdog", 'i').Arg("nonce", nonce);
        break;
      default: break;
    }

    // kResourceExhausted (step budget) is a *scored* outcome, not a lost
    // run: the enforcer synthesized the kWatchdog failure the verdict layer
    // knows how to discount, and a deterministic re-run would only spend the
    // budget again.
    if (er.status.ok() || er.status.code() == StatusCode::kResourceExhausted) {
      ++delta.completed;
      return er;
    }
    last = er.status;

    const bool retryable = er.status.code() == StatusCode::kUnavailable ||
                           er.status.code() == StatusCode::kAborted;
    if (!retryable || attempt + 1 >= max_attempts) {
      break;
    }
    ++delta.retries;
    obs::Span("hv", "supervisor.retry", 'i')
        .Arg("nonce", nonce)
        .Arg("attempt", attempt + 1)
        .Arg("status", er.status.ToString());
    obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kSupervision,
                          "supervisor.retry", er.status.ToString(),
                          {{"nonce", static_cast<int64_t>(nonce)},
                           {"attempt", attempt + 1}});
    if (options_.backoff_ms_cap > 0) {
      // Deterministic seeded jitter: the sleep length is a pure function of
      // (retry_seed, nonce, attempt), so a replayed diagnosis spends the
      // same backoff schedule.
      Rng jitter(options_.retry_seed ^ FaultNonce(nonce, attempt));
      uint64_t ms = jitter.NextBelow(options_.backoff_ms_cap + 1);
      delta.backoff_ms += static_cast<int64_t>(ms);
      if (ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
    }
    AITIA_LOG(kDebug) << "supervisor: retrying run nonce=" << nonce << " after "
                      << er.status.ToString() << " (attempt " << attempt + 1 << "/"
                      << max_attempts << ")";
  }
  ++delta.exhausted;
  if (last.ok()) {
    last = Status::Internal("supervision exhausted without a status");
  }
  obs::Span("hv", "supervisor.exhausted", 'i')
      .Arg("nonce", nonce)
      .Arg("status", last.ToString());
  obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kSupervision,
                        "supervisor.exhausted", last.ToString(),
                        {{"nonce", static_cast<int64_t>(nonce)}});
  return last;
}

StatusOr<EnforceResult> Supervisor::RunPreemption(const std::vector<ThreadSpec>& threads,
                                                  const PreemptionSchedule& schedule,
                                                  const std::vector<ThreadSpec>& setup,
                                                  uint64_t nonce) {
  return Supervise(
      [&](const EnforceOptions& eo) {
        Enforcer enforcer(image_);
        return enforcer.RunPreemption(threads, schedule, setup, eo);
      },
      nonce);
}

StatusOr<EnforceResult> Supervisor::RunTotalOrder(const std::vector<ThreadSpec>& threads,
                                                  const TotalOrderSchedule& schedule,
                                                  const std::vector<ThreadSpec>& setup,
                                                  uint64_t nonce) {
  return Supervise(
      [&](const EnforceOptions& eo) {
        Enforcer enforcer(image_);
        return enforcer.RunTotalOrder(threads, schedule, setup, eo);
      },
      nonce);
}

}  // namespace aitia
