// Watchpoints: trap-on-address-access, the mechanism the AITIA hypervisor
// uses to detect data races at a preemption point (§4.3, Figure 8).
//
// The enforcer installs a watchpoint over the address a preempted
// instruction referenced; any access by another thread while the owner is
// parked is reported as a hit — i.e., a data race with the preempted
// instruction.

#ifndef SRC_HV_WATCHPOINT_H_
#define SRC_HV_WATCHPOINT_H_

#include <vector>

#include "src/sim/access.h"
#include "src/sim/types.h"

namespace aitia {

struct WatchpointHit {
  // The instruction the watchpoint was armed for (the parked side).
  DynInstr owner;
  Addr addr = 0;
  // The access that tripped the watchpoint.
  ExecEvent access;
};

class Watchpoints {
 public:
  // One armed watchpoint; exposed so the checkpoint engine (src/ckpt) can
  // snapshot and re-prime mid-run enforcement state.
  struct Armed {
    DynInstr owner;
    Addr addr = 0;
    Addr len = 1;
    bool owner_is_write = false;
  };

  void Arm(DynInstr owner, Addr addr, Addr len, bool owner_is_write) {
    armed_.push_back({owner, addr, len, owner_is_write});
  }

  void DisarmAll() { armed_.clear(); }
  void Disarm(DynInstr owner) {
    std::erase_if(armed_, [&](const Armed& a) { return a.owner == owner; });
  }

  // Feeds one retired event; records hits from other threads whose access
  // conflicts (overlap + at least one write) with the armed address.
  void Observe(const ExecEvent& e) {
    if (!e.is_access) {
      return;
    }
    for (const Armed& a : armed_) {
      if (e.di.tid == a.owner.tid) {
        continue;
      }
      const bool overlap = e.addr < a.addr + a.len && a.addr < e.addr + e.len;
      if (overlap && (e.is_write || a.owner_is_write)) {
        hits_.push_back({a.owner, a.addr, e});
      }
    }
  }

  const std::vector<WatchpointHit>& hits() const { return hits_; }
  const std::vector<Armed>& armed() const { return armed_; }

  // Re-primes the full watchpoint state from a checkpoint (prefix replay):
  // the resumed run continues with exactly the armed set and accumulated hits
  // the cold run had at the same step.
  void RestoreState(std::vector<Armed> armed, std::vector<WatchpointHit> hits) {
    armed_ = std::move(armed);
    hits_ = std::move(hits);
  }

 private:
  std::vector<Armed> armed_;
  std::vector<WatchpointHit> hits_;
};

}  // namespace aitia

#endif  // SRC_HV_WATCHPOINT_H_
