// The kernel simulator.
//
// KernelSim interprets scenario programs one instruction at a time under the
// full control of a scheduler (a SchedulerPolicy or the hv::Enforcer). It is
// sequentially consistent by construction — the paper's memory-model
// assumption (§3.2) — and deterministic: a schedule uniquely determines the
// run. "Rebooting the VM" (§5.1) is re-constructing a KernelSim, which is
// cheap.

#ifndef SRC_SIM_KERNEL_H_
#define SRC_SIM_KERNEL_H_

#include <deque>
#include <set>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/sim/access.h"
#include "src/sim/failure.h"
#include "src/sim/memory.h"
#include "src/sim/program.h"
#include "src/sim/thread.h"

namespace aitia {

namespace ckpt {
class SimAccess;  // checkpoint/restore shim (src/ckpt/checkpoint.cc)
}  // namespace ckpt

// Everything a finished run yields; the input to race extraction (hb.h),
// LIFS, and Causality Analysis.
struct RunResult {
  std::optional<Failure> failure;
  std::vector<ExecEvent> trace;
  std::vector<SpawnEdge> spawns;
  // Metadata for every thread that existed, indexed by ThreadId.
  struct ThreadInfo {
    std::string name;
    ProgramId prog = kNoProgram;
    ThreadKind kind = ThreadKind::kSyscall;
    ThreadId parent = kNoThread;
    Word arg = 0;
  };
  std::vector<ThreadInfo> threads;
  bool all_exited = false;
  int64_t steps = 0;

  bool failed() const { return failure.has_value(); }
  // Number of shared-memory-accessing instruction instances in the trace
  // (the §5.2 conciseness statistic).
  int64_t AccessCount() const;
};

class KernelSim {
 public:
  // `setup` threads (slice prologue, e.g. the open() paired with a racing
  // close(), §4.2) run to completion sequentially during construction with
  // event recording disabled: their effects are visible in memory, but they
  // produce no trace events and therefore no spurious races against the
  // concurrent threads. `initial` threads are created afterwards.
  KernelSim(const KernelImage* image, const std::vector<ThreadSpec>& initial,
            const std::vector<ThreadSpec>& setup = {});

  KernelSim(const KernelSim&) = delete;
  KernelSim& operator=(const KernelSim&) = delete;

  const KernelImage& image() const { return *image_; }

  // --- thread inspection ----------------------------------------------------
  int thread_count() const { return static_cast<int>(threads_.size()); }
  // ThreadId of the first `initial` (concurrent) thread; setup threads and
  // anything they spawned occupy the ids below it.
  ThreadId first_initial_thread() const { return setup_thread_count_; }
  const ThreadContext& thread(ThreadId tid) const { return threads_[static_cast<size_t>(tid)]; }
  std::vector<ThreadId> RunnableThreads() const;
  bool AllExited() const;
  // True when nothing can make progress: failure reported, or all exited,
  // or every unfinished thread is blocked/parked.
  bool Done() const;

  // The instruction `tid` would execute next (nullopt if not runnable).
  std::optional<InstrAddr> NextInstr(ThreadId tid) const;
  // Dynamic identity of that next instruction (occurrence included).
  std::optional<DynInstr> NextDynInstr(ThreadId tid) const;

  // What the next instruction of `tid` would access, computed from the
  // current register file without executing — the hypervisor's "disassemble
  // the breakpointed instruction to find the referenced address" (§4.3).
  struct PeekedAccess {
    Addr addr = 0;
    Addr len = 1;
    bool is_write = false;
  };
  std::optional<PeekedAccess> PeekAccess(ThreadId tid) const;

  // --- execution --------------------------------------------------------------
  // Executes one instruction of `tid`. Returns true if an instruction
  // retired; returns false if the thread could not run (blocked on a lock —
  // its state is updated — or not runnable). Must not be called after a
  // failure was reported.
  bool Step(ThreadId tid);

  // Hypervisor trampoline control (§4.4): a parked thread never runs until
  // unparked, but stays "responsive" (it is not counted as deadlocked).
  void Park(ThreadId tid);
  void Unpark(ThreadId tid);

  // Injects a hardware-IRQ handler context (the paper's §4.6 future work,
  // realized via the VT-x-style injection the hypervisor performs for
  // system calls). The handler becomes a runnable kHardIrq thread with no
  // happens-before edge to any other context.
  ThreadId InjectIrq(ProgramId handler, Word arg);

  // --- results ----------------------------------------------------------------
  const std::optional<Failure>& failure() const { return failure_; }
  const std::vector<ExecEvent>& trace() const { return trace_; }

  // Runs the end-of-run leak detector (only meaningful when all threads
  // exited without another failure), then moves the results out.
  RunResult Collect();

  // Observation hook: invoked after every retired event — the watchpoint
  // trap surface used by hv::Enforcer.
  void set_observer(std::function<void(const ExecEvent&)> observer) {
    observer_ = std::move(observer);
  }

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }

 private:
  // Checkpoint/restore (src/ckpt) serializes and rebuilds the full run state;
  // it is the only code allowed to bypass the execution interface.
  friend class ckpt::SimAccess;
  // Restore shell: image wired up, no setup phase, no threads. ckpt::SimAccess
  // overwrites every field right after.
  struct RestoreShellTag {};
  KernelSim(const KernelImage* image, RestoreShellTag) : image_(image), memory_(*image) {}

  ThreadContext& Mut(ThreadId tid) { return threads_[static_cast<size_t>(tid)]; }

  // Records one retired instruction; returns the event seq.
  int64_t Record(ThreadContext& t, const Instr& instr, bool is_access, bool is_write,
                 Addr addr, Addr len, Word value);
  void Fault(FailureType type, const ThreadContext& t, const Instr& instr, Addr addr,
             int64_t seq);
  ThreadId Spawn(const ThreadContext& parent, ProgramId prog, Word arg, ThreadKind kind,
                 int64_t seq);
  void WakeBlockedOn(Addr lock_addr);
  // Removes `tid` from the pending IPI acknowledgements; wakes the
  // broadcaster when the set drains.
  void AckIpi(ThreadId tid);

  const KernelImage* image_;
  Memory memory_;
  // deque: Spawn() appends while Step() holds a reference to the running
  // thread's context — element addresses must stay stable.
  std::deque<ThreadContext> threads_;
  std::vector<ExecEvent> trace_;
  std::vector<SpawnEdge> spawns_;
  std::optional<Failure> failure_;
  std::function<void(const ExecEvent&)> observer_;
  int64_t next_seq_ = 0;
  int spawn_counter_ = 0;
  bool recording_ = true;
  // Number of threads consumed by the setup phase (they stay in threads_ as
  // exited contexts so ThreadIds remain dense).
  int setup_thread_count_ = 0;
  // TLB shootdown state: the broadcasting thread and the contexts that have
  // not acknowledged yet.
  ThreadId ipi_broadcaster_ = kNoThread;
  std::set<ThreadId> ipi_pending_;
};

}  // namespace aitia

#endif  // SRC_SIM_KERNEL_H_
