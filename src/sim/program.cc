#include "src/sim/program.h"

#include <cstdlib>

#include "src/util/log.h"
#include "src/util/strings.h"

namespace aitia {

Addr KernelImage::AddGlobal(const std::string& name, Word init) {
  if (global_by_name_.count(name) != 0) {
    AITIA_LOG(kError) << "duplicate global: " << name;
    std::abort();
  }
  if (next_global_ >= kGlobalEnd) {
    AITIA_LOG(kError) << "global region exhausted";
    std::abort();
  }
  GlobalVar var{name, next_global_++, init};
  global_by_name_[name] = globals_.size();
  globals_.push_back(var);
  return var.addr;
}

ProgramId KernelImage::AddProgram(Program program) {
  if (program_by_name_.count(program.name) != 0) {
    AITIA_LOG(kError) << "duplicate program: " << program.name;
    std::abort();
  }
  program.id = static_cast<ProgramId>(programs_.size());
  program_by_name_[program.name] = program.id;
  programs_.push_back(std::move(program));
  return programs_.back().id;
}

Addr KernelImage::GlobalAddr(const std::string& name) const {
  auto it = global_by_name_.find(name);
  if (it == global_by_name_.end()) {
    AITIA_LOG(kError) << "unknown global: " << name;
    std::abort();
  }
  return globals_[it->second].addr;
}

ProgramId KernelImage::ProgramByName(const std::string& name) const {
  auto it = program_by_name_.find(name);
  if (it == program_by_name_.end()) {
    AITIA_LOG(kError) << "unknown program: " << name;
    std::abort();
  }
  return it->second;
}

ProgramId KernelImage::FindProgram(const std::string& name) const {
  auto it = program_by_name_.find(name);
  return it == program_by_name_.end() ? kNoProgram : it->second;
}

Addr KernelImage::FindGlobal(const std::string& name) const {
  auto it = global_by_name_.find(name);
  return it == global_by_name_.end() ? 0 : globals_[it->second].addr;
}

std::string KernelImage::GlobalName(Addr addr) const {
  for (const auto& g : globals_) {
    if (g.addr == addr) {
      return g.name;
    }
  }
  return "";
}

std::string KernelImage::Describe(InstrAddr at) const {
  if (at.prog < 0 || static_cast<size_t>(at.prog) >= programs_.size()) {
    return "<invalid>";
  }
  const Program& p = programs_[static_cast<size_t>(at.prog)];
  if (at.pc < 0 || at.pc >= p.size()) {
    return StrFormat("%s+%d <out of range>", p.name.c_str(), at.pc);
  }
  const Instr& instr = p.At(at.pc);
  if (!instr.note.empty()) {
    return StrFormat("%s+%d [%s]", p.name.c_str(), at.pc, instr.note.c_str());
  }
  return StrFormat("%s+%d [%s]", p.name.c_str(), at.pc, OpName(instr.op));
}

}  // namespace aitia
