#include "src/sim/failure.h"

#include "src/util/strings.h"

namespace aitia {

const char* FailureTypeName(FailureType type) {
  switch (type) {
    case FailureType::kNone: return "none";
    case FailureType::kNullDeref: return "null-ptr-deref";
    case FailureType::kGeneralProtection: return "general protection fault";
    case FailureType::kUseAfterFreeRead: return "KASAN: use-after-free Read";
    case FailureType::kUseAfterFreeWrite: return "KASAN: use-after-free Write";
    case FailureType::kOutOfBounds: return "KASAN: slab-out-of-bounds";
    case FailureType::kDoubleFree: return "double-free";
    case FailureType::kBadFree: return "invalid-free";
    case FailureType::kAssertViolation: return "kernel BUG (BUG_ON)";
    case FailureType::kWarning: return "WARNING (WARN_ON)";
    case FailureType::kRefcountWarning: return "WARNING: refcount bug";
    case FailureType::kMemoryLeak: return "memory leak";
    case FailureType::kDeadlock: return "deadlock";
    case FailureType::kWatchdog: return "watchdog: hung task";
  }
  return "?";
}

std::string Failure::ToString() const {
  std::string text = FailureTypeName(type);
  if (tid != kNoThread) {
    text += StrFormat(" in thread %d at prog %d pc %d", tid, at.prog, at.pc);
  }
  if (addr != 0) {
    text += StrFormat(" addr 0x%llx", static_cast<unsigned long long>(addr));
  }
  if (!message.empty()) {
    text += " (" + message + ")";
  }
  return text;
}

bool SameSymptom(const Failure& a, const Failure& b) {
  if (a.type != b.type) {
    return false;
  }
  // Whole-run symptoms are not tied to one faulting instruction (a leak's
  // attribution points at whichever allocation happened to be lost).
  if (a.type == FailureType::kMemoryLeak || a.type == FailureType::kDeadlock ||
      a.type == FailureType::kWatchdog) {
    return true;
  }
  return a.at == b.at;
}

bool SameSymptom(const std::optional<Failure>& a, const std::optional<Failure>& b) {
  if (a.has_value() != b.has_value()) {
    return false;
  }
  if (!a.has_value()) {
    return true;
  }
  return SameSymptom(*a, *b);
}

}  // namespace aitia
