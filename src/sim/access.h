// Execution trace records.
//
// Every retired instruction produces one ExecEvent; the totally ordered
// vector of events *is* the "instruction sequence" LIFS outputs and Causality
// Analysis flips (§3.3-3.4). Memory-accessing events carry the accessed
// address range; kfree covers the whole object so that frees conflict with
// accesses to any interior cell (that is what makes use-after-free pairs show
// up as data races).

#ifndef SRC_SIM_ACCESS_H_
#define SRC_SIM_ACCESS_H_

#include <cstdint>
#include <vector>

#include "src/sim/instr.h"
#include "src/sim/types.h"

namespace aitia {

struct ExecEvent {
  int64_t seq = -1;
  DynInstr di;
  Op op = Op::kNop;

  // Memory access payload (valid when is_access).
  bool is_access = false;
  bool is_write = false;
  Addr addr = 0;
  Addr len = 0;  // cells covered; 1 for plain accesses, object size for free
  Word value = 0;

  // Locks held while executing (tiny vectors; copied per event).
  std::vector<Addr> locks_held;
};

// True if the two events touch an overlapping address range with at least
// one write — the Linux-kernel-memory-model notion of conflicting accesses
// the paper adopts (§2).
inline bool Conflicting(const ExecEvent& a, const ExecEvent& b) {
  if (!a.is_access || !b.is_access) {
    return false;
  }
  if (!a.is_write && !b.is_write) {
    return false;
  }
  return a.addr < b.addr + b.len && b.addr < a.addr + a.len;
}

struct SpawnEdge {
  int64_t seq = -1;  // event sequence of the queue_work / call_rcu
  ThreadId parent = kNoThread;
  ThreadId child = kNoThread;
  Word arg = 0;  // r0 handed to the spawned context
};

}  // namespace aitia

#endif  // SRC_SIM_ACCESS_H_
