#include "src/sim/kernel.h"

#include <cstdlib>

#include "src/util/log.h"
#include "src/util/strings.h"

namespace aitia {

const char* ThreadKindName(ThreadKind kind) {
  switch (kind) {
    case ThreadKind::kSyscall: return "syscall";
    case ThreadKind::kKworker: return "kworker";
    case ThreadKind::kRcuCallback: return "rcu";
    case ThreadKind::kHardIrq: return "hardirq";
  }
  return "?";
}

int64_t RunResult::AccessCount() const {
  int64_t n = 0;
  for (const auto& e : trace) {
    if (e.is_access) {
      ++n;
    }
  }
  return n;
}

KernelSim::KernelSim(const KernelImage* image, const std::vector<ThreadSpec>& initial,
                     const std::vector<ThreadSpec>& setup)
    : image_(image), memory_(*image) {
  auto add_thread = [this](const ThreadSpec& spec) {
    ThreadContext t;
    t.id = static_cast<ThreadId>(threads_.size());
    t.name = spec.name;
    t.prog = spec.prog;
    t.kind = spec.kind;
    t.regs[R0] = spec.arg;
    t.initial_arg = spec.arg;
    threads_.push_back(std::move(t));
    return threads_.back().id;
  };

  if (!setup.empty()) {
    recording_ = false;
    for (const ThreadSpec& spec : setup) {
      add_thread(spec);
    }
    // Run the whole setup phase (including anything it spawns) sequentially.
    int64_t budget = 100000;
    for (;;) {
      ThreadId next = kNoThread;
      for (const auto& t : threads_) {
        if (t.runnable()) {
          next = t.id;
          break;
        }
      }
      if (next == kNoThread || failure_.has_value() || budget-- <= 0) {
        break;
      }
      Step(next);
    }
    if (failure_.has_value()) {
      AITIA_LOG(kError) << "setup phase faulted: " << failure_->ToString();
      std::abort();
    }
    recording_ = true;
    setup_thread_count_ = static_cast<int>(threads_.size());
  }

  for (const ThreadSpec& spec : initial) {
    add_thread(spec);
  }
}

std::vector<ThreadId> KernelSim::RunnableThreads() const {
  std::vector<ThreadId> out;
  for (const auto& t : threads_) {
    if (t.runnable()) {
      out.push_back(t.id);
    }
  }
  return out;
}

bool KernelSim::AllExited() const {
  for (const auto& t : threads_) {
    if (!t.exited()) {
      return false;
    }
  }
  return true;
}

bool KernelSim::Done() const {
  if (failure_.has_value()) {
    return true;
  }
  for (const auto& t : threads_) {
    if (t.runnable()) {
      return false;
    }
  }
  return true;
}

std::optional<InstrAddr> KernelSim::NextInstr(ThreadId tid) const {
  const ThreadContext& t = thread(tid);
  if (t.exited()) {
    return std::nullopt;
  }
  return InstrAddr{t.prog, t.pc};
}

std::optional<DynInstr> KernelSim::NextDynInstr(ThreadId tid) const {
  const ThreadContext& t = thread(tid);
  if (t.exited()) {
    return std::nullopt;
  }
  auto it = t.exec_counts.find(t.pc);
  int32_t occ = it == t.exec_counts.end() ? 0 : it->second;
  return DynInstr{tid, {t.prog, t.pc}, occ};
}

std::optional<KernelSim::PeekedAccess> KernelSim::PeekAccess(ThreadId tid) const {
  const ThreadContext& t = thread(tid);
  if (t.exited()) {
    return std::nullopt;
  }
  const Program& prog = image_->program(t.prog);
  if (t.pc < 0 || t.pc >= prog.size()) {
    return std::nullopt;
  }
  const Instr& instr = prog.At(t.pc);
  if (!IsMemoryAccess(instr.op)) {
    return std::nullopt;
  }
  PeekedAccess out;
  out.is_write = IsWriteAccess(instr.op);
  switch (instr.op) {
    case Op::kStore:
    case Op::kStoreImm:
      out.addr = static_cast<Addr>(t.regs[instr.rd] + instr.imm);
      break;
    case Op::kFree: {
      out.addr = static_cast<Addr>(t.regs[instr.rs]);
      const HeapObject* obj = memory_.FindObject(out.addr);
      out.len = obj != nullptr ? static_cast<Addr>(obj->cells) : 1;
      break;
    }
    default:
      out.addr = static_cast<Addr>(t.regs[instr.rs] + instr.imm);
      break;
  }
  return out;
}

int64_t KernelSim::Record(ThreadContext& t, const Instr& instr, bool is_access, bool is_write,
                          Addr addr, Addr len, Word value) {
  if (!recording_) {
    t.exec_counts[t.pc]++;
    return -1;
  }
  ExecEvent e;
  e.seq = next_seq_++;
  e.di = DynInstr{t.id, {t.prog, t.pc}, t.exec_counts[t.pc]};
  e.op = instr.op;
  e.is_access = is_access;
  e.is_write = is_write;
  e.addr = addr;
  e.len = len;
  e.value = value;
  e.locks_held = t.held_locks;
  trace_.push_back(e);
  t.exec_counts[t.pc]++;
  AckIpi(t.id);
  if (observer_) {
    observer_(trace_.back());
  }
  return e.seq;
}

void KernelSim::AckIpi(ThreadId tid) {
  if (ipi_broadcaster_ == kNoThread || ipi_pending_.erase(tid) == 0) {
    return;
  }
  if (ipi_pending_.empty()) {
    ThreadContext& b = Mut(ipi_broadcaster_);
    if (b.state == ThreadState::kBlocked && b.blocked_on == kIpiWaitAddr) {
      b.state = ThreadState::kRunnable;
      b.blocked_on = 0;
    }
    // The broadcaster retires the flush on its next step (see kTlbFlush).
  }
}

void KernelSim::Fault(FailureType type, const ThreadContext& t, const Instr& instr, Addr addr,
                      int64_t seq) {
  Failure f;
  f.type = type;
  f.tid = t.id;
  f.at = {t.prog, t.pc};
  f.addr = addr;
  f.seq = seq;
  f.message = instr.note.empty() ? Disassemble(instr) : instr.note;
  failure_ = std::move(f);
}

ThreadId KernelSim::Spawn(const ThreadContext& parent, ProgramId prog, Word arg, ThreadKind kind,
                          int64_t seq) {
  ThreadContext t;
  t.id = static_cast<ThreadId>(threads_.size());
  t.name = StrFormat("%s:%s#%d", ThreadKindName(kind),
                     image_->program(prog).name.c_str(), spawn_counter_++);
  t.prog = prog;
  t.kind = kind;
  t.regs[R0] = arg;
  t.initial_arg = arg;
  t.parent = parent.id;
  t.spawn_seq = seq;
  ThreadId id = t.id;
  threads_.push_back(std::move(t));
  spawns_.push_back({seq, parent.id, id, arg});
  return id;
}

ThreadId KernelSim::InjectIrq(ProgramId handler, Word arg) {
  ThreadContext t;
  t.id = static_cast<ThreadId>(threads_.size());
  t.name = StrFormat("hardirq:%s#%d", image_->program(handler).name.c_str(),
                     spawn_counter_++);
  t.prog = handler;
  t.kind = ThreadKind::kHardIrq;
  t.regs[R0] = arg;
  t.initial_arg = arg;
  ThreadId id = t.id;
  threads_.push_back(std::move(t));
  // No SpawnEdge: an interrupt is not ordered after any kernel instruction.
  return id;
}

void KernelSim::WakeBlockedOn(Addr lock_addr) {
  for (auto& t : threads_) {
    if (t.state == ThreadState::kBlocked && t.blocked_on == lock_addr) {
      t.state = ThreadState::kRunnable;
      t.blocked_on = 0;
    }
  }
}

void KernelSim::Park(ThreadId tid) {
  ThreadContext& t = Mut(tid);
  if (t.state == ThreadState::kRunnable || t.state == ThreadState::kBlocked) {
    t.state = ThreadState::kParked;
    // The trampoline busy-loop keeps the context responsive to IPIs (§4.4).
    AckIpi(tid);
  }
}

void KernelSim::Unpark(ThreadId tid) {
  ThreadContext& t = Mut(tid);
  if (t.state == ThreadState::kParked) {
    // A parked thread that was blocked on a lock retries the acquire.
    t.state = ThreadState::kRunnable;
  }
}

bool KernelSim::Step(ThreadId tid) {
  if (failure_.has_value()) {
    AITIA_LOG(kError) << "Step() after failure";
    std::abort();
  }
  ThreadContext& t = Mut(tid);
  if (!t.runnable()) {
    return false;
  }
  const Program& prog = image_->program(t.prog);
  if (t.pc < 0 || t.pc >= prog.size()) {
    AITIA_LOG(kError) << "pc out of range in " << prog.name;
    std::abort();
  }
  const Instr& instr = prog.At(t.pc);
  auto next = [&t] { t.pc++; };

  switch (instr.op) {
    case Op::kNop:
    case Op::kResched:
      Record(t, instr, false, false, 0, 0, 0);
      next();
      return true;

    case Op::kTlbFlush: {
      // IPI broadcast. Running peers acknowledge when they next retire an
      // instruction; parked (trampoline, §4.4) and lock-spinning peers
      // acknowledge immediately, because their loops keep interrupts live.
      if (ipi_broadcaster_ == t.id) {
        // Woken after the pending set drained.
        ipi_broadcaster_ = kNoThread;
        Record(t, instr, false, false, 0, 0, 0);
        next();
        return true;
      }
      std::set<ThreadId> pending;
      for (const auto& other : threads_) {
        if (other.id != t.id && other.state == ThreadState::kRunnable) {
          pending.insert(other.id);
        }
      }
      if (pending.empty()) {
        Record(t, instr, false, false, 0, 0, 0);
        next();
        return true;
      }
      ipi_broadcaster_ = t.id;
      ipi_pending_ = std::move(pending);
      t.state = ThreadState::kBlocked;
      t.blocked_on = kIpiWaitAddr;
      return false;
    }

    case Op::kMovImm:
      Record(t, instr, false, false, 0, 0, 0);
      t.regs[instr.rd] = instr.imm;
      next();
      return true;

    case Op::kMov:
      Record(t, instr, false, false, 0, 0, 0);
      t.regs[instr.rd] = t.regs[instr.rs];
      next();
      return true;

    case Op::kAddImm:
      Record(t, instr, false, false, 0, 0, 0);
      t.regs[instr.rd] = t.regs[instr.rs] + instr.imm;
      next();
      return true;

    case Op::kAdd:
      Record(t, instr, false, false, 0, 0, 0);
      t.regs[instr.rd] = t.regs[instr.rs] + t.regs[instr.rt];
      next();
      return true;

    case Op::kSub:
      Record(t, instr, false, false, 0, 0, 0);
      t.regs[instr.rd] = t.regs[instr.rs] - t.regs[instr.rt];
      next();
      return true;

    case Op::kLea:
      Record(t, instr, false, false, 0, 0, 0);
      t.regs[instr.rd] = instr.imm;
      next();
      return true;

    case Op::kLoad: {
      Addr ea = static_cast<Addr>(t.regs[instr.rs] + instr.imm);
      AccessOutcome out = memory_.Load(ea);
      int64_t seq = Record(t, instr, true, false, ea, 1, out.value);
      if (out.fault) {
        Fault(*out.fault, t, instr, ea, seq);
        return true;
      }
      t.regs[instr.rd] = out.value;
      next();
      return true;
    }

    case Op::kStore:
    case Op::kStoreImm: {
      Addr ea = static_cast<Addr>(t.regs[instr.rd] + instr.imm);
      Word value = instr.op == Op::kStore ? t.regs[instr.rs] : instr.imm2;
      AccessOutcome out = memory_.Store(ea, value);
      int64_t seq = Record(t, instr, true, true, ea, 1, value);
      if (out.fault) {
        Fault(*out.fault, t, instr, ea, seq);
        return true;
      }
      next();
      return true;
    }

    case Op::kBeqz:
    case Op::kBnez:
    case Op::kBeq:
    case Op::kBne: {
      Record(t, instr, false, false, 0, 0, 0);
      bool taken = false;
      switch (instr.op) {
        case Op::kBeqz: taken = t.regs[instr.rs] == 0; break;
        case Op::kBnez: taken = t.regs[instr.rs] != 0; break;
        case Op::kBeq: taken = t.regs[instr.rs] == t.regs[instr.rt]; break;
        case Op::kBne: taken = t.regs[instr.rs] != t.regs[instr.rt]; break;
        default: break;
      }
      if (taken) {
        t.pc = static_cast<Pc>(instr.imm);
      } else {
        next();
      }
      return true;
    }

    case Op::kJmp:
      Record(t, instr, false, false, 0, 0, 0);
      t.pc = static_cast<Pc>(instr.imm);
      return true;

    case Op::kCall:
      Record(t, instr, false, false, 0, 0, 0);
      t.call_stack.push_back(t.pc + 1);
      t.pc = static_cast<Pc>(instr.imm);
      return true;

    case Op::kRet:
      Record(t, instr, false, false, 0, 0, 0);
      if (t.call_stack.empty()) {
        t.state = ThreadState::kExited;
        return true;
      }
      t.pc = t.call_stack.back();
      t.call_stack.pop_back();
      return true;

    case Op::kExit:
      Record(t, instr, false, false, 0, 0, 0);
      t.state = ThreadState::kExited;
      return true;

    case Op::kAlloc: {
      int64_t seq = Record(t, instr, false, false, 0, 0, 0);
      DynInstr site{t.id, {t.prog, static_cast<Pc>(t.pc)}, 0};
      (void)seq;
      t.regs[instr.rd] =
          static_cast<Word>(memory_.Alloc(instr.imm, instr.imm2 != 0, site));
      next();
      return true;
    }

    case Op::kFree: {
      Addr base = static_cast<Addr>(t.regs[instr.rs]);
      const HeapObject* obj = memory_.FindObject(base);
      Addr len = obj != nullptr ? static_cast<Addr>(obj->cells) : 1;
      // kfree conflicts with any access to the object: record it as a write
      // covering the whole object.
      int64_t seq = Record(t, instr, true, true, base, len, 0);
      DynInstr site{t.id, {t.prog, static_cast<Pc>(t.pc)}, 0};
      if (auto fault = memory_.Free(base, site)) {
        Fault(*fault, t, instr, base, seq);
        return true;
      }
      next();
      return true;
    }

    case Op::kLock: {
      Addr ea = static_cast<Addr>(t.regs[instr.rs] + instr.imm);
      if (auto fault = memory_.Check(ea)) {
        int64_t seq = Record(t, instr, false, false, ea, 1, 0);
        Fault(*fault, t, instr, ea, seq);
        return true;
      }
      Word holder = memory_.Peek(ea);
      if (holder != 0) {
        // Contended (including self-deadlock): spin — the thread blocks and
        // the run loop's deadlock detector fires if nobody ever releases.
        // A spinning acquirer keeps interrupts enabled, so it acknowledges
        // outstanding IPIs (§4.4).
        t.state = ThreadState::kBlocked;
        t.blocked_on = ea;
        AckIpi(t.id);
        return false;
      }
      memory_.Poke(ea, t.id + 1);
      t.held_locks.push_back(ea);
      Record(t, instr, false, false, ea, 1, 0);
      next();
      return true;
    }

    case Op::kUnlock: {
      Addr ea = static_cast<Addr>(t.regs[instr.rs] + instr.imm);
      memory_.Poke(ea, 0);
      for (auto it = t.held_locks.begin(); it != t.held_locks.end(); ++it) {
        if (*it == ea) {
          t.held_locks.erase(it);
          break;
        }
      }
      Record(t, instr, false, false, ea, 1, 0);
      WakeBlockedOn(ea);
      next();
      return true;
    }

    case Op::kAssert: {
      int64_t seq = Record(t, instr, false, false, 0, 0, t.regs[instr.rs]);
      if (t.regs[instr.rs] == 0) {
        Fault(instr.imm2 != 0 ? FailureType::kWarning : FailureType::kAssertViolation, t,
              instr, 0, seq);
        return true;
      }
      next();
      return true;
    }

    case Op::kQueueWork:
    case Op::kCallRcu: {
      int64_t seq = Record(t, instr, false, false, 0, 0, 0);
      ThreadKind kind =
          instr.op == Op::kQueueWork ? ThreadKind::kKworker : ThreadKind::kRcuCallback;
      Spawn(t, static_cast<ProgramId>(instr.imm), t.regs[instr.rs], kind, seq);
      next();
      return true;
    }

    case Op::kListAdd:
    case Op::kListDel:
    case Op::kListContains:
    case Op::kListPop:
    case Op::kListLen: {
      Addr ea = static_cast<Addr>(t.regs[instr.rs] + instr.imm);
      bool write = IsWriteAccess(instr.op);
      if (auto fault = memory_.Check(ea)) {
        int64_t seq = Record(t, instr, true, write, ea, 1, 0);
        if (write && *fault == FailureType::kUseAfterFreeRead) {
          fault = FailureType::kUseAfterFreeWrite;
        }
        Fault(*fault, t, instr, ea, seq);
        return true;
      }
      auto& list = memory_.ListAt(ea);
      Word result = 0;
      switch (instr.op) {
        case Op::kListAdd:
          list.push_back(t.regs[instr.rt]);
          break;
        case Op::kListDel: {
          result = 0;
          for (auto it = list.begin(); it != list.end(); ++it) {
            if (*it == t.regs[instr.rt]) {
              list.erase(it);
              result = 1;
              break;
            }
          }
          break;
        }
        case Op::kListContains: {
          result = 0;
          for (Word v : list) {
            if (v == t.regs[instr.rt]) {
              result = 1;
              break;
            }
          }
          break;
        }
        case Op::kListPop:
          if (!list.empty()) {
            result = list.front();
            list.pop_front();
          }
          break;
        case Op::kListLen:
          result = static_cast<Word>(list.size());
          break;
        default:
          break;
      }
      // Mirror the length into the head cell so plain loads of the head see
      // list activity.
      memory_.Poke(ea, static_cast<Word>(list.size()));
      Record(t, instr, true, write, ea, 1, result);
      if (instr.op != Op::kListAdd) {
        t.regs[instr.rd] = result;
      }
      next();
      return true;
    }

    case Op::kRefGet:
    case Op::kRefPut: {
      Addr ea = static_cast<Addr>(t.regs[instr.rs] + instr.imm);
      if (auto fault = memory_.Check(ea)) {
        int64_t seq = Record(t, instr, true, true, ea, 1, 0);
        Fault(*fault == FailureType::kUseAfterFreeRead ? FailureType::kUseAfterFreeWrite : *fault,
              t, instr, ea, seq);
        return true;
      }
      Word v = memory_.Peek(ea);
      if (instr.op == Op::kRefGet) {
        int64_t seq = Record(t, instr, true, true, ea, 1, v + 1);
        if (v <= 0) {
          Fault(FailureType::kRefcountWarning, t, instr, ea, seq);
          return true;
        }
        memory_.Poke(ea, v + 1);
      } else {
        int64_t seq = Record(t, instr, true, true, ea, 1, v - 1);
        if (v <= 0) {
          Fault(FailureType::kRefcountWarning, t, instr, ea, seq);
          return true;
        }
        memory_.Poke(ea, v - 1);
        t.regs[instr.rd] = (v - 1 == 0) ? 1 : 0;
      }
      next();
      return true;
    }
  }
  AITIA_LOG(kError) << "unhandled op";
  std::abort();
}

RunResult KernelSim::Collect() {
  RunResult r;
  r.all_exited = AllExited();
  if (!failure_.has_value() && r.all_exited) {
    auto leaked = memory_.LeakedObjects();
    if (!leaked.empty()) {
      const HeapObject* obj = leaked.front();
      Failure f;
      f.type = FailureType::kMemoryLeak;
      f.tid = obj->alloc_site.tid;
      f.at = obj->alloc_site.at;
      f.addr = obj->base;
      f.message = StrFormat("%zu leak-checked object(s) still allocated", leaked.size());
      failure_ = std::move(f);
    }
  }
  r.failure = failure_;
  r.trace = trace_;
  r.spawns = spawns_;
  r.threads.reserve(threads_.size());
  for (const auto& t : threads_) {
    r.threads.push_back({t.name, t.prog, t.kind, t.parent, t.initial_arg});
  }
  r.steps = static_cast<int64_t>(trace_.size());
  return r;
}

}  // namespace aitia
