#include "src/sim/memory.h"

namespace aitia {

Memory::Memory(const KernelImage& image) {
  for (const GlobalVar& g : image.globals()) {
    cells_[g.addr] = g.init;
    if (g.addr >= global_top_) {
      global_top_ = g.addr + 1;
    }
  }
}

Memory::Shadow Memory::ShadowAt(Addr addr) const {
  if (addr >= kGlobalBase && addr < global_top_) {
    return Shadow::kAddressable;
  }
  if (addr >= kHeapBase && addr < next_heap_) {
    // Inside the carved heap: classify against the owning object layout.
    for (auto it = objects_.rbegin(); it != objects_.rend(); ++it) {
      const HeapObject& obj = *it;
      const Addr lo_red = obj.base - kRedzoneCells;
      const Addr hi_red_end = obj.base + static_cast<Addr>(obj.cells) + kRedzoneCells;
      if (addr >= lo_red && addr < hi_red_end) {
        if (addr < obj.base || addr >= obj.base + static_cast<Addr>(obj.cells)) {
          return Shadow::kRedzone;
        }
        return obj.freed ? Shadow::kFreed : Shadow::kAddressable;
      }
    }
  }
  return Shadow::kUnmapped;
}

std::optional<FailureType> Memory::Check(Addr addr) const {
  if (addr < kNullPageEnd) {
    return FailureType::kNullDeref;
  }
  switch (ShadowAt(addr)) {
    case Shadow::kAddressable:
      return std::nullopt;
    case Shadow::kFreed:
      return FailureType::kUseAfterFreeRead;  // caller upgrades writes
    case Shadow::kRedzone:
      return FailureType::kOutOfBounds;
    case Shadow::kUnmapped:
      return FailureType::kGeneralProtection;
  }
  return FailureType::kGeneralProtection;
}

AccessOutcome Memory::Load(Addr addr) {
  if (auto fault = Check(addr)) {
    return {.fault = fault};
  }
  auto it = cells_.find(addr);
  return {.value = it == cells_.end() ? 0 : it->second};
}

AccessOutcome Memory::Store(Addr addr, Word value) {
  if (auto fault = Check(addr)) {
    if (*fault == FailureType::kUseAfterFreeRead) {
      fault = FailureType::kUseAfterFreeWrite;
    }
    return {.fault = fault};
  }
  cells_[addr] = value;
  return {};
}

Addr Memory::Alloc(Word cells, bool leak_checked, DynInstr site) {
  if (cells <= 0) {
    cells = 1;
  }
  HeapObject obj;
  obj.base = next_heap_ + kRedzoneCells;
  obj.cells = cells;
  obj.leak_checked = leak_checked;
  obj.alloc_site = site;
  next_heap_ = obj.base + static_cast<Addr>(cells) + kRedzoneCells + kHeapObjectGap;
  // Fresh objects read as zero (kzalloc semantics keep scenarios simple).
  for (Addr a = obj.base; a < obj.base + static_cast<Addr>(cells); ++a) {
    cells_[a] = 0;
  }
  objects_.push_back(obj);
  return obj.base;
}

std::optional<FailureType> Memory::Free(Addr base, DynInstr site) {
  if (base < kNullPageEnd) {
    // kfree(NULL) is a no-op, as in the kernel.
    return std::nullopt;
  }
  for (auto& obj : objects_) {
    if (obj.base == base) {
      if (obj.freed) {
        return FailureType::kDoubleFree;
      }
      obj.freed = true;
      obj.free_site = site;
      return std::nullopt;
    }
  }
  return FailureType::kBadFree;
}

Word Memory::Peek(Addr addr) const {
  auto it = cells_.find(addr);
  return it == cells_.end() ? 0 : it->second;
}

void Memory::Poke(Addr addr, Word value) { cells_[addr] = value; }

std::deque<Word>& Memory::ListAt(Addr head) { return lists_[head]; }

std::vector<const HeapObject*> Memory::LiveLeakCheckedObjects() const {
  std::vector<const HeapObject*> live;
  for (const auto& obj : objects_) {
    if (obj.leak_checked && !obj.freed) {
      live.push_back(&obj);
    }
  }
  return live;
}

std::vector<const HeapObject*> Memory::LeakedObjects() const {
  std::vector<const HeapObject*> leaked;
  for (const HeapObject* obj : LiveLeakCheckedObjects()) {
    const Word needle = static_cast<Word>(obj->base);
    bool reachable = false;
    for (const auto& [addr, value] : cells_) {
      if (value != needle) {
        continue;
      }
      // A pointer stored inside a freed object is not a root.
      const HeapObject* owner = FindObject(addr);
      if (owner != nullptr && owner->freed) {
        continue;
      }
      reachable = true;
      break;
    }
    if (!reachable) {
      for (const auto& [head, list] : lists_) {
        (void)head;
        for (Word v : list) {
          if (v == needle) {
            reachable = true;
            break;
          }
        }
        if (reachable) {
          break;
        }
      }
    }
    if (!reachable) {
      leaked.push_back(obj);
    }
  }
  return leaked;
}

const HeapObject* Memory::FindObject(Addr addr) const {
  for (const auto& obj : objects_) {
    if (addr >= obj.base && addr < obj.base + static_cast<Addr>(obj.cells)) {
      return &obj;
    }
  }
  return nullptr;
}

}  // namespace aitia
