// Simulated kernel memory with KASAN-style checking.
//
// - Word-granular flat address space backed by a hash map.
// - Globals are always addressable.
// - kmalloc carves objects out of a bump region, surrounds them with
//   redzone cells, and *never reuses* freed addresses (quarantine), so every
//   use-after-free is detected deterministically — the well-behaved analog of
//   running the paper's instrumented kernel with KASAN enabled (§5).
// - Intrinsic linked lists live in a side table keyed by their head-cell
//   address; list ops perform exactly one checked access to the head cell, so
//   list races surface as conflicting accesses on the head.

#ifndef SRC_SIM_MEMORY_H_
#define SRC_SIM_MEMORY_H_

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/sim/failure.h"
#include "src/sim/program.h"
#include "src/sim/types.h"

namespace aitia {

namespace ckpt {
class SimAccess;  // checkpoint/restore shim (src/ckpt/checkpoint.cc)
}  // namespace ckpt

struct HeapObject {
  Addr base = 0;        // first usable cell (after the leading redzone)
  Word cells = 0;       // usable size
  bool freed = false;
  bool leak_checked = false;
  DynInstr alloc_site;
  DynInstr free_site;
};

// Result of a checked access: either a value (loads) or a failure.
struct AccessOutcome {
  std::optional<FailureType> fault;
  Word value = 0;
};

class Memory {
 public:
  explicit Memory(const KernelImage& image);

  // Checked shared-memory operations. `writer` is the dynamic instruction
  // performing the access (for fault attribution).
  AccessOutcome Load(Addr addr);
  AccessOutcome Store(Addr addr, Word value);

  // Allocator.
  // Returns the object base address, or a fault (never fails in practice —
  // the heap is unbounded).
  Addr Alloc(Word cells, bool leak_checked, DynInstr site);
  std::optional<FailureType> Free(Addr base, DynInstr site);

  // Unchecked accessors used by lock/list/refcount intrinsics after their own
  // region check, and by tests.
  Word Peek(Addr addr) const;
  void Poke(Addr addr, Word value);

  // Validates that `addr` is a readable/writable cell; returns the fault
  // class if not. Shared by every intrinsic.
  std::optional<FailureType> Check(Addr addr) const;

  // Intrinsic list storage (head cell holds the length, mirrored on change).
  std::deque<Word>& ListAt(Addr head);

  // Live leak-checked objects (for the end-of-run leak detector).
  std::vector<const HeapObject*> LiveLeakCheckedObjects() const;

  // Leak detector: live leak-checked objects whose base pointer is no longer
  // reachable from any root — global cells, live heap cells, or intrinsic
  // list elements. An object that is still published somewhere is not a leak
  // even if nobody freed it yet.
  std::vector<const HeapObject*> LeakedObjects() const;

  // Object lookup by any interior address; nullptr if not a heap address.
  const HeapObject* FindObject(Addr addr) const;

  size_t object_count() const { return objects_.size(); }

 private:
  friend class ckpt::SimAccess;

  enum class Shadow : uint8_t { kUnmapped, kAddressable, kFreed, kRedzone };

  Shadow ShadowAt(Addr addr) const;

  std::unordered_map<Addr, Word> cells_;
  std::vector<HeapObject> objects_;
  std::unordered_map<Addr, std::deque<Word>> lists_;
  Addr next_heap_ = kHeapBase;
  Addr global_top_ = kGlobalBase;
};

}  // namespace aitia

#endif  // SRC_SIM_MEMORY_H_
