// Core identifiers and the memory map of the simulated kernel.
//
// The simulator is the substrate that replaces the paper's KVM/QEMU-controlled
// Linux kernel (DESIGN.md §2). Addresses are 64-bit and word-granular: every
// address names one 64-bit cell. Three regions exist:
//
//   [0, kNullPageEnd)            the null page — any access is a NULL deref
//   [kGlobalBase, kGlobalEnd)    named global variables (scenario-declared)
//   [kHeapBase, ...)             kmalloc'd objects with redzones + quarantine

#ifndef SRC_SIM_TYPES_H_
#define SRC_SIM_TYPES_H_

#include <cstdint>
#include <limits>

namespace aitia {

using Addr = uint64_t;
using Word = int64_t;
using ThreadId = int32_t;
using ProgramId = int32_t;
using Pc = int32_t;

inline constexpr ThreadId kNoThread = -1;
inline constexpr ProgramId kNoProgram = -1;

inline constexpr Addr kNullPageEnd = 0x1000;
inline constexpr Addr kGlobalBase = 0x10000;
inline constexpr Addr kGlobalEnd = 0x40000;
inline constexpr Addr kHeapBase = 0x100000;

// Number of guard cells placed on each side of a heap object (KASAN redzone).
inline constexpr Addr kRedzoneCells = 2;
// Unmapped gap between consecutive heap objects, so wild-pointer accesses
// beyond the redzone fault as general protection faults instead of silently
// landing in a neighbouring allocation.
inline constexpr Addr kHeapObjectGap = 64;
// Sentinel blocked_on address for a thread waiting on IPI acknowledgements.
inline constexpr Addr kIpiWaitAddr = ~Addr{0};

// Register file size per thread context.
inline constexpr int kNumRegs = 16;

// A register name. r0 receives the thread argument on entry.
enum Reg : uint8_t {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12, R13, R14, R15,
};

// Static identity of an instruction: a "kernel code address". Two dynamic
// executions of the same code share the same InstrAddr — this is what
// breakpoints, schedules, and causality chains refer to, mirroring the
// paper's use of kernel instruction addresses.
struct InstrAddr {
  ProgramId prog = kNoProgram;
  Pc pc = -1;

  friend bool operator==(const InstrAddr&, const InstrAddr&) = default;
  friend auto operator<=>(const InstrAddr&, const InstrAddr&) = default;
};

// Dynamic identity of one executed instruction instance.
struct DynInstr {
  ThreadId tid = kNoThread;
  InstrAddr at;
  // How many times this thread had already executed `at` before this
  // instance (0 for the first execution). Disambiguates loop iterations.
  int32_t occurrence = 0;

  friend bool operator==(const DynInstr&, const DynInstr&) = default;
  friend auto operator<=>(const DynInstr&, const DynInstr&) = default;
};

}  // namespace aitia

template <>
struct std::hash<aitia::InstrAddr> {
  size_t operator()(const aitia::InstrAddr& a) const noexcept {
    return std::hash<uint64_t>()((static_cast<uint64_t>(a.prog) << 32) ^
                                 static_cast<uint32_t>(a.pc));
  }
};

template <>
struct std::hash<aitia::DynInstr> {
  size_t operator()(const aitia::DynInstr& d) const noexcept {
    size_t h = std::hash<aitia::InstrAddr>()(d.at);
    h ^= (static_cast<uint64_t>(static_cast<uint32_t>(d.tid)) << 17) +
         static_cast<uint32_t>(d.occurrence) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

#endif  // SRC_SIM_TYPES_H_
