// Fluent assembler for scenario programs.
//
// Scenarios read like annotated kernel pseudo-code:
//
//   ProgramBuilder b("packet_do_bind");
//   b.Lea(R1, po_fanout)
//    .Load(R2, R1).Note("B2: if (po->fanout)")
//    .Bnez(R2, "out")
//    ...
//    .Label("out").Exit();
//   image.AddProgram(b.Build());
//
// Labels may be referenced before they are defined; Build() patches branch
// targets and aborts on undefined labels.

#ifndef SRC_SIM_BUILDER_H_
#define SRC_SIM_BUILDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/sim/program.h"

namespace aitia {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // --- control over annotations -------------------------------------------
  // Attaches a note to the most recently emitted instruction.
  ProgramBuilder& Note(const std::string& note);

  // --- labels ---------------------------------------------------------------
  ProgramBuilder& Label(const std::string& name);

  // --- data movement ---------------------------------------------------------
  ProgramBuilder& MovImm(Reg rd, Word imm);
  ProgramBuilder& Mov(Reg rd, Reg rs);
  ProgramBuilder& AddImm(Reg rd, Reg rs, Word imm);
  ProgramBuilder& Add(Reg rd, Reg rs, Reg rt);
  ProgramBuilder& Sub(Reg rd, Reg rs, Reg rt);
  ProgramBuilder& Lea(Reg rd, Addr global);

  // --- shared memory ----------------------------------------------------------
  ProgramBuilder& Load(Reg rd, Reg rs, Word off = 0);
  ProgramBuilder& Store(Reg rd_base, Reg rs_value, Word off = 0);
  ProgramBuilder& StoreImm(Reg rd_base, Word value, Word off = 0);

  // --- control flow -----------------------------------------------------------
  ProgramBuilder& Beqz(Reg rs, const std::string& label);
  ProgramBuilder& Bnez(Reg rs, const std::string& label);
  ProgramBuilder& Beq(Reg rs, Reg rt, const std::string& label);
  ProgramBuilder& Bne(Reg rs, Reg rt, const std::string& label);
  ProgramBuilder& Jmp(const std::string& label);
  ProgramBuilder& Call(const std::string& label);
  ProgramBuilder& Ret();
  ProgramBuilder& Exit();

  // --- kernel services ---------------------------------------------------------
  ProgramBuilder& Alloc(Reg rd, Word cells, bool leak_checked = false);
  ProgramBuilder& Free(Reg rs);
  ProgramBuilder& Lock(Reg rs, Word off = 0);
  ProgramBuilder& Unlock(Reg rs, Word off = 0);
  ProgramBuilder& BugOn(Reg rs_must_be_nonzero);   // BUG_ON(rs == 0)
  ProgramBuilder& WarnOn(Reg rs_must_be_nonzero);  // WARN_ON(rs == 0)
  ProgramBuilder& Nop();
  ProgramBuilder& Resched();
  ProgramBuilder& TlbFlush();
  // Spawn program `worker` (by name, resolved at Build via the image) isn't
  // possible without the image; spawn takes a ProgramId directly.
  ProgramBuilder& QueueWork(ProgramId worker, Reg rs_arg);
  ProgramBuilder& CallRcu(ProgramId callback, Reg rs_arg);

  // --- intrinsic data structures -------------------------------------------------
  ProgramBuilder& ListAdd(Reg rs_head, Reg rt_value, Word off = 0);
  ProgramBuilder& ListDel(Reg rd_removed, Reg rs_head, Reg rt_value, Word off = 0);
  ProgramBuilder& ListContains(Reg rd, Reg rs_head, Reg rt_value, Word off = 0);
  ProgramBuilder& ListPop(Reg rd, Reg rs_head, Word off = 0);
  ProgramBuilder& ListLen(Reg rd, Reg rs_head, Word off = 0);
  ProgramBuilder& RefGet(Reg rs_base, Word off = 0);
  ProgramBuilder& RefPut(Reg rd_hit_zero, Reg rs_base, Word off = 0);

  // The pc the next emitted instruction will occupy (useful for tests).
  Pc NextPc() const { return static_cast<Pc>(code_.size()); }

  // Finalizes the program: patches labels and aborts on dangling references.
  Program Build();

 private:
  Instr& Emit(Instr instr);
  ProgramBuilder& Branch(Op op, Reg rs, Reg rt, const std::string& label);

  std::string name_;
  std::vector<Instr> code_;
  std::map<std::string, Pc> labels_;
  // Unresolved label uses: instruction index -> label name.
  std::vector<std::pair<size_t, std::string>> fixups_;
};

}  // namespace aitia

#endif  // SRC_SIM_BUILDER_H_
