#include "src/sim/faults.h"

namespace aitia {
namespace {

// splitmix64 finalizer: decorrelates (seed, nonce) pairs so nearby nonces
// (attempt 0 vs attempt 1 of the same run) get independent fault streams.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t FaultNonce(uint64_t run_nonce, int attempt) {
  return Mix(run_nonce * 0x100000001b3ULL + static_cast<uint64_t>(attempt));
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t nonce)
    : plan_(plan), rng_(Mix(plan.seed ^ Mix(nonce))) {
  if (plan_.abort_run > 0) {
    will_abort_ = rng_.Chance(plan_.abort_run, 1000);
    if (will_abort_) {
      abort_step_ =
          plan_.abort_at_step >= 0 ? plan_.abort_at_step : 1 + static_cast<int64_t>(rng_.NextBelow(999));
    }
  }
}

bool FaultInjector::DropPreemptionPoint() {
  if (plan_.drop_preemption_point == 0) {
    return false;
  }
  if (!rng_.Chance(plan_.drop_preemption_point, 1000)) {
    return false;
  }
  ++counters_.points_dropped;
  return true;
}

bool FaultInjector::SpuriousWakeup() {
  if (plan_.spurious_wakeup == 0) {
    return false;
  }
  if (!rng_.Chance(plan_.spurious_wakeup, 1000)) {
    return false;
  }
  ++counters_.spurious_wakeups;
  return true;
}

bool FaultInjector::AbortNow(int64_t step) {
  if (!will_abort_ || step < abort_step_) {
    return false;
  }
  will_abort_ = false;  // fire once
  ++counters_.aborts;
  return true;
}

}  // namespace aitia
