// Compatibility shim: the happens-before / race-extraction API moved to
// src/analysis/races.h when the static triage layer landed (DESIGN.md §13).
// Include that header directly in new code; this one stays so existing
// callers keep compiling unchanged.

#ifndef SRC_SIM_HB_H_
#define SRC_SIM_HB_H_

#include "src/analysis/races.h"

#endif  // SRC_SIM_HB_H_
