#include "src/sim/policy.h"

#include <algorithm>

namespace aitia {

ThreadId SeqPolicy::Pick(const KernelSim& kernel, const std::vector<ThreadId>& runnable) {
  (void)kernel;
  // Position in the base order; spawned threads order after all base threads
  // by their (monotonically increasing) ids.
  auto rank = [this](ThreadId tid) -> int64_t {
    for (size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == tid) {
        return static_cast<int64_t>(i);
      }
    }
    return static_cast<int64_t>(order_.size()) + tid;
  };
  return *std::min_element(runnable.begin(), runnable.end(),
                           [&](ThreadId a, ThreadId b) { return rank(a) < rank(b); });
}

ThreadId RandomPolicy::Pick(const KernelSim& kernel, const std::vector<ThreadId>& runnable) {
  (void)kernel;
  bool current_ok =
      current_ != kNoThread &&
      std::find(runnable.begin(), runnable.end(), current_) != runnable.end();
  if (current_ok && !rng_.Chance(switch_num_, switch_den_)) {
    return current_;
  }
  current_ = runnable[rng_.PickIndex(runnable.size())];
  return current_;
}

RunResult RunToCompletion(KernelSim& kernel, SchedulerPolicy& policy,
                          const RunOptions& options) {
  int64_t steps = 0;
  while (!kernel.Done()) {
    if (steps++ >= options.max_steps) {
      // Hung task: synthesize a watchdog report against an arbitrary
      // unfinished thread.
      for (ThreadId tid = 0; tid < kernel.thread_count(); ++tid) {
        const ThreadContext& t = kernel.thread(tid);
        if (!t.exited()) {
          Failure f;
          f.type = FailureType::kWatchdog;
          f.tid = tid;
          f.at = {t.prog, t.pc};
          f.message = "step budget exhausted";
          // Inject via a direct collect below; KernelSim has no setter, so
          // we return a synthesized result.
          RunResult r = kernel.Collect();
          r.failure = f;
          return r;
        }
      }
      break;
    }
    std::vector<ThreadId> runnable = kernel.RunnableThreads();
    if (runnable.empty()) {
      break;  // Done() handles exits; a blocked-only state is a deadlock
    }
    ThreadId tid = policy.Pick(kernel, runnable);
    kernel.Step(tid);
  }

  RunResult r = kernel.Collect();
  if (!r.failure.has_value() && !r.all_exited) {
    // Every unfinished thread is blocked (parked threads are under hypervisor
    // control and do not count as deadlocked on their own).
    bool any_blocked = false;
    bool any_parked = false;
    ThreadId victim = kNoThread;
    for (ThreadId tid = 0; tid < kernel.thread_count(); ++tid) {
      const ThreadContext& t = kernel.thread(tid);
      if (t.state == ThreadState::kBlocked) {
        any_blocked = true;
        victim = tid;
      } else if (t.state == ThreadState::kParked) {
        any_parked = true;
      }
    }
    if (any_blocked && !any_parked) {
      const ThreadContext& t = kernel.thread(victim);
      Failure f;
      f.type = FailureType::kDeadlock;
      f.tid = victim;
      f.at = {t.prog, t.pc};
      f.addr = t.blocked_on;
      f.message = "all unfinished threads blocked on locks";
      r.failure = f;
    }
  }
  return r;
}

RunResult RunWithPolicy(const KernelImage& image, const std::vector<ThreadSpec>& threads,
                        SchedulerPolicy& policy, const RunOptions& options) {
  KernelSim kernel(&image, threads);
  return RunToCompletion(kernel, policy, options);
}

}  // namespace aitia
