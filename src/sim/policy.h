// Scheduler policies and the top-level run loop.
//
// Plain policies are used by the fuzzer (random preemption) and by LIFS's
// interleaving-count-0 runs (sequential execution). Schedule *enforcement*
// lives in src/hv — it drives KernelSim::Step directly.

#ifndef SRC_SIM_POLICY_H_
#define SRC_SIM_POLICY_H_

#include <memory>
#include <vector>

#include "src/sim/kernel.h"
#include "src/util/rng.h"

namespace aitia {

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  // Picks the next thread to step among `runnable` (never empty).
  virtual ThreadId Pick(const KernelSim& kernel, const std::vector<ThreadId>& runnable) = 0;
};

// Runs threads without preemption, in a fixed base order; threads spawned at
// runtime (kworkers, RCU callbacks) run after all earlier threads finish, in
// spawn order. This is LIFS's interleaving-count-0 execution (§3.3).
class SeqPolicy : public SchedulerPolicy {
 public:
  explicit SeqPolicy(std::vector<ThreadId> order) : order_(std::move(order)) {}
  ThreadId Pick(const KernelSim& kernel, const std::vector<ThreadId>& runnable) override;

 private:
  std::vector<ThreadId> order_;
};

// Preempts at random points — the Syzkaller-ish environment that surfaces
// failures nondeterministically (src/fuzz).
class RandomPolicy : public SchedulerPolicy {
 public:
  // Switches away from the current thread with probability
  // `switch_num/switch_den` per step.
  RandomPolicy(uint64_t seed, uint64_t switch_num = 1, uint64_t switch_den = 4)
      : rng_(seed), switch_num_(switch_num), switch_den_(switch_den) {}
  ThreadId Pick(const KernelSim& kernel, const std::vector<ThreadId>& runnable) override;

 private:
  Rng rng_;
  uint64_t switch_num_;
  uint64_t switch_den_;
  ThreadId current_ = kNoThread;
};

struct RunOptions {
  int64_t max_steps = 200000;
};

// Drives `kernel` under `policy` until failure, completion, deadlock, or the
// watchdog budget; synthesizes kDeadlock / kWatchdog failures as needed and
// returns the collected result.
RunResult RunToCompletion(KernelSim& kernel, SchedulerPolicy& policy,
                          const RunOptions& options = {});

// Convenience: construct a sim over `image`/`threads` and run it.
RunResult RunWithPolicy(const KernelImage& image, const std::vector<ThreadSpec>& threads,
                        SchedulerPolicy& policy, const RunOptions& options = {});

}  // namespace aitia

#endif  // SRC_SIM_POLICY_H_
