// Deterministic, seed-driven fault injection for KernelSim/Enforcer runs.
//
// The paper's deployment enforces schedules on real VMs where breakpoints
// occasionally miss, parked vCPUs wake spuriously, debug-register traps
// arrive late, and whole runs die (§4.4–§4.5). The simulator has none of
// that noise by construction, so the supervisor's recovery paths would be
// untestable without manufacturing it. A FaultPlan describes the noise as
// per-mille probabilities; a FaultInjector turns (plan.seed, nonce) into a
// concrete, fully reproducible fault sequence for one enforcement attempt —
// retrying with a different nonce re-rolls the faults, which is exactly how
// transient faults behave in the fleet.

#ifndef SRC_SIM_FAULTS_H_
#define SRC_SIM_FAULTS_H_

#include <cstdint>

#include "src/util/rng.h"

namespace aitia {

struct FaultPlan {
  uint64_t seed = 0;
  // Per-mille chance that a matched preemption point silently fails to fire
  // (the breakpoint was missed; the instruction retires unparked).
  uint32_t drop_preemption_point = 0;
  // Per-step per-mille chance that one parked thread wakes spuriously and
  // rejoins the runnable set ahead of schedule.
  uint32_t spurious_wakeup = 0;
  // Per-run per-mille chance that the attempt dies mid-flight (VM loss).
  uint32_t abort_run = 0;
  // Step at which a doomed run aborts; -1 draws a step in [1, 1000).
  int64_t abort_at_step = -1;
  // Deliver watchpoint observations this many retired events late (0 = on
  // time). Delivery order is preserved; pending events flush at run end.
  int64_t watchpoint_delay = 0;

  bool enabled() const {
    return drop_preemption_point > 0 || spurious_wakeup > 0 || abort_run > 0 ||
           watchpoint_delay > 0;
  }
};

struct FaultCounters {
  int64_t points_dropped = 0;
  int64_t spurious_wakeups = 0;
  int64_t aborts = 0;
  int64_t delayed_events = 0;

  int64_t total() const {
    return points_dropped + spurious_wakeups + aborts + delayed_events;
  }
};

// Derives the per-attempt nonce the Supervisor feeds to FaultInjector, so
// tests can reconstruct the exact fault stream of attempt k of run `nonce`.
uint64_t FaultNonce(uint64_t run_nonce, int attempt);

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t nonce);

  // Consulted by the enforcer at each decision seam; every call advances the
  // deterministic stream, so call sites must be unconditional per seam.
  bool DropPreemptionPoint();
  bool SpuriousWakeup();
  // Uniform index into [0, size) for picking a wakeup victim.
  size_t PickIndex(size_t size) { return rng_.PickIndex(size); }
  // True exactly once, when a doomed run reaches its abort step.
  bool AbortNow(int64_t step);

  int64_t watchpoint_delay() const { return plan_.watchpoint_delay; }
  void CountDelayedEvent() { ++counters_.delayed_events; }

  // Whether this (plan, nonce) attempt is fated to abort — exposed so tests
  // can pick seeds with known retry behavior.
  bool will_abort() const { return will_abort_; }
  int64_t abort_step() const { return abort_step_; }

  const FaultCounters& counters() const { return counters_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  bool will_abort_ = false;
  int64_t abort_step_ = -1;
  FaultCounters counters_;
};

}  // namespace aitia

#endif  // SRC_SIM_FAULTS_H_
