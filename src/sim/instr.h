// The instruction set of the simulated kernel.
//
// Scenarios (src/bugs) are written against a tiny register machine so that
// every instruction has a stable code address the diagnosis layers can key
// breakpoints, watchpoints, and schedules on — exactly the control surface the
// AITIA hypervisor gets from hardware breakpoints on a real kernel (§4.3-4.4).

#ifndef SRC_SIM_INSTR_H_
#define SRC_SIM_INSTR_H_

#include <string>

#include "src/sim/types.h"

namespace aitia {

enum class Op : uint8_t {
  kNop,
  kResched,    // cond_resched() marker — a quiescent / preemption point
  kTlbFlush,   // TLB shootdown: IPI broadcast; completes once every other
               // unfinished context acknowledged (parked threads ack from
               // the trampoline — the §4.4 responsiveness property)
  kMovImm,     // rd = imm
  kMov,        // rd = rs
  kAddImm,     // rd = rs + imm
  kAdd,        // rd = rs + rt
  kSub,        // rd = rs - rt
  kLea,        // rd = imm (a global's address); marks intent, no memory access
  kLoad,       // rd = mem[rs + imm]                      (shared-memory read)
  kStore,      // mem[rd + imm] = rs                      (shared-memory write)
  kStoreImm,   // mem[rd + imm] = imm2                    (shared-memory write)
  kBeqz,       // if (rs == 0) goto imm
  kBnez,       // if (rs != 0) goto imm
  kBeq,        // if (rs == rt) goto imm
  kBne,        // if (rs != rt) goto imm
  kJmp,        // goto imm
  kCall,       // call imm (pushes return pc)
  kRet,        // return (pops); at depth 0 behaves like kExit
  kExit,       // thread finishes (syscall returns)
  kAlloc,      // rd = kmalloc(imm cells); imm2 != 0 => leak-checked object
  kFree,       // kfree(rs)
  kLock,       // spin_lock(mem cell rs + imm); blocks while held elsewhere
  kUnlock,     // spin_unlock(mem cell rs + imm)
  kAssert,     // BUG_ON-style: fail if rs == 0; imm2 != 0 => WARN severity
  kQueueWork,  // queue_work: spawn a kworker thread running program imm,
               // with r0 = rs
  kCallRcu,    // call_rcu: spawn an RCU-callback thread running program imm,
               // with r0 = rs
  kListAdd,    // list_add(list head at rs + imm, value rt)      (write)
  kListDel,    // list_del(list head at rs + imm, value rt);
               // rd = 1 if removed, 0 if absent                 (write)
  kListContains,  // rd = list head at rs + imm contains rt ? 1 : 0   (read)
  kListPop,    // rd = pop_front(list head at rs + imm), 0 if empty (write)
  kListLen,    // rd = length(list head at rs + imm)             (read)
  kRefGet,     // refcount_inc(mem[rs + imm]); WARN if it was <= 0
  kRefPut,     // refcount_dec(mem[rs + imm]); rd = 1 if it hit 0;
               // WARN if it was <= 0
};

const char* OpName(Op op);

// True if the op reads or writes scenario-visible shared memory (and thus
// participates in conflict/data-race detection).
bool IsMemoryAccess(Op op);

// True if the memory access writes (list mutations count as writes).
bool IsWriteAccess(Op op);

struct Instr {
  Op op = Op::kNop;
  uint8_t rd = 0;
  uint8_t rs = 0;
  uint8_t rt = 0;
  Word imm = 0;
  Word imm2 = 0;
  // Human-readable annotation, e.g. "A6: po->fanout = match". Flows into
  // race reports and causality chains, playing the role of the paper's
  // "line numbers in the kernel" (§4.1).
  std::string note;
};

// Disassembles one instruction (for reports and debugging).
std::string Disassemble(const Instr& instr);

}  // namespace aitia

#endif  // SRC_SIM_INSTR_H_
