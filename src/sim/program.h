// Programs and the kernel image.
//
// A Program is one piece of kernel code (a system-call handler body, a
// kworker function, an RCU callback). A KernelImage bundles all programs of a
// scenario together with the scenario's named global variables — the analog of
// a built vmlinux plus its data section.

#ifndef SRC_SIM_PROGRAM_H_
#define SRC_SIM_PROGRAM_H_

#include <map>
#include <string>
#include <vector>

#include "src/sim/instr.h"
#include "src/sim/types.h"

namespace aitia {

struct Program {
  ProgramId id = kNoProgram;
  std::string name;
  std::vector<Instr> code;

  const Instr& At(Pc pc) const { return code[static_cast<size_t>(pc)]; }
  Pc size() const { return static_cast<Pc>(code.size()); }
};

struct GlobalVar {
  std::string name;
  Addr addr = 0;
  Word init = 0;
};

class KernelImage {
 public:
  KernelImage() = default;

  // Registers a global variable; returns its address. Names must be unique.
  Addr AddGlobal(const std::string& name, Word init);

  // Registers a program; returns its id. Names must be unique.
  ProgramId AddProgram(Program program);

  const Program& program(ProgramId id) const { return programs_[static_cast<size_t>(id)]; }
  const std::vector<Program>& programs() const { return programs_; }
  const std::vector<GlobalVar>& globals() const { return globals_; }

  // Lookup helpers (abort on unknown name — scenario construction bugs).
  Addr GlobalAddr(const std::string& name) const;
  ProgramId ProgramByName(const std::string& name) const;

  // Non-aborting lookups; return kNoProgram / 0 when absent.
  ProgramId FindProgram(const std::string& name) const;
  Addr FindGlobal(const std::string& name) const;

  // Reverse lookup for reports. Returns "" if `addr` is not a global.
  std::string GlobalName(Addr addr) const;

  // Human-readable location of an instruction, e.g.
  // "fanout_add+3 [A6: po->fanout = match]".
  std::string Describe(InstrAddr at) const;

 private:
  std::vector<Program> programs_;
  std::vector<GlobalVar> globals_;
  std::map<std::string, ProgramId> program_by_name_;
  std::map<std::string, size_t> global_by_name_;
  Addr next_global_ = kGlobalBase;
};

}  // namespace aitia

#endif  // SRC_SIM_PROGRAM_H_
