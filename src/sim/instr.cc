#include "src/sim/instr.h"

#include "src/util/strings.h"

namespace aitia {

const char* OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kResched: return "resched";
    case Op::kTlbFlush: return "tlb_flush";
    case Op::kMovImm: return "movi";
    case Op::kMov: return "mov";
    case Op::kAddImm: return "addi";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kLea: return "lea";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kStoreImm: return "storei";
    case Op::kBeqz: return "beqz";
    case Op::kBnez: return "bnez";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kJmp: return "jmp";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kExit: return "exit";
    case Op::kAlloc: return "alloc";
    case Op::kFree: return "free";
    case Op::kLock: return "lock";
    case Op::kUnlock: return "unlock";
    case Op::kAssert: return "assert";
    case Op::kQueueWork: return "queue_work";
    case Op::kCallRcu: return "call_rcu";
    case Op::kListAdd: return "list_add";
    case Op::kListDel: return "list_del";
    case Op::kListContains: return "list_contains";
    case Op::kListPop: return "list_pop";
    case Op::kListLen: return "list_len";
    case Op::kRefGet: return "ref_get";
    case Op::kRefPut: return "ref_put";
  }
  return "?";
}

bool IsMemoryAccess(Op op) {
  switch (op) {
    case Op::kLoad:
    case Op::kStore:
    case Op::kStoreImm:
    case Op::kFree:  // conflicts with any access to the freed object
    case Op::kListAdd:
    case Op::kListDel:
    case Op::kListContains:
    case Op::kListPop:
    case Op::kListLen:
    case Op::kRefGet:
    case Op::kRefPut:
      return true;
    default:
      return false;
  }
}

bool IsWriteAccess(Op op) {
  switch (op) {
    case Op::kStore:
    case Op::kStoreImm:
    case Op::kFree:
    case Op::kListAdd:
    case Op::kListDel:
    case Op::kListPop:
    case Op::kRefGet:
    case Op::kRefPut:
      return true;
    default:
      return false;
  }
}

std::string Disassemble(const Instr& instr) {
  std::string text = StrFormat("%-13s rd=r%-2d rs=r%-2d rt=r%-2d imm=%lld imm2=%lld",
                               OpName(instr.op), instr.rd, instr.rs, instr.rt,
                               static_cast<long long>(instr.imm),
                               static_cast<long long>(instr.imm2));
  if (!instr.note.empty()) {
    text += "   ; " + instr.note;
  }
  return text;
}

}  // namespace aitia
