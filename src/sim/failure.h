// Failure taxonomy of the simulated kernel.
//
// Mirrors the failure classes of the paper's bug tables: KASAN
// use-after-free / slab-out-of-bounds, general protection faults, NULL
// dereferences, BUG_ON/WARN assertion violations, refcount warnings, memory
// leaks, and scheduler-observed hangs.

#ifndef SRC_SIM_FAILURE_H_
#define SRC_SIM_FAILURE_H_

#include <optional>
#include <string>

#include "src/sim/types.h"

namespace aitia {

enum class FailureType {
  kNone,
  kNullDeref,          // access inside the null page
  kGeneralProtection,  // access to an unmapped address (wild pointer)
  kUseAfterFreeRead,   // KASAN: read of freed (quarantined) memory
  kUseAfterFreeWrite,  // KASAN: write of freed (quarantined) memory
  kOutOfBounds,        // KASAN: redzone access (slab out-of-bounds)
  kDoubleFree,         // kfree of an already-freed object
  kBadFree,            // kfree of a non-object pointer
  kAssertViolation,    // BUG_ON fired
  kWarning,            // WARN_ON fired
  kRefcountWarning,    // refcount inc-from-zero or underflow
  kMemoryLeak,         // leak-checked object still live at clean exit
  kDeadlock,           // every unfinished thread blocked on a lock
  kWatchdog,           // step budget exhausted (hung task)
};

const char* FailureTypeName(FailureType type);

struct Failure {
  FailureType type = FailureType::kNone;
  // The faulting thread and instruction (the "failure point").
  ThreadId tid = kNoThread;
  InstrAddr at;
  // Faulting address for memory failures; 0 otherwise.
  Addr addr = 0;
  // Sequence number of the faulting event in the run trace (-1 if the
  // failure is not tied to one instruction, e.g. leak / deadlock).
  int64_t seq = -1;
  std::string message;

  std::string ToString() const;
};

// Two failures count as "the same symptom" if type and failure point match —
// the criterion LIFS uses to decide it reproduced *the reported* failure and
// the criterion Causality Analysis uses for "still fails".
bool SameSymptom(const Failure& a, const Failure& b);
bool SameSymptom(const std::optional<Failure>& a, const std::optional<Failure>& b);

}  // namespace aitia

#endif  // SRC_SIM_FAILURE_H_
