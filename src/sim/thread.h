// Thread contexts of the simulated kernel.

#ifndef SRC_SIM_THREAD_H_
#define SRC_SIM_THREAD_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/types.h"

namespace aitia {

// Execution context classes the paper distinguishes (§3.3, Figure 4):
// system calls, workqueue kworkers, and RCU callbacks (softirq) — plus
// hardware-IRQ handlers, which the paper leaves as future work (§4.6) and
// this implementation supports via IRQ injection at scheduling points.
enum class ThreadKind { kSyscall, kKworker, kRcuCallback, kHardIrq };

const char* ThreadKindName(ThreadKind kind);

enum class ThreadState {
  kRunnable,
  kBlocked,  // spinning on a lock held elsewhere
  kParked,   // suspended on the hypervisor trampoline (§4.4)
  kExited,
};

struct ThreadContext {
  ThreadId id = kNoThread;
  std::string name;
  ProgramId prog = kNoProgram;
  ThreadKind kind = ThreadKind::kSyscall;
  ThreadState state = ThreadState::kRunnable;

  std::array<Word, kNumRegs> regs{};
  Pc pc = 0;
  std::vector<Pc> call_stack;

  // Lock this thread is currently blocked on (valid when kBlocked).
  Addr blocked_on = 0;
  // Locks held, in acquisition order.
  std::vector<Addr> held_locks;

  // Executed-count per pc; gives each dynamic instruction its occurrence id.
  std::unordered_map<Pc, int32_t> exec_counts;

  ThreadId parent = kNoThread;
  // Trace sequence number of the spawning instruction (-1 for initial threads).
  int64_t spawn_seq = -1;
  // The r0 argument the context started with.
  Word initial_arg = 0;

  bool runnable() const { return state == ThreadState::kRunnable; }
  bool exited() const { return state == ThreadState::kExited; }
};

// A hardware-IRQ source that may be injected at scheduling points (§4.6
// extension): e.g. a serial-console interrupt handler.
struct IrqLine {
  ProgramId handler = kNoProgram;
  Word arg = 0;
};

// Static description of an initial (system call) thread in a slice.
struct ThreadSpec {
  std::string name;
  ProgramId prog = kNoProgram;
  Word arg = 0;
  ThreadKind kind = ThreadKind::kSyscall;
};

}  // namespace aitia

#endif  // SRC_SIM_THREAD_H_
