#include "src/sim/builder.h"

#include <cstdlib>
#include <utility>

#include "src/util/log.h"

namespace aitia {

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name)) {}

Instr& ProgramBuilder::Emit(Instr instr) {
  code_.push_back(std::move(instr));
  return code_.back();
}

ProgramBuilder& ProgramBuilder::Note(const std::string& note) {
  if (code_.empty()) {
    AITIA_LOG(kError) << "Note() before any instruction in " << name_;
    std::abort();
  }
  code_.back().note = note;
  return *this;
}

ProgramBuilder& ProgramBuilder::Label(const std::string& name) {
  if (!labels_.emplace(name, NextPc()).second) {
    AITIA_LOG(kError) << "duplicate label " << name << " in " << name_;
    std::abort();
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::MovImm(Reg rd, Word imm) {
  Emit({.op = Op::kMovImm, .rd = rd, .imm = imm});
  return *this;
}

ProgramBuilder& ProgramBuilder::Mov(Reg rd, Reg rs) {
  Emit({.op = Op::kMov, .rd = rd, .rs = rs});
  return *this;
}

ProgramBuilder& ProgramBuilder::AddImm(Reg rd, Reg rs, Word imm) {
  Emit({.op = Op::kAddImm, .rd = rd, .rs = rs, .imm = imm});
  return *this;
}

ProgramBuilder& ProgramBuilder::Add(Reg rd, Reg rs, Reg rt) {
  Emit({.op = Op::kAdd, .rd = rd, .rs = rs, .rt = rt});
  return *this;
}

ProgramBuilder& ProgramBuilder::Sub(Reg rd, Reg rs, Reg rt) {
  Emit({.op = Op::kSub, .rd = rd, .rs = rs, .rt = rt});
  return *this;
}

ProgramBuilder& ProgramBuilder::Lea(Reg rd, Addr global) {
  Emit({.op = Op::kLea, .rd = rd, .imm = static_cast<Word>(global)});
  return *this;
}

ProgramBuilder& ProgramBuilder::Load(Reg rd, Reg rs, Word off) {
  Emit({.op = Op::kLoad, .rd = rd, .rs = rs, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::Store(Reg rd_base, Reg rs_value, Word off) {
  Emit({.op = Op::kStore, .rd = rd_base, .rs = rs_value, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::StoreImm(Reg rd_base, Word value, Word off) {
  Emit({.op = Op::kStoreImm, .rd = rd_base, .imm = off, .imm2 = value});
  return *this;
}

ProgramBuilder& ProgramBuilder::Branch(Op op, Reg rs, Reg rt, const std::string& label) {
  Instr instr{.op = op, .rs = rs, .rt = rt};
  fixups_.emplace_back(code_.size(), label);
  Emit(std::move(instr));
  return *this;
}

ProgramBuilder& ProgramBuilder::Beqz(Reg rs, const std::string& label) {
  return Branch(Op::kBeqz, rs, R0, label);
}

ProgramBuilder& ProgramBuilder::Bnez(Reg rs, const std::string& label) {
  return Branch(Op::kBnez, rs, R0, label);
}

ProgramBuilder& ProgramBuilder::Beq(Reg rs, Reg rt, const std::string& label) {
  return Branch(Op::kBeq, rs, rt, label);
}

ProgramBuilder& ProgramBuilder::Bne(Reg rs, Reg rt, const std::string& label) {
  return Branch(Op::kBne, rs, rt, label);
}

ProgramBuilder& ProgramBuilder::Jmp(const std::string& label) {
  return Branch(Op::kJmp, R0, R0, label);
}

ProgramBuilder& ProgramBuilder::Call(const std::string& label) {
  return Branch(Op::kCall, R0, R0, label);
}

ProgramBuilder& ProgramBuilder::Ret() {
  Emit({.op = Op::kRet});
  return *this;
}

ProgramBuilder& ProgramBuilder::Exit() {
  Emit({.op = Op::kExit});
  return *this;
}

ProgramBuilder& ProgramBuilder::Alloc(Reg rd, Word cells, bool leak_checked) {
  Emit({.op = Op::kAlloc, .rd = rd, .imm = cells, .imm2 = leak_checked ? 1 : 0});
  return *this;
}

ProgramBuilder& ProgramBuilder::Free(Reg rs) {
  Emit({.op = Op::kFree, .rs = rs});
  return *this;
}

ProgramBuilder& ProgramBuilder::Lock(Reg rs, Word off) {
  Emit({.op = Op::kLock, .rs = rs, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::Unlock(Reg rs, Word off) {
  Emit({.op = Op::kUnlock, .rs = rs, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::BugOn(Reg rs_must_be_nonzero) {
  Emit({.op = Op::kAssert, .rs = rs_must_be_nonzero, .imm2 = 0});
  return *this;
}

ProgramBuilder& ProgramBuilder::WarnOn(Reg rs_must_be_nonzero) {
  Emit({.op = Op::kAssert, .rs = rs_must_be_nonzero, .imm2 = 1});
  return *this;
}

ProgramBuilder& ProgramBuilder::Nop() {
  Emit({.op = Op::kNop});
  return *this;
}

ProgramBuilder& ProgramBuilder::Resched() {
  Emit({.op = Op::kResched});
  return *this;
}

ProgramBuilder& ProgramBuilder::TlbFlush() {
  Emit({.op = Op::kTlbFlush});
  return *this;
}

ProgramBuilder& ProgramBuilder::QueueWork(ProgramId worker, Reg rs_arg) {
  Emit({.op = Op::kQueueWork, .rs = rs_arg, .imm = worker});
  return *this;
}

ProgramBuilder& ProgramBuilder::CallRcu(ProgramId callback, Reg rs_arg) {
  Emit({.op = Op::kCallRcu, .rs = rs_arg, .imm = callback});
  return *this;
}

ProgramBuilder& ProgramBuilder::ListAdd(Reg rs_head, Reg rt_value, Word off) {
  Emit({.op = Op::kListAdd, .rs = rs_head, .rt = rt_value, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::ListDel(Reg rd_removed, Reg rs_head, Reg rt_value, Word off) {
  Emit({.op = Op::kListDel, .rd = rd_removed, .rs = rs_head, .rt = rt_value, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::ListContains(Reg rd, Reg rs_head, Reg rt_value, Word off) {
  Emit({.op = Op::kListContains, .rd = rd, .rs = rs_head, .rt = rt_value, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::ListPop(Reg rd, Reg rs_head, Word off) {
  Emit({.op = Op::kListPop, .rd = rd, .rs = rs_head, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::ListLen(Reg rd, Reg rs_head, Word off) {
  Emit({.op = Op::kListLen, .rd = rd, .rs = rs_head, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::RefGet(Reg rs_base, Word off) {
  Emit({.op = Op::kRefGet, .rs = rs_base, .imm = off});
  return *this;
}

ProgramBuilder& ProgramBuilder::RefPut(Reg rd_hit_zero, Reg rs_base, Word off) {
  Emit({.op = Op::kRefPut, .rd = rd_hit_zero, .rs = rs_base, .imm = off});
  return *this;
}

Program ProgramBuilder::Build() {
  for (const auto& [index, label] : fixups_) {
    auto it = labels_.find(label);
    if (it == labels_.end()) {
      AITIA_LOG(kError) << "undefined label " << label << " in " << name_;
      std::abort();
    }
    code_[index].imm = it->second;
  }
  fixups_.clear();
  // Every program must end in control flow that cannot fall off the end.
  if (code_.empty() || (code_.back().op != Op::kExit && code_.back().op != Op::kRet &&
                        code_.back().op != Op::kJmp)) {
    code_.push_back({.op = Op::kExit});
  }
  Program p;
  p.name = name_;
  p.code = std::move(code_);
  return p;
}

}  // namespace aitia
