// Small string helpers shared by reports and benches.

#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace aitia {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep);

// Pads or truncates `s` to exactly `width` columns (left-aligned).
std::string PadRight(const std::string& s, size_t width);

// JSON string escaping per RFC 8259 (quotes, backslashes, control
// characters). Shared by the report serializer and the trace exporter.
std::string JsonEscape(const std::string& raw);

}  // namespace aitia

#endif  // SRC_UTIL_STRINGS_H_
