// Small string helpers shared by reports and benches.

#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aitia {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep);

// Pads or truncates `s` to exactly `width` columns (left-aligned).
std::string PadRight(const std::string& s, size_t width);

// JSON string escaping per RFC 8259 (quotes, backslashes, control
// characters). Shared by the report serializer and the trace exporter.
std::string JsonEscape(const std::string& raw);

// FNV-1a 64-bit hash. Stable across platforms and process restarts, so it is
// safe to use as a cache / sharding key for canonical text (the service
// layer keys its result cache on the hash of a scenario's .ait form).
uint64_t Fnv1a64(std::string_view data);

}  // namespace aitia

#endif  // SRC_UTIL_STRINGS_H_
