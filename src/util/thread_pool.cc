#include "src/util/thread_pool.h"

#include <utility>

namespace aitia {

size_t ThreadPool::ResolveWorkers(size_t workers) {
  if (workers != 0) {
    return workers;
  }
  const size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t workers, size_t queue_limit) : queue_limit_(queue_limit) {
  workers = ResolveWorkers(workers);
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && threads_.empty()) {
      return;  // already shut down
    }
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Reject-after-stop keeps the run/reject decision deterministic: a task
    // either lands before shutdown (and will run during the drain) or is
    // refused here — it can never sit in the queue unexecuted.
    if (stopping_) {
      return false;
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return false;
    }
    // Saturation check on *pending* tasks: what a worker has already picked
    // up is capacity in use, not queue depth. The decision happens under the
    // same lock as the push, so the bound is exact, never approximate.
    if (queue_limit_ > 0 && tasks_.size() >= queue_limit_) {
      return false;
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    if (!pool.Submit([&fn, i] { fn(i); })) {
      fn(i);  // pool shutting down: degrade to inline execution, never drop work
    }
  }
  pool.Wait();
}

}  // namespace aitia
