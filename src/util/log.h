// Minimal leveled logging. Diagnosis runs are chatty at kDebug; benches and
// examples run at kInfo.
//
// Thread safety: each AITIA_LOG statement buffers into its own stream and is
// emitted as one LogMessage call; the sink (stderr by default) is guarded by
// a single mutex, so parallel LIFS workers never interleave partial lines.
// Every line carries a small per-thread tag ("[T3]") so interleaved *whole*
// lines from a worker pool stay attributable.

#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace aitia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive);
// nullopt on anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

// Applies the AITIA_LOG_LEVEL environment variable if set and valid; returns
// true when a level was applied. Called by CLI mains before flag parsing so
// an explicit --log-level still wins.
bool InitLogLevelFromEnv();

// Small dense id for the calling thread (1, 2, 3, ... in first-use order).
// Stable for the thread's lifetime. Shared by the log prefix, the span
// tracer, and the metrics shard selector.
uint32_t CurrentThreadTag();

// Emits one formatted line ("[LEVEL][Tn] msg") to the sink under the sink
// mutex. Lines below the current level are dropped before formatting.
void LogMessage(LogLevel level, const std::string& msg);

// Replaces the stderr sink (tests capture lines here); nullptr restores
// stderr. The sink receives fully formatted single lines, one call per line,
// already serialized by the sink mutex.
using LogSink = std::function<void(LogLevel, const std::string& line)>;
void SetLogSink(LogSink sink);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace aitia

#define AITIA_LOG(level) \
  ::aitia::internal::LogLine(::aitia::LogLevel::level)

#endif  // SRC_UTIL_LOG_H_
