// Minimal leveled logging. Diagnosis runs are chatty at kDebug; benches and
// examples run at kInfo.

#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace aitia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace aitia

#define AITIA_LOG(level) \
  ::aitia::internal::LogLine(::aitia::LogLevel::level)

#endif  // SRC_UTIL_LOG_H_
