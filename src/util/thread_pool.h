// Fixed-size worker pool used to parallelize independent reproducer and
// diagnoser runs — the analog of the paper's fleet of 32 AITIA VMs (§4.1).
//
// Each submitted task is independent and deterministic; the pool only
// parallelizes *across* runs, never inside one, so results are identical to a
// serial execution.

#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aitia {

class ThreadPool {
 public:
  // `workers == 0` picks the hardware concurrency (at least 1).
  // `queue_limit` bounds the number of *pending* (accepted but not yet
  // started) tasks that TrySubmit may add; 0 leaves TrySubmit unbounded.
  // Submit ignores the limit — it exists for admission-controlled callers.
  explicit ThreadPool(size_t workers = 0, size_t queue_limit = 0);
  ~ThreadPool();

  // Resolves a requested worker count the way the constructor does: 0 picks
  // the hardware concurrency (at least 1), anything else passes through.
  // Callers that stay serial below 2 workers use this to decide whether to
  // build a pool at all.
  static size_t ResolveWorkers(size_t workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw. Returns true if the task was
  // accepted; returns false — deterministically, without running the task —
  // once shutdown has begun. Every accepted task is guaranteed to run.
  bool Submit(std::function<void()> task);

  // Non-blocking, admission-controlled Submit: additionally rejects when the
  // pool is saturated (`queue_limit` pending tasks are already waiting for a
  // worker). Same acceptance guarantee — true means the task will run, false
  // means it never will. This is the primitive load-shedding layers build
  // on: a rejected task costs one mutex acquisition, never unbounded memory.
  bool TrySubmit(std::function<void()> task);

  // Stops accepting new tasks, runs everything already accepted, and joins
  // the workers. Idempotent; called by the destructor. After Shutdown,
  // Submit rejects and Wait returns immediately.
  void Shutdown();

  // Blocks until every submitted task has finished.
  void Wait();

  size_t worker_count() const { return threads_.size(); }

  // Pending (accepted, not yet started) tasks. Inherently racy — a worker
  // may dequeue concurrently — so only meaningful to tests that control the
  // workers, hence the name.
  size_t QueueDepthForTest() {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t queue_limit_ = 0;  // TrySubmit saturation bound; 0 = unbounded
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

// Runs `fn(i)` for i in [0, n) on `pool`, blocking until all complete.
void ParallelFor(ThreadPool& pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace aitia

#endif  // SRC_UTIL_THREAD_POOL_H_
