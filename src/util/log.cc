#include "src/util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace aitia {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mu;
LogSink g_sink;  // guarded by g_sink_mu; empty = stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return std::nullopt;
}

bool InitLogLevelFromEnv() {
  const char* env = std::getenv("AITIA_LOG_LEVEL");
  if (env == nullptr) {
    return false;
  }
  std::optional<LogLevel> level = ParseLogLevel(env);
  if (!level.has_value()) {
    return false;
  }
  SetLogLevel(*level);
  return true;
}

uint32_t CurrentThreadTag() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const uint32_t tag = CurrentThreadTag();
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    std::string line = "[";
    line += LevelName(level);
    line += "][T";
    line += std::to_string(tag);
    line += "] ";
    line += msg;
    g_sink(level, line);
    return;
  }
  std::fprintf(stderr, "[%s][T%u] %s\n", LevelName(level), tag, msg.c_str());
}

}  // namespace aitia
