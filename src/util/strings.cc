#include "src/util/strings.h"

#include <cstdio>

namespace aitia {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s.substr(0, width);
  }
  return s + std::string(width - s.size(), ' ');
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace aitia
