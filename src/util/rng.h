// Deterministic pseudo-random number generator.
//
// Every source of randomness in this repository flows through Rng so that a
// (seed, algorithm) pair fully determines an execution. This mirrors the
// paper's determinism requirement (§3.2): given a schedule, a run must be
// reproducible bit-for-bit.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aitia {

// xoshiro256** — small, fast, and good enough for schedule fuzzing.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t Next();

  // Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // True with probability `numerator / denominator`.
  bool Chance(uint64_t numerator, uint64_t denominator);

  // Picks a uniformly random element index of a non-empty container size.
  size_t PickIndex(size_t size) { return static_cast<size_t>(NextBelow(size)); }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = PickIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace aitia

#endif  // SRC_UTIL_RNG_H_
