// Lightweight Status / StatusOr<T> result types.
//
// Supervised execution propagates enforcement-level failures (deadline
// expiry, livelock watchdog trips, injected faults) as data instead of
// asserts or silently-defaulted results: an aborted run must never be
// confused with a run that completed and simply did not fail. Kernel-level
// symptoms stay in sim::Failure; Status describes the health of the *run
// machinery* around them.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace aitia {

enum class StatusCode {
  kOk = 0,
  kDeadlineExceeded,    // wall-clock deadline expired mid-run
  kResourceExhausted,   // step / schedule / retry budget spent
  kAborted,             // watchdog detected a livelocked schedule
  kUnavailable,         // transient loss of the run (injected or real fault)
  kFailedPrecondition,  // the request could not be attempted at all
  kInternal,            // invariant violation inside the pipeline
  kInvalidArgument,     // malformed input (trace parse / semantic errors)
  kNotFound,            // named entity (scenario, file) does not exist
  kCancelled,           // caller withdrew the request (service drain)
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kCancelled: return "CANCELLED";
  }
  return "?";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status DeadlineExceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status Aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status Cancelled(std::string m) { return {StatusCode::kCancelled, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return {}; }

// Either a value or the Status explaining its absence. Deliberately minimal:
// no exceptions, no abort-on-misuse beyond returning a default value — the
// caller is expected to branch on ok() first.
template <typename T>
class StatusOr {
 public:
  // Constructing from an OK status without a value is a caller bug; it is
  // normalized to kInternal so ok() and has-value stay equivalent.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(status.ok() ? Status::Internal("OK status without a value")
                            : std::move(status)) {}
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace aitia

#endif  // SRC_UTIL_STATUS_H_
