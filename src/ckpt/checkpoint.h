// Versioned full-state checkpoints of a KernelSim run (DESIGN.md §12).
//
// A SimCheckpoint is an immutable, self-contained copy of everything that
// determines a run's future: thread contexts, heap and shared memory, the
// recorded trace, spawn edges, and TLB-shootdown/IRQ state. The KernelImage
// is shared by pointer — images are immutable after construction, so
// copy-on-write degenerates to plain sharing and a checkpoint costs O(run
// state), never O(program size). Restore() builds a fresh KernelSim whose
// continuation is bit-identical to the captured one (asserted corpus-wide by
// tests/ckpt_differential_test.cc); the observer hook is deliberately not
// restored — the enforcer reattaches its own.

#ifndef SRC_CKPT_CHECKPOINT_H_
#define SRC_CKPT_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/ckpt/arena.h"
#include "src/sim/access.h"
#include "src/sim/failure.h"
#include "src/sim/kernel.h"
#include "src/sim/memory.h"
#include "src/sim/thread.h"
#include "src/sim/types.h"

namespace aitia {
namespace ckpt {

// Bumped whenever the packed layout changes. Restore() refuses a mismatch
// (returning nullptr) so a checkpoint handed across a version boundary fails
// loudly as a cache miss, never as silent state corruption.
inline constexpr int32_t kCheckpointVersion = 1;

class SimCheckpoint {
 public:
  // Captures the full run state of `sim`. The checkpoint shares the
  // KernelImage with `sim` and must not outlive it.
  static std::shared_ptr<const SimCheckpoint> Capture(const KernelSim& sim);

  // Rebuilds a KernelSim identical to the captured one (nullptr on a
  // version mismatch).
  std::unique_ptr<KernelSim> Restore() const;

  // Approximate retained payload size — the store's LRU/budget currency.
  size_t bytes() const;

  int32_t version() const { return version_; }

 private:
  friend class SimAccess;
  SimCheckpoint() = default;

  // Packed layouts: variable-length members are flattened into arena pools
  // referenced by (offset, length), so capture and restore are bulk copies.
  struct PackedEvent {
    int64_t seq;
    DynInstr di;
    Op op;
    bool is_access;
    bool is_write;
    Addr addr;
    Addr len;
    Word value;
    uint32_t locks_off;
    uint32_t locks_len;
  };
  struct PackedThread {
    ThreadId id;
    ProgramId prog;
    ThreadKind kind;
    ThreadState state;
    std::array<Word, kNumRegs> regs;
    Pc pc;
    Addr blocked_on;
    ThreadId parent;
    int64_t spawn_seq;
    Word initial_arg;
    uint32_t stack_off, stack_len;
    uint32_t locks_off, locks_len;
    uint32_t counts_off, counts_len;
  };
  struct PackedCount {
    Pc pc;
    int32_t count;
  };
  struct PackedCell {
    Addr addr;
    Word value;
  };
  struct PackedList {
    Addr head;
    uint32_t off, len;
  };

  int32_t version_ = kCheckpointVersion;
  const KernelImage* image_ = nullptr;
  Arena arena_;

  // Kernel state.
  std::span<const PackedThread> threads_;
  std::vector<std::string> thread_names_;  // parallel to threads_
  std::span<const Pc> stack_pool_;
  std::span<const Addr> lock_pool_;  // thread held_locks + event locks_held
  std::span<const PackedCount> count_pool_;
  std::span<const PackedEvent> trace_;
  std::span<const SpawnEdge> spawns_;
  std::optional<Failure> failure_;
  int64_t next_seq_ = 0;
  int spawn_counter_ = 0;
  bool recording_ = true;
  int setup_thread_count_ = 0;
  ThreadId ipi_broadcaster_ = kNoThread;
  std::span<const ThreadId> ipi_pending_;

  // Memory state.
  std::span<const PackedCell> cells_;
  std::span<const HeapObject> objects_;  // in allocation order
  std::span<const PackedList> lists_;
  std::span<const Word> list_pool_;
  Addr next_heap_ = kHeapBase;
  Addr global_top_ = kGlobalBase;
};

// The one friend of KernelSim and Memory: moves run state across the
// public-interface boundary in both directions. Everything else must go
// through the execution API.
class SimAccess {
 public:
  static std::shared_ptr<const SimCheckpoint> Capture(const KernelSim& sim);
  static std::unique_ptr<KernelSim> Restore(const SimCheckpoint& c);
};

}  // namespace ckpt
}  // namespace aitia

#endif  // SRC_CKPT_CHECKPOINT_H_
