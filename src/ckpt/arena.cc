#include "src/ckpt/arena.h"

#include <algorithm>
#include <cstdint>

namespace aitia {
namespace ckpt {
namespace {

constexpr size_t kChunkSize = 64 * 1024;

size_t AlignUp(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

}  // namespace

void* Arena::Allocate(size_t size, size_t align) {
  bytes_ += size;
  if (!chunks_.empty()) {
    Chunk& c = chunks_.back();
    size_t off = AlignUp(c.used, align);
    if (off + size <= c.size) {
      c.used = off + size;
      return c.data.get() + off;
    }
  }
  // A payload larger than the chunk size gets its own exact-fit chunk; the
  // partially filled previous chunk stays usable for later small payloads
  // only if it is still the back — keeping the allocator strictly bump-only
  // is worth the slack.
  Chunk c;
  c.size = std::max(size + align, kChunkSize);
  c.data = std::make_unique<std::byte[]>(c.size);
  size_t off = AlignUp(reinterpret_cast<uintptr_t>(c.data.get()), align) -
               reinterpret_cast<uintptr_t>(c.data.get());
  c.used = off + size;
  chunks_.push_back(std::move(c));
  return chunks_.back().data.get() + off;
}

}  // namespace ckpt
}  // namespace aitia
