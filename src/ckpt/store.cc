#include "src/ckpt/store.h"

#include <algorithm>
#include <limits>

#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace aitia {
namespace ckpt {
namespace {

struct CkptMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* stores;
  obs::Counter* evictions;
  obs::Gauge* bytes_retained;
  obs::Counter* executed_steps;
  obs::Counter* replayed_steps;
  // Per-entry reuse, recorded when an entry retires (eviction or store
  // teardown): how many restores each deposited prefix ended up serving.
  // Feeds the reuse-driven deposit-placement work — a deposit that retires
  // with 0 hits was wasted capture cost.
  obs::Histogram* entry_hits;
  obs::Gauge* entry_hits_max;

  static const CkptMetrics& Get() {
    static const CkptMetrics* const m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* cm = new CkptMetrics();
      cm->hits = reg.GetCounter("ckpt.hits");
      cm->misses = reg.GetCounter("ckpt.misses");
      cm->stores = reg.GetCounter("ckpt.stores");
      cm->evictions = reg.GetCounter("ckpt.evictions");
      cm->bytes_retained = reg.GetGauge("ckpt.bytes_retained");
      cm->executed_steps = reg.GetCounter("ckpt.executed_steps");
      cm->replayed_steps = reg.GetCounter("ckpt.replayed_steps");
      cm->entry_hits = reg.GetHistogram("ckpt.entry_hits", {0, 1, 2, 4, 8, 16, 32, 64});
      cm->entry_hits_max = reg.GetGauge("ckpt.entry_hits_max");
      return cm;
    }();
    return *m;
  }
};

void RetireEntry(int64_t hits) {
  CkptMetrics::Get().entry_hits->Record(hits);
  CkptMetrics::Get().entry_hits_max->SetMax(hits);
}

size_t BytesOf(const PreemptPrefixState& st) {
  size_t n = sizeof(st);
  n += st.fired.size() * sizeof(PreemptPoint);
  n += st.park_fifo.size() * sizeof(ThreadId);
  n += st.armed.size() * sizeof(Watchpoints::Armed);
  for (const WatchpointHit& h : st.hits) {
    n += sizeof(h) + h.access.locks_held.size() * sizeof(Addr);
  }
  n += (st.pre_seen.size() + st.post_seen.size()) * sizeof(DynInstr);
  return n;
}

size_t BytesOf(const TotalOrderPrefixState& st) {
  size_t n = sizeof(st);
  n += st.prefix.size() * sizeof(DynInstr);
  n += st.irq_threads.size() * (sizeof(ThreadId) + sizeof(ProgramId) + sizeof(Word));
  n += (st.diverged.size() + st.injected_irqs.size()) * sizeof(ThreadId);
  n += st.disappeared.size() * sizeof(DynInstr);
  return n;
}

// Would replaying `points` over the recorded prefix have fired exactly
// `st.fired`, in order, and nothing else? Fired points are matched against
// the first unconsumed candidate with the same (before, instruction)
// signature — the enforcer's own scan order — and must then match in every
// field. Unconsumed leftovers must never have had an opportunity to fire.
bool ProbePreempt(const PreemptPrefixState& st, const std::vector<PreemptPoint>& points,
                  std::vector<bool>& consumed) {
  consumed.assign(points.size(), false);
  for (const PreemptPoint& f : st.fired) {
    size_t match = points.size();
    for (size_t pi = 0; pi < points.size(); ++pi) {
      if (!consumed[pi] && points[pi].before == f.before && points[pi].after == f.after) {
        match = pi;
        break;
      }
    }
    if (match == points.size() || !(points[match] == f)) {
      return false;
    }
    consumed[match] = true;
  }
  for (size_t pi = 0; pi < points.size(); ++pi) {
    if (consumed[pi]) {
      continue;
    }
    const std::vector<DynInstr>& seen = points[pi].before ? st.pre_seen : st.post_seen;
    if (std::binary_search(seen.begin(), seen.end(), points[pi].after)) {
      return false;
    }
  }
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(StoreOptions options) : options_(options) {}

CheckpointStore::~CheckpointStore() {
  const int64_t retained = static_cast<int64_t>(prefix_bytes_ + baseline_bytes_);
  if (retained > 0) {
    CkptMetrics::Get().bytes_retained->Add(-retained);
  }
  // Entries that survive to teardown retire here, so every deposit's reuse
  // count reaches the ckpt.entry_hits histogram exactly once.
  for (const PreemptEntry& e : preempt_) {
    RetireEntry(e.hits);
  }
  for (const TotalOrderEntry& e : total_order_) {
    RetireEntry(e.hits);
  }
  if (baseline_ != nullptr) {
    RetireEntry(baseline_hits_.load(std::memory_order_relaxed));
  }
}

size_t CheckpointStore::bytes_retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prefix_bytes_ + baseline_bytes_;
}

void CheckpointStore::EvictLocked() {
  while (prefix_bytes_ > options_.byte_budget) {
    uint64_t min_tick = std::numeric_limits<uint64_t>::max();
    size_t pi = preempt_.size(), ti = total_order_.size();
    for (size_t i = 0; i < preempt_.size(); ++i) {
      if (preempt_[i].tick < min_tick) {
        min_tick = preempt_[i].tick;
        pi = i;
        ti = total_order_.size();
      }
    }
    for (size_t i = 0; i < total_order_.size(); ++i) {
      if (total_order_[i].tick < min_tick) {
        min_tick = total_order_[i].tick;
        ti = i;
        pi = preempt_.size();
      }
    }
    size_t freed = 0;
    int64_t hits = 0;
    if (ti < total_order_.size()) {
      freed = total_order_[ti].bytes;
      hits = total_order_[ti].hits;
      total_order_.erase(total_order_.begin() + static_cast<std::ptrdiff_t>(ti));
    } else if (pi < preempt_.size()) {
      freed = preempt_[pi].bytes;
      hits = preempt_[pi].hits;
      preempt_.erase(preempt_.begin() + static_cast<std::ptrdiff_t>(pi));
    } else {
      return;  // nothing evictable
    }
    prefix_bytes_ -= freed;
    RetireEntry(hits);
    CkptMetrics::Get().evictions->Increment();
    CkptMetrics::Get().bytes_retained->Add(-static_cast<int64_t>(freed));
    obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kCkpt, "ckpt.evict", "",
                          {{"freed_bytes", static_cast<int64_t>(freed)}, {"hits", hits}});
  }
}

std::unique_ptr<KernelSim> CheckpointStore::FindBaseline() {
  std::shared_ptr<const SimCheckpoint> base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = baseline_;
  }
  if (base == nullptr) {
    CkptMetrics::Get().misses->Increment();
    return nullptr;
  }
  obs::Span span("ckpt", "ckpt.restore");
  span.Arg("kind", "baseline");
  std::unique_ptr<KernelSim> sim = base->Restore();
  if (sim == nullptr) {
    CkptMetrics::Get().misses->Increment();
    return nullptr;
  }
  CkptMetrics::Get().hits->Increment();
  baseline_hits_.fetch_add(1, std::memory_order_relaxed);
  return sim;
}

void CheckpointStore::PutBaseline(const KernelSim& sim) {
  {
    // Cheap pre-check: duplicates are the common case (every cold run of a
    // slice offers the same baseline), and capture is the expensive part.
    std::lock_guard<std::mutex> lock(mu_);
    if (baseline_ != nullptr) {
      return;  // first deposit wins; concurrent deposits are identical
    }
  }
  std::shared_ptr<const SimCheckpoint> c = SimCheckpoint::Capture(sim);
  const size_t bytes = c->bytes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (baseline_ != nullptr) {
      return;  // lost a concurrent deposit race; the states are identical
    }
    baseline_ = std::move(c);
    baseline_bytes_ = bytes;
  }
  CkptMetrics::Get().stores->Increment();
  CkptMetrics::Get().bytes_retained->Add(static_cast<int64_t>(bytes));
  obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kCkpt, "ckpt.baseline", "",
                        {{"bytes", static_cast<int64_t>(bytes)}});
}

std::optional<PreemptHit> CheckpointStore::FindPreemptPrefix(
    const PreemptionSchedule& schedule) {
  std::shared_ptr<const SimCheckpoint> best_ckpt;
  std::shared_ptr<const PreemptPrefixState> best_state;
  std::vector<bool> best_consumed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PreemptEntry* best = nullptr;
    std::vector<bool> consumed;
    for (PreemptEntry& e : preempt_) {
      if (e.base_order != schedule.base_order) {
        continue;
      }
      if (best != nullptr && e.state->steps <= best->state->steps) {
        continue;
      }
      if (!ProbePreempt(*e.state, schedule.points, consumed)) {
        continue;
      }
      best = &e;
      best_consumed = std::move(consumed);
      consumed.clear();
    }
    if (best == nullptr) {
      return std::nullopt;
    }
    best->tick = ++tick_;
    ++best->hits;
    best_ckpt = best->ckpt;
    best_state = best->state;
  }
  obs::Span span("ckpt", "ckpt.restore");
  span.Arg("kind", "preempt").Arg("steps", best_state->steps);
  PreemptHit hit;
  hit.sim = best_ckpt->Restore();
  if (hit.sim == nullptr) {
    return std::nullopt;
  }
  hit.state = std::move(best_state);
  hit.consumed = std::move(best_consumed);
  CkptMetrics::Get().hits->Increment();
  return hit;
}

void CheckpointStore::PutPreemptPrefix(const KernelSim& sim,
                                       const std::vector<ThreadId>& base_order,
                                       PreemptPrefixState state) {
  {
    // Cheap pre-check before the expensive capture: sibling schedules that
    // did not resume walk the same strided prefixes and re-offer them.
    std::lock_guard<std::mutex> lock(mu_);
    for (const PreemptEntry& e : preempt_) {
      if (e.state->steps == state.steps && e.base_order == base_order &&
          e.state->fired == state.fired) {
        return;  // identical key at the same depth: deterministic duplicate
      }
    }
  }
  std::shared_ptr<const SimCheckpoint> c = SimCheckpoint::Capture(sim);
  auto st = std::make_shared<const PreemptPrefixState>(std::move(state));
  const size_t bytes = c->bytes() + BytesOf(*st);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const PreemptEntry& e : preempt_) {
      if (e.state->steps == st->steps && e.base_order == base_order &&
          e.state->fired == st->fired) {
        return;  // lost a concurrent deposit race; the entries are identical
      }
    }
    PreemptEntry e;
    e.base_order = base_order;
    e.state = std::move(st);
    e.ckpt = std::move(c);
    e.bytes = bytes;
    e.tick = ++tick_;
    preempt_.push_back(std::move(e));
    prefix_bytes_ += bytes;
    EvictLocked();
  }
  CkptMetrics::Get().stores->Increment();
  CkptMetrics::Get().bytes_retained->Add(static_cast<int64_t>(bytes));
}

std::optional<TotalOrderHit> CheckpointStore::FindTotalOrderPrefix(
    const TotalOrderSchedule& schedule) {
  std::shared_ptr<const SimCheckpoint> best_ckpt;
  std::shared_ptr<const TotalOrderPrefixState> best_state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TotalOrderEntry* best = nullptr;
    size_t best_n = 0;
    for (TotalOrderEntry& e : total_order_) {
      const TotalOrderPrefixState& st = *e.state;
      const size_t n = st.prefix.size();
      if (n == 0 || n > schedule.sequence.size() || n <= best_n) {
        continue;
      }
      // Cheap last-element pre-check before the full literal compare.
      if (!(st.prefix[n - 1] == schedule.sequence[n - 1])) {
        continue;
      }
      if (!std::equal(st.prefix.begin(), st.prefix.end(), schedule.sequence.begin())) {
        continue;
      }
      if (st.irq_threads != schedule.irq_threads) {
        continue;
      }
      best = &e;
      best_n = n;
    }
    if (best == nullptr) {
      return std::nullopt;
    }
    best->tick = ++tick_;
    ++best->hits;
    best_ckpt = best->ckpt;
    best_state = best->state;
  }
  obs::Span span("ckpt", "ckpt.restore");
  span.Arg("kind", "total_order")
      .Arg("prefix", static_cast<int64_t>(best_state->prefix.size()));
  TotalOrderHit hit;
  hit.sim = best_ckpt->Restore();
  if (hit.sim == nullptr) {
    return std::nullopt;
  }
  hit.state = std::move(best_state);
  CkptMetrics::Get().hits->Increment();
  return hit;
}

void CheckpointStore::PutTotalOrderPrefix(const KernelSim& sim, TotalOrderPrefixState state) {
  {
    // Cheap pre-check before the expensive capture: backward flip tests share
    // the original trace's prefix and re-offer the same deposits.
    std::lock_guard<std::mutex> lock(mu_);
    for (const TotalOrderEntry& e : total_order_) {
      if (e.state->prefix.size() == state.prefix.size() && e.state->prefix == state.prefix &&
          e.state->irq_threads == state.irq_threads) {
        return;  // identical prefix: deterministic duplicate
      }
    }
  }
  std::shared_ptr<const SimCheckpoint> c = SimCheckpoint::Capture(sim);
  auto st = std::make_shared<const TotalOrderPrefixState>(std::move(state));
  const size_t bytes = c->bytes() + BytesOf(*st);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TotalOrderEntry& e : total_order_) {
      if (e.state->prefix.size() == st->prefix.size() &&
          e.state->prefix == st->prefix && e.state->irq_threads == st->irq_threads) {
        return;  // lost a concurrent deposit race; the entries are identical
      }
    }
    TotalOrderEntry e;
    e.state = std::move(st);
    e.ckpt = std::move(c);
    e.bytes = bytes;
    e.tick = ++tick_;
    total_order_.push_back(std::move(e));
    prefix_bytes_ += bytes;
    EvictLocked();
  }
  CkptMetrics::Get().stores->Increment();
  CkptMetrics::Get().bytes_retained->Add(static_cast<int64_t>(bytes));
}

void AddStepAccounting(int64_t executed, int64_t replayed) {
  if (executed > 0) {
    CkptMetrics::Get().executed_steps->Add(executed);
  }
  if (replayed > 0) {
    CkptMetrics::Get().replayed_steps->Add(replayed);
  }
}

}  // namespace ckpt
}  // namespace aitia
