// Arena for checkpoint payloads (DESIGN.md §12).
//
// Snapshotting a run must be a handful of bulk copies, not a malloc per
// trace event: LIFS deposits checkpoints on its hot path, so capture cost is
// directly schedule-throughput cost. The arena is a chunked bump allocator —
// payloads are memcpy'd in, freed all at once when the checkpoint dies, and
// addressed through stable std::spans.

#ifndef SRC_CKPT_ARENA_H_
#define SRC_CKPT_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace aitia {
namespace ckpt {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Copies `n` elements into arena storage; the returned span stays valid for
  // the arena's lifetime.
  template <typename T>
  std::span<const T> Copy(const T* data, size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena payloads must be bulk-copyable");
    if (n == 0) {
      return {};
    }
    T* dst = static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    std::memcpy(dst, data, n * sizeof(T));
    return {dst, n};
  }
  template <typename T>
  std::span<const T> Copy(const std::vector<T>& v) {
    return Copy(v.data(), v.size());
  }

  // Total payload bytes copied in (chunk slack excluded).
  size_t bytes() const { return bytes_; }

 private:
  void* Allocate(size_t size, size_t align);

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t used = 0;
    size_t size = 0;
  };
  std::vector<Chunk> chunks_;
  size_t bytes_ = 0;
};

}  // namespace ckpt
}  // namespace aitia

#endif  // SRC_CKPT_ARENA_H_
