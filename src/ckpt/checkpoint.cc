#include "src/ckpt/checkpoint.h"

#include <utility>

namespace aitia {
namespace ckpt {

std::shared_ptr<const SimCheckpoint> SimCheckpoint::Capture(const KernelSim& sim) {
  return SimAccess::Capture(sim);
}

std::unique_ptr<KernelSim> SimCheckpoint::Restore() const {
  return SimAccess::Restore(*this);
}

size_t SimCheckpoint::bytes() const {
  size_t n = sizeof(SimCheckpoint) + arena_.bytes();
  for (const std::string& name : thread_names_) {
    n += name.size();
  }
  if (failure_.has_value()) {
    n += failure_->message.size();
  }
  return n;
}

std::shared_ptr<const SimCheckpoint> SimAccess::Capture(const KernelSim& sim) {
  auto c = std::shared_ptr<SimCheckpoint>(new SimCheckpoint());
  c->image_ = sim.image_;

  // Threads: fixed-size fields packed, variable-length tails pooled.
  std::vector<SimCheckpoint::PackedThread> threads;
  std::vector<Pc> stack_pool;
  std::vector<Addr> lock_pool;
  std::vector<SimCheckpoint::PackedCount> count_pool;
  threads.reserve(sim.threads_.size());
  c->thread_names_.reserve(sim.threads_.size());
  for (const ThreadContext& t : sim.threads_) {
    SimCheckpoint::PackedThread p;
    p.id = t.id;
    p.prog = t.prog;
    p.kind = t.kind;
    p.state = t.state;
    p.regs = t.regs;
    p.pc = t.pc;
    p.blocked_on = t.blocked_on;
    p.parent = t.parent;
    p.spawn_seq = t.spawn_seq;
    p.initial_arg = t.initial_arg;
    p.stack_off = static_cast<uint32_t>(stack_pool.size());
    p.stack_len = static_cast<uint32_t>(t.call_stack.size());
    stack_pool.insert(stack_pool.end(), t.call_stack.begin(), t.call_stack.end());
    p.locks_off = static_cast<uint32_t>(lock_pool.size());
    p.locks_len = static_cast<uint32_t>(t.held_locks.size());
    lock_pool.insert(lock_pool.end(), t.held_locks.begin(), t.held_locks.end());
    p.counts_off = static_cast<uint32_t>(count_pool.size());
    p.counts_len = static_cast<uint32_t>(t.exec_counts.size());
    for (const auto& [pc, n] : t.exec_counts) {
      count_pool.push_back({pc, n});
    }
    threads.push_back(p);
    c->thread_names_.push_back(t.name);
  }

  std::vector<SimCheckpoint::PackedEvent> trace;
  trace.reserve(sim.trace_.size());
  for (const ExecEvent& e : sim.trace_) {
    SimCheckpoint::PackedEvent p;
    p.seq = e.seq;
    p.di = e.di;
    p.op = e.op;
    p.is_access = e.is_access;
    p.is_write = e.is_write;
    p.addr = e.addr;
    p.len = e.len;
    p.value = e.value;
    p.locks_off = static_cast<uint32_t>(lock_pool.size());
    p.locks_len = static_cast<uint32_t>(e.locks_held.size());
    lock_pool.insert(lock_pool.end(), e.locks_held.begin(), e.locks_held.end());
    trace.push_back(p);
  }

  std::vector<SimCheckpoint::PackedCell> cells;
  cells.reserve(sim.memory_.cells_.size());
  for (const auto& [addr, value] : sim.memory_.cells_) {
    cells.push_back({addr, value});
  }
  std::vector<SimCheckpoint::PackedList> lists;
  std::vector<Word> list_pool;
  lists.reserve(sim.memory_.lists_.size());
  for (const auto& [head, dq] : sim.memory_.lists_) {
    lists.push_back({head, static_cast<uint32_t>(list_pool.size()),
                     static_cast<uint32_t>(dq.size())});
    list_pool.insert(list_pool.end(), dq.begin(), dq.end());
  }
  std::vector<HeapObject> objects(sim.memory_.objects_.begin(), sim.memory_.objects_.end());
  std::vector<ThreadId> ipi(sim.ipi_pending_.begin(), sim.ipi_pending_.end());

  c->threads_ = c->arena_.Copy(threads);
  c->stack_pool_ = c->arena_.Copy(stack_pool);
  c->lock_pool_ = c->arena_.Copy(lock_pool);
  c->count_pool_ = c->arena_.Copy(count_pool);
  c->trace_ = c->arena_.Copy(trace);
  c->spawns_ = c->arena_.Copy(sim.spawns_);
  c->cells_ = c->arena_.Copy(cells);
  c->objects_ = c->arena_.Copy(objects);
  c->lists_ = c->arena_.Copy(lists);
  c->list_pool_ = c->arena_.Copy(list_pool);
  c->ipi_pending_ = c->arena_.Copy(ipi);

  c->failure_ = sim.failure_;
  c->next_seq_ = sim.next_seq_;
  c->spawn_counter_ = sim.spawn_counter_;
  c->recording_ = sim.recording_;
  c->setup_thread_count_ = sim.setup_thread_count_;
  c->ipi_broadcaster_ = sim.ipi_broadcaster_;
  c->next_heap_ = sim.memory_.next_heap_;
  c->global_top_ = sim.memory_.global_top_;
  return c;
}

std::unique_ptr<KernelSim> SimAccess::Restore(const SimCheckpoint& c) {
  if (c.version_ != kCheckpointVersion) {
    return nullptr;
  }
  auto sim = std::unique_ptr<KernelSim>(
      new KernelSim(c.image_, KernelSim::RestoreShellTag{}));

  // Memory. The shell constructor seeded the globals; the captured cell set
  // is authoritative (it includes them), so overwrite wholesale. Map
  // insertion order differs from the original's construction order — safe:
  // nothing in the pipeline iterates cells_/lists_ except for boolean
  // reachability (Memory::LeakedObjects), and objects_ keeps its vector
  // order, which is what failure reporting depends on.
  Memory& m = sim->memory_;
  m.cells_.clear();
  m.cells_.reserve(c.cells_.size());
  for (const auto& cell : c.cells_) {
    m.cells_.emplace(cell.addr, cell.value);
  }
  m.objects_.assign(c.objects_.begin(), c.objects_.end());
  m.lists_.clear();
  for (const auto& pl : c.lists_) {
    std::deque<Word>& dq = m.lists_[pl.head];
    dq.assign(c.list_pool_.begin() + pl.off, c.list_pool_.begin() + pl.off + pl.len);
  }
  m.next_heap_ = c.next_heap_;
  m.global_top_ = c.global_top_;

  for (size_t ti = 0; ti < c.threads_.size(); ++ti) {
    const SimCheckpoint::PackedThread& p = c.threads_[ti];
    ThreadContext t;
    t.id = p.id;
    t.name = c.thread_names_[ti];
    t.prog = p.prog;
    t.kind = p.kind;
    t.state = p.state;
    t.regs = p.regs;
    t.pc = p.pc;
    t.call_stack.assign(c.stack_pool_.begin() + p.stack_off,
                        c.stack_pool_.begin() + p.stack_off + p.stack_len);
    t.blocked_on = p.blocked_on;
    t.held_locks.assign(c.lock_pool_.begin() + p.locks_off,
                        c.lock_pool_.begin() + p.locks_off + p.locks_len);
    t.exec_counts.reserve(p.counts_len);
    for (uint32_t i = 0; i < p.counts_len; ++i) {
      const SimCheckpoint::PackedCount& pc = c.count_pool_[p.counts_off + i];
      t.exec_counts.emplace(pc.pc, pc.count);
    }
    t.parent = p.parent;
    t.spawn_seq = p.spawn_seq;
    t.initial_arg = p.initial_arg;
    sim->threads_.push_back(std::move(t));
  }

  sim->trace_.reserve(c.trace_.size());
  for (const SimCheckpoint::PackedEvent& p : c.trace_) {
    ExecEvent e;
    e.seq = p.seq;
    e.di = p.di;
    e.op = p.op;
    e.is_access = p.is_access;
    e.is_write = p.is_write;
    e.addr = p.addr;
    e.len = p.len;
    e.value = p.value;
    e.locks_held.assign(c.lock_pool_.begin() + p.locks_off,
                        c.lock_pool_.begin() + p.locks_off + p.locks_len);
    sim->trace_.push_back(std::move(e));
  }
  sim->spawns_.assign(c.spawns_.begin(), c.spawns_.end());
  sim->failure_ = c.failure_;
  sim->next_seq_ = c.next_seq_;
  sim->spawn_counter_ = c.spawn_counter_;
  sim->recording_ = c.recording_;
  sim->setup_thread_count_ = c.setup_thread_count_;
  sim->ipi_broadcaster_ = c.ipi_broadcaster_;
  sim->ipi_pending_ = std::set<ThreadId>(c.ipi_pending_.begin(), c.ipi_pending_.end());
  return sim;
}

}  // namespace ckpt
}  // namespace aitia
