// Checkpoint store: the prefix-replay cache behind O(suffix) re-execution
// (DESIGN.md §12).
//
// LIFS executes thousands of sibling schedules that share long prefixes (the
// frontier extends one preemption at a time), and Causality Analysis replays
// the failing trace once per flip with only the flip window changed. The
// store turns that structure into reuse:
//
//   - Baseline: the step-0, post-setup state — valid for *every* run in the
//     store's scope, so slice setup executes once per diagnosis.
//   - Preemption prefixes, keyed by (base order, fired-point sequence). A
//     probing schedule may resume from one iff replaying its points over the
//     prefix would have fired exactly the recorded sequence — checked by a
//     mini-simulation over the candidate's points plus opportunity sets of
//     every instruction the prefix ever exposed (no unfired point may have
//     had a chance to fire). Conservative rejection is always safe.
//   - Total-order prefixes, keyed by the literal sequence prefix plus the
//     recording's IRQ contexts: the enforcer's state at first arrival of
//     index i is a pure function of sequence[0..i), setup, and irq_threads.
//
// Scope contract: one store serves exactly one (image, initial threads,
// setup) combination — LIFS and Causality Analysis of the *same* slice. Keys
// do not include the slice, so sharing a store across slices would corrupt
// results; the facade creates one store per slice.
//
// Thread safety: all methods are safe to call concurrently (parallel LIFS
// frontier workers share one store). Restores run outside the store mutex.
// Hit patterns under parallel execution depend on completion order, but every
// restore is exact, so results stay bit-identical at any worker count.

#ifndef SRC_CKPT_STORE_H_
#define SRC_CKPT_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/hv/schedule.h"
#include "src/hv/watchpoint.h"
#include "src/sim/kernel.h"
#include "src/sim/types.h"

namespace aitia {
namespace ckpt {

struct StoreOptions {
  // Retained bytes across all prefix entries; least-recently-used entries
  // are evicted past the budget. The baseline is pinned and not counted.
  size_t byte_budget = 64ull << 20;
  // Minimum executed steps between strided preemption-prefix deposits. The
  // effective gap grows with run length (max(stride, steps/32)) so deposit
  // cost stays linear in the run while granularity stays proportional.
  // Small by default: corpus-scale runs retire tens of steps, and a stride
  // past the run length would make strided deposits vanish entirely.
  int64_t preempt_stride_steps = 8;
  // Minimum sequence-index gap between total-order prefix deposits (same
  // proportional growth). Backward flip tests restore progressively shorter
  // prefixes, so granularity here directly bounds the re-executed suffix.
  int64_t total_order_stride = 4;
  // Progress-event scope (src/obs/events.h): nonzero publishes store
  // lifecycle events (baseline deposit, evictions); 0 publishes nothing.
  uint64_t event_scope = 0;
};

// Mid-run enforcement state of Enforcer::RunPreemption at a deposit point —
// everything outside the KernelSim that the resumed loop needs.
struct PreemptPrefixState {
  std::vector<PreemptPoint> fired;  // points fired so far, in firing order
  std::vector<ThreadId> park_fifo;
  ThreadId current = kNoThread;
  int64_t steps = 0;
  std::vector<Watchpoints::Armed> armed;
  std::vector<WatchpointHit> hits;
  // Opportunity sets, sorted: every DynInstr ever observed as the current
  // thread's next instruction (pre) / ever retired (post) during the prefix.
  // A schedule may reuse the prefix only if none of its unfired points had
  // an opportunity to fire.
  std::vector<DynInstr> pre_seen;
  std::vector<DynInstr> post_seen;
  // Livelock-watchdog (RunSupervision) state at the capture point.
  int64_t last_progress = -1;
  int64_t progress_step = 0;
};

// Mid-run state of Enforcer::RunTotalOrder at the first arrival of a
// sequence index.
struct TotalOrderPrefixState {
  std::vector<DynInstr> prefix;  // sequence[0..i) — the literal key
  std::map<ThreadId, std::pair<ProgramId, Word>> irq_threads;
  std::vector<ThreadId> diverged;       // sorted
  std::vector<ThreadId> injected_irqs;  // sorted
  std::vector<DynInstr> disappeared;    // in discovery order
  int64_t steps = 0;
  int64_t deviations = 0;
  int64_t last_progress = -1;
  int64_t progress_step = 0;
};

struct PreemptHit {
  std::unique_ptr<KernelSim> sim;
  std::shared_ptr<const PreemptPrefixState> state;
  // Consumed flags over the probing schedule's points: which of them the
  // prefix already fired, matched in firing order.
  std::vector<bool> consumed;
};

struct TotalOrderHit {
  std::unique_ptr<KernelSim> sim;
  std::shared_ptr<const TotalOrderPrefixState> state;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(StoreOptions options = {});
  ~CheckpointStore();
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  // Restores a fresh post-setup sim (counts ckpt.hits) or returns nullptr
  // (counts ckpt.misses). The enforcer calls this only after a prefix miss,
  // so hits + misses equals enforcer runs.
  std::unique_ptr<KernelSim> FindBaseline();
  void PutBaseline(const KernelSim& sim);

  // Longest valid prefix for `schedule`, if any (counts ckpt.hits on
  // success; a miss here is counted by the FindBaseline fallback).
  std::optional<PreemptHit> FindPreemptPrefix(const PreemptionSchedule& schedule);
  void PutPreemptPrefix(const KernelSim& sim, const std::vector<ThreadId>& base_order,
                        PreemptPrefixState state);

  std::optional<TotalOrderHit> FindTotalOrderPrefix(const TotalOrderSchedule& schedule);
  void PutTotalOrderPrefix(const KernelSim& sim, TotalOrderPrefixState state);

  // Retained bytes (prefix entries + baseline).
  size_t bytes_retained() const;
  const StoreOptions& options() const { return options_; }

 private:
  struct PreemptEntry {
    std::vector<ThreadId> base_order;
    std::shared_ptr<const PreemptPrefixState> state;
    std::shared_ptr<const SimCheckpoint> ckpt;
    size_t bytes = 0;
    uint64_t tick = 0;
    // Restores served by this entry; published to the ckpt.entry_hits
    // histogram when the entry retires (eviction or store teardown) — the
    // observed-reuse signal the ROADMAP's deposit-placement item needs.
    int64_t hits = 0;
  };
  struct TotalOrderEntry {
    std::shared_ptr<const TotalOrderPrefixState> state;
    std::shared_ptr<const SimCheckpoint> ckpt;
    size_t bytes = 0;
    uint64_t tick = 0;
    int64_t hits = 0;
  };

  // Evicts LRU prefix entries until the budget holds. Caller holds mu_.
  void EvictLocked();

  const StoreOptions options_;
  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  std::shared_ptr<const SimCheckpoint> baseline_;
  size_t baseline_bytes_ = 0;
  std::atomic<int64_t> baseline_hits_{0};
  std::vector<PreemptEntry> preempt_;
  std::vector<TotalOrderEntry> total_order_;
  size_t prefix_bytes_ = 0;
};

// Publishes the supervisor's per-run step split to the ckpt.executed_steps /
// ckpt.replayed_steps counters (total steps stay in supervisor.steps).
void AddStepAccounting(int64_t executed, int64_t replayed);

}  // namespace ckpt
}  // namespace aitia

#endif  // SRC_CKPT_STORE_H_
