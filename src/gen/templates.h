// Kernel concurrency idiom templates — the corpus expansion engine's
// vocabulary (DESIGN.md §14).
//
// Each template is a parameterized shape of a real kernel concurrency bug
// class, mined from the idioms the curated corpus (Tables 2/3) exercises by
// hand: RCU-style grace-period use-after-free, workqueue flush-vs-free,
// refcount release races, flag-guarded ABBA lock ordering, read-check-use
// atomicity violations, and fig-1-style two-variable order violations —
// plus a provably failure-free template that carries only salted benign
// races, so the sweep can pin "LIFS never fabricates a failure".
//
// The contract every buggy template obeys:
//   * the sequential base order (slice order, no preemption) is clean, so
//     the failure is a genuine concurrency bug reachable only by
//     interleaving;
//   * the failure is reachable within <= 2 preemptions, LIFS's corpus-wide
//     envelope (§5.1);
//   * `truth.failure_type` names the planted symptom and
//     `truth.racing_globals` the planted racing state, so the generic chain
//     checks (RacingAddressRanges) apply to generated scenarios unchanged.

#ifndef SRC_GEN_TEMPLATES_H_
#define SRC_GEN_TEMPLATES_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/bugs/scenario.h"

namespace aitia {
namespace gen {

enum class GenTemplate {
  kOrder,      // two-variable order violation -> NULL deref (fig-1 shape)
  kAtomicity,  // read-check-use atomicity violation -> BUG_ON
  kRcu,        // RCU grace-period race -> use-after-free read
  kWorkqueue,  // workqueue flush-vs-free -> use-after-free write
  kRefcount,   // refcount release race -> refcount warning
  kAbba,       // flag-guarded ABBA lock ordering -> deadlock
  kBenign,     // salted benign races only; no interleaving can fail
};

// Stable lowercase token ("order", "atomicity", "rcu", "workqueue",
// "refcount", "abba", "benign") used in scenario ids, CLI specs, and the
// sweep's per-template accounting.
const char* GenTemplateName(GenTemplate t);
bool ParseGenTemplate(std::string_view token, GenTemplate* out);

// All templates, buggy ones first, kBenign last.
const std::vector<GenTemplate>& AllGenTemplates();

// Interleaving knobs. Every knob preserves the template contract above —
// knobs change how much bystander work surrounds the planted mechanism and
// how wide its vulnerability window is, never whether the base order is
// clean or whether the symptom stays reachable.
struct GenKnobs {
  // Filler accesses widening the planted vulnerability window (0..3).
  int window = 1;
  // Salted provably/dynamically benign race sites per thread (0..2): a racy
  // stats counter, a silent same-value store pair, and a dead read — the
  // last two are exactly what the static triage stages discharge.
  int salt = 1;
  // Benign bystander threads added to the slice (0..1; slices stay <= 3
  // threads, the corpus metadata rule).
  int extra_threads = 0;
  // kAbba: locks in the ordering cycle (2..4). kBenign: when >= 2, both
  // threads take this many locks in the *same* order (deadlock-free by
  // construction, exercises critical-section-unit triage).
  int lock_depth = 2;
  // Adds a hardware-IRQ line whose handler performs one benign salted
  // access (exercises §4.6 IRQ injection against generated scenarios).
  bool irq = false;
};

// A generated scenario plus the generator's expectations about it. The
// planted ground truth rides on scenario.truth (failure_type,
// racing_globals) exactly like a curated bug; the extra fields are what the
// sweep asserts beyond diagnosis.
struct GeneratedScenario {
  BugScenario scenario;
  // False only for kBenign: no interleaving of the scenario can fail, so
  // any reproduction is a fabricated failure.
  bool expect_failure = true;
  // Names of the salted benign-race globals. These must never appear in a
  // causality chain (they are discharged statically or flipped benign).
  std::vector<std::string> benign_globals;
};

}  // namespace gen
}  // namespace aitia

#endif  // SRC_GEN_TEMPLATES_H_
