// Seed-deterministic scenario generator (DESIGN.md §14).
//
// GenOptions (template x seed x knobs) fully determines the emitted
// BugScenario: generation draws every random choice from Rng(seed), so the
// same options reproduce the same scenario byte-for-byte through the .ait
// serializer — the determinism contract the round-trip and sweep tests pin.

#ifndef SRC_GEN_GENERATOR_H_
#define SRC_GEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/gen/templates.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aitia {
namespace gen {

struct GenOptions {
  GenTemplate tmpl = GenTemplate::kOrder;
  uint64_t seed = 1;
  GenKnobs knobs;
};

// Builds one scenario. Deterministic: equal options => byte-identical
// ScenarioToAit output. The scenario id encodes template, seed, and knobs
// ("gen-abba-s7w1x1t0d2[i]"), so distinct corpus entries never collide.
GeneratedScenario GenerateScenario(const GenOptions& options);

// Draws a knob assignment for `tmpl` from `rng` (the corpus driver's knob
// space; every combination honors the template contract).
GenKnobs SampleKnobs(GenTemplate tmpl, Rng& rng);

// The deterministic sweep corpus: `count` scenarios derived from
// `sweep_seed`, cycling over `templates` (all templates when empty) with
// sampled knobs. Scenario i is independent of count — prefixes of a bigger
// sweep match a smaller one.
std::vector<GenOptions> CorpusPlan(int count, uint64_t sweep_seed,
                                   const std::vector<GenTemplate>& templates = {});

// Parses a CLI generator spec: whitespace-separated key=value tokens
//   template=abba seed=7 window=2 salt=1 extra_threads=1 lock_depth=3 irq=1
// Unknown keys, bad values, and out-of-range knobs are kInvalidArgument.
StatusOr<GenOptions> ParseGenSpec(const std::vector<std::string>& tokens);

}  // namespace gen
}  // namespace aitia

#endif  // SRC_GEN_GENERATOR_H_
