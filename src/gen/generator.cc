#include "src/gen/generator.h"

#include <algorithm>
#include <cstdlib>

#include "src/util/strings.h"

namespace aitia {
namespace gen {
namespace {

// Knob bounds (documented in templates.h). ParseGenSpec enforces the same
// ranges so a CLI spec can only name scenarios the sweep could generate.
constexpr int kMaxWindow = 3;
constexpr int kMaxSalt = 2;
constexpr int kMaxExtraThreads = 1;
constexpr int kMinLockDepth = 2;
constexpr int kMaxLockDepth = 4;

bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

}  // namespace

GenKnobs SampleKnobs(GenTemplate tmpl, Rng& rng) {
  GenKnobs knobs;
  knobs.window = static_cast<int>(rng.NextBelow(kMaxWindow + 1));
  knobs.salt = static_cast<int>(rng.NextBelow(kMaxSalt + 1));
  knobs.extra_threads = static_cast<int>(rng.NextBelow(kMaxExtraThreads + 1));
  knobs.lock_depth =
      kMinLockDepth + static_cast<int>(rng.NextBelow(kMaxLockDepth - kMinLockDepth + 1));
  knobs.irq = rng.Chance(1, 4);
  // ABBA slices stay 2 threads wide: the deadlock ladder plus a bystander
  // would push LIFS's frontier without adding coverage the benign template
  // doesn't already provide.
  if (tmpl == GenTemplate::kAbba) knobs.extra_threads = 0;
  return knobs;
}

std::vector<GenOptions> CorpusPlan(int count, uint64_t sweep_seed,
                                   const std::vector<GenTemplate>& templates) {
  const std::vector<GenTemplate>& pool =
      templates.empty() ? AllGenTemplates() : templates;
  std::vector<GenOptions> plan;
  plan.reserve(static_cast<size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    GenOptions options;
    options.tmpl = pool[static_cast<size_t>(i) % pool.size()];
    // Each slot draws from its own stream keyed by (sweep_seed, i): scenario
    // i is identical no matter how large the sweep is (prefix stability).
    options.seed = sweep_seed * 0x100000001b3ULL + static_cast<uint64_t>(i) + 1;
    Rng rng(options.seed ^ 0x6b79616974696173ULL);
    options.knobs = SampleKnobs(options.tmpl, rng);
    plan.push_back(options);
  }
  return plan;
}

StatusOr<GenOptions> ParseGenSpec(const std::vector<std::string>& tokens) {
  GenOptions options;
  bool have_template = false;
  for (const std::string& token : tokens) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("generator spec token '%s' is not key=value", token.c_str()));
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    int number = 0;
    if (key == "template") {
      if (!ParseGenTemplate(value, &options.tmpl)) {
        return Status::InvalidArgument(
            StrFormat("unknown template '%s'", value.c_str()));
      }
      have_template = true;
    } else if (key == "seed") {
      if (!ParseU64(value, &options.seed)) {
        return Status::InvalidArgument(StrFormat("bad seed '%s'", value.c_str()));
      }
    } else if (key == "window") {
      if (!ParseInt(value, &number) || number < 0 || number > kMaxWindow) {
        return Status::InvalidArgument(
            StrFormat("window must be 0..%d, got '%s'", kMaxWindow, value.c_str()));
      }
      options.knobs.window = number;
    } else if (key == "salt") {
      if (!ParseInt(value, &number) || number < 0 || number > kMaxSalt) {
        return Status::InvalidArgument(
            StrFormat("salt must be 0..%d, got '%s'", kMaxSalt, value.c_str()));
      }
      options.knobs.salt = number;
    } else if (key == "extra_threads") {
      if (!ParseInt(value, &number) || number < 0 || number > kMaxExtraThreads) {
        return Status::InvalidArgument(StrFormat("extra_threads must be 0..%d, got '%s'",
                                                 kMaxExtraThreads, value.c_str()));
      }
      options.knobs.extra_threads = number;
    } else if (key == "lock_depth") {
      if (!ParseInt(value, &number) || number < kMinLockDepth || number > kMaxLockDepth) {
        return Status::InvalidArgument(StrFormat("lock_depth must be %d..%d, got '%s'",
                                                 kMinLockDepth, kMaxLockDepth,
                                                 value.c_str()));
      }
      options.knobs.lock_depth = number;
    } else if (key == "irq") {
      if (value != "0" && value != "1") {
        return Status::InvalidArgument(
            StrFormat("irq must be 0 or 1, got '%s'", value.c_str()));
      }
      options.knobs.irq = value == "1";
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown generator knob '%s'", key.c_str()));
    }
  }
  if (!have_template) {
    return Status::InvalidArgument("generator spec needs template=<name>");
  }
  return options;
}

}  // namespace gen
}  // namespace aitia
