#include "src/gen/templates.h"

#include <memory>

#include "src/gen/generator.h"
#include "src/sim/builder.h"
#include "src/util/strings.h"

namespace aitia {
namespace gen {
namespace {

// Register conventions, shared by every template so salt and window filler
// can never clobber mechanism state:
//   r1..r7   template mechanism
//   r8, r9   salt addresses / counter values (always reloaded per site)
//   r10      window-filler scratch
//   r12      dead-read sink: written by salt dead reads, never read — the
//            static dead-read triage rule is what discharges those races.

// Salt placement rule: salt sites are emitted at the TAIL of each mechanism
// thread (after the planted mechanism, on the path every clean run takes).
// Causality flips enforce the flipped order by replaying the failing run's
// total order with the pair reordered, dragging the second thread's program
// prefix ahead of the first access — a salt race *before* the mechanism
// would proxy-order the mechanism itself and genuinely prevent the failure
// (a correct but unplanted root cause). Tail placement keeps every salt
// flip's outcome independent of the mechanism interleaving, which is what
// makes the races provably benign.

// How one salt global is raced by every thread that touches it.
enum class SaltKind {
  kCounter,      // load/add/store — dynamically benign (flip still fails)
  kSilentStore,  // same-value store_imm from all sides — statically benign
  kDeadRead,     // one writer, dead reads elsewhere — statically benign
};

struct SaltSite {
  Addr addr = 0;
  std::string name;
  SaltKind kind = SaltKind::kCounter;
  Word value = 0;  // the silent-store value / the writer's store value
};

// Per-scenario build context.
struct Ctx {
  GeneratedScenario* out;
  KernelImage* image;
  Rng* rng;
  const GenKnobs* knobs;
  std::vector<SaltSite> salt;
};

const char* const kSubsystems[] = {"Packet socket", "Serial TTY", "KVM",
                                   "Block layer",   "RxRPC",      "Bluetooth"};

void MakeSalt(Ctx& c, int sites) {
  for (int i = 0; i < sites; ++i) {
    SaltSite site;
    site.name = StrFormat("stats%d", i);
    site.addr = c.image->AddGlobal(site.name, static_cast<Word>(c.rng->NextBelow(3)));
    switch (c.rng->NextBelow(3)) {
      case 0: site.kind = SaltKind::kCounter; break;
      case 1: site.kind = SaltKind::kSilentStore; break;
      default: site.kind = SaltKind::kDeadRead; break;
    }
    site.value = static_cast<Word>(5 + c.rng->NextBelow(3));
    c.salt.push_back(site);
    c.out->benign_globals.push_back(site.name);
  }
}

// Emits one salt access. `writer` selects the writing side of a dead-read
// site (exactly one thread per scenario passes true).
void EmitSalt(ProgramBuilder& b, const SaltSite& site, bool writer) {
  switch (site.kind) {
    case SaltKind::kCounter:
      b.Lea(R8, site.addr)
          .Load(R9, R8)
          .Note(StrFormat("%s++ (benign counter)", site.name.c_str()))
          .AddImm(R9, R9, 1)
          .Store(R8, R9);
      break;
    case SaltKind::kSilentStore:
      b.Lea(R8, site.addr)
          .StoreImm(R8, site.value)
          .Note(StrFormat("%s = %lld (benign, same value everywhere)",
                          site.name.c_str(), static_cast<long long>(site.value)));
      break;
    case SaltKind::kDeadRead:
      if (writer) {
        b.Lea(R8, site.addr)
            .StoreImm(R8, site.value)
            .Note(StrFormat("%s = %lld (benign publish)", site.name.c_str(),
                            static_cast<long long>(site.value)));
      } else {
        b.Lea(R8, site.addr)
            .Load(R12, R8)
            .Note(StrFormat("%s sampled, never used (benign dead read)",
                            site.name.c_str()));
      }
      break;
  }
}

// All of a thread's salt sites. `thread_index` 0 is the dead-read writer.
void EmitAllSalt(Ctx& c, ProgramBuilder& b, int thread_index) {
  for (const SaltSite& site : c.salt) {
    EmitSalt(b, site, /*writer=*/thread_index == 0);
  }
}

// Window filler: widens the vulnerability window without touching memory
// (memory-free so no knob setting can add a faulting or racing access).
void EmitWindow(Ctx& c, ProgramBuilder& b) {
  for (int i = 0; i < c.knobs->window; ++i) {
    if (c.rng->Chance(1, 2)) {
      b.Nop();
    } else {
      b.AddImm(R10, R10, 1);
    }
  }
}

// Benign bystander thread: scheduling noise on a private counter. The
// global is private on purpose — a cross-context race against a mechanism
// thread could be flipped into an ordering proxy for the mechanism (see the
// salt placement rule above), so the bystander races with nobody.
void AddBystander(Ctx& c) {
  SaltSite site;
  site.name = "bystander_stats";
  site.addr = c.image->AddGlobal(site.name, 0);
  site.kind = SaltKind::kCounter;
  c.out->benign_globals.push_back(site.name);
  ProgramBuilder b("bystander");
  EmitSalt(b, site, false);
  b.Nop().Exit();
  ProgramId prog = c.image->AddProgram(b.Build());
  BugScenario& s = c.out->scenario;
  s.slice.push_back({"bystander", prog, 0, ThreadKind::kSyscall});
  if (!s.slice_resources.empty()) {
    s.slice_resources.push_back("");
  }
}

// Benign hardware-IRQ line: one counter bump on a private global (an IRQ
// handler may fire anywhere, so it must be unconditionally safe, and it
// must not race with mechanism threads — see the salt placement rule).
void AddIrqLine(Ctx& c) {
  SaltSite site;
  site.name = "irq_stats";
  site.addr = c.image->AddGlobal(site.name, 0);
  site.kind = SaltKind::kCounter;
  c.out->benign_globals.push_back(site.name);
  ProgramBuilder b("irq_handler");
  EmitSalt(b, site, false);
  b.Exit();
  c.out->scenario.irq_lines.push_back({c.image->AddProgram(b.Build()), 0});
}

void FinishCommon(Ctx& c, GenTemplate tmpl) {
  if (c.knobs->irq) {
    AddIrqLine(c);
  }
  // kBenign sizes its own worker pool from extra_threads.
  if (c.knobs->extra_threads > 0 && tmpl != GenTemplate::kBenign) {
    AddBystander(c);
  }
}

// --- order: two-variable order violation -> NULL deref (fig-1 shape) --------
//
//   publisher                       invalidator
//   A1  ptr_valid = 1               B1  if (!ptr_valid) return
//   A2  local = *ptr                B2  ptr = NULL
//
// Failure needs A1 => B1 and B2 => A2; both sequential orders are clean.
void BuildOrder(Ctx& c) {
  BugScenario& s = c.out->scenario;
  s.bug_kind = "NULL pointer dereference";
  KernelImage& image = *c.image;
  const Word pointee_init = static_cast<Word>(1 + c.rng->NextBelow(97));
  const Addr pointee = image.AddGlobal("pointee", pointee_init);
  const Addr ptr = image.AddGlobal("ptr", static_cast<Word>(pointee));
  const Addr ptr_valid = image.AddGlobal("ptr_valid", 0);
  {
    ProgramBuilder b("publish_path");
    b.Lea(R1, ptr_valid)
        .StoreImm(R1, 1)
        .Note("A1: ptr_valid = 1")
        .Lea(R2, ptr);
    EmitWindow(c, b);
    b.Load(R3, R2)
        .Note("A2: local = *ptr (read ptr)")
        .Load(R3, R3)
        .Note("A2': local = *ptr (deref)");
    EmitAllSalt(c, b, 0);
    b.Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("invalidate_path");
    b.Lea(R1, ptr_valid)
        .Load(R2, R1)
        .Note("B1: if (!ptr_valid) return")
        .Beqz(R2, "out")
        .Lea(R3, ptr)
        .StoreImm(R3, 0)
        .Note("B2: ptr = NULL")
        .Label("out");
    EmitAllSalt(c, b, 1);
    b.Exit();
    image.AddProgram(b.Build());
  }
  s.slice = {
      {"publish()", image.ProgramByName("publish_path"), 0, ThreadKind::kSyscall},
      {"invalidate()", image.ProgramByName("invalidate_path"), 0, ThreadKind::kSyscall},
  };
  s.truth.failure_type = FailureType::kNullDeref;
  s.truth.multi_variable = true;
  s.truth.racing_globals = {"ptr", "ptr_valid"};
}

// --- atomicity: read-check-use violation -> BUG_ON ---------------------------
//
//   opener                          resetter
//   A1  dev->state = OPEN           B1  if (dev->state != OPEN) return
//   A2  BUG_ON(dev->state != OPEN)  B2  dev->state = CLOSED
//
// A's {A1 .. A2} region is assumed atomic; B2 sneaking between them fires
// the assert. Both sequential orders are clean.
void BuildAtomicity(Ctx& c) {
  BugScenario& s = c.out->scenario;
  s.bug_kind = "Assertion violation";
  KernelImage& image = *c.image;
  const Addr state = image.AddGlobal("dev_state", 0);
  {
    ProgramBuilder b("open_path");
    b.Lea(R1, state).StoreImm(R1, 1).Note("A1: dev->state = OPEN");
    EmitWindow(c, b);
    b.Load(R2, R1)
        .Note("A2: BUG_ON(dev->state != OPEN) read")
        .BugOn(R2)
        .Note("A2': BUG_ON fires");
    EmitAllSalt(c, b, 0);
    b.Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("reset_path");
    b.Lea(R1, state)
        .Load(R2, R1)
        .Note("B1: if (dev->state != OPEN) return")
        .Beqz(R2, "out")
        .StoreImm(R1, 0)
        .Note("B2: dev->state = CLOSED")
        .Label("out");
    EmitAllSalt(c, b, 1);
    b.Exit();
    image.AddProgram(b.Build());
  }
  s.slice = {
      {"open()", image.ProgramByName("open_path"), 0, ThreadKind::kSyscall},
      {"reset()", image.ProgramByName("reset_path"), 0, ThreadKind::kSyscall},
  };
  s.truth.failure_type = FailureType::kAssertViolation;
  s.truth.single_variable_pattern = true;
  s.truth.racing_globals = {"dev_state"};
}

// --- rcu: grace-period use-after-free read -----------------------------------
//
//   reader                          updater             (rcu callback)
//   R1  p = rcu_dereference(ptr)    U1  old = ptr
//   R2  use(*p)                     U2  ptr = NULL
//                                   U3  call_rcu(free_cb, old)   C1 kfree(old)
//
// The modeled bug: the updater's callback runs before the reader's critical
// section ends (a too-short grace period), so R2 reads freed memory.
void BuildRcu(Ctx& c) {
  BugScenario& s = c.out->scenario;
  s.bug_kind = "Use-after-free access";
  KernelImage& image = *c.image;
  const Addr ptr = image.AddGlobal("ptr", 0);
  {
    ProgramBuilder b("obj_free_cb");
    b.Free(R0).Note("C1: kfree(old)").Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("setup_publish");
    b.Alloc(R1, 1)
        .Note("S1: obj = kmalloc()")
        .StoreImm(R1, static_cast<Word>(1 + c.rng->NextBelow(9)))
        .Lea(R2, ptr)
        .Store(R2, R1)
        .Note("S2: rcu_assign_pointer(ptr, obj)")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("rcu_reader");
    b.Lea(R1, ptr)
        .Load(R2, R1)
        .Note("R1: p = rcu_dereference(ptr)")
        .Beqz(R2, "out");
    EmitWindow(c, b);
    b.Load(R3, R2).Note("R2: use(*p)").Label("out");
    EmitAllSalt(c, b, 0);
    b.Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("rcu_updater");
    b.Lea(R1, ptr)
        .Load(R2, R1)
        .Note("U1: old = ptr")
        .Beqz(R2, "out")
        .StoreImm(R1, 0)
        .Note("U2: rcu_assign_pointer(ptr, NULL)")
        .CallRcu(image.ProgramByName("obj_free_cb"), R2)
        .Note("U3: call_rcu(&old->rcu, free_cb)")
        .Label("out");
    EmitAllSalt(c, b, 1);
    b.Exit();
    image.AddProgram(b.Build());
  }
  s.setup = {{"setup()", image.ProgramByName("setup_publish"), 0, ThreadKind::kSyscall}};
  s.slice = {
      {"read()", image.ProgramByName("rcu_reader"), 0, ThreadKind::kSyscall},
      {"update()", image.ProgramByName("rcu_updater"), 0, ThreadKind::kSyscall},
  };
  // Resource tags tie the slice back to its setup syscall so history
  // slicing (fuzz -> DiagnoseHistory) pulls the publish prologue in.
  s.slice_resources = {"rcu_obj", "rcu_obj"};
  s.setup_resources = {"rcu_obj"};
  s.truth.failure_type = FailureType::kUseAfterFreeRead;
  s.truth.racing_globals = {"ptr"};
}

// --- workqueue: flush-vs-free use-after-free write ---------------------------
//
//   submitter            kworker                  teardown
//   Q1 queue_work()      W1  buf = dev->buf       T1  buf = dev->buf
//                        W2  buf->byte = 1        T2  dev->buf = NULL
//                                                 T3  kfree(buf)
//
// The modeled bug: teardown neither cancels nor flushes the queued work, so
// the kworker's deferred write lands in freed memory.
void BuildWorkqueue(Ctx& c) {
  BugScenario& s = c.out->scenario;
  s.bug_kind = "Use-after-free access (kworker)";
  KernelImage& image = *c.image;
  const Addr bufp = image.AddGlobal("bufp", 0);
  {
    ProgramBuilder b("setup_publish");
    b.Alloc(R1, 1)
        .Note("S1: buf = kmalloc()")
        .Lea(R2, bufp)
        .Store(R2, R1)
        .Note("S2: dev->buf = buf")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("wq_worker");
    b.Lea(R1, bufp).Load(R2, R1).Note("W1: buf = dev->buf").Beqz(R2, "out");
    EmitWindow(c, b);
    b.StoreImm(R2, 1).Note("W2: buf->byte = 1 (deferred use)").Label("out").Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("submit_path");
    b.QueueWork(image.ProgramByName("wq_worker"), R0)
        .Note("Q1: queue_work(&dev->work)");
    EmitAllSalt(c, b, 0);
    b.Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("teardown_path");
    b.Lea(R1, bufp)
        .Load(R2, R1)
        .Note("T1: buf = dev->buf")
        .Beqz(R2, "out")
        .StoreImm(R1, 0)
        .Note("T2: dev->buf = NULL")
        .Free(R2)
        .Note("T3: kfree(buf) without flush_work()")
        .Label("out");
    EmitAllSalt(c, b, 1);
    b.Exit();
    image.AddProgram(b.Build());
  }
  s.setup = {{"setup()", image.ProgramByName("setup_publish"), 0, ThreadKind::kSyscall}};
  s.slice = {
      {"submit()", image.ProgramByName("submit_path"), 0, ThreadKind::kSyscall},
      {"teardown()", image.ProgramByName("teardown_path"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"wq_dev", "wq_dev"};
  s.setup_resources = {"wq_dev"};
  s.truth.failure_type = FailureType::kUseAfterFreeWrite;
  s.truth.racing_globals = {"bufp"};
}

// --- refcount: release race -> refcount saturation warning -------------------
//
//   getter                               releaser
//   G1  if (!refcount_read(&o->ref))     P1  if (refcount_dec_and_test(&o->ref))
//         return                         P2      kfree(o)
//   G2  refcount_inc(&o->ref)
//
// The modeled bug: the getter open-codes the read+inc that should have been
// refcount_inc_not_zero(); the releaser dropping the last reference between
// G1 and G2 makes G2 an inc-from-zero.
void BuildRefcount(Ctx& c) {
  BugScenario& s = c.out->scenario;
  s.bug_kind = "Refcount warning";
  KernelImage& image = *c.image;
  const Addr objp = image.AddGlobal("objp", 0);
  {
    ProgramBuilder b("setup_publish");
    b.Alloc(R1, 2)
        .Note("S1: obj = kmalloc()")
        .StoreImm(R1, 1)
        .Note("S2: refcount_set(&obj->ref, 1)")
        .Lea(R2, objp)
        .Store(R2, R1)
        .Note("S3: objp = obj")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("get_path");
    b.Lea(R1, objp)
        .Load(R2, R1)
        .Load(R3, R2)
        .Note("G1: if (!refcount_read(&obj->ref)) return")
        .Beqz(R3, "out");
    EmitWindow(c, b);
    b.RefGet(R2)
        .Note("G2: refcount_inc(&obj->ref)")
        .RefPut(R4, R2)
        .Note("G3: refcount_dec(&obj->ref)")
        .Label("out");
    EmitAllSalt(c, b, 0);
    b.Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("put_path");
    b.Lea(R1, objp)
        .Load(R2, R1)
        .RefPut(R3, R2)
        .Note("P1: refcount_dec_and_test(&obj->ref)")
        .Beqz(R3, "out")
        .Free(R2)
        .Note("P2: kfree(obj)")
        .Label("out");
    EmitAllSalt(c, b, 1);
    b.Exit();
    image.AddProgram(b.Build());
  }
  s.setup = {{"setup()", image.ProgramByName("setup_publish"), 0, ThreadKind::kSyscall}};
  s.slice = {
      {"get()", image.ProgramByName("get_path"), 0, ThreadKind::kSyscall},
      {"put()", image.ProgramByName("put_path"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"ref_obj", "ref_obj"};
  s.setup_resources = {"ref_obj"};
  s.truth.failure_type = FailureType::kRefcountWarning;
  s.truth.single_variable_pattern = true;
  s.truth.racing_globals = {"objp"};
}

// --- abba: flag-guarded lock-ordering deadlock -------------------------------
//
//   register_path                    teardown_path
//   A1  mutex_lock(&L0)              B1  if (!registered) return
//   A2  registered = 1               B2  mutex_lock(&L[d-1]) .. mutex_lock(&L0)
//   A3  mutex_lock(&L1) .. &L[d-1]
//
// The planted race is the unlocked `registered` handshake: teardown only
// enters its (reversed) lock ladder after seeing the flag, so flipping
// A2 => B1 prevents the deadlock — exactly how real ABBA bugs are gated by
// racy state checks. A bare ABBA with no gate is over-determined (every
// order entering both ladders deadlocks) and yields an empty chain.
void BuildAbba(Ctx& c) {
  BugScenario& s = c.out->scenario;
  s.bug_kind = "Deadlock (ABBA lock ordering)";
  KernelImage& image = *c.image;
  const int depth = c.knobs->lock_depth;
  const Addr flag = image.AddGlobal("registered", 0);
  std::vector<Addr> locks;
  std::vector<Addr> data;
  for (int i = 0; i < depth; ++i) {
    locks.push_back(image.AddGlobal(StrFormat("lock%d", i), 0));
    data.push_back(image.AddGlobal(StrFormat("guarded%d", i), 0));
  }
  {
    ProgramBuilder b("register_path");
    b.Lea(R1, locks[0])
        .Lock(R1)
        .Note("A1: mutex_lock(&L0)")
        .Lea(R2, data[0])
        .StoreImm(R2, 1)
        .Note("A1': L0 state = live")
        .Lea(R3, flag)
        .StoreImm(R3, 1)
        .Note("A2: registered = 1");
    EmitWindow(c, b);
    for (int i = 1; i < depth; ++i) {
      b.Lea(R4, locks[i])
          .Lock(R4)
          .Note(StrFormat("A%d: mutex_lock(&L%d)", 2 + i, i))
          .Lea(R5, data[i])
          .StoreImm(R5, 1)
          .Note(StrFormat("A%d': L%d state = live", 2 + i, i));
    }
    for (int i = depth - 1; i >= 1; --i) {
      b.Lea(R4, locks[i]).Unlock(R4);
    }
    b.Unlock(R1);
    EmitAllSalt(c, b, 0);
    b.Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("teardown_path");
    b.Lea(R1, flag)
        .Load(R2, R1)
        .Note("B1: if (!registered) return")
        .Beqz(R2, "out");
    for (int i = depth - 1; i >= 0; --i) {
      b.Lea(R3, locks[i])
          .Lock(R3)
          .Note(StrFormat("B%d: mutex_lock(&L%d) [reversed]", 2 + (depth - 1 - i), i))
          .Lea(R4, data[i])
          .StoreImm(R4, 2)
          .Note(StrFormat("B%d': L%d state = dead", 2 + (depth - 1 - i), i));
    }
    for (int i = 0; i < depth; ++i) {
      b.Lea(R3, locks[i]).Unlock(R3);
    }
    b.Label("out");
    EmitAllSalt(c, b, 1);
    b.Exit();
    image.AddProgram(b.Build());
  }
  s.slice = {
      {"register()", image.ProgramByName("register_path"), 0, ThreadKind::kSyscall},
      {"unregister()", image.ProgramByName("teardown_path"), 0, ThreadKind::kSyscall},
  };
  s.truth.failure_type = FailureType::kDeadlock;
  s.truth.multi_variable = true;
  // The flag handshake is the planted root cause; the lock-guarded state is
  // legitimately part of the racing footprint (phantom flips may touch it).
  s.truth.racing_globals.push_back("registered");
  for (int i = 0; i < depth; ++i) {
    s.truth.racing_globals.push_back(StrFormat("guarded%d", i));
  }
}

// --- benign: salted benign races only ----------------------------------------
//
// No assert, no deref, no free, and (with lock_depth >= 2) only same-order
// lock ladders: no interleaving of these threads can fail, so any LIFS
// reproduction on this template is a fabricated failure by definition.
void BuildBenign(Ctx& c) {
  BugScenario& s = c.out->scenario;
  s.bug_kind = "No failure (benign races only)";
  KernelImage& image = *c.image;
  const bool ladder = c.knobs->lock_depth >= 2;
  std::vector<Addr> locks;
  Addr guarded = 0;
  if (ladder) {
    for (int i = 0; i < c.knobs->lock_depth; ++i) {
      locks.push_back(image.AddGlobal(StrFormat("lock%d", i), 0));
    }
    guarded = image.AddGlobal("guarded_counter", 0);
    c.out->benign_globals.push_back("guarded_counter");
  }
  const int threads = 2 + c.knobs->extra_threads;
  for (int t = 0; t < threads; ++t) {
    ProgramBuilder b(StrFormat("worker%d", t));
    EmitAllSalt(c, b, t);
    if (ladder) {
      // Every thread takes the ladder in the same order: deadlock-free.
      for (Addr lock : locks) {
        b.Lea(R1, lock).Lock(R1).Note("mutex_lock (same order everywhere)");
      }
      b.Lea(R2, guarded)
          .Load(R3, R2)
          .Note("guarded_counter++ (lock-protected)")
          .AddImm(R3, R3, 1)
          .Store(R2, R3);
      for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
        b.Lea(R1, *it).Unlock(R1);
      }
    }
    EmitWindow(c, b);
    if (c.salt.empty() && !ladder) {
      b.Nop();
    }
    b.Exit();
    ProgramId prog = image.AddProgram(b.Build());
    s.slice.push_back({StrFormat("worker%d()", t), prog, 0, ThreadKind::kSyscall});
  }
  s.truth.failure_type = FailureType::kNone;
}

}  // namespace

const char* GenTemplateName(GenTemplate t) {
  switch (t) {
    case GenTemplate::kOrder: return "order";
    case GenTemplate::kAtomicity: return "atomicity";
    case GenTemplate::kRcu: return "rcu";
    case GenTemplate::kWorkqueue: return "workqueue";
    case GenTemplate::kRefcount: return "refcount";
    case GenTemplate::kAbba: return "abba";
    case GenTemplate::kBenign: return "benign";
  }
  return "?";
}

bool ParseGenTemplate(std::string_view token, GenTemplate* out) {
  for (GenTemplate t : AllGenTemplates()) {
    if (token == GenTemplateName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

const std::vector<GenTemplate>& AllGenTemplates() {
  static const std::vector<GenTemplate> kAll = {
      GenTemplate::kOrder,     GenTemplate::kAtomicity, GenTemplate::kRcu,
      GenTemplate::kWorkqueue, GenTemplate::kRefcount,  GenTemplate::kAbba,
      GenTemplate::kBenign,
  };
  return kAll;
}

GeneratedScenario GenerateScenario(const GenOptions& options) {
  GeneratedScenario out;
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(options.tmpl));
  out.scenario.image = std::make_shared<KernelImage>();
  out.scenario.id = StrFormat(
      "gen-%s-s%lluw%dx%dt%dd%d%s", GenTemplateName(options.tmpl),
      static_cast<unsigned long long>(options.seed), options.knobs.window,
      options.knobs.salt, options.knobs.extra_threads, options.knobs.lock_depth,
      options.knobs.irq ? "i" : "");
  Ctx c{&out, out.scenario.image.get(), &rng, &options.knobs, {}};
  out.scenario.subsystem =
      StrFormat("%s (generated)", kSubsystems[rng.PickIndex(std::size(kSubsystems))]);
  // kBenign scenarios always carry at least one salted race so LIFS has real
  // cross-thread knowledge to (not) chase.
  const int sites = options.tmpl == GenTemplate::kBenign
                        ? std::max(1, options.knobs.salt)
                        : options.knobs.salt;
  MakeSalt(c, sites);
  switch (options.tmpl) {
    case GenTemplate::kOrder: BuildOrder(c); break;
    case GenTemplate::kAtomicity: BuildAtomicity(c); break;
    case GenTemplate::kRcu: BuildRcu(c); break;
    case GenTemplate::kWorkqueue: BuildWorkqueue(c); break;
    case GenTemplate::kRefcount: BuildRefcount(c); break;
    case GenTemplate::kAbba: BuildAbba(c); break;
    case GenTemplate::kBenign: BuildBenign(c); break;
  }
  out.expect_failure = options.tmpl != GenTemplate::kBenign;
  FinishCommon(c, options.tmpl);
  return out;
}

}  // namespace gen
}  // namespace aitia
