// Kairux-style inflection-point diagnosis (§5.3).
//
// Kairux defines the root cause of a failure as a *single instruction*: the
// first one in the failed run that deviates from every non-failed run. We
// reimplement the idea on the shared substrate: collect clean traces under
// random schedules, then find the earliest cross-thread ordering decision in
// the failing trace that no clean run exhibits, and report its later
// instruction.
//
// The point of the comparison: even when the inflection point is correct,
// it is one instruction — it cannot express a multi-race causality chain
// (the "Comprehensive" requirement, Table 1).

#ifndef SRC_BASELINES_INFLECTION_H_
#define SRC_BASELINES_INFLECTION_H_

#include <optional>
#include <vector>

#include "src/sim/kernel.h"
#include "src/sim/program.h"
#include "src/sim/thread.h"

namespace aitia {

struct InflectionOptions {
  int clean_runs = 64;
  uint64_t first_seed = 1000;
};

struct InflectionResult {
  bool found = false;
  // The deviating instruction (the "inflection point").
  DynInstr inflection;
  // The ordering decision that produced it: predecessor => inflection.
  DynInstr predecessor;
  int clean_runs_collected = 0;
};

InflectionResult FindInflectionPoint(const KernelImage& image,
                                     const std::vector<ThreadSpec>& slice,
                                     const std::vector<ThreadSpec>& setup,
                                     const RunResult& failing_run,
                                     const InflectionOptions& options = {});

}  // namespace aitia

#endif  // SRC_BASELINES_INFLECTION_H_
