// Cooperative bug localization (Gist / Snorlax / CCI style, §5.3).
//
// These systems predefine single-variable interleaving patterns — order
// violations (A => B vs B => A) and atomicity violations (a remote write
// landing between two same-thread accesses) — sample many production runs,
// and report the pattern instance with the strongest statistical correlation
// to the failure.
//
// The reimplementation samples random schedules on the shared substrate and
// ranks pattern instances by the phi coefficient between "pattern occurred"
// and "run failed". Its structural limits are the point of the comparison:
// a top-ranked single-variable pattern cannot express multi-variable chains
// or race-steered control flows (Table 1 "Comprehensive"/"Pattern-agnostic").

#ifndef SRC_BASELINES_COOP_H_
#define SRC_BASELINES_COOP_H_

#include <string>
#include <vector>

#include "src/sim/kernel.h"
#include "src/sim/program.h"
#include "src/sim/thread.h"

namespace aitia {

enum class CoopPatternKind { kOrderViolation, kAtomicityViolation };

struct CoopPattern {
  CoopPatternKind kind = CoopPatternKind::kOrderViolation;
  // Order violation: first => second on `addr` correlates with failure.
  // Atomicity violation: remote `second` between local `first` and `third`.
  InstrAddr first;
  InstrAddr second;
  InstrAddr third;  // only for atomicity violations
  Addr addr = 0;
  double correlation = 0;  // phi coefficient
  int fail_with = 0;       // failed runs exhibiting the pattern
  int ok_with = 0;         // clean runs exhibiting the pattern

  std::string ToString(const KernelImage& image) const;
};

struct CoopOptions {
  int runs = 400;
  uint64_t first_seed = 5000;
  // Patterns must appear in at least this many failed runs to be ranked.
  int min_support = 2;
};

struct CoopResult {
  std::vector<CoopPattern> ranked;  // best correlation first
  int failed_runs = 0;
  int clean_runs = 0;

  const CoopPattern* top() const { return ranked.empty() ? nullptr : &ranked.front(); }
};

CoopResult RunCoopLocalization(const KernelImage& image, const std::vector<ThreadSpec>& slice,
                               const std::vector<ThreadSpec>& setup,
                               const CoopOptions& options = {});

}  // namespace aitia

#endif  // SRC_BASELINES_COOP_H_
