#include "src/baselines/inflection.h"

#include <set>
#include <tuple>

#include "src/sim/policy.h"

namespace aitia {
namespace {

// An ordering decision: conflicting accesses (a, b) from different threads
// observed in the order a => b.
using Decision = std::tuple<ThreadId, InstrAddr, ThreadId, InstrAddr, Addr>;

std::set<Decision> DecisionsOf(const RunResult& run) {
  std::set<Decision> decisions;
  const auto& trace = run.trace;
  for (size_t j = 0; j < trace.size(); ++j) {
    if (!trace[j].is_access) {
      continue;
    }
    for (size_t i = 0; i < j; ++i) {
      if (!trace[i].is_access || trace[i].di.tid == trace[j].di.tid ||
          !Conflicting(trace[i], trace[j])) {
        continue;
      }
      decisions.insert({trace[i].di.tid, trace[i].di.at, trace[j].di.tid, trace[j].di.at,
                        trace[j].addr});
    }
  }
  return decisions;
}

}  // namespace

InflectionResult FindInflectionPoint(const KernelImage& image,
                                     const std::vector<ThreadSpec>& slice,
                                     const std::vector<ThreadSpec>& setup,
                                     const RunResult& failing_run,
                                     const InflectionOptions& options) {
  InflectionResult result;

  // Union of ordering decisions across clean runs.
  std::set<Decision> clean;
  for (int i = 0; i < options.clean_runs; ++i) {
    KernelSim kernel(&image, slice, setup);
    RandomPolicy policy(options.first_seed + static_cast<uint64_t>(i));
    RunResult run = RunToCompletion(kernel, policy);
    if (run.failure.has_value()) {
      continue;
    }
    ++result.clean_runs_collected;
    for (const Decision& d : DecisionsOf(run)) {
      clean.insert(d);
    }
  }

  // Earliest decision of the failing run never seen in a clean run; its
  // later side is the inflection point.
  const auto& trace = failing_run.trace;
  for (size_t j = 0; j < trace.size(); ++j) {
    if (!trace[j].is_access) {
      continue;
    }
    for (size_t i = 0; i < j; ++i) {
      if (!trace[i].is_access || trace[i].di.tid == trace[j].di.tid ||
          !Conflicting(trace[i], trace[j])) {
        continue;
      }
      Decision d{trace[i].di.tid, trace[i].di.at, trace[j].di.tid, trace[j].di.at,
                 trace[j].addr};
      if (clean.count(d) == 0) {
        result.found = true;
        result.inflection = trace[j].di;
        result.predecessor = trace[i].di;
        return result;
      }
    }
  }
  return result;
}

}  // namespace aitia
