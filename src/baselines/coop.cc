#include "src/baselines/coop.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "src/sim/policy.h"
#include "src/util/strings.h"

namespace aitia {
namespace {

std::string Describe(const KernelImage& image, InstrAddr at) { return image.Describe(at); }

// Pattern instance keys.
using OrderKey = std::tuple<InstrAddr, InstrAddr, Addr>;
using AtomKey = std::tuple<InstrAddr, InstrAddr, InstrAddr, Addr>;

struct Tally {
  int fail_with = 0;
  int ok_with = 0;
};

// Extracts the single-variable pattern instances exhibited by one run.
void ExtractPatterns(const RunResult& run, std::set<OrderKey>& orders,
                     std::set<AtomKey>& atoms) {
  const auto& trace = run.trace;
  std::vector<size_t> accesses;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].is_access) {
      accesses.push_back(i);
    }
  }
  // Order violations: cross-thread conflicting pairs, as observed.
  for (size_t jj = 0; jj < accesses.size(); ++jj) {
    const ExecEvent& b = trace[accesses[jj]];
    for (size_t ii = 0; ii < jj; ++ii) {
      const ExecEvent& a = trace[accesses[ii]];
      if (a.di.tid != b.di.tid && Conflicting(a, b)) {
        orders.insert({a.di.at, b.di.at, b.addr});
      }
    }
  }
  // Atomicity violations: remote conflicting access between two same-thread
  // accesses of the same address.
  for (size_t ii = 0; ii < accesses.size(); ++ii) {
    const ExecEvent& x1 = trace[accesses[ii]];
    for (size_t kk = ii + 1; kk < accesses.size(); ++kk) {
      const ExecEvent& x2 = trace[accesses[kk]];
      if (x2.di.tid != x1.di.tid || x2.addr != x1.addr) {
        continue;
      }
      for (size_t jj = ii + 1; jj < kk; ++jj) {
        const ExecEvent& y = trace[accesses[jj]];
        if (y.di.tid != x1.di.tid && y.addr == x1.addr &&
            (y.is_write || x1.is_write || x2.is_write)) {
          atoms.insert({x1.di.at, y.di.at, x2.di.at, y.addr});
        }
      }
      break;  // only the immediately-next same-thread access of this addr
    }
  }
}

double Phi(int fail_with, int ok_with, int failed, int clean) {
  // 2x2 contingency: pattern x failure.
  const double a = fail_with;
  const double b = ok_with;
  const double c = failed - fail_with;
  const double d = clean - ok_with;
  const double denom = std::sqrt((a + b) * (c + d) * (a + c) * (b + d));
  if (denom == 0) {
    return 0;
  }
  return (a * d - b * c) / denom;
}

}  // namespace

std::string CoopPattern::ToString(const KernelImage& image) const {
  if (kind == CoopPatternKind::kOrderViolation) {
    return StrFormat("order-violation  %s => %s  (phi %.2f)", Describe(image, first).c_str(),
                     Describe(image, second).c_str(), correlation);
  }
  return StrFormat("atomicity-violation  %s .. [%s] .. %s  (phi %.2f)",
                   Describe(image, first).c_str(), Describe(image, second).c_str(),
                   Describe(image, third).c_str(), correlation);
}

CoopResult RunCoopLocalization(const KernelImage& image, const std::vector<ThreadSpec>& slice,
                               const std::vector<ThreadSpec>& setup,
                               const CoopOptions& options) {
  CoopResult result;
  std::map<OrderKey, Tally> order_tallies;
  std::map<AtomKey, Tally> atom_tallies;

  for (int i = 0; i < options.runs; ++i) {
    KernelSim kernel(&image, slice, setup);
    RandomPolicy policy(options.first_seed + static_cast<uint64_t>(i));
    RunResult run = RunToCompletion(kernel, policy);
    const bool failed = run.failure.has_value();
    failed ? ++result.failed_runs : ++result.clean_runs;

    std::set<OrderKey> orders;
    std::set<AtomKey> atoms;
    ExtractPatterns(run, orders, atoms);
    for (const auto& key : orders) {
      auto& tally = order_tallies[key];
      failed ? ++tally.fail_with : ++tally.ok_with;
    }
    for (const auto& key : atoms) {
      auto& tally = atom_tallies[key];
      failed ? ++tally.fail_with : ++tally.ok_with;
    }
  }

  for (const auto& [key, tally] : order_tallies) {
    if (tally.fail_with < options.min_support) {
      continue;
    }
    CoopPattern p;
    p.kind = CoopPatternKind::kOrderViolation;
    p.first = std::get<0>(key);
    p.second = std::get<1>(key);
    p.addr = std::get<2>(key);
    p.fail_with = tally.fail_with;
    p.ok_with = tally.ok_with;
    p.correlation = Phi(tally.fail_with, tally.ok_with, result.failed_runs, result.clean_runs);
    result.ranked.push_back(p);
  }
  for (const auto& [key, tally] : atom_tallies) {
    if (tally.fail_with < options.min_support) {
      continue;
    }
    CoopPattern p;
    p.kind = CoopPatternKind::kAtomicityViolation;
    p.first = std::get<0>(key);
    p.second = std::get<1>(key);
    p.third = std::get<2>(key);
    p.addr = std::get<3>(key);
    p.fail_with = tally.fail_with;
    p.ok_with = tally.ok_with;
    p.correlation = Phi(tally.fail_with, tally.ok_with, result.failed_runs, result.clean_runs);
    result.ranked.push_back(p);
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const CoopPattern& x, const CoopPattern& y) {
              return x.correlation > y.correlation;
            });
  return result;
}

}  // namespace aitia
