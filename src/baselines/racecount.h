// Raw failure statistics: what a plain data-race detector / failure
// reproducer would dump on the developer (§5.2 conciseness comparison).

#ifndef SRC_BASELINES_RACECOUNT_H_
#define SRC_BASELINES_RACECOUNT_H_

#include "src/sim/hb.h"
#include "src/sim/kernel.h"

namespace aitia {

struct RawRaceStats {
  // Memory-accessing instruction instances in the failed execution.
  int64_t memory_accessing_instructions = 0;
  // Individual data races (distinct static instruction pairs).
  int64_t data_races = 0;
  // Dynamic conflicting pairs, including lock-ordered ones.
  int64_t conflicting_pairs = 0;
};

RawRaceStats CountRawRaces(const RunResult& failing_run);

}  // namespace aitia

#endif  // SRC_BASELINES_RACECOUNT_H_
