#include "src/baselines/racecount.h"

#include <set>
#include <utility>

namespace aitia {

RawRaceStats CountRawRaces(const RunResult& failing_run) {
  RawRaceStats stats;
  stats.memory_accessing_instructions = failing_run.AccessCount();

  RaceAnalysis analysis = ExtractRaces(failing_run);
  stats.conflicting_pairs = analysis.conflicting_pairs_total;

  std::set<std::pair<InstrAddr, InstrAddr>> static_pairs;
  for (const RacePair& race : analysis.races) {
    static_pairs.insert({race.first.di.at, race.second.di.at});
  }
  stats.data_races = static_cast<int64_t>(static_pairs.size());
  return stats;
}

}  // namespace aitia
