// MUVI-style multi-variable access-correlation mining (§2.2, §5.3).
//
// MUVI assumes that semantically correlated variables are *accessed
// together* most of the time; it mines that correlation and flags
// non-atomic accesses to correlated pairs. The reimplementation mines
// per-thread co-access statistics of the scenario's global variables over a
// fuzzing workload.
//
// The comparison point: *loosely correlated* objects (an fd-table slot in
// VFS and a kvm object in KVM) fail the co-access threshold because most
// syscalls touch one without the other, so MUVI never connects them — while
// AITIA's dynamic flip test does not care (pattern-agnostic).

#ifndef SRC_BASELINES_MUVI_H_
#define SRC_BASELINES_MUVI_H_

#include <string>
#include <vector>

#include "src/fuzz/fuzzer.h"
#include "src/sim/program.h"

namespace aitia {

struct MuviOptions {
  int runs = 200;
  uint64_t first_seed = 9000;
  // Minimum co-access ratio for a pair to count as correlated:
  // |threads accessing both| / |threads accessing either-side min|.
  double threshold = 0.65;
};

struct MuviPair {
  std::string var_a;
  std::string var_b;
  double ratio = 0;
  bool correlated = false;
};

struct MuviResult {
  std::vector<MuviPair> pairs;  // all global pairs with any co-access
  // True if every pair drawn from `query_vars` passed the threshold — i.e.
  // MUVI's assumption holds for the bug's racing variables.
  bool assumption_holds = false;
};

// Mines access correlation over random-schedule runs of `workload`, then
// evaluates the correlation of the `query_vars` (the bug's racing globals).
MuviResult RunMuvi(const FuzzWorkload& workload, const std::vector<std::string>& query_vars,
                   const MuviOptions& options = {});

}  // namespace aitia

#endif  // SRC_BASELINES_MUVI_H_
