#include "src/baselines/muvi.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/sim/policy.h"

namespace aitia {

MuviResult RunMuvi(const FuzzWorkload& workload, const std::vector<std::string>& query_vars,
                   const MuviOptions& options) {
  MuviResult result;
  const KernelImage& image = *workload.image;

  // Per-(run, thread) sets of accessed globals. A "thread execution" is the
  // statistical unit, standing in for MUVI's per-function access sets.
  std::map<Addr, int> accessing_units;                       // var -> #units
  std::map<std::pair<Addr, Addr>, int> coaccessing_units;    // pair -> #units

  for (int i = 0; i < options.runs; ++i) {
    KernelSim kernel(workload.image, workload.threads, workload.setup);
    RandomPolicy policy(options.first_seed + static_cast<uint64_t>(i));
    RunResult run = RunToCompletion(kernel, policy);
    if (run.failure.has_value()) {
      // MUVI mines *production* traces; crashing executions are truncated
      // and would skew the co-access statistics.
      continue;
    }

    std::map<ThreadId, std::set<Addr>> touched;
    for (const ExecEvent& e : run.trace) {
      if (!e.is_access) {
        continue;
      }
      if (e.addr >= kGlobalBase && e.addr < kGlobalEnd) {
        touched[e.di.tid].insert(e.addr);
      }
    }
    for (const auto& [tid, vars] : touched) {
      (void)tid;
      for (Addr a : vars) {
        accessing_units[a]++;
        for (Addr b : vars) {
          if (a < b) {
            coaccessing_units[{a, b}]++;
          }
        }
      }
    }
  }

  auto ratio_of = [&](Addr a, Addr b) -> double {
    if (a > b) {
      std::swap(a, b);
    }
    auto it = coaccessing_units.find({a, b});
    const int both = it == coaccessing_units.end() ? 0 : it->second;
    const int na = accessing_units.count(a) != 0 ? accessing_units[a] : 0;
    const int nb = accessing_units.count(b) != 0 ? accessing_units[b] : 0;
    const int denom = std::max(na, nb);
    return denom == 0 ? 0.0 : static_cast<double>(both) / denom;
  };

  for (const auto& [pair, both] : coaccessing_units) {
    (void)both;
    MuviPair p;
    p.var_a = image.GlobalName(pair.first);
    p.var_b = image.GlobalName(pair.second);
    p.ratio = ratio_of(pair.first, pair.second);
    p.correlated = p.ratio >= options.threshold;
    result.pairs.push_back(p);
  }

  // Do the bug's racing variables pass?
  result.assumption_holds = query_vars.size() >= 2;
  for (size_t i = 0; i < query_vars.size(); ++i) {
    for (size_t j = i + 1; j < query_vars.size(); ++j) {
      const double r = ratio_of(image.GlobalAddr(query_vars[i]),
                                image.GlobalAddr(query_vars[j]));
      if (r < options.threshold) {
        result.assumption_holds = false;
      }
    }
  }
  return result;
}

}  // namespace aitia
