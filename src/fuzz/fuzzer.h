// The bug-finding front end — a Syzkaller stand-in (§4.1, DESIGN.md §2).
//
// The fuzzer runs a scenario workload under a random-preemption scheduler
// until a failure manifests, then emits what the paper's pipeline consumes:
// a timestamped execution history (syscall enter/exit, background-thread
// invocations with their source) plus the failure information a coredump
// would carry.

#ifndef SRC_FUZZ_FUZZER_H_
#define SRC_FUZZ_FUZZER_H_

#include <string>
#include <vector>

#include "src/sim/policy.h"
#include "src/trace/history.h"

namespace aitia {

struct FuzzWorkload {
  const KernelImage* image = nullptr;
  // Concurrent tasks the fuzzer drives (the failing group plus noise).
  std::vector<ThreadSpec> threads;
  // Per-thread resource tags (parallel to `threads`; empty string = none).
  std::vector<std::string> resources;
  // Sequential prologue (e.g. the open() that creates a shared fd).
  std::vector<ThreadSpec> setup;
  std::vector<std::string> setup_resources;
};

struct FuzzOptions {
  uint64_t first_seed = 1;
  int max_attempts = 2000;
  uint64_t switch_num = 1;
  uint64_t switch_den = 3;
  RunOptions run;
};

struct FuzzOutcome {
  bool found = false;
  uint64_t seed = 0;
  int attempts = 0;
  ExecutionHistory history;
  RunResult run;
};

// Replays the workload with fresh seeds until some run fails; builds the
// execution history of the failing run.
FuzzOutcome FuzzUntilFailure(const FuzzWorkload& workload, const FuzzOptions& options = {});

// Builds the timestamped history for one completed run (exposed for tests).
ExecutionHistory BuildHistory(const FuzzWorkload& workload, const RunResult& run,
                              ThreadId first_initial_tid);

}  // namespace aitia

#endif  // SRC_FUZZ_FUZZER_H_
