#include "src/fuzz/fuzzer.h"

#include <map>

namespace aitia {

ExecutionHistory BuildHistory(const FuzzWorkload& workload, const RunResult& run,
                              ThreadId first_initial_tid) {
  ExecutionHistory history;

  // Setup syscalls completed before the concurrent section; give them
  // negative timestamps so every concurrent event orders after them.
  int64_t setup_ts = -2 * static_cast<int64_t>(workload.setup.size()) - 2;
  for (size_t i = 0; i < workload.setup.size(); ++i) {
    const ThreadSpec& spec = workload.setup[i];
    HistoryEntry enter;
    enter.timestamp = setup_ts++;
    enter.kind = HistoryKind::kSyscallEnter;
    enter.task = static_cast<int32_t>(i);
    enter.name = spec.name;
    enter.prog = spec.prog;
    enter.arg = spec.arg;
    enter.thread_kind = spec.kind;
    enter.resource = i < workload.setup_resources.size() ? workload.setup_resources[i] : "";
    history.entries.push_back(enter);
    HistoryEntry exit = enter;
    exit.timestamp = setup_ts++;
    exit.kind = HistoryKind::kSyscallExit;
    history.entries.push_back(exit);
  }

  // Per-thread first/last event seq.
  std::map<ThreadId, int64_t> first_seq;
  std::map<ThreadId, int64_t> last_seq;
  for (const ExecEvent& e : run.trace) {
    if (first_seq.find(e.di.tid) == first_seq.end()) {
      first_seq[e.di.tid] = e.seq;
    }
    last_seq[e.di.tid] = e.seq;
  }
  std::map<ThreadId, const SpawnEdge*> spawn_of;
  for (const SpawnEdge& edge : run.spawns) {
    spawn_of[edge.child] = &edge;
  }

  const ThreadId nthreads = static_cast<ThreadId>(run.threads.size());
  for (ThreadId tid = first_initial_tid; tid < nthreads; ++tid) {
    const RunResult::ThreadInfo& info = run.threads[static_cast<size_t>(tid)];
    const size_t workload_index = static_cast<size_t>(tid - first_initial_tid);
    const bool is_initial = workload_index < workload.threads.size();

    HistoryEntry enter;
    enter.task = tid;
    enter.name = info.name;
    enter.prog = info.prog;
    enter.thread_kind = info.kind;
    if (is_initial) {
      enter.kind = HistoryKind::kSyscallEnter;
      enter.arg = workload.threads[workload_index].arg;
      enter.resource = workload_index < workload.resources.size()
                           ? workload.resources[workload_index]
                           : "";
      auto it = first_seq.find(tid);
      enter.timestamp = it != first_seq.end() ? it->second : 0;
    } else {
      enter.kind = HistoryKind::kBgInvoke;
      auto it = spawn_of.find(tid);
      if (it != spawn_of.end()) {
        enter.timestamp = it->second->seq;
        enter.source_task = it->second->parent;
        enter.arg = it->second->arg;
      }
    }
    history.entries.push_back(enter);

    // Emit an exit only for threads that actually finished; unfinished
    // intervals stay open (they overlap the failure).
    const bool failed_here =
        run.failure.has_value() && run.failure->tid == tid;
    auto last_it = last_seq.find(tid);
    if (last_it != last_seq.end() && !failed_here && run.all_exited) {
      HistoryEntry exit = enter;
      exit.kind = HistoryKind::kSyscallExit;
      exit.timestamp = last_it->second;
      history.entries.push_back(exit);
    }
  }

  if (run.failure.has_value()) {
    FailureInfo info;
    info.failure = *run.failure;
    info.timestamp = run.failure->seq >= 0
                         ? run.failure->seq
                         : (run.trace.empty() ? 0 : run.trace.back().seq);
    info.task = run.failure->tid;
    history.failure = info;
  }
  return history;
}

FuzzOutcome FuzzUntilFailure(const FuzzWorkload& workload, const FuzzOptions& options) {
  FuzzOutcome outcome;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    const uint64_t seed = options.first_seed + static_cast<uint64_t>(attempt);
    KernelSim kernel(workload.image, workload.threads, workload.setup);
    const ThreadId first_initial = kernel.first_initial_thread();
    RandomPolicy policy(seed, options.switch_num, options.switch_den);
    RunResult run = RunToCompletion(kernel, policy, options.run);
    outcome.attempts = attempt + 1;
    if (run.failure.has_value()) {
      outcome.found = true;
      outcome.seed = seed;
      outcome.history = BuildHistory(workload, run, first_initial);
      outcome.run = std::move(run);
      return outcome;
    }
  }
  return outcome;
}

}  // namespace aitia
