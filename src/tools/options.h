// Command-line flags shared by the aitia and aitiad binaries.
//
// Both tools drive the same diagnosis pipeline, so the flags that configure
// it — worker counts, the checkpoint/replay cache, the static triage
// pre-filter, log level — are parsed here once instead of being duplicated
// (and drifting) in each main. Both `--flag value` and `--flag=value` forms
// are accepted. Binary-specific flags stay in their mains.

#ifndef SRC_TOOLS_OPTIONS_H_
#define SRC_TOOLS_OPTIONS_H_

#include <string>

#include "src/analysis/triage.h"
#include "src/core/aitia.h"
#include "src/util/status.h"

namespace aitia {
namespace tools {

struct SharedFlags {
  // --jobs N: one worker count for every parallel pipeline stage.
  bool jobs_set = false;
  size_t jobs = 1;
  // --no-replay-cache: disable checkpoint/prefix-replay (src/ckpt).
  bool replay_cache = true;
  // --no-prefilter: run every dynamic flip test (triage pipeline cleared).
  bool prefilter = true;
  // --triage SPEC: comma-separated stage list, validated at parse time.
  bool triage_set = false;
  std::string triage_spec;
};

enum class ParseResult {
  kNotShared,  // not a shared flag; the caller's parser handles it
  kParsed,     // consumed (i advanced past any value argument)
  kError,      // bad value; diagnostic already printed to stderr
};

// Tries to parse argv[i] as a shared flag. `binary` prefixes diagnostics
// ("aitia: ..."). --log-level takes effect immediately via SetLogLevel.
ParseResult ParseSharedFlag(const char* binary, int argc, char** argv, int& i,
                            SharedFlags& flags);

// The usage text block for the shared flags, for embedding in --help output.
const char* SharedFlagsHelp();

// The triage pipeline the flags select: empty under --no-prefilter (which
// wins over --triage), the --triage spec when given, else the default.
analysis::TriagePipeline ResolveTriagePipeline(const SharedFlags& flags);

// Applies every shared flag to `options` (jobs, replay cache, triage).
void ApplySharedFlags(const SharedFlags& flags, AitiaOptions& options);

}  // namespace tools
}  // namespace aitia

#endif  // SRC_TOOLS_OPTIONS_H_
