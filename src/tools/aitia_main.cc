// aitia — the trace-driven diagnosis CLI.
//
// Reads an AITIA trace (.ait) file — or a bundled corpus scenario id — and
// runs the full LIFS + Causality pipeline under the supervisor, printing the
// rendered diagnosis (or JSON with --json).
//
//   $ aitia examples/traces/cve_2017_15649.ait
//   $ aitia --json examples/traces/fig_4b.ait
//   $ aitia CVE-2017-15649              # corpus id instead of a file
//   $ aitia --trace out.json fig-1      # Chrome trace-event flight record
//   $ aitia --metrics fig-1             # metrics summary on stderr
//   $ aitia --sarif out.sarif fig-1     # SARIF 2.1.0 log for CI annotation
//   $ aitia --metrics-json m.json fig-1 # metrics snapshot as nested JSON
//   $ aitia --emit syz-04               # serialize a corpus scenario to .ait
//   $ aitia --list                      # list corpus ids
//
// Exit codes (scriptable, CI-friendly):
//   0  diagnosis complete (causality chain produced, supervision healthy)
//   1  failure did not reproduce / no diagnosis
//   2  input error: unreadable file, parse or assembly error, bad usage,
//      unwritable --trace path
//   3  diagnosis completed degraded (some flip tests exhausted their budget)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <vector>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/core/report.h"
#include "src/gen/generator.h"
#include "src/ingest/ingest.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tools/options.h"
#include "src/tools/sarif.h"
#include "src/util/log.h"

namespace {

constexpr int kExitDiagnosed = 0;
constexpr int kExitNotDiagnosed = 1;
constexpr int kExitInputError = 2;
constexpr int kExitDegraded = 3;

int Usage(FILE* to) {
  std::fprintf(to,
               "usage: aitia [--json] [--jobs N] [--trace FILE] [--metrics]\n"
               "             [--sarif FILE] [--metrics-json FILE]\n"
               "             [--no-replay-cache] [--no-prefilter] [--triage SPEC]\n"
               "             [--log-level LEVEL] <trace.ait | scenario-id>\n"
               "       aitia --emit <scenario-id>   # print a corpus scenario as .ait\n"
               "       aitia --list                 # list corpus scenario ids\n"
               "       aitia --generate template=NAME [seed=N] [window=N] [salt=N]\n"
               "             [extra_threads=N] [lock_depth=N] [irq=0|1]\n"
               "                                    # print a generated scenario as .ait\n"
               "                                    # (templates: order atomicity rcu\n"
               "                                    #  workqueue refcount abba benign)\n"
               "\n"
               "  --trace FILE      write a Chrome trace-event JSON flight record of\n"
               "                    the run (open in about:tracing or Perfetto)\n"
               "  --metrics         print the diagnosis metrics summary to stderr\n"
               "  --metrics-json F  write the diagnosis metrics snapshot to F as nested\n"
               "                    JSON (the same shape as aitiad --metrics-json)\n"
               "  --sarif FILE      write the diagnosis as a SARIF 2.1.0 log\n"
               "%s"
               "\n"
               "exit codes: 0 diagnosed, 1 not diagnosed, 2 input error, 3 degraded\n",
               aitia::tools::SharedFlagsHelp());
  return to == stdout ? kExitDiagnosed : kExitInputError;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aitia;

  InitLogLevelFromEnv();

  bool json = false;
  bool emit = false;
  bool generate = false;
  bool metrics = false;
  tools::SharedFlags shared;
  std::string trace_path;
  std::string sarif_path;
  std::string metrics_json_path;
  std::string input;
  std::vector<std::string> gen_tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const tools::ParseResult pr = tools::ParseSharedFlag("aitia", argc, argv, i, shared);
    if (pr == tools::ParseResult::kError) {
      return kExitInputError;
    }
    if (pr == tools::ParseResult::kParsed) {
      continue;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg == "--emit") {
      emit = true;
    } else if (arg == "--generate") {
      generate = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "aitia: --trace needs a file path\n");
        return Usage(stderr);
      }
      trace_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "aitia: --sarif needs a file path\n");
        return Usage(stderr);
      }
      sarif_path = argv[++i];
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg == "--metrics-json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "aitia: --metrics-json needs a file path\n");
        return Usage(stderr);
      }
      metrics_json_path = argv[++i];
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json_path = arg.substr(15);
    } else if (arg == "--list") {
      for (const ScenarioEntry& e : AllScenarios()) {
        std::printf("%s\n", e.id);
      }
      return kExitDiagnosed;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "aitia: unknown flag '%s'\n", arg.c_str());
      return Usage(stderr);
    } else if (generate) {
      gen_tokens.push_back(arg);
    } else if (input.empty()) {
      input = arg;
    } else {
      std::fprintf(stderr, "aitia: more than one input ('%s' and '%s')\n", input.c_str(),
                   arg.c_str());
      return Usage(stderr);
    }
  }

  if (generate) {
    // --generate before positional args is the documented order; a stray
    // positional parsed into `input` first is forwarded as a spec token.
    if (!input.empty()) {
      gen_tokens.insert(gen_tokens.begin(), input);
    }
    StatusOr<gen::GenOptions> spec = gen::ParseGenSpec(gen_tokens);
    if (!spec.ok()) {
      std::fprintf(stderr, "aitia: %s\n", spec.status().ToString().c_str());
      return kExitInputError;
    }
    std::fputs(ScenarioToAit(gen::GenerateScenario(*spec).scenario).c_str(), stdout);
    return kExitDiagnosed;
  }

  if (input.empty() && trace_path.empty()) {
    return Usage(stderr);
  }
  if (input.empty()) {
    std::fprintf(stderr, "aitia: --trace needs a scenario to run\n");
    return Usage(stderr);
  }

  if (emit) {
    const ScenarioEntry* entry = FindScenario(input);
    if (entry == nullptr) {
      std::fprintf(stderr, "aitia: unknown scenario id '%s' (try --list)\n", input.c_str());
      return kExitInputError;
    }
    std::fputs(ScenarioToAit(entry->make()).c_str(), stdout);
    return kExitDiagnosed;
  }

  // Probe the trace destination *before* spending minutes in the pipeline:
  // an unwritable path is an input error (exit 2) reported as a Status, not
  // an abort after the work is done.
  std::ofstream trace_out;
  if (!trace_path.empty()) {
    trace_out.open(trace_path, std::ios::binary | std::ios::trunc);
    if (!trace_out) {
      const Status st = Status::Unavailable("cannot open trace output file: " + trace_path);
      std::fprintf(stderr, "aitia: %s\n", st.ToString().c_str());
      return kExitInputError;
    }
    // Tracing starts before the scenario load so ingest spans are captured.
    obs::Tracer::Global().Start();
  }
  // Same probe-then-write discipline for the SARIF and metrics destinations.
  std::ofstream sarif_out;
  if (!sarif_path.empty()) {
    sarif_out.open(sarif_path, std::ios::binary | std::ios::trunc);
    if (!sarif_out) {
      const Status st = Status::Unavailable("cannot open sarif output file: " + sarif_path);
      std::fprintf(stderr, "aitia: %s\n", st.ToString().c_str());
      return kExitInputError;
    }
  }
  std::ofstream metrics_json_out;
  if (!metrics_json_path.empty()) {
    metrics_json_out.open(metrics_json_path, std::ios::binary | std::ios::trunc);
    if (!metrics_json_out) {
      const Status st =
          Status::Unavailable("cannot open metrics output file: " + metrics_json_path);
      std::fprintf(stderr, "aitia: %s\n", st.ToString().c_str());
      return kExitInputError;
    }
  }
  auto write_trace = [&]() -> Status {
    if (trace_path.empty()) {
      return OkStatus();
    }
    const obs::TraceDump dump = obs::Tracer::Global().Snapshot();
    obs::Tracer::Global().Stop();
    trace_out << obs::ToChromeTraceJson(dump);
    trace_out.flush();
    if (!trace_out) {
      return Status::Unavailable("failed writing trace output file: " + trace_path);
    }
    if (dump.dropped > 0) {
      std::fprintf(stderr, "aitia: trace ring full, dropped %lld event(s)\n",
                   static_cast<long long>(dump.dropped));
    }
    return OkStatus();
  };

  // A corpus id is accepted wherever a trace file is: ids never name
  // readable files, so the file path wins when both could apply.
  BugScenario scenario;
  const ScenarioEntry* entry = FindScenario(input);
  StatusOr<BugScenario> loaded = ScenarioFromAitFile(input);
  if (loaded.ok()) {
    scenario = *std::move(loaded);
  } else if (entry != nullptr &&
             loaded.status().code() == StatusCode::kNotFound) {
    scenario = entry->make();
  } else {
    std::fprintf(stderr, "aitia: %s\n", loaded.status().ToString().c_str());
    (void)write_trace();
    return kExitInputError;
  }

  if (!json) {
    std::fprintf(stderr, "scenario   : %s (%s, %s)\n", scenario.id.c_str(),
                 scenario.subsystem.c_str(), scenario.bug_kind.c_str());
  }
  AitiaOptions options;
  tools::ApplySharedFlags(shared, options);
  AitiaReport report = DiagnoseScenario(scenario, options);

  if (const Status st = write_trace(); !st.ok()) {
    std::fprintf(stderr, "aitia: %s\n", st.ToString().c_str());
    return kExitInputError;
  }
  if (metrics) {
    std::fprintf(stderr, "--- metrics ---\n%s", report.metrics.ToText().c_str());
  }
  if (!sarif_path.empty()) {
    sarif_out << tools::ReportToSarif(scenario, report) << "\n";
    if (!sarif_out.flush()) {
      std::fprintf(stderr, "aitia: failed writing sarif output file: %s\n", sarif_path.c_str());
      return kExitInputError;
    }
  }
  if (!metrics_json_path.empty()) {
    // Per-diagnosis delta, mirroring the report's "metrics" section (the
    // daemon's --metrics-json dumps the whole process registry instead).
    metrics_json_out << report.metrics.ToJson() << "\n";
    if (!metrics_json_out.flush()) {
      std::fprintf(stderr, "aitia: failed writing metrics output file: %s\n",
                   metrics_json_path.c_str());
      return kExitInputError;
    }
  }
  if (const int64_t dropped =
          obs::MetricsRegistry::Global().Snapshot().counter("trace.dropped");
      dropped > 0 && trace_path.empty()) {
    // With --trace the dump path already warned; surface ring saturation for
    // metrics-only runs too so flight records are read with suspicion.
    std::fprintf(stderr, "aitia: span ring dropped %lld event(s)\n",
                 static_cast<long long>(dropped));
  }

  std::printf("%s\n", json ? ReportToJson(report, *scenario.image).c_str()
                           : report.Render(*scenario.image).c_str());
  if (!report.diagnosed) {
    return kExitNotDiagnosed;
  }
  return (report.degraded || !report.status.ok()) ? kExitDegraded : kExitDiagnosed;
}
