// aitia_sweep — the generated-corpus correctness sweep (DESIGN.md §14.4).
//
// Drives fuzz → LIFS → Causality Analysis over a seed-deterministic
// generated corpus (src/gen) with per-template pass/fail accounting, and
// asserts the property-based invariants the curated differential tests pin,
// at three orders of magnitude more scenarios:
//
//   * no fabricated failures: benign-template scenarios never reproduce or
//     diagnose, under LIFS or under the fuzzer;
//   * planted root cause diagnosed: buggy scenarios reproduce the planted
//     symptom type and their causality chain touches the planted trigger
//     state, never a salted benign global, never anything outside the
//     scenario's racing address ranges;
//   * serializer round-trip: every scenario re-parses and re-serializes
//     byte-identically;
//   * triage/replay/parallelism purity (differential stride): re-diagnosing
//     with the pre-filter off and 4 workers yields bit-identical semantics;
//   * accounting: schedules_executed + flips_skipped == tested races.
//
// Output is a deterministic JSON summary (stdout and/or --json=FILE): equal
// seeds produce byte-identical reports, so CI can diff reruns. Wall-clock
// goes to stderr only.
//
//   $ aitia_sweep --count=1000 --seed=9
//   $ aitia_sweep --count=50 --seed=7 --templates=abba,benign --json=out.json
//
// Exit codes: 0 all invariants hold and the root-cause hit rate is >= 95%,
// 1 violations (details in the JSON), 2 usage/input error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/bugs/diagnose.h"
#include "src/core/aitia.h"
#include "src/fuzz/fuzzer.h"
#include "src/gen/generator.h"
#include "src/ingest/ingest.h"
#include "src/ingest/serialize.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace {

using namespace aitia;

constexpr int kExitOk = 0;
constexpr int kExitViolations = 1;
constexpr int kExitUsage = 2;

// Every Nth scenario gets the expensive extra passes.
constexpr int kDifferentialStride = 10;
constexpr int kFuzzStride = 10;
constexpr int kFuzzAttempts = 500;
// Fuzz attempts granted to benign scenarios when proving the *absence* of a
// failure (kept smaller: every attempt must come up clean).
constexpr int kBenignFuzzAttempts = 120;

// Deterministic search budget applied to every diagnosis in the sweep. The
// template contract guarantees each planted failure is reachable within 2
// preemptions, so the caps never mask a planted bug; they bound the cost of
// the searches that (correctly) find nothing — benign scenarios and
// non-reproducing slice candidates — which would otherwise walk the full
// default frontier. Budgets are schedule counts, not wall-clock, so equal
// seeds still give byte-identical output.
AitiaOptions SweepOptions() {
  AitiaOptions options;
  options.lifs.max_interleavings = 2;
  options.lifs.max_schedules = 2500;
  options.max_slices = 8;
  return options;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : text) {
    if (ch == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

int Usage(FILE* to) {
  std::fprintf(to,
               "usage: aitia_sweep [--count=N] [--seed=S] [--templates=a,b,..]\n"
               "                   [--jobs=N] [--json=FILE]\n"
               "\n"
               "  --count=N       scenarios to generate and diagnose (default 1000)\n"
               "  --seed=S        sweep seed; equal seeds give byte-identical JSON\n"
               "                  (default 9)\n"
               "  --templates=..  comma-separated template subset (default: all of\n"
               "                  order,atomicity,rcu,workqueue,refcount,abba,benign)\n"
               "  --jobs=N        scenario-level parallelism (0 = hardware, default)\n"
               "  --json=FILE     also write the JSON summary to FILE\n"
               "\n"
               "exit codes: 0 all invariants hold, 1 violations, 2 usage error\n");
  return to == stdout ? kExitOk : kExitUsage;
}

// Semantically observable diagnosis state, comparable across pipeline
// configurations (mirrors tests/prefilter_differential_test.cc).
std::string Semantics(const BugScenario& s, const AitiaReport& r) {
  std::string out;
  out += "diagnosed=" + std::to_string(r.diagnosed);
  out += " degraded=" + std::to_string(r.degraded);
  out += "\nchain:\n" + r.causality.chain.Render(*s.image);
  out += "roots:";
  for (size_t i : r.causality.root_cause_indices) {
    out += " " + std::to_string(i);
  }
  out += "\n";
  for (const TestedRace& t : r.causality.tested) {
    out += RaceLabel(*s.image, t.race);
    out += " verdict=" + std::string(RaceVerdictName(t.verdict));
    out += " phantom=" + std::to_string(t.phantom);
    out += " cs=" + std::to_string(t.race.cs_pair);
    out += " took_effect=" + std::to_string(t.flip_took_effect);
    out += " still_failed=" + std::to_string(t.flip_still_failed);
    out += "\n";
  }
  return out;
}

// Outcome of one generated scenario.
struct ScenarioResult {
  gen::GenTemplate tmpl = gen::GenTemplate::kOrder;
  bool diagnosed = false;
  bool degraded = false;
  bool root_cause_hit = false;  // buggy only: chain touches the trigger
  bool fuzzed = false;
  bool fuzz_found = false;
  int64_t flips_skipped = 0;
  // Invariant violations (empty = clean). Each entry names the scenario and
  // the broken property.
  std::vector<std::string> violations;
};

void AddViolation(ScenarioResult& r, const std::string& id, const char* what) {
  r.violations.push_back(id + ": " + what);
}

// Address ranges of the planted trigger global (racing_globals[0]) alone —
// the root-cause hit criterion. For kAbba this is the racy `registered`
// handshake, excluding the lock-guarded state that is legitimately racy but
// not the planted cause.
std::vector<std::pair<Addr, Addr>> TriggerRanges(const BugScenario& scenario) {
  if (scenario.truth.racing_globals.empty()) return {};
  BugScenario probe = scenario;
  probe.truth.racing_globals = {scenario.truth.racing_globals.front()};
  return RacingAddressRanges(probe);
}

void CheckBuggy(const gen::GeneratedScenario& g, const AitiaReport& report,
                ScenarioResult& out) {
  const BugScenario& s = g.scenario;
  out.diagnosed = report.diagnosed;
  out.degraded = report.degraded;
  out.flips_skipped = report.causality.flips_skipped;
  if (!report.diagnosed) {
    return;  // a miss (counts against the hit rate), not a violation
  }
  if (!report.lifs.failure.has_value() ||
      report.lifs.failure->type != s.truth.failure_type) {
    AddViolation(out, s.id, "reproduced failure type != planted symptom");
    return;
  }
  if (report.causality.schedules_executed + report.causality.flips_skipped !=
      static_cast<int64_t>(report.causality.tested.size())) {
    AddViolation(out, s.id, "schedules_executed + flips_skipped != tested races");
  }
  const auto ranges = RacingAddressRanges(s);
  const auto trigger = TriggerRanges(s);
  // Benign salted globals occupy one cell each.
  std::vector<Addr> benign_addrs;
  for (const std::string& name : g.benign_globals) {
    const Addr addr = s.image->FindGlobal(name);
    if (addr != 0) benign_addrs.push_back(addr);
  }
  bool trigger_hit = false;
  for (const ChainNode& node : report.causality.chain.nodes()) {
    for (const RacePair& race : node.races) {
      const Addr a = race.first.addr;
      const Addr b = race.second.addr;
      if (!InRanges(ranges, a) && !InRanges(ranges, b)) {
        AddViolation(out, s.id, "chain race outside the planted racing state");
      }
      if (InRanges(trigger, a) || InRanges(trigger, b)) {
        trigger_hit = true;
      }
      for (Addr benign : benign_addrs) {
        if (a == benign || b == benign) {
          AddViolation(out, s.id, "salted benign race appeared in the chain");
        }
      }
    }
  }
  out.root_cause_hit = trigger_hit && report.causality.chain.race_count() > 0;
}

void CheckBenign(const gen::GeneratedScenario& g, const AitiaReport& report,
                 ScenarioResult& out) {
  const BugScenario& s = g.scenario;
  out.diagnosed = report.diagnosed;
  if (report.lifs.reproduced || report.diagnosed) {
    AddViolation(out, s.id, "fabricated failure: benign scenario reproduced");
  }
  // The fuzzer must also come up clean: every attempt is a random
  // interleaving of a scenario with no failing interleaving.
  FuzzOptions fuzz;
  fuzz.max_attempts = kBenignFuzzAttempts;
  const FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload(), fuzz);
  out.fuzzed = true;
  out.fuzz_found = outcome.found;
  if (outcome.found) {
    AddViolation(out, s.id, "fabricated failure: benign scenario failed under fuzzing");
  }
}

ScenarioResult RunOne(const gen::GenOptions& options, int index) {
  ScenarioResult out;
  out.tmpl = options.tmpl;
  const gen::GeneratedScenario g = gen::GenerateScenario(options);
  const BugScenario& s = g.scenario;

  // Serializer round-trip: emit -> reparse -> emit must be byte-identical.
  const std::string ait = ScenarioToAit(s);
  StatusOr<BugScenario> reparsed = ScenarioFromAitText(ait, s.id + ".ait");
  if (!reparsed.ok()) {
    AddViolation(out, s.id, "generated scenario failed to re-parse");
    return out;
  }
  if (ScenarioToAit(*reparsed) != ait) {
    AddViolation(out, s.id, "serializer round-trip not byte-identical");
    return out;
  }

  // Diagnose the *reparsed* scenario: the sweep exercises exactly what a
  // .ait file on disk would, not generator-internal state.
  AitiaReport report = DiagnoseScenario(*reparsed, SweepOptions());
  if (g.expect_failure) {
    CheckBuggy(g, report, out);
  } else {
    CheckBenign(g, report, out);
    return out;
  }

  if (index % kDifferentialStride == 0) {
    // Differential pass: pre-filter off + 4 flip workers must not change
    // semantics (purity of triage, replay cache, and parallelism).
    AitiaOptions alt = SweepOptions();
    alt.set_prefilter(false);
    alt.set_jobs(4);
    alt.lifs.workers = 1;  // set_jobs raised it; LIFS stays serial per task
    AitiaReport other = DiagnoseScenario(*reparsed, alt);
    if (Semantics(*reparsed, other) != Semantics(*reparsed, report)) {
      AddViolation(out, s.id, "differential mismatch (prefilter off / 4 workers)");
    }
  }
  if (index % kFuzzStride == 0) {
    // Front-end pass: the random-preemption fuzzer should stumble onto the
    // planted bug, and the history-driven pipeline should diagnose it.
    FuzzOptions fuzz;
    fuzz.max_attempts = kFuzzAttempts;
    fuzz.first_seed = options.seed;
    const FuzzOutcome outcome = FuzzUntilFailure(s.MakeWorkload(), fuzz);
    out.fuzzed = true;
    out.fuzz_found = outcome.found;
    if (outcome.found) {
      // The planted bug may manifest as a different (still genuine) symptom
      // under random scheduling — e.g. the refcount race surfacing as a
      // use-after-free read when the getter loses by a wider margin. The
      // invariant is that whatever the fuzzer reported, the history-driven
      // pipeline reproduces and diagnoses it.
      AitiaReport from_history =
          DiagnoseHistory(*s.image, outcome.history, SweepOptions());
      if (!from_history.diagnosed) {
        AddViolation(out, s.id, "fuzz-found failure not diagnosed from history");
      }
    }
    // Not finding the bug within the attempt budget is fuzz-elusiveness,
    // not a correctness violation: LIFS exists precisely because random
    // search misses narrow windows.
  }
  return out;
}

struct TemplateStats {
  int generated = 0;
  int diagnosed = 0;
  int degraded = 0;
  int root_cause_hits = 0;
  int fuzzed = 0;
  int fuzz_found = 0;
  int64_t flips_skipped = 0;
  int violations = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int count = 1000;
  uint64_t seed = 9;
  size_t jobs = 0;
  std::string json_path;
  std::vector<gen::GenTemplate> templates;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--count=", 0) == 0) {
      count = std::atoi(arg.c_str() + 8);
      if (count <= 0) {
        std::fprintf(stderr, "aitia_sweep: --count must be positive\n");
        return kExitUsage;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<size_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--templates=", 0) == 0) {
      for (const std::string& name : SplitCommas(arg.substr(12))) {
        gen::GenTemplate t;
        if (!gen::ParseGenTemplate(name, &t)) {
          std::fprintf(stderr, "aitia_sweep: unknown template '%s'\n", name.c_str());
          return kExitUsage;
        }
        templates.push_back(t);
      }
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout);
    } else {
      std::fprintf(stderr, "aitia_sweep: unknown argument '%s'\n", arg.c_str());
      return Usage(stderr);
    }
  }

  const std::vector<gen::GenOptions> plan = gen::CorpusPlan(count, seed, templates);
  std::vector<ScenarioResult> results(plan.size());

  Stopwatch watch;
  {
    ThreadPool pool(jobs);
    for (size_t i = 0; i < plan.size(); ++i) {
      pool.Submit([&plan, &results, i] {
        results[i] = RunOne(plan[i], static_cast<int>(i));
      });
    }
    pool.Wait();
  }
  std::fprintf(stderr, "aitia_sweep: %d scenario(s) in %.1fs\n", count,
               watch.ElapsedSeconds());

  // Aggregate per template, in the canonical template order (deterministic
  // JSON regardless of worker scheduling).
  const std::vector<gen::GenTemplate>& order =
      templates.empty() ? gen::AllGenTemplates() : templates;
  std::vector<TemplateStats> stats(order.size());
  std::vector<std::string> violations;
  int buggy_total = 0;
  int buggy_hits = 0;
  for (const ScenarioResult& r : results) {
    size_t slot = 0;
    for (size_t t = 0; t < order.size(); ++t) {
      if (order[t] == r.tmpl) slot = t;
    }
    TemplateStats& ts = stats[slot];
    ++ts.generated;
    ts.diagnosed += r.diagnosed ? 1 : 0;
    ts.degraded += r.degraded ? 1 : 0;
    ts.root_cause_hits += r.root_cause_hit ? 1 : 0;
    ts.fuzzed += r.fuzzed ? 1 : 0;
    ts.fuzz_found += r.fuzz_found ? 1 : 0;
    ts.flips_skipped += r.flips_skipped;
    ts.violations += static_cast<int>(r.violations.size());
    if (r.tmpl != gen::GenTemplate::kBenign) {
      ++buggy_total;
      buggy_hits += r.root_cause_hit ? 1 : 0;
    }
    for (const std::string& v : r.violations) {
      violations.push_back(v);
    }
  }
  const double hit_rate = buggy_total == 0 ? 1.0 : double(buggy_hits) / buggy_total;
  const bool ok = violations.empty() && hit_rate >= 0.95;

  std::string json = "{\n";
  json += StrFormat("  \"count\": %d,\n  \"seed\": %llu,\n", count,
                    static_cast<unsigned long long>(seed));
  json += StrFormat("  \"root_cause_hit_rate\": %.4f,\n", hit_rate);
  json += StrFormat("  \"violation_count\": %d,\n", static_cast<int>(violations.size()));
  json += "  \"templates\": {\n";
  for (size_t t = 0; t < order.size(); ++t) {
    const TemplateStats& ts = stats[t];
    json += StrFormat(
        "    \"%s\": {\"generated\": %d, \"diagnosed\": %d, \"degraded\": %d, "
        "\"root_cause_hits\": %d, \"fuzzed\": %d, \"fuzz_found\": %d, "
        "\"flips_skipped\": %lld, \"violations\": %d}%s\n",
        gen::GenTemplateName(order[t]), ts.generated, ts.diagnosed, ts.degraded,
        ts.root_cause_hits, ts.fuzzed, ts.fuzz_found,
        static_cast<long long>(ts.flips_skipped), ts.violations,
        t + 1 < order.size() ? "," : "");
  }
  json += "  },\n";
  json += "  \"violations\": [\n";
  const size_t kMaxListed = 50;
  for (size_t i = 0; i < violations.size() && i < kMaxListed; ++i) {
    std::string escaped;
    for (char ch : violations[i]) {
      if (ch == '"' || ch == '\\') escaped += '\\';
      escaped += ch;
    }
    json += "    \"" + escaped + "\"";
    json += (i + 1 < std::min(violations.size(), kMaxListed)) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += StrFormat("  \"ok\": %s\n}\n", ok ? "true" : "false");

  std::fputs(json.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << json;
    if (!out) {
      std::fprintf(stderr, "aitia_sweep: cannot write %s\n", json_path.c_str());
      return kExitUsage;
    }
  }
  return ok ? kExitOk : kExitViolations;
}
