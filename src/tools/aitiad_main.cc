// aitiad — the long-running diagnosis daemon (DESIGN.md §11).
//
// Serves diagnosis requests as line-delimited JSON, one request object per
// line, exactly one response object per request:
//
//   $ aitiad --port 7433                     # TCP on 127.0.0.1:7433
//   $ aitiad --port 0                        # ephemeral port, printed on stdout
//   $ printf '%s\n' '{"verb":"diagnose","scenario":"fig-1"}' | aitiad --once
//
// Robustness story (the point of this binary):
//   - bounded sharded admission queue: floods get immediate "overloaded"
//     rejections with a retry_after_ms hint, never unbounded memory;
//   - per-request deadlines: a pathological scenario degrades *itself*,
//     not the worker it runs on;
//   - crash-isolated requests: malformed input, unknown ids, and pipeline
//     failures become structured error responses while the daemon serves on;
//   - graceful drain on SIGTERM/SIGINT (or the "shutdown" verb): stop
//     admitting, finish or deadline-out in-flight work, flush metrics,
//     exit 0;
//   - optional chaos mode (--chaos-*): seed-deterministic fault injection
//     inside every diagnosis, for load/soak drivers.
//
// Exit codes: 0 clean drain, 1 fatal runtime error (bind/listen), 2 usage.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/prometheus.h"
#include "src/svc/daemon.h"
#include "src/svc/http.h"
#include "src/tools/options.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace {

using namespace aitia;

// Metrics flight record. Registered with atexit and also written the moment
// the drain starts, so hard exits — chaos drivers SIGKILLing mid-drain, a
// cancel path that aborts — still leave a non-empty record behind instead of
// the zero-byte probe file. The graceful path overwrites it with the final
// snapshot.
std::string g_metrics_json_path;

void FlushMetricsJson() {
  if (g_metrics_json_path.empty()) {
    return;
  }
  std::ofstream out(g_metrics_json_path, std::ios::binary | std::ios::trunc);
  out << svc::Daemon::MetricsJson() << "\n";
  out.flush();
}

// Signal handling: the handler only writes one byte to a self-pipe; the
// accept loop polls it alongside the listen socket, so a SIGTERM mid-accept
// wakes the drain path without any async-signal-unsafe work.
int g_signal_pipe[2] = {-1, -1};
std::atomic<int> g_signal{0};

void OnSignal(int sig) {
  g_signal.store(sig);
  const char byte = 1;
  // Best-effort: if the pipe is full a wakeup is already pending.
  (void)!write(g_signal_pipe[1], &byte, 1);
}

int Usage(FILE* to) {
  std::fprintf(to,
               "usage: aitiad (--port N | --once) [options]\n"
               "\n"
               "  --port N            listen on 127.0.0.1:N (0 = ephemeral, printed on stdout)\n"
               "  --once              serve line-delimited JSON requests on stdin, respond on\n"
               "                      stdout, drain and exit 0 at EOF (no networking)\n"
               "  --http-port N       HTTP scrape plane on 127.0.0.1:N (0 = ephemeral,\n"
               "                      printed on stdout): /metrics /healthz /statusz\n"
               "  --workers N         diagnosis worker threads (default 2)\n"
               "  --queue-shards N    admission queue shards (default 4)\n"
               "  --shard-capacity N  queued requests per shard (default 8)\n"
               "  --cache-capacity N  result-cache entries, 0 disables (default 128)\n"
               "  --deadline-ms N     default per-request budget (default 20000)\n"
               "  --drain-grace-ms N  drain wait before cancelling in-flight work (default 5000)\n"
               "  --retry-after-ms N  hint attached to overloaded rejections (default 50)\n"
               "  --metrics-json F    write the final metrics snapshot to F on exit\n"
               "  --chaos-seed S      fault-injection seed (enables nothing by itself)\n"
               "  --chaos-drop P      per-mille dropped preemption points\n"
               "  --chaos-wakeup P    per-mille spurious wakeups (per step)\n"
               "  --chaos-abort P     per-mille aborted runs\n"
               "%s"
               "\n"
               "protocol: one JSON object per line; see README 'aitiad request protocol'.\n",
               aitia::tools::SharedFlagsHelp());
  return to == stdout ? 0 : 2;
}

// One client connection: a reader thread that admits every received line and
// a shared writer guarded by a mutex (responses complete out of order).
struct Connection {
  int fd = -1;
  std::thread reader;
  std::mutex write_mu;
  std::atomic<int64_t> pending{0};  // admitted requests awaiting a response

  void WriteLine(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    std::string out = line;
    out += '\n';
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        return;  // client went away; the response is undeliverable, drop it
      }
      off += static_cast<size_t>(n);
    }
  }
};

struct ServerState {
  svc::Daemon* daemon = nullptr;
  size_t max_line = 1 << 20;
  std::mutex conns_mu;
  std::vector<std::unique_ptr<Connection>> conns;
};

void ServeConnection(ServerState* state, Connection* conn) {
  std::string buffer;
  char chunk[4096];
  bool overlong = false;  // discarding an oversized line until its newline
  for (;;) {
    const ssize_t n = recv(conn->fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // EOF or error (including shutdown() during exit)
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (;;) {
      const size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) {
        break;
      }
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (overlong) {
        overlong = false;  // the tail of a line we already rejected
        continue;
      }
      if (line.empty()) {
        continue;
      }
      conn->pending.fetch_add(1);
      // Terminal responses and stream frames share the connection's
      // mutex-guarded writer, and the daemon flushes every frame before the
      // terminal — a mid-stream disconnect just drops writes on the floor.
      state->daemon->Submit(
          std::move(line),
          [conn](std::string response) {
            conn->WriteLine(response);
            conn->pending.fetch_sub(1);
          },
          [conn](std::string frame) { conn->WriteLine(frame); });
    }
    buffer.erase(0, start);
    if (buffer.size() > state->max_line) {
      // A line longer than the request limit: reject once, then discard
      // bytes until its terminating newline instead of buffering them.
      conn->WriteLine(
          "{\"id\":\"\",\"status\":\"invalid_argument\",\"error\":\"request line too long\"}");
      buffer.clear();
      overlong = true;
    }
  }
  // Give in-flight requests from this connection a moment to flush their
  // responses before the fd is closed under them.
  while (conn->pending.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  close(conn->fd);
}

int RunOnce(svc::Daemon& daemon) {
  std::string line;
  // Frames interleave with terminals on stdout; both are full lines, and
  // HandleLine only returns after every frame of its request was printed.
  std::mutex stdout_mu;
  const auto print_line = [&stdout_mu](const std::string& text) {
    std::lock_guard<std::mutex> lock(stdout_mu);
    std::printf("%s\n", text.c_str());
    std::fflush(stdout);
  };
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    print_line(daemon.HandleLine(line, print_line));
    if (daemon.shutdown_requested()) {
      break;
    }
  }
  daemon.Drain();
  return 0;
}

int RunServer(svc::Daemon& daemon, int port, int http_port, size_t max_line) {
  if (pipe(g_signal_pipe) != 0) {
    std::perror("aitiad: pipe");
    return 1;
  }
  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("aitiad: socket");
    return 1;
  }
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(listen_fd, 64) != 0) {
    std::perror("aitiad: bind/listen");
    close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof addr;
  getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  // The parseable startup line drivers wait for (must be first on stdout).
  std::printf("aitiad: listening on 127.0.0.1:%d\n", ntohs(addr.sin_port));
  std::fflush(stdout);

  // Scrape plane (optional): read-only views of the registry and the
  // daemon's health; it keeps serving through the drain so a final scrape
  // can capture the shutdown, and stops after it.
  std::unique_ptr<svc::HttpServer> http;
  if (http_port >= 0) {
    svc::HttpServerOptions ho;
    ho.port = http_port;
    ho.metrics = [] {
      return obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot());
    };
    ho.statusz = [&daemon] { return daemon.StatusJson(); };
    ho.healthy = [&daemon] { return !daemon.draining(); };
    http = std::make_unique<svc::HttpServer>(ho);
    if (const Status status = http->Start(); !status.ok()) {
      std::fprintf(stderr, "aitiad: %s\n", status.ToString().c_str());
      close(listen_fd);
      return 1;
    }
    std::printf("aitiad: http on 127.0.0.1:%d\n", http->port());
    std::fflush(stdout);
  }

  ServerState state;
  state.daemon = &daemon;
  state.max_line = max_line;

  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    const int rc = poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        if (g_signal.load() != 0 || daemon.shutdown_requested()) {
          break;
        }
        continue;
      }
      std::perror("aitiad: poll");
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || g_signal.load() != 0 ||
        daemon.shutdown_requested()) {
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int client = accept(listen_fd, nullptr, nullptr);
      if (client < 0) {
        continue;
      }
      auto conn = std::make_unique<Connection>();
      conn->fd = client;
      Connection* raw = conn.get();
      conn->reader = std::thread([&state, raw] { ServeConnection(&state, raw); });
      std::lock_guard<std::mutex> lock(state.conns_mu);
      state.conns.push_back(std::move(conn));
    }
  }

  // Graceful drain: stop accepting, let admitted work finish (or deadline
  // out after the grace period), then cut the remaining connections loose.
  const int sig = g_signal.load();
  AITIA_LOG(kInfo) << "aitiad: "
                   << (sig != 0 ? strsignal(sig) : "shutdown request")
                   << " received, draining";
  close(listen_fd);
  // Provisional flight record before the drain: if the hard-cancel path
  // wedges or the process is killed mid-drain, the record is non-empty.
  FlushMetricsJson();
  daemon.Drain();
  if (http != nullptr) {
    http->Stop();
  }
  {
    std::lock_guard<std::mutex> lock(state.conns_mu);
    for (auto& conn : state.conns) {
      shutdown(conn->fd, SHUT_RDWR);  // unblocks the reader threads
    }
  }
  {
    std::lock_guard<std::mutex> lock(state.conns_mu);
    for (auto& conn : state.conns) {
      if (conn->reader.joinable()) {
        conn->reader.join();
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  InitLogLevelFromEnv();

  int port = -1;
  int http_port = -1;
  bool once = false;
  std::string metrics_json_path;
  svc::DaemonOptions options;
  aitia::tools::SharedFlags shared;

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "aitiad: %s needs a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };
  auto parse_u64 = [](const char* text, uint64_t& out) -> bool {
    if (text == nullptr || *text == '\0' ||
        std::string(text).find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    out = std::strtoull(text, nullptr, 10);
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t value = 0;
    const aitia::tools::ParseResult pr =
        aitia::tools::ParseSharedFlag("aitiad", argc, argv, i, shared);
    if (pr == aitia::tools::ParseResult::kError) {
      return Usage(stderr);
    }
    if (pr == aitia::tools::ParseResult::kParsed) {
      continue;
    }
    if (arg == "--once") {
      once = true;
    } else if (arg == "--port") {
      if (!parse_u64(need_value(i, "--port"), value) || value > 65535) {
        return Usage(stderr);
      }
      port = static_cast<int>(value);
    } else if (arg == "--http-port") {
      if (!parse_u64(need_value(i, "--http-port"), value) || value > 65535) {
        return Usage(stderr);
      }
      http_port = static_cast<int>(value);
    } else if (arg == "--workers") {
      if (!parse_u64(need_value(i, "--workers"), value)) return Usage(stderr);
      options.workers = value;
    } else if (arg == "--queue-shards") {
      if (!parse_u64(need_value(i, "--queue-shards"), value)) return Usage(stderr);
      options.queue_shards = value;
    } else if (arg == "--shard-capacity") {
      if (!parse_u64(need_value(i, "--shard-capacity"), value)) return Usage(stderr);
      options.shard_capacity = value;
    } else if (arg == "--cache-capacity") {
      if (!parse_u64(need_value(i, "--cache-capacity"), value)) return Usage(stderr);
      options.cache_capacity = value;
    } else if (arg == "--deadline-ms") {
      if (!parse_u64(need_value(i, "--deadline-ms"), value)) return Usage(stderr);
      options.default_deadline_ms = static_cast<int64_t>(value);
    } else if (arg == "--drain-grace-ms") {
      if (!parse_u64(need_value(i, "--drain-grace-ms"), value)) return Usage(stderr);
      options.drain_grace_ms = static_cast<int64_t>(value);
    } else if (arg == "--retry-after-ms") {
      if (!parse_u64(need_value(i, "--retry-after-ms"), value)) return Usage(stderr);
      options.retry_after_ms = static_cast<int64_t>(value);
    } else if (arg == "--metrics-json") {
      const char* v = need_value(i, "--metrics-json");
      if (v == nullptr) return Usage(stderr);
      metrics_json_path = v;
    } else if (arg == "--chaos-seed") {
      if (!parse_u64(need_value(i, "--chaos-seed"), value)) return Usage(stderr);
      options.faults.seed = value;
    } else if (arg == "--chaos-drop") {
      if (!parse_u64(need_value(i, "--chaos-drop"), value)) return Usage(stderr);
      options.faults.drop_preemption_point = static_cast<uint32_t>(value);
    } else if (arg == "--chaos-wakeup") {
      if (!parse_u64(need_value(i, "--chaos-wakeup"), value)) return Usage(stderr);
      options.faults.spurious_wakeup = static_cast<uint32_t>(value);
    } else if (arg == "--chaos-abort") {
      if (!parse_u64(need_value(i, "--chaos-abort"), value)) return Usage(stderr);
      options.faults.abort_run = static_cast<uint32_t>(value);
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout);
    } else {
      std::fprintf(stderr, "aitiad: unknown flag '%s'\n", arg.c_str());
      return Usage(stderr);
    }
  }
  if (once == (port >= 0)) {
    std::fprintf(stderr, "aitiad: pass exactly one of --port or --once\n");
    return Usage(stderr);
  }
  if (shared.jobs_set) {
    options.jobs = shared.jobs;
  }
  options.replay_cache = shared.replay_cache;
  options.triage_stages = aitia::tools::ResolveTriagePipeline(shared);

  // Probe the metrics destination upfront: an unwritable path must fail at
  // startup, not swallow the flight record at exit. The probe writes a
  // provisional (near-empty) snapshot rather than zero bytes, and atexit
  // re-flushes on *every* exit path — hard-cancel exits included — so chaos
  // flight records are never empty.
  if (!metrics_json_path.empty()) {
    std::ofstream probe(metrics_json_path, std::ios::binary | std::ios::trunc);
    if (!probe || !(probe << svc::Daemon::MetricsJson() << "\n").flush()) {
      std::fprintf(stderr, "aitiad: cannot open metrics output file: %s\n",
                   metrics_json_path.c_str());
      return 2;
    }
    g_metrics_json_path = metrics_json_path;
    std::atexit(FlushMetricsJson);
  }

  int exit_code;
  {
    svc::Daemon daemon(options);
    exit_code =
        once ? RunOnce(daemon) : RunServer(daemon, port, http_port, options.max_request_bytes);
    daemon.Drain();
  }
  if (!metrics_json_path.empty()) {
    std::ofstream out(metrics_json_path, std::ios::binary | std::ios::trunc);
    out << svc::Daemon::MetricsJson() << "\n";
    if (!out.flush()) {
      std::fprintf(stderr, "aitiad: failed writing %s\n", metrics_json_path.c_str());
      return 1;
    }
  }
  return exit_code;
}
