// aitiad_loadgen — load / chaos driver for the aitiad daemon.
//
// Replays the bug corpus against a running daemon at high concurrency and
// asserts the robustness contract from DESIGN.md §11:
//   - the daemon never dies: every connection stays serviceable end to end;
//   - every request gets exactly one terminal response, with its id echoed;
//   - floods are shed deterministically: "overloaded" is a valid terminal
//     answer and is retried here, never a hang;
//   - the admission queue stays bounded: svc.queue_depth_peak from the final
//     metrics snapshot must not exceed --expect-bounded-queue;
//   - svc.duplicate_responses stays 0.
//
// Prints a one-line summary JSON on stdout and exits 0 iff all checks pass.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/bugs/registry.h"
#include "src/svc/jsonv.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace {

using namespace aitia;

struct Config {
  std::string host = "127.0.0.1";
  int port = -1;
  size_t clients = 8;
  size_t rounds = 2;
  std::vector<std::string> scenarios;  // empty = full corpus
  int64_t hold_ms = 0;
  int64_t deadline_ms = 0;  // 0 = daemon default
  size_t jobs = 0;          // 0 = daemon default
  size_t max_retries = 50;
  int64_t retry_sleep_ms = 20;
  int64_t expect_bounded_queue = 0;  // 0 = skip the peak-depth check
  double timeout_seconds = 180.0;
  bool shutdown_after = false;
  // Checkpoint/prefix-replay contract probe against the final metrics
  // snapshot: "used" requires ckpt.hits > 0 and ckpt.replayed_steps > 0
  // (the replay cache fires inside diagnoses even when the result cache
  // absorbs the repeats); "unused" requires both to be 0 (daemon started
  // with --no-replay-cache, or chaos mode — faults bypass the replay cache
  // the same way they bypass the result cache). Empty skips the check.
  std::string expect_replay_cache;
};

// Totals across all clients.
struct Tally {
  std::atomic<int64_t> sent{0};
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> degraded{0};
  std::atomic<int64_t> not_reproduced{0};
  std::atomic<int64_t> overloaded{0};        // retried rejections
  std::atomic<int64_t> retries_exhausted{0};
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> protocol_errors{0};   // unexpected status / id mismatch
  std::atomic<int64_t> transport_errors{0};  // connect/send/recv failures
};

int Usage(FILE* to) {
  std::fprintf(to,
               "usage: aitiad_loadgen --port N [options]\n"
               "  --host H                 daemon host (default 127.0.0.1)\n"
               "  --clients N              concurrent client connections (default 8)\n"
               "  --rounds N               corpus replays per client (default 2)\n"
               "  --scenarios a,b,c        corpus ids to replay (default: all)\n"
               "  --hold-ms N              ask each diagnosis to hold its worker N ms\n"
               "  --deadline-ms N          per-request budget (0 = daemon default)\n"
               "  --jobs N                 pipeline workers per diagnosis\n"
               "  --max-retries N          retries per request on 'overloaded' (default 50)\n"
               "  --retry-sleep-ms N       floor between retries (default 20)\n"
               "  --expect-bounded-queue N fail if svc.queue_depth_peak exceeds N\n"
               "  --expect-replay-cache M  used|unused: assert the ckpt.* replay-cache\n"
               "                           metrics against the daemon's final snapshot\n"
               "  --timeout N              whole-run budget in seconds (default 180)\n"
               "  --shutdown               send the shutdown verb when done\n");
  return to == stdout ? 0 : 2;
}

// A blocking line-oriented client connection.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) {
      close(fd_);
    }
  }

  bool Connect(const std::string& host, int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return false;
    }
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return false;
    }
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  bool SendLine(const std::string& line) {
    std::string out = line;
    out += '\n';
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool RecvLine(std::string& line) {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // One round trip; empty string on transport failure.
  std::string Call(const std::string& request) {
    std::string response;
    if (!SendLine(request) || !RecvLine(response)) {
      return "";
    }
    return response;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string Field(const svc::JsonValue& doc, const char* key) {
  const svc::JsonValue* v = doc.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : "";
}

void RunClient(const Config& config, size_t client_index,
               const std::vector<std::string>& ids, Tally* tally,
               const std::atomic<bool>* give_up) {
  Client client;
  if (!client.Connect(config.host, config.port)) {
    tally->transport_errors.fetch_add(1);
    return;
  }
  for (size_t round = 0; round < config.rounds; ++round) {
    for (size_t s = 0; s < ids.size(); ++s) {
      if (give_up->load()) {
        return;
      }
      bool answered = false;
      for (size_t attempt = 0; attempt <= config.max_retries; ++attempt) {
        const std::string id = StrFormat("c%zu-r%zu-s%zu-a%zu", client_index,
                                         round, s, attempt);
        std::string request = StrFormat(
            "{\"verb\":\"diagnose\",\"id\":\"%s\",\"scenario\":\"%s\"",
            id.c_str(), ids[s].c_str());
        if (config.hold_ms > 0) {
          request += StrFormat(",\"hold_ms\":%lld",
                               static_cast<long long>(config.hold_ms));
        }
        if (config.deadline_ms > 0) {
          request += StrFormat(",\"deadline_ms\":%lld",
                               static_cast<long long>(config.deadline_ms));
        }
        if (config.jobs > 0) {
          request += StrFormat(",\"jobs\":%zu", config.jobs);
        }
        request += "}";

        tally->sent.fetch_add(1);
        const std::string raw = client.Call(request);
        if (raw.empty()) {
          tally->transport_errors.fetch_add(1);
          return;  // connection is gone; this client is done
        }
        auto parsed = svc::ParseJson(raw);
        if (!parsed.ok()) {
          tally->protocol_errors.fetch_add(1);
          answered = true;
          break;
        }
        const svc::JsonValue doc = std::move(parsed).value();
        // Exactly-one-response check: synchronous framing means the next
        // line on this connection must answer the id we just sent.
        if (Field(doc, "id") != id) {
          tally->protocol_errors.fetch_add(1);
          answered = true;
          break;
        }
        const std::string status = Field(doc, "status");
        if (status == "overloaded") {
          tally->overloaded.fetch_add(1);
          int64_t sleep_ms = config.retry_sleep_ms;
          const svc::JsonValue* hint = doc.Find("retry_after_ms");
          if (hint != nullptr && hint->AsInt() > sleep_ms) {
            sleep_ms = hint->AsInt();
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
          continue;
        }
        answered = true;
        if (status == "ok") {
          tally->ok.fetch_add(1);
        } else if (status == "degraded") {
          tally->degraded.fetch_add(1);
        } else if (status == "not_reproduced") {
          tally->not_reproduced.fetch_add(1);
        } else {
          tally->protocol_errors.fetch_add(1);
          break;
        }
        if (Field(doc, "cache") == "hit") {
          tally->cache_hits.fetch_add(1);
        }
        break;
      }
      if (!answered) {
        tally->retries_exhausted.fetch_add(1);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  auto need_value = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") return Usage(stdout);
    if (arg == "--shutdown") {
      config.shutdown_after = true;
      continue;
    }
    if ((v = need_value(i)) == nullptr) {
      std::fprintf(stderr, "aitiad_loadgen: %s needs a value\n", arg.c_str());
      return Usage(stderr);
    }
    if (arg == "--host") {
      config.host = v;
    } else if (arg == "--port") {
      config.port = std::atoi(v);
    } else if (arg == "--clients") {
      config.clients = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--rounds") {
      config.rounds = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--scenarios") {
      std::string rest = v;
      size_t pos = 0;
      while (pos <= rest.size()) {
        const size_t comma = rest.find(',', pos);
        const size_t end = comma == std::string::npos ? rest.size() : comma;
        if (end > pos) config.scenarios.push_back(rest.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--hold-ms") {
      config.hold_ms = std::atoll(v);
    } else if (arg == "--deadline-ms") {
      config.deadline_ms = std::atoll(v);
    } else if (arg == "--jobs") {
      config.jobs = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--max-retries") {
      config.max_retries = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--retry-sleep-ms") {
      config.retry_sleep_ms = std::atoll(v);
    } else if (arg == "--expect-bounded-queue") {
      config.expect_bounded_queue = std::atoll(v);
    } else if (arg == "--expect-replay-cache") {
      config.expect_replay_cache = v;
      if (config.expect_replay_cache != "used" && config.expect_replay_cache != "unused") {
        std::fprintf(stderr, "aitiad_loadgen: --expect-replay-cache expects used|unused\n");
        return Usage(stderr);
      }
    } else if (arg == "--timeout") {
      config.timeout_seconds = std::atof(v);
    } else {
      std::fprintf(stderr, "aitiad_loadgen: unknown flag '%s'\n", arg.c_str());
      return Usage(stderr);
    }
  }
  if (config.port <= 0) {
    std::fprintf(stderr, "aitiad_loadgen: --port is required\n");
    return Usage(stderr);
  }
  std::vector<std::string> ids = config.scenarios;
  if (ids.empty()) {
    for (const ScenarioEntry& entry : AllScenarios()) {
      ids.emplace_back(entry.id);
    }
  }

  Tally tally;
  std::atomic<bool> give_up{false};
  Stopwatch clock;
  std::vector<std::thread> workers;
  workers.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) {
    workers.emplace_back(RunClient, std::cref(config), c, std::cref(ids), &tally,
                         &give_up);
  }
  // Watchdog: a wedged daemon (the failure this driver exists to catch) must
  // fail the run, not hang it.
  std::thread watchdog([&] {
    while (!give_up.load() && clock.ElapsedSeconds() < config.timeout_seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    give_up.store(true);
  });
  for (std::thread& t : workers) {
    t.join();
  }
  const bool timed_out = clock.ElapsedSeconds() >= config.timeout_seconds;
  give_up.store(true);
  watchdog.join();

  // Final health probe on a fresh connection: the daemon must still answer,
  // and its own books must agree with the contract.
  int64_t queue_depth_peak = -1;
  int64_t duplicate_responses = -1;
  int64_t ckpt_hits = 0;
  int64_t ckpt_replayed_steps = 0;
  bool daemon_alive = false;
  {
    Client probe;
    if (probe.Connect(config.host, config.port)) {
      const std::string raw =
          probe.Call("{\"verb\":\"metrics\",\"id\":\"loadgen-metrics\"}");
      auto parsed = svc::ParseJson(raw);
      if (parsed.ok()) {
        const svc::JsonValue doc = std::move(parsed).value();
        daemon_alive = Field(doc, "status") == "ok";
        const svc::JsonValue* metrics = doc.Find("metrics");
        const svc::JsonValue* s =
            metrics != nullptr ? metrics->Find("svc") : nullptr;
        if (s != nullptr) {
          const svc::JsonValue* peak = s->Find("queue_depth_peak");
          if (peak != nullptr) queue_depth_peak = peak->AsInt();
          const svc::JsonValue* dup = s->Find("duplicate_responses");
          if (dup != nullptr) duplicate_responses = dup->AsInt();
        }
        // ckpt.* is absent entirely when no diagnosis ever touched a store
        // (e.g. --no-replay-cache from process start); absent counts as 0.
        const svc::JsonValue* ckpt =
            metrics != nullptr ? metrics->Find("ckpt") : nullptr;
        if (ckpt != nullptr) {
          const svc::JsonValue* hits = ckpt->Find("hits");
          if (hits != nullptr) ckpt_hits = hits->AsInt();
          const svc::JsonValue* replayed = ckpt->Find("replayed_steps");
          if (replayed != nullptr) ckpt_replayed_steps = replayed->AsInt();
        }
      }
      if (config.shutdown_after) {
        (void)probe.Call("{\"verb\":\"shutdown\",\"id\":\"loadgen-shutdown\"}");
      }
    }
  }

  const int64_t answered = tally.ok.load() + tally.degraded.load() +
                           tally.not_reproduced.load();
  bool pass = daemon_alive && !timed_out && tally.protocol_errors.load() == 0 &&
              tally.transport_errors.load() == 0 && duplicate_responses == 0 &&
              answered > 0;
  if (config.expect_bounded_queue > 0 &&
      queue_depth_peak > config.expect_bounded_queue) {
    pass = false;
  }
  // Replay-cache composition contract: the result cache absorbs repeat
  // requests while the replay cache still fires inside the cache-miss
  // diagnoses ("used"); chaos and --no-replay-cache leave it cold ("unused").
  if (config.expect_replay_cache == "used" &&
      (ckpt_hits <= 0 || ckpt_replayed_steps <= 0)) {
    pass = false;
  }
  if (config.expect_replay_cache == "unused" &&
      (ckpt_hits != 0 || ckpt_replayed_steps != 0)) {
    pass = false;
  }

  std::printf(
      "{\"pass\":%s,\"daemon_alive\":%s,\"timed_out\":%s,"
      "\"elapsed_seconds\":%.2f,\"clients\":%zu,\"rounds\":%zu,"
      "\"scenario_count\":%zu,\"sent\":%lld,\"answered\":%lld,\"ok\":%lld,"
      "\"degraded\":%lld,\"not_reproduced\":%lld,\"overloaded_retried\":%lld,"
      "\"retries_exhausted\":%lld,\"cache_hits\":%lld,"
      "\"protocol_errors\":%lld,\"transport_errors\":%lld,"
      "\"queue_depth_peak\":%lld,\"duplicate_responses\":%lld,"
      "\"ckpt_hits\":%lld,\"ckpt_replayed_steps\":%lld}\n",
      pass ? "true" : "false", daemon_alive ? "true" : "false",
      timed_out ? "true" : "false", clock.ElapsedSeconds(), config.clients,
      config.rounds, ids.size(), static_cast<long long>(tally.sent.load()),
      static_cast<long long>(answered), static_cast<long long>(tally.ok.load()),
      static_cast<long long>(tally.degraded.load()),
      static_cast<long long>(tally.not_reproduced.load()),
      static_cast<long long>(tally.overloaded.load()),
      static_cast<long long>(tally.retries_exhausted.load()),
      static_cast<long long>(tally.cache_hits.load()),
      static_cast<long long>(tally.protocol_errors.load()),
      static_cast<long long>(tally.transport_errors.load()),
      static_cast<long long>(queue_depth_peak),
      static_cast<long long>(duplicate_responses),
      static_cast<long long>(ckpt_hits),
      static_cast<long long>(ckpt_replayed_steps));
  return pass ? 0 : 1;
}
