#include "src/tools/sarif.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/chain.h"
#include "src/ingest/parser.h"
#include "src/ingest/serialize.h"
#include "src/util/strings.h"

namespace aitia {
namespace tools {
namespace {

// Instruction -> .ait line provenance, recovered by round-tripping the
// scenario through its canonical serialization: ScenarioToAit emits the
// document, ParseTraceText hands back SourcePos for every instruction, and
// pc is the index among a program's non-label items (labels are pseudo-ops
// that assemble to nothing). This works for *any* scenario — hand-built
// corpus entries included — because serialization is total.
std::map<std::pair<std::string, int>, int> BuildLineMap(const TraceDoc& doc) {
  std::map<std::pair<std::string, int>, int> lines;
  for (const AitProgram& prog : doc.programs) {
    int pc = 0;
    for (const AitInstr& item : prog.items) {
      if (item.info != nullptr && item.info->is_label) {
        continue;
      }
      lines[{prog.name, pc++}] = item.pos.line;
    }
  }
  return lines;
}

// 1-based .ait line of an instruction; 0 when unresolvable (no failure
// point, e.g. a leak, or a program id outside the serialized image).
int LineOf(const KernelImage& image, const std::map<std::pair<std::string, int>, int>& lines,
           InstrAddr at) {
  if (at.prog == kNoProgram || static_cast<size_t>(at.prog) >= image.programs().size()) {
    return 0;
  }
  const auto it = lines.find({image.program(at.prog).name, static_cast<int>(at.pc)});
  return it == lines.end() ? 0 : it->second;
}

// The `line`-th (1-based) line of `text`, for region snippets.
std::string LineText(const std::string& text, int line) {
  size_t begin = 0;
  for (int n = 1; n < line; ++n) {
    const size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) {
      return "";
    }
    begin = nl + 1;
  }
  const size_t end = text.find('\n', begin);
  return text.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
}

// {"physicalLocation": {...}} — the shared core of locations and
// threadFlowLocations. Line 0 (unresolvable) pins to line 1 with no snippet.
std::string PhysicalLocation(const std::string& uri, int line, const std::string& ait_text) {
  std::string region = StrFormat("{\"startLine\":%d", line > 0 ? line : 1);
  if (line > 0) {
    const std::string snippet = LineText(ait_text, line);
    if (!snippet.empty()) {
      region += StrFormat(",\"snippet\":{\"text\":\"%s\"}", JsonEscape(snippet).c_str());
    }
  }
  region += "}";
  return StrFormat(
      "{\"artifactLocation\":{\"uri\":\"%s\",\"index\":0},\"region\":%s}",
      JsonEscape(uri).c_str(), region.c_str());
}

std::string LocationWithMessage(const std::string& uri, int line, const std::string& ait_text,
                                const std::string& message) {
  std::string out = "{\"physicalLocation\":" + PhysicalLocation(uri, line, ait_text);
  if (!message.empty()) {
    out += StrFormat(",\"message\":{\"text\":\"%s\"}", JsonEscape(message).c_str());
  }
  return out + "}";
}

std::string ThreadFlowLocation(const std::string& uri, int line, const std::string& ait_text,
                               const std::string& message, int order) {
  return StrFormat("{\"executionOrder\":%d,\"location\":%s}", order,
                   LocationWithMessage(uri, line, ait_text, message).c_str());
}

std::string JoinJson(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += parts[i];
  }
  return out;
}

}  // namespace

std::string SarifRuleId(FailureType type) {
  const char* token = "none";
  switch (type) {
    case FailureType::kNone: token = "none"; break;
    case FailureType::kNullDeref: token = "null-deref"; break;
    case FailureType::kGeneralProtection: token = "general-protection"; break;
    case FailureType::kUseAfterFreeRead: token = "use-after-free-read"; break;
    case FailureType::kUseAfterFreeWrite: token = "use-after-free-write"; break;
    case FailureType::kOutOfBounds: token = "slab-out-of-bounds"; break;
    case FailureType::kDoubleFree: token = "double-free"; break;
    case FailureType::kBadFree: token = "invalid-free"; break;
    case FailureType::kAssertViolation: token = "assert-violation"; break;
    case FailureType::kWarning: token = "warning"; break;
    case FailureType::kRefcountWarning: token = "refcount-warning"; break;
    case FailureType::kMemoryLeak: token = "memory-leak"; break;
    case FailureType::kDeadlock: token = "deadlock"; break;
    case FailureType::kWatchdog: token = "watchdog"; break;
  }
  return std::string("aitia/") + token;
}

std::string ReportToSarif(const BugScenario& scenario, const AitiaReport& report) {
  const KernelImage& image = *scenario.image;
  const std::string ait_text = ScenarioToAit(scenario);
  const std::string uri = (scenario.id.empty() ? std::string("scenario") : scenario.id) + ".ait";

  // The canonical serialization always reparses (golden-tested round-trip);
  // degrade to an empty line map rather than aborting if it ever does not.
  std::map<std::pair<std::string, int>, int> lines;
  if (StatusOr<TraceDoc> doc = ParseTraceText(ait_text, uri); doc.ok()) {
    lines = BuildLineMap(*doc);
  }
  const auto line_of = [&](InstrAddr at) { return LineOf(image, lines, at); };

  std::vector<std::string> rules;
  std::vector<std::string> results;
  if (report.diagnosed && report.lifs.failure.has_value()) {
    const Failure& failure = *report.lifs.failure;
    const std::string rule_id = SarifRuleId(failure.type);
    rules.push_back(StrFormat(
        "{\"id\":\"%s\",\"name\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},"
        "\"defaultConfiguration\":{\"level\":\"error\"}}",
        JsonEscape(rule_id).c_str(), JsonEscape(rule_id).c_str(),
        JsonEscape(FailureTypeName(failure.type)).c_str()));

    const CausalityResult& ca = report.causality;

    // codeFlows[0]: the causality chain, cause first, ending at the failure.
    std::vector<std::string> flows;
    {
      std::vector<std::string> steps;
      int order = 0;
      for (const ChainNode& node : ca.chain.nodes()) {
        for (const RacePair& race : node.races) {
          const std::string label = RaceLabel(image, race);
          steps.push_back(ThreadFlowLocation(
              uri, line_of(race.first.di.at), ait_text,
              label + ": first access " + image.Describe(race.first.di.at), order++));
          steps.push_back(ThreadFlowLocation(
              uri, line_of(race.second.di.at), ait_text,
              label + ": second access " + image.Describe(race.second.di.at), order++));
        }
      }
      steps.push_back(ThreadFlowLocation(uri, line_of(failure.at), ait_text,
                                         "failure: " + failure.ToString(), order++));
      flows.push_back(StrFormat(
          "{\"message\":{\"text\":\"causality chain: %s\"},"
          "\"threadFlows\":[{\"locations\":[%s]}]}",
          JsonEscape(ca.chain.Render(image)).c_str(), JoinJson(steps).c_str()));
    }

    // One codeFlow per root-cause race: the flip/disappearance evidence that
    // earned the verdict.
    for (size_t idx : ca.root_cause_indices) {
      const TestedRace& t = ca.tested[idx];
      const std::string label = RaceLabel(image, t.race);
      std::vector<std::string> steps;
      int order = 0;
      steps.push_back(ThreadFlowLocation(uri, line_of(t.race.first.di.at), ait_text,
                                         label + ": observed order", order++));
      std::string evidence = t.flip_skipped
                                 ? "flip discharged statically (" + t.triage_stage + ")"
                                 : std::string("flip test: ") +
                                       (t.flip_took_effect ? "order reversed" : "not enforceable") +
                                       "; failure " +
                                       (t.flip_still_failed ? "persisted" : "disappeared");
      steps.push_back(ThreadFlowLocation(uri, line_of(t.race.second.di.at), ait_text,
                                         label + ": " + evidence, order++));
      for (size_t gone : t.disappeared) {
        steps.push_back(ThreadFlowLocation(
            uri, line_of(ca.tested[gone].race.second.di.at), ait_text,
            RaceLabel(image, ca.tested[gone].race) + ": disappeared in the flipped run",
            order++));
      }
      flows.push_back(StrFormat(
          "{\"message\":{\"text\":\"%s: %s\"},\"threadFlows\":[{\"locations\":[%s]}]}",
          JsonEscape(label).c_str(), JsonEscape(RaceVerdictName(t.verdict)).c_str(),
          JoinJson(steps).c_str()));
    }

    // Per-race verdicts ride in the property bag (SARIF has no native slot
    // for "tested but benign" evidence).
    std::vector<std::string> race_props;
    for (const TestedRace& t : ca.tested) {
      race_props.push_back(StrFormat(
          "{\"label\":\"%s\",\"verdict\":\"%s\",\"phantom\":%s,"
          "\"critical_section\":%s,\"flip_skipped\":%s}",
          JsonEscape(RaceLabel(image, t.race)).c_str(), RaceVerdictName(t.verdict),
          t.phantom ? "true" : "false", t.race.cs_pair ? "true" : "false",
          t.flip_skipped ? "true" : "false"));
    }

    results.push_back(StrFormat(
        "{\"ruleId\":\"%s\",\"ruleIndex\":0,\"level\":\"error\","
        "\"message\":{\"text\":\"%s\"},\"locations\":[%s],\"codeFlows\":[%s],"
        "\"properties\":{\"scenario\":\"%s\",\"degraded\":%s,\"chain\":\"%s\","
        "\"races\":[%s]}}",
        JsonEscape(rule_id).c_str(),
        JsonEscape(failure.ToString() + " — " + ca.chain.Render(image)).c_str(),
        LocationWithMessage(uri, line_of(failure.at), ait_text, failure.ToString()).c_str(),
        JoinJson(flows).c_str(), JsonEscape(scenario.id).c_str(),
        report.degraded ? "true" : "false", JsonEscape(ca.chain.Render(image)).c_str(),
        JoinJson(race_props).c_str()));
  }

  return StrFormat(
      "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{"
      "\"tool\":{\"driver\":{\"name\":\"aitia\","
      "\"informationUri\":\"https://github.com/aitia/aitia\",\"rules\":[%s]}},"
      "\"artifacts\":[{\"location\":{\"uri\":\"%s\"},\"sourceLanguage\":\"ait\","
      "\"contents\":{\"text\":\"%s\"}}],"
      "\"columnKind\":\"utf16CodeUnits\",\"results\":[%s]}]}",
      JoinJson(rules).c_str(), JsonEscape(uri).c_str(), JsonEscape(ait_text).c_str(),
      JoinJson(results).c_str());
}

}  // namespace tools
}  // namespace aitia
