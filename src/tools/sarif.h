// SARIF 2.1.0 export of a diagnosis (DESIGN.md §15).
//
// Folds an AitiaReport into the Static Analysis Results Interchange Format
// so CI systems and code-review UIs that understand SARIF (GitHub code
// scanning, VS Code SARIF viewer) can render a kernel concurrency diagnosis
// like any other analyzer finding:
//
//   - one rule per failure class (ruleId "aitia/<class>", e.g.
//     "aitia/assert-violation"), so dashboards group by symptom;
//   - the result's location is the failure point, resolved to a line of the
//     scenario's canonical .ait serialization via ingest provenance (the
//     serializer emits it, the parser's SourcePos maps instruction -> line;
//     the .ait text ships inside the log as the artifact's contents, so the
//     file:line references resolve without any checkout);
//   - the causality chain and each root-cause race's flip/disappearance
//     evidence become codeFlows: step through them in a SARIF viewer and you
//     replay the diagnosis.
//
// Output is deterministic — no timestamps, no absolute paths, stable
// ordering — so the flight-deck differential can byte-compare SARIF across
// worker counts and feature toggles.

#ifndef SRC_TOOLS_SARIF_H_
#define SRC_TOOLS_SARIF_H_

#include <string>

#include "src/bugs/scenario.h"
#include "src/core/aitia.h"
#include "src/sim/failure.h"

namespace aitia {
namespace tools {

// Stable SARIF rule id for a failure class: "aitia/<kebab-token>".
std::string SarifRuleId(FailureType type);

// Serializes one finished diagnosis as a complete SARIF 2.1.0 log (a single
// run). A non-diagnosed report yields a valid log with zero results.
std::string ReportToSarif(const BugScenario& scenario, const AitiaReport& report);

}  // namespace tools
}  // namespace aitia

#endif  // SRC_TOOLS_SARIF_H_
