#include "src/tools/options.h"

#include <cstdio>
#include <cstdlib>
#include <optional>

#include "src/util/log.h"

namespace aitia {
namespace tools {
namespace {

// Matches `--flag value` and `--flag=value`; 1 = matched (value filled,
// i advanced), 0 = no match, -1 = flag given without a value.
int MatchValueFlag(const char* binary, const char* flag, int argc, char** argv,
                   int& i, std::string& value) {
  const std::string arg = argv[i];
  if (arg == flag) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", binary, flag);
      return -1;
    }
    value = argv[++i];
    return 1;
  }
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) == 0) {
    value = arg.substr(prefix.size());
    return 1;
  }
  return 0;
}

}  // namespace

ParseResult ParseSharedFlag(const char* binary, int argc, char** argv, int& i,
                            SharedFlags& flags) {
  const std::string arg = argv[i];
  if (arg == "--no-replay-cache") {
    flags.replay_cache = false;
    return ParseResult::kParsed;
  }
  if (arg == "--no-prefilter") {
    flags.prefilter = false;
    return ParseResult::kParsed;
  }
  std::string value;
  int m = MatchValueFlag(binary, "--jobs", argc, argv, i, value);
  if (m != 0) {
    if (m < 0) {
      return ParseResult::kError;
    }
    if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr, "%s: --jobs expects a non-negative integer, got '%s'\n",
                   binary, value.c_str());
      return ParseResult::kError;
    }
    flags.jobs = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    flags.jobs_set = true;
    return ParseResult::kParsed;
  }
  m = MatchValueFlag(binary, "--triage", argc, argv, i, value);
  if (m != 0) {
    if (m < 0) {
      return ParseResult::kError;
    }
    // Validate now so a typo fails at the prompt, not mid-diagnosis.
    StatusOr<analysis::TriagePipeline> pipeline = analysis::TriagePipelineFromSpec(value);
    if (!pipeline.ok()) {
      std::fprintf(stderr, "%s: --triage: %s\n", binary,
                   pipeline.status().ToString().c_str());
      return ParseResult::kError;
    }
    flags.triage_set = true;
    flags.triage_spec = value;
    return ParseResult::kParsed;
  }
  m = MatchValueFlag(binary, "--log-level", argc, argv, i, value);
  if (m != 0) {
    if (m < 0) {
      return ParseResult::kError;
    }
    const std::optional<LogLevel> level = ParseLogLevel(value);
    if (!level.has_value()) {
      std::fprintf(stderr, "%s: --log-level expects debug|info|warn|error|off, got '%s'\n",
                   binary, value.c_str());
      return ParseResult::kError;
    }
    SetLogLevel(*level);
    return ParseResult::kParsed;
  }
  return ParseResult::kNotShared;
}

const char* SharedFlagsHelp() {
  return
      "  --jobs N          worker threads for the search and flip-test stages\n"
      "                    (0 = hardware concurrency; results are identical\n"
      "                    for any worker count)\n"
      "  --no-replay-cache disable checkpoint/prefix-replay (src/ckpt): every\n"
      "                    run re-executes from step 0. The diagnosis is\n"
      "                    bit-identical either way; only wall-clock and the\n"
      "                    ckpt.* metrics change\n"
      "  --no-prefilter    disable the static triage pre-filter: every race\n"
      "                    pays for its dynamic flip test. Chains and verdicts\n"
      "                    are bit-identical either way; only the re-execution\n"
      "                    count and the prefilter.* metrics change\n"
      "  --triage SPEC     static triage stages to run, in order, e.g.\n"
      "                    'hb,lockset,mhp' (the default) or 'none'\n"
      "  --log-level L     debug|info|warn|error|off (default: the\n"
      "                    AITIA_LOG_LEVEL env var, else info)\n";
}

analysis::TriagePipeline ResolveTriagePipeline(const SharedFlags& flags) {
  if (!flags.prefilter) {
    return {};  // --no-prefilter wins over --triage
  }
  if (flags.triage_set) {
    // The spec was validated when the flag was parsed.
    StatusOr<analysis::TriagePipeline> pipeline =
        analysis::TriagePipelineFromSpec(flags.triage_spec);
    return pipeline.ok() ? *std::move(pipeline) : analysis::TriagePipeline{};
  }
  return analysis::DefaultTriagePipeline();
}

void ApplySharedFlags(const SharedFlags& flags, AitiaOptions& options) {
  if (flags.jobs_set) {
    options.set_jobs(flags.jobs);
  }
  options.set_replay_cache(flags.replay_cache);
  options.causality.stages = ResolveTriagePipeline(flags);
}

}  // namespace tools
}  // namespace aitia
