// Machine-readable diagnosis reports.
//
// AitiaReport::Render (aitia.h) is the human-facing text; ReportToJson emits
// the same content as a stable JSON document for tooling (dashboards, CI
// annotations, regression diffing of causality chains).

#ifndef SRC_CORE_REPORT_H_
#define SRC_CORE_REPORT_H_

#include <string>

#include "src/core/aitia.h"
#include "src/util/strings.h"  // JsonEscape lives in util; re-exported here

namespace aitia {

// Serializes a diagnosis to JSON. Shape:
//
// {
//   "diagnosed": true,
//   "failure": {"type": "...", "thread": 1, "prog": 2, "pc": 7, "message": "..."},
//   "lifs": {"interleavings": 2, "schedules": 472, "seconds": 0.02},
//   "causality": {"schedules": 5, "benign": 3, "ambiguous": false},
//   "races": [{"label": "A6 => B12", "verdict": "root-cause",
//              "phantom": false, "critical_section": false}, ...],
//   "chain": {"rendered": "...", "nodes": [{"races": ["..."],
//             "ambiguous": false}, ...], "edges": [[0, 1], ...]}
// }
std::string ReportToJson(const AitiaReport& report, const KernelImage& image);

}  // namespace aitia

#endif  // SRC_CORE_REPORT_H_
