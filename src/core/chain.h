// The causality chain — AITIA's root-cause representation (§1, §2.1).
//
// Nodes are interleaving orders of data races from the root cause set.
// Mutually dependent races (flipping either makes the other disappear) are
// merged into one conjunction node — this is what renders CVE-2017-15649's
// chain as "(A2=>B11) ∧ (B2=>A6) → (A6=>B12) → (B17=>A12) → BUG_ON"
// (Figure 6). Edges carry "this order steers control flow into that race";
// the terminal node leads to the failure.

#ifndef SRC_CORE_CHAIN_H_
#define SRC_CORE_CHAIN_H_

#include <string>
#include <vector>

#include "src/sim/failure.h"
#include "src/sim/hb.h"
#include "src/sim/program.h"

namespace aitia {

// Short human label of one race order, e.g. "A6 => B12". Uses the leading
// "X:" tag of the instruction notes when present.
std::string RaceLabel(const KernelImage& image, const RacePair& race);

struct ChainNode {
  // Conjunction of races that jointly steer the next step.
  std::vector<RacePair> races;
  bool ambiguous = false;
};

class CausalityChain {
 public:
  CausalityChain() = default;

  // Builds the chain from the root-cause races and the disappearance
  // relation: `disappears[i]` lists indices (into `races`) of root-cause
  // races that did not occur while race i was flipped. Strongly connected
  // components become conjunction nodes; edges are transitively reduced.
  static CausalityChain Build(const std::vector<RacePair>& races,
                              const std::vector<std::vector<size_t>>& disappears,
                              const std::vector<bool>& ambiguous, const Failure& failure);

  const std::vector<ChainNode>& nodes() const { return nodes_; }
  const std::vector<std::pair<size_t, size_t>>& edges() const { return edges_; }
  const Failure& failure() const { return failure_; }

  // Total number of data races in the chain (the Table 3 "# of races in
  // chain" statistic).
  size_t race_count() const;
  bool has_ambiguity() const;

  // One-line rendering in the style of Figure 3 / Figure 6(b).
  std::string Render(const KernelImage& image) const;

 private:
  std::vector<ChainNode> nodes_;       // topologically ordered, cause first
  std::vector<std::pair<size_t, size_t>> edges_;  // node index -> node index
  Failure failure_;
};

}  // namespace aitia

#endif  // SRC_CORE_CHAIN_H_
