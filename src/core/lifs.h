// Least Interleaving First Search (§3.3).
//
// LIFS reproduces a reported concurrency failure by exploring interleavings
// of *conflicting* instructions, fewest-preemptions-first:
//
//   k = 0: every sequential order of the slice threads. These runs double as
//          discovery: they populate the knowledge base of memory-accessing
//          instructions per thread (the kcov-assisted disassembly of §4.3).
//   k = 1, 2, ...: schedules with k preemption points. Candidate points are
//          restricted to instructions whose address another thread is known
//          to access conflictingly — the DPOR-inspired pruning — and are
//          tried front-to-back. Knowledge grows across runs, so instructions
//          revealed by race-steered control flows join the search space
//          dynamically.
//
// The search stops at the first run whose failure matches the reported
// symptom; its totally ordered trace is the failure-causing instruction
// sequence handed to Causality Analysis, together with every data race found
// in it (including "phantom" races against instructions the failure
// preempted — e.g. the B17 => A12 race of Figure 6 where A12 never executed
// in the failing run but is known from complete runs).
//
// With LifsOptions::workers > 1 the frontier of each search level is
// executed in parallel batches (every run is an independent deterministic
// simulation) and merged back in canonical order at batch barriers, so the
// result — winner, races, counters — is bit-identical to the serial walk.

#ifndef SRC_CORE_LIFS_H_
#define SRC_CORE_LIFS_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/ckpt/store.h"
#include "src/hv/enforcer.h"
#include "src/hv/supervisor.h"
#include "src/sim/hb.h"
#include "src/sim/kernel.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace aitia {

class ThreadPool;

struct LifsOptions {
  int max_interleavings = 3;
  int64_t max_schedules = 20000;
  // IRQ sources to consider during the search; empty disables injection.
  std::vector<IrqLine> irq_lines;
  // Disables the conflict-candidate restriction (ablation knob): every
  // memory-accessing instruction becomes a preemption candidate.
  bool dpor_pruning = true;
  // The reported symptom; unset accepts any failure except the watchdog.
  std::optional<Failure> target;
  // Softer matcher: accept any failure of this type (used when only the
  // crash-report class is known). Ignored when `target` is set.
  std::optional<FailureType> target_type;
  int64_t max_steps_per_run = 200000;
  // Record every explored schedule (Figure 5 benchmarks).
  bool keep_explored = false;
  // Supervised execution: per-run deadline, livelock watchdog, retries, and
  // fault plan. `supervisor.max_steps` is overridden by max_steps_per_run.
  SupervisorOptions supervisor;
  // Wall-clock deadline for the whole search; 0 disables. On expiry the
  // search stops with result.status = kDeadlineExceeded (not reproduced).
  double search_deadline_seconds = 0;
  // Parallel frontier exploration: number of worker threads executing
  // candidate schedules concurrently (0 picks the hardware concurrency,
  // 1 keeps the fully serial walk). Every run is an independent
  // deterministic simulation, so the frontier of each search level is
  // dispatched in batches across a ThreadPool and merged back in canonical
  // (fewest-preemptions, front-to-back) order — the result is bit-identical
  // to the serial search for any worker count (see DESIGN.md §9).
  size_t workers = 1;
  // Prefix-replay checkpointing (src/ckpt, DESIGN.md §12): sibling frontier
  // schedules resume from shared prefixes instead of re-executing from step
  // 0. Results are bit-identical at any worker count; only wall-clock and
  // the executed/replayed step split change. Ignored while the supervisor's
  // fault plan is enabled.
  bool checkpointing = true;
  // Store to use (not owned) — the facade passes a per-slice store shared
  // with Causality Analysis; nullptr makes Lifs own a private one. The store
  // is scoped to one (image, slice, setup): never share across slices.
  ckpt::CheckpointStore* checkpoint_store = nullptr;
  // Progress-event scope (src/obs/events.h): nonzero tags this search's
  // lifecycle events so a streaming subscriber sees only its own request.
  // 0 (the default) publishes nothing. Events are write-only observability;
  // the search never reads them back.
  uint64_t event_scope = 0;
};

struct ExploredSchedule {
  PreemptionSchedule schedule;
  int interleavings = 0;
  bool failed = false;
  bool matched = false;
  bool equivalent_to_earlier = false;  // fingerprint-identical outcome
};

struct LifsResult {
  bool reproduced = false;
  std::optional<Failure> failure;
  RunResult failing_run;
  // The schedule that reproduced the failure.
  PreemptionSchedule failing_schedule;
  // Data races in the failure-causing sequence.
  RaceAnalysis races;
  // Races whose second side is a known-but-unexecuted instruction (the
  // failure stopped its thread first). `second.seq` is synthetic, past the
  // end of the trace.
  std::vector<RacePair> phantom_races;
  // Complete per-thread instruction streams from non-failing runs; Causality
  // Analysis splices these when flipping phantom races.
  std::map<ThreadId, std::vector<ExecEvent>> reference_streams;
  // Hardware-IRQ contexts present in the failing run (thread id -> handler
  // program and argument) for replay during the diagnosing stage.
  std::map<ThreadId, std::pair<ProgramId, Word>> irq_threads;

  int interleaving_count = 0;
  int64_t schedules_executed = 0;
  int64_t schedules_pruned = 0;  // skipped as equivalent before running
  // Non-ok when the search was cut short (search deadline); `reproduced`
  // stays the primary signal — status explains *why* it is false.
  Status status;
  // Runs lost to supervision (every attempt failed); the search skips them.
  int64_t aborted_runs = 0;
  // Schedules executed past the canonical stop point (parallel batches run a
  // few schedules the serial walk never reaches once the winner is found or
  // the budget expires; their results are discarded at the merge barrier).
  // Always 0 for the serial search; excluded from schedules_executed.
  int64_t speculative_runs = 0;
  // Supervision accounting across all runs of this search. Includes the
  // speculative overshoot, so parallel budgets may exceed serial ones even
  // though every other field of this result is identical.
  RunBudget budget;
  double seconds = 0;
  // Wall-clock split of `seconds`: the discovery passes (sequential orders
  // plus one-shot IRQ probes) vs the depth-k frontier passes. The bench and
  // the metrics registry report this breakdown per phase.
  double discovery_seconds = 0;
  double depth_seconds = 0;
  std::vector<ThreadId> slice_tids;
  std::vector<ExploredSchedule> explored;  // populated iff keep_explored
};

class Lifs {
 public:
  Lifs(const KernelImage* image, std::vector<ThreadSpec> slice, std::vector<ThreadSpec> setup,
       LifsOptions options);

  LifsResult Run();

 private:
  struct KnownAccess {
    DynInstr di;
    Addr addr = 0;
    Addr len = 1;
    bool write = false;
    int64_t first_pos = 0;  // discovery position within its thread
  };

  // Generates one search level's candidate schedules in the canonical
  // serial order (tuples lexicographic front-to-back, then base orders).
  class PassFrontier;
  // A frontier is any generator yielding candidate schedules in canonical
  // order; nullopt means exhausted.
  using FrontierFn = std::function<std::optional<PreemptionSchedule>()>;

  bool MatchesTarget(const std::optional<Failure>& failure) const;
  // Runs one schedule, updates knowledge; returns true if the failure was
  // reproduced (result_ is then final).
  bool Execute(const PreemptionSchedule& schedule, int interleavings);
  // Shared post-run bookkeeping: learns from the run, records fingerprints
  // and explored schedules, finalizes on a symptom match. Must be called in
  // canonical schedule order. Returns true on a match.
  bool Absorb(EnforceResult& er, const PreemptionSchedule& schedule, int interleavings,
              std::string fingerprint);
  // Walks one frontier to exhaustion, a match, or a budget cut. Serial when
  // `pool` is null; otherwise dispatches batches across the pool and merges
  // at batch barriers. Returns true if the failure was reproduced.
  bool RunFrontier(const FrontierFn& next, int interleavings, ThreadPool* pool);
  void Learn(const RunResult& run);
  std::vector<KnownAccess> ConflictCandidates() const;
  void FinalizeFailingRun(const RunResult& run, const PreemptionSchedule& schedule,
                          int interleavings);

  // True when the search must stop (schedule budget or search deadline).
  bool SearchCutShort();
  // The search proper; Run() wraps it to finalize budget accounting.
  LifsResult RunSearch();

  const KernelImage* image_;
  std::vector<ThreadSpec> slice_;
  std::vector<ThreadSpec> setup_;
  LifsOptions options_;
  // Private store when checkpointing is on and no external store was given;
  // declared before supervisor_, whose options capture the raw pointer.
  std::unique_ptr<ckpt::CheckpointStore> owned_store_;
  Supervisor supervisor_;
  Stopwatch search_watch_;

  std::map<ThreadId, std::vector<KnownAccess>> knowledge_;
  std::vector<ThreadId> known_tids_;
  std::set<std::string> fingerprints_;
  std::set<std::string> tried_schedules_;
  LifsResult result_;
};

}  // namespace aitia

#endif  // SRC_CORE_LIFS_H_
