#include "src/core/lifs.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace aitia {
namespace {

// Registry lookups cached once per process; the increments themselves are
// per-thread sharded relaxed atomics (src/obs/metrics.h), so publishing
// search totals here never contends with frontier workers.
struct LifsMetrics {
  obs::Counter* searches;
  obs::Counter* reproduced;
  obs::Counter* schedules_executed;
  obs::Counter* schedules_pruned;
  obs::Counter* aborted_runs;
  obs::Counter* speculative_runs;
  obs::Counter* discovery_us;
  obs::Counter* depth_us;
  obs::Histogram* preemption_points;

  static const LifsMetrics& Get() {
    static const LifsMetrics* const m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* lm = new LifsMetrics();
      lm->searches = reg.GetCounter("lifs.searches");
      lm->reproduced = reg.GetCounter("lifs.reproduced");
      lm->schedules_executed = reg.GetCounter("lifs.schedules_executed");
      lm->schedules_pruned = reg.GetCounter("lifs.schedules_pruned");
      lm->aborted_runs = reg.GetCounter("lifs.aborted_runs");
      lm->speculative_runs = reg.GetCounter("lifs.speculative_runs");
      lm->discovery_us = reg.GetCounter("lifs.discovery_us");
      lm->depth_us = reg.GetCounter("lifs.depth_us");
      lm->preemption_points = reg.GetHistogram("lifs.preemption_points", {0, 1, 2, 3, 4, 8});
      return lm;
    }();
    return *m;
  }
};

SupervisorOptions LifsSupervisorOptions(const LifsOptions& options,
                                        ckpt::CheckpointStore* store) {
  SupervisorOptions so = options.supervisor;
  so.max_steps = options.max_steps_per_run;
  so.checkpoints = store;
  return so;
}

// Access-pattern fingerprint of one run; pure function of the trace, so
// parallel workers can compute it off the merge path.
std::string TraceFingerprint(const RunResult& run) {
  std::string fp;
  for (const ExecEvent& e : run.trace) {
    if (e.is_access) {
      fp += StrFormat("%d.%d.%d.%d.%llu.%d;", e.di.tid, e.di.at.prog, e.di.at.pc,
                      e.di.occurrence, static_cast<unsigned long long>(e.addr),
                      e.is_write ? 1 : 0);
    }
  }
  return fp;
}

// Schedules dispatched per barrier and worker. Larger batches amortize the
// merge barrier; smaller ones waste less speculative work once the winner is
// inside the batch. The merged result is identical either way.
constexpr size_t kBatchPerWorker = 4;

}  // namespace

// Enumerates one depth-k pass of the search space in the exact order the
// serial loop walks it: k-point tuples front-to-back (candidate-major,
// lexicographic over the encoded candidate×variant space, adjacent-pair
// constraints applied), each tuple crossed with every base order.
class Lifs::PassFrontier {
 public:
  PassFrontier(std::vector<KnownAccess> candidates, size_t stride, size_t k,
               const std::vector<std::vector<ThreadId>>* perms,
               const std::vector<IrqLine>* irq_lines)
      : candidates_(std::move(candidates)),
        stride_(stride),
        k_(k),
        perms_(perms),
        irq_lines_(irq_lines) {}

  std::optional<PreemptionSchedule> Next() {
    if (done_) {
      return std::nullopt;
    }
    if (first_) {
      first_ = false;
      tuple_.clear();
      if (k_ > 0 && !Extend(0)) {
        done_ = true;
        return std::nullopt;
      }
      perm_idx_ = 0;
    }
    if (perm_idx_ >= perms_->size()) {
      if (!NextTuple()) {
        done_ = true;
        return std::nullopt;
      }
      perm_idx_ = 0;
    }
    PreemptionSchedule schedule;
    schedule.base_order = (*perms_)[perm_idx_++];
    schedule.points.reserve(tuple_.size());
    for (size_t e : tuple_) {
      schedule.points.push_back(DecodePoint(e));
    }
    return schedule;
  }

 private:
  // Grows tuple_ to length k_, trying encoded values from `start` upward at
  // the current level and from 0 at deeper levels (lexicographic DFS).
  bool Extend(size_t start) {
    for (size_t e = start; e < candidates_.size() * stride_; ++e) {
      if (!ValidAppend(e)) {
        continue;
      }
      tuple_.push_back(e);
      if (tuple_.size() == k_ || Extend(0)) {
        return true;
      }
      tuple_.pop_back();
    }
    return false;
  }

  bool NextTuple() {
    if (k_ == 0) {
      return false;  // the single empty tuple was already yielded
    }
    while (!tuple_.empty()) {
      const size_t last = tuple_.back();
      tuple_.pop_back();
      if (Extend(last + 1)) {
        return true;
      }
    }
    return false;
  }

  bool ValidAppend(size_t e) const {
    if (tuple_.empty()) {
      return true;
    }
    const size_t i = e / stride_;
    const size_t prev = tuple_.back() / stride_;
    if (i == prev) {
      return false;  // cannot preempt twice at the same dynamic instr
    }
    if (candidates_[i].di.tid == candidates_[prev].di.tid &&
        candidates_[i].first_pos <= candidates_[prev].first_pos) {
      return false;  // same thread must advance front-to-back
    }
    return true;
  }

  // Each candidate yields a stop-after and a stop-before variant (the latter
  // is the hypervisor's breakpoint-hit semantics), plus, per configured IRQ
  // line, inject-after and inject-before variants (§4.6 extension).
  PreemptPoint DecodePoint(size_t e) const {
    PreemptPoint point;
    point.after = candidates_[e / stride_].di;
    const size_t variant = e % stride_;
    point.before = (variant % 2) != 0;
    if (variant >= 2) {
      const IrqLine& line = (*irq_lines_)[(variant - 2) / 2];
      point.inject_irq = line.handler;
      point.irq_arg = line.arg;
    }
    return point;
  }

  std::vector<KnownAccess> candidates_;
  size_t stride_;
  size_t k_;
  const std::vector<std::vector<ThreadId>>* perms_;
  const std::vector<IrqLine>* irq_lines_;
  std::vector<size_t> tuple_;
  size_t perm_idx_ = 0;
  bool first_ = true;
  bool done_ = false;
};

Lifs::Lifs(const KernelImage* image, std::vector<ThreadSpec> slice,
           std::vector<ThreadSpec> setup, LifsOptions options)
    : image_(image),
      slice_(std::move(slice)),
      setup_(std::move(setup)),
      options_(options),
      owned_store_(options.checkpointing && options.checkpoint_store == nullptr
                       ? std::make_unique<ckpt::CheckpointStore>(
                             ckpt::StoreOptions{.event_scope = options.event_scope})
                       : nullptr),
      supervisor_(image,
                  LifsSupervisorOptions(
                      options, options.checkpointing
                                   ? (options.checkpoint_store != nullptr ? options.checkpoint_store
                                                                          : owned_store_.get())
                                   : nullptr)) {}

bool Lifs::SearchCutShort() {
  if (!result_.status.ok()) {
    return true;
  }
  if (result_.schedules_executed >= options_.max_schedules) {
    return true;
  }
  if (options_.search_deadline_seconds > 0 &&
      search_watch_.ElapsedSeconds() > options_.search_deadline_seconds) {
    result_.status = Status::DeadlineExceeded("LIFS search exceeded wall-clock deadline");
    return true;
  }
  // The supervisor-level cancel probe also cuts the search itself short, so
  // a draining service unwinds in one frontier batch instead of enumerating
  // the rest of the schedule budget as no-op cancelled runs.
  if (options_.supervisor.cancel && options_.supervisor.cancel()) {
    result_.status = Status::Cancelled("LIFS search cancelled");
    return true;
  }
  return false;
}

bool Lifs::MatchesTarget(const std::optional<Failure>& failure) const {
  if (!failure.has_value()) {
    return false;
  }
  if (options_.target.has_value()) {
    return SameSymptom(*failure, *options_.target);
  }
  if (options_.target_type.has_value()) {
    return failure->type == *options_.target_type;
  }
  // Watchdog timeouts are artifacts of enforcement, not kernel symptoms.
  return failure->type != FailureType::kWatchdog;
}

void Lifs::Learn(const RunResult& run) {
  std::map<ThreadId, int64_t> positions;
  for (const ExecEvent& e : run.trace) {
    int64_t pos = positions[e.di.tid]++;
    if (!e.is_access) {
      continue;
    }
    auto& known = knowledge_[e.di.tid];
    bool seen = std::any_of(known.begin(), known.end(),
                            [&](const KnownAccess& k) { return k.di == e.di; });
    if (!seen) {
      known.push_back({e.di, e.addr, e.len, e.is_write, pos});
    }
    if (std::find(known_tids_.begin(), known_tids_.end(), e.di.tid) == known_tids_.end()) {
      known_tids_.push_back(e.di.tid);
    }
  }

  // Keep complete per-thread streams from clean runs as phantom references.
  if (!run.failure.has_value() && run.all_exited) {
    std::map<ThreadId, std::vector<ExecEvent>> streams;
    for (const ExecEvent& e : run.trace) {
      streams[e.di.tid].push_back(e);
    }
    for (auto& [tid, stream] : streams) {
      auto& ref = result_.reference_streams[tid];
      if (stream.size() > ref.size()) {
        ref = std::move(stream);
      }
    }
  }
}

std::vector<Lifs::KnownAccess> Lifs::ConflictCandidates() const {
  std::vector<KnownAccess> all;
  for (const auto& [tid, accesses] : knowledge_) {
    (void)tid;
    all.insert(all.end(), accesses.begin(), accesses.end());
  }
  std::vector<KnownAccess> out;
  for (const KnownAccess& a : all) {
    if (!options_.dpor_pruning) {
      out.push_back(a);
      continue;
    }
    // DPOR-style restriction: preempting after `a` only creates a new order
    // if some other thread conflicts on the same memory.
    bool conflicts = std::any_of(all.begin(), all.end(), [&](const KnownAccess& b) {
      if (b.di.tid == a.di.tid) {
        return false;
      }
      const bool overlap = a.addr < b.addr + b.len && b.addr < a.addr + a.len;
      return overlap && (a.write || b.write);
    });
    if (conflicts) {
      out.push_back(a);
    }
  }
  // Front-to-back: earliest-discovered instructions first.
  std::sort(out.begin(), out.end(), [](const KnownAccess& x, const KnownAccess& y) {
    if (x.first_pos != y.first_pos) {
      return x.first_pos < y.first_pos;
    }
    return x.di < y.di;
  });
  return out;
}

bool Lifs::Execute(const PreemptionSchedule& schedule, int interleavings) {
  if (SearchCutShort()) {
    return false;
  }
  if (!tried_schedules_.insert(schedule.ToString()).second) {
    obs::Span("lifs", "lifs.prune", 'i').Arg("reason", "duplicate-schedule");
    return false;  // exact schedule already run
  }
  obs::Span span("lifs", "lifs.run");
  span.Arg("k", interleavings).Arg("points", schedule.points.size());
  StatusOr<EnforceResult> supervised = supervisor_.RunPreemption(
      slice_, schedule, setup_, static_cast<uint64_t>(result_.schedules_executed));
  ++result_.schedules_executed;
  if (!supervised.ok()) {
    // The run was lost after every retry (deadline, livelock, injected
    // fault). Nothing usable was observed; skip the schedule and move on —
    // LIFS completeness degrades gracefully instead of crashing or learning
    // from a corrupt partial trace.
    ++result_.aborted_runs;
    span.Arg("aborted", true);
    return false;
  }
  const bool matched =
      Absorb(*supervised, schedule, interleavings, TraceFingerprint(supervised->run));
  span.Arg("failed", supervised->run.failure.has_value()).Arg("matched", matched);
  return matched;
}

bool Lifs::Absorb(EnforceResult& er, const PreemptionSchedule& schedule, int interleavings,
                  std::string fingerprint) {
  Learn(er.run);
  const bool fresh = fingerprints_.insert(std::move(fingerprint)).second;
  const bool matched = MatchesTarget(er.run.failure);
  LifsMetrics::Get().preemption_points->Record(
      static_cast<int64_t>(schedule.points.size()));
  if (options_.keep_explored) {
    result_.explored.push_back(
        {schedule, interleavings, er.run.failure.has_value(), matched, !fresh});
  }
  if (matched) {
    obs::Span("lifs", "lifs.match", 'i')
        .Arg("k", interleavings)
        .Arg("points", schedule.points.size())
        .Arg("schedule", schedule.ToString());
    obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kLifs, "lifs.reproduced",
                          schedule.ToString(),
                          {{"interleavings", interleavings},
                           {"schedules_executed", result_.schedules_executed}});
    FinalizeFailingRun(er.run, schedule, interleavings);
    return true;
  }
  return false;
}

bool Lifs::RunFrontier(const FrontierFn& next, int interleavings, ThreadPool* pool) {
  if (pool == nullptr) {
    // Serial walk: one schedule at a time, in frontier order.
    while (!SearchCutShort()) {
      std::optional<PreemptionSchedule> schedule = next();
      if (!schedule.has_value()) {
        return false;
      }
      if (Execute(*schedule, interleavings)) {
        return true;
      }
    }
    return false;
  }

  // Parallel walk: pull a batch of not-yet-tried schedules (clamped to the
  // remaining schedule budget, so the dispatched set is exactly the serial
  // prefix), execute it across the pool, then merge results at the barrier
  // in frontier order. Knowledge, fingerprints, counters, and the winner are
  // therefore identical to the serial walk; only runs past the canonical
  // stop point are discarded (counted as speculative_runs).
  const size_t batch_target = pool->worker_count() * kBatchPerWorker;
  std::vector<PreemptionSchedule> batch;
  std::vector<std::string> keys;
  for (;;) {
    if (SearchCutShort()) {
      return false;
    }
    batch.clear();
    keys.clear();
    const int64_t room = options_.max_schedules - result_.schedules_executed;
    while (batch.size() < batch_target && static_cast<int64_t>(batch.size()) < room) {
      std::optional<PreemptionSchedule> schedule = next();
      if (!schedule.has_value()) {
        break;
      }
      std::string key = schedule->ToString();
      if (!tried_schedules_.insert(key).second) {
        obs::Span("lifs", "lifs.prune", 'i').Arg("reason", "duplicate-schedule");
        continue;  // exact schedule already run
      }
      batch.push_back(std::move(*schedule));
      keys.push_back(std::move(key));
    }
    if (batch.empty()) {
      return false;  // frontier exhausted (budget expiry exits at the top)
    }

    struct BatchRun {
      StatusOr<EnforceResult> supervised = Status::Unavailable("not run");
      std::string fingerprint;
    };
    std::vector<BatchRun> runs(batch.size());
    const uint64_t nonce_base = static_cast<uint64_t>(result_.schedules_executed);
    ParallelFor(*pool, batch.size(), [&](size_t i) {
      obs::Span span("lifs", "lifs.run");
      span.Arg("k", interleavings)
          .Arg("points", batch[i].points.size())
          .Arg("batch_index", i);
      runs[i].supervised =
          supervisor_.RunPreemption(slice_, batch[i], setup_, nonce_base + i);
      if (runs[i].supervised.ok()) {
        runs[i].fingerprint = TraceFingerprint(runs[i].supervised->run);
      } else {
        span.Arg("aborted", true);
      }
    });

    for (size_t i = 0; i < batch.size(); ++i) {
      ++result_.schedules_executed;
      if (!runs[i].supervised.ok()) {
        ++result_.aborted_runs;
        continue;
      }
      if (Absorb(*runs[i].supervised, batch[i], interleavings,
                 std::move(runs[i].fingerprint))) {
        result_.speculative_runs += static_cast<int64_t>(batch.size() - i - 1);
        obs::Span("lifs", "lifs.speculative_discard", 'i')
            .Arg("count", batch.size() - i - 1);
        return true;
      }
    }
  }
}

void Lifs::FinalizeFailingRun(const RunResult& run, const PreemptionSchedule& schedule,
                              int interleavings) {
  result_.reproduced = true;
  result_.failure = run.failure;
  result_.failing_run = run;
  result_.failing_schedule = schedule;
  result_.interleaving_count = interleavings;
  result_.races = ExtractRaces(run);
  for (size_t tid = 0; tid < run.threads.size(); ++tid) {
    if (run.threads[tid].kind == ThreadKind::kHardIrq) {
      result_.irq_threads[static_cast<ThreadId>(tid)] = {run.threads[tid].prog,
                                                         run.threads[tid].arg};
    }
  }

  // Phantom races (§3.4, Figure 6 step 1): conflicting pairs whose second
  // side is an instruction the failure preempted. Reconstructed from the
  // reference streams of clean runs whose control flow matches the executed
  // prefix of the unfinished thread.
  std::map<ThreadId, std::vector<ExecEvent>> executed;
  for (const ExecEvent& e : run.trace) {
    executed[e.di.tid].push_back(e);
  }
  int64_t phantom_seq = run.trace.empty() ? 1 : run.trace.back().seq + 1;
  std::set<std::pair<DynInstr, DynInstr>> dedupe;
  constexpr size_t kMaxPhantoms = 64;

  for (const auto& [tid, ref] : result_.reference_streams) {
    const auto& done = executed[tid];
    if (done.size() >= ref.size()) {
      continue;  // finished (or ref no longer ahead)
    }
    bool prefix_ok = true;
    for (size_t i = 0; i < done.size(); ++i) {
      if (!(done[i].di == ref[i].di)) {
        prefix_ok = false;
        break;
      }
    }
    if (!prefix_ok) {
      continue;  // the failing path diverged from the reference path
    }
    for (size_t i = done.size(); i < ref.size(); ++i) {
      const ExecEvent& f = ref[i];
      if (!f.is_access) {
        continue;
      }
      for (const ExecEvent& e : run.trace) {
        if (!e.is_access || e.di.tid == tid || !Conflicting(e, f)) {
          continue;
        }
        if (!dedupe.insert({e.di, f.di}).second) {
          continue;
        }
        RacePair p;
        p.first = e;
        p.second = f;
        p.second.seq = phantom_seq++;
        result_.phantom_races.push_back(p);
        if (result_.phantom_races.size() >= kMaxPhantoms) {
          return;
        }
      }
    }
  }
}

LifsResult Lifs::Run() {
  obs::Span span("lifs", "lifs.search");
  search_watch_.Reset();
  RunSearch();
  result_.budget = supervisor_.budget();
  span.Arg("reproduced", result_.reproduced)
      .Arg("k", result_.interleaving_count)
      .Arg("schedules", result_.schedules_executed)
      .Arg("pruned", result_.schedules_pruned)
      .Arg("speculative", result_.speculative_runs)
      .Arg("aborted", result_.aborted_runs)
      .Arg("workers", options_.workers);

  // Publish the search totals once, from the authoritative LifsResult
  // counters — report.metrics.lifs.* can never drift from LifsResult.
  const LifsMetrics& m = LifsMetrics::Get();
  m.searches->Increment();
  if (result_.reproduced) {
    m.reproduced->Increment();
  }
  m.schedules_executed->Add(result_.schedules_executed);
  m.schedules_pruned->Add(result_.schedules_pruned);
  m.aborted_runs->Add(result_.aborted_runs);
  m.speculative_runs->Add(result_.speculative_runs);
  m.discovery_us->Add(static_cast<int64_t>(result_.discovery_seconds * 1e6));
  m.depth_us->Add(static_cast<int64_t>(result_.depth_seconds * 1e6));
  return result_;
}

LifsResult Lifs::RunSearch() {
  Stopwatch watch;
  // Discover the concurrent thread ids (setup threads occupy lower ids).
  std::vector<ThreadId> tids;
  {
    KernelSim probe(image_, slice_, setup_);
    ThreadId first = probe.first_initial_thread();
    for (size_t i = 0; i < slice_.size(); ++i) {
      tids.push_back(first + static_cast<ThreadId>(i));
    }
  }
  result_.slice_tids = tids;

  std::vector<std::vector<ThreadId>> perms;
  {
    std::vector<ThreadId> perm = tids;
    std::sort(perm.begin(), perm.end());
    do {
      perms.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  }

  // Frontier workers: every run is an independent deterministic simulation,
  // so the only cross-run coupling is the canonical-order merge in Absorb.
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (ThreadPool::ResolveWorkers(options_.workers) > 1) {
    pool_storage.emplace(options_.workers);
    pool = &*pool_storage;
  }

  bool discovery_done = false;
  auto finish = [&]() -> LifsResult& {
    result_.seconds = watch.ElapsedSeconds();
    if (!discovery_done) {
      result_.discovery_seconds = result_.seconds;
    }
    result_.depth_seconds = result_.seconds - result_.discovery_seconds;
    return result_;
  };

  // Interleaving count 0: sequential orders (also the discovery runs).
  {
    size_t next_perm = 0;
    FrontierFn frontier = [&]() -> std::optional<PreemptionSchedule> {
      if (next_perm >= perms.size()) {
        return std::nullopt;
      }
      return PreemptionSchedule{perms[next_perm++], {}};
    };
    if (RunFrontier(frontier, 0, pool)) {
      return finish();
    }
  }

  // IRQ discovery (§4.6 extension): a handler's instructions are unknown
  // until it runs once, but the conflict restriction needs them to propose
  // injection points. Inject each line once at the first known access.
  if (!options_.irq_lines.empty()) {
    DynInstr first_access;
    bool have_access = false;
    for (const auto& [tid, accesses] : knowledge_) {
      (void)tid;
      for (const KnownAccess& a : accesses) {
        if (!have_access || a.first_pos < 0) {
          first_access = a.di;
          have_access = true;
          break;
        }
      }
      if (have_access) {
        break;
      }
    }
    if (have_access) {
      size_t next_line = 0;
      FrontierFn frontier = [&]() -> std::optional<PreemptionSchedule> {
        if (next_line >= options_.irq_lines.size()) {
          return std::nullopt;
        }
        const IrqLine& line = options_.irq_lines[next_line++];
        PreemptionSchedule schedule;
        schedule.base_order = perms.front();
        schedule.points = {{first_access, /*before=*/true, kNoThread, line.handler, line.arg}};
        return schedule;
      };
      if (RunFrontier(frontier, 1, pool)) {
        return finish();
      }
    }
  }

  result_.discovery_seconds = watch.ElapsedSeconds();
  discovery_done = true;
  obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kLifs, "lifs.discovery", "",
                        {{"schedules_executed", result_.schedules_executed}});

  for (int k = 1; k <= options_.max_interleavings; ++k) {
    // Knowledge can grow while exploring depth k (race-steered control
    // flows); regenerate candidates until a full pass adds nothing new.
    for (;;) {
      if (SearchCutShort()) {
        return finish();
      }
      std::vector<KnownAccess> candidates = ConflictCandidates();
      size_t total_known = 0;
      for (const auto& [tid, accesses] : knowledge_) {
        (void)tid;
        total_known += accesses.size();
      }
      if (options_.dpor_pruning && candidates.size() < total_known) {
        // Preemptions at non-conflicting instructions are equivalent to not
        // preempting at all — count them as pruned once per depth pass.
        const int64_t pruned =
            static_cast<int64_t>((total_known - candidates.size()) * perms.size());
        result_.schedules_pruned += pruned;
        obs::Span("lifs", "lifs.prune", 'i')
            .Arg("reason", "dpor-nonconflicting")
            .Arg("count", pruned)
            .Arg("depth", k);
      }

      const size_t known_before = total_known;
      obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kLifs, "lifs.pass", "",
                            {{"depth", k},
                             {"candidates", static_cast<int64_t>(candidates.size())},
                             {"schedules_executed", result_.schedules_executed}});

      // One pass over the depth-k frontier. Candidates are a snapshot:
      // knowledge learned mid-pass only affects the next pass, exactly as in
      // the serial walk (the pass's schedule set is fixed at pass start).
      const size_t stride = 2 + 2 * options_.irq_lines.size();
      PassFrontier pass(std::move(candidates), stride, static_cast<size_t>(k), &perms,
                        &options_.irq_lines);
      FrontierFn frontier = [&pass]() { return pass.Next(); };
      if (RunFrontier(frontier, k, pool)) {
        return finish();
      }
      if (SearchCutShort()) {
        return finish();
      }

      size_t known_after = 0;
      for (const auto& [tid, accesses] : knowledge_) {
        (void)tid;
        known_after += accesses.size();
      }
      if (known_after == known_before) {
        break;  // no dynamic discovery at this depth; deepen
      }
    }
  }

  return finish();
}

}  // namespace aitia
