#include "src/core/lifs.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "src/util/log.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace aitia {
namespace {

SupervisorOptions LifsSupervisorOptions(const LifsOptions& options) {
  SupervisorOptions so = options.supervisor;
  so.max_steps = options.max_steps_per_run;
  return so;
}

}  // namespace

Lifs::Lifs(const KernelImage* image, std::vector<ThreadSpec> slice,
           std::vector<ThreadSpec> setup, LifsOptions options)
    : image_(image),
      slice_(std::move(slice)),
      setup_(std::move(setup)),
      options_(options),
      supervisor_(image, LifsSupervisorOptions(options)) {}

bool Lifs::SearchCutShort() {
  if (!result_.status.ok()) {
    return true;
  }
  if (result_.schedules_executed >= options_.max_schedules) {
    return true;
  }
  if (options_.search_deadline_seconds > 0 &&
      search_watch_.ElapsedSeconds() > options_.search_deadline_seconds) {
    result_.status = Status::DeadlineExceeded("LIFS search exceeded wall-clock deadline");
    return true;
  }
  return false;
}

bool Lifs::MatchesTarget(const std::optional<Failure>& failure) const {
  if (!failure.has_value()) {
    return false;
  }
  if (options_.target.has_value()) {
    return SameSymptom(*failure, *options_.target);
  }
  if (options_.target_type.has_value()) {
    return failure->type == *options_.target_type;
  }
  // Watchdog timeouts are artifacts of enforcement, not kernel symptoms.
  return failure->type != FailureType::kWatchdog;
}

void Lifs::Learn(const RunResult& run) {
  std::map<ThreadId, int64_t> positions;
  for (const ExecEvent& e : run.trace) {
    int64_t pos = positions[e.di.tid]++;
    if (!e.is_access) {
      continue;
    }
    auto& known = knowledge_[e.di.tid];
    bool seen = std::any_of(known.begin(), known.end(),
                            [&](const KnownAccess& k) { return k.di == e.di; });
    if (!seen) {
      known.push_back({e.di, e.addr, e.len, e.is_write, pos});
    }
    if (std::find(known_tids_.begin(), known_tids_.end(), e.di.tid) == known_tids_.end()) {
      known_tids_.push_back(e.di.tid);
    }
  }

  // Keep complete per-thread streams from clean runs as phantom references.
  if (!run.failure.has_value() && run.all_exited) {
    std::map<ThreadId, std::vector<ExecEvent>> streams;
    for (const ExecEvent& e : run.trace) {
      streams[e.di.tid].push_back(e);
    }
    for (auto& [tid, stream] : streams) {
      auto& ref = result_.reference_streams[tid];
      if (stream.size() > ref.size()) {
        ref = std::move(stream);
      }
    }
  }
}

std::vector<Lifs::KnownAccess> Lifs::ConflictCandidates() const {
  std::vector<KnownAccess> all;
  for (const auto& [tid, accesses] : knowledge_) {
    (void)tid;
    all.insert(all.end(), accesses.begin(), accesses.end());
  }
  std::vector<KnownAccess> out;
  for (const KnownAccess& a : all) {
    if (!options_.dpor_pruning) {
      out.push_back(a);
      continue;
    }
    // DPOR-style restriction: preempting after `a` only creates a new order
    // if some other thread conflicts on the same memory.
    bool conflicts = std::any_of(all.begin(), all.end(), [&](const KnownAccess& b) {
      if (b.di.tid == a.di.tid) {
        return false;
      }
      const bool overlap = a.addr < b.addr + b.len && b.addr < a.addr + a.len;
      return overlap && (a.write || b.write);
    });
    if (conflicts) {
      out.push_back(a);
    }
  }
  // Front-to-back: earliest-discovered instructions first.
  std::sort(out.begin(), out.end(), [](const KnownAccess& x, const KnownAccess& y) {
    if (x.first_pos != y.first_pos) {
      return x.first_pos < y.first_pos;
    }
    return x.di < y.di;
  });
  return out;
}

bool Lifs::Execute(const PreemptionSchedule& schedule, int interleavings) {
  if (SearchCutShort()) {
    return false;
  }
  if (!tried_schedules_.insert(schedule.ToString()).second) {
    return false;  // exact schedule already run
  }
  StatusOr<EnforceResult> supervised = supervisor_.RunPreemption(
      slice_, schedule, setup_, static_cast<uint64_t>(result_.schedules_executed));
  ++result_.schedules_executed;
  if (!supervised.ok()) {
    // The run was lost after every retry (deadline, livelock, injected
    // fault). Nothing usable was observed; skip the schedule and move on —
    // LIFS completeness degrades gracefully instead of crashing or learning
    // from a corrupt partial trace.
    ++result_.aborted_runs;
    return false;
  }
  EnforceResult& er = *supervised;
  Learn(er.run);

  std::string fp;
  for (const ExecEvent& e : er.run.trace) {
    if (e.is_access) {
      fp += StrFormat("%d.%d.%d.%d.%llu.%d;", e.di.tid, e.di.at.prog, e.di.at.pc,
                      e.di.occurrence, static_cast<unsigned long long>(e.addr),
                      e.is_write ? 1 : 0);
    }
  }
  const bool fresh = fingerprints_.insert(fp).second;
  const bool matched = MatchesTarget(er.run.failure);
  if (options_.keep_explored) {
    result_.explored.push_back(
        {schedule, interleavings, er.run.failure.has_value(), matched, !fresh});
  }
  if (matched) {
    FinalizeFailingRun(er.run, schedule, interleavings);
    return true;
  }
  return false;
}

void Lifs::FinalizeFailingRun(const RunResult& run, const PreemptionSchedule& schedule,
                              int interleavings) {
  result_.reproduced = true;
  result_.failure = run.failure;
  result_.failing_run = run;
  result_.failing_schedule = schedule;
  result_.interleaving_count = interleavings;
  result_.races = ExtractRaces(run);
  for (size_t tid = 0; tid < run.threads.size(); ++tid) {
    if (run.threads[tid].kind == ThreadKind::kHardIrq) {
      result_.irq_threads[static_cast<ThreadId>(tid)] = {run.threads[tid].prog,
                                                         run.threads[tid].arg};
    }
  }

  // Phantom races (§3.4, Figure 6 step 1): conflicting pairs whose second
  // side is an instruction the failure preempted. Reconstructed from the
  // reference streams of clean runs whose control flow matches the executed
  // prefix of the unfinished thread.
  std::map<ThreadId, std::vector<ExecEvent>> executed;
  for (const ExecEvent& e : run.trace) {
    executed[e.di.tid].push_back(e);
  }
  int64_t phantom_seq = run.trace.empty() ? 1 : run.trace.back().seq + 1;
  std::set<std::pair<DynInstr, DynInstr>> dedupe;
  constexpr size_t kMaxPhantoms = 64;

  for (const auto& [tid, ref] : result_.reference_streams) {
    const auto& done = executed[tid];
    if (done.size() >= ref.size()) {
      continue;  // finished (or ref no longer ahead)
    }
    bool prefix_ok = true;
    for (size_t i = 0; i < done.size(); ++i) {
      if (!(done[i].di == ref[i].di)) {
        prefix_ok = false;
        break;
      }
    }
    if (!prefix_ok) {
      continue;  // the failing path diverged from the reference path
    }
    for (size_t i = done.size(); i < ref.size(); ++i) {
      const ExecEvent& f = ref[i];
      if (!f.is_access) {
        continue;
      }
      for (const ExecEvent& e : run.trace) {
        if (!e.is_access || e.di.tid == tid || !Conflicting(e, f)) {
          continue;
        }
        if (!dedupe.insert({e.di, f.di}).second) {
          continue;
        }
        RacePair p;
        p.first = e;
        p.second = f;
        p.second.seq = phantom_seq++;
        result_.phantom_races.push_back(p);
        if (result_.phantom_races.size() >= kMaxPhantoms) {
          return;
        }
      }
    }
  }
}

LifsResult Lifs::Run() {
  search_watch_.Reset();
  RunSearch();
  result_.budget = supervisor_.budget();
  return result_;
}

LifsResult Lifs::RunSearch() {
  Stopwatch watch;
  // Discover the concurrent thread ids (setup threads occupy lower ids).
  std::vector<ThreadId> tids;
  {
    KernelSim probe(image_, slice_, setup_);
    ThreadId first = probe.first_initial_thread();
    for (size_t i = 0; i < slice_.size(); ++i) {
      tids.push_back(first + static_cast<ThreadId>(i));
    }
  }
  result_.slice_tids = tids;

  std::vector<std::vector<ThreadId>> perms;
  {
    std::vector<ThreadId> perm = tids;
    std::sort(perm.begin(), perm.end());
    do {
      perms.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  }

  // Interleaving count 0: sequential orders (also the discovery runs).
  for (const auto& perm : perms) {
    if (Execute({perm, {}}, 0)) {
      result_.seconds = watch.ElapsedSeconds();
      return result_;
    }
  }

  // IRQ discovery (§4.6 extension): a handler's instructions are unknown
  // until it runs once, but the conflict restriction needs them to propose
  // injection points. Inject each line once at the first known access.
  if (!options_.irq_lines.empty()) {
    DynInstr first_access;
    bool have_access = false;
    for (const auto& [tid, accesses] : knowledge_) {
      (void)tid;
      for (const KnownAccess& a : accesses) {
        if (!have_access || a.first_pos < 0) {
          first_access = a.di;
          have_access = true;
          break;
        }
      }
      if (have_access) {
        break;
      }
    }
    if (have_access) {
      for (const IrqLine& line : options_.irq_lines) {
        PreemptionSchedule schedule;
        schedule.base_order = perms.front();
        schedule.points = {{first_access, /*before=*/true, kNoThread, line.handler, line.arg}};
        if (Execute(schedule, 1)) {
          result_.seconds = watch.ElapsedSeconds();
          return result_;
        }
      }
    }
  }

  for (int k = 1; k <= options_.max_interleavings; ++k) {
    // Knowledge can grow while exploring depth k (race-steered control
    // flows); regenerate candidates until a full pass adds nothing new.
    for (;;) {
      if (SearchCutShort()) {
        result_.seconds = watch.ElapsedSeconds();
        return result_;
      }
      std::vector<KnownAccess> candidates = ConflictCandidates();
      size_t total_known = 0;
      for (const auto& [tid, accesses] : knowledge_) {
        (void)tid;
        total_known += accesses.size();
      }
      if (options_.dpor_pruning && candidates.size() < total_known) {
        // Preemptions at non-conflicting instructions are equivalent to not
        // preempting at all — count them as pruned once per depth pass.
        result_.schedules_pruned +=
            static_cast<int64_t>((total_known - candidates.size()) * perms.size());
      }

      const size_t known_before = total_known;

      // Enumerate k-point tuples front-to-back (candidate-major). Each
      // candidate yields a stop-after and a stop-before variant (the latter
      // is the hypervisor's breakpoint-hit semantics), plus, per configured
      // IRQ line, inject-after and inject-before variants (§4.6 extension).
      // Same-thread points must advance in program position.
      const size_t stride = 2 + 2 * options_.irq_lines.size();
      std::vector<size_t> tuple;  // encoded: idx * stride + variant
      bool found = false;
      bool exhausted = false;

      auto decode_point = [&](size_t e) -> PreemptPoint {
        PreemptPoint point;
        point.after = candidates[e / stride].di;
        const size_t variant = e % stride;
        point.before = (variant % 2) != 0;
        if (variant >= 2) {
          const IrqLine& line = options_.irq_lines[(variant - 2) / 2];
          point.inject_irq = line.handler;
          point.irq_arg = line.arg;
        }
        return point;
      };

      auto run_tuple = [&](const std::vector<size_t>& encoded) -> bool {
        std::vector<PreemptPoint> points;
        points.reserve(encoded.size());
        for (size_t e : encoded) {
          points.push_back(decode_point(e));
        }
        for (const auto& perm : perms) {
          if (SearchCutShort()) {
            exhausted = true;
            return false;
          }
          if (Execute({perm, points}, k)) {
            return true;
          }
        }
        return false;
      };

      std::function<bool(size_t)> enumerate = [&](size_t depth) -> bool {
        if (depth == static_cast<size_t>(k)) {
          return run_tuple(tuple);
        }
        for (size_t e = 0; e < candidates.size() * stride; ++e) {
          if (exhausted) {
            return false;
          }
          const size_t i = e / stride;
          if (!tuple.empty()) {
            size_t prev = tuple.back() / stride;
            if (i == prev) {
              continue;  // cannot preempt twice at the same dynamic instr
            }
            if (candidates[i].di.tid == candidates[prev].di.tid &&
                candidates[i].first_pos <= candidates[prev].first_pos) {
              continue;  // same thread must advance front-to-back
            }
          }
          tuple.push_back(e);
          if (enumerate(depth + 1)) {
            return true;
          }
          tuple.pop_back();
        }
        return false;
      };

      found = enumerate(0);
      if (found) {
        result_.seconds = watch.ElapsedSeconds();
        return result_;
      }
      if (exhausted) {
        result_.seconds = watch.ElapsedSeconds();
        return result_;
      }

      size_t known_after = 0;
      for (const auto& [tid, accesses] : knowledge_) {
        (void)tid;
        known_after += accesses.size();
      }
      if (known_after == known_before) {
        break;  // no dynamic discovery at this depth; deepen
      }
    }
  }

  result_.seconds = watch.ElapsedSeconds();
  return result_;
}

}  // namespace aitia
