#include "src/core/report.h"

#include "src/util/strings.h"

namespace aitia {

std::string ReportToJson(const AitiaReport& report, const KernelImage& image) {
  std::string json = "{";
  json += StrFormat("\"diagnosed\": %s", report.diagnosed ? "true" : "false");
  json += StrFormat(", \"degraded\": %s", report.degraded ? "true" : "false");
  if (!report.status.ok()) {
    json += StrFormat(", \"status\": \"%s\"", JsonEscape(report.status.ToString()).c_str());
  }
  json += StrFormat(", \"slices_tried\": %zu", report.slices_tried);

  if (report.lifs.failure.has_value()) {
    const Failure& f = *report.lifs.failure;
    json += StrFormat(
        ", \"failure\": {\"type\": \"%s\", \"thread\": %d, \"prog\": %d, \"pc\": %d, "
        "\"message\": \"%s\"}",
        JsonEscape(FailureTypeName(f.type)).c_str(), f.tid, f.at.prog, f.at.pc,
        JsonEscape(f.message).c_str());
  }

  json += StrFormat(
      ", \"lifs\": {\"reproduced\": %s, \"interleavings\": %d, \"schedules\": %lld, "
      "\"pruned\": %lld, \"seconds\": %.6f}",
      report.lifs.reproduced ? "true" : "false", report.lifs.interleaving_count,
      static_cast<long long>(report.lifs.schedules_executed),
      static_cast<long long>(report.lifs.schedules_pruned), report.lifs.seconds);

  // Always emitted, even for undiagnosed reports: the metrics delta is the
  // flight-recorder readout of what the pipeline actually did.
  json += ", \"metrics\": " + report.metrics.ToJson();

  if (!report.diagnosed) {
    return json + "}";
  }

  const RunBudget& budget = report.causality.budget;
  json += StrFormat(
      ", \"causality\": {\"schedules\": %lld, \"flips_skipped\": %lld, "
      "\"benign\": %d, \"inconclusive\": %d, "
      "\"ambiguous\": %s, \"degraded\": %s, \"seconds\": %.6f, "
      "\"budget\": {\"attempts\": %lld, \"retries\": %lld, \"exhausted\": %lld, "
      "\"deadline_expirations\": %lld, \"watchdog_trips\": %lld, "
      "\"injected_faults\": %lld}}",
      static_cast<long long>(report.causality.schedules_executed),
      static_cast<long long>(report.causality.flips_skipped),
      report.causality.benign_count, report.causality.inconclusive_count,
      report.causality.ambiguous ? "true" : "false",
      report.causality.degraded ? "true" : "false", report.causality.seconds,
      static_cast<long long>(budget.attempts), static_cast<long long>(budget.retries),
      static_cast<long long>(budget.exhausted),
      static_cast<long long>(budget.deadline_expirations),
      static_cast<long long>(budget.watchdog_trips),
      static_cast<long long>(budget.injected_faults));

  json += ", \"races\": [";
  for (size_t i = 0; i < report.causality.tested.size(); ++i) {
    const TestedRace& t = report.causality.tested[i];
    if (i != 0) {
      json += ", ";
    }
    json += StrFormat(
        "{\"label\": \"%s\", \"verdict\": \"%s\", \"phantom\": %s, "
        "\"critical_section\": %s, "
        "\"triage\": {\"verdict\": \"%s\", \"stage\": \"%s\", \"skipped\": %s, "
        "\"reason\": \"%s\"}}",
        JsonEscape(RaceLabel(image, t.race)).c_str(), RaceVerdictName(t.verdict),
        t.phantom ? "true" : "false", t.race.cs_pair ? "true" : "false",
        analysis::TriageVerdictName(t.triage_verdict),
        JsonEscape(t.triage_stage).c_str(), t.flip_skipped ? "true" : "false",
        JsonEscape(t.triage_reason).c_str());
  }
  json += "]";

  const CausalityChain& chain = report.causality.chain;
  json += StrFormat(", \"chain\": {\"rendered\": \"%s\", \"nodes\": [",
                    JsonEscape(chain.Render(image)).c_str());
  for (size_t n = 0; n < chain.nodes().size(); ++n) {
    const ChainNode& node = chain.nodes()[n];
    if (n != 0) {
      json += ", ";
    }
    json += "{\"races\": [";
    for (size_t r = 0; r < node.races.size(); ++r) {
      if (r != 0) {
        json += ", ";
      }
      json += "\"" + JsonEscape(RaceLabel(image, node.races[r])) + "\"";
    }
    json += StrFormat("], \"ambiguous\": %s}", node.ambiguous ? "true" : "false");
  }
  json += "], \"edges\": [";
  for (size_t e = 0; e < chain.edges().size(); ++e) {
    if (e != 0) {
      json += ", ";
    }
    json += StrFormat("[%zu, %zu]", chain.edges()[e].first, chain.edges()[e].second);
  }
  json += "]}}";
  return json;
}

}  // namespace aitia
