// Causality Analysis (§3.4).
//
// Given LIFS's failure-causing instruction sequence and the data races found
// in it, Causality Analysis tests each race by *flipping* its interleaving
// order while keeping every other order intact, re-executing the kernel, and
// observing the outcome:
//
//   flipped run does not fail       -> the race contributes to the failure
//                                      (root cause set);
//   flipped run still fails         -> the race is benign (excluded);
//   while race R1 is flipped, some
//   root-cause race R2 never occurs -> R1 steers control flow into R2:
//                                      a causality edge R1 -> R2.
//
// Critical sections protected by a common lock flip as a unit (liveness);
// a flip that necessarily reverses a nested race is marked ambiguous when
// both turn out to be root causes (Figure 7). Flip tests are independent
// deterministic runs, so they parallelize across diagnoser workers — the
// analog of the paper's fleet of diagnosis VMs (§4.5).

#ifndef SRC_CORE_CAUSALITY_H_
#define SRC_CORE_CAUSALITY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/triage.h"
#include "src/core/chain.h"
#include "src/core/lifs.h"
#include "src/hv/enforcer.h"
#include "src/hv/supervisor.h"
#include "src/util/status.h"

namespace aitia {

struct CausalityOptions {
  int64_t max_steps_per_run = 200000;
  size_t max_tests = 256;
  // Number of parallel diagnoser workers; 0 or 1 runs serially.
  size_t workers = 1;
  // Supervised execution of flip tests: deadline, watchdog, retries, fault
  // plan. `supervisor.max_steps` is overridden by max_steps_per_run. A flip
  // test that fails every attempt is reported kInconclusive — never benign.
  SupervisorOptions supervisor;
  // Prefix-replay checkpointing (src/ckpt, DESIGN.md §12): backward flip
  // tests restore the longest matching total-order prefix instead of
  // re-executing it. Verdicts and chains are bit-identical either way.
  // Ignored while the supervisor's fault plan is enabled.
  bool checkpointing = true;
  // Store to use (not owned) — the facade shares the slice's LIFS store so
  // flips reuse its baseline; nullptr makes the analysis own a private one.
  ckpt::CheckpointStore* checkpoint_store = nullptr;
  // Static triage pre-filter (DESIGN.md §13): an ordered pipeline of stages
  // run over each candidate before the dynamic flip. A kProvablyBenign
  // verdict skips the re-execution and synthesizes the (proven) benign
  // outcome; everything else still flips. Empty disables the pre-filter.
  // Ignored while the supervisor's fault plan is enabled — triage proofs
  // reason about deterministic replay, and fault injection breaks that.
  analysis::TriagePipeline stages = analysis::DefaultTriagePipeline();
  // Progress-event scope (src/obs/events.h): nonzero tags triage /
  // flip-tested / verdict events for streaming subscribers; 0 publishes
  // nothing.
  uint64_t event_scope = 0;
};

enum class RaceVerdict {
  kRootCause,     // flip prevented the failure
  kBenign,        // flip left the failure intact
  kInconclusive,  // flip not enforceable, or the run budget was exhausted
  kAmbiguous,     // root cause, but entangled with a nested root cause
};

const char* RaceVerdictName(RaceVerdict verdict);

struct TestedRace {
  RacePair race;
  bool phantom = false;
  RaceVerdict verdict = RaceVerdict::kBenign;
  // Health of the flip run: non-ok when supervision exhausted its attempts
  // (deadline, livelock, lost run) and the verdict is kInconclusive.
  Status run_status;
  bool flip_still_failed = false;
  bool flip_took_effect = false;
  // Indices (into CausalityResult::tested) of races that did not occur in
  // this race's flipped run.
  std::vector<size_t> disappeared;
  // Indices of races necessarily reversed alongside this flip (nested).
  std::vector<size_t> nested;
  // Static triage outcome for this candidate (pre-filter, DESIGN.md §13).
  // kUnknown with an empty stage when the pre-filter was off or abstained.
  analysis::TriageVerdict triage_verdict = analysis::TriageVerdict::kUnknown;
  std::string triage_stage;
  std::string triage_reason;
  // True when the dynamic flip was skipped because triage proved its
  // outcome; verdict/flip bits/disappeared are then the proven prediction.
  bool flip_skipped = false;
};

struct CausalityResult {
  std::vector<TestedRace> tested;  // backward order (latest race first)
  std::vector<size_t> root_cause_indices;
  // Flip tests whose run budget was exhausted (verdict kInconclusive with a
  // non-ok run_status) — the report must surface these as unclassified.
  std::vector<size_t> inconclusive_indices;
  CausalityChain chain;
  // Dynamic flip runs actually executed (excludes pre-filtered skips);
  // schedules_executed + flips_skipped == tested.size().
  int64_t schedules_executed = 0;
  // Flip tests discharged statically by the triage pre-filter.
  int64_t flips_skipped = 0;
  // Supervision accounting across all flip tests.
  RunBudget budget;
  double seconds = 0;
  int benign_count = 0;
  int inconclusive_count = 0;
  bool ambiguous = false;
  // True when at least one flip test could not be completed: the diagnosis
  // is usable but partial, and the report says so.
  bool degraded = false;
};

class CausalityAnalysis {
 public:
  CausalityAnalysis(const KernelImage* image, std::vector<ThreadSpec> slice,
                    std::vector<ThreadSpec> setup, const LifsResult* lifs,
                    CausalityOptions options);

  CausalityResult Run();

 private:
  struct TestItem {
    RacePair race;
    bool phantom = false;
  };

  // Builds the flipped total order for one race (block move for executed
  // pairs, reference-stream splice for phantom pairs).
  TotalOrderSchedule BuildFlip(const TestItem& item) const;
  // Test items whose order this flip necessarily reverses.
  std::vector<size_t> NestedOf(const std::vector<TestItem>& items, size_t index) const;
  // True if `race` executed in `run` in its original order.
  static bool OccurredInOrder(const RacePair& race, const RunResult& run);
  // True if both sides of `race` retired in `run` (any order). A race whose
  // side vanished from the run "disappeared" via race-steered control flow.
  static bool BothSidesExecuted(const RacePair& race, const RunResult& run);

  const KernelImage* image_;
  std::vector<ThreadSpec> slice_;
  std::vector<ThreadSpec> setup_;
  const LifsResult* lifs_;
  CausalityOptions options_;
};

}  // namespace aitia

#endif  // SRC_CORE_CAUSALITY_H_
