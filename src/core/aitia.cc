#include "src/core/aitia.h"

#include <algorithm>
#include <memory>

#include "src/ckpt/store.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/log.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace aitia {

AitiaOptions& AitiaOptions::set_jobs(size_t jobs) {
  const size_t resolved = ThreadPool::ResolveWorkers(jobs);
  lifs.workers = resolved;
  causality.workers = resolved;
  reproducer_workers = resolved;
  return *this;
}

AitiaOptions& AitiaOptions::set_deadline(double seconds) {
  if (seconds > 0) {
    lifs.search_deadline_seconds = seconds;
    lifs.supervisor.deadline_seconds = seconds;
    causality.supervisor.deadline_seconds = seconds;
  }
  return *this;
}

AitiaOptions& AitiaOptions::set_cancel(std::function<bool()> cancel) {
  lifs.supervisor.cancel = cancel;
  causality.supervisor.cancel = std::move(cancel);
  return *this;
}

AitiaOptions& AitiaOptions::set_event_scope(uint64_t scope) {
  lifs.event_scope = scope;
  lifs.supervisor.event_scope = scope;
  causality.event_scope = scope;
  causality.supervisor.event_scope = scope;
  return *this;
}

AitiaOptions& AitiaOptions::set_replay_cache(bool enabled) {
  lifs.checkpointing = enabled;
  causality.checkpointing = enabled;
  return *this;
}

AitiaOptions& AitiaOptions::set_prefilter(bool enabled) {
  causality.stages =
      enabled ? analysis::DefaultTriagePipeline() : analysis::TriagePipeline{};
  return *this;
}

Status AitiaOptions::set_triage(const std::string& spec) {
  StatusOr<analysis::TriagePipeline> pipeline = analysis::TriagePipelineFromSpec(spec);
  if (!pipeline.ok()) {
    return pipeline.status();
  }
  causality.stages = std::move(*pipeline);
  return Status();
}

std::string AitiaReport::Render(const KernelImage& image) const {
  std::string out;
  if (!diagnosed) {
    out += "AITIA: failure NOT reproduced";
    out += StrFormat(" (%zu slice(s) tried, %lld schedules)\n", slices_tried,
                     static_cast<long long>(lifs.schedules_executed));
    if (!status.ok()) {
      out += "status     : " + status.ToString() + "\n";
    }
    return out;
  }
  out += "=== AITIA diagnosis ===\n";
  if (degraded) {
    out += "*** DEGRADED: parts of the diagnosis exhausted their run budget ***\n";
  }
  out += "failure    : " + lifs.failure->ToString() + "\n";
  out += StrFormat("LIFS       : reproduced with %d interleaving(s), %lld schedule(s), %.3fs\n",
                   lifs.interleaving_count,
                   static_cast<long long>(lifs.schedules_executed), lifs.seconds);
  if (lifs.aborted_runs > 0) {
    out += StrFormat("             %lld run(s) lost to supervision [%s]\n",
                     static_cast<long long>(lifs.aborted_runs),
                     lifs.budget.ToString().c_str());
  }
  out += StrFormat("Causality  : %lld flip test(s), %.3fs\n",
                   static_cast<long long>(causality.schedules_executed), causality.seconds);
  if (causality.flips_skipped > 0) {
    out += StrFormat("             %lld flip(s) discharged statically by the triage pre-filter\n",
                     static_cast<long long>(causality.flips_skipped));
  }
  if (causality.budget.retries > 0 || causality.budget.exhausted > 0) {
    out += "             supervision: " + causality.budget.ToString() + "\n";
  }
  out += "\nfailure-causing instruction sequence (memory accesses):\n";
  for (const ExecEvent& e : lifs.failing_run.trace) {
    if (!e.is_access) {
      continue;
    }
    out += StrFormat("  [%4lld] T%d %s\n", static_cast<long long>(e.seq), e.di.tid,
                     image.Describe(e.di.at).c_str());
  }
  out += "\ntested data races (backward):\n";
  for (const TestedRace& t : causality.tested) {
    std::string marks;
    if (t.phantom) marks += " [phantom]";
    if (t.race.cs_pair) marks += " [critical-section]";
    if (t.flip_skipped) marks += " [static: " + t.triage_stage + "]";
    if (!t.run_status.ok()) marks += " [run budget exhausted]";
    out += StrFormat("  %-28s %-12s%s\n", RaceLabel(image, t.race).c_str(),
                     RaceVerdictName(t.verdict), marks.c_str());
  }
  if (!causality.inconclusive_indices.empty()) {
    out += "\ninconclusive flip tests (budget exhausted after retries; these races\n"
           "are UNCLASSIFIED, not benign):\n";
    for (size_t i : causality.inconclusive_indices) {
      const TestedRace& t = causality.tested[i];
      out += StrFormat("  %-28s %s\n", RaceLabel(image, t.race).c_str(),
                       t.run_status.ToString().c_str());
    }
  }
  out += "\ncausality chain:\n  " + causality.chain.Render(image) + "\n";
  return out;
}

namespace {

// Folds stage-level health into the report: LIFS aborts or inconclusive flip
// tests mark the report degraded, and a search cut short surfaces as the
// report status so "NOT reproduced" is distinguishable from "ran out of
// budget while trying".
void FinalizeReport(AitiaReport& report) {
  if (report.causality.degraded || report.lifs.aborted_runs > 0) {
    report.degraded = true;
  }
  if (!report.lifs.status.ok()) {
    report.status = report.lifs.status;
    report.degraded = true;
  }
}

// One checkpoint store per slice, shared between that slice's LIFS search
// and its Causality Analysis so flip tests reuse the baseline the search
// captured. Stores are scoped to one (image, slice, setup) — per-slice
// creation is a correctness requirement, not a tuning choice — so the facade
// never reuses one across slices. Returns nullptr when checkpointing is off
// or the caller already supplied a store.
std::unique_ptr<ckpt::CheckpointStore> MakeSliceStore(const AitiaOptions& options) {
  if (!options.lifs.checkpointing || options.lifs.checkpoint_store != nullptr) {
    return nullptr;
  }
  ckpt::StoreOptions so;
  so.event_scope = options.lifs.event_scope;
  return std::make_unique<ckpt::CheckpointStore>(so);
}

CausalityOptions SliceCausalityOptions(const AitiaOptions& options,
                                       ckpt::CheckpointStore* store) {
  CausalityOptions co = options.causality;
  if (store != nullptr && co.checkpointing && co.checkpoint_store == nullptr) {
    co.checkpoint_store = store;
  }
  return co;
}

AitiaReport DiagnoseSliceImpl(const KernelImage& image, const std::vector<ThreadSpec>& slice,
                              const std::vector<ThreadSpec>& setup,
                              const AitiaOptions& options) {
  AitiaReport report;
  report.slices_tried = 1;
  report.used_slice.threads = slice;
  report.used_slice.setup = setup;

  std::unique_ptr<ckpt::CheckpointStore> store = MakeSliceStore(options);
  LifsOptions lifs_options = options.lifs;
  if (store != nullptr) {
    lifs_options.checkpoint_store = store.get();
  }
  Lifs lifs(&image, slice, setup, lifs_options);
  report.lifs = lifs.Run();
  if (!report.lifs.reproduced) {
    FinalizeReport(report);
    return report;
  }
  CausalityAnalysis ca(&image, slice, setup, &report.lifs,
                       SliceCausalityOptions(options, store.get()));
  report.causality = ca.Run();
  report.diagnosed = true;
  FinalizeReport(report);
  return report;
}

AitiaReport DiagnoseHistoryImpl(const KernelImage& image, const ExecutionHistory& history,
                                const AitiaOptions& options) {
  AitiaReport report;
  std::vector<Slice> slices = BuildSlices(history, options.slicer);
  if (slices.size() > options.max_slices) {
    slices.resize(options.max_slices);
  }

  AitiaOptions slice_options = options;
  if (history.failure.has_value() && !slice_options.lifs.target.has_value()) {
    slice_options.lifs.target = history.failure->failure;
  }

  if (options.reproducer_workers > 1 && slices.size() > 1) {
    // Parallel reproducing stage: one LIFS instance per slice, keep the
    // highest-priority slice that reproduced.
    std::vector<LifsResult> results(slices.size());
    // Per-slice checkpoint stores outlive the parallel stage so the winning
    // slice's Causality Analysis can resume from the prefixes its own LIFS
    // search deposited.
    std::vector<std::unique_ptr<ckpt::CheckpointStore>> stores(slices.size());
    ThreadPool pool(options.reproducer_workers);
    ParallelFor(pool, slices.size(), [&](size_t i) {
      stores[i] = MakeSliceStore(slice_options);
      LifsOptions lifs_options = slice_options.lifs;
      if (stores[i] != nullptr) {
        lifs_options.checkpoint_store = stores[i].get();
      }
      Lifs lifs(&image, slices[i].threads, slices[i].setup, lifs_options);
      results[i] = lifs.Run();
    });
    for (size_t i = 0; i < slices.size(); ++i) {
      ++report.slices_tried;
      if (results[i].reproduced) {
        report.used_slice = slices[i];
        report.lifs = std::move(results[i]);
        CausalityAnalysis ca(&image, slices[i].threads, slices[i].setup, &report.lifs,
                             SliceCausalityOptions(slice_options, stores[i].get()));
        report.causality = ca.Run();
        report.diagnosed = true;
        FinalizeReport(report);
        return report;
      }
    }
    return report;
  }

  for (const Slice& slice : slices) {
    ++report.slices_tried;
    std::unique_ptr<ckpt::CheckpointStore> store = MakeSliceStore(slice_options);
    LifsOptions lifs_options = slice_options.lifs;
    if (store != nullptr) {
      lifs_options.checkpoint_store = store.get();
    }
    Lifs lifs(&image, slice.threads, slice.setup, lifs_options);
    LifsResult result = lifs.Run();
    if (!result.reproduced) {
      // Remember why the most recent attempt came up empty; budget-cut
      // searches must not read as clean non-reproduction.
      if (!result.status.ok()) {
        report.status = result.status;
        report.degraded = true;
      }
      continue;
    }
    report.used_slice = slice;
    report.lifs = std::move(result);
    CausalityAnalysis ca(&image, slice.threads, slice.setup, &report.lifs,
                         SliceCausalityOptions(slice_options, store.get()));
    report.causality = ca.Run();
    report.diagnosed = true;
    FinalizeReport(report);
    return report;
  }
  return report;
}

}  // namespace

AitiaReport DiagnoseSlice(const KernelImage& image, const std::vector<ThreadSpec>& slice,
                          const std::vector<ThreadSpec>& setup, const AitiaOptions& options) {
  // Per-diagnosis metrics as a delta of the process-wide registry: cheap,
  // and correct even when many diagnoses share one process. Observability
  // stays read-side — nothing below consults the registry or the tracer to
  // make a decision.
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  AitiaReport report;
  {
    obs::Span span("pipeline", "aitia.diagnose_slice");
    report = DiagnoseSliceImpl(image, slice, setup, options);
    span.Arg("diagnosed", report.diagnosed)
        .Arg("degraded", report.degraded)
        .Arg("slices_tried", static_cast<int64_t>(report.slices_tried));
  }
  report.metrics = obs::MetricsRegistry::Global().Snapshot().Delta(before);
  return report;
}

AitiaReport DiagnoseHistory(const KernelImage& image, const ExecutionHistory& history,
                            const AitiaOptions& options) {
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  AitiaReport report;
  {
    obs::Span span("pipeline", "aitia.diagnose_history");
    report = DiagnoseHistoryImpl(image, history, options);
    span.Arg("diagnosed", report.diagnosed)
        .Arg("degraded", report.degraded)
        .Arg("slices_tried", static_cast<int64_t>(report.slices_tried));
  }
  report.metrics = obs::MetricsRegistry::Global().Snapshot().Delta(before);
  return report;
}

}  // namespace aitia
