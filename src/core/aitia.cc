#include "src/core/aitia.h"

#include <algorithm>

#include "src/util/log.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace aitia {

std::string AitiaReport::Render(const KernelImage& image) const {
  std::string out;
  if (!diagnosed) {
    out += "AITIA: failure NOT reproduced";
    out += StrFormat(" (%zu slice(s) tried, %lld schedules)\n", slices_tried,
                     static_cast<long long>(lifs.schedules_executed));
    return out;
  }
  out += "=== AITIA diagnosis ===\n";
  out += "failure    : " + lifs.failure->ToString() + "\n";
  out += StrFormat("LIFS       : reproduced with %d interleaving(s), %lld schedule(s), %.3fs\n",
                   lifs.interleaving_count,
                   static_cast<long long>(lifs.schedules_executed), lifs.seconds);
  out += StrFormat("Causality  : %lld flip test(s), %.3fs\n",
                   static_cast<long long>(causality.schedules_executed), causality.seconds);
  out += "\nfailure-causing instruction sequence (memory accesses):\n";
  for (const ExecEvent& e : lifs.failing_run.trace) {
    if (!e.is_access) {
      continue;
    }
    out += StrFormat("  [%4lld] T%d %s\n", static_cast<long long>(e.seq), e.di.tid,
                     image.Describe(e.di.at).c_str());
  }
  out += "\ntested data races (backward):\n";
  for (const TestedRace& t : causality.tested) {
    out += StrFormat("  %-28s %-12s%s%s\n", RaceLabel(image, t.race).c_str(),
                     RaceVerdictName(t.verdict), t.phantom ? " [phantom]" : "",
                     t.race.cs_pair ? " [critical-section]" : "");
  }
  out += "\ncausality chain:\n  " + causality.chain.Render(image) + "\n";
  return out;
}

AitiaReport DiagnoseSlice(const KernelImage& image, const std::vector<ThreadSpec>& slice,
                          const std::vector<ThreadSpec>& setup, const AitiaOptions& options) {
  AitiaReport report;
  report.slices_tried = 1;
  report.used_slice.threads = slice;
  report.used_slice.setup = setup;

  Lifs lifs(&image, slice, setup, options.lifs);
  report.lifs = lifs.Run();
  if (!report.lifs.reproduced) {
    return report;
  }
  CausalityAnalysis ca(&image, slice, setup, &report.lifs, options.causality);
  report.causality = ca.Run();
  report.diagnosed = true;
  return report;
}

AitiaReport DiagnoseHistory(const KernelImage& image, const ExecutionHistory& history,
                            const AitiaOptions& options) {
  AitiaReport report;
  std::vector<Slice> slices = BuildSlices(history, options.slicer);
  if (slices.size() > options.max_slices) {
    slices.resize(options.max_slices);
  }

  AitiaOptions slice_options = options;
  if (history.failure.has_value() && !slice_options.lifs.target.has_value()) {
    slice_options.lifs.target = history.failure->failure;
  }

  if (options.reproducer_workers > 1 && slices.size() > 1) {
    // Parallel reproducing stage: one LIFS instance per slice, keep the
    // highest-priority slice that reproduced.
    std::vector<LifsResult> results(slices.size());
    ThreadPool pool(options.reproducer_workers);
    ParallelFor(pool, slices.size(), [&](size_t i) {
      Lifs lifs(&image, slices[i].threads, slices[i].setup, slice_options.lifs);
      results[i] = lifs.Run();
    });
    for (size_t i = 0; i < slices.size(); ++i) {
      ++report.slices_tried;
      if (results[i].reproduced) {
        report.used_slice = slices[i];
        report.lifs = std::move(results[i]);
        CausalityAnalysis ca(&image, slices[i].threads, slices[i].setup, &report.lifs,
                             slice_options.causality);
        report.causality = ca.Run();
        report.diagnosed = true;
        return report;
      }
    }
    return report;
  }

  for (const Slice& slice : slices) {
    ++report.slices_tried;
    Lifs lifs(&image, slice.threads, slice.setup, slice_options.lifs);
    LifsResult result = lifs.Run();
    if (!result.reproduced) {
      continue;
    }
    report.used_slice = slice;
    report.lifs = std::move(result);
    CausalityAnalysis ca(&image, slice.threads, slice.setup, &report.lifs,
                         slice_options.causality);
    report.causality = ca.Run();
    report.diagnosed = true;
    return report;
  }
  return report;
}

}  // namespace aitia
