#include "src/core/chain.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/util/strings.h"

namespace aitia {
namespace {

// Tag of one side: the "A6" of a note like "A6: po->fanout = match", falling
// back to "prog+pc".
std::string SideTag(const KernelImage& image, const DynInstr& di) {
  const Program& p = image.program(di.at.prog);
  if (di.at.pc >= 0 && di.at.pc < p.size()) {
    const std::string& note = p.At(di.at.pc).note;
    auto colon = note.find(':');
    if (colon != std::string::npos && colon > 0 && colon <= 8) {
      return note.substr(0, colon);
    }
  }
  return StrFormat("%s+%d", p.name.c_str(), di.at.pc);
}

}  // namespace

std::string RaceLabel(const KernelImage& image, const RacePair& race) {
  std::string label = SideTag(image, race.first.di) + " => " + SideTag(image, race.second.di);
  if (race.cs_pair) {
    label = "cs{" + label + "}";
  }
  return label;
}

CausalityChain CausalityChain::Build(const std::vector<RacePair>& races,
                                     const std::vector<std::vector<size_t>>& disappears,
                                     const std::vector<bool>& ambiguous,
                                     const Failure& failure) {
  CausalityChain chain;
  chain.failure_ = failure;
  const size_t n = races.size();
  if (n == 0) {
    return chain;
  }

  // Reachability closure of the disappearance digraph (tiny n).
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j : disappears[i]) {
      reach[i][j] = true;
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) {
        continue;
      }
      for (size_t j = 0; j < n; ++j) {
        if (reach[k][j]) {
          reach[i][j] = true;
        }
      }
    }
  }

  // Strongly connected components -> conjunction groups.
  std::vector<int> comp(n, -1);
  int ncomp = 0;
  for (size_t i = 0; i < n; ++i) {
    if (comp[i] != -1) {
      continue;
    }
    comp[i] = ncomp;
    for (size_t j = i + 1; j < n; ++j) {
      if (comp[j] == -1 && reach[i][j] && reach[j][i]) {
        comp[j] = ncomp;
      }
    }
    ++ncomp;
  }

  // Component edges (from the closure, then transitively reduced).
  std::vector<std::set<int>> cedges(static_cast<size_t>(ncomp));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (reach[i][j] && comp[i] != comp[j]) {
        cedges[static_cast<size_t>(comp[i])].insert(comp[j]);
      }
    }
  }
  // Transitive reduction: drop a->c when a->b and b->c exist.
  std::vector<std::set<int>> reduced(static_cast<size_t>(ncomp));
  for (int a = 0; a < ncomp; ++a) {
    for (int c : cedges[static_cast<size_t>(a)]) {
      bool redundant = false;
      for (int b : cedges[static_cast<size_t>(a)]) {
        if (b != c && cedges[static_cast<size_t>(b)].count(c) != 0) {
          redundant = true;
          break;
        }
      }
      if (!redundant) {
        reduced[static_cast<size_t>(a)].insert(c);
      }
    }
  }

  // Topological order of components (causes before effects), tie-broken by
  // earliest second.seq so the rendering follows the failing sequence.
  std::vector<int64_t> comp_key(static_cast<size_t>(ncomp), 0);
  for (size_t i = 0; i < n; ++i) {
    auto& key = comp_key[static_cast<size_t>(comp[i])];
    key = std::max(key, races[i].second.seq);
  }
  std::vector<int> indegree(static_cast<size_t>(ncomp), 0);
  for (int a = 0; a < ncomp; ++a) {
    for (int b : reduced[static_cast<size_t>(a)]) {
      ++indegree[static_cast<size_t>(b)];
    }
  }
  std::vector<int> order;
  order.reserve(static_cast<size_t>(ncomp));
  std::vector<bool> emitted(static_cast<size_t>(ncomp), false);
  while (static_cast<int>(order.size()) < ncomp) {
    int pick = -1;
    for (int c = 0; c < ncomp; ++c) {
      if (emitted[static_cast<size_t>(c)] || indegree[static_cast<size_t>(c)] != 0) {
        continue;
      }
      if (pick == -1 ||
          comp_key[static_cast<size_t>(c)] < comp_key[static_cast<size_t>(pick)]) {
        pick = c;
      }
    }
    if (pick == -1) {
      // Defensive: should be acyclic after condensation; fall back to keys.
      for (int c = 0; c < ncomp; ++c) {
        if (!emitted[static_cast<size_t>(c)]) {
          pick = c;
          break;
        }
      }
    }
    emitted[static_cast<size_t>(pick)] = true;
    order.push_back(pick);
    for (int b : reduced[static_cast<size_t>(pick)]) {
      --indegree[static_cast<size_t>(b)];
    }
  }

  std::vector<size_t> comp_to_node(static_cast<size_t>(ncomp));
  for (int c : order) {
    ChainNode node;
    for (size_t i = 0; i < n; ++i) {
      if (comp[i] == c) {
        node.races.push_back(races[i]);
        node.ambiguous = node.ambiguous || ambiguous[i];
      }
    }
    std::sort(node.races.begin(), node.races.end(),
              [](const RacePair& a, const RacePair& b) { return a.second.seq < b.second.seq; });
    comp_to_node[static_cast<size_t>(c)] = chain.nodes_.size();
    chain.nodes_.push_back(std::move(node));
  }
  for (int a = 0; a < ncomp; ++a) {
    for (int b : reduced[static_cast<size_t>(a)]) {
      chain.edges_.emplace_back(comp_to_node[static_cast<size_t>(a)],
                                comp_to_node[static_cast<size_t>(b)]);
    }
  }
  return chain;
}

size_t CausalityChain::race_count() const {
  size_t n = 0;
  for (const auto& node : nodes_) {
    n += node.races.size();
  }
  return n;
}

bool CausalityChain::has_ambiguity() const {
  for (const auto& node : nodes_) {
    if (node.ambiguous) {
      return true;
    }
  }
  return false;
}

std::string CausalityChain::Render(const KernelImage& image) const {
  if (nodes_.empty()) {
    return std::string("<empty chain> --> ") + FailureTypeName(failure_.type);
  }
  std::vector<std::string> parts;
  parts.reserve(nodes_.size() + 1);
  for (const auto& node : nodes_) {
    std::vector<std::string> labels;
    labels.reserve(node.races.size());
    for (const auto& race : node.races) {
      labels.push_back("(" + RaceLabel(image, race) + ")");
    }
    std::string part = StrJoin(labels, " ^ ");
    if (node.ambiguous) {
      part += " [ambiguous]";
    }
    parts.push_back(part);
  }
  parts.push_back(FailureTypeName(failure_.type));
  return StrJoin(parts, " --> ");
}

}  // namespace aitia
