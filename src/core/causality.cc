#include "src/core/causality.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace aitia {
namespace {

struct CausalityMetrics {
  obs::Counter* analyses;
  obs::Counter* flip_tests;
  obs::Counter* root_cause;
  obs::Counter* benign;
  obs::Counter* inconclusive;
  obs::Counter* ambiguous;
  obs::Counter* us;
  // Static triage pre-filter (DESIGN.md §13).
  obs::Counter* prefilter_candidates;
  obs::Counter* prefilter_skipped;
  obs::Counter* prefilter_cs_units;
  obs::Counter* prefilter_unknown;

  static const CausalityMetrics& Get() {
    static const CausalityMetrics* const m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* cm = new CausalityMetrics();
      cm->analyses = reg.GetCounter("causality.analyses");
      cm->flip_tests = reg.GetCounter("causality.flip_tests");
      cm->root_cause = reg.GetCounter("causality.verdicts.root_cause");
      cm->benign = reg.GetCounter("causality.verdicts.benign");
      cm->inconclusive = reg.GetCounter("causality.verdicts.inconclusive");
      cm->ambiguous = reg.GetCounter("causality.verdicts.ambiguous");
      cm->us = reg.GetCounter("causality.us");
      cm->prefilter_candidates = reg.GetCounter("prefilter.candidates");
      cm->prefilter_skipped = reg.GetCounter("prefilter.skipped");
      cm->prefilter_cs_units = reg.GetCounter("prefilter.cs_units");
      cm->prefilter_unknown = reg.GetCounter("prefilter.unknown");
      return cm;
    }();
    return *m;
  }
};

}  // namespace

const char* RaceVerdictName(RaceVerdict verdict) {
  switch (verdict) {
    case RaceVerdict::kRootCause: return "root-cause";
    case RaceVerdict::kBenign: return "benign";
    case RaceVerdict::kInconclusive: return "inconclusive";
    case RaceVerdict::kAmbiguous: return "ambiguous";
  }
  return "?";
}

CausalityAnalysis::CausalityAnalysis(const KernelImage* image, std::vector<ThreadSpec> slice,
                                     std::vector<ThreadSpec> setup, const LifsResult* lifs,
                                     CausalityOptions options)
    : image_(image),
      slice_(std::move(slice)),
      setup_(std::move(setup)),
      lifs_(lifs),
      options_(options) {}

TotalOrderSchedule CausalityAnalysis::BuildFlip(const TestItem& item) const {
  const auto& trace = lifs_->failing_run.trace;
  TotalOrderSchedule schedule;
  schedule.base_order = lifs_->failing_schedule.base_order;
  schedule.irq_threads = lifs_->irq_threads;

  if (!item.phantom) {
    // Block move: thread(first)'s events in [a_seq, b_seq] land right after
    // the second side (flip as a unit for critical-section pairs).
    int64_t a_seq = item.race.first.seq;
    int64_t b_seq = item.race.second.seq;
    if (item.race.cs_pair) {
      a_seq = item.race.first_cs_begin;
      b_seq = item.race.second_cs_end;
    }
    const ThreadId mover = item.race.first.di.tid;
    std::vector<DynInstr> block;
    for (const ExecEvent& e : trace) {
      if (e.di.tid == mover && e.seq >= a_seq && e.seq <= b_seq) {
        block.push_back(e.di);
      }
    }
    for (const ExecEvent& e : trace) {
      const bool in_block = e.di.tid == mover && e.seq >= a_seq && e.seq <= b_seq;
      if (!in_block) {
        schedule.sequence.push_back(e.di);
      }
      if (e.seq == b_seq) {
        schedule.sequence.insert(schedule.sequence.end(), block.begin(), block.end());
      }
    }
    return schedule;
  }

  // Phantom flip (Figure 6 step 1): splice the unexecuted suffix of the
  // second side's thread — up to and including the phantom instruction —
  // immediately before the first side.
  const ThreadId tid = item.race.second.di.tid;
  auto ref_it = lifs_->reference_streams.find(tid);
  if (ref_it == lifs_->reference_streams.end()) {
    // No reference; degrade to replaying the original order (inconclusive).
    for (const ExecEvent& e : trace) {
      schedule.sequence.push_back(e.di);
    }
    return schedule;
  }
  const auto& ref = ref_it->second;
  size_t executed = 0;
  for (const ExecEvent& e : trace) {
    if (e.di.tid == tid) {
      ++executed;
    }
  }
  std::vector<DynInstr> block;
  for (size_t i = executed; i < ref.size(); ++i) {
    block.push_back(ref[i].di);
    if (ref[i].di == item.race.second.di) {
      break;
    }
  }
  for (const ExecEvent& e : trace) {
    if (e.seq == item.race.first.seq) {
      schedule.sequence.insert(schedule.sequence.end(), block.begin(), block.end());
    }
    schedule.sequence.push_back(e.di);
  }
  return schedule;
}

std::vector<size_t> CausalityAnalysis::NestedOf(const std::vector<TestItem>& items,
                                                size_t index) const {
  std::vector<size_t> nested;
  const TestItem& p = items[index];

  int64_t a_seq = 0;
  int64_t b_seq = 0;
  ThreadId mover = kNoThread;
  bool move_earlier = false;  // phantom flips move the block earlier
  if (!p.phantom) {
    a_seq = p.race.cs_pair ? p.race.first_cs_begin : p.race.first.seq;
    b_seq = p.race.cs_pair ? p.race.second_cs_end : p.race.second.seq;
    mover = p.race.first.di.tid;
  } else {
    mover = p.race.second.di.tid;
    move_earlier = true;
  }

  for (size_t j = 0; j < items.size(); ++j) {
    if (j == index) {
      continue;
    }
    const TestItem& q = items[j];
    if (!move_earlier) {
      // q is reversed if q.first rides in the moved block while q.second
      // stays put inside the window.
      if (!q.phantom && q.race.first.di.tid == mover && q.race.first.seq >= a_seq &&
          q.race.first.seq <= b_seq && q.race.second.di.tid != mover &&
          q.race.second.seq > q.race.first.seq && q.race.second.seq <= b_seq) {
        nested.push_back(j);
      }
    } else {
      // Phantom block insertion before p.first reverses pairs whose second
      // side rides in the inserted block (same thread, at or before p's
      // phantom in program order — phantom seqs are assigned in reference
      // order) and whose first side executes at or after p.first.
      if (q.phantom && q.race.second.di.tid == mover &&
          q.race.second.seq <= p.race.second.seq &&
          q.race.first.seq >= p.race.first.seq) {
        nested.push_back(j);
      }
    }
  }
  return nested;
}

bool CausalityAnalysis::OccurredInOrder(const RacePair& race, const RunResult& run) {
  int64_t first_at = -1;
  int64_t second_at = -1;
  for (const ExecEvent& e : run.trace) {
    if (first_at < 0 && e.di == race.first.di) {
      first_at = e.seq;
    }
    if (second_at < 0 && e.di == race.second.di) {
      second_at = e.seq;
    }
  }
  return first_at >= 0 && second_at >= 0 && first_at < second_at;
}

bool CausalityAnalysis::BothSidesExecuted(const RacePair& race, const RunResult& run) {
  bool first = false;
  bool second = false;
  for (const ExecEvent& e : run.trace) {
    first = first || e.di == race.first.di;
    second = second || e.di == race.second.di;
    if (first && second) {
      return true;
    }
  }
  return false;
}

CausalityResult CausalityAnalysis::Run() {
  obs::Span analysis_span("causality", "causality.analysis");
  Stopwatch watch;
  CausalityResult result;

  // Assemble the test set: executed data races, critical-section pairs, and
  // phantom races — backward from the failure (§3.4).
  std::vector<TestItem> items;
  std::set<std::pair<DynInstr, DynInstr>> dedupe;
  auto add = [&](const RacePair& race, bool phantom) {
    if (items.size() >= options_.max_tests) {
      return;
    }
    if (dedupe.insert({race.first.di, race.second.di}).second) {
      items.push_back({race, phantom});
    }
  };
  for (const RacePair& r : lifs_->races.races) {
    add(r, false);
  }
  for (const RacePair& r : lifs_->races.cs_pairs) {
    add(r, false);
  }
  for (const RacePair& r : lifs_->phantom_races) {
    add(r, true);
  }
  // Consolidate entangled near-duplicates. Two races that share one side and
  // whose other sides are conflicting accesses of the same thread to the
  // same memory represent the same interleaving decision (e.g. a load and a
  // store of the same pointer right next to each other): flipping one
  // necessarily flips the other. Keep the representative whose flip moves
  // the smallest block — same-first races keep the earliest second,
  // same-second races keep the latest first. Critical-section pairs are
  // already consolidated units and stay untouched.
  auto ranges_overlap = [](const ExecEvent& a, const ExecEvent& b) {
    return a.addr < b.addr + b.len && b.addr < a.addr + a.len;
  };
  // Subsumption is checked pairwise regardless of drop status (the relation
  // is antisymmetric, so equivalence classes keep exactly one survivor even
  // when the "dropper" is itself subsumed by a third race).
  std::vector<bool> drop(items.size(), false);
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].race.cs_pair) {
      continue;
    }
    for (size_t j = 0; j < items.size(); ++j) {
      if (i == j || drop[j] || items[j].race.cs_pair) {
        continue;
      }
      const RacePair& p = items[i].race;
      const RacePair& q = items[j].race;
      // Same first side: q is subsumed if its second comes later.
      if (p.first.di == q.first.di && p.second.di.tid == q.second.di.tid &&
          ranges_overlap(p.second, q.second) && p.second.seq < q.second.seq) {
        drop[j] = true;
      }
      // Same second side: q is subsumed if its first comes earlier.
      if (p.second.di == q.second.di && p.first.di.tid == q.first.di.tid &&
          ranges_overlap(p.first, q.first) && p.first.seq > q.first.seq) {
        drop[j] = true;
      }
      // Surrounding phantom pairs: when two phantom races connect the same
      // pair of threads and q's window strictly contains p's, flipping p
      // (the inner pair) already reorders q — testing q separately only
      // manufactures a Figure-7 entanglement. Keep the minimal window.
      if (items[i].phantom && items[j].phantom &&
          p.first.di.tid == q.first.di.tid && p.second.di.tid == q.second.di.tid &&
          q.first.seq <= p.first.seq && q.second.seq >= p.second.seq &&
          !(p.first.di == q.first.di && p.second.di == q.second.di)) {
        drop[j] = true;
      }
    }
  }
  {
    std::vector<TestItem> kept;
    kept.reserve(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      if (!drop[i]) {
        kept.push_back(items[i]);
      }
    }
    items = std::move(kept);
  }

  std::sort(items.begin(), items.end(), [](const TestItem& x, const TestItem& y) {
    return x.race.second.seq > y.race.second.seq;  // backward
  });

  // Static triage pre-filter (DESIGN.md §13): classify every candidate from
  // the failing trace before paying for re-executions. kProvablyBenign skips
  // the dynamic flip — the stage proved the flipped run observation-
  // equivalent, so its verdict is synthesized below instead of executed.
  // Disabled under fault injection: the proofs assume deterministic replay.
  std::vector<analysis::TriageDecision> triage(items.size());
  size_t skipped_total = 0;
  const bool prefilter_on =
      !options_.stages.empty() && !options_.supervisor.faults.enabled();
  if (prefilter_on && !items.empty()) {
    obs::Span triage_span("causality", "ca.triage");
    analysis::TriageContext ctx(image_, &lifs_->failing_run, &lifs_->irq_threads);
    size_t cs_units = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      analysis::TriageCandidate candidate;
      candidate.race = items[i].race;
      candidate.phantom = items[i].phantom;
      triage[i] = analysis::RunTriage(options_.stages, ctx, candidate);
      switch (triage[i].verdict) {
        case analysis::TriageVerdict::kProvablyBenign: ++skipped_total; break;
        case analysis::TriageVerdict::kCriticalSectionUnit: ++cs_units; break;
        default: break;
      }
    }
    const CausalityMetrics& m = CausalityMetrics::Get();
    m.prefilter_candidates->Add(static_cast<int64_t>(items.size()));
    m.prefilter_skipped->Add(static_cast<int64_t>(skipped_total));
    m.prefilter_cs_units->Add(static_cast<int64_t>(cs_units));
    m.prefilter_unknown->Add(
        static_cast<int64_t>(items.size() - skipped_total - cs_units));
    triage_span.Arg("candidates", items.size())
        .Arg("skipped", skipped_total)
        .Arg("cs_units", cs_units);
    obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kTriage, "ca.triage", "",
                          {{"candidates", static_cast<int64_t>(items.size())},
                           {"skipped", static_cast<int64_t>(skipped_total)},
                           {"cs_units", static_cast<int64_t>(cs_units)}});
  }
  auto skipped_by_triage = [&](size_t i) {
    return triage[i].verdict == analysis::TriageVerdict::kProvablyBenign;
  };

  // Flip tests are independent deterministic runs; execute them on the
  // diagnoser pool under supervision. The nonce is the test index, so fault
  // and retry streams are stable regardless of worker interleaving.
  SupervisorOptions so = options_.supervisor;
  so.max_steps = options_.max_steps_per_run;
  std::unique_ptr<ckpt::CheckpointStore> owned_store;
  if (options_.checkpointing) {
    if (options_.checkpoint_store == nullptr) {
      owned_store = std::make_unique<ckpt::CheckpointStore>(
          ckpt::StoreOptions{.event_scope = options_.event_scope});
    }
    so.checkpoints =
        options_.checkpoint_store != nullptr ? options_.checkpoint_store : owned_store.get();
  }
  Supervisor supervisor(image_, so);
  std::vector<RunResult> flip_runs(items.size());
  std::vector<Status> flip_status(items.size());
  auto test_one = [&](size_t i) {
    if (skipped_by_triage(i)) {
      obs::Span("causality", "ca.flip.skipped", 'i')
          .Arg("index", i)
          .Arg("label", RaceLabel(*image_, items[i].race))
          .Arg("stage", triage[i].stage);
      return;
    }
    obs::Span span("causality", "ca.flip");
    span.Arg("index", i)
        .Arg("label", RaceLabel(*image_, items[i].race))
        .Arg("phantom", items[i].phantom)
        .Arg("critical_section", items[i].race.cs_pair);
    TotalOrderSchedule flip = BuildFlip(items[i]);
    StatusOr<EnforceResult> er =
        supervisor.RunTotalOrder(slice_, flip, setup_, static_cast<uint64_t>(i));
    if (er.ok()) {
      flip_status[i] = er->status;
      flip_runs[i] = std::move(er->run);
    } else {
      flip_status[i] = er.status();
    }
    span.Arg("ok", flip_status[i].ok());
    // Published from pool workers; the bus serializes delivery. Frame order
    // across workers is nondeterministic, but events are write-only — the
    // verdicts themselves are settled later in index order.
    obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kFlipTested, "ca.flip",
                          RaceLabel(*image_, items[i].race),
                          {{"index", static_cast<int64_t>(i)},
                           {"total", static_cast<int64_t>(items.size())},
                           {"ok", flip_status[i].ok() ? 1 : 0}});
  };
  if (options_.workers > 1 && items.size() > 1) {
    ThreadPool pool(options_.workers);
    ParallelFor(pool, items.size(), test_one);
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      test_one(i);
    }
  }
  result.schedules_executed = static_cast<int64_t>(items.size() - skipped_total);
  result.flips_skipped = static_cast<int64_t>(skipped_total);
  result.budget = supervisor.budget();

  // Verdicts.
  const Failure& symptom = *lifs_->failure;
  result.tested.resize(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    TestedRace& t = result.tested[i];
    t.race = items[i].race;
    t.phantom = items[i].phantom;
    t.nested = NestedOf(items, i);
    t.triage_verdict = triage[i].verdict;
    t.triage_stage = triage[i].stage;
    t.triage_reason = triage[i].reason;

    // Pre-filtered: the triage stage proved the flipped run retires exactly
    // the failing run's event set and reproduces its failure, so the dynamic
    // outcome is known — benign, flip effective, symptom intact — and the
    // disappearance set equals the one the original event set induces.
    if (skipped_by_triage(i)) {
      t.flip_skipped = true;
      t.verdict = RaceVerdict::kBenign;
      ++result.benign_count;
      t.flip_took_effect = true;
      t.flip_still_failed = true;
      for (size_t j = 0; j < items.size(); ++j) {
        if (j != i && !BothSidesExecuted(items[j].race, lifs_->failing_run)) {
          t.disappeared.push_back(j);
        }
      }
      continue;
    }

    t.run_status = flip_status[i];
    const RunResult& run = flip_runs[i];

    // Graceful degradation: a flip run that was lost (retries exhausted) or
    // cut short (step budget / deadline / watchdog) yields no verdict. It is
    // reported kInconclusive — never benign or root-cause, both of which
    // would be fabricated from a partial run — and taints no other test.
    if (!t.run_status.ok()) {
      t.verdict = RaceVerdict::kInconclusive;
      ++result.inconclusive_count;
      result.inconclusive_indices.push_back(i);
      result.degraded = true;
      continue;
    }

    const bool still_original_order = OccurredInOrder(items[i].race, run);
    t.flip_took_effect = !still_original_order;
    t.flip_still_failed =
        run.failure.has_value() && SameSymptom(*run.failure, symptom);

    if (!t.flip_took_effect) {
      t.verdict = RaceVerdict::kInconclusive;
    } else if (t.flip_still_failed) {
      t.verdict = RaceVerdict::kBenign;
      ++result.benign_count;
    } else {
      t.verdict = RaceVerdict::kRootCause;
    }

    // Disappearance means an instruction vanished from the run (race-steered
    // control flow), not that the pair merely ran in a different order.
    for (size_t j = 0; j < items.size(); ++j) {
      if (j != i && !BothSidesExecuted(items[j].race, run)) {
        t.disappeared.push_back(j);
      }
    }
  }

  // Ambiguity (§3.4): a flip that necessarily reversed a nested race cannot
  // be attributed when both are root causes.
  for (size_t i = 0; i < items.size(); ++i) {
    TestedRace& t = result.tested[i];
    if (t.verdict != RaceVerdict::kRootCause) {
      continue;
    }
    for (size_t j : t.nested) {
      const RaceVerdict vj = result.tested[j].verdict;
      if (vj == RaceVerdict::kRootCause || vj == RaceVerdict::kAmbiguous) {
        t.verdict = RaceVerdict::kAmbiguous;
        result.ambiguous = true;
        break;
      }
    }
  }

  // Final verdicts are now settled (ambiguity upgrades included) — emit one
  // instant per race so the trace shows the per-decision outcome alongside
  // the flip spans, plus the per-verdict counters.
  {
    const CausalityMetrics& m = CausalityMetrics::Get();
    int64_t root_cause_count = 0;
    int64_t ambiguous_count = 0;
    for (size_t i = 0; i < result.tested.size(); ++i) {
      const TestedRace& t = result.tested[i];
      obs::Span("causality", "ca.verdict", 'i')
          .Arg("index", i)
          .Arg("label", RaceLabel(*image_, t.race))
          .Arg("verdict", RaceVerdictName(t.verdict))
          .Arg("phantom", t.phantom)
          .Arg("critical_section", t.race.cs_pair);
      if (options_.event_scope != 0 && obs::EventBus::Global().active()) {
        obs::PublishDiagEvent(options_.event_scope, obs::DiagPhase::kVerdict, "ca.verdict",
                              RaceLabel(*image_, t.race) + " " + RaceVerdictName(t.verdict),
                              {{"index", static_cast<int64_t>(i)},
                               {"skipped", t.flip_skipped ? 1 : 0}});
      }
      root_cause_count += t.verdict == RaceVerdict::kRootCause ? 1 : 0;
      ambiguous_count += t.verdict == RaceVerdict::kAmbiguous ? 1 : 0;
    }
    m.analyses->Increment();
    m.flip_tests->Add(result.schedules_executed);
    m.root_cause->Add(root_cause_count);
    m.benign->Add(result.benign_count);
    m.inconclusive->Add(result.inconclusive_count);
    m.ambiguous->Add(ambiguous_count);
  }

  // Chain construction from the disappearance relation among root causes.
  std::vector<size_t> roots;
  for (size_t i = 0; i < result.tested.size(); ++i) {
    if (result.tested[i].verdict == RaceVerdict::kRootCause ||
        result.tested[i].verdict == RaceVerdict::kAmbiguous) {
      roots.push_back(i);
    }
  }
  result.root_cause_indices = roots;

  std::map<size_t, size_t> root_rank;
  for (size_t r = 0; r < roots.size(); ++r) {
    root_rank[roots[r]] = r;
  }
  std::vector<RacePair> root_races;
  std::vector<std::vector<size_t>> disappears(roots.size());
  std::vector<bool> ambiguous_flags(roots.size(), false);
  for (size_t r = 0; r < roots.size(); ++r) {
    const TestedRace& t = result.tested[roots[r]];
    root_races.push_back(t.race);
    ambiguous_flags[r] = t.verdict == RaceVerdict::kAmbiguous;
    for (size_t j : t.disappeared) {
      auto it = root_rank.find(j);
      if (it != root_rank.end()) {
        disappears[r].push_back(it->second);
      }
    }
  }
  result.chain = CausalityChain::Build(root_races, disappears, ambiguous_flags, symptom);
  result.seconds = watch.ElapsedSeconds();
  CausalityMetrics::Get().us->Add(static_cast<int64_t>(result.seconds * 1e6));
  analysis_span.Arg("tests", result.schedules_executed)
      .Arg("skipped", result.flips_skipped)
      .Arg("root_causes", result.root_cause_indices.size())
      .Arg("degraded", result.degraded);
  return result;
}

}  // namespace aitia
