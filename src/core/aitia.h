// AITIA's public entry points (§4.1).
//
// The full workflow mirrors the paper:
//
//   1. Input: an ExecutionHistory (timestamped syscall traces + failure
//      info) from a bug-finding system (src/fuzz), or a hand-picked slice.
//   2. Modeling: the history is split into slices (src/trace).
//   3. Reproducing: LIFS searches each slice — backward from the failure —
//      until one reproduces the reported symptom.
//   4. Diagnosing: Causality Analysis flips each data race of the
//      failure-causing sequence and classifies it.
//   5. Output: a causality chain with instruction-level information.

#ifndef SRC_CORE_AITIA_H_
#define SRC_CORE_AITIA_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/causality.h"
#include "src/core/lifs.h"
#include "src/obs/metrics.h"
#include "src/trace/history.h"
#include "src/trace/slicer.h"

namespace aitia {

struct AitiaOptions {
  LifsOptions lifs;
  CausalityOptions causality;
  SlicerOptions slicer;
  // > 1 launches reproducers for all candidate slices in parallel (the
  // paper's multi-VM reproducing stage); 1 tries slices sequentially,
  // backward from the failure, stopping at the first reproduction.
  size_t reproducer_workers = 1;
  // Cap on candidate slices attempted.
  size_t max_slices = 16;

  // Applies one worker count to every parallel stage of the pipeline: LIFS
  // frontier exploration, causality flip tests, and the slice reproducers.
  // 0 resolves to the hardware concurrency (the CLI's --jobs flag lands
  // here). Per-stage fields can still be set individually afterwards.
  AitiaOptions& set_jobs(size_t jobs);

  // Applies one wall-clock budget (seconds) across the pipeline: the LIFS
  // search deadline plus the per-run supervisor deadlines of both stages.
  // Expiry degrades the diagnosis (kInconclusive flips, non-ok report
  // status) instead of wedging the caller; 0 is a no-op.
  AitiaOptions& set_deadline(double seconds);

  // Installs one cooperative cancellation probe on both supervised stages
  // (see SupervisorOptions::cancel). The service layer points this at its
  // drain flag so in-flight diagnoses deadline-out instead of blocking exit.
  AitiaOptions& set_cancel(std::function<bool()> cancel);

  // Toggles prefix-replay checkpointing (src/ckpt) for both stages. When on
  // (the default), the facade creates one CheckpointStore per slice and
  // shares it between that slice's LIFS search and its Causality Analysis;
  // results are bit-identical either way (the CLI's --no-replay-cache flag
  // lands here).
  AitiaOptions& set_replay_cache(bool enabled);

  // Toggles the static triage pre-filter in front of Causality Analysis's
  // dynamic flip tests (DESIGN.md §13). On restores the default stage
  // pipeline {hb, lockset, mhp}; off clears it so every candidate flips (the
  // CLI's --no-prefilter flag lands here). Chains and verdicts are
  // bit-identical either way; only the re-execution count changes.
  AitiaOptions& set_prefilter(bool enabled);

  // Replaces the triage pipeline with the stages named in `spec` (see
  // analysis::TriagePipelineFromSpec; the CLI's --triage flag lands here).
  Status set_triage(const std::string& spec);

  // Tags every stage of this diagnosis with one progress-event scope
  // (src/obs/events.h) so the daemon's streaming relay sees only its own
  // request's lifecycle events. 0 (the default) publishes nothing; events
  // are pure write-side observability either way.
  AitiaOptions& set_event_scope(uint64_t scope);
};

struct AitiaReport {
  bool diagnosed = false;
  // True when the diagnosis is partial: at least one flip test exhausted its
  // run budget (verdict kInconclusive) or the reproducing stage was cut
  // short. The chain is still valid for the races that were classified.
  bool degraded = false;
  // Pipeline-level health; non-ok explains a false `diagnosed` that was due
  // to budget/deadline exhaustion rather than genuine non-reproduction.
  Status status;
  size_t slices_tried = 0;
  Slice used_slice;
  LifsResult lifs;
  CausalityResult causality;
  // Metrics delta covering exactly this diagnosis: the facade snapshots the
  // process-wide registry before the pipeline and subtracts it after, so
  // reports stay accurate when many diagnoses share one process.
  obs::MetricsSnapshot metrics;

  // Full human-readable diagnosis (races, verdicts, chain).
  std::string Render(const KernelImage& image) const;
};

// Diagnoses a known concurrent group directly (skips modeling).
AitiaReport DiagnoseSlice(const KernelImage& image, const std::vector<ThreadSpec>& slice,
                          const std::vector<ThreadSpec>& setup, const AitiaOptions& options = {});

// The full pipeline from a bug-finder's execution history.
AitiaReport DiagnoseHistory(const KernelImage& image, const ExecutionHistory& history,
                            const AitiaOptions& options = {});

}  // namespace aitia

#endif  // SRC_CORE_AITIA_H_
